// Positive control for cmake/ThreadSafetyCheck.cmake: every guarded access
// holds the capability, exercising pd::MutexLock scopes, PD_REQUIRES, and a
// condition-variable wait through native_lock(). Must compile clean under
// clang -Wthread-safety -Wthread-safety-beta -Werror.
#include <condition_variable>

#include "common/annotations.h"

namespace {

class Counter {
 public:
  void bump() {
    pd::MutexLock lock(mu_);
    bump_locked();
    cv_.notify_all();
  }

  int wait_nonzero() {
    pd::MutexLock lock(mu_);
    while (value_ == 0) cv_.wait(lock.native_lock());
    return value_;
  }

  int read() const {
    pd::MutexLock lock(mu_);
    return value_;
  }

 private:
  void bump_locked() PD_REQUIRES(mu_) { ++value_; }

  mutable pd::Mutex mu_;
  std::condition_variable cv_;
  int value_ PD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.read() + c.wait_nonzero() - 2;
}
