// Expected-FAILURE fixture for cmake/ThreadSafetyCheck.cmake: reads and
// writes a PD_GUARDED_BY field without acquiring the capability. Under
// clang -Wthread-safety -Werror this must NOT compile; if it does, the
// analysis is disarmed and the configure step fails.
#include "common/annotations.h"

namespace {

class Counter {
 public:
  void bump() { ++value_; }  // missing pd::MutexLock lock(mu_)
  int read() const { return value_; }  // likewise

 private:
  mutable pd::Mutex mu_;
  int value_ PD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.read();
}
