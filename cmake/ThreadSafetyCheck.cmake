# Configure-time proof that Clang Thread Safety Analysis is actually armed:
# a fixture that reads a PD_GUARDED_BY field without holding the lock MUST
# fail to compile under -Wthread-safety -Werror, and a correctly locked
# control MUST compile. If the negative fixture ever compiles, the macros
# expanded to nothing (or the flags were dropped) and every annotation in
# the tree is dead weight -- fail the configure, not the code review.
#
# Only included for Clang; GCC has no thread-safety analysis, so there the
# macros are no-ops by design.

set(_tsa_flags "-Wthread-safety;-Wthread-safety-beta;-Werror;-std=c++20")
set(_tsa_fixtures ${CMAKE_CURRENT_LIST_DIR}/fixtures)

try_compile(TSA_POSITIVE_COMPILES
  ${CMAKE_BINARY_DIR}/tsa_check/positive
  ${_tsa_fixtures}/tsa_positive.cc
  COMPILE_DEFINITIONS "${_tsa_flags}"
  CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
  OUTPUT_VARIABLE _tsa_positive_out)
if(NOT TSA_POSITIVE_COMPILES)
  message(FATAL_ERROR
    "Thread-safety positive control failed to compile: a correctly locked "
    "PD_GUARDED_BY access was rejected, so the annotations are wrong.\n"
    "${_tsa_positive_out}")
endif()

try_compile(TSA_NEGATIVE_COMPILES
  ${CMAKE_BINARY_DIR}/tsa_check/negative
  ${_tsa_fixtures}/tsa_negative.cc
  COMPILE_DEFINITIONS "${_tsa_flags}"
  CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
  OUTPUT_VARIABLE _tsa_negative_out)
if(TSA_NEGATIVE_COMPILES)
  message(FATAL_ERROR
    "Thread-safety analysis is not armed: an unannotated lock-free access "
    "to a PD_GUARDED_BY field compiled clean under -Wthread-safety -Werror. "
    "Check that common/annotations.h expands the attributes under Clang.")
endif()

message(STATUS "Thread safety analysis armed: guarded-access fixture "
  "rejected, locked control accepted")
