# Empty dependencies file for pd_eval.
# This may be replaced when dependencies are built.
