file(REMOVE_RECURSE
  "CMakeFiles/pd_eval.dir/harness.cc.o"
  "CMakeFiles/pd_eval.dir/harness.cc.o.d"
  "libpd_eval.a"
  "libpd_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
