file(REMOVE_RECURSE
  "libpd_eval.a"
)
