# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("em")
subdirs("channel")
subdirs("rfid")
subdirs("handwriting")
subdirs("sim")
subdirs("recognition")
subdirs("core")
subdirs("baselines")
subdirs("eval")
