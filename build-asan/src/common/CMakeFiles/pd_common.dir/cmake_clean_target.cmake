file(REMOVE_RECURSE
  "libpd_common.a"
)
