file(REMOVE_RECURSE
  "CMakeFiles/pd_common.dir/angles.cc.o"
  "CMakeFiles/pd_common.dir/angles.cc.o.d"
  "CMakeFiles/pd_common.dir/stats.cc.o"
  "CMakeFiles/pd_common.dir/stats.cc.o.d"
  "CMakeFiles/pd_common.dir/table.cc.o"
  "CMakeFiles/pd_common.dir/table.cc.o.d"
  "CMakeFiles/pd_common.dir/vec.cc.o"
  "CMakeFiles/pd_common.dir/vec.cc.o.d"
  "libpd_common.a"
  "libpd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
