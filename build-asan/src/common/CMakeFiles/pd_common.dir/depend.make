# Empty dependencies file for pd_common.
# This may be replaced when dependencies are built.
