file(REMOVE_RECURSE
  "CMakeFiles/pd_baselines.dir/grid_search.cc.o"
  "CMakeFiles/pd_baselines.dir/grid_search.cc.o.d"
  "CMakeFiles/pd_baselines.dir/rfidraw.cc.o"
  "CMakeFiles/pd_baselines.dir/rfidraw.cc.o.d"
  "CMakeFiles/pd_baselines.dir/tagoram.cc.o"
  "CMakeFiles/pd_baselines.dir/tagoram.cc.o.d"
  "CMakeFiles/pd_baselines.dir/windowing.cc.o"
  "CMakeFiles/pd_baselines.dir/windowing.cc.o.d"
  "libpd_baselines.a"
  "libpd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
