
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/grid_search.cc" "src/baselines/CMakeFiles/pd_baselines.dir/grid_search.cc.o" "gcc" "src/baselines/CMakeFiles/pd_baselines.dir/grid_search.cc.o.d"
  "/root/repo/src/baselines/rfidraw.cc" "src/baselines/CMakeFiles/pd_baselines.dir/rfidraw.cc.o" "gcc" "src/baselines/CMakeFiles/pd_baselines.dir/rfidraw.cc.o.d"
  "/root/repo/src/baselines/tagoram.cc" "src/baselines/CMakeFiles/pd_baselines.dir/tagoram.cc.o" "gcc" "src/baselines/CMakeFiles/pd_baselines.dir/tagoram.cc.o.d"
  "/root/repo/src/baselines/windowing.cc" "src/baselines/CMakeFiles/pd_baselines.dir/windowing.cc.o" "gcc" "src/baselines/CMakeFiles/pd_baselines.dir/windowing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/em/CMakeFiles/pd_em.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/rfid/CMakeFiles/pd_rfid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/channel/CMakeFiles/pd_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
