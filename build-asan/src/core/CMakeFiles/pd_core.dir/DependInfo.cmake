
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cc" "src/core/CMakeFiles/pd_core.dir/calibration.cc.o" "gcc" "src/core/CMakeFiles/pd_core.dir/calibration.cc.o.d"
  "/root/repo/src/core/distance_estimator.cc" "src/core/CMakeFiles/pd_core.dir/distance_estimator.cc.o" "gcc" "src/core/CMakeFiles/pd_core.dir/distance_estimator.cc.o.d"
  "/root/repo/src/core/hmm_tracker.cc" "src/core/CMakeFiles/pd_core.dir/hmm_tracker.cc.o" "gcc" "src/core/CMakeFiles/pd_core.dir/hmm_tracker.cc.o.d"
  "/root/repo/src/core/kalman_tracker.cc" "src/core/CMakeFiles/pd_core.dir/kalman_tracker.cc.o" "gcc" "src/core/CMakeFiles/pd_core.dir/kalman_tracker.cc.o.d"
  "/root/repo/src/core/particle_tracker.cc" "src/core/CMakeFiles/pd_core.dir/particle_tracker.cc.o" "gcc" "src/core/CMakeFiles/pd_core.dir/particle_tracker.cc.o.d"
  "/root/repo/src/core/polardraw.cc" "src/core/CMakeFiles/pd_core.dir/polardraw.cc.o" "gcc" "src/core/CMakeFiles/pd_core.dir/polardraw.cc.o.d"
  "/root/repo/src/core/preprocess.cc" "src/core/CMakeFiles/pd_core.dir/preprocess.cc.o" "gcc" "src/core/CMakeFiles/pd_core.dir/preprocess.cc.o.d"
  "/root/repo/src/core/rotation_tracker.cc" "src/core/CMakeFiles/pd_core.dir/rotation_tracker.cc.o" "gcc" "src/core/CMakeFiles/pd_core.dir/rotation_tracker.cc.o.d"
  "/root/repo/src/core/translation_tracker.cc" "src/core/CMakeFiles/pd_core.dir/translation_tracker.cc.o" "gcc" "src/core/CMakeFiles/pd_core.dir/translation_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/em/CMakeFiles/pd_em.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/rfid/CMakeFiles/pd_rfid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/channel/CMakeFiles/pd_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
