file(REMOVE_RECURSE
  "libpd_core.a"
)
