file(REMOVE_RECURSE
  "CMakeFiles/pd_core.dir/calibration.cc.o"
  "CMakeFiles/pd_core.dir/calibration.cc.o.d"
  "CMakeFiles/pd_core.dir/distance_estimator.cc.o"
  "CMakeFiles/pd_core.dir/distance_estimator.cc.o.d"
  "CMakeFiles/pd_core.dir/hmm_tracker.cc.o"
  "CMakeFiles/pd_core.dir/hmm_tracker.cc.o.d"
  "CMakeFiles/pd_core.dir/kalman_tracker.cc.o"
  "CMakeFiles/pd_core.dir/kalman_tracker.cc.o.d"
  "CMakeFiles/pd_core.dir/particle_tracker.cc.o"
  "CMakeFiles/pd_core.dir/particle_tracker.cc.o.d"
  "CMakeFiles/pd_core.dir/polardraw.cc.o"
  "CMakeFiles/pd_core.dir/polardraw.cc.o.d"
  "CMakeFiles/pd_core.dir/preprocess.cc.o"
  "CMakeFiles/pd_core.dir/preprocess.cc.o.d"
  "CMakeFiles/pd_core.dir/rotation_tracker.cc.o"
  "CMakeFiles/pd_core.dir/rotation_tracker.cc.o.d"
  "CMakeFiles/pd_core.dir/translation_tracker.cc.o"
  "CMakeFiles/pd_core.dir/translation_tracker.cc.o.d"
  "libpd_core.a"
  "libpd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
