# Empty dependencies file for pd_core.
# This may be replaced when dependencies are built.
