file(REMOVE_RECURSE
  "libpd_em.a"
)
