file(REMOVE_RECURSE
  "CMakeFiles/pd_em.dir/antenna.cc.o"
  "CMakeFiles/pd_em.dir/antenna.cc.o.d"
  "CMakeFiles/pd_em.dir/polarization.cc.o"
  "CMakeFiles/pd_em.dir/polarization.cc.o.d"
  "CMakeFiles/pd_em.dir/propagation.cc.o"
  "CMakeFiles/pd_em.dir/propagation.cc.o.d"
  "CMakeFiles/pd_em.dir/tag.cc.o"
  "CMakeFiles/pd_em.dir/tag.cc.o.d"
  "libpd_em.a"
  "libpd_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
