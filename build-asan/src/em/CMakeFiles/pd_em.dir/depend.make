# Empty dependencies file for pd_em.
# This may be replaced when dependencies are built.
