
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/antenna.cc" "src/em/CMakeFiles/pd_em.dir/antenna.cc.o" "gcc" "src/em/CMakeFiles/pd_em.dir/antenna.cc.o.d"
  "/root/repo/src/em/polarization.cc" "src/em/CMakeFiles/pd_em.dir/polarization.cc.o" "gcc" "src/em/CMakeFiles/pd_em.dir/polarization.cc.o.d"
  "/root/repo/src/em/propagation.cc" "src/em/CMakeFiles/pd_em.dir/propagation.cc.o" "gcc" "src/em/CMakeFiles/pd_em.dir/propagation.cc.o.d"
  "/root/repo/src/em/tag.cc" "src/em/CMakeFiles/pd_em.dir/tag.cc.o" "gcc" "src/em/CMakeFiles/pd_em.dir/tag.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
