file(REMOVE_RECURSE
  "libpd_recognition.a"
)
