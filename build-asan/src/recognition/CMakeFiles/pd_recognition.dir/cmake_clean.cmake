file(REMOVE_RECURSE
  "CMakeFiles/pd_recognition.dir/classifier.cc.o"
  "CMakeFiles/pd_recognition.dir/classifier.cc.o.d"
  "CMakeFiles/pd_recognition.dir/dtw.cc.o"
  "CMakeFiles/pd_recognition.dir/dtw.cc.o.d"
  "CMakeFiles/pd_recognition.dir/language_model.cc.o"
  "CMakeFiles/pd_recognition.dir/language_model.cc.o.d"
  "CMakeFiles/pd_recognition.dir/procrustes.cc.o"
  "CMakeFiles/pd_recognition.dir/procrustes.cc.o.d"
  "libpd_recognition.a"
  "libpd_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
