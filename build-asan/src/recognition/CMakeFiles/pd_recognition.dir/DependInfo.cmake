
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recognition/classifier.cc" "src/recognition/CMakeFiles/pd_recognition.dir/classifier.cc.o" "gcc" "src/recognition/CMakeFiles/pd_recognition.dir/classifier.cc.o.d"
  "/root/repo/src/recognition/dtw.cc" "src/recognition/CMakeFiles/pd_recognition.dir/dtw.cc.o" "gcc" "src/recognition/CMakeFiles/pd_recognition.dir/dtw.cc.o.d"
  "/root/repo/src/recognition/language_model.cc" "src/recognition/CMakeFiles/pd_recognition.dir/language_model.cc.o" "gcc" "src/recognition/CMakeFiles/pd_recognition.dir/language_model.cc.o.d"
  "/root/repo/src/recognition/procrustes.cc" "src/recognition/CMakeFiles/pd_recognition.dir/procrustes.cc.o" "gcc" "src/recognition/CMakeFiles/pd_recognition.dir/procrustes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/handwriting/CMakeFiles/pd_handwriting.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/em/CMakeFiles/pd_em.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
