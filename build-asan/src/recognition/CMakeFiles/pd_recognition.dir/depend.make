# Empty dependencies file for pd_recognition.
# This may be replaced when dependencies are built.
