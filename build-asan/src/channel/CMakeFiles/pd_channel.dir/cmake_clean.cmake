file(REMOVE_RECURSE
  "CMakeFiles/pd_channel.dir/multipath.cc.o"
  "CMakeFiles/pd_channel.dir/multipath.cc.o.d"
  "CMakeFiles/pd_channel.dir/noise.cc.o"
  "CMakeFiles/pd_channel.dir/noise.cc.o.d"
  "CMakeFiles/pd_channel.dir/scatterer.cc.o"
  "CMakeFiles/pd_channel.dir/scatterer.cc.o.d"
  "libpd_channel.a"
  "libpd_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
