
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/multipath.cc" "src/channel/CMakeFiles/pd_channel.dir/multipath.cc.o" "gcc" "src/channel/CMakeFiles/pd_channel.dir/multipath.cc.o.d"
  "/root/repo/src/channel/noise.cc" "src/channel/CMakeFiles/pd_channel.dir/noise.cc.o" "gcc" "src/channel/CMakeFiles/pd_channel.dir/noise.cc.o.d"
  "/root/repo/src/channel/scatterer.cc" "src/channel/CMakeFiles/pd_channel.dir/scatterer.cc.o" "gcc" "src/channel/CMakeFiles/pd_channel.dir/scatterer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/em/CMakeFiles/pd_em.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
