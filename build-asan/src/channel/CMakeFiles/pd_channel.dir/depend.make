# Empty dependencies file for pd_channel.
# This may be replaced when dependencies are built.
