file(REMOVE_RECURSE
  "libpd_channel.a"
)
