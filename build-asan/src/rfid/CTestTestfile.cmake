# CMake generated Testfile for 
# Source directory: /root/repo/src/rfid
# Build directory: /root/repo/build-asan/src/rfid
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
