file(REMOVE_RECURSE
  "CMakeFiles/pd_rfid.dir/gen2.cc.o"
  "CMakeFiles/pd_rfid.dir/gen2.cc.o.d"
  "CMakeFiles/pd_rfid.dir/llrp.cc.o"
  "CMakeFiles/pd_rfid.dir/llrp.cc.o.d"
  "CMakeFiles/pd_rfid.dir/modulation.cc.o"
  "CMakeFiles/pd_rfid.dir/modulation.cc.o.d"
  "CMakeFiles/pd_rfid.dir/reader.cc.o"
  "CMakeFiles/pd_rfid.dir/reader.cc.o.d"
  "CMakeFiles/pd_rfid.dir/wisp.cc.o"
  "CMakeFiles/pd_rfid.dir/wisp.cc.o.d"
  "libpd_rfid.a"
  "libpd_rfid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_rfid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
