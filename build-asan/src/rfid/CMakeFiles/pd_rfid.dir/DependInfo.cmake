
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rfid/gen2.cc" "src/rfid/CMakeFiles/pd_rfid.dir/gen2.cc.o" "gcc" "src/rfid/CMakeFiles/pd_rfid.dir/gen2.cc.o.d"
  "/root/repo/src/rfid/llrp.cc" "src/rfid/CMakeFiles/pd_rfid.dir/llrp.cc.o" "gcc" "src/rfid/CMakeFiles/pd_rfid.dir/llrp.cc.o.d"
  "/root/repo/src/rfid/modulation.cc" "src/rfid/CMakeFiles/pd_rfid.dir/modulation.cc.o" "gcc" "src/rfid/CMakeFiles/pd_rfid.dir/modulation.cc.o.d"
  "/root/repo/src/rfid/reader.cc" "src/rfid/CMakeFiles/pd_rfid.dir/reader.cc.o" "gcc" "src/rfid/CMakeFiles/pd_rfid.dir/reader.cc.o.d"
  "/root/repo/src/rfid/wisp.cc" "src/rfid/CMakeFiles/pd_rfid.dir/wisp.cc.o" "gcc" "src/rfid/CMakeFiles/pd_rfid.dir/wisp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/em/CMakeFiles/pd_em.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/channel/CMakeFiles/pd_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
