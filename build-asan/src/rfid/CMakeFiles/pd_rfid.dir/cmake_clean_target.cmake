file(REMOVE_RECURSE
  "libpd_rfid.a"
)
