# Empty dependencies file for pd_rfid.
# This may be replaced when dependencies are built.
