file(REMOVE_RECURSE
  "CMakeFiles/pd_sim.dir/scene.cc.o"
  "CMakeFiles/pd_sim.dir/scene.cc.o.d"
  "libpd_sim.a"
  "libpd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
