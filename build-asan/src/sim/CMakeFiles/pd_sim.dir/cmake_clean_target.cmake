file(REMOVE_RECURSE
  "libpd_sim.a"
)
