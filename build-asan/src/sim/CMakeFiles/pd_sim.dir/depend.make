# Empty dependencies file for pd_sim.
# This may be replaced when dependencies are built.
