# CMake generated Testfile for 
# Source directory: /root/repo/src/handwriting
# Build directory: /root/repo/build-asan/src/handwriting
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
