
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/handwriting/kinematics.cc" "src/handwriting/CMakeFiles/pd_handwriting.dir/kinematics.cc.o" "gcc" "src/handwriting/CMakeFiles/pd_handwriting.dir/kinematics.cc.o.d"
  "/root/repo/src/handwriting/stroke_font.cc" "src/handwriting/CMakeFiles/pd_handwriting.dir/stroke_font.cc.o" "gcc" "src/handwriting/CMakeFiles/pd_handwriting.dir/stroke_font.cc.o.d"
  "/root/repo/src/handwriting/synthesizer.cc" "src/handwriting/CMakeFiles/pd_handwriting.dir/synthesizer.cc.o" "gcc" "src/handwriting/CMakeFiles/pd_handwriting.dir/synthesizer.cc.o.d"
  "/root/repo/src/handwriting/user.cc" "src/handwriting/CMakeFiles/pd_handwriting.dir/user.cc.o" "gcc" "src/handwriting/CMakeFiles/pd_handwriting.dir/user.cc.o.d"
  "/root/repo/src/handwriting/wrist.cc" "src/handwriting/CMakeFiles/pd_handwriting.dir/wrist.cc.o" "gcc" "src/handwriting/CMakeFiles/pd_handwriting.dir/wrist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/em/CMakeFiles/pd_em.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
