# Empty dependencies file for pd_handwriting.
# This may be replaced when dependencies are built.
