file(REMOVE_RECURSE
  "CMakeFiles/pd_handwriting.dir/kinematics.cc.o"
  "CMakeFiles/pd_handwriting.dir/kinematics.cc.o.d"
  "CMakeFiles/pd_handwriting.dir/stroke_font.cc.o"
  "CMakeFiles/pd_handwriting.dir/stroke_font.cc.o.d"
  "CMakeFiles/pd_handwriting.dir/synthesizer.cc.o"
  "CMakeFiles/pd_handwriting.dir/synthesizer.cc.o.d"
  "CMakeFiles/pd_handwriting.dir/user.cc.o"
  "CMakeFiles/pd_handwriting.dir/user.cc.o.d"
  "CMakeFiles/pd_handwriting.dir/wrist.cc.o"
  "CMakeFiles/pd_handwriting.dir/wrist.cc.o.d"
  "libpd_handwriting.a"
  "libpd_handwriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_handwriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
