file(REMOVE_RECURSE
  "libpd_handwriting.a"
)
