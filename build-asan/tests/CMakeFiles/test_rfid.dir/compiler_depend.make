# Empty compiler generated dependencies file for test_rfid.
# This may be replaced when dependencies are built.
