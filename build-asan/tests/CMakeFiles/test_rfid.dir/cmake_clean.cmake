file(REMOVE_RECURSE
  "CMakeFiles/test_rfid.dir/rfid/test_gen2.cc.o"
  "CMakeFiles/test_rfid.dir/rfid/test_gen2.cc.o.d"
  "CMakeFiles/test_rfid.dir/rfid/test_llrp_hopping.cc.o"
  "CMakeFiles/test_rfid.dir/rfid/test_llrp_hopping.cc.o.d"
  "CMakeFiles/test_rfid.dir/rfid/test_reader.cc.o"
  "CMakeFiles/test_rfid.dir/rfid/test_reader.cc.o.d"
  "test_rfid"
  "test_rfid.pdb"
  "test_rfid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rfid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
