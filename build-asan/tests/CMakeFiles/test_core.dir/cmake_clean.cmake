file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_hmm_tracker.cc.o"
  "CMakeFiles/test_core.dir/core/test_hmm_tracker.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_kalman_calibration.cc.o"
  "CMakeFiles/test_core.dir/core/test_kalman_calibration.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_preprocess.cc.o"
  "CMakeFiles/test_core.dir/core/test_preprocess.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_rotation_tracker.cc.o"
  "CMakeFiles/test_core.dir/core/test_rotation_tracker.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_translation_distance.cc.o"
  "CMakeFiles/test_core.dir/core/test_translation_distance.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
