file(REMOVE_RECURSE
  "CMakeFiles/test_eval.dir/eval/test_batch_determinism.cc.o"
  "CMakeFiles/test_eval.dir/eval/test_batch_determinism.cc.o.d"
  "CMakeFiles/test_eval.dir/eval/test_harness.cc.o"
  "CMakeFiles/test_eval.dir/eval/test_harness.cc.o.d"
  "test_eval"
  "test_eval.pdb"
  "test_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
