
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval/test_batch_determinism.cc" "tests/CMakeFiles/test_eval.dir/eval/test_batch_determinism.cc.o" "gcc" "tests/CMakeFiles/test_eval.dir/eval/test_batch_determinism.cc.o.d"
  "/root/repo/tests/eval/test_harness.cc" "tests/CMakeFiles/test_eval.dir/eval/test_harness.cc.o" "gcc" "tests/CMakeFiles/test_eval.dir/eval/test_harness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/em/CMakeFiles/pd_em.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/channel/CMakeFiles/pd_channel.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/rfid/CMakeFiles/pd_rfid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/handwriting/CMakeFiles/pd_handwriting.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/pd_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/recognition/CMakeFiles/pd_recognition.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/pd_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/baselines/CMakeFiles/pd_baselines.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/eval/CMakeFiles/pd_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
