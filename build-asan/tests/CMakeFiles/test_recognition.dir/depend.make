# Empty dependencies file for test_recognition.
# This may be replaced when dependencies are built.
