file(REMOVE_RECURSE
  "CMakeFiles/test_recognition.dir/recognition/test_classifier.cc.o"
  "CMakeFiles/test_recognition.dir/recognition/test_classifier.cc.o.d"
  "CMakeFiles/test_recognition.dir/recognition/test_procrustes.cc.o"
  "CMakeFiles/test_recognition.dir/recognition/test_procrustes.cc.o.d"
  "CMakeFiles/test_recognition.dir/recognition/test_word_detail.cc.o"
  "CMakeFiles/test_recognition.dir/recognition/test_word_detail.cc.o.d"
  "test_recognition"
  "test_recognition.pdb"
  "test_recognition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
