file(REMOVE_RECURSE
  "CMakeFiles/test_em.dir/em/test_polarization.cc.o"
  "CMakeFiles/test_em.dir/em/test_polarization.cc.o.d"
  "CMakeFiles/test_em.dir/em/test_propagation.cc.o"
  "CMakeFiles/test_em.dir/em/test_propagation.cc.o.d"
  "test_em"
  "test_em.pdb"
  "test_em[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
