# Empty compiler generated dependencies file for test_handwriting.
# This may be replaced when dependencies are built.
