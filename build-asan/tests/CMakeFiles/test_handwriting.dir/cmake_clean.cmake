file(REMOVE_RECURSE
  "CMakeFiles/test_handwriting.dir/handwriting/test_kinematics.cc.o"
  "CMakeFiles/test_handwriting.dir/handwriting/test_kinematics.cc.o.d"
  "CMakeFiles/test_handwriting.dir/handwriting/test_stroke_font.cc.o"
  "CMakeFiles/test_handwriting.dir/handwriting/test_stroke_font.cc.o.d"
  "CMakeFiles/test_handwriting.dir/handwriting/test_synthesizer.cc.o"
  "CMakeFiles/test_handwriting.dir/handwriting/test_synthesizer.cc.o.d"
  "CMakeFiles/test_handwriting.dir/handwriting/test_wrist.cc.o"
  "CMakeFiles/test_handwriting.dir/handwriting/test_wrist.cc.o.d"
  "test_handwriting"
  "test_handwriting.pdb"
  "test_handwriting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_handwriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
