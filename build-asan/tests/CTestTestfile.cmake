# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_common[1]_include.cmake")
include("/root/repo/build-asan/tests/test_em[1]_include.cmake")
include("/root/repo/build-asan/tests/test_channel[1]_include.cmake")
include("/root/repo/build-asan/tests/test_rfid[1]_include.cmake")
include("/root/repo/build-asan/tests/test_handwriting[1]_include.cmake")
include("/root/repo/build-asan/tests/test_recognition[1]_include.cmake")
include("/root/repo/build-asan/tests/test_core[1]_include.cmake")
include("/root/repo/build-asan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-asan/tests/test_baselines[1]_include.cmake")
include("/root/repo/build-asan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-asan/tests/test_properties[1]_include.cmake")
include("/root/repo/build-asan/tests/test_extensions[1]_include.cmake")
include("/root/repo/build-asan/tests/test_eval[1]_include.cmake")
