// benchdiff: the bench-trajectory regression sentinel (DESIGN.md sec. 12).
//
// Compares two directories of BENCH_*.json exports (an "old" baseline and
// a "new" candidate) metric by metric and classifies each delta as
// improved / unchanged / regressed under direction-aware, per-class noise
// thresholds. Accuracy metrics are deterministic under pinned seeds, so
// they get a tight absolute tolerance; throughput and time metrics are
// machine-dependent, so they get a generous relative tolerance; count
// metrics (trial/window totals) only warn, since a count change usually
// means the configs differ rather than the code got slower.
#pragma once

#include <string>
#include <vector>

#include "json.h"

namespace polardraw::benchdiff {

/// How a metric is judged. Direction encodes which way "worse" points.
enum class MetricClass {
  kAccuracy,    // higher is better, absolute tolerance (deterministic)
  kThroughput,  // higher is better, relative tolerance (*_per_s)
  kTime,        // lower is better, relative tolerance (*_ms, *_s, wall_s)
  kCount,       // informational; a change warns but never fails
  kUnknown,     // informational only
};

/// Verdict for a single metric delta. kNew marks a metric present only in
/// the candidate (a freshly added export) — surfaced explicitly in the
/// markdown so new instrumentation is visible in review, never a failure.
enum class Verdict { kUnchanged, kImproved, kRegressed, kWarning, kInfo, kNew };

/// Noise thresholds. A delta within tolerance is kUnchanged; beyond it,
/// the direction decides improved vs regressed.
struct Thresholds {
  /// Absolute tolerance for accuracy-class metrics (fractions in [0,1]).
  double accuracy_abs_tol = 0.01;
  /// Degradation-factor tolerance for throughput- and time-class metrics:
  /// a metric may be up to (1 + tol)x worse (slower, or lower-throughput)
  /// before it regresses, and (1 + tol)x better before it counts as
  /// improved. The default absorbs scheduler noise on one machine;
  /// cross-machine CI gates pass a larger value (see ci.yml).
  double perf_rel_tol = 0.5;
  /// Absolute tolerance, in the metric's own unit, used for throughput-
  /// and time-class metrics when either side is exactly zero. A zero
  /// baseline cannot anchor a degradation factor (the ratio divides by
  /// it), and a zero usually means the quantity sits below timer
  /// resolution, so nearby values compare as noise and anything beyond
  /// the tolerance is judged by direction.
  double zero_perf_abs_tol = 0.5;
};

/// One compared metric.
struct MetricDelta {
  std::string file;    // e.g. "BENCH_hmm_decode.json"
  std::string key;     // dotted path, e.g. "metrics.windows_per_s"
  MetricClass cls = MetricClass::kUnknown;
  Verdict verdict = Verdict::kInfo;
  bool missing_old = false;
  bool missing_new = false;
  double old_value = 0.0;
  double new_value = 0.0;
};

/// Full comparison outcome.
struct Report {
  std::vector<MetricDelta> deltas;
  /// Files present in the old dir but absent from the new one (always a
  /// regression: the candidate stopped producing an export).
  std::vector<std::string> missing_files;
  /// Files only in the new dir (informational).
  std::vector<std::string> new_files;
  std::vector<std::string> errors;  // parse/IO problems (fail the run)

  [[nodiscard]] bool has_regression() const;
  [[nodiscard]] std::size_t count(Verdict v) const;
};

/// Classifies a dotted metric path (e.g. "metrics.accuracy",
/// "stages.core.hmm_decode.p95_ms") by suffix convention.
[[nodiscard]] MetricClass classify_metric(const std::string& key);

/// Compares two parsed BENCH_*.json documents; appends deltas to `out`.
void compare_docs(const std::string& file, const benchjson::Value& old_doc,
                  const benchjson::Value& new_doc, const Thresholds& th,
                  Report& out);

/// Compares every BENCH_*.json in `old_dir` against its namesake in
/// `new_dir`.
[[nodiscard]] Report compare_dirs(const std::string& old_dir,
                                  const std::string& new_dir,
                                  const Thresholds& th);

/// Renders the report as a markdown delta table (regressions first).
[[nodiscard]] std::string to_markdown(const Report& report,
                                      const Thresholds& th);

}  // namespace polardraw::benchdiff
