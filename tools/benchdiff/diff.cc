#include "diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace polardraw::benchdiff {
namespace fs = std::filesystem;
using benchjson::Value;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Last dotted segment, e.g. "p95_ms" from "stages.core.hmm_decode.p95_ms".
std::string last_segment(const std::string& key) {
  const std::size_t dot = key.rfind('.');
  return dot == std::string::npos ? key : key.substr(dot + 1);
}

/// Flattens the numeric leaves we sentinel: headline metrics, registry
/// counters, per-stage percentiles, and the top-level wall clock. Config
/// and gauges are environment descriptions, not trajectories, so they are
/// deliberately not compared.
void flatten(const Value& doc,
             std::vector<std::pair<std::string, double>>& out) {
  if (const Value* wall = doc.find("wall_s"); wall && wall->is_number()) {
    out.emplace_back("wall_s", wall->number);
  }
  for (const char* section : {"metrics", "counters"}) {
    const Value* obj = doc.find(section);
    if (obj == nullptr || !obj->is_object()) continue;
    for (const auto& [k, v] : obj->object) {
      if (v.is_number()) {
        out.emplace_back(std::string(section) + "." + k, v.number);
      }
    }
  }
  if (const Value* stages = doc.find("stages"); stages && stages->is_object()) {
    for (const auto& [stage, entry] : stages->object) {
      if (!entry.is_object()) continue;
      for (const auto& [k, v] : entry.object) {
        if (v.is_number()) {
          out.emplace_back("stages." + stage + "." + k, v.number);
        }
      }
    }
  }
}

double find_value(const std::vector<std::pair<std::string, double>>& kv,
                  const std::string& key, bool& found) {
  for (const auto& [k, v] : kv) {
    if (k == key) {
      found = true;
      return v;
    }
  }
  found = false;
  return 0.0;
}

Verdict judge(MetricClass cls, double old_v, double new_v,
              const Thresholds& th) {
  switch (cls) {
    case MetricClass::kAccuracy: {
      // Deterministic under pinned seeds; any drop beyond the absolute
      // floor is a real behavior change, not noise.
      const double diff = new_v - old_v;
      if (std::fabs(diff) <= th.accuracy_abs_tol) return Verdict::kUnchanged;
      return diff < 0.0 ? Verdict::kRegressed : Verdict::kImproved;
    }
    case MetricClass::kThroughput:
    case MetricClass::kTime: {
      if (old_v < 0.0 || new_v < 0.0) {
        // Negative durations/rates are malformed exports, not trends.
        return old_v == new_v ? Verdict::kUnchanged : Verdict::kInfo;
      }
      if (old_v == 0.0 || new_v == 0.0) {
        // The degradation factor divides by whichever side anchors it, so
        // a legitimate zero (a sub-resolution smoke timing, an idle-path
        // rate) used to collapse to inf/NaN and a silently-passing kInfo.
        // Zero-adjacent comparisons are judged by absolute drift instead.
        if (std::fabs(new_v - old_v) <= th.zero_perf_abs_tol) {
          return Verdict::kUnchanged;
        }
        const bool grew = new_v > old_v;
        if (cls == MetricClass::kThroughput) {
          return grew ? Verdict::kImproved : Verdict::kRegressed;
        }
        return grew ? Verdict::kRegressed : Verdict::kImproved;
      }
      // Judge by the degradation *factor*, symmetric in log space: with
      // tol t, up to (1+t)x worse passes in either unit (time growing or
      // throughput shrinking). A plain relative delta cannot express
      // "allow a 5x-slower machine" for time without disabling the
      // throughput gate entirely, since a throughput drop is capped at
      // -100% while a slowdown is unbounded.
      const double worse_factor =
          cls == MetricClass::kThroughput ? old_v / new_v : new_v / old_v;
      if (worse_factor > 1.0 + th.perf_rel_tol) return Verdict::kRegressed;
      if (1.0 / worse_factor > 1.0 + th.perf_rel_tol) {
        return Verdict::kImproved;
      }
      return Verdict::kUnchanged;
    }
    case MetricClass::kCount:
      // A count change means the experiment shape changed (config drift,
      // trial-count edit); that wants eyes, not a hard failure.
      return old_v == new_v ? Verdict::kUnchanged : Verdict::kWarning;
    case MetricClass::kUnknown:
      return old_v == new_v ? Verdict::kUnchanged : Verdict::kInfo;
  }
  return Verdict::kInfo;
}

std::string fmt_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

const char* verdict_word(Verdict v) {
  switch (v) {
    case Verdict::kUnchanged: return "unchanged";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "**REGRESSED**";
    case Verdict::kWarning: return "warning";
    case Verdict::kInfo: return "info";
    case Verdict::kNew: return "new";
  }
  return "info";
}

const char* class_word(MetricClass c) {
  switch (c) {
    case MetricClass::kAccuracy: return "accuracy";
    case MetricClass::kThroughput: return "throughput";
    case MetricClass::kTime: return "time";
    case MetricClass::kCount: return "count";
    case MetricClass::kUnknown: return "unknown";
  }
  return "unknown";
}

}  // namespace

bool Report::has_regression() const {
  if (!missing_files.empty() || !errors.empty()) return true;
  return std::any_of(deltas.begin(), deltas.end(), [](const MetricDelta& d) {
    return d.verdict == Verdict::kRegressed;
  });
}

std::size_t Report::count(Verdict v) const {
  return static_cast<std::size_t>(
      std::count_if(deltas.begin(), deltas.end(),
                    [v](const MetricDelta& d) { return d.verdict == v; }));
}

MetricClass classify_metric(const std::string& key) {
  const std::string leaf = last_segment(key);
  if (leaf.find("accuracy") != std::string::npos) return MetricClass::kAccuracy;
  if (ends_with(leaf, "_per_s")) return MetricClass::kThroughput;
  if (leaf == "count" || leaf == "trials" || leaf == "windows" ||
      leaf == "decode_reps" || key.rfind("counters.", 0) == 0) {
    return MetricClass::kCount;
  }
  if (ends_with(leaf, "_ms") || ends_with(leaf, "_s") || leaf == "wall_s") {
    return MetricClass::kTime;
  }
  return MetricClass::kUnknown;
}

void compare_docs(const std::string& file, const Value& old_doc,
                  const Value& new_doc, const Thresholds& th, Report& out) {
  std::vector<std::pair<std::string, double>> old_kv;
  std::vector<std::pair<std::string, double>> new_kv;
  flatten(old_doc, old_kv);
  flatten(new_doc, new_kv);

  // Every baseline metric must still exist: a metric that vanished from
  // the candidate is a regression of the export itself.
  for (const auto& [key, old_v] : old_kv) {
    MetricDelta d;
    d.file = file;
    d.key = key;
    d.cls = classify_metric(key);
    d.old_value = old_v;
    bool found = false;
    d.new_value = find_value(new_kv, key, found);
    if (!found) {
      d.missing_new = true;
      d.verdict = d.cls == MetricClass::kCount || d.cls == MetricClass::kUnknown
                      ? Verdict::kWarning
                      : Verdict::kRegressed;
    } else {
      d.verdict = judge(d.cls, old_v, d.new_value, th);
    }
    out.deltas.push_back(std::move(d));
  }
  // Candidate-only metrics are reported as "new" rather than silently
  // lumped with info: a PR that adds instrumentation should show it.
  for (const auto& [key, new_v] : new_kv) {
    bool found = false;
    find_value(old_kv, key, found);
    if (found) continue;
    MetricDelta d;
    d.file = file;
    d.key = key;
    d.cls = classify_metric(key);
    d.missing_old = true;
    d.new_value = new_v;
    d.verdict = Verdict::kNew;
    out.deltas.push_back(std::move(d));
  }
}

namespace {

benchjson::ParseResult parse_file(const fs::path& path, Report& report) {
  std::ifstream is(path);
  benchjson::ParseResult out;
  if (!is) {
    report.errors.push_back("cannot read " + path.string());
    return out;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  out = benchjson::parse(buf.str());
  if (!out.ok) {
    report.errors.push_back(path.string() + ": " + out.error);
  }
  return out;
}

std::vector<std::string> bench_files(const std::string& dir, Report& report) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
      names.push_back(name);
    }
  }
  if (ec) report.errors.push_back("cannot list " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

Report compare_dirs(const std::string& old_dir, const std::string& new_dir,
                    const Thresholds& th) {
  Report report;
  const auto old_names = bench_files(old_dir, report);
  const auto new_names = bench_files(new_dir, report);
  if (old_names.empty() && report.errors.empty()) {
    report.errors.push_back("no BENCH_*.json files in " + old_dir);
  }

  for (const std::string& name : old_names) {
    if (std::find(new_names.begin(), new_names.end(), name) ==
        new_names.end()) {
      report.missing_files.push_back(name);
      continue;
    }
    const auto old_doc = parse_file(fs::path(old_dir) / name, report);
    const auto new_doc = parse_file(fs::path(new_dir) / name, report);
    if (!old_doc.ok || !new_doc.ok) continue;
    compare_docs(name, old_doc.root, new_doc.root, th, report);
  }
  for (const std::string& name : new_names) {
    if (std::find(old_names.begin(), old_names.end(), name) ==
        old_names.end()) {
      report.new_files.push_back(name);
    }
  }
  return report;
}

std::string to_markdown(const Report& report, const Thresholds& th) {
  std::ostringstream os;
  os << "# benchdiff report\n\n";
  os << "Thresholds: accuracy abs tol " << fmt_num(th.accuracy_abs_tol)
     << ", perf rel tol " << fmt_num(th.perf_rel_tol)
     << ", zero-baseline perf abs tol " << fmt_num(th.zero_perf_abs_tol)
     << ".\n\n";

  for (const auto& e : report.errors) os << "- ERROR: " << e << "\n";
  for (const auto& f : report.missing_files) {
    os << "- **REGRESSED**: " << f << " missing from the new directory\n";
  }
  for (const auto& f : report.new_files) {
    os << "- info: " << f << " only in the new directory\n";
  }
  if (!report.errors.empty() || !report.missing_files.empty() ||
      !report.new_files.empty()) {
    os << "\n";
  }

  os << "| file | metric | class | old | new | delta | verdict |\n"
     << "|---|---|---|---:|---:|---:|---|\n";
  // Regressions first, then warnings, so a failing CI log leads with the
  // offending metric.
  const Verdict order[] = {Verdict::kRegressed, Verdict::kWarning,
                           Verdict::kImproved, Verdict::kNew,
                           Verdict::kInfo,     Verdict::kUnchanged};
  for (Verdict want : order) {
    for (const auto& d : report.deltas) {
      if (d.verdict != want) continue;
      os << "| " << d.file << " | " << d.key << " | " << class_word(d.cls)
         << " | " << (d.missing_old ? "-" : fmt_num(d.old_value)) << " | "
         << (d.missing_new ? "missing" : fmt_num(d.new_value)) << " | ";
      if (d.missing_old || d.missing_new) {
        os << "-";
      } else if (d.old_value != 0.0 && (d.cls == MetricClass::kThroughput ||
                                        d.cls == MetricClass::kTime)) {
        os << fmt_num(100.0 * (d.new_value - d.old_value) /
                      std::fabs(d.old_value))
           << "%";
      } else {
        os << fmt_num(d.new_value - d.old_value);
      }
      os << " | " << verdict_word(d.verdict) << " |\n";
    }
  }

  os << "\nSummary: " << report.count(Verdict::kRegressed) << " regressed, "
     << report.count(Verdict::kWarning) << " warnings, "
     << report.count(Verdict::kImproved) << " improved, "
     << report.count(Verdict::kUnchanged) << " unchanged, "
     << report.count(Verdict::kNew) << " new, "
     << report.count(Verdict::kInfo) << " informational.\n";
  os << "Result: "
     << (report.has_regression() ? "**REGRESSION DETECTED**" : "clean")
     << "\n";
  return os.str();
}

}  // namespace polardraw::benchdiff
