// benchdiff: compares two directories of BENCH_*.json exports and exits
// nonzero when the new one regressed (DESIGN.md section 12).
//
// Usage:
//   benchdiff <old_dir> <new_dir> [--out <report.md>]
//             [--perf-rel-tol <x>] [--accuracy-abs-tol <x>]
//             [--zero-perf-abs-tol <x>]
//
// Prints the markdown delta report to stdout (and to --out when given).
// Exit codes: 0 clean, 1 regression detected, 2 usage error.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "diff.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <old_dir> <new_dir> [--out <report.md>]"
               " [--perf-rel-tol <x>] [--accuracy-abs-tol <x>]"
               " [--zero-perf-abs-tol <x>]\n";
  return 2;
}

bool parse_tol(const char* text, double& out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == nullptr || *end != '\0' || v < 0.0) return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string old_dir;
  std::string new_dir;
  std::string out_path;
  polardraw::benchdiff::Thresholds th;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--perf-rel-tol" && i + 1 < argc) {
      if (!parse_tol(argv[++i], th.perf_rel_tol)) return usage(argv[0]);
    } else if (arg == "--accuracy-abs-tol" && i + 1 < argc) {
      if (!parse_tol(argv[++i], th.accuracy_abs_tol)) return usage(argv[0]);
    } else if (arg == "--zero-perf-abs-tol" && i + 1 < argc) {
      if (!parse_tol(argv[++i], th.zero_perf_abs_tol)) return usage(argv[0]);
    } else if (old_dir.empty()) {
      old_dir = arg;
    } else if (new_dir.empty()) {
      new_dir = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (old_dir.empty() || new_dir.empty()) return usage(argv[0]);

  const auto report = polardraw::benchdiff::compare_dirs(old_dir, new_dir, th);
  const std::string md = polardraw::benchdiff::to_markdown(report, th);
  std::cout << md;
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "benchdiff: cannot write " << out_path << "\n";
      return 1;
    }
    os << md;
  }
  return report.has_regression() ? 1 : 0;
}
