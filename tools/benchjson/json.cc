#include "json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace polardraw::benchjson {

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult out;
    skip_ws();
    if (!parse_value(out.root)) {
      out.error = error_;
      return out;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      out.error = where() + "trailing characters after document";
      return out;
    }
    out.ok = true;
    return out;
  }

 private:
  [[nodiscard]] std::string where() const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return "line " + std::to_string(line) + ": ";
  }

  bool fail(const std::string& msg) {
    if (error_.empty()) error_ = where() + msg;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool expect(char c) {
    if (peek() != c) return fail(std::string("expected '") + c + "'");
    ++pos_;
    return true;
  }

  bool parse_value(Value& out) {
    if (depth_ > kMaxDepth) return fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.type = Value::Type::kString;
        return parse_string(out.string);
      }
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::kObject;
    ++depth_;
    if (!expect('{')) return false;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      Value member;
      if (!parse_value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (!expect('}')) return false;
      --depth_;
      return true;
    }
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::kArray;
    ++depth_;
    if (!expect('[')) return false;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      Value element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (!expect(']')) return false;
      --depth_;
      return true;
    }
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not needed by
          // the writer, which only escapes control characters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape sequence");
      }
    }
  }

  bool parse_bool(Value& out) {
    out.type = Value::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("expected boolean");
  }

  bool parse_null(Value& out) {
    if (text_.substr(pos_, 4) != "null") return fail("expected null");
    out.type = Value::Type::kNull;
    pos_ += 4;
    return true;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      return fail("malformed number");
    }
    out.type = Value::Type::kNumber;
    out.number = v;
    return true;
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

void require_number_members(const Value* obj, const char* key,
                            std::vector<std::string>& problems) {
  if (obj == nullptr || !obj->is_object()) {
    problems.push_back(std::string(key) + ": missing or not an object");
    return;
  }
  for (const auto& [k, v] : obj->object) {
    if (!v.is_number()) {
      problems.push_back(std::string(key) + "." + k + ": not a number");
    }
  }
}

}  // namespace

ParseResult parse(std::string_view text) { return Parser(text).run(); }

std::vector<std::string> validate_bench_json(const Value& root) {
  std::vector<std::string> problems;
  if (!root.is_object()) {
    problems.emplace_back("root: not an object");
    return problems;
  }

  const Value* version = root.find("schema_version");
  if (version == nullptr || !version->is_number() || version->number != 1.0) {
    problems.emplace_back("schema_version: missing or != 1");
  }
  const Value* name = root.find("name");
  if (name == nullptr || !name->is_string() || name->string.empty()) {
    problems.emplace_back("name: missing or empty");
  }
  const Value* sha = root.find("git_sha");
  if (sha == nullptr || !sha->is_string() || sha->string.empty()) {
    problems.emplace_back("git_sha: missing or empty");
  }
  const Value* smoke = root.find("smoke");
  if (smoke == nullptr || !smoke->is_bool()) {
    problems.emplace_back("smoke: missing or not a boolean");
  }
  const Value* wall = root.find("wall_s");
  if (wall == nullptr || !wall->is_number() || wall->number < 0.0) {
    problems.emplace_back("wall_s: missing or negative");
  }

  require_number_members(root.find("config"), "config", problems);
  require_number_members(root.find("metrics"), "metrics", problems);
  require_number_members(root.find("counters"), "counters", problems);
  require_number_members(root.find("gauges"), "gauges", problems);

  const Value* stages = root.find("stages");
  if (stages == nullptr || !stages->is_object()) {
    problems.emplace_back("stages: missing or not an object");
  } else {
    static constexpr const char* kStageKeys[] = {"count", "total_s", "mean_ms",
                                                 "p50_ms", "p95_ms"};
    for (const auto& [stage, entry] : stages->object) {
      if (!entry.is_object()) {
        problems.push_back("stages." + stage + ": not an object");
        continue;
      }
      for (const char* k : kStageKeys) {
        const Value* v = entry.find(k);
        if (v == nullptr || !v->is_number()) {
          problems.push_back("stages." + stage + "." + k +
                             ": missing or not a number");
        }
      }
    }
  }
  return problems;
}

std::vector<std::string> validate_chrome_trace(const Value& root) {
  std::vector<std::string> problems;

  const std::vector<Value>* events = nullptr;
  if (root.type == Value::Type::kArray) {
    events = &root.array;
  } else if (root.is_object()) {
    const Value* te = root.find("traceEvents");
    if (te == nullptr || te->type != Value::Type::kArray) {
      problems.emplace_back("traceEvents: missing or not an array");
      return problems;
    }
    events = &te->array;
  } else {
    problems.emplace_back("root: not an object or array");
    return problems;
  }

  if (events->empty()) {
    problems.emplace_back("traceEvents: empty (no events recorded)");
    return problems;
  }

  const std::string kPhases = "XiIMBECstf";
  for (std::size_t i = 0; i < events->size(); ++i) {
    // Stop after a few bad events; one structural break tends to cascade.
    if (problems.size() >= 10) {
      problems.emplace_back("... further problems suppressed");
      break;
    }
    const Value& e = (*events)[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (!e.is_object()) {
      problems.push_back(at + ": not an object");
      continue;
    }
    const Value* name = e.find("name");
    if (name == nullptr || !name->is_string() || name->string.empty()) {
      problems.push_back(at + ".name: missing or empty");
    }
    const Value* ph = e.find("ph");
    const bool ph_ok = ph != nullptr && ph->is_string() &&
                       ph->string.size() == 1 &&
                       kPhases.find(ph->string[0]) != std::string::npos;
    if (!ph_ok) {
      problems.push_back(at + ".ph: missing or not one of X i I M B E C s t f");
    }
    const Value* ts = e.find("ts");
    if (ts == nullptr || !ts->is_number() || ts->number < 0.0) {
      problems.push_back(at + ".ts: missing or negative");
    }
    for (const char* k : {"pid", "tid"}) {
      const Value* v = e.find(k);
      if (v == nullptr || !v->is_number()) {
        problems.push_back(at + "." + k + ": missing or not a number");
      }
    }
    if (ph_ok && ph->string[0] == 'X') {
      const Value* dur = e.find("dur");
      if (dur == nullptr || !dur->is_number() || dur->number < 0.0) {
        problems.push_back(at + ".dur: missing or negative ('X' event)");
      }
    }
    // Flow events (causal report chains) match on (cat, name, id): a
    // non-numeric or missing id breaks the arrows silently in Perfetto,
    // so pin it here.
    if (ph_ok && (ph->string[0] == 's' || ph->string[0] == 't' ||
                  ph->string[0] == 'f')) {
      const Value* fid = e.find("id");
      if (fid == nullptr || !fid->is_number() || fid->number < 0.0) {
        problems.push_back(at + ".id: missing or not a nonnegative number "
                           "(flow event)");
      }
      const Value* cat = e.find("cat");
      if (cat == nullptr || !cat->is_string() || cat->string.empty()) {
        problems.push_back(at + ".cat: missing or empty (flow event)");
      }
    }
    const Value* args = e.find("args");
    if (args != nullptr && !args->is_object()) {
      problems.push_back(at + ".args: present but not an object");
    }
  }
  return problems;
}

std::vector<std::string> validate_status_json(const Value& root) {
  std::vector<std::string> problems;
  if (!root.is_object()) {
    problems.emplace_back("root: not an object");
    return problems;
  }

  const Value* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "polardraw.statusz.v1") {
    problems.emplace_back("schema: missing or != polardraw.statusz.v1");
  }
  const Value* t_s = root.find("t_s");
  if (t_s == nullptr || !t_s->is_number() || t_s->number < 0.0) {
    problems.emplace_back("t_s: missing or negative");
  }
  const Value* count = root.find("session_count");
  if (count == nullptr || !count->is_number() || count->number < 0.0) {
    problems.emplace_back("session_count: missing or negative");
  }

  const Value* sessions = root.find("sessions");
  if (sessions == nullptr || sessions->type != Value::Type::kArray) {
    problems.emplace_back("sessions: missing or not an array");
  } else {
    if (count != nullptr && count->is_number() &&
        count->number != static_cast<double>(sessions->array.size())) {
      problems.emplace_back("session_count: does not match sessions length");
    }
    for (std::size_t i = 0; i < sessions->array.size(); ++i) {
      if (problems.size() >= 10) {
        problems.emplace_back("... further problems suppressed");
        break;
      }
      const Value& s = sessions->array[i];
      const std::string at = "sessions[" + std::to_string(i) + "]";
      if (!s.is_object()) {
        problems.push_back(at + ": not an object");
        continue;
      }
      for (const char* k : {"id", "mailbox_depth", "submitted", "committed",
                            "commit_lag", "last_t_s"}) {
        const Value* v = s.find(k);
        if (v == nullptr || !v->is_number()) {
          problems.push_back(at + "." + k + ": missing or not a number");
        }
      }
      for (const char* k : {"seeded", "lagging", "starved", "backpressured"}) {
        const Value* v = s.find(k);
        if (v == nullptr || !v->is_bool()) {
          problems.push_back(at + "." + k + ": missing or not a boolean");
        }
      }
    }
  }

  const Value* rolling = root.find("rolling");
  if (rolling == nullptr || !rolling->is_object()) {
    problems.emplace_back("rolling: missing or not an object");
  } else {
    for (const char* k : {"window_s", "count", "p50_s", "p99_s"}) {
      const Value* v = rolling->find(k);
      if (v == nullptr || !v->is_number()) {
        problems.push_back(std::string("rolling.") + k +
                           ": missing or not a number");
      }
    }
  }

  const Value* registry = root.find("registry");
  if (registry == nullptr || !registry->is_object()) {
    problems.emplace_back("registry: missing or not an object");
  } else {
    require_number_members(registry->find("counters"), "registry.counters",
                           problems);
  }

  const Value* trace = root.find("trace");
  if (trace == nullptr || !trace->is_object()) {
    problems.emplace_back("trace: missing or not an object");
  } else {
    const Value* dropped = trace->find("dropped_events");
    if (dropped == nullptr || !dropped->is_number() || dropped->number < 0.0) {
      problems.emplace_back("trace.dropped_events: missing or negative");
    }
  }
  return problems;
}

}  // namespace polardraw::benchjson
