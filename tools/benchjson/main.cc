// benchjson: runs every bench binary in JSON-export mode and validates the
// emitted BENCH_<name>.json files against the schema contract.
//
// Usage:
//   benchjson [--smoke] [--bench-dir <dir>] [--out-dir <dir>]
//             [--filter <substr>] [--check]
//   benchjson --validate-trace <file.json>
//   benchjson --validate-status <file.json>
//
//   --smoke      set PD_BENCH_SMOKE=1 (tiny configurations, CI-speed)
//   --bench-dir  directory holding the bench_* executables
//                (default: build/bench)
//   --out-dir    directory receiving BENCH_*.json + per-binary logs
//                (default: bench-json)
//   --filter     only run binaries whose file name contains the substring
//   --check      skip running; only validate the JSON already in --out-dir
//   --validate-trace  parse one Chrome trace-event file (TRACE_*.json) and
//                check it against validate_chrome_trace(); exit 0 iff valid
//   --validate-status  parse one statusz file (STATUS_*.json, as written
//                mid-run by the server benches) and check it against
//                validate_status_json(); exit 0 iff valid
//
// Exit code 0 iff every selected binary ran successfully and every JSON
// file in the output directory passes validate_bench_json(). Each binary
// runs with PD_BENCH_JSON_ONLY=1 (experiment + JSON, no google-benchmark
// timings) and PD_GIT_SHA set from `git rev-parse` when available.
#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "json.h"

namespace fs = std::filesystem;
using polardraw::benchjson::parse;
using polardraw::benchjson::validate_bench_json;
using polardraw::benchjson::validate_chrome_trace;
using polardraw::benchjson::validate_status_json;

namespace {

struct Options {
  bool smoke = false;
  bool check_only = false;
  std::string bench_dir = "build/bench";
  std::string out_dir = "bench-json";
  std::string filter;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--smoke] [--bench-dir <dir>] [--out-dir <dir>]"
               " [--filter <substr>] [--check]\n"
               "       "
            << argv0 << " --validate-trace <file.json>\n"
               "       "
            << argv0 << " --validate-status <file.json>\n";
  return 2;
}

/// Decodes a std::system() status into a human-readable verdict: the exit
/// status when the child exited, or the terminating signal. A bench binary
/// that returns nonzero (e.g. a failed JSON write) must fail the runner,
/// not silently pass, so the raw wait status is never shown to the user.
std::string describe_status(int status) {
  if (status == -1) return "could not launch (system() failed)";
  if (WIFEXITED(status)) {
    return "exit " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "unknown wait status " + std::to_string(status);
}

/// `git rev-parse HEAD` of the current directory, or "" when unavailable.
std::string git_head_sha() {
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "";
  char buf[128];
  std::string out;
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) out += buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

std::vector<fs::path> discover_benches(const Options& opt) {
  std::vector<fs::path> benches;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opt.bench_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("bench_", 0) != 0) continue;
    if (name.find('.') != std::string::npos) continue;  // logs, not binaries
    if (!opt.filter.empty() && name.find(opt.filter) == std::string::npos) {
      continue;
    }
    benches.push_back(entry.path());
  }
  std::sort(benches.begin(), benches.end());
  return benches;
}

bool run_benches(const Options& opt, const std::vector<fs::path>& benches) {
  ::setenv("PD_BENCH_JSON_DIR", opt.out_dir.c_str(), 1);
  ::setenv("PD_BENCH_JSON_ONLY", "1", 1);
  if (opt.smoke) {
    ::setenv("PD_BENCH_SMOKE", "1", 1);
  }
  if (std::getenv("PD_GIT_SHA") == nullptr) {
    const std::string sha = git_head_sha();
    ::setenv("PD_GIT_SHA", sha.empty() ? "unknown" : sha.c_str(), 1);
  }

  bool all_ok = true;
  for (const fs::path& bin : benches) {
    const std::string name = bin.filename().string();
    const std::string log = opt.out_dir + "/" + name + ".log";
    std::string cmd = "\"";
    cmd += bin.string();
    cmd += "\" > \"";
    cmd += log;
    cmd += "\" 2>&1";
    std::cout << "run  " << name << " ... " << std::flush;
    const int status = std::system(cmd.c_str());
    const bool exited_zero = status != -1 && WIFEXITED(status) &&
                             WEXITSTATUS(status) == 0;
    if (exited_zero) {
      std::cout << "ok\n";
    } else {
      std::cout << "FAILED (" << describe_status(status) << ", see " << log
                << ")\n";
      all_ok = false;
    }
  }
  return all_ok;
}

/// --validate-trace: parse + schema-check one Chrome trace-event file.
int validate_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "benchjson: cannot read " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto parsed = parse(buf.str());
  if (!parsed.ok) {
    std::cout << "trace " << path << " ... PARSE ERROR (" << parsed.error
              << ")\n";
    return 1;
  }
  const auto problems = validate_chrome_trace(parsed.root);
  if (problems.empty()) {
    std::cout << "trace " << path << " ... valid\n";
    return 0;
  }
  std::cout << "trace " << path << " ... INVALID\n";
  for (const auto& p : problems) std::cout << "     " << p << "\n";
  return 1;
}

/// --validate-status: parse + schema-check one statusz document.
int validate_status_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "benchjson: cannot read " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto parsed = parse(buf.str());
  if (!parsed.ok) {
    std::cout << "status " << path << " ... PARSE ERROR (" << parsed.error
              << ")\n";
    return 1;
  }
  const auto problems = validate_status_json(parsed.root);
  if (problems.empty()) {
    std::cout << "status " << path << " ... valid\n";
    return 0;
  }
  std::cout << "status " << path << " ... INVALID\n";
  for (const auto& p : problems) std::cout << "     " << p << "\n";
  return 1;
}

bool validate_outputs(const Options& opt, std::size_t n_benches_run) {
  std::vector<fs::path> jsons;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opt.out_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
      jsons.push_back(entry.path());
    }
  }
  std::sort(jsons.begin(), jsons.end());

  bool all_ok = true;
  for (const fs::path& path : jsons) {
    std::ifstream is(path);
    std::ostringstream buf;
    buf << is.rdbuf();
    const auto parsed = parse(buf.str());
    if (!parsed.ok) {
      std::cout << "json " << path.filename().string() << " ... PARSE ERROR ("
                << parsed.error << ")\n";
      all_ok = false;
      continue;
    }
    const auto problems = validate_bench_json(parsed.root);
    if (problems.empty()) {
      std::cout << "json " << path.filename().string() << " ... valid\n";
    } else {
      std::cout << "json " << path.filename().string() << " ... INVALID\n";
      for (const auto& p : problems) std::cout << "     " << p << "\n";
      all_ok = false;
    }
  }

  if (jsons.empty()) {
    std::cout << "no BENCH_*.json files in " << opt.out_dir << "\n";
    all_ok = false;
  }
  if (n_benches_run > 0 && jsons.size() < n_benches_run) {
    std::cout << "only " << jsons.size() << " of " << n_benches_run
              << " bench binaries produced JSON\n";
    all_ok = false;
  }
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--check") {
      opt.check_only = true;
    } else if (arg == "--bench-dir" && i + 1 < argc) {
      opt.bench_dir = argv[++i];
    } else if (arg == "--out-dir" && i + 1 < argc) {
      opt.out_dir = argv[++i];
    } else if (arg == "--filter" && i + 1 < argc) {
      opt.filter = argv[++i];
    } else if (arg == "--validate-trace" && i + 1 < argc) {
      return validate_trace_file(argv[++i]);
    } else if (arg == "--validate-status" && i + 1 < argc) {
      return validate_status_file(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }

  std::size_t n_run = 0;
  bool ok = true;
  if (!opt.check_only) {
    const auto benches = discover_benches(opt);
    if (benches.empty()) {
      std::cerr << "no bench_* binaries found in " << opt.bench_dir << "\n";
      return 1;
    }
    std::error_code ec;
    fs::create_directories(opt.out_dir, ec);
    // Probe writability up front: a read-only or uncreatable out-dir would
    // otherwise surface as N cryptic per-binary failures. The bench
    // binaries see the same directory via PD_BENCH_JSON_DIR.
    {
      const std::string probe_path = opt.out_dir + "/.benchjson-probe";
      std::ofstream probe(probe_path);
      if (!probe) {
        std::cerr << "benchjson: output directory " << opt.out_dir
                  << " is not writable (bench binaries would fail to write "
                     "PD_BENCH_JSON_DIR)\n";
        return 1;
      }
      probe.close();
      fs::remove(probe_path, ec);
    }
    n_run = benches.size();
    ok = run_benches(opt, benches);
  }
  ok = validate_outputs(opt, n_run) && ok;
  std::cout << (ok ? "benchjson: all checks passed\n"
                   : "benchjson: FAILURES\n");
  return ok ? 0 : 1;
}
