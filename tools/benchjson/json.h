// Minimal recursive-descent JSON parser and BENCH_*.json schema checker
// (no third-party dependencies) for the benchjson runner and its tests.
//
// The parser accepts RFC 8259 JSON (objects, arrays, strings with escape
// sequences, numbers, booleans, null) into a simple tree of Values; the
// validator pins the schema contract of the BENCH_<name>.json files that
// bench::Session emits, so a schema drift fails CI instead of silently
// breaking downstream dashboards.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace polardraw::benchjson {

/// One parsed JSON value. Object members keep file order.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_bool() const { return type == Type::kBool; }

  /// Member lookup on objects; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
};

/// Outcome of a parse: `ok` plus either the root value or an error message
/// with a 1-based line number.
struct ParseResult {
  bool ok = false;
  Value root;
  std::string error;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected).
[[nodiscard]] ParseResult parse(std::string_view text);

/// Checks a parsed BENCH_*.json document against the schema contract
/// (schema_version 1). Returns human-readable problems; empty means valid.
[[nodiscard]] std::vector<std::string> validate_bench_json(const Value& root);

/// Checks a parsed Chrome trace-event document (TRACE_*.json, as written
/// by obs::Tracer::write_chrome_trace and loadable in Perfetto). Accepts
/// either the object form {"traceEvents": [...]} or a bare event array.
/// Every event needs a nonempty name, a one-character ph in {X,i,I,M,B,E,C},
/// a nonnegative numeric ts, and numeric pid/tid; 'X' events additionally
/// need a nonnegative dur, and args (when present) must be an object.
/// Returns human-readable problems; empty means valid.
[[nodiscard]] std::vector<std::string> validate_chrome_trace(
    const Value& root);

/// Checks a parsed STATUS_*.json document (SessionServer::status(), schema
/// "polardraw.statusz.v1"): top-level schema/t_s/session_count/sessions,
/// per-session required members with the seeded/lagging/starved/
/// backpressured flags as booleans, the rolling block (count, p50_s,
/// p99_s), registry.counters as numbers, and trace.dropped_events.
/// Returns human-readable problems; empty means valid.
[[nodiscard]] std::vector<std::string> validate_status_json(const Value& root);

}  // namespace polardraw::benchjson
