// polarlint: PolarDraw's domain-aware static-analysis pass.
//
// The decode chain's correctness rests on a handful of repo-wide conventions
// that ordinary compilers cannot check: phase lives on the circle [0, 2*pi)
// and is only ever folded through common/angles.h; power lives in dBm and is
// only ever converted through common/units.h; randomness flows down from
// explicitly derived seeds (common/rng.h + common/seed.h); and hot-path files
// avoid node-based hash maps. polarlint parses translation units line-wise
// with a small tokenizer and enforces:
//
//   R1  no raw std::fmod / angle folding outside common/angles.h -- callers
//       must use wrap_2pi / wrap_pi / fold_pi / angle_diff. A bare fmod on a
//       non-angle quantity (e.g. a time cycle) is fine; the rule fires only
//       when the same statement mentions angle-ish identifiers.
//   R2  no raw std::pow(10.0, x / 10|20) or log10-based dB math outside
//       common/units.h -- use dbm_to_mw / db_to_ratio / db_to_amplitude_ratio
//       / mw_to_dbm / ratio_to_db.
//   R3  every double struct field or function parameter whose name says it
//       holds an angle or a power must carry a _rad / _deg / _dbm / _db /
//       _dbi / _mw suffix. Pre-existing names are grandfathered in the
//       baseline file and ratcheted down.
//   R4  no std::rand / srand / std::random_device outside common/rng.h and
//       common/seed.h (determinism guard: seeds always derive from the
//       harness, never from entropy or global state).
//   R5  no std::unordered_map in files tagged `// polarlint: hot-path`
//       (the PR-2 scoreboard lesson: node-based maps wreck the decode loop).
//
// Any finding can be suppressed at the site with
//     // polarlint-allow(Rn): <reason>
// on the same line or the line directly above; the reason is mandatory.
// Known limitations (deliberate, it is a lexer not a frontend): only the
// first declarator of a comma-chained declaration is checked by R3, and
// R1's angle-evidence scan is per physical line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace polarlint {

struct Violation {
  std::string rule;     // "R1".."R5", or "DIRECTIVE" for malformed directives
  std::string path;     // file path as given to lint_source
  int line = 0;         // 1-based
  std::string key;      // rule-specific stable payload (identifier or line)
  std::string message;  // human-readable explanation

  /// Stable identity used by the baseline file: "Rn|path|key". Line numbers
  /// are deliberately excluded so unrelated edits do not churn the baseline.
  std::string baseline_key() const { return rule + "|" + path + "|" + key; }
};

/// Lints one translation unit. `path` is used for reporting, baseline keys
/// and the per-file exemptions (common/angles.h may fmod, common/units.h may
/// pow10, common/rng.h + common/seed.h may touch entropy).
std::vector<Violation> lint_source(std::string_view path, std::string_view content);

/// True if `content` carries the `// polarlint: hot-path` tag (R5 scope).
bool is_hot_path_tagged(std::string_view content);

namespace detail {

/// One physical line split into executable text and comment text: string and
/// character literal contents are blanked in `code` (delimiters kept), and
/// comment bodies (// and /* */, including continuation lines) land in
/// `comment`.
struct SplitLine {
  std::string code;
  std::string comment;
};

/// Comment/string stripper; exposed for the self-tests.
std::vector<SplitLine> split_lines(std::string_view content);

/// Splits an identifier into lowercase words on underscores and camelCase
/// boundaries: "kTwoPi" -> {"k", "two", "pi"}, "alpha_e_rad" ->
/// {"alpha", "e", "rad"}. Trailing underscores (private members) ignored.
std::vector<std::string> identifier_words(std::string_view name);

}  // namespace detail

}  // namespace polarlint
