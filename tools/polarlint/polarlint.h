// polarlint: PolarDraw's domain-aware static-analysis pass.
//
// The decode chain's correctness rests on a handful of repo-wide conventions
// that ordinary compilers cannot check: phase lives on the circle [0, 2*pi)
// and is only ever folded through common/angles.h; power lives in dBm and is
// only ever converted through common/units.h; randomness flows down from
// explicitly derived seeds (common/rng.h + common/seed.h); hot-path files
// avoid node-based hash maps; decoded output is a pure function of the
// observation stream (no stdlib-dependent tie partitioning, no wall-clock
// reads); and mutex-holding subsystems carry Clang Thread Safety Analysis
// annotations. polarlint tokenizes each translation unit (comments and
// literals stripped, statements and symbol references resolved over the
// token stream) and enforces:
//
//   R1  no raw std::fmod / angle folding outside common/angles.h -- callers
//       must use wrap_2pi / wrap_pi / fold_pi / angle_diff. A bare fmod on a
//       non-angle quantity (e.g. a time cycle) is fine; the rule fires only
//       when the enclosing *statement* (which may span physical lines)
//       mentions angle-ish identifiers.
//   R2  no raw std::pow(10.0, x / 10|20) or log10-based dB math outside
//       common/units.h -- use dbm_to_mw / db_to_ratio / db_to_amplitude_ratio
//       / mw_to_dbm / ratio_to_db.
//   R3  every double struct field or function parameter whose name says it
//       holds an angle or a power must carry a _rad / _deg / _dbm / _db /
//       _dbi / _mw suffix. Every declarator of a comma-chained declaration
//       is checked. Pre-existing names are grandfathered in the baseline
//       file and ratcheted down.
//   R4  no std::rand / srand / std::random_device outside common/rng.h and
//       common/seed.h (determinism guard: seeds always derive from the
//       harness, never from entropy or global state).
//   R5  no std::unordered_map in files tagged `// polarlint: hot-path`
//       (the PR-2 scoreboard lesson: node-based maps wreck the decode loop).
//   R6  determinism of pruning in core/ and server/: std::sort /
//       std::stable_sort / std::partial_sort / std::nth_element over
//       float/double keys must use an index-tie-broken comparator (the PR-7
//       stdlib-independence lesson: how ties partition is implementation
//       defined, so survivor *sets* must be a pure function of the values).
//       Named comparators are resolved to their definition in the same
//       file. Unordered containers (std::unordered_{map,set,...}) are
//       banned outright in these directories -- iteration order must never
//       feed decoded output.
//   R7  no std::chrono::*_clock::now() outside obs/, common/thread_pool.h
//       and bench/ -- a clock read anywhere else in the decode chain
//       silently breaks stream/batch bit-identity. Measurement-only reads
//       (latency histograms, stage timers) are suppressed at the site with
//       a reason.
//   R8  include layering, checked from the real include graph against the
//       declared DAG (DESIGN.md section 15): obs < common < em <
//       {channel, handwriting} < rfid < {core, recognition, sim, baselines}
//       < eval < server. A src/ file may include only its own directory and
//       strictly lower layers; obs is reachable from all.
//   R9  every std::mutex-family member in src/ must be a pd::Mutex
//       (common/annotations.h) and must be referenced by at least one lock
//       annotation (PD_GUARDED_BY / PD_REQUIRES / PD_ACQUIRE / ...), so
//       Clang Thread Safety Analysis actually has a capability to track.
//
// Any finding can be suppressed at the site with an allow comment,
//     polarlint-allow(R4): seeded fuzz corpus
// style: the rule in parens, a mandatory reason after the colon, on the
// same line as the finding or the line directly above.
// Known limitations (deliberate, it is a tokenizer not a frontend):
// comparator resolution (R6) only sees definitions in the same translation
// unit, and R8 only classifies quoted project includes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace polarlint {

struct Violation {
  std::string rule;     // "R1".."R9", or "DIRECTIVE" for malformed directives
  std::string path;     // file path as given to lint_source
  int line = 0;         // 1-based
  std::string key;      // rule-specific stable payload (identifier or line)
  std::string message;  // human-readable explanation

  /// Stable identity used by the baseline file: "Rn|path|key". Line numbers
  /// are deliberately excluded so unrelated edits do not churn the baseline.
  std::string baseline_key() const { return rule + "|" + path + "|" + key; }
};

/// Lints one translation unit. `path` is used for reporting, baseline keys
/// and the per-file exemptions (common/angles.h may fmod, common/units.h may
/// pow10, common/rng.h + common/seed.h may touch entropy).
std::vector<Violation> lint_source(std::string_view path, std::string_view content);

/// True if `content` carries the `// polarlint: hot-path` tag (R5 scope).
bool is_hot_path_tagged(std::string_view content);

namespace detail {

/// One physical line split into executable text and comment text: string and
/// character literal contents are blanked in `code` (delimiters kept), and
/// comment bodies (// and /* */, including continuation lines) land in
/// `comment`.
struct SplitLine {
  std::string code;
  std::string comment;
};

/// Comment/string stripper; exposed for the self-tests.
std::vector<SplitLine> split_lines(std::string_view content);

/// Splits an identifier into lowercase words on underscores and camelCase
/// boundaries: "kTwoPi" -> {"k", "two", "pi"}, "alpha_e_rad" ->
/// {"alpha", "e", "rad"}. Trailing underscores (private members) ignored.
std::vector<std::string> identifier_words(std::string_view name);

}  // namespace detail

}  // namespace polarlint
