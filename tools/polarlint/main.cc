// polarlint CLI: lints the repo's C++ sources against the domain conventions
// documented in polarlint.h and DESIGN.md section 10.
//
// Usage:
//   polarlint [--root DIR] [--baseline FILE] [--fail-stale]
//             [--max-baseline-entries N] PATH...
//
// PATH arguments are files or directories (recursed for .h/.hpp/.cc/.cpp).
// Violations are reported as `path:line: [Rn] message`, with paths relative
// to --root (which is also how the baseline file keys them).
//
// Exit codes: 0 clean, 1 violations / ratchet failure, 2 usage error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "polarlint.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx" || ext == ".ipp";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string relative_to(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  std::string s = (ec || rel.empty()) ? file.string() : rel.string();
  for (char& c : s)
    if (c == '\\') c = '/';
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path baseline_path;
  bool fail_stale = false;
  long max_baseline = -1;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "polarlint: " << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--fail-stale") {
      fail_stale = true;
    } else if (arg == "--max-baseline-entries") {
      max_baseline = std::stol(next());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: polarlint [--root DIR] [--baseline FILE] "
                   "[--fail-stale] [--max-baseline-entries N] PATH...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "polarlint: unknown flag " << arg << "\n";
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "polarlint: no paths given (try --help)\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& in : inputs) {
    const fs::path abs = in.is_absolute() ? in : root / in;
    if (fs::is_directory(abs)) {
      for (const auto& e : fs::recursive_directory_iterator(abs))
        if (e.is_regular_file() && lintable(e.path()))
          files.push_back(e.path());
    } else if (fs::is_regular_file(abs)) {
      files.push_back(abs);
    } else {
      std::cerr << "polarlint: no such file or directory: " << in << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "polarlint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == '\n'))
        line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      baseline.insert(line);
    }
  }

  std::set<std::string> used_baseline;
  std::vector<polarlint::Violation> fresh;
  std::size_t baselined = 0;
  for (const fs::path& f : files) {
    const std::string rel = relative_to(f, root);
    for (polarlint::Violation& v : polarlint::lint_source(rel, slurp(f))) {
      if (baseline.count(v.baseline_key())) {
        used_baseline.insert(v.baseline_key());
        ++baselined;
      } else {
        fresh.push_back(std::move(v));
      }
    }
  }

  for (const auto& v : fresh)
    std::cout << v.path << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";

  std::vector<std::string> stale;
  for (const auto& e : baseline)
    if (!used_baseline.count(e)) stale.push_back(e);

  bool fail = !fresh.empty();
  if (fail_stale && !stale.empty()) {
    fail = true;
    std::cout << "polarlint: " << stale.size()
              << " stale baseline entr" << (stale.size() == 1 ? "y" : "ies")
              << " (violation fixed -- ratchet down by deleting the line):\n";
    for (const auto& e : stale) std::cout << "  " << e << "\n";
  }
  if (max_baseline >= 0 && static_cast<long>(baseline.size()) > max_baseline) {
    fail = true;
    std::cout << "polarlint: baseline grew to " << baseline.size()
              << " entries (max " << max_baseline
              << "); fix new violations instead of baselining them\n";
  }

  std::cout << "polarlint: " << files.size() << " files, " << fresh.size()
            << " violation" << (fresh.size() == 1 ? "" : "s") << " ("
            << baselined << " baselined, " << stale.size() << " stale)\n";
  return fail ? 1 : 0;
}
