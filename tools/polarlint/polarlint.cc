#include "polarlint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace polarlint {

namespace detail {

std::vector<SplitLine> split_lines(std::string_view content) {
  enum class State { kCode, kString, kChar, kLineComment, kBlockComment };
  std::vector<SplitLine> lines;
  SplitLine cur;
  State state = State::kCode;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      lines.push_back(std::move(cur));
      cur = SplitLine{};
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          cur.code += '"';
          state = State::kString;
        } else if (c == '\'') {
          cur.code += '\'';
          state = State::kChar;
        } else {
          cur.code += c;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          cur.code += ' ';
          if (next != '\0' && next != '\n') {
            cur.code += ' ';
            ++i;
          }
        } else if (c == quote) {
          cur.code += quote;
          state = State::kCode;
        } else {
          cur.code += ' ';  // blank literal contents, keep column alignment
        }
        break;
      }
      case State::kLineComment:
        cur.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          cur.comment += c;
        }
        break;
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

std::vector<std::string> identifier_words(std::string_view name) {
  while (!name.empty() && name.back() == '_') name.remove_suffix(1);
  std::vector<std::string> words;
  std::string cur;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '_') {
      if (!cur.empty()) words.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    // camelCase boundary: lower-or-digit followed by upper starts a new word.
    if (std::isupper(static_cast<unsigned char>(c)) && !cur.empty() &&
        !std::isupper(static_cast<unsigned char>(cur.back()))) {
      words.push_back(std::move(cur));
      cur.clear();
    }
    cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (!cur.empty()) words.push_back(std::move(cur));
  return words;
}

}  // namespace detail

namespace {

using detail::identifier_words;
using detail::SplitLine;

bool path_ends_with(std::string_view path, std::string_view suffix) {
  std::string p(path);
  for (char& c : p)
    if (c == '\\') c = '/';
  return p.size() >= suffix.size() &&
         p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string normalized_path(std::string_view path) {
  std::string p(path);
  for (char& c : p)
    if (c == '\\') c = '/';
  return p;
}

/// True if `component` appears as a whole path component ("obs" matches
/// src/obs/tracer.cc and tests/obs/test_tracer.cc, not src/observations/).
bool path_has_component(std::string_view path, std::string_view component) {
  const std::string p = normalized_path(path);
  std::size_t b = 0;
  while (b <= p.size()) {
    const std::size_t e = p.find('/', b);
    const std::string_view part(p.data() + b,
                                (e == std::string::npos ? p.size() : e) - b);
    if (part == component) return true;
    if (e == std::string::npos) break;
    b = e + 1;
  }
  return false;
}

bool path_starts_with(std::string_view path, std::string_view prefix) {
  const std::string p = normalized_path(path);
  return p.rfind(prefix, 0) == 0;
}

bool contains_word(const std::vector<std::string>& words, std::string_view w) {
  for (const auto& x : words)
    if (x == w) return true;
  return false;
}

// Identifiers whose presence in a statement marks the fmod operand as
// angle-like.
constexpr std::array<std::string_view, 22> kAngleEvidenceWords = {
    "pi",      "angle",   "angles",  "theta",       "phase",   "phases",
    "alpha",   "beta",    "gamma",   "azimuth",     "elevation", "rotation",
    "bearing", "heading", "orientation", "rad",     "radians", "deg",
    "degrees", "wrap",    "fold",    "polarization"};

// Name stems that mark a double field/parameter as angle- or power-valued.
constexpr std::array<std::string_view, 19> kUnitStems = {
    "angle",   "azimuth", "elevation", "phase",       "theta",
    "alpha",   "beta",    "gamma",     "rotation",    "mismatch",
    "bearing", "heading", "orientation", "tilt",      "tremor",
    "power",   "rss",     "gain",      "xpd"};

// Accepted unit suffixes (the last word of the identifier). rad2 covers
// variances of angles (rad^2).
constexpr std::array<std::string_view, 7> kUnitSuffixes = {
    "rad", "deg", "dbm", "db", "dbi", "mw", "rad2"};

// Identifier words that mark a sort key / comparator as float-valued (R6).
constexpr std::array<std::string_view, 12> kFloatKeyWords = {
    "float", "double", "logp", "prob", "probability", "weight",
    "score", "cost",   "dist", "distance", "metric",  "likelihood"};

// Thread-safety annotation macros whose arguments name mutex capabilities
// (R9). Kept in sync with common/annotations.h.
constexpr std::array<std::string_view, 8> kLockAnnotationMacros = {
    "PD_GUARDED_BY", "PD_PT_GUARDED_BY", "PD_REQUIRES",  "PD_ACQUIRE",
    "PD_RELEASE",    "PD_TRY_ACQUIRE",   "PD_EXCLUDES",  "PD_ASSERT_CAPABILITY"};

// The declared include-layering DAG (R8, DESIGN.md section 15). A src/
// directory may include itself and any directory of strictly lower rank;
// equal-rank siblings may not include each other. obs sits at the bottom so
// every layer may instrument itself.
const std::map<std::string, int>& layer_ranks() {
  static const std::map<std::string, int> ranks = {
      {"obs", 0},      {"common", 1},     {"em", 2},       {"channel", 3},
      {"handwriting", 3}, {"rfid", 4},    {"core", 5},     {"recognition", 5},
      {"sim", 5},      {"baselines", 5},  {"eval", 6},     {"server", 7}};
  return ranks;
}

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string text;
  int line = 0;         // 1-based
  int paren_depth = 0;  // depth *before* this token
  bool record_scope = false;  // directly inside a struct/class/union body
  bool control_paren = false;  // inside a for/if/while/switch/catch (...)
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Tokenizes the stripped code text, tracking paren depth and whether each
/// token sits at struct/class member scope (a one-pass heuristic: a brace
/// opens a record body iff a struct/class/union keyword is pending).
std::vector<Token> tokenize(const std::vector<SplitLine>& lines) {
  std::vector<Token> toks;
  enum class Scope { kRecord, kBlock };
  std::vector<Scope> scopes;
  bool pending_record = false;
  int paren_depth = 0;
  // Declarations inside a control-statement's parens (`for (double b = ..`)
  // are locals, not parameters; track which open parens are control parens.
  std::vector<bool> control_parens;
  bool pending_control = false;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& s = lines[li].code;
    for (std::size_t i = 0; i < s.size();) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      t.line = static_cast<int>(li) + 1;
      t.paren_depth = paren_depth;
      t.record_scope = !scopes.empty() && scopes.back() == Scope::kRecord;
      t.control_paren =
          !control_parens.empty() &&
          std::find(control_parens.begin(), control_parens.end(), true) !=
              control_parens.end();
      if (ident_start(c)) {
        std::size_t j = i;
        while (j < s.size() && ident_char(s[j])) ++j;
        t.kind = Token::Kind::kIdent;
        t.text = s.substr(i, j - i);
        i = j;
        if (t.text == "struct" || t.text == "class" || t.text == "union")
          pending_record = true;
        pending_control = t.text == "for" || t.text == "if" ||
                          t.text == "while" || t.text == "switch" ||
                          t.text == "catch";
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        // pp-number: digits, dots, letters, and exponent signs.
        std::size_t j = i;
        while (j < s.size()) {
          const char d = s[j];
          if (ident_char(d) || d == '.' || d == '\'') {
            ++j;
          } else if ((d == '+' || d == '-') && j > i &&
                     (s[j - 1] == 'e' || s[j - 1] == 'E' || s[j - 1] == 'p' ||
                      s[j - 1] == 'P')) {
            ++j;
          } else {
            break;
          }
        }
        t.kind = Token::Kind::kNumber;
        t.text = s.substr(i, j - i);
        i = j;
      } else {
        t.kind = Token::Kind::kPunct;
        t.text = std::string(1, c);
        ++i;
        switch (c) {
          case '{':
            scopes.push_back(pending_record ? Scope::kRecord : Scope::kBlock);
            pending_record = false;
            break;
          case '}':
            if (!scopes.empty()) scopes.pop_back();
            break;
          case '(':
            ++paren_depth;
            control_parens.push_back(pending_control);
            pending_control = false;
            pending_record = false;
            break;
          case ')':
            if (paren_depth > 0) --paren_depth;
            if (!control_parens.empty()) control_parens.pop_back();
            break;
          case ';':
          case '>':
            pending_record = false;
            break;
          default:
            break;
        }
      }
      toks.push_back(std::move(t));
    }
  }
  return toks;
}

std::string normalized_line(const std::string& code) {
  std::string out;
  bool space = false;
  for (char c : code) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      space = !out.empty();
      continue;
    }
    if (space) out += ' ';
    space = false;
    out += c;
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Parsed suppression directives (see polarlint.h) and the hot-path tag.
struct Directives {
  // One entry per directive: the rule it suppresses and the inclusive line
  // range it covers -- the directive's own line (for trailing comments)
  // through the first code-bearing line below it, so a reason wrapped over
  // several comment lines still reaches the statement it precedes.
  struct Allow {
    std::string rule;
    int first;
    int last;
  };
  std::vector<Allow> allows;
  bool hot_path = false;
  std::vector<Violation> errors;  // malformed directives
};

Directives parse_directives(std::string_view path,
                            const std::vector<SplitLine>& lines) {
  Directives d;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& c = lines[li].comment;
    const int line = static_cast<int>(li) + 1;
    if (c.find("polarlint: hot-path") != std::string::npos) d.hot_path = true;
    std::size_t pos = 0;
    while ((pos = c.find("polarlint-allow", pos)) != std::string::npos) {
      std::size_t p = pos + std::string_view("polarlint-allow").size();
      auto malformed = [&](const std::string& why) {
        d.errors.push_back({"DIRECTIVE", std::string(path), line,
                            normalized_line(c),
                            "malformed polarlint-allow directive: " + why});
      };
      if (p >= c.size() || c[p] != '(') {
        malformed("expected '(Rn)'");
        break;
      }
      const std::size_t close = c.find(')', p);
      if (close == std::string::npos) {
        malformed("unterminated rule list");
        break;
      }
      const std::string rule = trim(c.substr(p + 1, close - p - 1));
      const bool known = rule.size() == 2 && rule[0] == 'R' && rule[1] >= '1' &&
                         rule[1] <= '9';
      if (!known) {
        malformed("unknown rule '" + rule + "'");
        pos = close;
        continue;
      }
      std::size_t after = close + 1;
      while (after < c.size() &&
             std::isspace(static_cast<unsigned char>(c[after])))
        ++after;
      if (after >= c.size() || c[after] != ':' ||
          trim(c.substr(after + 1)).empty()) {
        malformed("suppression needs a reason: // polarlint-allow(" + rule +
                  "): <why>");
        pos = close;
        continue;
      }
      // Cover through the first line that actually carries code: skip
      // blank and comment-only continuation lines below the directive.
      int last = line;
      for (std::size_t j = li + 1; j < lines.size(); ++j) {
        last = static_cast<int>(j) + 1;
        if (!trim(lines[j].code).empty()) break;
      }
      d.allows.push_back({rule, line, last});
      pos = close;
    }
  }
  return d;
}

bool suppressed(const Directives& d, const std::string& rule, int line) {
  for (const auto& a : d.allows)
    if (a.rule == rule && line >= a.first && line <= a.last) return true;
  return false;
}

bool has_unit_stem(const std::vector<std::string>& words) {
  for (std::string_view stem : kUnitStems)
    if (contains_word(words, stem)) return true;
  return false;
}

bool has_unit_suffix(const std::vector<std::string>& words) {
  if (words.empty()) return false;
  for (std::string_view suf : kUnitSuffixes)
    if (words.back() == suf) return true;
  return false;
}

bool is_ten_literal(const std::string& text) {
  // Accept 10, 10., 10.0, 10.00, 1e1 -- the forms dB code actually writes.
  if (text == "10" || text == "1e1" || text == "1E1") return true;
  if (text.rfind("10.", 0) == 0) {
    for (std::size_t i = 3; i < text.size(); ++i)
      if (text[i] != '0') return false;
    return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// Token-stream structure helpers (statement ranges, matching parens,
// comparator resolution). These are what make the analyzer symbol-aware
// rather than line-wise.
// --------------------------------------------------------------------------

/// Index of the `)` matching the `(` at `open`, or toks.size() if
/// unterminated.
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return toks.size();
}

/// Index of the `}` matching the `{` at `open`, or toks.size().
std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}" && --depth == 0) return i;
  }
  return toks.size();
}

/// Token range [begin, end) of the statement enclosing token `idx`:
/// bounded by the nearest `;` / `{` / `}` on either side. Multi-line
/// statements are one range -- this is what fixed the old per-physical-line
/// R1 evidence scan.
std::pair<std::size_t, std::size_t> statement_range(
    const std::vector<Token>& toks, std::size_t idx) {
  std::size_t b = idx;
  while (b > 0) {
    const Token& t = toks[b - 1];
    if (t.kind == Token::Kind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}"))
      break;
    --b;
  }
  std::size_t e = idx;
  while (e < toks.size()) {
    const Token& t = toks[e];
    if (t.kind == Token::Kind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      ++e;
      break;
    }
    ++e;
  }
  return {b, e};
}

/// True if any identifier in [b, e) (other than fmod/std) contains an
/// angle-evidence word.
bool range_has_angle_evidence(const std::vector<Token>& toks, std::size_t b,
                              std::size_t e) {
  for (std::size_t i = b; i < e && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || t.text == "fmod" || t.text == "std")
      continue;
    const auto words = identifier_words(t.text);
    for (std::string_view w : kAngleEvidenceWords)
      if (contains_word(words, w)) return true;
  }
  return false;
}

/// True if [b, e) mentions a float-valued key: the float/double keywords or
/// an identifier containing a float-key word (logp, score, weight, ...).
bool range_has_float_key(const std::vector<Token>& toks, std::size_t b,
                         std::size_t e) {
  for (std::size_t i = b; i < e && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    for (std::string w : identifier_words(t.text)) {
      // Containers of keys are usually plural (scores, weights, costs).
      if (w.size() > 1 && w.back() == 's') w.pop_back();
      for (std::string_view k : kFloatKeyWords)
        if (w == k) return true;
    }
  }
  return false;
}

/// True if [b, e) shows the canonical index tie-break shape: an equality
/// compare (`==`) combined with a disjunction (`||`), as in
/// `lx > ly || (lx == ly && x < y)`. Single-char punct tokens, so the
/// digraphs appear as adjacent token pairs.
bool range_has_tie_break(const std::vector<Token>& toks, std::size_t b,
                         std::size_t e) {
  bool has_eq = false, has_or = false;
  for (std::size_t i = b; i + 1 < e && i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == "=" && toks[i + 1].text == "=") has_eq = true;
    if (toks[i].text == "|" && toks[i + 1].text == "|") has_or = true;
  }
  return has_eq && has_or;
}

/// Finds the body of a named comparator defined in this translation unit:
/// `auto name = [..](..) {body}` or `bool name(..) {body}`. Returns the
/// token range of the whole definition (so parameter types count as float
/// evidence), or {0, 0} when unresolved.
std::pair<std::size_t, std::size_t> find_comparator_definition(
    const std::vector<Token>& toks, const std::string& name,
    std::size_t before) {
  for (std::size_t i = 0; i + 1 < before && i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || toks[i].text != name) continue;
    const std::string& next = toks[i + 1].text;
    if (next != "=" && next != "(") continue;
    // Scan forward to the definition's opening brace; give up at `;` first
    // (a declaration or an unrelated use).
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != Token::Kind::kPunct) continue;
      if (toks[j].text == ";") break;
      if (toks[j].text == "{") {
        const std::size_t close = match_brace(toks, j);
        if (close < toks.size()) return {i, close + 1};
        break;
      }
    }
  }
  return {0, 0};
}

/// Arg count of the sort-family functions before the optional comparator.
int sort_base_args(const std::string& name) {
  return name == "nth_element" || name == "partial_sort" ? 3 : 2;
}

/// Splits the call argument region (open+1 .. close) into top-level
/// argument token ranges.
std::vector<std::pair<std::size_t, std::size_t>> split_call_args(
    const std::vector<Token>& toks, std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  int depth = 0;
  std::size_t b = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    const std::string& s = toks[i].text;
    if (s == "(" || s == "[" || s == "{") ++depth;
    if (s == ")" || s == "]" || s == "}") --depth;
    if (s == "," && depth == 0) {
      args.emplace_back(b, i);
      b = i + 1;
    }
  }
  if (b < close) args.emplace_back(b, close);
  return args;
}

}  // namespace

bool is_hot_path_tagged(std::string_view content) {
  return parse_directives("", detail::split_lines(content)).hot_path;
}

std::vector<Violation> lint_source(std::string_view path,
                                   std::string_view content) {
  const std::vector<SplitLine> lines = detail::split_lines(content);
  const Directives directives = parse_directives(path, lines);
  const std::vector<Token> toks = tokenize(lines);

  const bool exempt_r1 = path_ends_with(path, "common/angles.h") ||
                         path_ends_with(path, "common/angles.cc");
  const bool exempt_r2 = path_ends_with(path, "common/units.h");
  const bool exempt_r4 = path_ends_with(path, "common/rng.h") ||
                         path_ends_with(path, "common/seed.h");
  // R6 polices the decode-critical directories only.
  const bool scope_r6 = path_starts_with(path, "src/core/") ||
                        path_starts_with(path, "src/server/");
  // R7: clocks may be read by the observability layer (src/obs and its
  // tests), the pool's trace plumbing, and benchmarks. EXCEPT the
  // sim-time-driven obs modules: the rolling SLO window and the
  // structured logger advance on observation timestamps by contract
  // (DESIGN.md section 17) -- a wall-clock read there would silently
  // break replay determinism, so they lose the blanket obs exemption and
  // any clock read there must carry its own R7 suppression.
  const bool sim_time_only_obs = path_ends_with(path, "obs/rolling.h") ||
                                 path_ends_with(path, "obs/rolling.cc") ||
                                 path_ends_with(path, "obs/log.h") ||
                                 path_ends_with(path, "obs/log.cc");
  const bool exempt_r7 = !sim_time_only_obs &&
                         (path_has_component(path, "obs") ||
                          path_has_component(path, "bench") ||
                          path_ends_with(path, "common/thread_pool.h"));
  const bool scope_r8 = path_starts_with(path, "src/");
  const bool scope_r9 = path_starts_with(path, "src/") &&
                        !path_ends_with(path, "common/annotations.h");

  std::vector<Violation> out = directives.errors;
  auto emit = [&](const std::string& rule, int line, std::string key,
                  std::string message) {
    if (suppressed(directives, rule, line)) return;
    out.push_back({rule, std::string(path), line, std::move(key),
                   std::move(message)});
  };
  auto line_key = [&](int line) {
    return normalized_line(lines[static_cast<std::size_t>(line) - 1].code);
  };

  // R9 prescan: every identifier named inside a lock-annotation macro's
  // parens is an "annotated" capability.
  std::set<std::string> annotated_mutexes;
  if (scope_r9) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent) continue;
      bool is_macro = false;
      for (std::string_view m : kLockAnnotationMacros)
        if (toks[i].text == m) is_macro = true;
      if (!is_macro || toks[i + 1].text != "(") continue;
      const std::size_t close = match_paren(toks, i + 1);
      for (std::size_t j = i + 2; j < close && j < toks.size(); ++j)
        if (toks[j].kind == Token::Kind::kIdent)
          annotated_mutexes.insert(toks[j].text);
    }
  }

  // R8: real include graph vs the declared layering DAG. Include paths live
  // inside string literals (blanked in the tokenized code), so they are
  // read from the raw content, cross-checked against the stripped code so
  // commented-out includes do not count.
  if (scope_r8) {
    const std::string file_dir = [&] {
      const std::string p = normalized_path(path).substr(4);  // drop "src/"
      const std::size_t slash = p.find('/');
      return slash == std::string::npos ? std::string() : p.substr(0, slash);
    }();
    const auto& ranks = layer_ranks();
    const auto file_rank = ranks.find(file_dir);
    if (file_rank != ranks.end()) {
      std::size_t line_begin = 0;
      for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::size_t line_end = content.find('\n', line_begin);
        const std::string_view raw = content.substr(
            line_begin,
            (line_end == std::string_view::npos ? content.size() : line_end) -
                line_begin);
        line_begin =
            line_end == std::string_view::npos ? content.size() : line_end + 1;
        if (lines[li].code.find("#") == std::string::npos ||
            lines[li].code.find("include") == std::string::npos)
          continue;
        const std::size_t q1 = raw.find('"');
        if (q1 == std::string_view::npos) continue;
        const std::size_t q2 = raw.find('"', q1 + 1);
        if (q2 == std::string_view::npos) continue;
        const std::string inc(raw.substr(q1 + 1, q2 - q1 - 1));
        // annotations.h is a dependency-free leaf (macros + a std::mutex
        // wrapper); even obs/ at the bottom of the DAG may use it.
        if (inc == "common/annotations.h") continue;
        const std::size_t slash = inc.find('/');
        if (slash == std::string::npos) continue;  // sibling include
        const auto inc_rank = ranks.find(inc.substr(0, slash));
        if (inc_rank == ranks.end()) continue;
        const bool allowed = inc_rank->first == file_rank->first ||
                             inc_rank->second < file_rank->second;
        if (!allowed) {
          emit("R8", static_cast<int>(li) + 1, inc,
               "include of \"" + inc + "\" from " + file_dir +
                   "/ breaks the layering DAG (obs < common < em < "
                   "{channel,handwriting} < rfid < "
                   "{core,recognition,sim,baselines} < eval < server); "
                   "only lower layers may be included");
        }
      }
    }
  }

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;

    // R1: raw fmod on an angle expression (whole-statement evidence).
    if (!exempt_r1 && t.text == "fmod") {
      const auto [sb, se] = statement_range(toks, i);
      if (range_has_angle_evidence(toks, sb, se)) {
        emit("R1", t.line, line_key(t.line),
             "raw fmod on an angle expression; use wrap_2pi / wrap_pi / "
             "fold_pi / angle_diff from common/angles.h");
      }
    }

    // R2: raw log10 / pow(10, ...) dB math.
    if (!exempt_r2) {
      if (t.text == "log10") {
        emit("R2", t.line, line_key(t.line),
             "raw log10 dB math; use mw_to_dbm / ratio_to_db from "
             "common/units.h");
      } else if (t.text == "pow" && i + 2 < toks.size() &&
                 toks[i + 1].text == "(" &&
                 toks[i + 2].kind == Token::Kind::kNumber &&
                 is_ten_literal(toks[i + 2].text)) {
        emit("R2", t.line, line_key(t.line),
             "raw pow(10, x) dB conversion; use dbm_to_mw / db_to_ratio / "
             "db_to_amplitude_ratio from common/units.h");
      }
    }

    // R4: entropy / C-library randomness outside the seeded Rng.
    if (!exempt_r4 &&
        (t.text == "rand" || t.text == "srand" || t.text == "random_device")) {
      emit("R4", t.line, line_key(t.line),
           "raw " + t.text +
               "; all randomness must flow through common/rng.h with seeds "
               "derived via common/seed.h (determinism guard)");
    }

    // R5: node-based hash map in a hot-path file.
    if (directives.hot_path && t.text == "unordered_map") {
      emit("R5", t.line, line_key(t.line),
           "std::unordered_map in a `polarlint: hot-path` file; use a dense "
           "array / flat structure (see core/scoreboard.h)");
    }

    // R6a: unordered containers are banned in core/ and server/ --
    // iteration order is implementation-defined and must never feed
    // decoded output.
    if (scope_r6 && (t.text == "unordered_map" || t.text == "unordered_set" ||
                     t.text == "unordered_multimap" ||
                     t.text == "unordered_multiset")) {
      emit("R6", t.line, line_key(t.line),
           "std::" + t.text +
               " in a decode-critical directory; iteration order is "
               "implementation-defined and must not feed decoded output "
               "(use a sorted or dense structure)");
    }

    // R6b: sort-family calls over float keys need an index tie-broken
    // comparator, so the survivor set is a pure function of the values.
    if (scope_r6 &&
        (t.text == "sort" || t.text == "stable_sort" ||
         t.text == "partial_sort" || t.text == "nth_element") &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      const std::size_t close = match_paren(toks, i + 1);
      const auto args = split_call_args(toks, i + 1, close);
      const int base = sort_base_args(t.text);
      const auto [sb, se] = statement_range(toks, i);
      if (static_cast<int>(args.size()) <= base) {
        // No comparator: default operator< partitions float ties at the
        // stdlib's whim. Only flag when the statement smells of float keys.
        if (range_has_float_key(toks, sb, se)) {
          emit("R6", t.line, line_key(t.line),
               "std::" + t.text +
                   " over float/double keys without a comparator; use an "
                   "index-tie-broken comparator (PR-7 lesson: survivor sets "
                   "must not depend on how the stdlib partitions ties)");
        }
      } else {
        const auto [cb, ce] = args.back();
        std::size_t body_b = cb, body_e = ce;
        bool resolved = true;
        // A bare identifier names a comparator defined elsewhere in this
        // file; resolve it so the tie-break check sees the real body.
        bool is_name = ce == cb + 1 && toks[cb].kind == Token::Kind::kIdent;
        if (is_name) {
          const auto def = find_comparator_definition(toks, toks[cb].text, i);
          if (def.second > def.first) {
            body_b = def.first;
            body_e = def.second;
          } else {
            resolved = false;
          }
        }
        const bool floaty = range_has_float_key(toks, body_b, body_e) ||
                            range_has_float_key(toks, sb, se);
        if (floaty &&
            (!resolved || !range_has_tie_break(toks, body_b, body_e))) {
          emit("R6", t.line, line_key(t.line),
               "std::" + t.text +
                   " comparator over float/double keys lacks an index "
                   "tie-break (want `a > b || (a == b && ia < ib)`); ties "
                   "partitioned by the stdlib are not deterministic across "
                   "implementations");
        }
      }
    }

    // R7: wall-clock reads outside the observability layer break
    // stream/batch bit-identity (a clock read can never feed decode).
    if (!exempt_r7 && t.text == "now" && i + 1 < toks.size() &&
        toks[i + 1].text == "(" && i >= 3 && toks[i - 1].text == ":" &&
        toks[i - 2].text == ":" && toks[i - 3].kind == Token::Kind::kIdent) {
      std::string qualifier = toks[i - 3].text;
      for (char& c : qualifier)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      if (qualifier.find("clock") != std::string::npos) {
        emit("R7", t.line, line_key(t.line),
             "clock read (" + toks[i - 3].text +
                 "::now) outside obs/ / common/thread_pool.h / bench/; "
                 "wall time must never feed the decode chain -- "
                 "measurement-only reads need a polarlint-allow(R7) with a "
                 "reason");
      }
    }

    // R9: mutex members must be annotated capabilities.
    if (scope_r9 && t.record_scope && t.kind == Token::Kind::kIdent) {
      const bool std_mutex =
          (t.text == "mutex" || t.text == "recursive_mutex" ||
           t.text == "shared_mutex" || t.text == "timed_mutex") &&
          i >= 3 && toks[i - 1].text == ":" && toks[i - 2].text == ":" &&
          toks[i - 3].text == "std";
      const bool pd_mutex = t.text == "Mutex" && i >= 3 &&
                            toks[i - 1].text == ":" &&
                            toks[i - 2].text == ":" && toks[i - 3].text == "pd";
      if ((std_mutex || pd_mutex) && i + 1 < toks.size() &&
          toks[i + 1].kind == Token::Kind::kIdent) {
        const std::string& name = toks[i + 1].text;
        const bool is_member =
            i + 2 < toks.size() &&
            (toks[i + 2].text == ";" || toks[i + 2].text == "{" ||
             toks[i + 2].text == "=");
        if (is_member && std_mutex) {
          emit("R9", toks[i + 1].line, name,
               "raw std::" + t.text + " member '" + name +
                   "'; declare it pd::Mutex (common/annotations.h) so Clang "
                   "Thread Safety Analysis can track the capability");
        } else if (is_member && pd_mutex &&
                   annotated_mutexes.count(name) == 0) {
          emit("R9", toks[i + 1].line, name,
               "mutex member '" + name +
                   "' is referenced by no lock annotation; mark the state "
                   "it guards with PD_GUARDED_BY(" +
                   name + ") (or PD_REQUIRES/PD_ACQUIRE on the accessors)");
        }
      }
    }

    // R3: unit suffix on angle/power double fields and parameters. Every
    // declarator of a comma-chained declaration is checked.
    if (t.text == "double") {
      std::size_t j = i + 1;
      while (j < toks.size() &&
             (toks[j].text == "*" || toks[j].text == "&" ||
              toks[j].text == "const" || toks[j].text == "volatile"))
        ++j;
      if (j < toks.size() && toks[j].kind == Token::Kind::kIdent &&
          !(j + 1 < toks.size() && toks[j + 1].text == "(")) {
        const bool is_param = t.paren_depth > 0 && !t.control_paren;
        const bool is_field = t.paren_depth == 0 && t.record_scope;
        if (is_param || is_field) {
          auto check_declarator = [&](const Token& decl) {
            const auto words = identifier_words(decl.text);
            if (has_unit_stem(words) && !has_unit_suffix(words)) {
              emit("R3", decl.line, decl.text,
                   std::string("double ") + (is_param ? "parameter" : "field") +
                       " '" + decl.text +
                       "' holds an angle/power but lacks a _rad/_deg/_dbm/"
                       "_db/_dbi/_mw suffix");
            }
          };
          check_declarator(toks[j]);
          // Comma-chained declarators (`double theta, phi = 0.0;`) exist
          // only for fields -- each function parameter re-states its type,
          // so the outer loop already sees it. Walk the field declaration
          // at top nesting level; each `,` introduces another declarator
          // until the terminating `;`.
          if (is_field) {
            int depth = 0;
            for (std::size_t k = j + 1; k < toks.size(); ++k) {
              const std::string& s = toks[k].text;
              if (toks[k].kind != Token::Kind::kPunct) continue;
              if (s == "(" || s == "[" || s == "{") ++depth;
              if (s == ")" || s == "]" || s == "}") --depth;
              if (s == ";" && depth == 0) break;
              if (s == "," && depth == 0) {
                std::size_t n = k + 1;
                while (n < toks.size() &&
                       (toks[n].text == "*" || toks[n].text == "&" ||
                        toks[n].text == "const" || toks[n].text == "volatile"))
                  ++n;
                if (n >= toks.size() || toks[n].kind != Token::Kind::kIdent)
                  break;
                if (!(n + 1 < toks.size() && toks[n + 1].text == "("))
                  check_declarator(toks[n]);
                k = n;
              }
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace polarlint
