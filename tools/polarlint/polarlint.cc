#include "polarlint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstddef>
#include <string>
#include <utility>

namespace polarlint {

namespace detail {

std::vector<SplitLine> split_lines(std::string_view content) {
  enum class State { kCode, kString, kChar, kLineComment, kBlockComment };
  std::vector<SplitLine> lines;
  SplitLine cur;
  State state = State::kCode;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      lines.push_back(std::move(cur));
      cur = SplitLine{};
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          cur.code += '"';
          state = State::kString;
        } else if (c == '\'') {
          cur.code += '\'';
          state = State::kChar;
        } else {
          cur.code += c;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          cur.code += ' ';
          if (next != '\0' && next != '\n') {
            cur.code += ' ';
            ++i;
          }
        } else if (c == quote) {
          cur.code += quote;
          state = State::kCode;
        } else {
          cur.code += ' ';  // blank literal contents, keep column alignment
        }
        break;
      }
      case State::kLineComment:
        cur.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          cur.comment += c;
        }
        break;
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

std::vector<std::string> identifier_words(std::string_view name) {
  while (!name.empty() && name.back() == '_') name.remove_suffix(1);
  std::vector<std::string> words;
  std::string cur;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '_') {
      if (!cur.empty()) words.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    // camelCase boundary: lower-or-digit followed by upper starts a new word.
    if (std::isupper(static_cast<unsigned char>(c)) && !cur.empty() &&
        !std::isupper(static_cast<unsigned char>(cur.back()))) {
      words.push_back(std::move(cur));
      cur.clear();
    }
    cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (!cur.empty()) words.push_back(std::move(cur));
  return words;
}

}  // namespace detail

namespace {

using detail::identifier_words;
using detail::SplitLine;

bool path_ends_with(std::string_view path, std::string_view suffix) {
  std::string p(path);
  for (char& c : p)
    if (c == '\\') c = '/';
  return p.size() >= suffix.size() &&
         p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains_word(const std::vector<std::string>& words, std::string_view w) {
  for (const auto& x : words)
    if (x == w) return true;
  return false;
}

// Identifiers whose presence on a line marks the fmod operand as angle-like.
constexpr std::array<std::string_view, 22> kAngleEvidenceWords = {
    "pi",      "angle",   "angles",  "theta",       "phase",   "phases",
    "alpha",   "beta",    "gamma",   "azimuth",     "elevation", "rotation",
    "bearing", "heading", "orientation", "rad",     "radians", "deg",
    "degrees", "wrap",    "fold",    "polarization"};

// Name stems that mark a double field/parameter as angle- or power-valued.
constexpr std::array<std::string_view, 19> kUnitStems = {
    "angle",   "azimuth", "elevation", "phase",       "theta",
    "alpha",   "beta",    "gamma",     "rotation",    "mismatch",
    "bearing", "heading", "orientation", "tilt",      "tremor",
    "power",   "rss",     "gain",      "xpd"};

// Accepted unit suffixes (the last word of the identifier). rad2 covers
// variances of angles (rad^2).
constexpr std::array<std::string_view, 7> kUnitSuffixes = {
    "rad", "deg", "dbm", "db", "dbi", "mw", "rad2"};

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string text;
  int line = 0;         // 1-based
  int paren_depth = 0;  // depth *before* this token
  bool record_scope = false;  // directly inside a struct/class/union body
  bool control_paren = false;  // inside a for/if/while/switch/catch (...)
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Tokenizes the stripped code text, tracking paren depth and whether each
/// token sits at struct/class member scope (a one-pass heuristic: a brace
/// opens a record body iff a struct/class/union keyword is pending).
std::vector<Token> tokenize(const std::vector<SplitLine>& lines) {
  std::vector<Token> toks;
  enum class Scope { kRecord, kBlock };
  std::vector<Scope> scopes;
  bool pending_record = false;
  int paren_depth = 0;
  // Declarations inside a control-statement's parens (`for (double b = ..`)
  // are locals, not parameters; track which open parens are control parens.
  std::vector<bool> control_parens;
  bool pending_control = false;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& s = lines[li].code;
    for (std::size_t i = 0; i < s.size();) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      t.line = static_cast<int>(li) + 1;
      t.paren_depth = paren_depth;
      t.record_scope = !scopes.empty() && scopes.back() == Scope::kRecord;
      t.control_paren =
          !control_parens.empty() &&
          std::find(control_parens.begin(), control_parens.end(), true) !=
              control_parens.end();
      if (ident_start(c)) {
        std::size_t j = i;
        while (j < s.size() && ident_char(s[j])) ++j;
        t.kind = Token::Kind::kIdent;
        t.text = s.substr(i, j - i);
        i = j;
        if (t.text == "struct" || t.text == "class" || t.text == "union")
          pending_record = true;
        pending_control = t.text == "for" || t.text == "if" ||
                          t.text == "while" || t.text == "switch" ||
                          t.text == "catch";
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        // pp-number: digits, dots, letters, and exponent signs.
        std::size_t j = i;
        while (j < s.size()) {
          const char d = s[j];
          if (ident_char(d) || d == '.' || d == '\'') {
            ++j;
          } else if ((d == '+' || d == '-') && j > i &&
                     (s[j - 1] == 'e' || s[j - 1] == 'E' || s[j - 1] == 'p' ||
                      s[j - 1] == 'P')) {
            ++j;
          } else {
            break;
          }
        }
        t.kind = Token::Kind::kNumber;
        t.text = s.substr(i, j - i);
        i = j;
      } else {
        t.kind = Token::Kind::kPunct;
        t.text = std::string(1, c);
        ++i;
        switch (c) {
          case '{':
            scopes.push_back(pending_record ? Scope::kRecord : Scope::kBlock);
            pending_record = false;
            break;
          case '}':
            if (!scopes.empty()) scopes.pop_back();
            break;
          case '(':
            ++paren_depth;
            control_parens.push_back(pending_control);
            pending_control = false;
            pending_record = false;
            break;
          case ')':
            if (paren_depth > 0) --paren_depth;
            if (!control_parens.empty()) control_parens.pop_back();
            break;
          case ';':
          case '>':
            pending_record = false;
            break;
          default:
            break;
        }
      }
      toks.push_back(std::move(t));
    }
  }
  return toks;
}

std::string normalized_line(const std::string& code) {
  std::string out;
  bool space = false;
  for (char c : code) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      space = !out.empty();
      continue;
    }
    if (space) out += ' ';
    space = false;
    out += c;
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Parsed `polarlint-allow(Rn): reason` directives and the hot-path tag.
struct Directives {
  // (rule, line) pairs; a directive on line L covers lines L and L + 1.
  std::vector<std::pair<std::string, int>> allows;
  bool hot_path = false;
  std::vector<Violation> errors;  // malformed directives
};

Directives parse_directives(std::string_view path,
                            const std::vector<SplitLine>& lines) {
  Directives d;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& c = lines[li].comment;
    const int line = static_cast<int>(li) + 1;
    if (c.find("polarlint: hot-path") != std::string::npos) d.hot_path = true;
    std::size_t pos = 0;
    while ((pos = c.find("polarlint-allow", pos)) != std::string::npos) {
      std::size_t p = pos + std::string_view("polarlint-allow").size();
      auto malformed = [&](const std::string& why) {
        d.errors.push_back({"DIRECTIVE", std::string(path), line,
                            normalized_line(c),
                            "malformed polarlint-allow directive: " + why});
      };
      if (p >= c.size() || c[p] != '(') {
        malformed("expected '(Rn)'");
        break;
      }
      const std::size_t close = c.find(')', p);
      if (close == std::string::npos) {
        malformed("unterminated rule list");
        break;
      }
      const std::string rule = trim(c.substr(p + 1, close - p - 1));
      const bool known = rule.size() == 2 && rule[0] == 'R' && rule[1] >= '1' &&
                         rule[1] <= '5';
      if (!known) {
        malformed("unknown rule '" + rule + "'");
        pos = close;
        continue;
      }
      std::size_t after = close + 1;
      while (after < c.size() &&
             std::isspace(static_cast<unsigned char>(c[after])))
        ++after;
      if (after >= c.size() || c[after] != ':' ||
          trim(c.substr(after + 1)).empty()) {
        malformed("suppression needs a reason: // polarlint-allow(" + rule +
                  "): <why>");
        pos = close;
        continue;
      }
      d.allows.emplace_back(rule, line);
      pos = close;
    }
  }
  return d;
}

bool suppressed(const Directives& d, const std::string& rule, int line) {
  for (const auto& [r, l] : d.allows)
    if (r == rule && (l == line || l + 1 == line)) return true;
  return false;
}

bool has_unit_stem(const std::vector<std::string>& words) {
  for (std::string_view stem : kUnitStems)
    if (contains_word(words, stem)) return true;
  return false;
}

bool has_unit_suffix(const std::vector<std::string>& words) {
  if (words.empty()) return false;
  for (std::string_view suf : kUnitSuffixes)
    if (words.back() == suf) return true;
  return false;
}

bool is_ten_literal(const std::string& text) {
  // Accept 10, 10., 10.0, 10.00, 1e1 -- the forms dB code actually writes.
  if (text == "10" || text == "1e1" || text == "1E1") return true;
  if (text.rfind("10.", 0) == 0) {
    for (std::size_t i = 3; i < text.size(); ++i)
      if (text[i] != '0') return false;
    return true;
  }
  return false;
}

}  // namespace

bool is_hot_path_tagged(std::string_view content) {
  return parse_directives("", detail::split_lines(content)).hot_path;
}

std::vector<Violation> lint_source(std::string_view path,
                                   std::string_view content) {
  const std::vector<SplitLine> lines = detail::split_lines(content);
  const Directives directives = parse_directives(path, lines);
  const std::vector<Token> toks = tokenize(lines);

  const bool exempt_r1 = path_ends_with(path, "common/angles.h") ||
                         path_ends_with(path, "common/angles.cc");
  const bool exempt_r2 = path_ends_with(path, "common/units.h");
  const bool exempt_r4 = path_ends_with(path, "common/rng.h") ||
                         path_ends_with(path, "common/seed.h");

  std::vector<Violation> out = directives.errors;
  auto emit = [&](const std::string& rule, int line, std::string key,
                  std::string message) {
    if (suppressed(directives, rule, line)) return;
    out.push_back({rule, std::string(path), line, std::move(key),
                   std::move(message)});
  };
  auto line_key = [&](int line) {
    return normalized_line(lines[static_cast<std::size_t>(line) - 1].code);
  };

  // Per-line identifier words, for R1's angle-evidence scan.
  auto line_has_angle_evidence = [&](int line) {
    const std::string& code = lines[static_cast<std::size_t>(line) - 1].code;
    for (std::size_t i = 0; i < code.size();) {
      if (!ident_start(code[i])) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < code.size() && ident_char(code[j])) ++j;
      const std::string_view ident(code.data() + i, j - i);
      if (ident != "fmod") {
        const auto words = identifier_words(ident);
        for (std::string_view w : kAngleEvidenceWords)
          if (contains_word(words, w)) return true;
      }
      i = j;
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;

    // R1: raw fmod on an angle expression.
    if (!exempt_r1 && t.text == "fmod" && line_has_angle_evidence(t.line)) {
      emit("R1", t.line, line_key(t.line),
           "raw fmod on an angle expression; use wrap_2pi / wrap_pi / "
           "fold_pi / angle_diff from common/angles.h");
    }

    // R2: raw log10 / pow(10, ...) dB math.
    if (!exempt_r2) {
      if (t.text == "log10") {
        emit("R2", t.line, line_key(t.line),
             "raw log10 dB math; use mw_to_dbm / ratio_to_db from "
             "common/units.h");
      } else if (t.text == "pow" && i + 2 < toks.size() &&
                 toks[i + 1].text == "(" &&
                 toks[i + 2].kind == Token::Kind::kNumber &&
                 is_ten_literal(toks[i + 2].text)) {
        emit("R2", t.line, line_key(t.line),
             "raw pow(10, x) dB conversion; use dbm_to_mw / db_to_ratio / "
             "db_to_amplitude_ratio from common/units.h");
      }
    }

    // R4: entropy / C-library randomness outside the seeded Rng.
    if (!exempt_r4 &&
        (t.text == "rand" || t.text == "srand" || t.text == "random_device")) {
      emit("R4", t.line, line_key(t.line),
           "raw " + t.text +
               "; all randomness must flow through common/rng.h with seeds "
               "derived via common/seed.h (determinism guard)");
    }

    // R5: node-based hash map in a hot-path file.
    if (directives.hot_path && t.text == "unordered_map") {
      emit("R5", t.line, line_key(t.line),
           "std::unordered_map in a `polarlint: hot-path` file; use a dense "
           "array / flat structure (see core/scoreboard.h)");
    }

    // R3: unit suffix on angle/power double fields and parameters.
    if (t.text == "double") {
      std::size_t j = i + 1;
      while (j < toks.size() &&
             (toks[j].text == "*" || toks[j].text == "&" ||
              toks[j].text == "const" || toks[j].text == "volatile"))
        ++j;
      if (j < toks.size() && toks[j].kind == Token::Kind::kIdent &&
          !(j + 1 < toks.size() && toks[j + 1].text == "(")) {
        const std::string& name = toks[j].text;
        const bool is_param = t.paren_depth > 0 && !t.control_paren;
        const bool is_field = t.paren_depth == 0 && t.record_scope;
        if (is_param || is_field) {
          const auto words = identifier_words(name);
          if (has_unit_stem(words) && !has_unit_suffix(words)) {
            emit("R3", toks[j].line, name,
                 std::string("double ") + (is_param ? "parameter" : "field") +
                     " '" + name +
                     "' holds an angle/power but lacks a _rad/_deg/_dbm/"
                     "_db/_dbi/_mw suffix");
          }
        }
      }
    }
  }
  return out;
}

}  // namespace polarlint
