#include "em/propagation.h"

#include <gtest/gtest.h>

#include "common/angles.h"
#include "common/units.h"
#include "em/constants.h"

namespace polardraw::em {
namespace {

TEST(Constants, WavelengthInUhfBand) {
  EXPECT_NEAR(kDefaultWavelength, 0.3276, 1e-3);
  // The paper's "lambda/2 ~ 16 cm" assumption.
  EXPECT_NEAR(kDefaultWavelength / 2.0, 0.16, 0.01);
}

TEST(FreeSpace, InverseSquare) {
  const double g1 = free_space_gain(1.0, kDefaultWavelength);
  const double g2 = free_space_gain(2.0, kDefaultWavelength);
  EXPECT_NEAR(g1 / g2, 4.0, 1e-9);
  EXPECT_EQ(free_space_gain(0.0, kDefaultWavelength), 0.0);
  EXPECT_EQ(free_space_gain(-1.0, kDefaultWavelength), 0.0);
}

TEST(RoundTripPhase, FullCycleEveryHalfWavelength) {
  const double lambda = kDefaultWavelength;
  const double p0 = round_trip_phase(1.0, lambda);
  const double p1 = round_trip_phase(1.0 + lambda / 2.0, lambda);
  EXPECT_NEAR(p1 - p0, kTwoPi, 1e-9);
}

class LosLinkTest : public ::testing::Test {
 protected:
  LosLinkTest() {
    antenna_ = make_linear_antenna(Vec3{0.0, 1.0, 0.0}, kPi / 2.0);
    antenna_.boresight = Vec3{0.0, -1.0, 0.0};
    antenna_.polarization_axis = Vec3{0.0, 0.0, 1.0};  // along +Z
    tag_.position = Vec3{0.0, 0.0, 0.0};
    tag_.dipole_axis = Vec3{0.0, 0.0, 1.0};  // aligned with antenna
  }
  ReaderAntenna antenna_;
  Tag tag_;
  TxConfig tx_;
};

TEST_F(LosLinkTest, AlignedLinkIsStrong) {
  const LinkSample s = evaluate_los_link(antenna_, tag_, tx_);
  EXPECT_NEAR(s.mismatch_rad, 0.0, 1e-9);
  EXPECT_NEAR(s.distance_m, 1.0, 1e-12);
  EXPECT_GT(s.forward_power_dbm, tag_.sensitivity_dbm);
  EXPECT_GT(mw_to_dbm(std::norm(s.response)), -60.0);
}

TEST_F(LosLinkTest, CrossPolarizedLinkDropsByXpdFloor) {
  tag_.dipole_axis = Vec3{1.0, 0.0, 0.0};  // orthogonal to antenna axis
  const LinkSample aligned = evaluate_los_link(
      antenna_, Tag{tag_.position, Vec3{0.0, 0.0, 1.0}}, tx_);
  const LinkSample crossed = evaluate_los_link(antenna_, tag_, tx_);
  const double drop = mw_to_dbm(std::norm(aligned.response)) -
                      mw_to_dbm(std::norm(crossed.response));
  // Round-trip XPD floor: 2 * xpd_db.
  EXPECT_NEAR(drop, 2.0 * antenna_.xpd_db, 0.5);
  EXPECT_NEAR(crossed.mismatch_rad, kPi / 2.0, 1e-9);
}

TEST_F(LosLinkTest, RssFallsWithMismatchMonotonically) {
  double prev = 1e9;
  for (double beta = 0.0; beta < deg2rad(85.0); beta += 0.1) {
    tag_.dipole_axis = Vec3{std::sin(beta), 0.0, std::cos(beta)};
    const LinkSample s = evaluate_los_link(antenna_, tag_, tx_);
    const double rss = mw_to_dbm(std::norm(s.response));
    EXPECT_LT(rss, prev + 1e-9) << "beta=" << beta;
    prev = rss;
  }
}

TEST_F(LosLinkTest, PhaseTracksDistance) {
  const LinkSample s1 = evaluate_los_link(antenna_, tag_, tx_);
  tag_.position = Vec3{0.0, -0.04, 0.0};  // 4 cm farther
  const LinkSample s2 = evaluate_los_link(antenna_, tag_, tx_);
  const double measured_delta =
      angle_diff(-std::arg(s2.response), -std::arg(s1.response));
  const double expected =
      wrap_pi(4.0 * kPi * 0.04 / tx_.wavelength_m());
  EXPECT_NEAR(measured_delta, expected, 1e-6);
}

TEST_F(LosLinkTest, PhaseInsensitiveToModerateRotation) {
  // The paper's feasibility finding: rotating the tag (away from deep
  // mismatch) leaves the phase nearly unchanged. Use an ideal panel: the
  // finite-XPD glide is tested separately in test_polarization.cc.
  antenna_.xpd_db = 60.0;
  const double phase0 =
      std::arg(evaluate_los_link(antenna_, tag_, tx_).response);
  tag_.dipole_axis = Vec3{std::sin(0.5), 0.0, std::cos(0.5)};  // ~29 deg
  const double phase1 =
      std::arg(evaluate_los_link(antenna_, tag_, tx_).response);
  EXPECT_LT(angle_dist(phase0, phase1), 0.05);
}

TEST_F(LosLinkTest, ForwardPowerScalesWithTxPower) {
  const LinkSample lo = evaluate_los_link(antenna_, tag_, tx_);
  tx_.power_dbm += 6.0;
  const LinkSample hi = evaluate_los_link(antenna_, tag_, tx_);
  EXPECT_NEAR(hi.forward_power_dbm - lo.forward_power_dbm, 6.0, 1e-9);
}

TEST_F(LosLinkTest, CircularAntennaRippleBoundedByAxialRatio) {
  ReaderAntenna circ = make_circular_antenna(Vec3{0.0, 1.0, 0.0});
  circ.boresight = Vec3{0.0, -1.0, 0.0};
  circ.axial_ratio_db = 2.0;
  double rss_min = 1e9, rss_max = -1e9;
  for (double beta = 0.0; beta < kPi; beta += 0.1) {
    Tag t = tag_;
    t.dipole_axis = Vec3{std::sin(beta), 0.0, std::cos(beta)};
    const double rss =
        mw_to_dbm(std::norm(evaluate_los_link(circ, t, tx_).response));
    rss_min = std::min(rss_min, rss);
    rss_max = std::max(rss_max, rss);
  }
  // Round trip doubles the one-way ripple: swing within 2 * axial ratio,
  // and definitely non-zero for a real (elliptical) patch.
  EXPECT_GT(rss_max - rss_min, 0.5);
  EXPECT_LE(rss_max - rss_min, 2.0 * circ.axial_ratio_db + 0.2);
}

TEST_F(LosLinkTest, IdealCircularAntennaOrientationIndependent) {
  ReaderAntenna circ = make_circular_antenna(Vec3{0.0, 1.0, 0.0});
  circ.boresight = Vec3{0.0, -1.0, 0.0};
  circ.axial_ratio_db = 0.0;  // perfect circularity
  std::vector<double> rss;
  for (double beta = 0.0; beta < kPi / 2.0; beta += 0.3) {
    Tag t = tag_;
    t.dipole_axis = Vec3{std::sin(beta), 0.0, std::cos(beta)};
    rss.push_back(mw_to_dbm(std::norm(evaluate_los_link(circ, t, tx_).response)));
  }
  for (std::size_t i = 1; i < rss.size(); ++i) {
    EXPECT_NEAR(rss[i], rss[0], 1e-6);
  }
}

TEST_F(LosLinkTest, BehindAntennaNoCoupling) {
  tag_.position = Vec3{0.0, 2.0, 0.0};  // behind the panel (boresight -Y)
  const LinkSample s = evaluate_los_link(antenna_, tag_, tx_);
  EXPECT_EQ(std::norm(s.response), 0.0);
}

TEST(AntennaGain, PeaksOnBoresight) {
  ReaderAntenna a = make_linear_antenna(Vec3{0.0, 1.0, 0.0}, kPi / 2.0);
  a.boresight = Vec3{0.0, -1.0, 0.0};
  const double on = a.gain_toward(Vec3{0.0, 0.0, 0.0});
  const double off = a.gain_toward(Vec3{0.8, 0.0, 0.0});
  EXPECT_GT(on, off);
  EXPECT_NEAR(on, db_to_ratio(a.gain_dbi), 1e-9);
}

TEST(AntennaGain, HalfPowerAtBeamwidthEdge) {
  ReaderAntenna a = make_circular_antenna(Vec3{0.0, 0.0, 0.0});
  a.boresight = Vec3{0.0, 0.0, -1.0};
  const double half_angle = a.beamwidth_rad / 2.0;
  const Vec3 edge{std::sin(half_angle), 0.0, -std::cos(half_angle)};
  EXPECT_NEAR(a.gain_toward(edge * 2.0) / db_to_ratio(a.gain_dbi), 0.5, 1e-6);
}

TEST(PenAxis, MatchesAngleDefinition) {
  // Elevation 0, azimuth 0: along +X. Azimuth 90: along +Z.
  EXPECT_NEAR(pen_axis({0.0, 0.0}).x, 1.0, 1e-12);
  EXPECT_NEAR(pen_axis({0.0, kPi / 2.0}).z, 1.0, 1e-12);
  // Elevation lifts toward +Y.
  EXPECT_NEAR(pen_axis({kPi / 2.0, 0.0}).y, 1.0, 1e-12);
  // Always unit length.
  for (double e = -1.2; e < 1.2; e += 0.4) {
    for (double a = 0.0; a < kTwoPi; a += 0.7) {
      EXPECT_NEAR(pen_axis({e, a}).norm(), 1.0, 1e-12);
    }
  }
}

TEST(RotationAngle, Equation1InverseConsistency) {
  // azimuth_from_rotation is tested in handwriting; here check Eq. 1 is
  // monotone in azimuth over the writing range at alpha_e = 30 deg.
  const double ae = deg2rad(30.0);
  double prev = rotation_angle_from_pen({ae, deg2rad(10.0)});
  for (double az = deg2rad(12.0); az < deg2rad(170.0); az += 0.05) {
    const double ar = rotation_angle_from_pen({ae, az});
    // Folded to a line angle, the projection rotates monotonically.
    EXPECT_GE(wrap_2pi(ar - prev), -1e-9);
    prev = ar;
  }
}

}  // namespace
}  // namespace polardraw::em
