#include "em/polarization.h"

#include <gtest/gtest.h>

#include "common/angles.h"
#include "common/units.h"

#include <cmath>

namespace polardraw::em {
namespace {

const Vec3 kDown{0.0, -1.0, 0.0};  // LOS looking down at the board

TEST(TransverseComponent, RemovesParallelPart) {
  const Vec3 axis{0.3, 0.8, 0.5};
  const Vec3 t = transverse_component(axis, kDown);
  EXPECT_NEAR(t.dot(kDown), 0.0, 1e-12);
  EXPECT_NEAR(t.norm(), 1.0, 1e-12);
}

TEST(TransverseComponent, DegenerateParallelAxisIsZero) {
  EXPECT_EQ(transverse_component(kDown, kDown), Vec3{});
  EXPECT_EQ(transverse_component(kDown * 3.0, kDown), Vec3{});
}

TEST(MismatchAngle, AlignedIsZero) {
  const Vec3 a{1.0, 0.0, 0.0};
  EXPECT_NEAR(mismatch_angle(a, a, kDown), 0.0, 1e-12);
}

TEST(MismatchAngle, OrthogonalIsHalfPi) {
  const Vec3 a{1.0, 0.0, 0.0}, b{0.0, 0.0, 1.0};
  EXPECT_NEAR(mismatch_angle(a, b, kDown), kPi / 2.0, 1e-12);
}

TEST(MismatchAngle, AxisNotVector) {
  // Polarization is orientation-less: opposite vectors are aligned.
  const Vec3 a{1.0, 0.0, 0.0}, b{-1.0, 0.0, 0.0};
  EXPECT_NEAR(mismatch_angle(a, b, kDown), 0.0, 1e-12);
}

TEST(MismatchAngle, MatchesPlanarAngleUnderVerticalLos) {
  // With the LOS along -Y, two axes in the X-Z plane should have mismatch
  // equal to their planar angle difference (folded to [0, pi/2]).
  for (double a1 = 0.0; a1 < kPi; a1 += 0.3) {
    for (double a2 = 0.0; a2 < kPi; a2 += 0.4) {
      const Vec3 v1{std::cos(a1), 0.0, std::sin(a1)};
      const Vec3 v2{std::cos(a2), 0.0, std::sin(a2)};
      double expect = std::fabs(a1 - a2);
      if (expect > kPi / 2.0) expect = kPi - expect;
      EXPECT_NEAR(mismatch_angle(v1, v2, kDown), expect, 1e-9)
          << "a1=" << a1 << " a2=" << a2;
    }
  }
}

TEST(MismatchAngle, DegenerateAxisIsFullMismatch) {
  EXPECT_NEAR(mismatch_angle(kDown, Vec3{1, 0, 0}, kDown), kPi / 2.0, 1e-12);
}

TEST(Malus, KnownValues) {
  EXPECT_NEAR(malus_factor(0.0), 1.0, 1e-12);
  EXPECT_NEAR(malus_factor(kPi / 2.0), 0.0, 1e-12);
  EXPECT_NEAR(malus_factor(kPi / 4.0), 0.5, 1e-12);
  EXPECT_NEAR(malus_factor(kPi / 3.0), 0.25, 1e-12);
}

TEST(Malus, BackscatterIsSquare) {
  for (double b = 0.0; b <= kPi / 2.0; b += 0.1) {
    EXPECT_NEAR(backscatter_malus_factor(b),
                malus_factor(b) * malus_factor(b), 1e-12);
  }
}

TEST(ComplexCoupling, CoPolarAtZeroMismatch) {
  const auto c = complex_field_coupling(0.0, 20.0);
  EXPECT_NEAR(c.real(), 1.0, 1e-12);
  EXPECT_NEAR(c.imag(), 0.0, 1e-12);
}

TEST(ComplexCoupling, LeakDominatesAtFullMismatch) {
  const auto c = complex_field_coupling(kPi / 2.0, 20.0);
  EXPECT_NEAR(c.real(), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(c), 0.1, 1e-12);  // -20 dB amplitude
}

TEST(ComplexCoupling, PowerFloorMatchesXpd) {
  // Round-trip power at full mismatch = leak^4 power = -2*XPD dB.
  const auto c = complex_field_coupling(kPi / 2.0, 15.0);
  const double round_trip_power = std::norm(c * c);
  // polarlint-allow(R2): pins the raw 10*log10 formula the units.h helpers reproduce
  EXPECT_NEAR(10.0 * std::log10(round_trip_power), -2.0 * 15.0, 1e-9);
}

TEST(ComplexCoupling, DbToAmplitudeRatioPinsLegacyExpression) {
  // complex_field_coupling's leak amplitude used to be computed inline as
  // pow(10.0, -xpd_db / 20.0); the units.h helper must be bit-identical so
  // the refactor cannot move any decode output.
  for (double xpd_db = 0.0; xpd_db <= 40.0; xpd_db += 0.7) {
    // polarlint-allow(R2): pins db_to_amplitude_ratio against the legacy inline expression
    const double legacy = std::pow(10.0, -xpd_db / 20.0);
    EXPECT_EQ(db_to_amplitude_ratio(-xpd_db), legacy) << xpd_db;
    const auto c = complex_field_coupling(kPi / 2.0, xpd_db);
    EXPECT_EQ(c.imag(), legacy) << xpd_db;  // full mismatch: pure leak
  }
  // The 20-per-decade field convention: amplitude ratio squared = power ratio.
  for (double db = -30.0; db <= 30.0; db += 1.3) {
    const double amp = db_to_amplitude_ratio(db);
    EXPECT_NEAR(amp * amp, db_to_ratio(db), 1e-12 * db_to_ratio(db)) << db;
  }
}

TEST(ComplexCoupling, PhaseGlidesMonotonically) {
  double prev = 0.0;
  for (double b = 0.0; b < kPi / 2.0; b += 0.05) {
    const auto c = complex_field_coupling(b, 18.0);
    const double phase = std::arg(c * c);
    EXPECT_GE(phase, prev - 1e-12) << "beta=" << b;
    prev = phase;
  }
}

}  // namespace
}  // namespace polardraw::em
