// Parameterized end-to-end matrix: every tracking system under test runs
// the same trials and must satisfy the same basic contracts (non-empty
// bounded trajectories, determinism, sane error magnitudes).
#include <gtest/gtest.h>

#include "eval/harness.h"

namespace polardraw::eval {
namespace {

class SystemMatrix : public ::testing::TestWithParam<System> {};

TEST_P(SystemMatrix, TracksBoundedTrajectory) {
  TrialConfig cfg;
  cfg.system = GetParam();
  cfg.seed = 61;
  const auto res = run_trial("O", cfg);
  ASSERT_GT(res.trajectory.size(), 30u) << to_string(GetParam());
  for (const auto& p : res.trajectory) {
    EXPECT_GE(p.x, -0.05);
    EXPECT_LE(p.x, 1.05);
    EXPECT_GE(p.y, -0.05);
    EXPECT_LE(p.y, 0.65);
  }
}

TEST_P(SystemMatrix, Deterministic) {
  TrialConfig cfg;
  cfg.system = GetParam();
  cfg.seed = 62;
  const auto a = run_trial("S", cfg);
  const auto b = run_trial("S", cfg);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); i += 11) {
    EXPECT_EQ(a.trajectory[i], b.trajectory[i]);
  }
}

TEST_P(SystemMatrix, ErrorWithinSimulationBand) {
  TrialConfig cfg;
  cfg.system = GetParam();
  cfg.seed = 63;
  const auto res = run_trial("M", cfg);
  // The strict no-polarization ablation is expected to be bad -- its
  // whole point is collapsing; everything else stays under the paper's
  // worst-case band.
  if (GetParam() != System::kPolarDrawNoPol) {
    EXPECT_LT(res.procrustes_m, 0.15) << to_string(GetParam());
  } else {
    EXPECT_LT(res.procrustes_m, 0.5);
  }
}

TEST_P(SystemMatrix, SpeedLimitRespected) {
  TrialConfig cfg;
  cfg.system = GetParam();
  cfg.seed = 64;
  const auto res = run_trial("Z", cfg);
  const double max_step =
      cfg.algo.vmax_mps * cfg.algo.window_s + 2.5 * cfg.algo.block_m;
  int violations = 0;
  for (std::size_t i = 1; i < res.trajectory.size(); ++i) {
    if (res.trajectory[i].dist(res.trajectory[i - 1]) > max_step) {
      ++violations;
    }
  }
  // The tag-offset compensation may inject a handful of azimuth-driven
  // jumps; bulk motion must respect the limit.
  EXPECT_LE(violations, static_cast<int>(res.trajectory.size() / 10));
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, SystemMatrix,
    ::testing::Values(System::kPolarDraw, System::kPolarDrawNoPol,
                      System::kPolarDrawNoPolPhaseDir, System::kTagoram2,
                      System::kTagoram4, System::kRfIdraw4),
    [](const ::testing::TestParamInfo<System>& param_info) {
      std::string name = to_string(param_info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace polardraw::eval
