// Failure-injection tests: the pipeline must degrade gracefully, never
// crash or emit garbage structure, under hostile inputs.
#include <gtest/gtest.h>

#include "common/angles.h"
#include "core/polardraw.h"
#include "eval/harness.h"
#include "recognition/classifier.h"
#include "sim/scene.h"

namespace polardraw {
namespace {

core::PolarDraw default_tracker() {
  core::PolarDrawConfig cfg;
  return core::PolarDraw(cfg, {0.22, 1.25}, {0.78, 1.25}, 0.12);
}

rfid::TagReport report(double t, int ant, double rss_dbm, double phase_rad) {
  rfid::TagReport r;
  r.timestamp_s = t;
  r.antenna_id = ant;
  r.rss_dbm = rss_dbm;
  r.phase_rad = wrap_2pi(phase_rad);
  return r;
}

TEST(FailureInjection, EmptyReportStream) {
  const auto tracker = default_tracker();
  const auto res = tracker.track({});
  EXPECT_TRUE(res.trajectory.empty());
}

TEST(FailureInjection, SingleReport) {
  const auto tracker = default_tracker();
  const auto res = tracker.track({report(0.0, 0, -40.0, 1.0)});
  // One window cannot seed a chain; no crash, trivial output.
  EXPECT_LE(res.trajectory.size(), 2u);
}

TEST(FailureInjection, OneAntennaSilentForever) {
  const auto tracker = default_tracker();
  rfid::TagReportStream reports;
  for (int i = 0; i < 200; ++i) {
    reports.push_back(report(i * 0.01, 0, -40.0, 0.3 + 0.01 * i));
  }
  const auto res = tracker.track(reports);
  // Without the second antenna there is no direction/hyperbola info;
  // the tracker must still return a bounded trajectory.
  EXPECT_FALSE(res.trajectory.empty());
  for (const auto& p : res.trajectory) {
    EXPECT_GE(p.x, -0.1);
    EXPECT_LE(p.x, 1.1);
  }
}

TEST(FailureInjection, AllPhasesSpurious) {
  core::PolarDrawConfig cfg;
  cfg.spurious_phase_threshold_rad = 1e-6;  // reject every phase delta
  core::PolarDraw tracker(cfg, {0.22, 1.25}, {0.78, 1.25}, 0.12);
  rfid::TagReportStream reports;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    reports.push_back(
        report(i * 0.005, i % 2, -40.0, rng.uniform(0.0, kTwoPi)));
  }
  const auto res = tracker.track(reports);
  EXPECT_FALSE(res.trajectory.empty());
}

TEST(FailureInjection, ConstantEverything) {
  // A frozen tag: constant RSS/phase. Expect an (almost) stationary track.
  const auto tracker = default_tracker();
  rfid::TagReportStream reports;
  for (int i = 0; i < 400; ++i) {
    reports.push_back(report(i * 0.005, i % 2, -40.0, 1.0));
  }
  const auto res = tracker.track(reports);
  ASSERT_GT(res.trajectory.size(), 10u);
  double travel = 0.0;
  for (std::size_t i = 1; i < res.trajectory.size(); ++i) {
    travel += res.trajectory[i].dist(res.trajectory[i - 1]);
  }
  EXPECT_LT(travel, 0.05);
}

TEST(FailureInjection, OutOfOrderAntennaIds) {
  const auto tracker = default_tracker();
  rfid::TagReportStream reports;
  for (int i = 0; i < 100; ++i) {
    reports.push_back(report(i * 0.01, 7, -40.0, 1.0));    // bogus port
    reports.push_back(report(i * 0.01, -3, -40.0, 1.0));   // bogus port
    reports.push_back(report(i * 0.01, i % 2, -40.0, 1.0));
  }
  EXPECT_NO_THROW(tracker.track(reports));
}

TEST(FailureInjection, ExtremeRssValues) {
  const auto tracker = default_tracker();
  rfid::TagReportStream reports;
  for (int i = 0; i < 200; ++i) {
    const double rss = i % 3 == 0 ? -149.0 : (i % 3 == 1 ? 20.0 : -40.0);
    reports.push_back(report(i * 0.01, i % 2, rss, 1.0 + 0.02 * i));
  }
  const auto res = tracker.track(reports);
  EXPECT_FALSE(res.trajectory.empty());
}

TEST(FailureInjection, DeafTagProducesNoReads) {
  sim::SceneConfig cfg;
  cfg.seed = 5;
  sim::Scene scene(cfg);
  handwriting::WritingTrace trace;
  for (int i = 0; i <= 100; ++i) {
    handwriting::TraceSample s;
    s.t_s = i * 0.01;
    s.pen_tip = Vec3{0.5, 0.25, 0.0};
    s.angles = {deg2rad(30.0), deg2rad(90.0)};
    s.tag_pos = s.pen_tip;
    trace.samples.push_back(s);
  }
  // Make the chip absurdly insensitive so every activation fails.
  auto tag_fn = [&trace](double t) {
    auto tag = sim::tag_at_time(trace, t);
    tag.sensitivity_dbm = 100.0;
    return tag;
  };
  scene.reader().select_modulation(tag_fn);
  const auto reports = scene.reader().inventory(tag_fn, 0.0, 1.0);
  EXPECT_TRUE(reports.empty());
}

TEST(FailureInjection, AnechoicChamberStillWorks) {
  // Zero clutter: no multipath at all. Accuracy should not collapse.
  eval::TrialConfig cfg;
  cfg.system = eval::System::kPolarDraw;
  cfg.seed = 77;
  cfg.scene.clutter_count = 0;
  const auto res = eval::run_trial("O", cfg);
  EXPECT_LT(res.procrustes_m, 0.12);
}

TEST(FailureInjection, HeavyClutterDegradesButSurvives) {
  eval::TrialConfig cfg;
  cfg.system = eval::System::kPolarDraw;
  cfg.seed = 78;
  cfg.scene.clutter_count = 20;
  const auto res = eval::run_trial("O", cfg);
  EXPECT_FALSE(res.trajectory.empty());
  EXPECT_LT(res.procrustes_m, 0.30);
}

TEST(FailureInjection, TinyWritingStillTracked) {
  eval::TrialConfig cfg;
  cfg.system = eval::System::kPolarDraw;
  cfg.seed = 79;
  cfg.synth.letter_size_m = 0.05;  // 5 cm letters
  const auto res = eval::run_trial("O", cfg);
  EXPECT_FALSE(res.trajectory.empty());
}

TEST(FailureInjection, ClassifierHandlesWildInput) {
  const recognition::LetterClassifier cls;
  Rng rng(5);
  std::vector<Vec2> wild;
  for (int i = 0; i < 500; ++i) {
    wild.push_back({rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)});
  }
  const auto r = cls.classify(wild);
  EXPECT_NE(r.letter, 0);
  EXPECT_GE(r.score, 0.0);
}

}  // namespace
}  // namespace polardraw
