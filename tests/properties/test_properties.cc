// Parameterized property tests: invariants swept across parameter spaces
// (gtest TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include "common/angles.h"
#include "common/rng.h"
#include "common/units.h"
#include "em/polarization.h"
#include "em/propagation.h"
#include "em/tag.h"
#include "handwriting/stroke_font.h"
#include "handwriting/synthesizer.h"
#include "handwriting/wrist.h"
#include "recognition/procrustes.h"
#include "rfid/modulation.h"

namespace polardraw {
namespace {

// ---------------------------------------------------------------------------
// Property: Eq. 1 and its inverse round-trip for every elevation/azimuth.
// ---------------------------------------------------------------------------
class Eq1RoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(Eq1RoundTrip, InverseRecoversAzimuth) {
  const double elevation = GetParam();
  for (double az = 0.3; az < kPi - 0.3; az += 0.05) {
    const double ar = em::rotation_angle_from_pen({elevation, az});
    const double back =
        handwriting::WristModel::azimuth_from_rotation(ar, elevation);
    EXPECT_NEAR(back, az, 1e-6)
        << "elevation " << rad2deg(elevation) << " azimuth " << rad2deg(az);
  }
}

INSTANTIATE_TEST_SUITE_P(Elevations, Eq1RoundTrip,
                         ::testing::Values(deg2rad(10.0), deg2rad(20.0),
                                           deg2rad(30.0), deg2rad(40.0),
                                           deg2rad(50.0)));

// ---------------------------------------------------------------------------
// Property: polarization mismatch is symmetric, bounded, and invariant to
// axis sign flips, for many axis pairs.
// ---------------------------------------------------------------------------
class MismatchProperty : public ::testing::TestWithParam<int> {};

TEST_P(MismatchProperty, SymmetricBoundedSignInvariant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    const Vec3 a = Vec3{rng.gaussian(), rng.gaussian(), rng.gaussian()}
                       .normalized();
    const Vec3 b = Vec3{rng.gaussian(), rng.gaussian(), rng.gaussian()}
                       .normalized();
    const Vec3 los = Vec3{rng.gaussian(), rng.gaussian(), rng.gaussian()}
                         .normalized();
    if (a == Vec3{} || b == Vec3{} || los == Vec3{}) continue;
    const double m1 = em::mismatch_angle(a, b, los);
    const double m2 = em::mismatch_angle(b, a, los);
    EXPECT_NEAR(m1, m2, 1e-9);
    EXPECT_GE(m1, 0.0);
    EXPECT_LE(m1, kPi / 2.0 + 1e-9);
    EXPECT_NEAR(em::mismatch_angle(-a, b, los), m1, 1e-9);
    EXPECT_NEAR(em::mismatch_angle(a, -b, los), m1, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MismatchProperty, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Property: Malus factors bounded and complementary mismatches sum to 1.
// ---------------------------------------------------------------------------
class MalusProperty : public ::testing::TestWithParam<double> {};

TEST_P(MalusProperty, ComplementAndBounds) {
  const double beta = GetParam();
  const double m = em::malus_factor(beta);
  EXPECT_GE(m, 0.0);
  EXPECT_LE(m, 1.0);
  EXPECT_NEAR(m + em::malus_factor(kPi / 2.0 - beta), 1.0, 1e-12);
  EXPECT_LE(em::backscatter_malus_factor(beta), m + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Angles, MalusProperty,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.1, 1.4,
                                           kPi / 2.0));

// ---------------------------------------------------------------------------
// Property: the complex coupling's power never exceeds the ideal Malus
// power plus the leak, and its phase stays within [0, pi].
// ---------------------------------------------------------------------------
class CouplingProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CouplingProperty, PowerAndPhaseEnvelope) {
  const auto [beta, xpd] = GetParam();
  const auto c = em::complex_field_coupling(beta, xpd);
  const double leak = db_to_ratio(-xpd);
  EXPECT_LE(std::norm(c), em::malus_factor(beta) + leak + 1e-12);
  const double phase = std::arg(c * c);
  EXPECT_GE(phase, -1e-12);
  EXPECT_LE(phase, kPi + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CouplingProperty,
    ::testing::Combine(::testing::Values(0.0, 0.4, 0.8, 1.2, kPi / 2.0),
                       ::testing::Values(15.0, 22.0, 30.0)));

// ---------------------------------------------------------------------------
// Property: Procrustes distance is invariant under similarity transforms of
// the probe, across random shapes and transforms.
// ---------------------------------------------------------------------------
class ProcrustesInvariance : public ::testing::TestWithParam<int> {};

TEST_P(ProcrustesInvariance, SimilarityTransformsFreely) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  std::vector<Vec2> shape;
  for (int i = 0; i < 30; ++i) {
    shape.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
  }
  const double rot = rng.uniform(-0.6, 0.6);  // within the default clamp
  const double scale = rng.uniform(0.3, 3.0);
  const Vec2 shift{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
  std::vector<Vec2> moved;
  for (const Vec2& p : shape) moved.push_back(p.rotated(rot) * scale + shift);
  const auto r = recognition::procrustes(shape, moved);
  EXPECT_LT(r.normalized, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcrustesInvariance, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Property: arc-length resampling preserves total length approximately and
// never leaves the polyline's bounding box, for every glyph.
// ---------------------------------------------------------------------------
class ResampleGlyph : public ::testing::TestWithParam<char> {};

TEST_P(ResampleGlyph, StaysInBoxAndKeepsLength) {
  const char c = GetParam();
  const auto poly = handwriting::flatten_strokes(
      handwriting::glyph_for(c).strokes);
  const auto r = recognition::resample_by_arclength(poly, 80);
  double xmin = 1e9, xmax = -1e9, ymin = 1e9, ymax = -1e9;
  for (const auto& p : poly) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  }
  double len_orig = 0.0, len_res = 0.0;
  for (std::size_t i = 1; i < poly.size(); ++i) len_orig += poly[i].dist(poly[i - 1]);
  for (std::size_t i = 1; i < r.size(); ++i) len_res += r[i].dist(r[i - 1]);
  EXPECT_NEAR(len_res, len_orig, 0.05 * len_orig) << c;
  for (const auto& p : r) {
    EXPECT_GE(p.x, xmin - 1e-9);
    EXPECT_LE(p.x, xmax + 1e-9);
    EXPECT_GE(p.y, ymin - 1e-9);
    EXPECT_LE(p.y, ymax + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphabet, ResampleGlyph,
                         ::testing::Range('A', static_cast<char>('Z' + 1)));

// ---------------------------------------------------------------------------
// Property: modulation schemes trade rate for SNR monotonically.
// ---------------------------------------------------------------------------
TEST(ModulationProperty, RateSnrTradeoffMonotone) {
  double prev_rate = 1e9, prev_gain = 0.0;
  for (const auto m : rfid::kAllModulations) {
    EXPECT_LT(rfid::rate_factor(m), prev_rate + 1e-12);
    EXPECT_GT(rfid::snr_gain(m), prev_gain - 1e-12);
    prev_rate = rfid::rate_factor(m);
    prev_gain = rfid::snr_gain(m);
  }
}

// ---------------------------------------------------------------------------
// Property: pen axis stays unit length and Eq. 1's projection agrees with
// explicitly projecting the axis onto the board plane, across the grid.
// ---------------------------------------------------------------------------
class PenAxisProjection
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PenAxisProjection, MatchesExplicitProjection) {
  const auto [elev_deg, az_deg] = GetParam();
  const em::PenAngles angles{deg2rad(elev_deg), deg2rad(az_deg)};
  const Vec3 axis = em::pen_axis(angles);
  EXPECT_NEAR(axis.norm(), 1.0, 1e-12);
  const double ar = em::rotation_angle_from_pen(angles);
  // The projected line angle (mod pi) must match atan2 of the X-Y parts.
  const double explicit_angle = std::atan2(axis.y, axis.x);
  const double diff = fold_pi(std::fabs(ar - explicit_angle));
  EXPECT_LT(std::min(diff, kPi - diff), 1e-6)
      << "elev " << elev_deg << " az " << az_deg;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PenAxisProjection,
    ::testing::Combine(::testing::Values(15.0, 30.0, 45.0),
                       ::testing::Values(20.0, 60.0, 100.0, 140.0, 160.0)));

}  // namespace
}  // namespace polardraw
