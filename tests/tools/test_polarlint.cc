// Self-tests for tools/polarlint: each rule demonstrated both firing and
// suppressed, plus the tokenizer / comment-stripper corner cases the rules
// depend on. The fixture sources are deliberately tiny translation units.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "polarlint.h"

namespace polarlint {
namespace {

std::vector<std::string> rules_of(const std::vector<Violation>& vs) {
  std::vector<std::string> r;
  for (const auto& v : vs) r.push_back(v.rule);
  std::sort(r.begin(), r.end());
  return r;
}

int count_rule(const std::vector<Violation>& vs, const std::string& rule) {
  int n = 0;
  for (const auto& v : vs)
    if (v.rule == rule) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// R1: raw fmod on angle expressions
// ---------------------------------------------------------------------------

TEST(R1Fmod, FiresOnAngleExpression) {
  const auto vs = lint_source("src/foo.cc",
                              "double a = std::fmod(theta, kTwoPi);\n");
  ASSERT_EQ(count_rule(vs, "R1"), 1);
  EXPECT_EQ(vs[0].line, 1);
}

TEST(R1Fmod, FiresOnDegreeFold) {
  const auto vs =
      lint_source("src/foo.cc", "double d = fmod(heading_deg, 360.0);\n");
  EXPECT_EQ(count_rule(vs, "R1"), 1);
}

TEST(R1Fmod, SilentOnNonAngleQuantity) {
  // A time cycle is not an angle; the evidence scan must not fire.
  const auto vs =
      lint_source("src/foo.cc", "const double cycle = std::fmod(t_s, 6.0);\n");
  EXPECT_EQ(count_rule(vs, "R1"), 0);
}

TEST(R1Fmod, ExemptInsideAnglesHeader) {
  const std::string src = "double r = std::fmod(rad, kTwoPi);\n";
  EXPECT_EQ(count_rule(lint_source("src/common/angles.h", src), "R1"), 0);
  EXPECT_EQ(count_rule(lint_source("src/common/angles.cc", src), "R1"), 0);
  EXPECT_EQ(count_rule(lint_source("src/core/other.cc", src), "R1"), 1);
}

TEST(R1Fmod, SuppressedSameLine) {
  const auto vs = lint_source(
      "src/foo.cc",
      "double a = std::fmod(theta, kPi);  // polarlint-allow(R1): legacy\n");
  EXPECT_EQ(count_rule(vs, "R1"), 0);
}

TEST(R1Fmod, SuppressedFromPrecedingLine) {
  const auto vs = lint_source(
      "src/foo.cc",
      "// polarlint-allow(R1): matches the paper's literal formula\n"
      "double a = std::fmod(theta, kPi);\n");
  EXPECT_EQ(count_rule(vs, "R1"), 0);
}

TEST(R1Fmod, SuppressionDoesNotLeakToLaterLines) {
  const auto vs = lint_source(
      "src/foo.cc",
      "// polarlint-allow(R1): only covers the next line\n"
      "double a = std::fmod(theta, kPi);\n"
      "double b = std::fmod(phase, kTwoPi);\n");
  EXPECT_EQ(count_rule(vs, "R1"), 1);
}

// ---------------------------------------------------------------------------
// R2: raw dB math
// ---------------------------------------------------------------------------

TEST(R2Db, FiresOnLog10) {
  const auto vs = lint_source(
      "src/foo.cc", "const double dbm = 10.0 * std::log10(mw);\n");
  EXPECT_EQ(count_rule(vs, "R2"), 1);
}

TEST(R2Db, FiresOnPowTen) {
  EXPECT_EQ(count_rule(lint_source("src/foo.cc",
                                   "double r = std::pow(10.0, db / 10.0);\n"),
                       "R2"),
            1);
  EXPECT_EQ(count_rule(lint_source("src/foo.cc",
                                   "double amp = pow(10, -xpd / 20.0);\n"),
                       "R2"),
            1);
}

TEST(R2Db, SilentOnOtherPow) {
  const auto vs = lint_source(
      "src/foo.cc", "const double pattern = std::pow(c, n);\n");
  EXPECT_EQ(count_rule(vs, "R2"), 0);
}

TEST(R2Db, ExemptInsideUnitsHeader) {
  const std::string src = "inline double db_to_ratio(double db) "
                          "{ return std::pow(10.0, db / 10.0); }\n";
  EXPECT_EQ(count_rule(lint_source("src/common/units.h", src), "R2"), 0);
  EXPECT_EQ(count_rule(lint_source("src/em/foo.cc", src), "R2"), 1);
}

TEST(R2Db, Suppressed) {
  const auto vs = lint_source(
      "tests/foo.cc",
      "// polarlint-allow(R2): pins the raw formula against units.h\n"
      "EXPECT_NEAR(10.0 * std::log10(p), -30.0, 1e-9);\n");
  EXPECT_EQ(count_rule(vs, "R2"), 0);
}

// ---------------------------------------------------------------------------
// R3: unit suffixes on angle/power fields and parameters
// ---------------------------------------------------------------------------

TEST(R3Suffix, FiresOnUnsuffixedField) {
  const auto vs = lint_source("src/foo.h",
                              "struct Pen {\n"
                              "  double elevation = 0.0;\n"
                              "};\n");
  ASSERT_EQ(count_rule(vs, "R3"), 1);
  EXPECT_EQ(vs[0].key, "elevation");
  EXPECT_EQ(vs[0].line, 2);
}

TEST(R3Suffix, AcceptsSuffixedField) {
  const auto vs = lint_source("src/foo.h",
                              "struct Pen {\n"
                              "  double elevation_rad = 0.0;\n"
                              "  double gain_dbi = 8.0;\n"
                              "  double power_dbm = -18.0;\n"
                              "  double variance_rad2 = 0.1;\n"
                              "};\n");
  EXPECT_EQ(count_rule(vs, "R3"), 0);
}

TEST(R3Suffix, FiresOnUnsuffixedParameter) {
  const auto vs = lint_source(
      "src/foo.h", "double rotation_angle(double alpha, double azimuth);\n");
  EXPECT_EQ(count_rule(vs, "R3"), 2);
}

TEST(R3Suffix, SilentOnLocalsLoopVarsAndFunctions) {
  const auto vs = lint_source("src/foo.cc",
                              "double rotation_angle() {\n"
                              "  double phase = 0.0;\n"  // local: not checked
                              "  for (double beta = 0.0; beta < 1.0; beta += 0.1) phase += beta;\n"
                              "  return phase;\n"
                              "}\n");
  EXPECT_EQ(count_rule(vs, "R3"), 0);
}

TEST(R3Suffix, SilentOnNonUnitNames) {
  const auto vs = lint_source("src/foo.h",
                              "struct Cfg {\n"
                              "  double block_m = 0.004;\n"
                              "  double hyperbola_sharpness = 6.0;\n"
                              "};\n");
  EXPECT_EQ(count_rule(vs, "R3"), 0);
}

TEST(R3Suffix, PrivateMemberTrailingUnderscore) {
  EXPECT_EQ(count_rule(lint_source("src/foo.h",
                                   "class W {\n double azimuth_;\n};\n"),
                       "R3"),
            1);
  EXPECT_EQ(count_rule(lint_source("src/foo.h",
                                   "class W {\n double azimuth_rad_;\n};\n"),
                       "R3"),
            0);
}

TEST(R3Suffix, Suppressed) {
  const auto vs = lint_source(
      "src/foo.h",
      "struct N {\n"
      "  // polarlint-allow(R3): dimensionless linear multiplier\n"
      "  double modulation_snr_gain = 1.0;\n"
      "};\n");
  EXPECT_EQ(count_rule(vs, "R3"), 0);
}

// ---------------------------------------------------------------------------
// R4: determinism guard
// ---------------------------------------------------------------------------

TEST(R4Rng, FiresOnRandSrandRandomDevice) {
  EXPECT_EQ(count_rule(lint_source("src/foo.cc", "int x = std::rand();\n"),
                       "R4"),
            1);
  EXPECT_EQ(count_rule(lint_source("src/foo.cc", "srand(42);\n"), "R4"), 1);
  EXPECT_EQ(count_rule(lint_source("src/foo.cc",
                                   "std::mt19937 g{std::random_device{}()};\n"),
                       "R4"),
            1);
}

TEST(R4Rng, SilentOnSeededEngines) {
  const auto vs = lint_source(
      "src/foo.cc", "Rng rng(splitmix64(base, index));  // seeded, fine\n");
  EXPECT_EQ(count_rule(vs, "R4"), 0);
}

TEST(R4Rng, ExemptInRngAndSeedHeaders) {
  const std::string src = "std::random_device rd;\n";
  EXPECT_EQ(count_rule(lint_source("src/common/rng.h", src), "R4"), 0);
  EXPECT_EQ(count_rule(lint_source("src/common/seed.h", src), "R4"), 0);
  EXPECT_EQ(count_rule(lint_source("src/eval/harness.cc", src), "R4"), 1);
}

TEST(R4Rng, Suppressed) {
  const auto vs = lint_source(
      "src/foo.cc",
      "int x = std::rand();  // polarlint-allow(R4): fixture needs libc rand\n");
  EXPECT_EQ(count_rule(vs, "R4"), 0);
}

// ---------------------------------------------------------------------------
// R5: hot-path container discipline
// ---------------------------------------------------------------------------

TEST(R5HotPath, FiresOnlyInTaggedFiles) {
  const std::string use = "#include <unordered_map>\n"
                          "std::unordered_map<int, double> scores;\n";
  EXPECT_EQ(count_rule(lint_source("src/foo.cc", use), "R5"), 0);
  const std::string tagged = "// polarlint: hot-path\n" + use;
  EXPECT_EQ(count_rule(lint_source("src/foo.cc", tagged), "R5"), 2);
}

TEST(R5HotPath, Suppressed) {
  const auto vs = lint_source(
      "src/foo.cc",
      "// polarlint: hot-path\n"
      "// polarlint-allow(R5): cold setup path, sized once at init\n"
      "std::unordered_map<int, double> setup;\n");
  EXPECT_EQ(count_rule(vs, "R5"), 0);
}

TEST(R5HotPath, TagDetection) {
  EXPECT_TRUE(is_hot_path_tagged("// polarlint: hot-path\nint x;\n"));
  EXPECT_FALSE(is_hot_path_tagged("int x;  // not tagged\n"));
}

// ---------------------------------------------------------------------------
// Directives
// ---------------------------------------------------------------------------

TEST(Directives, ReasonIsMandatory) {
  const auto vs = lint_source(
      "src/foo.cc", "double a = std::fmod(theta, kPi);  // polarlint-allow(R1)\n");
  // The allow is malformed, so R1 still fires *and* the directive errors.
  EXPECT_EQ(count_rule(vs, "R1"), 1);
  EXPECT_EQ(count_rule(vs, "DIRECTIVE"), 1);
}

TEST(Directives, WrappedReasonStillCoversNextStatement) {
  // A reason long enough to wrap onto a second comment line must still
  // reach the first code-bearing line below the directive.
  const auto vs = lint_source(
      "src/server/foo.cc",
      "// polarlint-allow(R7): push-to-commit latency measurement only;\n"
      "// the timestamp never feeds the decode.\n"
      "const auto now = Clock::now();\n");
  EXPECT_EQ(count_rule(vs, "R7"), 0);
}

TEST(Directives, CoverageStopsAtFirstCodeLine) {
  const auto vs = lint_source(
      "src/server/foo.cc",
      "// polarlint-allow(R7): covers only the line below\n"
      "const auto a = Clock::now();\n"
      "const auto b = Clock::now();\n");
  EXPECT_EQ(count_rule(vs, "R7"), 1);
}

TEST(Directives, UnknownRuleRejected) {
  const auto vs = lint_source(
      "src/foo.cc", "int x = 0;  // polarlint-allow(R12): no such rule\n");
  EXPECT_EQ(count_rule(vs, "DIRECTIVE"), 1);
}

TEST(Directives, WrongRuleDoesNotSuppress) {
  const auto vs = lint_source(
      "src/foo.cc",
      "double a = std::fmod(theta, kPi);  // polarlint-allow(R2): wrong rule\n");
  EXPECT_EQ(count_rule(vs, "R1"), 1);
}

// ---------------------------------------------------------------------------
// R1 statement-level evidence (the multi-line fmod fix)
// ---------------------------------------------------------------------------

TEST(R1Fmod, MultiLineStatementEvidence) {
  // The angle identifier sits on a different physical line than fmod; a
  // per-line scan missed this, the statement-range scan must not.
  const auto vs = lint_source("src/foo.cc",
                              "double a = std::fmod(\n"
                              "    theta_rad + offset,\n"
                              "    kTwoPi);\n");
  ASSERT_EQ(count_rule(vs, "R1"), 1);
  EXPECT_EQ(vs[0].line, 1);
}

TEST(R1Fmod, MultiLineNonAngleStaysSilent) {
  const auto vs = lint_source("src/foo.cc",
                              "double cycle = std::fmod(\n"
                              "    t_s + warmup_s,\n"
                              "    6.0);\n");
  EXPECT_EQ(count_rule(vs, "R1"), 0);
}

TEST(R1Fmod, EvidenceDoesNotCrossStatementBoundary) {
  // theta in the previous statement must not indict the fmod on a time.
  const auto vs = lint_source("src/foo.cc",
                              "double theta = 0.0;\n"
                              "double cycle = std::fmod(t_s, 6.0);\n");
  EXPECT_EQ(count_rule(vs, "R1"), 0);
}

// ---------------------------------------------------------------------------
// R3 comma-chained declarators (the PR 8 limitation fix)
// ---------------------------------------------------------------------------

TEST(R3Suffix, CommaChainedFieldsAllChecked) {
  const auto vs = lint_source("src/foo.h",
                              "struct P {\n"
                              "  double azimuth, elevation;\n"
                              "};\n");
  ASSERT_EQ(count_rule(vs, "R3"), 2);
  EXPECT_EQ(vs[0].key, "azimuth");
  EXPECT_EQ(vs[1].key, "elevation");
}

TEST(R3Suffix, CommaChainedSuffixedFieldsPass) {
  const auto vs = lint_source("src/foo.h",
                              "struct P {\n"
                              "  double azimuth_rad, elevation_rad = 0.0;\n"
                              "};\n");
  EXPECT_EQ(count_rule(vs, "R3"), 0);
}

TEST(R3Suffix, ParameterTypeNameIsNotADeclarator) {
  // After a comma in a parameter list the next token is a *type*; treating
  // it as a chained declarator produced false positives (RotationSense).
  const auto vs = lint_source(
      "src/foo.h", "void step(double step_rad, RotationSense sense);\n");
  EXPECT_EQ(count_rule(vs, "R3"), 0);
}

// ---------------------------------------------------------------------------
// R6: deterministic pruning in core/ and server/
// ---------------------------------------------------------------------------

TEST(R6Sort, FiresOnFloatKeyLambdaWithoutTieBreak) {
  const auto vs = lint_source(
      "src/core/foo.cc",
      "std::nth_element(idx.begin(), idx.begin() + k, idx.end(),\n"
      "    [&](int a, int b) { return logp[a] > logp[b]; });\n");
  ASSERT_EQ(count_rule(vs, "R6"), 1);
  EXPECT_EQ(vs[0].line, 1);
}

TEST(R6Sort, AcceptsIndexTieBrokenLambda) {
  const auto vs = lint_source(
      "src/core/foo.cc",
      "std::nth_element(idx.begin(), idx.begin() + k, idx.end(),\n"
      "    [&](int a, int b) {\n"
      "      return logp[a] > logp[b] || (logp[a] == logp[b] && a < b);\n"
      "    });\n");
  EXPECT_EQ(count_rule(vs, "R6"), 0);
}

TEST(R6Sort, ResolvesNamedComparatorInSameFile) {
  const std::string no_tie =
      "const auto better = [&](int x, int y) {\n"
      "  return logp[x] > logp[y];\n"
      "};\n"
      "std::sort(order.begin(), order.end(), better);\n";
  EXPECT_EQ(count_rule(lint_source("src/core/foo.cc", no_tie), "R6"), 1);
  const std::string tied =
      "const auto better = [&](int x, int y) {\n"
      "  return logp[x] > logp[y] || (logp[x] == logp[y] && x < y);\n"
      "};\n"
      "std::sort(order.begin(), order.end(), better);\n";
  EXPECT_EQ(count_rule(lint_source("src/core/foo.cc", tied), "R6"), 0);
}

TEST(R6Sort, FiresOnDefaultComparatorOverFloatKeys) {
  const auto vs = lint_source(
      "src/core/foo.cc", "std::sort(scores.begin(), scores.end());\n");
  EXPECT_EQ(count_rule(vs, "R6"), 1);
}

TEST(R6Sort, SilentOnIntegerKeysAndOutsideScope) {
  // Integer ordering has no ties-by-representation hazard.
  EXPECT_EQ(count_rule(lint_source("src/core/foo.cc",
                                   "std::sort(ids.begin(), ids.end());\n"),
                       "R6"),
            0);
  // em/ is outside the decode-critical scope.
  EXPECT_EQ(count_rule(lint_source("src/em/foo.cc",
                                   "std::sort(scores.begin(), scores.end());\n"),
                       "R6"),
            0);
}

TEST(R6Sort, UnorderedContainerBannedInScope) {
  const std::string use = "std::unordered_set<int> seen;\n";
  EXPECT_EQ(count_rule(lint_source("src/core/foo.cc", use), "R6"), 1);
  EXPECT_EQ(count_rule(lint_source("src/server/foo.cc", use), "R6"), 1);
  EXPECT_EQ(count_rule(lint_source("src/baselines/foo.cc", use), "R6"), 0);
}

TEST(R6Sort, Suppressed) {
  const auto vs = lint_source(
      "src/core/foo.cc",
      "// polarlint-allow(R6): diagnostic-only ordering, never decoded\n"
      "std::sort(scores.begin(), scores.end());\n");
  EXPECT_EQ(count_rule(vs, "R6"), 0);
}

// ---------------------------------------------------------------------------
// R7: clock reads outside the observability layer
// ---------------------------------------------------------------------------

TEST(R7Clock, FiresInDecodeChain) {
  const auto vs = lint_source(
      "src/core/foo.cc",
      "const auto t0 = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(count_rule(vs, "R7"), 1);
  EXPECT_EQ(vs[0].line, 1);
}

TEST(R7Clock, FiresOnAliasedClock) {
  const auto vs =
      lint_source("src/server/foo.cc", "const auto now = Clock::now();\n");
  EXPECT_EQ(count_rule(vs, "R7"), 1);
}

TEST(R7Clock, ExemptLayers) {
  const std::string src = "const auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(count_rule(lint_source("src/obs/tracer.cc", src), "R7"), 0);
  EXPECT_EQ(count_rule(lint_source("tests/obs/test_tracer.cc", src), "R7"), 0);
  EXPECT_EQ(count_rule(lint_source("bench/bench_foo.cc", src), "R7"), 0);
  EXPECT_EQ(count_rule(lint_source("src/common/thread_pool.h", src), "R7"), 0);
  // Substrings of exempt components do not smuggle the exemption.
  EXPECT_EQ(count_rule(lint_source("src/observations/foo.cc", src), "R7"), 1);
}

TEST(R7Clock, SimTimeOnlyObsModulesLoseTheExemption) {
  // The rolling SLO window and the structured logger advance on
  // observation timestamps by contract (DESIGN.md section 17): a clock
  // read there is a determinism bug, so they are carved out of the
  // blanket obs/ exemption.
  const std::string src = "const auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(count_rule(lint_source("src/obs/rolling.cc", src), "R7"), 1);
  EXPECT_EQ(count_rule(lint_source("src/obs/rolling.h", src), "R7"), 1);
  EXPECT_EQ(count_rule(lint_source("src/obs/log.cc", src), "R7"), 1);
  EXPECT_EQ(count_rule(lint_source("src/obs/log.h", src), "R7"), 1);
  // The rest of the obs layer keeps it.
  EXPECT_EQ(count_rule(lint_source("src/obs/metrics.cc", src), "R7"), 0);
}

TEST(R7Clock, SilentOnNonClockNow) {
  // now() on something that is not a clock (e.g. a span helper) is fine.
  const auto vs = lint_source("src/core/foo.cc", "auto x = Span::now();\n");
  EXPECT_EQ(count_rule(vs, "R7"), 0);
}

TEST(R7Clock, Suppressed) {
  const auto vs = lint_source(
      "src/server/foo.cc",
      "// polarlint-allow(R7): latency measurement, never feeds decode\n"
      "const auto now = Clock::now();\n");
  EXPECT_EQ(count_rule(vs, "R7"), 0);
}

// ---------------------------------------------------------------------------
// R8: include layering DAG
// ---------------------------------------------------------------------------

TEST(R8Layering, FiresOnBackEdge) {
  const auto vs =
      lint_source("src/em/tag.cc", "#include \"core/hmm_tracker.h\"\n");
  ASSERT_EQ(count_rule(vs, "R8"), 1);
  EXPECT_EQ(vs[0].key, "core/hmm_tracker.h");
}

TEST(R8Layering, AcceptsDownwardAndSelfEdges) {
  const auto vs = lint_source("src/server/session_server.cc",
                              "#include \"server/session_server.h\"\n"
                              "#include \"core/streaming_decoder.h\"\n"
                              "#include \"common/thread_pool.h\"\n"
                              "#include \"obs/metrics.h\"\n");
  EXPECT_EQ(count_rule(vs, "R8"), 0);
}

TEST(R8Layering, EqualRankSiblingsMayNotIncludeEachOther) {
  const auto vs =
      lint_source("src/channel/foo.cc", "#include \"handwriting/wrist.h\"\n");
  EXPECT_EQ(count_rule(vs, "R8"), 1);
}

TEST(R8Layering, AnnotationsHeaderReachableFromObs) {
  const auto vs =
      lint_source("src/obs/tracer.cc", "#include \"common/annotations.h\"\n");
  EXPECT_EQ(count_rule(vs, "R8"), 0);
}

TEST(R8Layering, IgnoresSystemTestAndUnknownIncludes) {
  EXPECT_EQ(count_rule(lint_source("src/em/foo.cc",
                                   "#include <algorithm>\n"
                                   "#include \"polarlint.h\"\n"),
                       "R8"),
            0);
  // Non-src/ files (tests, bench, tools) may include anything.
  EXPECT_EQ(count_rule(lint_source("tests/em/test_tag.cc",
                                   "#include \"core/hmm_tracker.h\"\n"),
                       "R8"),
            0);
}

TEST(R8Layering, CommentedOutIncludeIgnored) {
  const auto vs =
      lint_source("src/em/tag.cc", "// #include \"core/hmm_tracker.h\"\n");
  EXPECT_EQ(count_rule(vs, "R8"), 0);
}

TEST(R8Layering, Suppressed) {
  const auto vs = lint_source(
      "src/em/tag.cc",
      "// polarlint-allow(R8): transitional edge, tracked in ROADMAP\n"
      "#include \"core/hmm_tracker.h\"\n");
  EXPECT_EQ(count_rule(vs, "R8"), 0);
}

// ---------------------------------------------------------------------------
// R9: mutex members must be annotated capabilities
// ---------------------------------------------------------------------------

TEST(R9Mutex, FiresOnRawStdMutexMember) {
  const auto vs = lint_source("src/server/foo.h",
                              "struct S {\n"
                              "  std::mutex mu;\n"
                              "};\n");
  ASSERT_EQ(count_rule(vs, "R9"), 1);
  EXPECT_EQ(vs[0].key, "mu");
}

TEST(R9Mutex, AcceptsAnnotatedPdMutex) {
  const auto vs = lint_source("src/server/foo.h",
                              "struct S {\n"
                              "  pd::Mutex mu;\n"
                              "  int queue PD_GUARDED_BY(mu);\n"
                              "};\n");
  EXPECT_EQ(count_rule(vs, "R9"), 0);
}

TEST(R9Mutex, FiresOnPdMutexThatGuardsNothing) {
  const auto vs = lint_source("src/server/foo.h",
                              "struct S {\n"
                              "  pd::Mutex mu;\n"
                              "  int queue;\n"
                              "};\n");
  ASSERT_EQ(count_rule(vs, "R9"), 1);
  EXPECT_EQ(vs[0].key, "mu");
}

TEST(R9Mutex, RequiresAnnotationCountsAsReference) {
  const auto vs = lint_source("src/server/foo.h",
                              "struct S {\n"
                              "  pd::Mutex mu;\n"
                              "  void drain() PD_REQUIRES(mu);\n"
                              "};\n");
  EXPECT_EQ(count_rule(vs, "R9"), 0);
}

TEST(R9Mutex, LocalMutexAndOutOfScopeFilesIgnored) {
  // A local (non-member) mutex carries no capability contract.
  EXPECT_EQ(count_rule(lint_source("src/server/foo.cc",
                                   "void f() { std::mutex local; }\n"),
                       "R9"),
            0);
  // tools/ and tests/ are outside R9's src/ scope.
  EXPECT_EQ(count_rule(lint_source("tools/foo/bar.h",
                                   "struct S {\n  std::mutex mu;\n};\n"),
                       "R9"),
            0);
  // The wrapper definition itself is exempt.
  EXPECT_EQ(count_rule(lint_source("src/common/annotations.h",
                                   "class Mutex {\n  std::mutex mu_;\n};\n"),
                       "R9"),
            0);
}

TEST(R9Mutex, Suppressed) {
  const auto vs = lint_source(
      "src/server/foo.h",
      "struct S {\n"
      "  // polarlint-allow(R9): wraps a C library handle, annotated later\n"
      "  std::mutex mu;\n"
      "};\n");
  EXPECT_EQ(count_rule(vs, "R9"), 0);
}

// ---------------------------------------------------------------------------
// Tokenizer / comment stripper
// ---------------------------------------------------------------------------

TEST(Tokenizer, CommentsAndStringsDoNotTrigger) {
  const auto vs = lint_source(
      "src/foo.cc",
      "// mention of std::fmod(theta) and std::rand() in a comment\n"
      "/* std::pow(10.0, db / 10.0) in a block comment */\n"
      "const char* s = \"std::fmod(theta, kPi)\";\n");
  EXPECT_EQ(rules_of(vs), std::vector<std::string>{});
}

TEST(Tokenizer, BlockCommentSpansLines) {
  const auto vs = lint_source("src/foo.cc",
                              "/* start\n"
                              "   std::rand() inside\n"
                              "   end */ int x = 0;\n");
  EXPECT_EQ(count_rule(vs, "R4"), 0);
}

TEST(Tokenizer, EscapedQuoteInString) {
  const auto vs = lint_source(
      "src/foo.cc", "const char* s = \"a\\\"b\"; int y = std::rand();\n");
  EXPECT_EQ(count_rule(vs, "R4"), 1);  // the rand after the string still seen
}

TEST(Tokenizer, IdentifierWords) {
  using detail::identifier_words;
  EXPECT_EQ(identifier_words("kTwoPi"),
            (std::vector<std::string>{"k", "two", "pi"}));
  EXPECT_EQ(identifier_words("alpha_e_rad"),
            (std::vector<std::string>{"alpha", "e", "rad"}));
  EXPECT_EQ(identifier_words("elevation_offset_rad_"),
            (std::vector<std::string>{"elevation", "offset", "rad"}));
}

TEST(Tokenizer, BaselineKeyStableAcrossLineMoves) {
  const auto a = lint_source("src/foo.h",
                             "struct P {\n  double elevation;\n};\n");
  const auto b = lint_source("src/foo.h",
                             "struct P {\n\n\n  double elevation;\n};\n");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].baseline_key(), b[0].baseline_key());
  EXPECT_NE(a[0].line, b[0].line);
}

}  // namespace
}  // namespace polarlint
