// Tests for the benchjson JSON parser and the BENCH_*.json schema
// validator, including a round trip through the obs::JsonWriter that the
// bench binaries actually use to emit these files.
#include "json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>

#include "obs/json_writer.h"
#include "obs/tracer.h"

namespace polardraw::benchjson {
namespace {

Value parse_ok(const std::string& text) {
  const ParseResult r = parse(text);
  EXPECT_TRUE(r.ok) << r.error;
  return r.root;
}

TEST(JsonParse, Scalars) {
  EXPECT_EQ(parse_ok("null").type, Value::Type::kNull);
  EXPECT_TRUE(parse_ok("true").boolean);
  EXPECT_FALSE(parse_ok("false").boolean);
  EXPECT_DOUBLE_EQ(parse_ok("42").number, 42.0);
  EXPECT_DOUBLE_EQ(parse_ok("-3.25").number, -3.25);
  EXPECT_DOUBLE_EQ(parse_ok("1.5e3").number, 1500.0);
  EXPECT_DOUBLE_EQ(parse_ok("6.02E-2").number, 0.0602);
  EXPECT_EQ(parse_ok("\"hi\"").string, "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\n\t")").string, "a\"b\\c/d\n\t");
  EXPECT_EQ(parse_ok(R"("A")").string, "A");
  // é encodes as the 2-byte UTF-8 sequence for e-acute.
  EXPECT_EQ(parse_ok(R"("é")").string, "\xc3\xa9");
}

TEST(JsonParse, ArraysAndNesting) {
  const Value v = parse_ok("[1, [2, 3], {\"k\": [4]}]");
  ASSERT_EQ(v.array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.array[0].number, 1.0);
  ASSERT_EQ(v.array[1].array.size(), 2u);
  EXPECT_DOUBLE_EQ(v.array[1].array[1].number, 3.0);
  const Value* k = v.array[2].find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_DOUBLE_EQ(k->array[0].number, 4.0);
}

TEST(JsonParse, ObjectKeepsFileOrderAndFindsMembers) {
  const Value v = parse_ok(R"({"zeta": 1, "alpha": 2})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.object.size(), 2u);
  EXPECT_EQ(v.object[0].first, "zeta");
  EXPECT_EQ(v.object[1].first, "alpha");
  ASSERT_NE(v.find("alpha"), nullptr);
  EXPECT_DOUBLE_EQ(v.find("alpha")->number, 2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
  // find() on a non-object is a graceful nullptr, not UB.
  EXPECT_EQ(parse_ok("3").find("k"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_FALSE(parse("").ok);
  EXPECT_FALSE(parse("{").ok);
  EXPECT_FALSE(parse("[1, 2").ok);
  EXPECT_FALSE(parse("\"unterminated").ok);
  EXPECT_FALSE(parse("{\"a\" 1}").ok);
  EXPECT_FALSE(parse("[1,]").ok);
  EXPECT_FALSE(parse("nul").ok);
  EXPECT_FALSE(parse("{} trailing").ok);
}

TEST(JsonParse, ErrorsCarryLineNumbers) {
  const ParseResult r = parse("{\n  \"a\": 1,\n  oops\n}");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos) << r.error;
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(parse(deep).ok);
}

std::string valid_bench_doc() {
  return R"({
  "schema_version": 1,
  "name": "fig13",
  "git_sha": "0123abcd",
  "smoke": true,
  "wall_s": 1.25,
  "config": {"reps_scale": 1, "threads": 8},
  "metrics": {"accuracy": 0.846},
  "counters": {"hmm.windows": 1200, "rfid.reports": 80961},
  "gauges": {"hmm.beam_occupancy_peak": 600},
  "stages": {
    "core.hmm_decode": {"count": 10, "total_s": 0.7, "mean_ms": 70,
                        "p50_ms": 68.6, "p95_ms": 126.5}
  }
})";
}

TEST(BenchSchema, ValidDocumentPasses) {
  const Value v = parse_ok(valid_bench_doc());
  EXPECT_TRUE(validate_bench_json(v).empty());
}

TEST(BenchSchema, MissingRequiredKeyFails) {
  for (const char* key :
       {"schema_version", "name", "git_sha", "smoke", "wall_s", "config",
        "metrics", "counters", "gauges", "stages"}) {
    Value v = parse_ok(valid_bench_doc());
    std::erase_if(v.object,
                  [&](const auto& member) { return member.first == key; });
    EXPECT_FALSE(validate_bench_json(v).empty()) << "dropped " << key;
  }
}

TEST(BenchSchema, WrongTypesFail) {
  {
    Value v = parse_ok(valid_bench_doc());
    for (auto& member : v.object) {
      if (member.first == "name") member.second = parse_ok("123");
    }
    EXPECT_FALSE(validate_bench_json(v).empty());
  }
  {
    Value v = parse_ok(valid_bench_doc());
    for (auto& member : v.object) {
      if (member.first == "schema_version") member.second = parse_ok("2");
    }
    EXPECT_FALSE(validate_bench_json(v).empty());
  }
  {
    Value v = parse_ok(valid_bench_doc());
    for (auto& member : v.object) {
      // A non-number value inside counters breaks the all-number contract.
      if (member.first == "counters") {
        member.second = parse_ok(R"({"hmm.windows": "many"})");
      }
    }
    EXPECT_FALSE(validate_bench_json(v).empty());
  }
  {
    Value v = parse_ok(valid_bench_doc());
    for (auto& member : v.object) {
      // A stage entry missing p95_ms breaks the stage contract.
      if (member.first == "stages") {
        member.second = parse_ok(
            R"({"core.hmm_decode": {"count": 1, "total_s": 0.1,
                "mean_ms": 100, "p50_ms": 100}})");
      }
    }
    EXPECT_FALSE(validate_bench_json(v).empty());
  }
}

TEST(BenchSchema, NegativeWallClockFails) {
  Value v = parse_ok(valid_bench_doc());
  for (auto& member : v.object) {
    if (member.first == "wall_s") member.second = parse_ok("-1");
  }
  EXPECT_FALSE(validate_bench_json(v).empty());
}

// The writer the bench binaries use and the parser the runner uses must
// agree end to end: emit a schema-complete document with obs::JsonWriter,
// parse it back here, and validate it.
TEST(BenchSchema, RoundTripsThroughObsJsonWriter) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", 1);
  w.kv("name", "roundtrip");
  w.kv("git_sha", "deadbeef");
  w.kv("smoke", false);
  w.kv("wall_s", 0.125);
  w.key("config");
  w.begin_object();
  w.kv("reps_scale", 2);
  w.kv("threads", 4);
  w.end_object();
  w.key("metrics");
  w.begin_object();
  w.kv("accuracy", 0.875);
  w.end_object();
  w.key("counters");
  w.begin_object();
  w.kv("hmm.windows", std::uint64_t{42});
  w.end_object();
  w.key("gauges");
  w.begin_object();
  w.kv("hmm.beam_occupancy_peak", 600.0);
  w.end_object();
  w.key("stages");
  w.begin_object();
  w.key("core.hmm_decode");
  w.begin_object();
  w.kv("count", std::uint64_t{7});
  w.kv("total_s", 0.5);
  w.kv("mean_ms", 71.4);
  w.kv("p50_ms", 68.6);
  w.kv("p95_ms", 126.5);
  w.end_object();
  w.end_object();
  w.end_object();

  const ParseResult r = parse(os.str());
  ASSERT_TRUE(r.ok) << r.error << "\n" << os.str();
  EXPECT_TRUE(validate_bench_json(r.root).empty()) << os.str();
  EXPECT_EQ(r.root.find("name")->string, "roundtrip");
  EXPECT_DOUBLE_EQ(r.root.find("counters")->find("hmm.windows")->number, 42.0);
  EXPECT_DOUBLE_EQ(
      r.root.find("stages")->find("core.hmm_decode")->find("p50_ms")->number,
      68.6);
}

// ---- Chrome trace-event validation (TRACE_*.json) -----------------------

Value trace_doc(const std::string& events_json) {
  return parse_ok(R"({"displayTimeUnit": "ms", "traceEvents": )" +
                  events_json + "}");
}

TEST(ValidateChromeTrace, AcceptsWellFormedEvents) {
  const Value v = trace_doc(
      R"([{"name": "thread_name", "ph": "M", "ts": 0, "pid": 1, "tid": 1,
           "args": {"name": "main"}},
          {"name": "core.hmm_decode", "ph": "X", "ts": 12.5, "dur": 830.0,
           "pid": 1, "tid": 1, "args": {"windows": 600}},
          {"name": "hmm.window", "ph": "i", "ts": 20.0, "s": "t",
           "pid": 1, "tid": 1}])");
  EXPECT_TRUE(validate_chrome_trace(v).empty());
}

TEST(ValidateChromeTrace, AcceptsBareEventArray) {
  const Value v = parse_ok(
      R"([{"name": "a", "ph": "i", "ts": 1, "pid": 1, "tid": 1}])");
  EXPECT_TRUE(validate_chrome_trace(v).empty());
}

TEST(ValidateChromeTrace, RejectsEmptyAndMalformedDocuments) {
  EXPECT_FALSE(validate_chrome_trace(parse_ok("{}")).empty());
  EXPECT_FALSE(validate_chrome_trace(parse_ok("3")).empty());
  EXPECT_FALSE(validate_chrome_trace(trace_doc("[]")).empty());
}

TEST(ValidateChromeTrace, RejectsBadEvents) {
  // Missing name.
  EXPECT_FALSE(validate_chrome_trace(trace_doc(
                   R"([{"ph": "i", "ts": 1, "pid": 1, "tid": 1}])"))
                   .empty());
  // Unknown phase.
  EXPECT_FALSE(validate_chrome_trace(trace_doc(
                   R"([{"name": "a", "ph": "Z", "ts": 1,
                        "pid": 1, "tid": 1}])"))
                   .empty());
  // Negative timestamp.
  EXPECT_FALSE(validate_chrome_trace(trace_doc(
                   R"([{"name": "a", "ph": "i", "ts": -1,
                        "pid": 1, "tid": 1}])"))
                   .empty());
  // 'X' span without a duration.
  EXPECT_FALSE(validate_chrome_trace(trace_doc(
                   R"([{"name": "a", "ph": "X", "ts": 1,
                        "pid": 1, "tid": 1}])"))
                   .empty());
  // Missing tid; args not an object.
  EXPECT_FALSE(validate_chrome_trace(trace_doc(
                   R"([{"name": "a", "ph": "i", "ts": 1, "pid": 1}])"))
                   .empty());
  EXPECT_FALSE(validate_chrome_trace(trace_doc(
                   R"([{"name": "a", "ph": "i", "ts": 1, "pid": 1,
                        "tid": 1, "args": [1]}])"))
                   .empty());
}

TEST(ValidateChromeTrace, ProblemsNameTheOffendingField) {
  const auto problems = validate_chrome_trace(trace_doc(
      R"([{"name": "a", "ph": "X", "ts": 1, "pid": 1, "tid": 1}])"));
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("dur"), std::string::npos);
}

TEST(ValidateChromeTrace, TracerExportRoundTrips) {
  // The real writer -> parser -> validator path the CI trace step runs:
  // record a few events through the global tracer, export, re-parse.
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(true);
  tracer.set_ring_capacity(64);
  tracer.reset();
  tracer.set_current_thread_name("benchjson-test");
  const int span = tracer.name_id("test.roundtrip_span");
  const int inst = tracer.name_id("test.roundtrip_instant");
  const int arg = tracer.name_id("window");
  // polarlint-allow(R7): synthetic timestamp for a trace-export fixture.
  const auto begin = obs::Tracer::Clock::now();
  tracer.complete(span, begin, begin + std::chrono::microseconds(100), arg,
                  1.0);
  tracer.instant(inst, arg, 2.0);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  tracer.reset();
  tracer.set_enabled(false);

  const ParseResult r = parse(os.str());
  ASSERT_TRUE(r.ok) << r.error << "\n" << os.str();
  EXPECT_TRUE(validate_chrome_trace(r.root).empty()) << os.str();

  // Schema self-test on the exported fields: one 'M' metadata event for
  // the named thread plus the two recorded events, with ph/ts/pid/tid.
  const Value* events = r.root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 3u);
  const Value& meta = events->array[0];
  EXPECT_EQ(meta.find("ph")->string, "M");
  EXPECT_EQ(meta.find("args")->find("name")->string, "benchjson-test");
  const Value& x = events->array[1];
  EXPECT_EQ(x.find("name")->string, "test.roundtrip_span");
  EXPECT_EQ(x.find("ph")->string, "X");
  EXPECT_NEAR(x.find("dur")->number, 100.0, 1.0);
  EXPECT_DOUBLE_EQ(x.find("args")->find("window")->number, 1.0);
  const Value& i = events->array[2];
  EXPECT_EQ(i.find("ph")->string, "i");
  EXPECT_EQ(i.find("s")->string, "t");
  EXPECT_DOUBLE_EQ(i.find("pid")->number, 1.0);
  EXPECT_GT(i.find("tid")->number, 0.0);
}

TEST(ValidateChromeTrace, FlowEventsNeedCatAndId) {
  // Flow phases bind arrows on (cat, id); both are required.
  const std::string ok =
      R"([{"name": "report.flow", "ph": "s", "ts": 1, "pid": 1, "tid": 1,
           "cat": "flow", "id": 64},
          {"name": "report.flow", "ph": "t", "ts": 2, "pid": 1, "tid": 1,
           "cat": "flow", "id": 64},
          {"name": "report.flow", "ph": "f", "ts": 3, "pid": 1, "tid": 1,
           "cat": "flow", "id": 64}])";
  EXPECT_TRUE(validate_chrome_trace(trace_doc(ok)).empty());
  // Missing id.
  EXPECT_FALSE(validate_chrome_trace(trace_doc(
                   R"([{"name": "a", "ph": "s", "ts": 1, "pid": 1,
                        "tid": 1, "cat": "flow"}])"))
                   .empty());
  // Missing cat.
  EXPECT_FALSE(validate_chrome_trace(trace_doc(
                   R"([{"name": "a", "ph": "f", "ts": 1, "pid": 1,
                        "tid": 1, "id": 3}])"))
                   .empty());
  // Negative id.
  EXPECT_FALSE(validate_chrome_trace(trace_doc(
                   R"([{"name": "a", "ph": "t", "ts": 1, "pid": 1,
                        "tid": 1, "cat": "flow", "id": -1}])"))
                   .empty());
}

TEST(ValidateChromeTrace, TracerFlowExportRoundTrips) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(true);
  tracer.set_ring_capacity(64);
  tracer.reset();
  const int name = tracer.name_id("report.flow");
  tracer.flow('s', name, 128);
  tracer.flow('t', name, 128);
  tracer.flow('f', name, 128);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  tracer.reset();
  tracer.set_enabled(false);

  const ParseResult r = parse(os.str());
  ASSERT_TRUE(r.ok) << r.error << "\n" << os.str();
  EXPECT_TRUE(validate_chrome_trace(r.root).empty()) << os.str();
  const Value* events = r.root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int flows = 0;
  for (const Value& e : events->array) {
    const Value* ph = e.find("ph");
    if (ph == nullptr || (ph->string != "s" && ph->string != "t" &&
                          ph->string != "f")) {
      continue;
    }
    ++flows;
    EXPECT_EQ(e.find("cat")->string, "flow");
    EXPECT_DOUBLE_EQ(e.find("id")->number, 128.0);
  }
  EXPECT_EQ(flows, 3);
}

// ---- statusz validation (STATUS_*.json) ---------------------------------

std::string valid_status_doc() {
  return R"({
  "schema": "polardraw.statusz.v1",
  "t_s": 4.5,
  "session_count": 1,
  "n_workers": 8,
  "sessions": [
    {"id": 3, "seeded": true, "mailbox_depth": 2, "submitted": 90,
     "committed": 80, "commit_lag": 10, "last_t_s": 4.5,
     "lagging": true, "starved": false, "backpressured": false}
  ],
  "rolling": {"metric": "server.push_to_commit_s", "window_s": 10,
              "count": 80, "p50_s": 0.002, "p99_s": 0.01,
              "mean_s": 0.003, "max_s": 0.02},
  "registry": {"counters": {"server.commits": 80, "hmm.windows": 90}},
  "trace": {"dropped_events": 0},
  "log": {"emitted": 4, "suppressed": 1}
})";
}

TEST(ValidateStatus, ValidDocumentPasses) {
  EXPECT_TRUE(validate_status_json(parse_ok(valid_status_doc())).empty());
}

TEST(ValidateStatus, RejectsNonObjectAndWrongSchema) {
  EXPECT_FALSE(validate_status_json(parse_ok("[]")).empty());
  Value v = parse_ok(valid_status_doc());
  for (auto& member : v.object) {
    if (member.first == "schema") member.second = parse_ok(R"("v2")");
  }
  EXPECT_FALSE(validate_status_json(v).empty());
}

TEST(ValidateStatus, MissingTopLevelBlocksFail) {
  for (const char* key :
       {"schema", "t_s", "session_count", "sessions", "rolling", "registry",
        "trace"}) {
    Value v = parse_ok(valid_status_doc());
    std::erase_if(v.object,
                  [&](const auto& member) { return member.first == key; });
    EXPECT_FALSE(validate_status_json(v).empty()) << "dropped " << key;
  }
}

TEST(ValidateStatus, SessionCountMustMatchArrayLength) {
  Value v = parse_ok(valid_status_doc());
  for (auto& member : v.object) {
    if (member.first == "session_count") member.second = parse_ok("7");
  }
  const auto problems = validate_status_json(v);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("session_count"), std::string::npos);
}

TEST(ValidateStatus, SessionFlagsMustBeBooleans) {
  for (const char* flag : {"seeded", "lagging", "starved", "backpressured"}) {
    Value v = parse_ok(valid_status_doc());
    for (auto& member : v.object) {
      if (member.first != "sessions") continue;
      for (auto& session_member : member.second.array[0].object) {
        if (session_member.first == flag) {
          session_member.second = parse_ok("1");  // number, not boolean
        }
      }
    }
    EXPECT_FALSE(validate_status_json(v).empty()) << flag;
  }
}

TEST(ValidateStatus, RollingAndCountersMustBeNumeric) {
  {
    Value v = parse_ok(valid_status_doc());
    for (auto& member : v.object) {
      if (member.first == "rolling") {
        member.second = parse_ok(R"({"window_s": 10, "count": 1})");
      }
    }
    EXPECT_FALSE(validate_status_json(v).empty());
  }
  {
    Value v = parse_ok(valid_status_doc());
    for (auto& member : v.object) {
      if (member.first == "registry") {
        member.second = parse_ok(R"({"counters": {"server.commits": "x"}})");
      }
    }
    EXPECT_FALSE(validate_status_json(v).empty());
  }
}

}  // namespace
}  // namespace polardraw::benchjson
