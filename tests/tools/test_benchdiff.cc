// Tests of the benchdiff regression sentinel: metric classification,
// direction-aware thresholds, missing-metric/missing-file handling, the
// markdown report, and an end-to-end directory comparison including an
// injected synthetic regression (the shape the CI self-test exercises).
#include "diff.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace polardraw::benchdiff {
namespace {

namespace fs = std::filesystem;

benchjson::Value doc(const std::string& metrics_json) {
  const std::string text = R"({
    "schema_version": 1, "name": "hmm_decode", "git_sha": "abc",
    "smoke": true, "wall_s": 1.0,
    "config": {"reps_scale": 1, "threads": 1},
    "metrics": )" + metrics_json + R"(,
    "counters": {"hmm.beam_expansions": 1000},
    "gauges": {},
    "stages": {"decode": {"count": 10, "total_s": 1.0, "mean_ms": 100.0,
                          "p50_ms": 90.0, "p95_ms": 150.0}}
  })";
  const auto parsed = benchjson::parse(text);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  return parsed.root;
}

Report diff(const std::string& old_metrics, const std::string& new_metrics,
            Thresholds th = {}) {
  Report report;
  compare_docs("BENCH_hmm_decode.json", doc(old_metrics), doc(new_metrics),
               th, report);
  return report;
}

const MetricDelta* find(const Report& r, const std::string& key) {
  for (const auto& d : r.deltas) {
    if (d.key == key) return &d;
  }
  return nullptr;
}

TEST(ClassifyMetric, SuffixConventions) {
  EXPECT_EQ(classify_metric("metrics.accuracy"), MetricClass::kAccuracy);
  EXPECT_EQ(classify_metric("metrics.letter_accuracy"),
            MetricClass::kAccuracy);
  EXPECT_EQ(classify_metric("metrics.windows_per_s"),
            MetricClass::kThroughput);
  EXPECT_EQ(classify_metric("metrics.trial_wall_p95_ms"), MetricClass::kTime);
  EXPECT_EQ(classify_metric("wall_s"), MetricClass::kTime);
  EXPECT_EQ(classify_metric("stages.decode.p50_ms"), MetricClass::kTime);
  EXPECT_EQ(classify_metric("stages.decode.count"), MetricClass::kCount);
  EXPECT_EQ(classify_metric("metrics.trials"), MetricClass::kCount);
  EXPECT_EQ(classify_metric("counters.hmm.beam_expansions"),
            MetricClass::kCount);
  EXPECT_EQ(classify_metric("metrics.mystery"), MetricClass::kUnknown);
}

TEST(BenchDiff, IdenticalDocsHaveNoRegression) {
  const Report r = diff(R"({"accuracy": 0.93, "windows_per_s": 1000})",
                        R"({"accuracy": 0.93, "windows_per_s": 1000})");
  EXPECT_FALSE(r.has_regression());
  EXPECT_EQ(r.count(Verdict::kRegressed), 0u);
  EXPECT_GT(r.count(Verdict::kUnchanged), 0u);
}

TEST(BenchDiff, AccuracyDropBeyondAbsToleranceRegresses) {
  const Report r = diff(R"({"accuracy": 0.93})", R"({"accuracy": 0.80})");
  EXPECT_TRUE(r.has_regression());
  const MetricDelta* d = find(r, "metrics.accuracy");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->verdict, Verdict::kRegressed);
  EXPECT_EQ(d->cls, MetricClass::kAccuracy);
}

TEST(BenchDiff, AccuracyJitterWithinAbsTolerancePasses) {
  const Report r = diff(R"({"accuracy": 0.930})", R"({"accuracy": 0.925})");
  EXPECT_FALSE(r.has_regression());
  EXPECT_EQ(find(r, "metrics.accuracy")->verdict, Verdict::kUnchanged);
}

TEST(BenchDiff, AccuracyGainIsImprovedNotRegressed) {
  const Report r = diff(R"({"accuracy": 0.80})", R"({"accuracy": 0.93})");
  EXPECT_FALSE(r.has_regression());
  EXPECT_EQ(find(r, "metrics.accuracy")->verdict, Verdict::kImproved);
}

TEST(BenchDiff, ThroughputCollapseRegresses) {
  // An 80% drop dwarfs the default 50% relative tolerance.
  const Report r = diff(R"({"windows_per_s": 1000})",
                        R"({"windows_per_s": 200})");
  EXPECT_TRUE(r.has_regression());
  EXPECT_EQ(find(r, "metrics.windows_per_s")->verdict, Verdict::kRegressed);
}

TEST(BenchDiff, ThroughputJitterAndGainsPass) {
  EXPECT_FALSE(diff(R"({"windows_per_s": 1000})", R"({"windows_per_s": 900})")
                   .has_regression());
  const Report gain =
      diff(R"({"windows_per_s": 1000})", R"({"windows_per_s": 4000})");
  EXPECT_FALSE(gain.has_regression());
  EXPECT_EQ(find(gain, "metrics.windows_per_s")->verdict, Verdict::kImproved);
}

TEST(BenchDiff, TimeMetricsAreLowerIsBetter) {
  // Same relative move, opposite verdicts for time vs throughput.
  const Report slower = diff(R"({"decode_p95_ms": 10.0})",
                             R"({"decode_p95_ms": 30.0})");
  EXPECT_TRUE(slower.has_regression());
  EXPECT_EQ(find(slower, "metrics.decode_p95_ms")->verdict,
            Verdict::kRegressed);
  const Report faster = diff(R"({"decode_p95_ms": 30.0})",
                             R"({"decode_p95_ms": 10.0})");
  EXPECT_FALSE(faster.has_regression());
}

TEST(BenchDiff, ZeroTimeBaselineDriftBeyondAbsTolRegresses) {
  // A 0.0 time baseline (sub-resolution smoke timing) used to make the
  // degradation factor divide by zero and fall into a silently-passing
  // kInfo. It must gate by absolute drift instead.
  const Report r = diff(R"({"decode_p50_ms": 0.0})",
                        R"({"decode_p50_ms": 12.0})");
  EXPECT_TRUE(r.has_regression());
  const MetricDelta* d = find(r, "metrics.decode_p50_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->verdict, Verdict::kRegressed);
  EXPECT_EQ(d->cls, MetricClass::kTime);
}

TEST(BenchDiff, ZeroTimeBaselineSmallDriftPasses) {
  // Default zero_perf_abs_tol = 0.5 (in the metric's own unit).
  const Report r = diff(R"({"decode_p50_ms": 0.0})",
                        R"({"decode_p50_ms": 0.3})");
  EXPECT_FALSE(r.has_regression());
  EXPECT_EQ(find(r, "metrics.decode_p50_ms")->verdict, Verdict::kUnchanged);
}

TEST(BenchDiff, ZeroThroughputBaselineGainIsImprovement) {
  const Report r = diff(R"({"commits_per_s": 0.0})",
                        R"({"commits_per_s": 500.0})");
  EXPECT_FALSE(r.has_regression());
  EXPECT_EQ(find(r, "metrics.commits_per_s")->verdict, Verdict::kImproved);
}

TEST(BenchDiff, ThroughputCollapseToZeroStillRegresses) {
  // The other zero side: a live baseline collapsing to 0 must not pass
  // through the zero-handling path as noise.
  const Report r = diff(R"({"windows_per_s": 1000.0})",
                        R"({"windows_per_s": 0.0})");
  EXPECT_TRUE(r.has_regression());
  EXPECT_EQ(find(r, "metrics.windows_per_s")->verdict, Verdict::kRegressed);
}

TEST(BenchDiff, ZeroBaselineAbsTolIsConfigurable) {
  Thresholds th;
  th.zero_perf_abs_tol = 20.0;
  const Report loose = diff(R"({"decode_p50_ms": 0.0})",
                            R"({"decode_p50_ms": 12.0})", th);
  EXPECT_FALSE(loose.has_regression());
  th.zero_perf_abs_tol = 0.0;
  const Report strict = diff(R"({"decode_p50_ms": 0.0})",
                             R"({"decode_p50_ms": 0.001})", th);
  EXPECT_TRUE(strict.has_regression());
}

TEST(BenchDiff, EqualZeroPerfValuesUnchanged) {
  const Report r = diff(R"({"decode_p50_ms": 0.0, "commits_per_s": 0.0})",
                        R"({"decode_p50_ms": 0.0, "commits_per_s": 0.0})");
  EXPECT_FALSE(r.has_regression());
  EXPECT_EQ(find(r, "metrics.decode_p50_ms")->verdict, Verdict::kUnchanged);
  EXPECT_EQ(find(r, "metrics.commits_per_s")->verdict, Verdict::kUnchanged);
}

TEST(BenchDiff, MissingMetricInNewDocRegresses) {
  const Report r = diff(R"({"accuracy": 0.93, "windows_per_s": 1000})",
                        R"({"windows_per_s": 1000})");
  EXPECT_TRUE(r.has_regression());
  const MetricDelta* d = find(r, "metrics.accuracy");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->missing_new);
  EXPECT_EQ(d->verdict, Verdict::kRegressed);
}

TEST(BenchDiff, NewMetricIsReportedAsNew) {
  const Report r = diff(R"({"accuracy": 0.93})",
                        R"({"accuracy": 0.93, "extra_per_s": 5.0})");
  EXPECT_FALSE(r.has_regression());
  const MetricDelta* d = find(r, "metrics.extra_per_s");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->missing_old);
  EXPECT_EQ(d->verdict, Verdict::kNew);
  const std::string md = to_markdown(r, Thresholds{});
  EXPECT_NE(md.find("| metrics.extra_per_s |"), std::string::npos);
  EXPECT_NE(md.find("| new |"), std::string::npos);
  EXPECT_NE(md.find("1 new"), std::string::npos);
}

TEST(BenchDiff, CountDriftWarnsButDoesNotFail) {
  const Report r = diff(R"({"trials": 100})", R"({"trials": 90})");
  EXPECT_FALSE(r.has_regression());
  EXPECT_EQ(find(r, "metrics.trials")->verdict, Verdict::kWarning);
}

TEST(BenchDiff, CustomThresholdsTightenTheGate) {
  Thresholds th;
  th.perf_rel_tol = 0.05;
  const Report r =
      diff(R"({"windows_per_s": 1000})", R"({"windows_per_s": 900})", th);
  EXPECT_TRUE(r.has_regression());
}

TEST(BenchDiff, MarkdownNamesTheOffendingMetric) {
  const Report r = diff(R"({"accuracy": 0.93})", R"({"accuracy": 0.50})");
  const std::string md = to_markdown(r, Thresholds{});
  EXPECT_NE(md.find("metrics.accuracy"), std::string::npos);
  EXPECT_NE(md.find("REGRESSED"), std::string::npos);
  EXPECT_NE(md.find("REGRESSION DETECTED"), std::string::npos);
}

class BenchDiffDirs : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs sibling tests as concurrent processes,
    // which must not share (and remove_all) one scratch directory.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("benchdiff_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "old");
    fs::create_directories(root_ / "new");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& dir, const std::string& name,
             const std::string& metrics_json) {
    std::ofstream os(root_ / dir / name);
    os << R"({"schema_version": 1, "name": "x", "git_sha": "abc",)"
       << R"( "smoke": true, "wall_s": 1.0, "config": {},)"
       << R"( "metrics": )" << metrics_json
       << R"(, "counters": {}, "gauges": {}, "stages": {}})";
  }

  fs::path root_;
};

TEST_F(BenchDiffDirs, IdenticalDirectoriesAreClean) {
  write("old", "BENCH_a.json", R"({"accuracy": 0.9})");
  write("new", "BENCH_a.json", R"({"accuracy": 0.9})");
  const Report r = compare_dirs((root_ / "old").string(),
                                (root_ / "new").string(), Thresholds{});
  EXPECT_FALSE(r.has_regression());
  EXPECT_TRUE(r.errors.empty());
}

TEST_F(BenchDiffDirs, InjectedRegressionIsDetected) {
  write("old", "BENCH_a.json", R"({"accuracy": 0.9, "windows_per_s": 1000})");
  write("new", "BENCH_a.json", R"({"accuracy": 0.9, "windows_per_s": 100})");
  const Report r = compare_dirs((root_ / "old").string(),
                                (root_ / "new").string(), Thresholds{});
  EXPECT_TRUE(r.has_regression());
  const std::string md = to_markdown(r, Thresholds{});
  EXPECT_NE(md.find("metrics.windows_per_s"), std::string::npos);
}

TEST_F(BenchDiffDirs, MissingFileInNewDirRegresses) {
  write("old", "BENCH_a.json", R"({"accuracy": 0.9})");
  write("old", "BENCH_b.json", R"({"accuracy": 0.9})");
  write("new", "BENCH_a.json", R"({"accuracy": 0.9})");
  const Report r = compare_dirs((root_ / "old").string(),
                                (root_ / "new").string(), Thresholds{});
  EXPECT_TRUE(r.has_regression());
  ASSERT_EQ(r.missing_files.size(), 1u);
  EXPECT_EQ(r.missing_files[0], "BENCH_b.json");
}

TEST_F(BenchDiffDirs, UnparsableFileIsAnError) {
  write("old", "BENCH_a.json", R"({"accuracy": 0.9})");
  std::ofstream(root_ / "new" / "BENCH_a.json") << "{not json";
  const Report r = compare_dirs((root_ / "old").string(),
                                (root_ / "new").string(), Thresholds{});
  EXPECT_TRUE(r.has_regression());
  EXPECT_FALSE(r.errors.empty());
}

TEST_F(BenchDiffDirs, EmptyOldDirectoryIsAnError) {
  const Report r = compare_dirs((root_ / "old").string(),
                                (root_ / "new").string(), Thresholds{});
  EXPECT_TRUE(r.has_regression());
}

}  // namespace
}  // namespace polardraw::benchdiff
