#include "channel/multipath.h"

#include <gtest/gtest.h>

#include "common/angles.h"
#include "common/units.h"

namespace polardraw::channel {
namespace {

class MultipathTest : public ::testing::Test {
 protected:
  MultipathTest() {
    antenna_ = em::make_linear_antenna(Vec3{0.5, 1.25, 0.12}, kPi / 2.0);
    antenna_.boresight = Vec3{0.0, -1.0, 0.0};
    antenna_.polarization_axis = Vec3{0.0, 0.0, 1.0};
    tag_.position = Vec3{0.5, 0.25, 0.0};
    tag_.dipole_axis = Vec3{0.0, 0.0, 1.0};
  }
  em::ReaderAntenna antenna_;
  em::Tag tag_;
  em::TxConfig tx_;
};

TEST_F(MultipathTest, EmptyChannelEqualsLos) {
  MultipathChannel ch;
  const ChannelSample s = ch.evaluate(antenna_, tag_, tx_, 0.0);
  EXPECT_EQ(s.response, s.los_response);
  EXPECT_GT(std::norm(s.response), 0.0);
}

TEST_F(MultipathTest, ScatterersPerturbResponse) {
  MultipathChannel clean;
  MultipathChannel cluttered = make_office_channel(4);
  const auto s0 = clean.evaluate(antenna_, tag_, tx_, 0.0);
  const auto s1 = cluttered.evaluate(antenna_, tag_, tx_, 0.0);
  EXPECT_NE(std::norm(s0.response), std::norm(s1.response));
  // Clutter is a perturbation, not the dominant term, for a co-polarized
  // line-of-sight link.
  const double los_db = mw_to_dbm(std::norm(s0.response));
  const double tot_db = mw_to_dbm(std::norm(s1.response));
  EXPECT_NEAR(tot_db, los_db, 3.0);
}

TEST_F(MultipathTest, CrossPolarizedTagStillHarvestsViaReflections) {
  // The feasibility-study observation: at deep mismatch the tag still
  // gets some energy along depolarized reflection paths.
  tag_.dipole_axis = Vec3{1.0, 0.0, 0.0};  // orthogonal to antenna axis
  MultipathChannel clean;
  MultipathChannel cluttered = make_office_channel(4);
  const auto s_clean = clean.evaluate(antenna_, tag_, tx_, 0.0);
  const auto s_clut = cluttered.evaluate(antenna_, tag_, tx_, 0.0);
  EXPECT_GT(s_clut.tag_power_dbm, s_clean.tag_power_dbm);
}

TEST_F(MultipathTest, WalkingScattererChangesOverTime) {
  MultipathChannel ch;
  ch.add(make_bystander_walking(0.6, Vec3{0.5, 0.3, 0.0}));
  const auto s0 = ch.evaluate(antenna_, tag_, tx_, 0.0);
  const auto s1 = ch.evaluate(antenna_, tag_, tx_, 0.7);
  EXPECT_NE(s0.response, s1.response);
}

TEST_F(MultipathTest, StaticScattererConstantOverTime) {
  MultipathChannel ch;
  ch.add(make_bystander_static(0.6, Vec3{0.5, 0.3, 0.0}));
  const auto s0 = ch.evaluate(antenna_, tag_, tx_, 0.0);
  const auto s1 = ch.evaluate(antenna_, tag_, tx_, 5.0);
  EXPECT_EQ(s0.response, s1.response);
}

TEST_F(MultipathTest, CloserBystanderDisturbsMore) {
  const auto baseline =
      MultipathChannel{}.evaluate(antenna_, tag_, tx_, 0.0).response;
  double prev_disturbance = -1.0;
  for (double dist : {0.9, 0.6, 0.3}) {
    MultipathChannel ch;
    ch.add(make_bystander_static(dist, Vec3{0.5, 0.3, 0.0}));
    const auto s = ch.evaluate(antenna_, tag_, tx_, 0.0);
    const double disturbance = std::abs(s.response - baseline);
    EXPECT_GT(disturbance, prev_disturbance)
        << "bystander at " << dist << " m";
    prev_disturbance = disturbance;
  }
}

TEST(Scatterer, WalkOscillatesAroundNominal) {
  Scatterer s = make_bystander_walking(0.5, Vec3{0.5, 0.3, 0.0});
  const Vec3 nominal = s.position;
  // Period start and half period are symmetric around the nominal point.
  const Vec3 p0 = s.position_at(0.0);
  const Vec3 p_half = s.position_at(s.walk_period_s / 2.0);
  EXPECT_NEAR(p0.dist(nominal), 0.0, 1e-9);
  EXPECT_NEAR(p_half.dist(nominal), 0.0, 1e-9);
  // Quarter period reaches the amplitude.
  const Vec3 pq = s.position_at(s.walk_period_s / 4.0);
  EXPECT_NEAR(pq.dist(nominal), s.walk_amplitude_m, 1e-9);
}

TEST(Scatterer, OfficeClutterDeterministic) {
  const Scatterer a = make_office_clutter(2);
  const Scatterer b = make_office_clutter(2);
  EXPECT_EQ(a.position, b.position);
  EXPECT_NE(make_office_clutter(0).position, make_office_clutter(1).position);
}

TEST(OfficeChannel, CountRespected) {
  EXPECT_EQ(make_office_channel(0).scatterers().size(), 0u);
  EXPECT_EQ(make_office_channel(6).scatterers().size(), 6u);
}

}  // namespace
}  // namespace polardraw::channel
