#include "channel/noise.h"

#include <gtest/gtest.h>

#include <complex>

#include "common/angles.h"
#include "common/stats.h"
#include "common/units.h"

namespace polardraw::channel {
namespace {

TEST(Noise, HighSnrPhaseAccurate) {
  NoiseConfig cfg;
  Rng rng(3);
  // -30 dBm signal vs -85 dBm floor: phase jitter should be near the PLL
  // floor. The reader reports +4*pi*d/lambda, the negative of the complex
  // argument.
  const auto response = std::polar(std::sqrt(dbm_to_mw(-30.0)), -1.0);
  RunningStats err;
  for (int i = 0; i < 500; ++i) {
    const auto obs = observe(response, cfg, rng);
    err.push(angle_diff(obs.phase_rad, wrap_2pi(1.0)));
  }
  EXPECT_NEAR(err.mean(), 0.0, 0.02);
  EXPECT_LT(err.stddev(), 2.0 * cfg.phase_noise_floor_rad);
}

TEST(Noise, LowSnrPhaseScattered) {
  NoiseConfig cfg;
  Rng rng(4);
  const auto response = std::polar(std::sqrt(dbm_to_mw(-84.0)), 0.5);
  RunningStats err;
  for (int i = 0; i < 500; ++i) {
    const auto obs = observe(response, cfg, rng);
    err.push(angle_dist(obs.phase_rad, wrap_2pi(-0.5)));
  }
  // Near the noise floor the phase is nearly useless.
  EXPECT_GT(err.mean(), 0.3);
}

TEST(Noise, RssTracksSignalPower) {
  NoiseConfig cfg;
  Rng rng(5);
  for (double dbm : {-30.0, -45.0, -60.0}) {
    const auto response = std::polar(std::sqrt(dbm_to_mw(dbm)), 0.3);
    RunningStats rss;
    for (int i = 0; i < 300; ++i) rss.push(observe(response, cfg, rng).rss_dbm);
    EXPECT_NEAR(rss.mean(), dbm, 1.0) << "at " << dbm;
  }
}

TEST(Noise, SnrReportedConsistently) {
  NoiseConfig cfg;
  Rng rng(6);
  const auto response = std::polar(std::sqrt(dbm_to_mw(-55.0)), 0.0);
  const auto obs = observe(response, cfg, rng);
  EXPECT_NEAR(obs.snr_db, -55.0 - cfg.noise_floor_dbm, 1e-6);
}

TEST(Noise, ModulationGainImprovesPhase) {
  NoiseConfig weak;  // FM0
  NoiseConfig strong = weak;
  strong.modulation_snr_gain = 8.0;  // Miller-8
  strong.phase_noise_floor_rad = weak.phase_noise_floor_rad;
  const auto response = std::polar(std::sqrt(dbm_to_mw(-75.0)), 1.2);
  Rng rng_a(7), rng_b(7);
  RunningStats err_weak, err_strong;
  for (int i = 0; i < 500; ++i) {
    err_weak.push(
        angle_dist(observe(response, weak, rng_a).phase_rad, wrap_2pi(-1.2)));
    err_strong.push(
        angle_dist(observe(response, strong, rng_b).phase_rad, wrap_2pi(-1.2)));
  }
  EXPECT_LT(err_strong.mean(), err_weak.mean());
}

TEST(Noise, DeterministicGivenSeed) {
  NoiseConfig cfg;
  Rng a(9), b(9);
  const auto response = std::polar(1e-3, 0.7);
  for (int i = 0; i < 20; ++i) {
    const auto oa = observe(response, cfg, a);
    const auto ob = observe(response, cfg, b);
    EXPECT_EQ(oa.rss_dbm, ob.rss_dbm);
    EXPECT_EQ(oa.phase_rad, ob.phase_rad);
  }
}

}  // namespace
}  // namespace polardraw::channel
