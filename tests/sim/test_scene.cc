#include "sim/scene.h"

#include <gtest/gtest.h>

#include "common/angles.h"

namespace polardraw::sim {
namespace {

handwriting::WritingTrace simple_trace() {
  handwriting::WritingTrace trace;
  for (int i = 0; i <= 400; ++i) {
    handwriting::TraceSample s;
    s.t_s = i * 0.005;
    s.pen_tip = Vec3{0.4 + 0.0002 * i, 0.25, 0.0};
    s.angles = em::PenAngles{deg2rad(30.0), deg2rad(90.0)};
    s.tag_pos = s.pen_tip + em::pen_axis(s.angles) * 0.03;
    trace.samples.push_back(s);
  }
  trace.duration_s = 2.0;
  return trace;
}

TEST(BuildRig, PolarDrawTwoLinearAntennas) {
  SceneConfig cfg;
  cfg.layout = RigLayout::kPolarDrawTwoAntenna;
  const auto rig = build_rig(cfg);
  ASSERT_EQ(rig.size(), 2u);
  for (const auto& a : rig) {
    EXPECT_EQ(a.mode, em::PolarizationMode::kLinear);
    // Looking down at the writing area.
    EXPECT_NEAR(a.boresight.y, -1.0, 1e-12);
    // Polarization axis in the X-Z plane.
    EXPECT_NEAR(a.polarization_axis.y, 0.0, 1e-12);
  }
  // Axes at +/- gamma around Z: symmetric x components.
  EXPECT_NEAR(rig[0].polarization_axis.x, -rig[1].polarization_axis.x, 1e-9);
  // Antenna spacing as configured.
  EXPECT_NEAR(rig[0].position.dist(rig[1].position), cfg.antenna_spacing_m,
              1e-9);
}

TEST(BuildRig, StandoffControlsTagReaderDistance) {
  SceneConfig near_cfg, far_cfg;
  near_cfg.antenna_standoff_m = 0.4;
  far_cfg.antenna_standoff_m = 1.2;
  const auto near_rig = build_rig(near_cfg);
  const auto far_rig = build_rig(far_cfg);
  EXPECT_LT(near_rig[0].position.y, far_rig[0].position.y);
}

TEST(BuildRig, BaselineRigsCircular) {
  for (auto layout : {RigLayout::kTagoramTwoAntenna,
                      RigLayout::kTagoramFourAntenna,
                      RigLayout::kRfIdrawFourAntenna}) {
    SceneConfig cfg;
    cfg.layout = layout;
    const auto rig = build_rig(cfg);
    for (const auto& a : rig) {
      EXPECT_EQ(a.mode, em::PolarizationMode::kCircular);
    }
  }
  SceneConfig cfg;
  cfg.layout = RigLayout::kTagoramFourAntenna;
  EXPECT_EQ(build_rig(cfg).size(), 4u);
  cfg.layout = RigLayout::kRfIdrawFourAntenna;
  EXPECT_EQ(build_rig(cfg).size(), 4u);
}

TEST(TagAtTime, InterpolatesPosition) {
  const auto trace = simple_trace();
  const auto tag = tag_at_time(trace, 1.0);
  // At t = 1.0 the tip is at x = 0.4 + 0.0002*200 = 0.44.
  EXPECT_NEAR(tag.position.x, 0.44 + 0.0, 0.01);
  // Clamps at the ends.
  EXPECT_NEAR(tag_at_time(trace, -5.0).position.x,
              trace.samples.front().tag_pos.x, 1e-9);
  EXPECT_NEAR(tag_at_time(trace, 99.0).position.x,
              trace.samples.back().tag_pos.x, 1e-9);
}

TEST(TagAtTime, DipoleFollowsPenAngles) {
  const auto trace = simple_trace();
  const auto tag = tag_at_time(trace, 0.5);
  const Vec3 expect = em::pen_axis({deg2rad(30.0), deg2rad(90.0)});
  EXPECT_NEAR(tag.dipole_axis.dot(expect), 1.0, 1e-6);
}

TEST(Scene, RunProducesReports) {
  SceneConfig cfg;
  cfg.seed = 3;
  Scene scene(cfg);
  const auto reports = scene.run(simple_trace());
  EXPECT_GT(reports.size(), 100u);
  for (const auto& r : reports) {
    EXPECT_GE(r.antenna_id, 0);
    EXPECT_LT(r.antenna_id, 2);
    EXPECT_GE(r.phase_rad, 0.0);
    EXPECT_LT(r.phase_rad, kTwoPi);
    EXPECT_GT(r.rss_dbm, -120.0);
    EXPECT_LT(r.rss_dbm, 0.0);
  }
}

TEST(Scene, DeterministicGivenSeed) {
  SceneConfig cfg;
  cfg.seed = 17;
  Scene a(cfg), b(cfg);
  const auto trace = simple_trace();
  const auto ra = a.run(trace);
  const auto rb = b.run(trace);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); i += 13) {
    EXPECT_EQ(ra[i].phase_rad, rb[i].phase_rad);
    EXPECT_EQ(ra[i].rss_dbm, rb[i].rss_dbm);
  }
}

TEST(Scene, DifferentSeedsDiffer) {
  SceneConfig ca, cb;
  ca.seed = 1;
  cb.seed = 2;
  Scene a(ca), b(cb);
  const auto trace = simple_trace();
  const auto ra = a.run(trace);
  const auto rb = b.run(trace);
  bool differ = ra.size() != rb.size();
  for (std::size_t i = 0; !differ && i < ra.size(); ++i) {
    differ = ra[i].phase_rad != rb[i].phase_rad;
  }
  EXPECT_TRUE(differ);
}

TEST(Scene, BystanderScattererInjectable) {
  SceneConfig cfg;
  Scene scene(cfg);
  const std::size_t before = scene.reader().channel().scatterers().size();
  scene.add_scatterer(
      channel::make_bystander_walking(0.3, Vec3{0.5, 0.25, 0.0}));
  EXPECT_EQ(scene.reader().channel().scatterers().size(), before + 1);
}

TEST(Scene, AntennaBoardPositions) {
  SceneConfig cfg;
  Scene scene(cfg);
  const auto pos = scene.antenna_board_positions();
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_NEAR(pos[0].x + pos[1].x, cfg.board_width_m, 1e-9);
}

TEST(Scene, EmptyTraceNoReports) {
  SceneConfig cfg;
  Scene scene(cfg);
  EXPECT_TRUE(scene.run(handwriting::WritingTrace{}).empty());
}

}  // namespace
}  // namespace polardraw::sim
