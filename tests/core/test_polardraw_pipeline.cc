// Integration tests: the full PolarDraw pipeline against the simulation
// substrate (synthesize -> reader -> track -> score).
#include <gtest/gtest.h>

#include "core/polardraw.h"
#include "eval/harness.h"
#include "recognition/procrustes.h"
#include "sim/scene.h"

namespace polardraw::core {
namespace {

eval::TrialResult run(const std::string& text, eval::System system,
                      std::uint64_t seed) {
  eval::TrialConfig cfg;
  cfg.system = system;
  cfg.seed = seed;
  return eval::run_trial(text, cfg);
}

TEST(Pipeline, TracksSingleLetterWithinPaperBand) {
  // Median tracking error in the paper is ~10 cm; individual clean trials
  // on this substrate land well under that.
  const auto res = run("O", eval::System::kPolarDraw, 5);
  EXPECT_GT(res.trajectory.size(), 40u);
  EXPECT_LT(res.procrustes_m, 0.12);
}

TEST(Pipeline, RecognizesEasyLetters) {
  int ok = 0;
  for (char c : std::string("IMNOZ")) {
    const auto res = run(std::string(1, c), eval::System::kPolarDraw,
                         100 + static_cast<std::uint64_t>(c));
    ok += res.all_correct ? 1 : 0;
  }
  EXPECT_GE(ok, 4);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto a = run("S", eval::System::kPolarDraw, 9);
  const auto b = run("S", eval::System::kPolarDraw, 9);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); i += 7) {
    EXPECT_EQ(a.trajectory[i], b.trajectory[i]);
  }
  EXPECT_EQ(a.recognized, b.recognized);
}

TEST(Pipeline, StrictAblationCollapses) {
  // Table 6's "w/o polarization": with the orientation model removed the
  // trajectory shape collapses (the paper reports 23% vs 91%).
  int full_ok = 0, ablated_ok = 0;
  for (char c : std::string("CLMOSUWZ")) {
    const std::string s(1, c);
    full_ok += run(s, eval::System::kPolarDraw, 31).all_correct ? 1 : 0;
    ablated_ok += run(s, eval::System::kPolarDrawNoPol, 31).all_correct ? 1 : 0;
  }
  EXPECT_GT(full_ok, ablated_ok + 2);
}

TEST(Pipeline, TrajectoriesStayOnBoard) {
  const auto res = run("W", eval::System::kPolarDraw, 12);
  // The grid confines the decoded tag track to the board; the tip
  // estimate may sit up to a tag-offset outside it.
  for (const auto& p : res.trajectory) {
    EXPECT_GE(p.x, -0.04);
    EXPECT_LE(p.x, 1.04);
    EXPECT_GE(p.y, -0.04);
    EXPECT_LE(p.y, 0.64);
  }
}

TEST(Pipeline, WindowCountsConsistent) {
  eval::TrialConfig cfg;
  cfg.system = eval::System::kPolarDraw;
  cfg.seed = 4;
  eval::apply_system_layout(cfg);
  cfg.scene.seed = cfg.seed;
  sim::Scene scene(cfg.scene);
  Rng rng(cfg.seed * 7919 + 13);
  const auto trace = handwriting::synthesize("B", cfg.synth, rng);
  const auto reports = scene.run(trace);
  const PhaseCalibration cal{scene.reader().port_phase_offsets()};
  const auto apos = scene.antenna_board_positions();
  PolarDraw tracker(cfg.algo, apos[0], apos[1], 0.12);
  const auto result = tracker.track(reports, &cal);
  EXPECT_EQ(result.rotational_windows + result.translational_windows +
                result.idle_windows,
            static_cast<int>(result.diagnostics.size()));
  EXPECT_GT(result.translational_windows, 0);
}

TEST(Pipeline, BaselinesTrackToo) {
  for (auto sys : {eval::System::kTagoram2, eval::System::kTagoram4,
                   eval::System::kRfIdraw4}) {
    const auto res = run("O", sys, 21);
    EXPECT_GT(res.trajectory.size(), 40u) << to_string(sys);
    EXPECT_LT(res.procrustes_m, 0.12) << to_string(sys);
  }
}

TEST(Pipeline, WordTrialClassifiesPerLetter) {
  const auto res = run("AT", eval::System::kPolarDraw, 77);
  EXPECT_EQ(res.recognized.size(), 2u);
}

TEST(Harness, SystemNamesDistinct) {
  EXPECT_NE(to_string(eval::System::kPolarDraw),
            to_string(eval::System::kTagoram4));
  EXPECT_NE(to_string(eval::System::kPolarDrawNoPol),
            to_string(eval::System::kPolarDrawNoPolPhaseDir));
}

TEST(Harness, TestWordsDeterministicAndSized) {
  for (std::size_t len = 2; len <= 5; ++len) {
    for (std::size_t i = 0; i < 10; ++i) {
      const auto w = eval::test_word(len, i);
      EXPECT_EQ(w.size(), len);
      EXPECT_EQ(w, eval::test_word(len, i));
    }
  }
  // Out-of-range lengths clamp.
  EXPECT_EQ(eval::test_word(1, 0).size(), 2u);
  EXPECT_EQ(eval::test_word(9, 0).size(), 5u);
}

TEST(Harness, LetterAccuracyFillsConfusion) {
  eval::TrialConfig cfg;
  cfg.system = eval::System::kPolarDraw;
  cfg.seed = 55;
  recognition::ConfusionMatrix cm;
  const double acc = eval::letter_accuracy("IO", 2, cfg, &cm);
  EXPECT_EQ(cm.total(), 4);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace polardraw::core
