#include "core/preprocess.h"

#include <gtest/gtest.h>

#include "common/angles.h"

namespace polardraw::core {
namespace {

rfid::TagReport report(double t, int ant, double rss_dbm, double phase_rad) {
  rfid::TagReport r;
  r.timestamp_s = t;
  r.antenna_id = ant;
  r.rss_dbm = rss_dbm;
  r.phase_rad = wrap_2pi(phase_rad);
  return r;
}

TEST(CircularMean, SimpleAverage) {
  const auto m = circular_mean({0.1, 0.3});
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(*m, 0.2, 1e-9);
}

TEST(CircularMean, HandlesWrap) {
  // 0.1 and 2*pi - 0.1 average to 0, not pi.
  const auto m = circular_mean({0.1, kTwoPi - 0.1});
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(*m, 0.0, 1e-9);
}

TEST(CircularMean, EmptyIsNullopt) {
  EXPECT_FALSE(circular_mean({}).has_value());
}

TEST(CircularMean, NearCancellationIsNullopt) {
  // Antipodal pairs cancel exactly in real arithmetic but leave a
  // resultant of rounding-noise magnitude in floating point; the mean
  // direction of that noise is meaningless and must be rejected rather
  // than returned as if it carried information.
  EXPECT_FALSE(circular_mean({0.3, 0.3 + kPi}).has_value());
  // Uniformly spread phases (4 points a quarter-turn apart).
  EXPECT_FALSE(
      circular_mean({0.1, 0.1 + kPi / 2, 0.1 + kPi, 0.1 + 3 * kPi / 2})
          .has_value());
  // Many near-uniform samples: per-term rounding error grows with n, and
  // so must the rejection threshold.
  std::vector<double> uniform;
  for (int i = 0; i < 1000; ++i) uniform.push_back(kTwoPi * i / 1000.0);
  EXPECT_FALSE(circular_mean(uniform).has_value());
}

TEST(CircularMean, TightClusterSurvivesTheNoiseFloor) {
  // A genuinely concentrated set must not be swallowed by the epsilon.
  const auto m = circular_mean({1.0, 1.0, 1.0, 1.0});
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(*m, 1.0, 1e-12);
}

TEST(Preprocess, WindowsAggregateBothAntennas) {
  PolarDrawConfig cfg;
  rfid::TagReportStream reports;
  // Two antennas, 4 reads per 50 ms window each, 5 windows.
  for (int w = 0; w < 5; ++w) {
    for (int k = 0; k < 4; ++k) {
      const double t = w * 0.05 + k * 0.012;
      reports.push_back(report(t, 0, -40.0 - w, 1.0 + 0.01 * w));
      reports.push_back(report(t + 0.001, 1, -50.0 - w, 2.0 + 0.01 * w));
    }
  }
  const auto windows = preprocess(reports, cfg);
  ASSERT_EQ(windows.size(), 5u);
  for (int w = 0; w < 5; ++w) {
    EXPECT_TRUE(windows[w].both_rss_valid());
    EXPECT_TRUE(windows[w].both_phase_valid());
    EXPECT_NEAR(windows[w].rss_dbm[0], -40.0 - w, 1e-9);
    EXPECT_NEAR(windows[w].rss_dbm[1], -50.0 - w, 1e-9);
    EXPECT_EQ(windows[w].read_count[0], 4);
  }
}

TEST(Preprocess, EmptyWindowsMarkedInvalid) {
  PolarDrawConfig cfg;
  rfid::TagReportStream reports;
  reports.push_back(report(0.0, 0, -40.0, 1.0));
  reports.push_back(report(0.2, 0, -40.0, 1.0));  // 4 windows later
  const auto windows = preprocess(reports, cfg);
  ASSERT_EQ(windows.size(), 5u);
  EXPECT_TRUE(windows[0].rss_valid[0]);
  EXPECT_FALSE(windows[1].rss_valid[0]);
  EXPECT_FALSE(windows[2].both_rss_valid());
}

TEST(Preprocess, SpuriousJumpRejected) {
  PolarDrawConfig cfg;
  cfg.spurious_phase_threshold_rad = 0.2;
  rfid::TagReportStream reports;
  // Stable phase, one wild window (a cross-polarized reflection reading),
  // then stable again.
  for (int w = 0; w < 6; ++w) {
    const double phase = w == 3 ? 2.5 : 1.0 + 0.02 * w;
    reports.push_back(report(w * 0.05, 0, -40.0, phase));
    reports.push_back(report(w * 0.05 + 0.01, 1, -40.0, 1.0));
  }
  const auto windows = preprocess(reports, cfg);
  ASSERT_EQ(windows.size(), 6u);
  EXPECT_TRUE(windows[2].phase_valid[0]);
  EXPECT_FALSE(windows[3].phase_valid[0]);  // rejected
  EXPECT_TRUE(windows[4].phase_valid[0]);   // recovered (gap-scaled)
  // RSS is never rejected by the phase filter.
  EXPECT_TRUE(windows[3].rss_valid[0]);
}

TEST(Preprocess, GapScalingAvoidsCascade) {
  PolarDrawConfig cfg;
  cfg.spurious_phase_threshold_rad = 0.2;
  rfid::TagReportStream reports;
  // Phase slews 0.15 rad/window; a 3-window read gap accumulates 0.45 rad
  // of legitimate change, which must NOT be rejected.
  int w = 0;
  auto add = [&](int window) {
    reports.push_back(report(window * 0.05, 0, -40.0, 1.0 + 0.15 * window));
  };
  for (w = 0; w < 3; ++w) add(w);
  for (w = 6; w < 9; ++w) add(w);  // gap of 3 windows
  const auto windows = preprocess(reports, cfg);
  ASSERT_GE(windows.size(), 9u);
  EXPECT_TRUE(windows[6].phase_valid[0]);
  EXPECT_TRUE(windows[7].phase_valid[0]);
}

TEST(Preprocess, UnwrapsAcrossWindows) {
  PolarDrawConfig cfg;
  cfg.spurious_phase_threshold_rad = 0.5;
  rfid::TagReportStream reports;
  // Steady slew of 0.4 rad per window wraps after ~16 windows; the
  // unwrapped series must keep increasing.
  for (int w = 0; w < 30; ++w) {
    reports.push_back(report(w * 0.05, 0, -40.0, 0.4 * w));
  }
  const auto windows = preprocess(reports, cfg);
  double prev = -1e9;
  for (const auto& win : windows) {
    if (!win.phase_valid[0]) continue;
    EXPECT_GT(win.phase_rad[0], prev);
    prev = win.phase_rad[0];
  }
  EXPECT_GT(prev, 10.0);  // far beyond one wrap
}

TEST(Preprocess, CalibrationSubtractsPortOffsets) {
  PolarDrawConfig cfg;
  rfid::TagReportStream reports;
  for (int w = 0; w < 3; ++w) {
    reports.push_back(report(w * 0.05, 0, -40.0, 1.5));
  }
  PhaseCalibration cal{{0.5, 0.0}};
  const auto windows = preprocess(reports, cfg, &cal);
  EXPECT_NEAR(wrap_2pi(windows[0].phase_rad[0]), 1.0, 1e-9);
}

rfid::TagReport channel_report(double t, int ant, double phase_rad,
                               int channel) {
  rfid::TagReport r = report(t, ant, -40.0, phase_rad);
  r.channel = channel;
  return r;
}

TEST(PreprocessHop, UncalibratedHopFencesInsteadOfStraddling) {
  // An uncalibrated channel hop re-bases the phase by an arbitrary
  // RF-chain offset. The comparison must NEVER straddle the hop: the
  // post-hop window is not judged against the pre-hop reference (which
  // would reject it as spurious here -- the offset far exceeds the
  // threshold), and the unwrapper restarts instead of folding the offset
  // into the continuous series.
  PolarDrawConfig cfg;
  cfg.spurious_phase_threshold_rad = 0.2;
  const double kOffset = 2.1;  // phase re-base at the hop, >> threshold
  rfid::TagReportStream reports;
  for (int w = 0; w < 8; ++w) {
    const bool hopped = w >= 4;
    const double phase = 1.0 + 0.02 * w + (hopped ? kOffset : 0.0);
    reports.push_back(channel_report(w * 0.05, 0, phase, hopped ? 13 : 5));
  }
  const auto windows = preprocess(reports, cfg);
  ASSERT_EQ(windows.size(), 8u);
  for (int w = 0; w < 8; ++w) {
    // Every window keeps its phase: the hop fences the comparison, it
    // does not reject samples.
    EXPECT_TRUE(windows[static_cast<std::size_t>(w)].phase_valid[0])
        << "window " << w;
    // No channel calibration was supplied, so no window may claim it.
    EXPECT_FALSE(windows[static_cast<std::size_t>(w)].channel_calibrated[0]);
  }
  // The unwrapper restarted at the hop: window 4's unwrapped value is its
  // own wrapped phase (a fresh series), not pre-hop phase + jump.
  EXPECT_NEAR(windows[4].phase_rad[0], wrap_2pi(1.08 + kOffset), 1e-9);
  // Within each channel the series stays continuous.
  EXPECT_NEAR(windows[3].phase_rad[0] - windows[0].phase_rad[0], 0.06, 1e-9);
  EXPECT_NEAR(windows[7].phase_rad[0] - windows[4].phase_rad[0], 0.06, 1e-9);
}

TEST(PreprocessHop, CalibratedHopContinuesTheComparison) {
  // With per-channel calibration covering both channels, the offsets are
  // removed at bucketing time and the unwrapped series runs straight
  // through the hop.
  PolarDrawConfig cfg;
  cfg.spurious_phase_threshold_rad = 0.2;
  PhaseCalibration cal;
  cal.port_offsets_rad = {0.0, 0.0};
  cal.channel_offsets_rad.assign(20, 0.0);
  cal.channel_offsets_rad[5] = 0.7;
  cal.channel_offsets_rad[13] = 2.8;
  rfid::TagReportStream reports;
  for (int w = 0; w < 8; ++w) {
    const bool hopped = w >= 4;
    const int ch = hopped ? 13 : 5;
    // True phase slews 0.05/window; the measurement adds the channel's
    // RF-chain offset.
    const double phase = 1.0 + 0.05 * w + cal.channel_offsets_rad[
                             static_cast<std::size_t>(ch)];
    reports.push_back(channel_report(w * 0.05, 0, phase, ch));
  }
  const auto windows = preprocess(reports, cfg, &cal);
  ASSERT_EQ(windows.size(), 8u);
  for (int w = 0; w < 8; ++w) {
    EXPECT_TRUE(windows[static_cast<std::size_t>(w)].phase_valid[0]);
    EXPECT_TRUE(windows[static_cast<std::size_t>(w)].channel_calibrated[0]);
  }
  // Continuous through the hop: the full slew is 7 x 0.05.
  EXPECT_NEAR(windows[7].phase_rad[0] - windows[0].phase_rad[0], 0.35, 1e-9);
  EXPECT_NEAR(windows[4].phase_rad[0] - windows[3].phase_rad[0], 0.05, 1e-9);
}

TEST(PreprocessHop, CalibratedHopStillRejectsSpuriousJumps) {
  // Once calibrated, the spurious filter DOES straddle the hop -- a wild
  // post-hop reading (beyond the threshold after offset removal) is
  // rejected like any other cross-polarized reflection sample.
  PolarDrawConfig cfg;
  cfg.spurious_phase_threshold_rad = 0.2;
  PhaseCalibration cal;
  cal.channel_offsets_rad.assign(20, 0.0);
  rfid::TagReportStream reports;
  for (int w = 0; w < 6; ++w) {
    const int ch = w >= 3 ? 13 : 5;
    const double phase = w == 3 ? 2.5 : 1.0 + 0.02 * w;  // window 3 wild
    reports.push_back(channel_report(w * 0.05, 0, phase, ch));
  }
  const auto windows = preprocess(reports, cfg, &cal);
  ASSERT_EQ(windows.size(), 6u);
  EXPECT_TRUE(windows[2].phase_valid[0]);
  EXPECT_FALSE(windows[3].phase_valid[0]);  // rejected across the hop
  EXPECT_TRUE(windows[4].phase_valid[0]);   // gap-scaled recovery
}

TEST(PreprocessHop, UncoveredChannelPoisonsWindowCalibration) {
  // A window whose reads mix a covered and an uncovered channel cannot
  // claim channel calibration (one read's RF-chain offset was not
  // removed), so the next hop boundary fences again.
  PolarDrawConfig cfg;
  PhaseCalibration cal;
  cal.channel_offsets_rad.assign(6, 0.0);  // channels 0-5 covered; 13 not
  rfid::TagReportStream reports;
  reports.push_back(channel_report(0.00, 0, 1.0, 5));
  reports.push_back(channel_report(0.01, 0, 1.0, 13));  // uncovered
  reports.push_back(channel_report(0.05, 0, 1.0, 5));
  const auto windows = preprocess(reports, cfg, &cal);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_FALSE(windows[0].channel_calibrated[0]);
  EXPECT_TRUE(windows[1].channel_calibrated[0]);
}

TEST(Preprocess, IgnoresForeignAntennas) {
  PolarDrawConfig cfg;
  rfid::TagReportStream reports;
  reports.push_back(report(0.0, 0, -40.0, 1.0));
  reports.push_back(report(0.0, 3, -40.0, 1.0));  // not a PolarDraw port
  const auto windows = preprocess(reports, cfg);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_TRUE(windows[0].rss_valid[0]);
  EXPECT_FALSE(windows[0].rss_valid[1]);
}

TEST(Preprocess, EmptyStreamEmptyResult) {
  PolarDrawConfig cfg;
  EXPECT_TRUE(preprocess({}, cfg).empty());
}

TEST(Preprocess, ReportsBeforeStreamStartAreDropped) {
  PolarDrawConfig cfg;
  rfid::TagReportStream reports;
  // An unsorted stream whose later entries predate the first report would
  // index a negative window ordinal; those reads must be skipped, not
  // bucketed out of range.
  reports.push_back(report(1.00, 0, -40.0, 1.0));
  reports.push_back(report(0.40, 0, -90.0, 2.5));  // before t0
  reports.push_back(report(1.01, 1, -50.0, 2.0));
  const auto windows = preprocess(reports, cfg);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_TRUE(windows[0].both_rss_valid());
  EXPECT_NEAR(windows[0].rss_dbm[0], -40.0, 1e-9);  // -90 dropped, not mixed
}

TEST(Preprocess, FarFutureTimestampDoesNotExplodeWindowCount) {
  PolarDrawConfig cfg;
  rfid::TagReportStream reports;
  reports.push_back(report(0.00, 0, -40.0, 1.0));
  reports.push_back(report(0.01, 1, -50.0, 2.0));
  // A corrupt timestamp ~3 years into the stream: the window count must
  // stay capped instead of allocating one window per 50 ms of the span.
  reports.push_back(report(1e8, 0, -60.0, 0.5));
  const auto windows = preprocess(reports, cfg);
  ASSERT_FALSE(windows.empty());
  EXPECT_LE(windows.size(), (1u << 17));
  EXPECT_TRUE(windows[0].both_rss_valid());
}

TEST(Preprocess, LongStreamBucketsStayOrdinal) {
  // The vector-bucketed fast path must agree with the definition: read k
  // at time t lands in window floor((t - t0) / window_s).
  PolarDrawConfig cfg;
  rfid::TagReportStream reports;
  for (int k = 0; k < 400; ++k) {
    reports.push_back(report(0.013 * k, 0, -40.0, 1.0));
  }
  const auto windows = preprocess(reports, cfg);
  const double span = 0.013 * 399;
  ASSERT_EQ(windows.size(), static_cast<std::size_t>(span / cfg.window_s) + 1);
  int reads = 0;
  for (const auto& w : windows) {
    EXPECT_EQ(w.index, &w - windows.data());
    reads += w.read_count[0];
  }
  EXPECT_EQ(reads, 400);
}

}  // namespace
}  // namespace polardraw::core
