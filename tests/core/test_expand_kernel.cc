// Kernel-parity suite for the beam-expansion kernels (core/expand_kernel.h).
//
// The tolerance ladder under test:
//   * scalar is the reference -- its bit identity to the historical loop is
//     pinned by tests/core/test_hmm_golden.cc, so here it only serves as
//     the comparison baseline;
//   * vector must commit *identical* trajectories on the golden seed set
//     (both kernels emit candidates in the same first-touch order, so when
//     the scored values agree to the argmax, everything downstream --
//     pruning, tie-breaks, backtrace -- agrees too);
//   * vector's per-window best score may deviate from scalar's only by FP
//     reassociation (bounded absolute tolerance), fuzz-checked across
//     random seeds and lags;
//   * end-to-end recognition accuracy (the fig. 13/18 metric) is equal
//     under both kernels.
//
// Plus the two supporting units: the kernel-level direction-normalization
// contract (a non-unit MotionEstimate::direction must decode exactly like
// its normalized self), and the GenerationScoreboard wrap path.
#include "core/expand_kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/decode_testbed.h"
#include "core/hmm_tracker.h"
#include "core/scoreboard.h"
#include "core/streaming_decoder.h"
#include "eval/harness.h"

namespace polardraw::core {
namespace {

struct GoldenCase {
  PolarDrawConfig cfg;
  int n_windows;
  std::uint64_t seed;
  bool use_hint;
};

/// Same seed set as tests/core/test_hmm_golden.cc pins bit-exactly.
std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  cases.push_back({PolarDrawConfig{}, 100, 1, true});
  cases.push_back({PolarDrawConfig{}, 100, 2, false});
  PolarDrawConfig small;
  small.board_width_m = 0.5;
  small.board_height_m = 0.4;
  small.block_m = 0.005;
  small.beam_width = 200;
  small.hyperbola_sharpness = 1.0;
  cases.push_back({small, 80, 3, true});
  PolarDrawConfig greedy;
  greedy.use_viterbi = false;
  cases.push_back({greedy, 60, 4, true});
  return cases;
}

std::vector<Vec2> batch_decode(const GoldenCase& gc, DecodeKernel kernel) {
  PolarDrawConfig cfg = gc.cfg;
  cfg.decode_kernel = kernel;
  const auto tb = make_decode_testbed(gc.cfg, gc.n_windows, gc.seed);
  const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  return hmm.decode(tb.obs, gc.use_hint ? &tb.start : nullptr);
}

void expect_bit_identical(const std::vector<Vec2>& a,
                          const std::vector<Vec2>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x) << "position " << i;
    EXPECT_EQ(a[i].y, b[i].y) << "position " << i;
  }
}

TEST(ExpandKernelParity, VectorCommitsIdenticalTrajectoriesOnGoldenSeeds) {
  for (const GoldenCase& gc : golden_cases()) {
    const auto scalar = batch_decode(gc, DecodeKernel::kScalar);
    const auto vector = batch_decode(gc, DecodeKernel::kVector);
    expect_bit_identical(vector, scalar);
  }
}

TEST(ExpandKernelParity, KernelsAgreeOnCandidateSetAndStats) {
  // One decode step at kernel granularity: both paths must emit the same
  // candidate cells with the same parents in the same order, score them
  // within FP-reassociation tolerance, and tally expansions / annulus
  // rejections identically (the hyperbola cache counters are documented to
  // differ -- the vector path has no per-candidate memo).
  const PolarDrawConfig cfg;
  const auto tb = make_decode_testbed(cfg, 4, 11);
  const PhaseField field(cfg, tb.a1, tb.a2, tb.antenna_z);

  // A small beam front somewhere mid-board.
  std::vector<std::int32_t> node_cell;
  std::vector<float> node_logp;
  const int r0 = field.rows() / 2, c0 = field.cols() / 2;
  node_cell.push_back(r0 * field.cols() + c0);
  node_cell.push_back(r0 * field.cols() + c0 + 3);
  node_cell.push_back((r0 + 2) * field.cols() + c0 + 1);
  node_logp = {0.0f, -0.25f, -1.5f};

  for (const TrackObservation& o : tb.obs) {
    PolarDrawConfig scfg = cfg;
    scfg.decode_kernel = DecodeKernel::kScalar;
    PolarDrawConfig vcfg = cfg;
    vcfg.decode_kernel = DecodeKernel::kVector;
    ExpandKernel scalar(scfg, field);
    ExpandKernel vector(vcfg, field);

    std::vector<std::int32_t> s_cell, s_parent, v_cell, v_parent;
    std::vector<float> s_logp, v_logp;
    ExpandStats s_stats, v_stats;
    scalar.expand(o, node_cell, node_logp, 0, node_cell.size(), s_cell,
                  s_logp, s_parent, s_stats);
    vector.expand(o, node_cell, node_logp, 0, node_cell.size(), v_cell,
                  v_logp, v_parent, v_stats);

    ASSERT_EQ(s_cell.size(), v_cell.size());
    for (std::size_t i = 0; i < s_cell.size(); ++i) {
      EXPECT_EQ(s_cell[i], v_cell[i]) << "candidate " << i;
      EXPECT_EQ(s_parent[i], v_parent[i]) << "candidate " << i;
      EXPECT_NEAR(s_logp[i], v_logp[i], 1e-4f) << "candidate " << i;
    }
    EXPECT_EQ(s_stats.expansions, v_stats.expansions);
    EXPECT_EQ(s_stats.annulus_rejected, v_stats.annulus_rejected);
  }
}

TEST(ExpandKernelParity, FuzzWindowScoresAndTrajectoriesAcrossSeedsAndLags) {
  // Random testbed seeds and commit lags, both kernels streamed side by
  // side: the per-window best score (the renormalization offset) must stay
  // within FP-reassociation tolerance every single window, and the
  // committed trajectories must agree everywhere.
  const std::size_t lags[] = {1, 3, 7, 16, 61};
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    const std::size_t lag = lags[seed % 5];
    const PolarDrawConfig base;
    const auto tb = make_decode_testbed(base, 60, seed);
    StreamingConfig scfg;
    scfg.lag_windows = lag;

    PolarDrawConfig s_algo = base;
    s_algo.decode_kernel = DecodeKernel::kScalar;
    PolarDrawConfig v_algo = base;
    v_algo.decode_kernel = DecodeKernel::kVector;
    const bool use_hint = seed % 2 == 0;
    StreamingDecoder s_dec(s_algo, tb.a1, tb.a2, tb.antenna_z, scfg, nullptr,
                           use_hint ? &tb.start : nullptr);
    StreamingDecoder v_dec(v_algo, tb.a1, tb.a2, tb.antenna_z, scfg, nullptr,
                           use_hint ? &tb.start : nullptr);
    std::vector<Vec2> s_out, v_out;
    for (const auto& o : tb.obs) {
      s_dec.push(o);
      v_dec.push(o);
      if (s_dec.seeded()) {
        EXPECT_NEAR(s_dec.last_window_logp_max(), v_dec.last_window_logp_max(),
                    1e-3f)
            << "seed " << seed << " lag " << lag;
        // Renormalization invariant, both kernels: the front max is
        // exactly zero after every decoded window.
        EXPECT_EQ(s_dec.front_logp_max(), 0.0f);
        EXPECT_EQ(v_dec.front_logp_max(), 0.0f);
      }
      s_dec.poll(s_out);
      v_dec.poll(v_out);
    }
    s_dec.finish(s_out);
    v_dec.finish(v_out);
    ASSERT_EQ(s_out.size(), v_out.size()) << "seed " << seed;
    for (std::size_t i = 0; i < s_out.size(); ++i) {
      EXPECT_EQ(s_out[i].x, v_out[i].x) << "seed " << seed << " pos " << i;
      EXPECT_EQ(s_out[i].y, v_out[i].y) << "seed " << seed << " pos " << i;
    }
  }
}

TEST(ExpandKernelParity, RecognitionAccuracyEqualUnderBothKernels) {
  // The fig. 13 (letters) / fig. 18 (words) metric end to end, small reps:
  // the full pipeline -- synthesis, RFID sim, tracking, classification --
  // must score identically under both kernels.
  eval::TrialConfig cfg;
  cfg.seed = 99;
  eval::apply_system_layout(cfg);
  cfg.algo.decode_kernel = DecodeKernel::kScalar;
  const double letters_scalar = eval::letter_accuracy("AOXU", 2, cfg);
  const double words_scalar = eval::word_accuracy(2, 1, cfg);
  cfg.algo.decode_kernel = DecodeKernel::kVector;
  const double letters_vector = eval::letter_accuracy("AOXU", 2, cfg);
  const double words_vector = eval::word_accuracy(2, 1, cfg);
  EXPECT_EQ(letters_scalar, letters_vector);
  EXPECT_EQ(words_scalar, words_vector);
}

TEST(ExpandKernel, NonUnitDirectionDecodesLikeItsNormalizedSelf) {
  // The emission's half-plane threshold and perpendicular-distance scale
  // are in meters, so MotionEstimate::direction must be unit length; the
  // kernel enforces it. Scaling every direction by 4 (a power of two, so
  // the renormalization is FP-exact) must change nothing.
  for (const DecodeKernel kernel :
       {DecodeKernel::kScalar, DecodeKernel::kVector}) {
    PolarDrawConfig cfg;
    cfg.board_width_m = 0.4;
    cfg.board_height_m = 0.3;
    cfg.block_m = 0.01;
    cfg.beam_width = 200;
    cfg.decode_kernel = kernel;
    TrackObservation right;
    right.direction.type = MotionType::kTranslational;
    right.direction.direction = Vec2{1.0, 0.0};
    right.distance.lower_m = 0.004;
    right.distance.upper_m = 0.01;
    right.distance.valid = true;
    right.has_phase = false;
    TrackObservation up = right;
    up.direction.direction = Vec2{0.0, 1.0};
    std::vector<TrackObservation> unit_obs;
    for (int i = 0; i < 12; ++i) unit_obs.push_back(i % 3 == 2 ? up : right);
    std::vector<TrackObservation> scaled_obs = unit_obs;
    for (auto& o : scaled_obs) {
      o.direction.direction = Vec2{o.direction.direction.x * 4.0,
                                   o.direction.direction.y * 4.0};
    }

    const Vec2 a1{0.1, 0.35}, a2{0.3, 0.35};
    const Vec2 start{0.1, 0.15};
    const HmmTracker hmm(cfg, a1, a2, 0.12);
    expect_bit_identical(hmm.decode(scaled_obs, &start),
                         hmm.decode(unit_obs, &start));
  }
}

TEST(GenerationScoreboard, CounterWrapFallsBackToFullWipe) {
  GenerationScoreboard<std::int32_t> sb(8);
  sb.put(3, 42);
  EXPECT_TRUE(sb.contains(3));

  // Jump to the last pre-wrap generation: entries written now carry the
  // max stamp, and the next clear() wraps the counter to 0 -- which must
  // trigger the full stamp wipe, or those entries would alias as live
  // once the counter climbs back to their stamp value.
  sb.debug_set_generation(0xFFFFFFFFu);
  sb.put(5, 7);
  EXPECT_TRUE(sb.contains(5));
  EXPECT_EQ(sb.get(5), 7);

  sb.clear();  // wraps: ++gen == 0 -> wipe, gen = 1
  for (std::size_t cell = 0; cell < sb.size(); ++cell) {
    EXPECT_FALSE(sb.contains(cell)) << "cell " << cell;
  }
  // The scoreboard is fully usable after the wipe.
  sb.put(5, 9);
  EXPECT_TRUE(sb.contains(5));
  EXPECT_EQ(sb.get(5), 9);
  sb.clear();
  EXPECT_FALSE(sb.contains(5));
}

}  // namespace
}  // namespace polardraw::core
