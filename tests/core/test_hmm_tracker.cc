#include "core/hmm_tracker.h"

#include <gtest/gtest.h>

#include "common/angles.h"

namespace polardraw::core {
namespace {

PolarDrawConfig small_config() {
  PolarDrawConfig cfg;
  cfg.board_width_m = 0.4;
  cfg.board_height_m = 0.3;
  cfg.block_m = 0.01;
  cfg.beam_width = 200;
  cfg.warmup_windows = 0;
  return cfg;
}

class HmmTest : public ::testing::Test {
 protected:
  HmmTest()
      : cfg_(small_config()),
        a1_{0.1, 0.35},
        a2_{0.3, 0.35},
        hmm_(cfg_, a1_, a2_, 0.12) {}

  /// Builds an observation that moves the pen `step` meters along `dir`.
  TrackObservation move(Vec2 dir, double step) const {
    TrackObservation o;
    o.direction.type = MotionType::kTranslational;
    o.direction.direction = dir.normalized();
    o.distance.lower_m = step * 0.9;
    o.distance.upper_m = cfg_.vmax_mps * cfg_.window_s;
    o.distance.valid = true;
    o.has_phase = false;  // direction/annulus only for these unit tests
    return o;
  }

  PolarDrawConfig cfg_;
  Vec2 a1_, a2_;
  HmmTracker hmm_;
};

TEST_F(HmmTest, GridDimensions) {
  EXPECT_EQ(hmm_.cols(), 40);
  EXPECT_EQ(hmm_.rows(), 30);
  const Vec2 c = hmm_.block_center(0, 0);
  EXPECT_NEAR(c.x, 0.005, 1e-12);
  EXPECT_NEAR(c.y, 0.005, 1e-12);
}

TEST_F(HmmTest, EmptyObservationsEmptyTrajectory) {
  EXPECT_TRUE(hmm_.decode({}).empty());
}

TEST_F(HmmTest, StartsAtHint) {
  const Vec2 hint{0.22, 0.18};
  std::vector<TrackObservation> obs(3);  // idle windows
  const auto traj = hmm_.decode(obs, &hint);
  ASSERT_EQ(traj.size(), 4u);
  EXPECT_NEAR(traj[0].x, 0.22, cfg_.block_m);
  EXPECT_NEAR(traj[0].y, 0.18, cfg_.block_m);
}

TEST_F(HmmTest, IdleObservationsHoldPosition) {
  const Vec2 hint{0.2, 0.15};
  std::vector<TrackObservation> obs(10);  // no direction, no phase
  const auto traj = hmm_.decode(obs, &hint);
  for (const auto& p : traj) {
    EXPECT_NEAR(p.x, 0.2, 0.03);
    EXPECT_NEAR(p.y, 0.15, 0.03);
  }
}

TEST_F(HmmTest, FollowsCommandedDirection) {
  const Vec2 hint{0.1, 0.15};
  std::vector<TrackObservation> obs(20, move({1.0, 0.0}, 0.005));
  const auto traj = hmm_.decode(obs, &hint);
  ASSERT_EQ(traj.size(), 21u);
  // Net displacement to the right by roughly 20 * 5 mm.
  EXPECT_GT(traj.back().x - traj.front().x, 0.07);
  EXPECT_NEAR(traj.back().y, traj.front().y, 0.03);
}

TEST_F(HmmTest, AnnulusLowerBoundForcesMovement) {
  const Vec2 hint{0.2, 0.15};
  // No direction estimate, but the phase says the pen moved ~6 mm/window.
  TrackObservation o;
  o.distance.lower_m = 0.006;
  o.distance.upper_m = 0.01;
  o.distance.valid = true;
  o.has_phase = false;
  std::vector<TrackObservation> obs(10, o);
  const auto traj = hmm_.decode(obs, &hint);
  double path_len = 0.0;
  for (std::size_t i = 1; i < traj.size(); ++i) {
    path_len += traj[i].dist(traj[i - 1]);
  }
  EXPECT_GT(path_len, 0.04);
}

TEST_F(HmmTest, SpeedLimitRespected) {
  const Vec2 hint{0.2, 0.15};
  std::vector<TrackObservation> obs(15, move({0.0, 1.0}, 0.008));
  const auto traj = hmm_.decode(obs, &hint);
  const double max_step = cfg_.vmax_mps * cfg_.window_s + cfg_.block_m;
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_LE(traj[i].dist(traj[i - 1]), max_step + 1e-9);
  }
}

TEST_F(HmmTest, StaysOnBoard) {
  const Vec2 hint{0.38, 0.28};
  std::vector<TrackObservation> obs(40, move({1.0, 1.0}, 0.008));
  const auto traj = hmm_.decode(obs, &hint);
  for (const auto& p : traj) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, cfg_.board_width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, cfg_.board_height_m);
  }
}

TEST_F(HmmTest, HyperbolaTermAnchorsLaterally) {
  // Observations whose inter-antenna phase difference matches a point to
  // the right of the start: the decoded path should drift toward it.
  DistanceEstimator dist(cfg_);
  const Vec2 target{0.28, 0.15};
  const double dtheta_target = dist.expected_dtheta21(target, a1_, a2_, 0.12);

  PolarDrawConfig strong = cfg_;
  strong.hyperbola_sharpness = 40.0;
  HmmTracker hmm(strong, a1_, a2_, 0.12);

  TrackObservation o;
  o.distance.lower_m = 0.0;
  o.distance.upper_m = 0.01;
  o.distance.valid = true;
  o.distance.dtheta21 = dtheta_target;
  o.has_phase = true;
  std::vector<TrackObservation> obs(60, o);

  const Vec2 hint{0.12, 0.15};
  const auto traj = hmm.decode(obs, &hint);
  // The hyperbola field pulls along x; the end should be much closer to
  // the target's expected phase than the start was.
  const double end_err = angle_dist(
      dist.expected_dtheta21(traj.back(), a1_, a2_, 0.12), dtheta_target);
  const double start_err = angle_dist(
      dist.expected_dtheta21(hint, a1_, a2_, 0.12), dtheta_target);
  EXPECT_LT(end_err, start_err * 0.5);
}

TEST_F(HmmTest, InitialLocationOnMatchingHyperbola) {
  DistanceEstimator dist(cfg_);
  const Vec2 truth{0.25, 0.12};
  const double dtheta = dist.expected_dtheta21(truth, a1_, a2_, 0.12);
  const Vec2 start = hmm_.initial_location(dtheta);
  const double err =
      angle_dist(dist.expected_dtheta21(start, a1_, a2_, 0.12), dtheta);
  EXPECT_LT(err, 0.2);
}

TEST(RotateTrajectory, RotatesAboutCentroid) {
  const std::vector<Vec2> traj{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  const auto rotated = HmmTracker::rotate_trajectory(traj, kPi / 2.0);
  ASSERT_EQ(rotated.size(), 3u);
  // Centroid (1, 0) is fixed; endpoints rotate -90 degrees around it.
  EXPECT_NEAR(rotated[1].x, 1.0, 1e-9);
  EXPECT_NEAR(rotated[1].y, 0.0, 1e-9);
  EXPECT_NEAR(rotated[0].x, 1.0, 1e-9);
  EXPECT_NEAR(rotated[0].y, 1.0, 1e-9);
}

TEST(RotateTrajectory, ZeroAngleIdentity) {
  const std::vector<Vec2> traj{{0.3, 0.4}, {0.5, 0.1}};
  const auto r = HmmTracker::rotate_trajectory(traj, 0.0);
  EXPECT_NEAR(r[0].x, 0.3, 1e-12);
  EXPECT_NEAR(r[1].y, 0.1, 1e-12);
}

TEST_F(HmmTest, PhaselessLeadingWindowsBackfilledFromFirstPhaseSeed) {
  // No hint and the first 3 windows drop phase. The seed comes from the
  // hyperbola field of the *first phase* window, which describes the pen
  // at that window -- so the phaseless prefix must be backfilled with the
  // seed rather than decoded away from it (the old behavior let the chain
  // drift off the measured hyperbola before its anchor even applied).
  const Vec2 target{0.12, 0.1};
  const int tc = static_cast<int>(target.x / cfg_.block_m);
  const int tr = static_cast<int>(target.y / cfg_.block_m);
  const double dtheta = hmm_.field().phase_at(tc, tr);

  std::vector<TrackObservation> obs;
  for (int i = 0; i < 3; ++i) obs.push_back(move({1.0, 0.0}, 0.006));
  for (int i = 0; i < 5; ++i) {
    TrackObservation o;  // idle but phase-anchored
    o.distance.upper_m = cfg_.vmax_mps * cfg_.window_s;
    o.distance.valid = true;
    o.has_phase = true;
    o.distance.dtheta21 = dtheta;
    obs.push_back(o);
  }

  const auto traj = hmm_.decode(obs);
  ASSERT_EQ(traj.size(), 9u);
  const Vec2 seed = hmm_.initial_location(dtheta);
  // Root + 3 backfilled prefix positions, all pinned to the seed block.
  for (std::size_t i = 0; i <= 3; ++i) {
    EXPECT_NEAR(traj[i].x, seed.x, cfg_.block_m) << "position " << i;
    EXPECT_NEAR(traj[i].y, seed.y, cfg_.block_m) << "position " << i;
    EXPECT_EQ(traj[i].x, traj[0].x) << "position " << i;
    EXPECT_EQ(traj[i].y, traj[0].y) << "position " << i;
  }
}

TEST(GreedyAblation, ProducesSameLengthTrajectory) {
  PolarDrawConfig cfg = small_config();
  cfg.use_viterbi = false;
  HmmTracker hmm(cfg, {0.1, 0.35}, {0.3, 0.35}, 0.12);
  TrackObservation o;
  o.direction.type = MotionType::kTranslational;
  o.direction.direction = {1.0, 0.0};
  o.distance.lower_m = 0.004;
  o.distance.upper_m = 0.01;
  o.distance.valid = true;
  std::vector<TrackObservation> obs(12, o);
  const Vec2 hint{0.15, 0.2};
  EXPECT_EQ(hmm.decode(obs, &hint).size(), 13u);
}

}  // namespace
}  // namespace polardraw::core
