// Tests for the precomputed phase-difference field and the generation
// scoreboard backing the Viterbi decode hot path.
#include "core/phase_field.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.h"
#include "core/distance_estimator.h"
#include "core/scoreboard.h"

namespace polardraw::core {
namespace {

PolarDrawConfig small_config() {
  PolarDrawConfig cfg;
  cfg.board_width_m = 0.4;
  cfg.board_height_m = 0.3;
  cfg.block_m = 0.01;
  return cfg;
}

class PhaseFieldTest : public ::testing::Test {
 protected:
  PhaseFieldTest()
      : cfg_(small_config()),
        a1_{0.1, 0.35},
        a2_{0.3, 0.35},
        z_(0.12),
        field_(cfg_, a1_, a2_, z_) {}

  PolarDrawConfig cfg_;
  Vec2 a1_, a2_;
  double z_;
  PhaseField field_;
};

TEST_F(PhaseFieldTest, GridMatchesHmmDiscretization) {
  EXPECT_EQ(field_.cols(), 40);
  EXPECT_EQ(field_.rows(), 30);
  EXPECT_EQ(field_.cells(), 1200u);
  const Vec2 c = field_.block_center(0, 0);
  EXPECT_NEAR(c.x, 0.005, 1e-12);
  EXPECT_NEAR(c.y, 0.005, 1e-12);
}

TEST_F(PhaseFieldTest, CachedValuesBitIdenticalToDirectEvaluation) {
  const DistanceEstimator dist(cfg_);
  for (int r = 0; r < field_.rows(); ++r) {
    for (int c = 0; c < field_.cols(); ++c) {
      const Vec2 p = field_.block_center(c, r);
      // Exact equality: the cache must be a drop-in for the inline call.
      EXPECT_EQ(field_.phase_at(c, r),
                dist.expected_dtheta21(p, a1_, a2_, z_))
          << "cell (" << c << ", " << r << ")";
    }
  }
}

TEST_F(PhaseFieldTest, JacobianMatchesFiniteDifference) {
  // Differentiate the unwrapped field scale * (l2 - l1) numerically.
  const double scale = 4.0 * kPi / cfg_.wavelength_m;
  const auto unwrapped = [&](const Vec2& p) {
    const double l1 = std::sqrt((p - a1_).norm_sq() + z_ * z_);
    const double l2 = std::sqrt((p - a2_).norm_sq() + z_ * z_);
    return scale * (l2 - l1);
  };
  const double eps = 1e-6;
  for (int r = 2; r < field_.rows(); r += 7) {
    for (int c = 3; c < field_.cols(); c += 9) {
      const Vec2 p = field_.block_center(c, r);
      const Vec2 jac = field_.jacobian_at(c, r);
      const double nx =
          (unwrapped({p.x + eps, p.y}) - unwrapped({p.x - eps, p.y})) /
          (2.0 * eps);
      const double ny =
          (unwrapped({p.x, p.y + eps}) - unwrapped({p.x, p.y - eps})) /
          (2.0 * eps);
      EXPECT_NEAR(jac.x, nx, 1e-4 * std::max(1.0, std::fabs(nx)));
      EXPECT_NEAR(jac.y, ny, 1e-4 * std::max(1.0, std::fabs(ny)));
    }
  }
}

TEST_F(PhaseFieldTest, InterpolationExactAtCenters) {
  for (int r = 0; r < field_.rows(); r += 5) {
    for (int c = 0; c < field_.cols(); c += 5) {
      const Vec2 p = field_.block_center(c, r);
      EXPECT_NEAR(angle_dist(field_.phase(p), field_.phase_at(c, r)), 0.0,
                  1e-9);
    }
  }
}

TEST_F(PhaseFieldTest, InterpolationTracksDirectEvaluationOffGrid) {
  const DistanceEstimator dist(cfg_);
  // Off-center points inside the grid: bilinear interpolation of the
  // smooth path-difference field stays within a small fraction of the
  // per-cell phase change of the true value.
  for (double x = 0.031; x < 0.37; x += 0.047) {
    for (double y = 0.023; y < 0.27; y += 0.039) {
      const Vec2 p{x, y};
      const double direct = dist.expected_dtheta21(p, a1_, a2_, z_);
      EXPECT_LT(angle_dist(field_.phase(p), direct), 0.02)
          << "at (" << x << ", " << y << ")";
    }
  }
}

TEST_F(PhaseFieldTest, InterpolationClampsOutsideBoard) {
  // Outside points clamp to the edge cells instead of extrapolating.
  const double inside = field_.phase(field_.block_center(0, 0));
  EXPECT_NEAR(angle_dist(field_.phase({-0.5, -0.5}), inside), 0.0, 1e-9);
}

TEST_F(PhaseFieldTest, JacobianInterpolationMatchesCellValues) {
  const Vec2 p = field_.block_center(7, 9);
  const Vec2 at_cell = field_.jacobian_at(7, 9);
  const Vec2 interp = field_.jacobian(p);
  EXPECT_NEAR(interp.x, at_cell.x, 1e-9);
  EXPECT_NEAR(interp.y, at_cell.y, 1e-9);
}

TEST(PhaseFieldDegenerate, SingleCellGrid) {
  PolarDrawConfig cfg;
  cfg.board_width_m = 0.004;
  cfg.board_height_m = 0.004;
  cfg.block_m = 0.01;  // larger than the board: 1x1 grid
  const PhaseField field(cfg, {0.0, 0.1}, {0.1, 0.1}, 0.1);
  EXPECT_EQ(field.cols(), 1);
  EXPECT_EQ(field.rows(), 1);
  EXPECT_EQ(field.phase({0.002, 0.002}), field.phase_at(0, 0));
}

// ---------------------------------------------------------------------------
// GenerationScoreboard
// ---------------------------------------------------------------------------
TEST(Scoreboard, PutGetContains) {
  GenerationScoreboard<std::int32_t> board(8);
  EXPECT_EQ(board.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FALSE(board.contains(i));
  board.put(3, 42);
  EXPECT_TRUE(board.contains(3));
  EXPECT_EQ(board.get(3), 42);
  EXPECT_FALSE(board.contains(2));
  board.put(3, 7);
  EXPECT_EQ(board.get(3), 7);
}

TEST(Scoreboard, ClearInvalidatesWithoutTouchingStorage) {
  GenerationScoreboard<std::int32_t> board(64);
  for (std::size_t i = 0; i < 64; ++i) board.put(i, static_cast<int>(i));
  board.clear();
  for (std::size_t i = 0; i < 64; ++i) EXPECT_FALSE(board.contains(i));
  // Re-population after clear behaves like a fresh board.
  board.put(10, 5);
  EXPECT_TRUE(board.contains(10));
  EXPECT_EQ(board.get(10), 5);
  EXPECT_FALSE(board.contains(11));
}

TEST(Scoreboard, ManyGenerationsStayIsolated) {
  GenerationScoreboard<std::int32_t> board(4);
  for (int gen = 0; gen < 10000; ++gen) {
    const std::size_t cell = static_cast<std::size_t>(gen) % 4;
    board.put(cell, gen);
    EXPECT_TRUE(board.contains(cell));
    EXPECT_EQ(board.get(cell), gen);
    board.clear();
    EXPECT_FALSE(board.contains(cell));
  }
}

TEST(Scoreboard, ResizeResetsEverything) {
  GenerationScoreboard<double> board(2);
  board.put(0, 1.5);
  board.resize(16);
  EXPECT_EQ(board.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_FALSE(board.contains(i));
  board.put(15, 2.5);
  EXPECT_DOUBLE_EQ(board.get(15), 2.5);
}

}  // namespace
}  // namespace polardraw::core
