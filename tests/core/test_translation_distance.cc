#include <gtest/gtest.h>

#include "common/angles.h"
#include "core/distance_estimator.h"
#include "core/translation_tracker.h"

namespace polardraw::core {
namespace {

TEST(TranslationDecode, Table4Rows) {
  using B = BoardDirection;
  // Antennas above the board: approaching them (moving up) shortens both
  // links, so both phases fall.
  EXPECT_EQ(TranslationTracker::decode(-0.2, -0.2), B::kUp);
  EXPECT_EQ(TranslationTracker::decode(0.2, 0.2), B::kDown);
  // Moving left: closer to antenna 1, farther from antenna 2.
  EXPECT_EQ(TranslationTracker::decode(-0.2, 0.2), B::kLeft);
  EXPECT_EQ(TranslationTracker::decode(0.2, -0.2), B::kRight);
}

TEST(TranslationDecode, DominantComponentWins) {
  using B = BoardDirection;
  // Mostly common-mode: vertical.
  EXPECT_EQ(TranslationTracker::decode(-0.3, -0.1), B::kUp);
  // Mostly differential: horizontal.
  EXPECT_EQ(TranslationTracker::decode(-0.3, 0.25), B::kLeft);
}

TEST(TranslationDecode, StaticPenIsNone) {
  EXPECT_EQ(TranslationTracker::decode(0.0, 0.0), BoardDirection::kNone);
  EXPECT_EQ(TranslationTracker::decode(5e-5, -5e-5), BoardDirection::kNone);
}

TEST(TranslationTracker, EstimateCarriesUnitDirection) {
  PolarDrawConfig cfg;
  TranslationTracker tracker(cfg);
  const auto est = tracker.step(-0.2, -0.2);
  EXPECT_EQ(est.type, MotionType::kTranslational);
  EXPECT_EQ(est.coarse, BoardDirection::kUp);
  EXPECT_NEAR(est.direction.y, 1.0, 1e-12);
  const auto idle = tracker.step(0.0, 0.0);
  EXPECT_EQ(idle.type, MotionType::kIdle);
}

TEST(DirectionVectors, AllFourAxes) {
  EXPECT_EQ(to_vector(BoardDirection::kUp), Vec2(0, 1));
  EXPECT_EQ(to_vector(BoardDirection::kDown), Vec2(0, -1));
  EXPECT_EQ(to_vector(BoardDirection::kLeft), Vec2(-1, 0));
  EXPECT_EQ(to_vector(BoardDirection::kRight), Vec2(1, 0));
  EXPECT_EQ(to_vector(BoardDirection::kNone), Vec2());
}

class DistanceTest : public ::testing::Test {
 protected:
  DistanceTest() : est_(cfg_) {}
  PolarDrawConfig cfg_;
  DistanceEstimator est_{cfg_};
};

TEST_F(DistanceTest, LinkDeltaEquation5) {
  // Delta-l = Delta-theta * lambda / (4*pi): a full 2*pi of phase is half
  // a wavelength of distance.
  EXPECT_NEAR(est_.link_delta(kTwoPi), cfg_.wavelength_m / 2.0, 1e-12);
  EXPECT_NEAR(est_.link_delta(-kPi), -cfg_.wavelength_m / 4.0, 1e-12);
  EXPECT_EQ(est_.link_delta(0.0), 0.0);
}

TEST_F(DistanceTest, BoundsFromBothAntennas) {
  const auto e = est_.estimate(0.1, -0.25, 5.0, 7.0);
  EXPECT_NEAR(e.lower_m, est_.link_delta(0.25), 1e-12);
  EXPECT_NEAR(e.upper_m, cfg_.vmax_mps * cfg_.window_s, 1e-12);
  EXPECT_TRUE(e.valid);
  EXPECT_NEAR(e.dtheta21, 2.0, 1e-12);
}

TEST_F(DistanceTest, InconsistentBoundsFlagged) {
  // A phase delta implying more movement than vmax allows is invalid
  // (residual spurious reading).
  const auto e = est_.estimate(3.0, 0.0, 0.0, 0.0);
  EXPECT_GT(e.lower_m, e.upper_m);
  EXPECT_FALSE(e.valid);
}

TEST_F(DistanceTest, ExpectedDthetaOnPerpendicularBisector) {
  // Equidistant from both antennas: l2 - l1 = 0 -> expected difference 0.
  const Vec2 a1{0.2, 1.0}, a2{0.8, 1.0};
  const double d = est_.expected_dtheta21(Vec2{0.5, 0.3}, a1, a2, 0.1);
  EXPECT_NEAR(d, 0.0, 1e-9);
}

TEST_F(DistanceTest, ExpectedDthetaMatchesGeometry) {
  const Vec2 a1{0.2, 1.0}, a2{0.8, 1.0};
  const Vec2 p{0.3, 0.2};
  const double z = 0.12;
  const double l1 = std::sqrt((p - a1).norm_sq() + z * z);
  const double l2 = std::sqrt((p - a2).norm_sq() + z * z);
  const double expect = wrap_2pi(4.0 * kPi * (l2 - l1) / cfg_.wavelength_m);
  EXPECT_NEAR(est_.expected_dtheta21(p, a1, a2, z), expect, 1e-12);
}

TEST_F(DistanceTest, HyperbolaFieldVariesAcrossBoard) {
  // The inter-antenna phase difference field must change laterally (that
  // gradient is what anchors the HMM).
  const Vec2 a1{0.2, 1.0}, a2{0.8, 1.0};
  const double left = est_.expected_dtheta21(Vec2{0.3, 0.25}, a1, a2, 0.1);
  const double right = est_.expected_dtheta21(Vec2{0.7, 0.25}, a1, a2, 0.1);
  EXPECT_GT(angle_dist(left, right), 0.5);
}

}  // namespace
}  // namespace polardraw::core
