// Tests for tag-to-track association (core/association.h): event
// sequencing, generation churn, the incremental-vs-batch pipeline replica,
// and interleaving invariance.
#include "core/association.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/angles.h"
#include "core/polardraw.h"

namespace polardraw::core {
namespace {

rfid::TagReport report(std::uint32_t epc, double t, int ant, double rss_dbm,
                       double phase_rad, int channel = 0) {
  rfid::TagReport r;
  r.epc = epc;
  r.timestamp_s = t;
  r.antenna_id = ant;
  r.rss_dbm = rss_dbm;
  r.phase_rad = wrap_2pi(phase_rad);
  r.channel = channel;
  return r;
}

/// A well-behaved single-tag stream: both antennas every window, slow
/// phase slew and RSS drift, `n_windows` windows at 4 reads per antenna.
rfid::TagReportStream smooth_stream(std::uint32_t epc, double t0,
                                    int n_windows) {
  rfid::TagReportStream out;
  for (int w = 0; w < n_windows; ++w) {
    for (int k = 0; k < 4; ++k) {
      const double t = t0 + w * 0.05 + k * 0.012;
      out.push_back(report(epc, t, 0, -40.0 - 0.2 * w, 1.0 + 0.05 * w));
      out.push_back(report(epc, t + 0.001, 1, -50.0 + 0.1 * w,
                           2.0 - 0.04 * w));
    }
  }
  return out;
}

std::vector<PenEvent> events_of_type(const std::vector<PenEvent>& events,
                                     PenEventType type) {
  std::vector<PenEvent> out;
  for (const auto& e : events) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

TEST(Association, SingleTagLifecycle) {
  PolarDrawConfig cfg;
  TagTrackAssociator assoc(cfg);
  auto events = assoc.push(smooth_stream(0xA1, 0.0, 10));
  const auto tail = assoc.flush();
  events.insert(events.end(), tail.begin(), tail.end());

  const auto opens = events_of_type(events, PenEventType::kOpen);
  const auto obs = events_of_type(events, PenEventType::kObservation);
  const auto closes = events_of_type(events, PenEventType::kClose);
  ASSERT_EQ(opens.size(), 1u);
  ASSERT_EQ(closes.size(), 1u);
  EXPECT_EQ(opens[0].session_id, TagTrackAssociator::make_session_id(0xA1, 0));
  EXPECT_EQ(opens[0].epc, 0xA1u);
  // 10 windows of reports: the last window is finalized by flush, so all
  // 10 come through.
  EXPECT_EQ(obs.size(), 10u);
  // The open precedes every observation; the close is last.
  EXPECT_EQ(events.front().type, PenEventType::kOpen);
  EXPECT_EQ(events.back().type, PenEventType::kClose);
  // Observation times are the window centers, in order.
  for (std::size_t i = 1; i < obs.size(); ++i) {
    EXPECT_GT(obs[i].t_s, obs[i - 1].t_s);
  }
  EXPECT_EQ(assoc.open_tracks(), 0u);
}

TEST(Association, IdleGapClosesAndReopensNewGeneration) {
  PolarDrawConfig cfg;
  AssociatorConfig acfg;
  acfg.idle_close_s = 0.5;
  TagTrackAssociator assoc(cfg, acfg);
  auto events = assoc.push(smooth_stream(0xA1, 0.0, 4));
  // 2 s of silence, then the pen returns.
  auto later = assoc.push(smooth_stream(0xA1, 2.2, 4));
  events.insert(events.end(), later.begin(), later.end());
  const auto tail = assoc.flush();
  events.insert(events.end(), tail.begin(), tail.end());

  const auto opens = events_of_type(events, PenEventType::kOpen);
  const auto closes = events_of_type(events, PenEventType::kClose);
  ASSERT_EQ(opens.size(), 2u);
  ASSERT_EQ(closes.size(), 2u);
  EXPECT_EQ(opens[0].session_id, TagTrackAssociator::make_session_id(0xA1, 0));
  EXPECT_EQ(opens[1].session_id, TagTrackAssociator::make_session_id(0xA1, 1));
  // The stale close fires when the returning report arrives, before the
  // new open.
  EXPECT_EQ(closes[0].session_id, opens[0].session_id);
}

TEST(Association, StaleTrackClosedByOtherTagsTime) {
  // Tag B stops reporting while tag A keeps the stream alive: B's close
  // must fire off A's advancing timestamps, not wait for flush.
  PolarDrawConfig cfg;
  AssociatorConfig acfg;
  acfg.idle_close_s = 0.4;
  TagTrackAssociator assoc(cfg, acfg);
  std::vector<PenEvent> events;
  for (double t = 0.0; t < 2.0; t += 0.05) {
    auto ev = assoc.push(report(0xAA, t, 0, -40.0, 1.0));
    events.insert(events.end(), ev.begin(), ev.end());
    if (t < 0.5) {
      auto evb = assoc.push(report(0xBB, t + 0.01, 1, -45.0, 2.0));
      events.insert(events.end(), evb.begin(), evb.end());
    }
  }
  EXPECT_EQ(assoc.open_tracks(), 1u);  // only A remains
  bool b_closed = false;
  for (const auto& e : events) {
    if (e.type == PenEventType::kClose && e.epc == 0xBB) b_closed = true;
  }
  EXPECT_TRUE(b_closed);
}

TEST(Association, InterleavingInvariant) {
  // The associator's per-EPC event streams must not depend on how other
  // tags' reports interleave: demultiplexing an interleaved two-tag
  // stream yields exactly the events of each tag pushed alone.
  PolarDrawConfig cfg;
  const auto a = smooth_stream(0xA1, 0.0, 8);
  const auto b = smooth_stream(0xB2, 0.013, 8);
  // Time-ordered merge.
  rfid::TagReportStream merged = a;
  merged.insert(merged.end(), b.begin(), b.end());
  std::stable_sort(merged.begin(), merged.end(),
                   [](const rfid::TagReport& x, const rfid::TagReport& y) {
                     return x.timestamp_s < y.timestamp_s;
                   });

  const auto run = [&cfg](const rfid::TagReportStream& s) {
    TagTrackAssociator assoc(cfg);
    auto ev = assoc.push(s);
    const auto tail = assoc.flush();
    ev.insert(ev.end(), tail.begin(), tail.end());
    return ev;
  };
  const auto interleaved = run(merged);
  const auto solo_a = run(a);
  const auto solo_b = run(b);

  std::map<std::uint32_t, std::vector<PenEvent>> by_epc;
  for (const auto& e : interleaved) by_epc[e.epc].push_back(e);
  const auto expect_same = [](const std::vector<PenEvent>& got,
                              const std::vector<PenEvent>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(static_cast<int>(got[i].type),
                static_cast<int>(want[i].type));
      ASSERT_EQ(got[i].session_id, want[i].session_id);
      ASSERT_EQ(got[i].t_s, want[i].t_s);
      ASSERT_EQ(got[i].obs.has_phase, want[i].obs.has_phase);
      ASSERT_EQ(got[i].obs.distance.dl1_m, want[i].obs.distance.dl1_m);
      ASSERT_EQ(got[i].obs.distance.dl2_m, want[i].obs.distance.dl2_m);
      ASSERT_EQ(got[i].obs.direction.direction.x,
                want[i].obs.direction.direction.x);
      ASSERT_EQ(got[i].obs.direction.direction.y,
                want[i].obs.direction.direction.y);
      ASSERT_EQ(got[i].azimuth_delta_rad, want[i].azimuth_delta_rad);
    }
  };
  expect_same(by_epc[0xA1], solo_a);
  expect_same(by_epc[0xB2], solo_b);
}

TEST(Association, MatchesBatchPipelineWindowForWindow) {
  // The incremental replica must agree with the batch pipeline
  // (preprocess + PolarDraw::track_windows) on every window's distance
  // estimate and motion class for the same single-tag stream. Directions
  // differ only by smoothing edges, so compare the motion type and the
  // phase-derived quantities, which smoothing never touches.
  PolarDrawConfig cfg;
  // A stream with RSS swings (rotation windows), phase slews
  // (translation windows) and a dropped window (gap).
  rfid::TagReportStream stream;
  for (int w = 0; w < 24; ++w) {
    if (w == 11) continue;  // read gap
    const double swing = w % 5 == 0 ? 2.5 : 0.0;
    for (int k = 0; k < 3; ++k) {
      const double t = w * 0.05 + k * 0.015;
      stream.push_back(report(0xC4, t, 0, -40.0 - 0.3 * w + swing,
                              1.0 + 0.06 * w));
      stream.push_back(report(0xC4, t + 0.002, 1, -48.0 + 0.2 * w - swing,
                              2.0 - 0.05 * w));
    }
  }

  const auto windows = preprocess(stream, cfg);
  PolarDraw batch(cfg, Vec2{0.22, 1.25}, Vec2{0.78, 1.25}, 0.12);
  const auto batch_res = batch.track_windows(windows);

  TagTrackAssociator assoc(cfg);
  auto events = assoc.push(stream);
  const auto tail = assoc.flush();
  events.insert(events.end(), tail.begin(), tail.end());
  const auto obs = events_of_type(events, PenEventType::kObservation);

  ASSERT_EQ(windows.size(), obs.size());
  ASSERT_EQ(batch_res.diagnostics.size(), obs.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const auto& d = batch_res.diagnostics[i];
    ASSERT_EQ(obs[i].t_s, d.t_s) << "window " << i;
    ASSERT_EQ(static_cast<int>(obs[i].obs.direction.type),
              static_cast<int>(d.motion))
        << "window " << i;
    ASSERT_EQ(obs[i].obs.distance.valid, d.distance.valid) << "window " << i;
    ASSERT_EQ(obs[i].obs.distance.dl1_m, d.distance.dl1_m) << "window " << i;
    ASSERT_EQ(obs[i].obs.distance.dl2_m, d.distance.dl2_m) << "window " << i;
    ASSERT_EQ(obs[i].obs.distance.dtheta21, d.distance.dtheta21)
        << "window " << i;
  }
  // The Eq. 10 correction deltas must sum to the batch accumulator.
  double corr = 0.0;
  for (const auto& e : events_of_type(events,
                                      PenEventType::kAzimuthCorrection)) {
    corr += e.azimuth_delta_rad;
  }
  EXPECT_NEAR(corr, batch_res.azimuth_correction_rad, 1e-12);
}

TEST(Association, CalibratedHopKeepsPhaseDeltasUsable) {
  // Across a channel hop, an uncalibrated associator loses the phase
  // delta (dtheta fenced -> no distance estimate in the post-hop window)
  // while a channel-calibrated one keeps it.
  PolarDrawConfig cfg;
  const double off5 = 0.9, off13 = 2.6;
  rfid::TagReportStream stream;
  for (int w = 0; w < 8; ++w) {
    const bool hopped = w >= 4;
    const int ch = hopped ? 13 : 5;
    const double off = hopped ? off13 : off5;
    for (int k = 0; k < 3; ++k) {
      const double t = w * 0.05 + k * 0.015;
      stream.push_back(report(0xE5, t, 0, -40.0, 1.0 + 0.05 * w + off, ch));
      stream.push_back(
          report(0xE5, t + 0.002, 1, -48.0, 2.0 - 0.04 * w + off, ch));
    }
  }
  PhaseCalibration cal;
  cal.channel_offsets_rad.assign(20, 0.0);
  cal.channel_offsets_rad[5] = off5;
  cal.channel_offsets_rad[13] = off13;

  const auto run = [&](const PhaseCalibration* c) {
    TagTrackAssociator assoc(cfg, {}, c);
    auto ev = assoc.push(stream);
    const auto tail = assoc.flush();
    ev.insert(ev.end(), tail.begin(), tail.end());
    return events_of_type(ev, PenEventType::kObservation);
  };
  const auto uncal = run(nullptr);
  const auto calib = run(&cal);
  ASSERT_EQ(uncal.size(), 8u);
  ASSERT_EQ(calib.size(), 8u);
  // Window 4 is the first post-hop window.
  EXPECT_FALSE(uncal[4].obs.has_phase);
  EXPECT_TRUE(calib[4].obs.has_phase);
}

}  // namespace
}  // namespace polardraw::core
