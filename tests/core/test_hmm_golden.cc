// Golden-trajectory determinism tests for the Viterbi decode hot path.
//
// Each case runs HmmTracker::decode on a seeded synthetic observation
// stream (core/decode_testbed.h) and compares the decoded block sequence
// against a recorded golden sequence. The goldens were captured from the
// pre-optimization decoder (PR 1 state, unordered_map scoreboard, inline
// expected_dtheta21); the optimized decoder must stay bit-identical --
// same accepted candidates, same tie-breaks, same pruning survivors.
//
// If a deliberate semantic change ever invalidates a golden, the failure
// message prints the new sequence in paste-able form.
#include "core/hmm_tracker.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/decode_testbed.h"

namespace polardraw::core {
namespace {

/// Maps a decoded block-center trajectory back to packed cell indices.
std::vector<int> to_cells(const std::vector<Vec2>& traj,
                          const PolarDrawConfig& cfg) {
  const int cols =
      std::max(1, static_cast<int>(cfg.board_width_m / cfg.block_m));
  std::vector<int> cells;
  cells.reserve(traj.size());
  for (const Vec2& p : traj) {
    const int c = static_cast<int>(p.x / cfg.block_m);
    const int r = static_cast<int>(p.y / cfg.block_m);
    cells.push_back(r * cols + c);
  }
  return cells;
}

std::string paste_form(const std::vector<int>& cells) {
  std::ostringstream os;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os << cells[i] << (i + 1 < cells.size() ? "," : "");
    if (i % 16 == 15) os << "\n";
  }
  return os.str();
}

void expect_golden(const PolarDrawConfig& cfg, int n_windows,
                   std::uint64_t seed, bool use_hint,
                   const std::vector<int>& golden) {
  const auto tb = make_decode_testbed(cfg, n_windows, seed);
  const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  const auto traj = hmm.decode(tb.obs, use_hint ? &tb.start : nullptr);
  const auto cells = to_cells(traj, cfg);
  ASSERT_EQ(cells.size(), static_cast<std::size_t>(n_windows) + 1);
  EXPECT_EQ(cells, golden) << "decoded sequence changed; new sequence:\n"
                           << paste_form(cells);
}

TEST(HmmGolden, DefaultConfigSeed1) {
  const std::vector<int> golden = {
      9931,  9682,  9433,  9184,  9185,  8937,  8439,  8189,  8189,  7939,
      7439,  7439,  6940,  6441,  5942,  5694,  5445,  5447,  5199,  4950,
      4702,  4703,  4204,  3955,  3205,  2706,  2957,  3209,  3211,  3712,
      3963,  4464,  4965,  4967,  4968,  5220,  5472,  5973,  6473,  6973,
      6722,  7223,  7474,  7974,  8474,  8473,  8973,  9224,  9474,  9474,
      9973,  10222, 10471, 10720, 10968, 10967, 10966, 10965, 10713, 10711,
      10210, 9959,  9958,  9457,  9707,  9206,  8955,  8703,  8452,  8452,
      7952,  7701,  7450,  7198,  6946,  6695,  6444,  6192,  6190,  6189,
      6187,  6186,  5684,  5183,  4932,  4431,  3931,  3681,  3431,  2932,
      2433,  2183,  2433,  2683,  3182,  3681,  4180,  4680,  5179,  5678,
      5677};
  expect_golden(PolarDrawConfig{}, 100, 1, true, golden);
}

TEST(HmmGolden, DefaultConfigSeed2NoHint) {
  const std::vector<int> golden = {
      20364, 20864, 21363, 21612, 21862, 22111, 22611, 22360, 22860, 23110,
      23609, 24109, 24359, 24861, 24859, 25360, 25610, 26110, 26609, 26859,
      27359, 27107, 27358, 27359, 27357, 27358, 27609, 27860, 28360, 28610,
      28110, 27609, 27109, 26610, 26111, 25861, 25362, 25112, 24864, 24364,
      24113, 23863, 23363, 23112, 22612, 21862, 21363, 20863, 20864, 20365,
      20115, 19616, 19366, 18868, 18369, 18119, 17619, 17369, 17119, 16869,
      16619, 16370, 15870, 15620, 15369, 15119, 15368, 15617, 15866, 16115,
      16365, 16614, 16863, 16862, 16860, 16608, 16609, 16610, 16611, 16612,
      16364, 16366, 16365, 16616, 16618, 16616, 16618, 16619, 16869, 16871,
      17122, 17372, 17373, 17374, 17125, 16875, 16625, 16375, 16375, 16126,
      16128};
  expect_golden(PolarDrawConfig{}, 100, 2, false, golden);
}

TEST(HmmGolden, PaperLinearSharpnessSmallBoard) {
  PolarDrawConfig cfg;
  cfg.board_width_m = 0.5;
  cfg.board_height_m = 0.4;
  cfg.block_m = 0.005;
  cfg.beam_width = 200;
  cfg.hyperbola_sharpness = 1.0;
  const std::vector<int> golden = {
      4757, 4758, 4658, 4457, 4356, 4355, 4254, 4054, 3954, 3854, 3655, 3556,
      3357, 3257, 3157, 3056, 2855, 2654, 2453, 2352, 2151, 2051, 1950, 1849,
      1849, 1648, 1548, 1348, 1149, 1149, 950,  751,  751,  751,  751,  652,
      652,  553,  454,  355,  354,  255,  254,  54,   255,  355,  456,  657,
      858,  959,  1060, 1061, 1062, 1063, 1165, 1266, 1368, 1470, 1372, 1373,
      1374, 1375, 1374, 1276, 1275, 1177, 1179, 1380, 1481, 1581, 1781, 1980,
      2179, 2278, 2377, 2475, 2474, 2474, 2572, 2571, 2669};
  expect_golden(cfg, 80, 3, true, golden);
}

TEST(HmmGolden, GreedyAblationSeed4) {
  PolarDrawConfig cfg;
  cfg.use_viterbi = false;
  const std::vector<int> golden = {
      21793, 21291, 21040, 21038, 21036, 21036, 21037, 21036, 20787, 20785,
      20533, 20032, 19782, 19281, 19280, 19030, 18530, 18530, 18281, 18033,
      18034, 17536, 17535, 17286, 16788, 16790, 16541, 16292, 16044, 16045,
      16296, 16547, 17048, 17550, 17802, 17802, 18053, 18305, 18304, 18306,
      18558, 18810, 18811, 19063, 19314, 19565, 19816, 20068, 20069, 20068,
      19820, 19820, 19320, 18821, 18571, 18071, 17822, 17572, 17072, 16824,
      16575};
  expect_golden(cfg, 60, 4, true, golden);
}

TEST(HmmGolden, DecodeIsRepeatable) {
  // Two decodes of the same stream must agree exactly (no hidden state).
  const PolarDrawConfig cfg;
  const auto tb = make_decode_testbed(cfg, 50, 9);
  const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  const auto a = hmm.decode(tb.obs, &tb.start);
  const auto b = hmm.decode(tb.obs, &tb.start);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

}  // namespace
}  // namespace polardraw::core
