#include "core/rotation_tracker.h"

#include <gtest/gtest.h>

#include "common/angles.h"

namespace polardraw::core {
namespace {

PolarDrawConfig config() {
  PolarDrawConfig cfg;
  cfg.gamma_rad = deg2rad(15.0);
  cfg.alpha_e_rad = deg2rad(30.0);
  return cfg;
}

TEST(TrendClassification, Table3Rows) {
  RotationTracker tracker(config());
  // Sector 1, clockwise: both RSS rise, antenna 2 faster.
  auto d = tracker.classify_trend(1.0, 2.5);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sector, Sector::kSector1);
  EXPECT_EQ(d->sense, RotationSense::kClockwise);
  // Sector 1, counter-clockwise: both fall, antenna 2 faster.
  d = tracker.classify_trend(-1.0, -2.5);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sector, Sector::kSector1);
  EXPECT_EQ(d->sense, RotationSense::kCounterClockwise);
  // Sector 2, clockwise: antenna 1 falls, antenna 2 rises.
  d = tracker.classify_trend(-2.0, 2.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sector, Sector::kSector2);
  EXPECT_EQ(d->sense, RotationSense::kClockwise);
  // Sector 2, counter-clockwise.
  d = tracker.classify_trend(2.0, -2.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sector, Sector::kSector2);
  EXPECT_EQ(d->sense, RotationSense::kCounterClockwise);
  // Sector 3, clockwise: both fall, antenna 1 faster.
  d = tracker.classify_trend(-2.5, -1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sector, Sector::kSector3);
  EXPECT_EQ(d->sense, RotationSense::kClockwise);
  // Sector 3, counter-clockwise: both rise, antenna 1 faster.
  d = tracker.classify_trend(2.5, 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sector, Sector::kSector3);
  EXPECT_EQ(d->sense, RotationSense::kCounterClockwise);
}

TEST(TrendClassification, FlatTrendsUndecodable) {
  RotationTracker tracker(config());
  EXPECT_FALSE(tracker.classify_trend(0.0, 0.0).has_value());
}

TEST(InitialAzimuth, Equation2Values) {
  const auto cfg = config();
  RotationTracker tracker(cfg);
  const double g = cfg.gamma_rad;
  using S = Sector;
  using R = RotationSense;
  EXPECT_NEAR(tracker.initial_azimuth(S::kSector1, R::kClockwise), kPi - g, 1e-12);
  EXPECT_NEAR(tracker.initial_azimuth(S::kSector2, R::kClockwise),
              kPi / 2.0 + g, 1e-12);
  EXPECT_NEAR(tracker.initial_azimuth(S::kSector3, R::kClockwise),
              kPi / 2.0 - g, 1e-12);
  EXPECT_NEAR(tracker.initial_azimuth(S::kSector1, R::kCounterClockwise),
              kPi / 2.0 + g, 1e-12);
  EXPECT_NEAR(tracker.initial_azimuth(S::kSector2, R::kCounterClockwise),
              kPi / 2.0 - g, 1e-12);
  EXPECT_NEAR(tracker.initial_azimuth(S::kSector3, R::kCounterClockwise), g,
              1e-12);
}

TEST(SectorOf, Boundaries) {
  const auto cfg = config();
  RotationTracker tracker(cfg);
  EXPECT_EQ(tracker.sector_of(deg2rad(30.0)), Sector::kSector3);
  EXPECT_EQ(tracker.sector_of(deg2rad(90.0)), Sector::kSector2);
  EXPECT_EQ(tracker.sector_of(deg2rad(130.0)), Sector::kSector1);
}

TEST(SenseInSector, InvertsTableThree) {
  using S = Sector;
  using R = RotationSense;
  EXPECT_EQ(RotationTracker::sense_in_sector(S::kSector1, 1.0, 2.0),
            R::kClockwise);
  EXPECT_EQ(RotationTracker::sense_in_sector(S::kSector1, -1.0, -2.0),
            R::kCounterClockwise);
  EXPECT_EQ(RotationTracker::sense_in_sector(S::kSector2, -1.0, 1.0),
            R::kClockwise);
  EXPECT_EQ(RotationTracker::sense_in_sector(S::kSector2, 1.0, -1.0),
            R::kCounterClockwise);
  EXPECT_EQ(RotationTracker::sense_in_sector(S::kSector3, -2.0, -1.0),
            R::kClockwise);
  EXPECT_EQ(RotationTracker::sense_in_sector(S::kSector3, 2.0, 1.0),
            R::kCounterClockwise);
  // Impossible pattern in sector 1 signals a crossing.
  EXPECT_EQ(RotationTracker::sense_in_sector(S::kSector1, -1.0, 1.0),
            R::kNone);
}

TEST(MotionDirection, ClockwiseMovesRight) {
  for (double ar : {deg2rad(60.0), deg2rad(90.0), deg2rad(120.0)}) {
    const Vec2 d =
        RotationTracker::motion_direction(ar, RotationSense::kClockwise);
    EXPECT_GT(d.x, 0.0) << "alpha_r " << rad2deg(ar);
    EXPECT_NEAR(d.norm(), 1.0, 1e-12);
  }
}

TEST(MotionDirection, CounterClockwiseMovesLeft) {
  for (double ar : {deg2rad(60.0), deg2rad(90.0), deg2rad(120.0)}) {
    const Vec2 d = RotationTracker::motion_direction(
        ar, RotationSense::kCounterClockwise);
    EXPECT_LT(d.x, 0.0);
  }
}

TEST(MotionDirection, PerpendicularToPenProjection) {
  const double ar = deg2rad(75.0);
  const Vec2 pen{std::cos(ar), std::sin(ar)};
  const Vec2 d = RotationTracker::motion_direction(ar, RotationSense::kClockwise);
  EXPECT_NEAR(d.dot(pen), 0.0, 1e-12);
}

TEST(RotationTracker, TracksClockwiseSweep) {
  auto cfg = config();
  cfg.delta_beta_rad = deg2rad(6.0);
  cfg.delta_beta_gate_db = 0.5;
  RotationTracker tracker(cfg);
  // Bootstrap in sector 2 clockwise, then keep rotating clockwise.
  auto est = tracker.step(-2.0, 2.0);
  EXPECT_EQ(est.type, MotionType::kRotational);
  const double az0 = est.alpha_a_rad;
  for (int i = 0; i < 5; ++i) est = tracker.step(-2.0, 2.0);
  EXPECT_LT(est.alpha_a_rad, az0);
  EXPECT_EQ(est.sense, RotationSense::kClockwise);
}

TEST(RotationTracker, GateBlocksWeakSteps) {
  auto cfg = config();
  cfg.delta_beta_gate_db = 1.5;
  RotationTracker tracker(cfg);
  auto est = tracker.step(-2.0, 2.0);  // bootstrap
  const double az0 = est.alpha_a_rad;
  // Weak changes: sense decodes but the azimuth must not step.
  est = tracker.step(-0.1, 0.1);
  EXPECT_NEAR(est.alpha_a_rad, az0, 1e-12);
}

TEST(RotationTracker, SectorCrossingAccumulatesCorrection) {
  auto cfg = config();
  cfg.delta_beta_rad = deg2rad(10.0);
  cfg.delta_beta_gate_db = 0.1;
  RotationTracker tracker(cfg);
  // Bootstrap in sector 1 clockwise (seed at pi - gamma = 165 deg) and
  // rotate clockwise until the pattern flips to a sector-2 signature.
  tracker.step(1.0, 3.0);
  for (int i = 0; i < 4; ++i) tracker.step(1.0, 3.0);
  EXPECT_EQ(tracker.accumulated_correction(), 0.0);
  // Sector-2 clockwise signature: ds1 < 0, ds2 > 0 -- impossible in
  // sector 1, so the tracker snaps to the boundary and records the error.
  tracker.step(-2.0, 2.0);
  EXPECT_NE(tracker.accumulated_correction(), 0.0);
  ASSERT_TRUE(tracker.azimuth().has_value());
}

TEST(RotationTracker, ResetClearsState) {
  RotationTracker tracker(config());
  tracker.step(-2.0, 2.0);
  EXPECT_TRUE(tracker.azimuth().has_value());
  tracker.reset();
  EXPECT_FALSE(tracker.azimuth().has_value());
  EXPECT_EQ(tracker.accumulated_correction(), 0.0);
}

TEST(RotationTracker, AzimuthClampedToSectorUnion) {
  auto cfg = config();
  cfg.delta_beta_rad = deg2rad(20.0);
  cfg.delta_beta_gate_db = 0.1;
  RotationTracker tracker(cfg);
  tracker.step(-3.0, -1.0);  // sector 3 clockwise, azimuth falling
  for (int i = 0; i < 20; ++i) tracker.step(-3.0, -1.0);
  ASSERT_TRUE(tracker.azimuth().has_value());
  EXPECT_GE(*tracker.azimuth(), cfg.gamma_rad - 1e-9);
}

}  // namespace
}  // namespace polardraw::core
