// Fixed-lag equivalence suite for the streaming decoder (DESIGN.md §13).
//
// The contract under test: with lag >= sequence length, push-all +
// finish() is bit-identical to the batch HmmTracker::decode on the same
// observations (same testbed configs as tests/core/test_hmm_golden.cc);
// committed positions are frozen at push time, so the emitted stream does
// not depend on poll cadence and an already-polled prefix never changes;
// arena compaction is invisible in the output; and shrinking the lag
// degrades commit accuracy in a bounded (tolerance-laddered) way.
#include "core/streaming_decoder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/decode_testbed.h"
#include "core/hmm_tracker.h"

namespace polardraw::core {
namespace {

struct GoldenCase {
  PolarDrawConfig cfg;
  int n_windows;
  std::uint64_t seed;
  bool use_hint;
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  cases.push_back({PolarDrawConfig{}, 100, 1, true});
  cases.push_back({PolarDrawConfig{}, 100, 2, false});
  PolarDrawConfig small;
  small.board_width_m = 0.5;
  small.board_height_m = 0.4;
  small.block_m = 0.005;
  small.beam_width = 200;
  small.hyperbola_sharpness = 1.0;
  cases.push_back({small, 80, 3, true});
  PolarDrawConfig greedy;
  greedy.use_viterbi = false;
  cases.push_back({greedy, 60, 4, true});
  return cases;
}

/// Streams the testbed through a decoder with the given lag, polling after
/// every push, and returns the full committed trajectory.
std::vector<Vec2> stream_decode(const GoldenCase& gc, std::size_t lag,
                                std::size_t compact_threshold = 4096) {
  const auto tb = make_decode_testbed(gc.cfg, gc.n_windows, gc.seed);
  StreamingConfig scfg;
  scfg.lag_windows = lag;
  scfg.compact_node_threshold = compact_threshold;
  StreamingDecoder dec(gc.cfg, tb.a1, tb.a2, tb.antenna_z, scfg, nullptr,
                       gc.use_hint ? &tb.start : nullptr);
  std::vector<Vec2> out;
  for (const auto& o : tb.obs) {
    dec.push(o);
    dec.poll(out);
  }
  dec.finish(out);
  return out;
}

void expect_bit_identical(const std::vector<Vec2>& a,
                          const std::vector<Vec2>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x) << "position " << i;
    EXPECT_EQ(a[i].y, b[i].y) << "position " << i;
  }
}

double mean_deviation(const std::vector<Vec2>& a, const std::vector<Vec2>& b) {
  EXPECT_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i].dist(b[i]);
  return sum / static_cast<double>(a.size());
}

TEST(StreamingDecoder, LagAtLeastLenBitIdenticalToBatchOnGoldenTraces) {
  for (const GoldenCase& gc : golden_cases()) {
    const auto tb = make_decode_testbed(gc.cfg, gc.n_windows, gc.seed);
    const HmmTracker hmm(gc.cfg, tb.a1, tb.a2, tb.antenna_z);
    const auto batch = hmm.decode(tb.obs, gc.use_hint ? &tb.start : nullptr);
    const auto streamed =
        stream_decode(gc, static_cast<std::size_t>(gc.n_windows));
    expect_bit_identical(streamed, batch);
  }
}

TEST(StreamingDecoder, PollCadenceDoesNotChangeCommittedValues) {
  const GoldenCase gc{PolarDrawConfig{}, 100, 1, true};
  const auto tb = make_decode_testbed(gc.cfg, gc.n_windows, gc.seed);
  StreamingConfig scfg;
  scfg.lag_windows = 8;

  // Cadence A: poll after every push. Cadence B: poll once at the end.
  StreamingDecoder every(gc.cfg, tb.a1, tb.a2, tb.antenna_z, scfg, nullptr,
                         &tb.start);
  StreamingDecoder once(gc.cfg, tb.a1, tb.a2, tb.antenna_z, scfg, nullptr,
                        &tb.start);
  std::vector<Vec2> out_every, out_once;
  for (const auto& o : tb.obs) {
    every.push(o);
    every.poll(out_every);
    once.push(o);
  }
  every.finish(out_every);
  once.finish(out_once);
  expect_bit_identical(out_every, out_once);
}

TEST(StreamingDecoder, PolledPrefixIsStable) {
  // Positions already drained by poll() must reappear nowhere: finish()
  // only appends, so the concatenated incremental stream *is* the final
  // trajectory prefix by prefix.
  const GoldenCase gc{PolarDrawConfig{}, 100, 2, false};
  const auto tb = make_decode_testbed(gc.cfg, gc.n_windows, gc.seed);
  StreamingConfig scfg;
  scfg.lag_windows = 12;
  StreamingDecoder dec(gc.cfg, tb.a1, tb.a2, tb.antenna_z, scfg);
  std::vector<Vec2> drained;
  std::size_t last_size = 0;
  for (const auto& o : tb.obs) {
    dec.push(o);
    std::vector<Vec2> snapshot = drained;
    dec.poll(drained);
    // The previously drained prefix is untouched by later polls.
    ASSERT_GE(drained.size(), last_size);
    for (std::size_t i = 0; i < last_size; ++i) {
      EXPECT_EQ(drained[i].x, snapshot[i].x);
      EXPECT_EQ(drained[i].y, snapshot[i].y);
    }
    last_size = drained.size();
  }
  dec.finish(drained);
  EXPECT_EQ(drained.size(), static_cast<std::size_t>(gc.n_windows) + 1);
  EXPECT_EQ(dec.committed(), drained.size());
}

TEST(StreamingDecoder, CompactionDoesNotChangeOutput) {
  // Aggressive compaction (threshold 0 compacts after every commit) must
  // be invisible next to an effectively-infinite threshold. lag 1 is the
  // regression case where the commit frontier touches the beam front, so
  // compaction promotes the frontier step itself to arena root.
  for (std::size_t lag : {1u, 4u, 16u}) {
    const GoldenCase gc{PolarDrawConfig{}, 100, 1, true};
    const auto no_compact = stream_decode(gc, lag, 1u << 30);
    const auto compact_always = stream_decode(gc, lag, 0);
    expect_bit_identical(compact_always, no_compact);
  }
}

TEST(StreamingDecoder, ToleranceLadderBoundsAccuracyVsLag) {
  // Shrinking the lag commits positions from a less-informed beam front;
  // the mean deviation from the batch decode must stay inside a ladder of
  // bounds that tightens as the lag grows and reaches zero at full lag.
  const GoldenCase gc{PolarDrawConfig{}, 100, 1, true};
  const auto tb = make_decode_testbed(gc.cfg, gc.n_windows, gc.seed);
  const HmmTracker hmm(gc.cfg, tb.a1, tb.a2, tb.antenna_z);
  const auto batch = hmm.decode(tb.obs, &tb.start);

  const struct {
    std::size_t lag;
    double bound_m;
  } ladder[] = {
      {4, 0.10},
      {8, 0.06},
      {16, 0.04},
      {100, 0.0},
  };
  double prev_bound = 1e9;
  for (const auto& rung : ladder) {
    const auto streamed = stream_decode(gc, rung.lag);
    const double dev = mean_deviation(streamed, batch);
    EXPECT_LE(dev, rung.bound_m) << "lag " << rung.lag;
    EXPECT_LE(rung.bound_m, prev_bound);  // the ladder itself tightens
    prev_bound = rung.bound_m;
  }
}

TEST(StreamingDecoder, LagOneDefaultCompactionMatchesBatch) {
  // Default compaction threshold at the minimum legal lag: the trace is
  // long enough that the arena prefix crosses the threshold and compacts
  // repeatedly with the frontier step as the new root.
  const GoldenCase gc{PolarDrawConfig{}, 100, 1, true};
  const auto tb = make_decode_testbed(gc.cfg, gc.n_windows, gc.seed);
  const HmmTracker hmm(gc.cfg, tb.a1, tb.a2, tb.antenna_z);
  const auto batch = hmm.decode(tb.obs, &tb.start);
  const auto streamed = stream_decode(gc, 1);
  ASSERT_EQ(streamed.size(), batch.size());
  // lag 1 commits from a one-window-lookahead front, so values may differ
  // from batch -- but they must stay on the board and the final tail
  // (committed by finish() from the full front) matches batch exactly.
  for (const Vec2& p : streamed) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, gc.cfg.board_width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, gc.cfg.board_height_m);
  }
  EXPECT_EQ(streamed.back().x, batch.back().x);
  EXPECT_EQ(streamed.back().y, batch.back().y);
}

TEST(StreamingDecoder, MidStreamSeedReportsRootPositionAndBackfills) {
  // Strip phase from the leading windows: the decoder must wait, seed from
  // the first phase window, backfill the prefix with the seed position,
  // report the seed root at the prefix length (the latency accounting in
  // the session server keys off it), and stay bit-identical to the batch
  // decode at full lag.
  const GoldenCase gc{PolarDrawConfig{}, 60, 5, false};
  auto tb = make_decode_testbed(gc.cfg, gc.n_windows, gc.seed);
  const std::size_t kPrefix = 3;
  for (std::size_t i = 0; i < kPrefix; ++i) tb.obs[i].has_phase = false;
  // The testbed drops phase at random, so the real prefix may be longer.
  std::size_t first_phase = kPrefix;
  while (first_phase < tb.obs.size() && !tb.obs[first_phase].has_phase) {
    ++first_phase;
  }
  ASSERT_LT(first_phase, tb.obs.size()) << "testbed produced no phase window";

  StreamingConfig scfg;
  scfg.lag_windows = static_cast<std::size_t>(gc.n_windows) + 1;
  StreamingDecoder dec(gc.cfg, tb.a1, tb.a2, tb.antenna_z, scfg);
  std::vector<Vec2> out;
  for (std::size_t i = 0; i < tb.obs.size(); ++i) {
    dec.push(tb.obs[i]);
    EXPECT_EQ(dec.seeded(), i >= first_phase) << "window " << i;
  }
  dec.finish(out);
  EXPECT_EQ(dec.seed_root_position(), first_phase);
  ASSERT_EQ(out.size(), tb.obs.size() + 1);
  // The backfilled prefix and the root all carry the seed position.
  for (std::size_t p = 0; p < first_phase; ++p) {
    EXPECT_EQ(out[p].x, out[first_phase].x) << "position " << p;
    EXPECT_EQ(out[p].y, out[first_phase].y) << "position " << p;
  }
  const HmmTracker hmm(gc.cfg, tb.a1, tb.a2, tb.antenna_z);
  expect_bit_identical(out, hmm.decode(tb.obs));
}

TEST(StreamingDecoder, PhaselessStreamFallsBackToBatchBehavior) {
  // No hint and not a single phase window: finish() must reproduce the
  // batch decode's legacy board-center seeding exactly.
  PolarDrawConfig cfg;
  cfg.board_width_m = 0.4;
  cfg.board_height_m = 0.3;
  cfg.block_m = 0.01;
  cfg.beam_width = 200;
  TrackObservation o;
  o.direction.type = MotionType::kTranslational;
  o.direction.direction = Vec2{1.0, 0.0};
  o.distance.lower_m = 0.004;
  o.distance.upper_m = 0.01;
  o.distance.valid = true;
  o.has_phase = false;
  const std::vector<TrackObservation> obs(12, o);

  const Vec2 a1{0.1, 0.35}, a2{0.3, 0.35};
  const HmmTracker hmm(cfg, a1, a2, 0.12);
  const auto batch = hmm.decode(obs);

  StreamingConfig scfg;
  scfg.lag_windows = 4;
  StreamingDecoder dec(cfg, a1, a2, 0.12, scfg);
  std::vector<Vec2> out;
  for (const auto& ob : obs) {
    dec.push(ob);
    // Nothing can commit before a seed exists.
    EXPECT_EQ(dec.poll(out), 0u);
    EXPECT_FALSE(dec.seeded());
  }
  dec.finish(out);
  EXPECT_TRUE(dec.seeded());
  expect_bit_identical(out, batch);
}

TEST(StreamingDecoder, EmptyStreamCommitsNothing) {
  const PolarDrawConfig cfg;
  const auto tb = make_decode_testbed(cfg, 1, 7);
  StreamingDecoder dec(cfg, tb.a1, tb.a2, tb.antenna_z);
  std::vector<Vec2> out;
  EXPECT_EQ(dec.poll(out), 0u);
  EXPECT_EQ(dec.finish(out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(StreamingDecoder, LongStreamKeepsResolutionViaRenormalization) {
  // The float log-prob drift bugfix: node_logp_ is float and every window
  // subtracts a score, so an unnormalized 1e4-window session would push
  // the beam to magnitudes where float ULP rivals the per-window score
  // differences that separate candidates. The per-window renormalization
  // pins the front max at exactly 0.0f forever; this decodes >= 1e4
  // windows, asserts the invariant every window, and checks the committed
  // trajectory against a chunk-restarted reference (fresh decoders seeded
  // from the previous chunk's last committed position -- a decoder whose
  // log-probs cannot have drifted by construction).
  PolarDrawConfig cfg;
  cfg.board_width_m = 0.5;
  cfg.board_height_m = 0.4;
  cfg.block_m = 0.005;
  cfg.beam_width = 200;
  const int kWindows = 10'000;
  const std::size_t kChunk = 500;
  const std::size_t kLag = 16;
  const auto tb = make_decode_testbed(cfg, kWindows, 6);

  StreamingConfig scfg;
  scfg.lag_windows = kLag;
  StreamingDecoder dec(cfg, tb.a1, tb.a2, tb.antenna_z, scfg, nullptr,
                       &tb.start);
  std::vector<Vec2> long_out;
  for (const auto& o : tb.obs) {
    dec.push(o);
    ASSERT_EQ(dec.front_logp_max(), 0.0f)
        << "renormalization invariant broken at window " << dec.pushed();
    dec.poll(long_out);
  }
  dec.finish(long_out);
  ASSERT_EQ(long_out.size(), static_cast<std::size_t>(kWindows) + 1);
  // The cumulative offset the renormalization absorbed: without it this
  // entire magnitude would sit inside every float log-prob of the beam.
  EXPECT_LT(dec.total_logp_offset(), -1000.0);

  // Chunk-restarted reference: decoder k seeds from the last committed
  // position of decoder k-1 and decodes the next kChunk windows.
  std::vector<Vec2> chunked_out;
  chunked_out.push_back(long_out[0]);
  Vec2 hint = long_out[0];
  for (std::size_t begin = 0; begin < tb.obs.size(); begin += kChunk) {
    StreamingDecoder chunk(cfg, tb.a1, tb.a2, tb.antenna_z, scfg, nullptr,
                           &hint);
    std::vector<Vec2> part;
    const std::size_t end = std::min(begin + kChunk, tb.obs.size());
    for (std::size_t i = begin; i < end; ++i) chunk.push(tb.obs[i]);
    chunk.finish(part);
    ASSERT_EQ(part.size(), end - begin + 1);
    // part[0] replays the seed root; positions 1.. are the chunk's decode.
    chunked_out.insert(chunked_out.end(), part.begin() + 1, part.end());
    hint = part.back();
  }
  ASSERT_EQ(chunked_out.size(), long_out.size());
  // The restarted decoders lose the long session's beam diversity at each
  // boundary, so equality is up to a small re-anchoring deviation; a
  // resolution-starved long session fails this by drifting unboundedly.
  EXPECT_LE(mean_deviation(long_out, chunked_out), 4.0 * cfg.block_m);
}

TEST(StreamingDecoder, AzimuthCorrectionAccumulates) {
  const PolarDrawConfig cfg;
  const auto tb = make_decode_testbed(cfg, 1, 7);
  StreamingDecoder dec(cfg, tb.a1, tb.a2, tb.antenna_z);
  EXPECT_EQ(dec.azimuth_correction_rad(), 0.0);
  dec.accumulate_azimuth_correction(0.25);
  dec.accumulate_azimuth_correction(-0.1);
  EXPECT_DOUBLE_EQ(dec.azimuth_correction_rad(), 0.15);
}

}  // namespace
}  // namespace polardraw::core
