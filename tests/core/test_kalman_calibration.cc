// Tests for the Kalman tracker and the reference-tag calibration.
#include <gtest/gtest.h>

#include "common/angles.h"
#include "core/calibration.h"
#include "core/kalman_tracker.h"
#include "core/polardraw.h"
#include "eval/harness.h"
#include "recognition/procrustes.h"
#include "sim/scene.h"

namespace polardraw::core {
namespace {

PolarDrawConfig small_cfg() {
  PolarDrawConfig cfg;
  cfg.board_width_m = 0.4;
  cfg.board_height_m = 0.3;
  return cfg;
}

TrackObservation move_obs(Vec2 dir, double step) {
  TrackObservation o;
  o.direction.type = MotionType::kTranslational;
  o.direction.direction = dir.normalized();
  o.distance.lower_m = step;
  o.distance.upper_m = 0.01;
  o.distance.valid = true;
  return o;
}

TEST(KalmanTracker, FollowsCommandedMotion) {
  const auto cfg = small_cfg();
  const KalmanTracker kf(cfg, {}, {0.1, 0.35}, {0.3, 0.35}, 0.12);
  const Vec2 hint{0.1, 0.15};
  std::vector<TrackObservation> obs(30, move_obs({1.0, 0.0}, 0.005));
  const auto traj = kf.decode(obs, &hint);
  ASSERT_EQ(traj.size(), 31u);
  EXPECT_GT(traj.back().x - traj.front().x, 0.06);
  EXPECT_NEAR(traj.back().y, traj.front().y, 0.04);
}

TEST(KalmanTracker, IdleDampsVelocity) {
  const auto cfg = small_cfg();
  const KalmanTracker kf(cfg, {}, {0.1, 0.35}, {0.3, 0.35}, 0.12);
  const Vec2 hint{0.2, 0.15};
  // Move, then go idle: the track must coast to a stop, not fly off.
  std::vector<TrackObservation> obs(10, move_obs({1.0, 0.0}, 0.006));
  obs.resize(40);  // 30 idle windows
  const auto traj = kf.decode(obs, &hint);
  const Vec2 at_stop = traj[12];
  EXPECT_LT(traj.back().dist(at_stop), 0.05);
}

TEST(KalmanTracker, RespectsSpeedCap) {
  const auto cfg = small_cfg();
  const KalmanTracker kf(cfg, {}, {0.1, 0.35}, {0.3, 0.35}, 0.12);
  const Vec2 hint{0.05, 0.15};
  std::vector<TrackObservation> obs(20, move_obs({1.0, 0.0}, 0.02));
  const auto traj = kf.decode(obs, &hint);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_LE(traj[i].dist(traj[i - 1]),
              cfg.vmax_mps * cfg.window_s + 1e-6);
  }
}

TEST(KalmanTracker, EmptyObservations) {
  const auto cfg = small_cfg();
  const KalmanTracker kf(cfg, {}, {0.1, 0.35}, {0.3, 0.35}, 0.12);
  EXPECT_TRUE(kf.decode({}).empty());
}

TEST(KalmanTracker, EndToEndViaConfigFlag) {
  eval::TrialConfig cfg;
  cfg.system = eval::System::kPolarDraw;
  cfg.seed = 47;
  cfg.algo.use_kalman_filter = true;
  const auto res = eval::run_trial("O", cfg);
  EXPECT_GT(res.trajectory.size(), 40u);
  EXPECT_LT(res.procrustes_m, 0.15);
}

// ---------------------------------------------------------------------------
// Reference-tag calibration
// ---------------------------------------------------------------------------
class CalibrationTest : public ::testing::Test {
 protected:
  CalibrationTest() : scene_(make_scene()) {}
  static sim::Scene make_scene() {
    sim::SceneConfig cfg;
    cfg.seed = 13;
    cfg.clutter_count = 0;  // calibration is done in a quiet setup
    return sim::Scene(cfg);
  }

  /// Runs a static reference tag for `seconds` and returns the reports.
  rfid::TagReportStream reference_run(Vec3 pos, double seconds) {
    handwriting::WritingTrace trace;
    for (int i = 0; i <= static_cast<int>(seconds / 0.005); ++i) {
      handwriting::TraceSample s;
      s.t_s = i * 0.005;
      s.pen_tip = pos;
      s.tag_pos = pos;
      s.angles = {deg2rad(30.0), deg2rad(90.0)};
      trace.samples.push_back(s);
    }
    return scene_.run(trace);
  }

  sim::Scene scene_;
};

TEST_F(CalibrationTest, RecoversPortOffsets) {
  const Vec3 ref_pos{0.5, 0.25, 0.0};
  const auto reports = reference_run(ref_pos, 3.0);
  CalibrationSetup setup;
  setup.tag_position = ref_pos;
  for (const auto& a : scene_.antennas()) {
    setup.antenna_positions.push_back(a.position);
  }
  const auto result = calibrate_from_reference(reports, setup);
  ASSERT_TRUE(result.has_value());
  const auto& truth = scene_.reader().port_phase_offsets();
  ASSERT_EQ(result->calibration.port_offsets_rad.size(), truth.size());
  for (std::size_t p = 0; p < truth.size(); ++p) {
    EXPECT_LT(angle_dist(result->calibration.port_offsets_rad[p], truth[p]),
              0.25)
        << "port " << p;
    EXPECT_LT(result->residual_std_rad[p], 0.3);
    EXPECT_GE(result->reads_used[p], 10);
  }
}

TEST_F(CalibrationTest, SelfCalibratedTrackingWorks) {
  // Full deployment flow: calibrate with a reference tag, then track a
  // letter using the ESTIMATED offsets instead of the simulator's truth.
  const Vec3 ref_pos{0.5, 0.25, 0.0};
  const auto ref_reports = reference_run(ref_pos, 3.0);
  CalibrationSetup setup;
  setup.tag_position = ref_pos;
  for (const auto& a : scene_.antennas()) {
    setup.antenna_positions.push_back(a.position);
  }
  const auto cal = calibrate_from_reference(ref_reports, setup);
  ASSERT_TRUE(cal.has_value());

  Rng rng(21);
  handwriting::SynthesisConfig synth;
  const auto trace = handwriting::synthesize("O", synth, rng);
  const auto reports = scene_.run(trace);

  PolarDrawConfig algo;
  const auto apos = scene_.antenna_board_positions();
  PolarDraw tracker(algo, apos[0], apos[1], 0.12);
  const auto res = tracker.track(reports, &cal->calibration);
  ASSERT_GT(res.trajectory.size(), 40u);
  const auto truth_poly = handwriting::flatten_strokes(trace.ground_truth);
  EXPECT_LT(recognition::procrustes_distance(truth_poly, res.trajectory),
            0.10);
}

TEST(Calibration, RejectsInsufficientData) {
  CalibrationSetup setup;
  setup.tag_position = Vec3{0.5, 0.25, 0.0};
  setup.antenna_positions = {Vec3{0.2, 1.25, 0.12}, Vec3{0.8, 1.25, 0.12}};
  rfid::TagReportStream few;
  for (int i = 0; i < 5; ++i) {
    rfid::TagReport r;
    r.antenna_id = i % 2;
    r.phase_rad = 1.0;
    few.push_back(r);
  }
  EXPECT_FALSE(calibrate_from_reference(few, setup, 10).has_value());
  EXPECT_FALSE(calibrate_from_reference({}, setup).has_value());
  EXPECT_FALSE(
      calibrate_from_reference(few, CalibrationSetup{}).has_value());
}

}  // namespace
}  // namespace polardraw::core
