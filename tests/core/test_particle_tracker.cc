// Degeneracy and edge cases of the continuous-state trackers: the
// particle filter's all-weights-zero resampling fallback and the Kalman
// filter's innovation-gating / zero-noise corner cases.
#include "core/particle_tracker.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/config.h"
#include "core/decode_testbed.h"
#include "core/kalman_tracker.h"

namespace polardraw::core {
namespace {

bool all_finite_in_board(const std::vector<Vec2>& traj,
                         const PolarDrawConfig& cfg) {
  for (const Vec2& p : traj) {
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) return false;
    if (p.x < -1e-9 || p.x > cfg.board_width_m + 1e-9) return false;
    if (p.y < -1e-9 || p.y > cfg.board_height_m + 1e-9) return false;
  }
  return true;
}

TEST(ParticleTracker, EmptyObservationsGiveEmptyTrajectory) {
  const PolarDrawConfig cfg;
  const DecodeTestbed tb = make_decode_testbed(cfg, 1, 7);
  ParticleTracker tracker(cfg, ParticleFilterConfig{}, tb.a1, tb.a2,
                          tb.antenna_z, 1);
  EXPECT_TRUE(tracker.decode({}).empty());
}

TEST(ParticleTracker, DecodeEmitsStartPlusOnePositionPerWindow) {
  const PolarDrawConfig cfg;
  const DecodeTestbed tb = make_decode_testbed(cfg, 40, 3);
  ParticleTracker tracker(cfg, ParticleFilterConfig{}, tb.a1, tb.a2,
                          tb.antenna_z, 1);
  const std::vector<Vec2> traj = tracker.decode(tb.obs, &tb.start);
  ASSERT_EQ(traj.size(), tb.obs.size() + 1);
  EXPECT_EQ(traj.front().x, tb.start.x);
  EXPECT_EQ(traj.front().y, tb.start.y);
  EXPECT_TRUE(all_finite_in_board(traj, cfg));
}

TEST(ParticleTracker, SameSeedIsBitDeterministic) {
  const PolarDrawConfig cfg;
  const DecodeTestbed tb = make_decode_testbed(cfg, 30, 11);
  ParticleTracker t1(cfg, ParticleFilterConfig{}, tb.a1, tb.a2, tb.antenna_z,
                     42);
  ParticleTracker t2(cfg, ParticleFilterConfig{}, tb.a1, tb.a2, tb.antenna_z,
                     42);
  const std::vector<Vec2> a = t1.decode(tb.obs, &tb.start);
  const std::vector<Vec2> b = t2.decode(tb.obs, &tb.start);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x) << "window " << i;
    EXPECT_EQ(a[i].y, b[i].y) << "window " << i;
  }
}

// An unsatisfiable annulus (lower bound far beyond any reachable step)
// underflows every particle weight to zero. The filter must take the
// uniform-reset fallback and keep emitting finite in-board estimates
// instead of dividing by a zero weight sum.
TEST(ParticleTracker, AllWeightsZeroTakesUniformResetFallback) {
  const PolarDrawConfig cfg;
  TrackObservation impossible;
  impossible.distance.valid = true;
  impossible.distance.lower_m = 1.0e6;
  impossible.distance.upper_m = 2.0e6;
  impossible.has_phase = false;
  const std::vector<TrackObservation> obs(8, impossible);

  const DecodeTestbed tb = make_decode_testbed(cfg, 1, 5);
  ParticleTracker tracker(cfg, ParticleFilterConfig{}, tb.a1, tb.a2,
                          tb.antenna_z, 9);
  const Vec2 start{cfg.board_width_m / 2.0, cfg.board_height_m / 2.0};
  const std::vector<Vec2> traj = tracker.decode(obs, &start);
  ASSERT_EQ(traj.size(), obs.size() + 1);
  EXPECT_TRUE(all_finite_in_board(traj, cfg));
}

// With a small particle budget and sharply peaked weights, systematic
// resampling must fire and still return the full particle count.
TEST(ParticleTracker, ResamplingPreservesOutputLengthUnderSharpWeights) {
  const PolarDrawConfig cfg;
  ParticleFilterConfig pf;
  pf.num_particles = 50;
  pf.init_scatter_m = 0.2;  // wide cloud -> most particles violate the annulus
  TrackObservation tight;
  tight.distance.valid = true;
  tight.distance.lower_m = 0.0;
  tight.distance.upper_m = 0.001;
  tight.has_phase = false;
  const std::vector<TrackObservation> obs(12, tight);

  const DecodeTestbed tb = make_decode_testbed(cfg, 1, 5);
  ParticleTracker tracker(cfg, pf, tb.a1, tb.a2, tb.antenna_z, 21);
  const Vec2 start{cfg.board_width_m / 2.0, cfg.board_height_m / 2.0};
  const std::vector<Vec2> traj = tracker.decode(obs, &start);
  ASSERT_EQ(traj.size(), obs.size() + 1);
  EXPECT_TRUE(all_finite_in_board(traj, cfg));
  // Near-zero displacement bounds should keep the estimate near the start.
  EXPECT_LT(traj.back().dist(start), 0.1);
}

TEST(KalmanTracker, DecodeStaysFiniteAndClampedToBoard) {
  const PolarDrawConfig cfg;
  const DecodeTestbed tb = make_decode_testbed(cfg, 60, 17);
  const KalmanTracker tracker(cfg, KalmanConfig{}, tb.a1, tb.a2,
                              tb.antenna_z);
  const std::vector<Vec2> traj = tracker.decode(tb.obs, &tb.start);
  ASSERT_EQ(traj.size(), tb.obs.size() + 1);
  EXPECT_TRUE(all_finite_in_board(traj, cfg));
}

// All-zero measurement and process noise drives the innovation covariance
// to (numerically) zero; the scalar update must gate those degenerate
// updates out rather than divide by ~0 and emit NaNs.
TEST(KalmanTracker, ZeroNoiseConfigGatesDegenerateUpdates) {
  const PolarDrawConfig cfg;
  KalmanConfig kf;
  kf.accel_noise = 0.0;
  kf.speed_noise_m = 0.0;
  kf.heading_noise_mps = 0.0;
  kf.hyperbola_noise_rad = 0.0;
  kf.init_pos_sigma = 0.0;
  kf.init_vel_sigma = 0.0;
  const DecodeTestbed tb = make_decode_testbed(cfg, 25, 13);
  const KalmanTracker tracker(cfg, kf, tb.a1, tb.a2, tb.antenna_z);
  const std::vector<Vec2> traj = tracker.decode(tb.obs, &tb.start);
  ASSERT_EQ(traj.size(), tb.obs.size() + 1);
  EXPECT_TRUE(all_finite_in_board(traj, cfg));
}

// A stream of idle windows must not make the state drift: velocity
// damping should hold the estimate near the hint.
TEST(KalmanTracker, IdleStreamHoldsPosition) {
  const PolarDrawConfig cfg;
  TrackObservation idle;
  idle.direction.type = MotionType::kIdle;
  idle.distance.valid = true;
  idle.distance.lower_m = 0.0;
  idle.distance.upper_m = cfg.vmax_mps * cfg.window_s;
  idle.has_phase = false;
  const std::vector<TrackObservation> obs(50, idle);

  const DecodeTestbed tb = make_decode_testbed(cfg, 1, 5);
  const KalmanTracker tracker(cfg, KalmanConfig{}, tb.a1, tb.a2,
                              tb.antenna_z);
  const Vec2 start{cfg.board_width_m / 2.0, cfg.board_height_m / 2.0};
  const std::vector<Vec2> traj = tracker.decode(obs, &start);
  ASSERT_EQ(traj.size(), obs.size() + 1);
  EXPECT_LT(traj.back().dist(start), 0.05);
}

TEST(KalmanTracker, DecodeIsDeterministic) {
  const PolarDrawConfig cfg;
  const DecodeTestbed tb = make_decode_testbed(cfg, 30, 23);
  const KalmanTracker tracker(cfg, KalmanConfig{}, tb.a1, tb.a2,
                              tb.antenna_z);
  const std::vector<Vec2> a = tracker.decode(tb.obs, &tb.start);
  const std::vector<Vec2> b = tracker.decode(tb.obs, &tb.start);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

}  // namespace
}  // namespace polardraw::core
