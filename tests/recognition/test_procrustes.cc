#include "recognition/procrustes.h"

#include <gtest/gtest.h>

#include "common/angles.h"
#include "common/rng.h"

namespace polardraw::recognition {
namespace {

std::vector<Vec2> circle(int n, Vec2 center = {}, double r = 1.0) {
  std::vector<Vec2> out;
  for (int i = 0; i < n; ++i) {
    const double a = kTwoPi * i / n;
    out.push_back(center + Vec2{r * std::cos(a), r * std::sin(a)});
  }
  return out;
}

std::vector<Vec2> transformed(const std::vector<Vec2>& pts, double rot,
                              double scale, Vec2 shift) {
  std::vector<Vec2> out;
  for (const Vec2& p : pts) out.push_back(p.rotated(rot) * scale + shift);
  return out;
}

TEST(Procrustes, IdenticalShapesZeroDistance) {
  const auto shape = circle(32);
  const auto r = procrustes(shape, shape);
  EXPECT_NEAR(r.rms_distance, 0.0, 1e-12);
  EXPECT_NEAR(r.normalized, 0.0, 1e-12);
  EXPECT_NEAR(r.scale, 1.0, 1e-12);
}

TEST(Procrustes, InvariantToSimilarityTransform) {
  Rng rng(2);
  std::vector<Vec2> shape;
  for (int i = 0; i < 40; ++i) {
    shape.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  }
  const auto moved = transformed(shape, 0.4, 1.7, {3.0, -2.0});
  const auto r = procrustes(shape, moved);
  EXPECT_NEAR(r.rms_distance, 0.0, 1e-9);
  EXPECT_NEAR(r.rotation_rad, -0.4, 1e-9);
  EXPECT_NEAR(r.scale, 1.0 / 1.7, 1e-9);
}

TEST(Procrustes, ResidualMatchesInjectedNoise) {
  Rng rng(7);
  const auto shape = circle(64, {0.0, 0.0}, 0.5);
  auto noisy = shape;
  for (auto& p : noisy) {
    p.x += rng.gaussian(0.0, 0.01);
    p.y += rng.gaussian(0.0, 0.01);
  }
  const auto r = procrustes(shape, noisy);
  // RMS residual ~ noise std-dev in 2-D: sqrt(2)*0.01 within tolerance.
  EXPECT_GT(r.rms_distance, 0.005);
  EXPECT_LT(r.rms_distance, 0.025);
}

TEST(Procrustes, RotationClampBites) {
  const auto shape = circle(32);
  // A line rotated 90 degrees: unrestricted alignment recovers it,
  // clamped alignment cannot.
  std::vector<Vec2> line, rotated_line;
  for (int i = 0; i < 32; ++i) {
    line.push_back({i * 0.1, 0.0});
    rotated_line.push_back({0.0, i * 0.1});
  }
  const auto free = procrustes(line, rotated_line, /*max_rotation=*/10.0);
  const auto clamped = procrustes(line, rotated_line, /*max_rotation=*/0.3);
  EXPECT_LT(free.rms_distance, 1e-9);
  EXPECT_GT(clamped.rms_distance, 0.1);
  EXPECT_NEAR(std::fabs(clamped.rotation_rad), 0.3, 1e-9);
}

TEST(Procrustes, MismatchedLengthsRejected) {
  const auto a = circle(10);
  const auto b = circle(12);
  const auto r = procrustes(a, b);
  EXPECT_EQ(r.normalized, 1.0);
}

TEST(Procrustes, DegenerateProbeRejected) {
  const auto a = circle(8);
  const std::vector<Vec2> collapsed(8, Vec2{1.0, 1.0});
  const auto r = procrustes(a, collapsed);
  EXPECT_EQ(r.normalized, 1.0);
}

TEST(Resample, PreservesEndpoints) {
  const std::vector<Vec2> poly{{0, 0}, {1, 0}, {1, 1}};
  const auto r = resample_by_arclength(poly, 21);
  ASSERT_EQ(r.size(), 21u);
  EXPECT_EQ(r.front(), Vec2(0, 0));
  EXPECT_NEAR(r.back().x, 1.0, 1e-9);
  EXPECT_NEAR(r.back().y, 1.0, 1e-9);
}

TEST(Resample, EquallySpacedByArclength) {
  const std::vector<Vec2> poly{{0, 0}, {2, 0}};
  const auto r = resample_by_arclength(poly, 5);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(r[i].x, 0.5 * static_cast<double>(i), 1e-9);
  }
}

TEST(Resample, SpacingUniformOnBentPolyline) {
  const std::vector<Vec2> poly{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const auto r = resample_by_arclength(poly, 31);
  std::vector<double> steps;
  for (std::size_t i = 1; i < r.size(); ++i) steps.push_back(r[i].dist(r[i - 1]));
  for (double s : steps) EXPECT_NEAR(s, 3.0 / 30.0, 1e-9);
}

TEST(Resample, DegenerateInputs) {
  EXPECT_TRUE(resample_by_arclength({{1, 1}}, 0).empty());
  const auto single = resample_by_arclength({{2, 3}}, 4);
  ASSERT_EQ(single.size(), 4u);
  for (const auto& p : single) EXPECT_EQ(p, Vec2(2, 3));
  const auto empty = resample_by_arclength({}, 3);
  ASSERT_EQ(empty.size(), 3u);
}

TEST(ProcrustesDistance, ConvenienceMatchesManual) {
  const auto a = circle(40, {0, 0}, 1.0);
  const auto b = circle(53, {5, 5}, 2.0);  // same shape, different sampling
  EXPECT_LT(procrustes_distance(a, b), 0.02);
}

}  // namespace
}  // namespace polardraw::recognition
