#include "recognition/classifier.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "handwriting/kinematics.h"
#include "handwriting/synthesizer.h"
#include "recognition/dtw.h"
#include "recognition/procrustes.h"

namespace polardraw::recognition {
namespace {

std::vector<Vec2> clean_letter(char c, Vec2 origin = {0.2, 0.15},
                               double size = 0.2) {
  const auto& g = handwriting::glyph_for(c);
  return handwriting::flatten_strokes(
      handwriting::place_glyph(g, origin, size));
}

TEST(LetterClassifier, PerfectOnCleanTemplates) {
  const LetterClassifier cls;
  for (char c : handwriting::alphabet()) {
    EXPECT_EQ(cls.classify(clean_letter(c)).letter, c) << c;
  }
}

TEST(LetterClassifier, ScaleAndPositionInvariant) {
  const LetterClassifier cls;
  for (char c : std::string("AMSWZ")) {
    EXPECT_EQ(cls.classify(clean_letter(c, {3.0, -1.0}, 0.04)).letter, c) << c;
  }
}

TEST(LetterClassifier, ToleratesModerateNoise) {
  const LetterClassifier cls;
  Rng rng(11);
  int correct = 0, total = 0;
  for (char c : handwriting::alphabet()) {
    auto pts = clean_letter(c);
    // Densify then jitter, simulating tracking error.
    pts = resample_by_arclength(pts, 120);
    for (auto& p : pts) {
      p.x += rng.gaussian(0.0, 0.006);
      p.y += rng.gaussian(0.0, 0.006);
    }
    ++total;
    correct += cls.classify(pts).letter == c ? 1 : 0;
  }
  EXPECT_GE(correct, total - 2);
}

TEST(LetterClassifier, RotatedLetterNotAliased) {
  // Z rotated a quarter turn looks like N; the classifier must not take
  // that alignment.
  const LetterClassifier cls;
  auto z = clean_letter('Z');
  EXPECT_EQ(cls.classify(z).letter, 'Z');
  const auto n = clean_letter('N');
  EXPECT_EQ(cls.classify(n).letter, 'N');
}

TEST(LetterClassifier, DegenerateInputSafe) {
  const LetterClassifier cls;
  EXPECT_EQ(cls.classify({}).letter, '?');
  EXPECT_EQ(cls.classify({{0.1, 0.1}}).letter, '?');
}

TEST(LetterClassifier, SecondBestPopulated) {
  const LetterClassifier cls;
  const auto r = cls.classify(clean_letter('O'));
  EXPECT_EQ(r.letter, 'O');
  EXPECT_NE(r.second, 'O');
  EXPECT_GE(r.second_score, r.score);
}

TEST(WordClassifier, SegmentsCleanWordsMostly) {
  // Segment-wise classification is inherently fragile around the
  // inter-letter bridge strokes; require most letters right.
  const LetterClassifier cls;
  handwriting::SynthesisConfig cfg;
  cfg.user.shape_wobble = 0.0;
  Rng rng(5);
  int letters_total = 0, letters_ok = 0;
  for (const std::string word : {"AT", "SUN", "MOON"}) {
    const auto trace = handwriting::synthesize(word, cfg, rng);
    const auto poly = handwriting::flatten_strokes(trace.ground_truth);
    const auto got = cls.classify_word(poly, word.size());
    ASSERT_EQ(got.size(), word.size());
    for (std::size_t i = 0; i < word.size(); ++i) {
      ++letters_total;
      letters_ok += got[i] == word[i] ? 1 : 0;
    }
  }
  EXPECT_GE(letters_ok * 3, letters_total * 2);
}

TEST(WordClassifier, LexiconMatchesCleanWords) {
  const LetterClassifier cls;
  handwriting::SynthesisConfig cfg;
  cfg.user.shape_wobble = 0.0;
  Rng rng(5);
  const std::vector<std::string> lex3{"ACT", "BIG", "CAR", "DOG", "EAT",
                                      "FUN", "HAT", "JOB", "MAP", "SUN"};
  for (const std::string word : {"SUN", "DOG", "MAP"}) {
    const auto trace = handwriting::synthesize(word, cfg, rng);
    const auto poly = handwriting::flatten_strokes(trace.ground_truth);
    EXPECT_EQ(cls.classify_word_lexicon(poly, lex3), word) << word;
  }
}

TEST(WordClassifier, LexiconEmptyAndDegenerate) {
  const LetterClassifier cls;
  EXPECT_TRUE(cls.classify_word_lexicon({{0, 0}, {1, 1}}, {}).empty());
  EXPECT_GE(cls.word_score({}, "CAT"), 1e8);
  EXPECT_GE(cls.word_score({{0, 0}, {1, 1}}, ""), 1e8);
}

TEST(WordClassifier, DegenerateInputs) {
  const LetterClassifier cls;
  EXPECT_TRUE(cls.classify_word({}, 3).empty());
  EXPECT_TRUE(cls.classify_word({{0, 0}, {1, 1}}, 0).empty());
}

TEST(ConfusionMatrix, RecordsAndNormalizes) {
  ConfusionMatrix cm;
  cm.record('A', 'A');
  cm.record('A', 'A');
  cm.record('A', 'B');
  cm.record('B', 'B');
  EXPECT_EQ(cm.count('A', 'A'), 2);
  EXPECT_EQ(cm.count('A', 'B'), 1);
  EXPECT_NEAR(cm.rate('A', 'A'), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.accuracy('B'), 1.0, 1e-12);
  EXPECT_NEAR(cm.overall_accuracy(), 3.0 / 4.0, 1e-12);
  EXPECT_EQ(cm.total(), 4);
}

TEST(ConfusionMatrix, TopConfusion) {
  ConfusionMatrix cm;
  cm.record('L', 'I');
  cm.record('L', 'I');
  cm.record('L', 'C');
  ASSERT_TRUE(cm.top_confusion('L').has_value());
  EXPECT_EQ(*cm.top_confusion('L'), 'I');
  EXPECT_FALSE(cm.top_confusion('Q').has_value());
}

TEST(ConfusionMatrix, IgnoresNonLetters) {
  ConfusionMatrix cm;
  cm.record('?', 'A');
  cm.record('A', '?');
  EXPECT_EQ(cm.total(), 0);
  EXPECT_EQ(cm.rate('A', 'A'), 0.0);
}

TEST(Dtw, IdenticalSequencesZero) {
  const std::vector<Vec2> a{{0, 0}, {1, 0}, {2, 0}};
  EXPECT_NEAR(dtw_distance(a, a), 0.0, 1e-12);
}

TEST(Dtw, TimeWarpAbsorbed) {
  // Same path, one traversed with a long dwell in the middle: DTW cost
  // stays near zero while a fixed-index comparison would be large.
  std::vector<Vec2> a, b;
  for (int i = 0; i <= 20; ++i) a.push_back({i * 0.05, 0.0});
  for (int i = 0; i <= 10; ++i) b.push_back({i * 0.05, 0.0});
  for (int i = 0; i < 10; ++i) b.push_back({0.5, 0.0});  // dwell
  for (int i = 11; i <= 20; ++i) b.push_back({i * 0.05, 0.0});
  EXPECT_LT(dtw_distance(a, b), 0.01);
}

TEST(Dtw, DifferentShapesCostly) {
  std::vector<Vec2> line, arc;
  for (int i = 0; i <= 30; ++i) {
    line.push_back({i / 30.0, 0.0});
    arc.push_back({i / 30.0, std::sin(i / 30.0 * 3.14159)});
  }
  EXPECT_GT(dtw_distance(line, arc), 0.1);
}

TEST(Dtw, DegenerateInputsLargeCost) {
  EXPECT_GE(dtw_distance({}, {{1, 1}}), 1e8);
  EXPECT_GE(dtw_distance({{1, 1}}, {}), 1e8);
}

TEST(Dtw, SymmetricEnough) {
  std::vector<Vec2> a, b;
  Rng rng(4);
  for (int i = 0; i < 25; ++i) {
    a.push_back({rng.uniform(), rng.uniform()});
    b.push_back({rng.uniform(), rng.uniform()});
  }
  EXPECT_NEAR(dtw_distance(a, b), dtw_distance(b, a), 1e-9);
}

}  // namespace
}  // namespace polardraw::recognition
