// Property tests for the DTW distance: identity, symmetry, monotonicity
// under appended outliers, and the Sakoe-Chiba band auto-widening that
// keeps mismatched-length alignments feasible.
#include "recognition/dtw.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/vec.h"

namespace polardraw::recognition {
namespace {

std::vector<Vec2> random_path(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> out;
  out.reserve(n);
  Vec2 p{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
  for (std::size_t i = 0; i < n; ++i) {
    p += Vec2{rng.gaussian(0.0, 0.01), rng.gaussian(0.0, 0.01)};
    out.push_back(p);
  }
  return out;
}

TEST(Dtw, SelfDistanceIsZero) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const std::vector<Vec2> a = random_path(40, seed);
    EXPECT_DOUBLE_EQ(dtw_distance(a, a), 0.0) << "seed " << seed;
  }
}

TEST(Dtw, IsSymmetric) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    const std::vector<Vec2> a = random_path(35, seed);
    const std::vector<Vec2> b = random_path(28, seed + 100);
    EXPECT_DOUBLE_EQ(dtw_distance(a, b), dtw_distance(b, a))
        << "seed " << seed;
  }
}

TEST(Dtw, IsNonNegative) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const std::vector<Vec2> a = random_path(20, seed);
    const std::vector<Vec2> b = random_path(25, seed + 50);
    EXPECT_GE(dtw_distance(a, b), 0.0);
  }
}

// Appending a far-away outlier to one sequence must raise the mean
// per-step cost: the new point aligns somewhere at a large distance that
// the longer normalization cannot absorb.
TEST(Dtw, AppendedOutlierIncreasesDistance) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const std::vector<Vec2> a = random_path(30, seed);
    const std::vector<Vec2> b = random_path(30, seed + 500);
    const double base = dtw_distance(a, b);
    std::vector<Vec2> b_outlier = b;
    b_outlier.push_back(b.back() + Vec2{10.0, 10.0});
    EXPECT_GT(dtw_distance(a, b_outlier), base) << "seed " << seed;
  }
}

// Identical curves sampled at different rates align almost perfectly, and
// time distortion must cost far less than a genuinely different shape.
TEST(Dtw, ResampledCurveBeatsDifferentShape) {
  std::vector<Vec2> dense, sparse, line;
  for (int i = 0; i <= 60; ++i) {
    const double t = static_cast<double>(i) / 60.0;
    dense.push_back(Vec2{t, std::sin(6.28 * t)});
  }
  for (int i = 0; i <= 20; ++i) {
    const double t = static_cast<double>(i) / 20.0;
    sparse.push_back(Vec2{t, std::sin(6.28 * t)});
    line.push_back(Vec2{t, 0.0});
  }
  const double warped = dtw_distance(dense, sparse);
  const double different = dtw_distance(dense, line);
  EXPECT_LT(warped, 0.05);
  EXPECT_GT(different, 4.0 * warped);
}

// The band is widened to at least the length difference, so strongly
// mismatched lengths still have a feasible alignment (not the 1e9
// degenerate sentinel).
TEST(Dtw, BandAutoWidensForMismatchedLengths) {
  const std::vector<Vec2> a = random_path(100, 31);
  const std::vector<Vec2> b = random_path(8, 32);
  const double d = dtw_distance(a, b, 2);  // band far below |n - m|
  EXPECT_LT(d, 1e9);
  EXPECT_GE(d, 0.0);
}

TEST(Dtw, UnconstrainedBandMatchesWideBand) {
  const std::vector<Vec2> a = random_path(40, 41);
  const std::vector<Vec2> b = random_path(33, 42);
  EXPECT_DOUBLE_EQ(dtw_distance(a, b, 0), dtw_distance(a, b, 1000));
}

TEST(Dtw, WiderBandNeverIncreasesCost) {
  const std::vector<Vec2> a = random_path(45, 51);
  const std::vector<Vec2> b = random_path(45, 52);
  double last = dtw_distance(a, b, 1);
  for (const std::size_t band : {2u, 4u, 8u, 16u, 32u}) {
    const double d = dtw_distance(a, b, band);
    EXPECT_LE(d, last + 1e-12) << "band " << band;
    last = d;
  }
}

TEST(Dtw, EmptyInputReturnsSentinel) {
  const std::vector<Vec2> a = random_path(5, 61);
  EXPECT_DOUBLE_EQ(dtw_distance({}, a), 1e9);
  EXPECT_DOUBLE_EQ(dtw_distance(a, {}), 1e9);
  EXPECT_DOUBLE_EQ(dtw_distance({}, {}), 1e9);
}

}  // namespace
}  // namespace polardraw::recognition
