// Tests for the per-segment word classification detail and the
// lexicon word scoring used by the Fig. 18 harness.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "handwriting/synthesizer.h"
#include "recognition/classifier.h"

namespace polardraw::recognition {
namespace {

std::vector<Vec2> clean_word(const std::string& word) {
  handwriting::SynthesisConfig cfg;
  cfg.user.shape_wobble = 0.0;
  Rng rng(5);
  const auto trace = handwriting::synthesize(word, cfg, rng);
  return handwriting::flatten_strokes(trace.ground_truth);
}

TEST(WordDetail, SegmentsCarryScores) {
  const LetterClassifier cls;
  const auto detail = cls.classify_word_detailed(clean_word("SUN"), 3);
  ASSERT_EQ(detail.size(), 3u);
  for (const auto& c : detail) {
    EXPECT_GE(c.score, 0.0);
    EXPECT_GE(c.second_score, c.score);
    EXPECT_NE(c.letter, c.second);
  }
}

TEST(WordDetail, MatchesClassifyWord) {
  const LetterClassifier cls;
  const auto poly = clean_word("DOG");
  const auto detail = cls.classify_word_detailed(poly, 3);
  const auto word = cls.classify_word(poly, 3);
  ASSERT_EQ(detail.size(), word.size());
  for (std::size_t i = 0; i < word.size(); ++i) {
    EXPECT_EQ(detail[i].letter, word[i]);
  }
}

TEST(WordDetail, SingleLetterPassThrough) {
  const LetterClassifier cls;
  const auto detail = cls.classify_word_detailed(clean_word("M"), 1);
  ASSERT_EQ(detail.size(), 1u);
  EXPECT_EQ(detail[0].letter, 'M');
}

TEST(WordDetail, DegenerateInputs) {
  const LetterClassifier cls;
  EXPECT_TRUE(cls.classify_word_detailed({}, 3).empty());
  EXPECT_TRUE(cls.classify_word_detailed({{0, 0}, {1, 1}}, 0).empty());
}

TEST(WordScore, TrueWordScoresBest) {
  const LetterClassifier cls;
  const auto poly = clean_word("MOON");
  const double own = cls.word_score(poly, "MOON");
  for (const std::string other : {"RAIN", "GOLD", "DESK", "WIND"}) {
    EXPECT_LT(own, cls.word_score(poly, other)) << other;
  }
}

TEST(WordScore, LongerMismatchScoresWorse) {
  const LetterClassifier cls;
  const auto poly = clean_word("AT");
  EXPECT_LT(cls.word_score(poly, "AT"), cls.word_score(poly, "WATER"));
}

TEST(WordScore, ScaleInvariant) {
  const LetterClassifier cls;
  auto poly = clean_word("HAT");
  const double base = cls.word_score(poly, "HAT");
  for (auto& p : poly) p = p * 3.0 + Vec2{5.0, -2.0};
  EXPECT_NEAR(cls.word_score(poly, "HAT"), base, 1e-9);
}

}  // namespace
}  // namespace polardraw::recognition
