#include <gtest/gtest.h>

#include "baselines/grid_search.h"
#include "baselines/rfidraw.h"
#include "baselines/tagoram.h"
#include "baselines/windowing.h"
#include "common/angles.h"

namespace polardraw::baselines {
namespace {

rfid::TagReport report(double t, int ant, double phase_rad, double rss_dbm = -40.0) {
  rfid::TagReport r;
  r.timestamp_s = t;
  r.antenna_id = ant;
  r.phase_rad = wrap_2pi(phase_rad);
  r.rss_dbm = rss_dbm;
  return r;
}

TEST(Windowing, AggregatesPerPort) {
  rfid::TagReportStream reports;
  for (int w = 0; w < 4; ++w) {
    for (int a = 0; a < 3; ++a) {
      reports.push_back(report(w * 0.05 + a * 0.01, a, 0.5 + 0.1 * w));
    }
  }
  const auto windows = window_reports(reports, 3, 0.05);
  ASSERT_EQ(windows.size(), 4u);
  for (const auto& w : windows) {
    EXPECT_TRUE(w.all_phase_valid());
    EXPECT_EQ(w.phase_rad.size(), 3u);
  }
}

TEST(Windowing, UnwrapsPerPort) {
  rfid::TagReportStream reports;
  for (int w = 0; w < 40; ++w) {
    reports.push_back(report(w * 0.05, 0, 0.5 * w));
  }
  const auto windows = window_reports(reports, 1, 0.05);
  double prev = -1e9;
  for (const auto& w : windows) {
    EXPECT_GT(w.phase_rad[0], prev);
    prev = w.phase_rad[0];
  }
}

TEST(Windowing, OffsetsSubtracted) {
  rfid::TagReportStream reports{report(0.0, 0, 1.7)};
  const std::vector<double> offsets{0.7};
  const auto windows = window_reports(reports, 1, 0.05, &offsets);
  EXPECT_NEAR(wrap_2pi(windows[0].phase_rad[0]), 1.0, 1e-9);
}

TEST(Windowing, MissingPortMarkedInvalid) {
  rfid::TagReportStream reports{report(0.0, 0, 1.0)};
  const auto windows = window_reports(reports, 2, 0.05);
  EXPECT_TRUE(windows[0].phase_valid[0]);
  EXPECT_FALSE(windows[0].phase_valid[1]);
  EXPECT_FALSE(windows[0].all_phase_valid());
}

TEST(Windowing, DegenerateInputs) {
  EXPECT_TRUE(window_reports({}, 2, 0.05).empty());
  EXPECT_TRUE(window_reports({report(0, 0, 1)}, 0, 0.05).empty());
  EXPECT_TRUE(window_reports({report(0, 0, 1)}, 2, 0.0).empty());
}

TEST(GridBeam, FollowsScoreGradient) {
  GridConfig cfg;
  cfg.board_width_m = 0.4;
  cfg.board_height_m = 0.3;
  cfg.block_m = 0.01;
  // Reward moving right.
  const auto scorer = [](std::size_t, const Vec2& from, const Vec2& to) {
    return (to.x - from.x) * 100.0;
  };
  const auto traj = grid_beam_decode(cfg, {0.05, 0.15}, 20, scorer);
  ASSERT_EQ(traj.size(), 21u);
  EXPECT_GT(traj.back().x, traj.front().x + 0.1);
}

TEST(GridBeam, RespectsSpeedLimit) {
  GridConfig cfg;
  cfg.block_m = 0.01;
  const auto scorer = [](std::size_t, const Vec2&, const Vec2& to) {
    return to.x;  // run right as fast as possible
  };
  const auto traj = grid_beam_decode(cfg, {0.05, 0.15}, 10, scorer);
  const double max_step = cfg.vmax_mps * cfg.window_s + cfg.block_m;
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_LE(traj[i].dist(traj[i - 1]), max_step);
  }
}

TEST(GridBeam, ZeroStepsJustStart) {
  GridConfig cfg;
  const auto traj = grid_beam_decode(
      cfg, {0.2, 0.2}, 0,
      [](std::size_t, const Vec2&, const Vec2&) { return 0.0; });
  ASSERT_EQ(traj.size(), 1u);
  EXPECT_NEAR(traj[0].x, 0.2, cfg.block_m);
}

/// Synthesizes ideal (noise-free) phase reports for a tag gliding right,
/// observed by `antennas`, and checks the tracker recovers the motion.
template <typename MakeTracker>
void run_synthetic_track(int ports, MakeTracker make_tracker) {
  std::vector<em::ReaderAntenna> rig;
  for (int a = 0; a < ports; ++a) {
    // Two ports: a well-conditioned pair above the block. More ports:
    // alternate above/below for 2-D diversity.
    const double y = ports <= 2 ? 0.55 : (a % 2 == 0 ? 0.55 : -0.05);
    em::ReaderAntenna ant = em::make_circular_antenna(
        Vec3{0.2 + 0.6 * a / std::max(1, ports - 1), y, 1.0});
    ant.boresight = Vec3{0.0, 0.0, -1.0};
    rig.push_back(ant);
  }
  const double lambda = 0.3276;
  rfid::TagReportStream reports;
  // Tag glides right 20 cm over 2 s; reads at 100 Hz round-robin. The
  // glide must cover at least a grid block per window or per-window
  // differential trackers legitimately prefer standing still.
  for (int i = 0; i < 200; ++i) {
    const double t = i * 0.01;
    const Vec2 tag{0.30 + 0.10 * t, 0.25};
    const int port = i % ports;
    const auto& ant = rig[static_cast<std::size_t>(port)];
    const double dx = tag.x - ant.position.x;
    const double dy = tag.y - ant.position.y;
    const double l = std::sqrt(dx * dx + dy * dy + ant.position.z * ant.position.z);
    reports.push_back(report(t, port, 4.0 * kPi * l / lambda));
  }
  const auto traj = make_tracker(rig)(reports);
  ASSERT_GT(traj.size(), 10u);
  const double dx = traj.back().x - traj.front().x;
  const double dy = traj.back().y - traj.front().y;
  EXPECT_NEAR(dx, 0.20, 0.06);
  EXPECT_NEAR(dy, 0.0, 0.08);
}

TEST(Tagoram, TracksGlidingTagFourAntennas) {
  run_synthetic_track(4, [](const std::vector<em::ReaderAntenna>& rig) {
    return [rig](const rfid::TagReportStream& reports) {
      TagoramConfig cfg;
      TagoramTracker tracker(cfg, rig);
      return tracker.track(reports);
    };
  });
}

TEST(Tagoram, TwoAntennasRecoverHorizontalMotion) {
  // With two antennas in a horizontal line, the differential phases pin
  // lateral motion well but leave the vertical component ill-conditioned
  // when tracking starts from a wrong absolute anchor -- the 2-antenna
  // weakness the paper's cost comparison trades against. Assert only the
  // well-conditioned axis.
  std::vector<em::ReaderAntenna> rig;
  for (int a = 0; a < 2; ++a) {
    em::ReaderAntenna ant =
        em::make_circular_antenna(Vec3{0.2 + 0.6 * a, 0.55, 1.0});
    ant.boresight = Vec3{0.0, 0.0, -1.0};
    rig.push_back(ant);
  }
  const double lambda = 0.3276;
  rfid::TagReportStream reports;
  for (int i = 0; i < 200; ++i) {
    const double t = i * 0.01;
    const Vec2 tag{0.30 + 0.10 * t, 0.25};
    const int port = i % 2;
    const auto& ant = rig[static_cast<std::size_t>(port)];
    const double dx = tag.x - ant.position.x;
    const double dy = tag.y - ant.position.y;
    const double l =
        std::sqrt(dx * dx + dy * dy + ant.position.z * ant.position.z);
    reports.push_back(report(t, port, 4.0 * kPi * l / lambda));
  }
  TagoramConfig cfg;
  TagoramTracker tracker(cfg, rig);
  const auto traj = tracker.track(reports);
  ASSERT_GT(traj.size(), 10u);
  EXPECT_NEAR(traj.back().x - traj.front().x, 0.20, 0.07);
}

TEST(Tagoram, EmptyStreamEmptyTrajectory) {
  TagoramConfig cfg;
  TagoramTracker tracker(cfg, {em::make_circular_antenna(Vec3{0, 0, 1})});
  EXPECT_TRUE(tracker.track({}).empty());
}

TEST(RfIdraw, TracksGlidingTag) {
  run_synthetic_track(4, [](const std::vector<em::ReaderAntenna>& rig) {
    return [rig](const rfid::TagReportStream& reports) {
      RfIdrawConfig cfg;
      RfIdrawTracker tracker(cfg, rig, {{0, 1}, {2, 3}},
                             std::vector<double>(4, 0.0));
      return tracker.track(reports);
    };
  });
}

TEST(RfIdraw, EmptyStreamEmptyTrajectory) {
  RfIdrawConfig cfg;
  RfIdrawTracker tracker(cfg,
                         {em::make_circular_antenna(Vec3{0, 0, 1}),
                          em::make_circular_antenna(Vec3{0.2, 0, 1})},
                         {{0, 1}}, {0.0, 0.0});
  EXPECT_TRUE(tracker.track({}).empty());
}

}  // namespace
}  // namespace polardraw::baselines
