#include "handwriting/stroke_font.h"

#include <gtest/gtest.h>

namespace polardraw::handwriting {
namespace {

TEST(StrokeFont, AllLettersPresent) {
  for (char c : alphabet()) {
    EXPECT_TRUE(has_glyph(c)) << c;
    EXPECT_NO_THROW(glyph_for(c));
  }
  EXPECT_EQ(alphabet().size(), 26u);
}

TEST(StrokeFont, LowercaseAliases) {
  EXPECT_TRUE(has_glyph('a'));
  EXPECT_EQ(glyph_for('a').letter, 'A');
}

TEST(StrokeFont, UnknownCharacterThrows) {
  EXPECT_FALSE(has_glyph('1'));
  EXPECT_FALSE(has_glyph(' '));
  EXPECT_THROW(glyph_for('!'), std::out_of_range);
}

TEST(StrokeFont, GlyphsLiveInUnitBox) {
  for (char c : alphabet()) {
    const Glyph& g = glyph_for(c);
    for (const Stroke& s : g.strokes) {
      for (const Vec2& p : s) {
        EXPECT_GE(p.x, -0.2) << c;
        EXPECT_LE(p.x, 1.2) << c;
        EXPECT_GE(p.y, -0.2) << c;
        EXPECT_LE(p.y, 1.2) << c;
      }
    }
  }
}

TEST(StrokeFont, EveryStrokeDrawable) {
  for (char c : alphabet()) {
    const Glyph& g = glyph_for(c);
    EXPECT_GE(g.strokes.size(), 1u) << c;
    for (const Stroke& s : g.strokes) {
      EXPECT_GE(s.size(), 2u) << c;
    }
  }
}

TEST(StrokeFont, InkLengthPositiveAndSane) {
  for (char c : alphabet()) {
    const double len = glyph_ink_length(glyph_for(c));
    EXPECT_GT(len, 0.8) << c;   // at least a diagonal-ish amount of ink
    EXPECT_LT(len, 6.0) << c;   // nothing absurdly long
  }
}

TEST(StrokeFont, SingleStrokeLettersAreSingleStroke) {
  for (char c : std::string("CGIJLMNOSUVWZ")) {
    EXPECT_EQ(glyph_stroke_count(glyph_for(c)), 1u) << c;
  }
}

TEST(StrokeFont, MultiStrokeLettersHaveSeveral) {
  for (char c : std::string("AEFHKTXY")) {
    EXPECT_GE(glyph_stroke_count(glyph_for(c)), 2u) << c;
  }
}

TEST(StrokeFont, AdvancePositive) {
  for (char c : alphabet()) {
    EXPECT_GT(glyph_for(c).advance, 0.3) << c;
    EXPECT_LT(glyph_for(c).advance, 2.0) << c;
  }
}

}  // namespace
}  // namespace polardraw::handwriting
