#include "handwriting/kinematics.h"

#include <gtest/gtest.h>

#include "handwriting/stroke_font.h"

namespace polardraw::handwriting {
namespace {

TEST(PlaceGlyph, ScalesAndTranslates) {
  const Glyph& g = glyph_for('L');
  const auto placed = place_glyph(g, Vec2{0.3, 0.1}, 0.2);
  ASSERT_EQ(placed.size(), g.strokes.size());
  for (std::size_t si = 0; si < placed.size(); ++si) {
    for (std::size_t pi = 0; pi < placed[si].size(); ++pi) {
      const Vec2 expect = Vec2{0.3, 0.1} + g.strokes[si][pi] * 0.2;
      EXPECT_NEAR(placed[si][pi].x, expect.x, 1e-12);
      EXPECT_NEAR(placed[si][pi].y, expect.y, 1e-12);
    }
  }
}

class PathTest : public ::testing::Test {
 protected:
  KinematicsConfig cfg_;
  Rng rng_{42};
};

TEST_F(PathTest, TimeMonotone) {
  const auto path = sample_path(
      place_glyph(glyph_for('W'), {0.2, 0.1}, 0.2), cfg_, rng_);
  ASSERT_GT(path.size(), 10u);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_GT(path[i].t_s, path[i - 1].t_s);
  }
}

TEST_F(PathTest, SpeedBounded) {
  const auto path = sample_path(
      place_glyph(glyph_for('Z'), {0.2, 0.1}, 0.2), cfg_, rng_);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const double dt = path[i].t_s - path[i - 1].t_s;
    const double speed = path[i].pos.dist(path[i - 1].pos) / dt;
    // Cruise + jitter margin; transits are faster.
    EXPECT_LT(speed, cfg_.transit_speed * 2.5) << "at sample " << i;
  }
}

TEST_F(PathTest, VisitsAllStrokeEndpoints) {
  const auto strokes = place_glyph(glyph_for('H'), {0.3, 0.1}, 0.2);
  const auto path = sample_path(strokes, cfg_, rng_);
  for (const Stroke& s : strokes) {
    for (const Vec2& target : {s.front(), s.back()}) {
      double best = 1e9;
      for (const auto& p : path) best = std::min(best, p.pos.dist(target));
      EXPECT_LT(best, 0.002) << "endpoint (" << target.x << "," << target.y
                             << ")";
    }
  }
}

TEST_F(PathTest, PenUpOnlyBetweenStrokes) {
  const auto strokes = place_glyph(glyph_for('T'), {0.3, 0.1}, 0.2);
  const auto path = sample_path(strokes, cfg_, rng_);
  // There must be some pen-up samples (T has two strokes) and pen-down
  // samples must dominate.
  int down = 0, up = 0;
  for (const auto& p : path) (p.pen_down ? down : up)++;
  EXPECT_GT(up, 0);
  EXPECT_GT(down, up);
}

TEST_F(PathTest, InitialDwellEmitsStationarySamples) {
  cfg_.initial_dwell_s = 0.5;
  const auto strokes = place_glyph(glyph_for('I'), {0.3, 0.1}, 0.2);
  const auto path = sample_path(strokes, cfg_, rng_);
  // Count leading samples at the first stroke start.
  const Vec2 start = strokes.front().front();
  int stationary = 0;
  for (const auto& p : path) {
    if (p.pos.dist(start) < 1e-9) {
      ++stationary;
    } else if (stationary > 0) {
      break;
    }
  }
  EXPECT_GE(stationary, static_cast<int>(0.5 / cfg_.sample_dt) - 2);
}

TEST_F(PathTest, EmptyStrokesProduceEmptyPath) {
  EXPECT_TRUE(sample_path({}, cfg_, rng_).empty());
  EXPECT_TRUE(sample_path({Stroke{{0.1, 0.1}}}, cfg_, rng_).empty());
}

TEST_F(PathTest, CornerSlowdownReducesSpeed) {
  // A hairpin stroke must contain slower samples than a straight one.
  Stroke straight{{0.0, 0.0}, {0.2, 0.0}};
  Stroke hairpin{{0.0, 0.0}, {0.1, 0.0}, {0.0, 0.001}};
  cfg_.speed_jitter = 0.0;
  Rng r1(1), r2(1);
  const auto p_straight = sample_path({straight}, cfg_, r1);
  const auto p_hairpin = sample_path({hairpin}, cfg_, r2);
  auto min_speed = [&](const std::vector<PathSample>& p) {
    double v = 1e9;
    for (const auto& s : p) {
      if (s.pen_down && s.velocity.norm() > 0.0) {
        v = std::min(v, s.velocity.norm());
      }
    }
    return v;
  };
  EXPECT_LT(min_speed(p_hairpin), min_speed(p_straight) * 0.8);
}

}  // namespace
}  // namespace polardraw::handwriting
