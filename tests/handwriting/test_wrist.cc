#include "handwriting/wrist.h"

#include <gtest/gtest.h>

#include "common/angles.h"
#include "em/tag.h"
#include "handwriting/user.h"

namespace polardraw::handwriting {
namespace {

PathSample sample(double t, Vec2 pos, Vec2 vel, bool down = true) {
  return PathSample{t, pos, vel, down};
}

TEST(AzimuthFromRotation, InvertsEquationOne) {
  // Round trip: alpha_a -> Eq.1 -> alpha_r -> inverse -> alpha_a.
  const double ae = deg2rad(30.0);
  for (double az = deg2rad(20.0); az < deg2rad(160.0); az += 0.1) {
    const double ar = em::rotation_angle_from_pen({ae, az});
    const double back = WristModel::azimuth_from_rotation(ar, ae);
    EXPECT_NEAR(back, az, 1e-6) << "azimuth " << rad2deg(az);
  }
}

TEST(AzimuthFromRotation, VerticalProjectionIsNeutral) {
  EXPECT_NEAR(WristModel::azimuth_from_rotation(kPi / 2.0, deg2rad(30.0)),
              kPi / 2.0, 1e-9);
}

TEST(AzimuthFromRotation, SaturatesAtClamp) {
  const double min_az = 0.14;
  // A nearly horizontal projection demands an impossible azimuth; the
  // inverse saturates at the clamp.
  const double az = WristModel::azimuth_from_rotation(0.05, deg2rad(30.0), min_az);
  EXPECT_NEAR(az, min_az, 1e-9);
}

TEST(WristModel, RightwardStrokeRotatesClockwise) {
  WristStyle style;
  style.tremor_rad = 0.0;
  style.elevation_wander_rad = 0.0;
  WristModel wrist(style, Rng(1));

  // Settle at the start, then sweep right with the hand resting.
  double az_start = 0.0, az_end = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double t = i * 0.01;
    const Vec2 pos{0.3 + 0.0008 * i, 0.2};
    const auto angles = wrist.step(sample(t, pos, {0.08, 0.0}));
    if (i == 5) az_start = angles.azimuth_rad;
    az_end = angles.azimuth_rad;
  }
  // Moving right: azimuth decreases (clockwise), per section 3.2.
  EXPECT_LT(az_end, az_start - deg2rad(10.0));
}

TEST(WristModel, LeftwardStrokeRotatesCounterClockwise) {
  WristStyle style;
  style.tremor_rad = 0.0;
  style.elevation_wander_rad = 0.0;
  WristModel wrist(style, Rng(1));
  double az_start = 0.0, az_end = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double t = i * 0.01;
    const Vec2 pos{0.5 - 0.0008 * i, 0.2};
    const auto angles = wrist.step(sample(t, pos, {-0.08, 0.0}));
    if (i == 5) az_start = angles.azimuth_rad;
    az_end = angles.azimuth_rad;
  }
  EXPECT_GT(az_end, az_start + deg2rad(10.0));
}

TEST(WristModel, VerticalStrokeBarelyRotates) {
  WristStyle style;
  style.tremor_rad = 0.0;
  style.elevation_wander_rad = 0.0;
  WristModel wrist(style, Rng(1));
  double az_min = 10.0, az_max = -10.0;
  for (int i = 0; i <= 100; ++i) {
    const double t = i * 0.01;
    const Vec2 pos{0.4, 0.30 - 0.0008 * i};
    const auto angles = wrist.step(sample(t, pos, {0.0, -0.08}));
    if (i >= 5) {
      az_min = std::min(az_min, angles.azimuth_rad);
      az_max = std::max(az_max, angles.azimuth_rad);
    }
  }
  EXPECT_LT(az_max - az_min, deg2rad(12.0));
}

TEST(WristModel, PenUpRepositionsPivot) {
  WristStyle style;
  style.tremor_rad = 0.0;
  WristModel wrist(style, Rng(1));
  wrist.step(sample(0.0, {0.3, 0.2}, {}, true));
  // Jump far away with pen up: pivot follows.
  wrist.step(sample(0.1, {0.6, 0.4}, {}, false));
  const Vec2 expected = Vec2{0.6, 0.4} + style.pivot_offset;
  EXPECT_NEAR(wrist.pivot().x, expected.x, 1e-9);
  EXPECT_NEAR(wrist.pivot().y, expected.y, 1e-9);
}

TEST(WristModel, ElevationStaysNearMean) {
  WristStyle style;
  WristModel wrist(style, Rng(7));
  for (int i = 0; i < 400; ++i) {
    const auto angles =
        wrist.step(sample(i * 0.005, {0.4 + 0.0004 * i, 0.2}, {0.08, 0.0}));
    EXPECT_NEAR(angles.elevation_rad, style.elevation_rad, 0.21);
  }
}

TEST(WristModel, AzimuthWithinPhysicalRange) {
  WristStyle style;
  WristModel wrist(style, Rng(3));
  for (int i = 0; i < 500; ++i) {
    // Erratic movement.
    const Vec2 pos{0.4 + 0.1 * std::sin(i * 0.21), 0.25 + 0.1 * std::cos(i * 0.17)};
    const auto angles = wrist.step(sample(i * 0.005, pos, {}));
    EXPECT_GE(angles.azimuth_rad, deg2rad(8.0) - 1e-9);
    EXPECT_LE(angles.azimuth_rad, deg2rad(172.0) + 1e-9);
  }
}

TEST(UserStyles, FourDistinctUsers) {
  for (int id = 1; id <= 4; ++id) {
    const UserStyle u = user_style(id);
    EXPECT_EQ(u.id, id);
    EXPECT_GT(u.kinematics.cruise_speed, 0.0);
  }
  EXPECT_THROW(user_style(0), std::out_of_range);
  EXPECT_THROW(user_style(5), std::out_of_range);
}

TEST(UserStyles, StiffUserRotatesLess) {
  // User 2's "stiff" style: same stroke, much smaller azimuth swing.
  auto swing_for = [](const UserStyle& u) {
    WristStyle style = u.wrist;
    style.tremor_rad = 0.0;
    style.elevation_wander_rad = 0.0;
    WristModel wrist(style, Rng(1));
    double az_min = 10.0, az_max = -10.0;
    for (int i = 0; i <= 150; ++i) {
      const auto angles = wrist.step(
          sample(i * 0.01, {0.3 + 0.001 * i, 0.2}, {0.1, 0.0}));
      if (i >= 5) {
        az_min = std::min(az_min, angles.azimuth_rad);
        az_max = std::max(az_max, angles.azimuth_rad);
      }
    }
    return az_max - az_min;
  };
  EXPECT_LT(swing_for(user_style(2)), swing_for(user_style(1)) * 0.5);
}

}  // namespace
}  // namespace polardraw::handwriting
