#include "handwriting/synthesizer.h"

#include <gtest/gtest.h>

#include "common/angles.h"

namespace polardraw::handwriting {
namespace {

TEST(Synthesizer, SingleLetterTrace) {
  SynthesisConfig cfg;
  Rng rng(5);
  const auto trace = synthesize("A", cfg, rng);
  EXPECT_EQ(trace.text, "A");
  EXPECT_GT(trace.samples.size(), 100u);
  EXPECT_GT(trace.duration_s, 1.0);
  EXPECT_FALSE(trace.ground_truth.empty());
}

TEST(Synthesizer, SkipsUnknownCharacters) {
  SynthesisConfig cfg;
  Rng rng(5);
  const auto trace = synthesize("A1B!", cfg, rng);
  // Two letters worth of ground-truth strokes.
  std::size_t strokes = 0;
  strokes += glyph_stroke_count(glyph_for('A'));
  strokes += glyph_stroke_count(glyph_for('B'));
  EXPECT_EQ(trace.ground_truth.size(), strokes);
}

TEST(Synthesizer, EmptyTextEmptyTrace) {
  SynthesisConfig cfg;
  Rng rng(1);
  const auto trace = synthesize("", cfg, rng);
  EXPECT_TRUE(trace.samples.empty());
  EXPECT_TRUE(trace.ground_truth.empty());
}

TEST(Synthesizer, AutoCenterPutsTextUnderRig) {
  SynthesisConfig cfg;
  cfg.auto_center = true;
  cfg.board_center_x_m = 0.5;
  Rng rng(5);
  const auto trace = synthesize("O", cfg, rng);
  double xmin = 1e9, xmax = -1e9;
  for (const auto& s : trace.ground_truth) {
    for (const auto& p : s) {
      xmin = std::min(xmin, p.x);
      xmax = std::max(xmax, p.x);
    }
  }
  EXPECT_NEAR((xmin + xmax) / 2.0, 0.5, 0.05);
}

TEST(Synthesizer, LongWordShrinksToFit) {
  SynthesisConfig cfg;
  cfg.auto_center = true;
  cfg.max_width_m = 0.8;
  Rng rng(5);
  const auto trace = synthesize("WWWWW", cfg, rng);
  double xmin = 1e9, xmax = -1e9;
  for (const auto& s : trace.ground_truth) {
    for (const auto& p : s) {
      xmin = std::min(xmin, p.x);
      xmax = std::max(xmax, p.x);
    }
  }
  EXPECT_LE(xmax - xmin, 0.85);
  EXPECT_GE(xmin, 0.0);
}

TEST(Synthesizer, OnBoardStaysPlanar) {
  SynthesisConfig cfg;
  cfg.in_air = false;
  Rng rng(5);
  const auto trace = synthesize("S", cfg, rng);
  for (const auto& s : trace.samples) {
    EXPECT_EQ(s.pen_tip.z, 0.0);
  }
}

TEST(Synthesizer, InAirWandersOutOfPlane) {
  SynthesisConfig cfg;
  cfg.in_air = true;
  Rng rng(5);
  const auto trace = synthesize("S", cfg, rng);
  double max_abs_z = 0.0;
  for (const auto& s : trace.samples) {
    max_abs_z = std::max(max_abs_z, std::fabs(s.pen_tip.z));
  }
  EXPECT_GT(max_abs_z, 0.005);
}

TEST(Synthesizer, TagRidesTheBarrel) {
  SynthesisConfig cfg;
  cfg.tag_offset_m = 0.05;
  Rng rng(5);
  const auto trace = synthesize("I", cfg, rng);
  for (const auto& s : trace.samples) {
    EXPECT_NEAR(s.tag_pos.dist(s.pen_tip), 0.05, 1e-9);
    // With positive elevation the tag sits above and out of the board.
    EXPECT_GT(s.tag_pos.z, s.pen_tip.z);
  }
}

TEST(Synthesizer, DeterministicGivenSeed) {
  SynthesisConfig cfg;
  Rng a(9), b(9);
  const auto ta = synthesize("K", cfg, a);
  const auto tb = synthesize("K", cfg, b);
  ASSERT_EQ(ta.samples.size(), tb.samples.size());
  for (std::size_t i = 0; i < ta.samples.size(); i += 17) {
    EXPECT_EQ(ta.samples[i].pen_tip, tb.samples[i].pen_tip);
    EXPECT_EQ(ta.samples[i].angles.azimuth_rad, tb.samples[i].angles.azimuth_rad);
  }
}

TEST(Synthesizer, DifferentSeedsDiffer) {
  SynthesisConfig cfg;
  Rng a(9), b(10);
  const auto ta = synthesize("K", cfg, a);
  const auto tb = synthesize("K", cfg, b);
  bool any_diff = ta.samples.size() != tb.samples.size();
  for (std::size_t i = 0; !any_diff && i < ta.samples.size(); ++i) {
    any_diff = !(ta.samples[i].pen_tip == tb.samples[i].pen_tip);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthesizer, InkPolylineOnlyPenDown) {
  SynthesisConfig cfg;
  Rng rng(3);
  const auto trace = synthesize("T", cfg, rng);
  const auto ink = trace_ink_polyline(trace);
  std::size_t down = 0;
  for (const auto& s : trace.samples) down += s.pen_down ? 1 : 0;
  EXPECT_EQ(ink.size(), down);
}

TEST(Synthesizer, FlattenStrokesConcatenates) {
  const std::vector<Stroke> strokes{{{0, 0}, {1, 0}}, {{2, 2}, {3, 3}}};
  const auto flat = flatten_strokes(strokes);
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat[0], Vec2(0, 0));
  EXPECT_EQ(flat[3], Vec2(3, 3));
}

TEST(Synthesizer, WordWiderThanLetter) {
  SynthesisConfig cfg;
  Rng a(1), b(1);
  auto width = [](const WritingTrace& t) {
    double xmin = 1e9, xmax = -1e9;
    for (const auto& s : t.ground_truth) {
      for (const auto& p : s) {
        xmin = std::min(xmin, p.x);
        xmax = std::max(xmax, p.x);
      }
    }
    return xmax - xmin;
  };
  EXPECT_GT(width(synthesize("HI", cfg, a)), width(synthesize("I", cfg, b)));
}

}  // namespace
}  // namespace polardraw::handwriting
