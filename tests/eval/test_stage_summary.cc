// Edge-case tests of eval::summarize_stages: the percentile math on
// 0-, 1- and 2-sample batches is pinned here because the BENCH_*.json
// export (and therefore the benchdiff sentinel) consumes these numbers.
#include <gtest/gtest.h>

#include <vector>

#include "eval/harness.h"

namespace polardraw::eval {
namespace {

TrialResult trial_with(double synth_s, double wall_s) {
  TrialResult r;
  r.stages.synth_s = synth_s;
  r.stages.reader_s = 2.0 * synth_s;
  r.stages.track_s = 3.0 * synth_s;
  r.stages.classify_s = 4.0 * synth_s;
  r.wall_s = wall_s;
  return r;
}

const StageSummary* find(const std::vector<StageSummary>& summaries,
                         const std::string& name) {
  for (const auto& s : summaries) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(SummarizeStages, EmptyBatchYieldsZeroedSummaries) {
  const auto summaries = summarize_stages({});
  // One entry per StageTimings member plus the trial wall clock.
  ASSERT_EQ(summaries.size(), 5u);
  for (const auto& s : summaries) {
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.p50_ms, 0.0);
    EXPECT_DOUBLE_EQ(s.p95_ms, 0.0);
    EXPECT_DOUBLE_EQ(s.mean_ms, 0.0);
    EXPECT_DOUBLE_EQ(s.total_s, 0.0);
  }
}

TEST(SummarizeStages, SingleSampleIsItsOwnPercentile) {
  const auto summaries = summarize_stages({trial_with(0.010, 0.100)});
  const StageSummary* synth = find(summaries, "synth");
  ASSERT_NE(synth, nullptr);
  EXPECT_EQ(synth->count, 1u);
  EXPECT_DOUBLE_EQ(synth->p50_ms, 10.0);
  EXPECT_DOUBLE_EQ(synth->p95_ms, 10.0);
  EXPECT_DOUBLE_EQ(synth->mean_ms, 10.0);
  EXPECT_DOUBLE_EQ(synth->total_s, 0.010);
  const StageSummary* wall = find(summaries, "trial_wall");
  ASSERT_NE(wall, nullptr);
  EXPECT_DOUBLE_EQ(wall->p50_ms, 100.0);
  EXPECT_DOUBLE_EQ(wall->p95_ms, 100.0);
}

TEST(SummarizeStages, TwoSamplesInterpolateLinearly) {
  // percentile() interpolates at rank p/100 * (n-1); with two samples
  // sorted to (lo, hi) that is lo + p/100 * (hi - lo).
  const auto summaries =
      summarize_stages({trial_with(0.010, 0.100), trial_with(0.030, 0.200)});
  const StageSummary* synth = find(summaries, "synth");
  ASSERT_NE(synth, nullptr);
  EXPECT_EQ(synth->count, 2u);
  EXPECT_DOUBLE_EQ(synth->p50_ms, 20.0);                       // midpoint
  EXPECT_DOUBLE_EQ(synth->p95_ms, 0.05 * 10.0 + 0.95 * 30.0);  // 29.0
  EXPECT_DOUBLE_EQ(synth->mean_ms, 20.0);
  EXPECT_DOUBLE_EQ(synth->total_s, 0.040);
}

TEST(SummarizeStages, OrderOfTrialsDoesNotMatter) {
  const auto a =
      summarize_stages({trial_with(0.010, 0.100), trial_with(0.030, 0.200)});
  const auto b =
      summarize_stages({trial_with(0.030, 0.200), trial_with(0.010, 0.100)});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].p50_ms, b[i].p50_ms) << a[i].name;
    EXPECT_DOUBLE_EQ(a[i].p95_ms, b[i].p95_ms) << a[i].name;
  }
}

}  // namespace
}  // namespace polardraw::eval
