// Regression tests for deterministic per-trial seeding and the parallel
// batch harness: trial k's outcome must be a pure function of
// (base seed, trial index), never of execution order or thread count.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/seed.h"
#include "eval/harness.h"
#include "recognition/classifier.h"

namespace polardraw::eval {
namespace {

bool same_outcome(const TrialResult& a, const TrialResult& b) {
  if (a.text != b.text || a.recognized != b.recognized ||
      a.all_correct != b.all_correct || a.procrustes_m != b.procrustes_m ||
      a.report_count != b.report_count ||
      a.trajectory.size() != b.trajectory.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    if (!(a.trajectory[i] == b.trajectory[i])) return false;
  }
  return true;
}

std::vector<TrialSpec> letter_sweep_specs(const std::string& letters, int reps,
                                          std::uint64_t base) {
  std::vector<TrialSpec> specs;
  for (char c : letters) {
    for (int r = 0; r < reps; ++r) {
      TrialSpec spec{std::string(1, c), TrialConfig{}};
      spec.cfg.system = System::kPolarDraw;
      spec.cfg.seed = trial_seed(base, specs.size());
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

// The original bug: seeds were chained through mutable LCG state in loop
// order, so trial k's result depended on how many trials ran before it.
// With counter-based derivation, trial k is identical whether the batch
// runs forward, reversed, or the trial runs alone.
TEST(TrialSeeding, OrderIndependentForwardReversedAlone) {
  const auto specs = letter_sweep_specs("IO", 2, 321);
  auto reversed = specs;
  std::reverse(reversed.begin(), reversed.end());

  const auto forward_results = run_trials(specs, 1);
  const auto reversed_results = run_trials(reversed, 1);

  ASSERT_EQ(forward_results.size(), 4u);
  for (std::size_t k = 0; k < specs.size(); ++k) {
    // Same trial, opposite batch position.
    EXPECT_TRUE(same_outcome(forward_results[k],
                             reversed_results[specs.size() - 1 - k]))
        << "trial " << k << " depends on execution order";
  }
  // And alone, outside any batch.
  const auto alone = run_trial(specs[2].text, specs[2].cfg);
  EXPECT_TRUE(same_outcome(forward_results[2], alone));
}

TEST(TrialSeeding, LetterAccuracyTrialsMatchStandaloneRuns) {
  TrialConfig cfg;
  cfg.system = System::kPolarDraw;
  cfg.seed = 321;
  std::vector<TrialResult> results;
  letter_accuracy("IO", 2, cfg, nullptr, 1, &results);
  ASSERT_EQ(results.size(), 4u);
  // Trial 3 is ("O", rep 1): reproduce it alone from the same base seed.
  TrialConfig alone_cfg = cfg;
  alone_cfg.seed = trial_seed(cfg.seed, 3);
  EXPECT_TRUE(same_outcome(results[3], run_trial("O", alone_cfg)));
}

// The satellite determinism test: the same 26-letter sweep at 1, 2 and 8
// threads must give identical accuracy, confusion matrix, and per-trial
// Procrustes distances.
TEST(BatchHarness, TwentySixLetterSweepIdenticalAt1_2_8Threads) {
  const std::string alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  TrialConfig cfg;
  cfg.system = System::kPolarDraw;
  cfg.seed = 777;

  struct Sweep {
    double accuracy;
    recognition::ConfusionMatrix cm;
    std::vector<TrialResult> results;
  };
  Sweep sweeps[3];
  const int thread_counts[3] = {1, 2, 8};
  for (int s = 0; s < 3; ++s) {
    sweeps[s].accuracy = letter_accuracy(alphabet, 1, cfg, &sweeps[s].cm,
                                         thread_counts[s], &sweeps[s].results);
  }

  for (int s = 1; s < 3; ++s) {
    EXPECT_EQ(sweeps[s].accuracy, sweeps[0].accuracy)
        << "accuracy differs at " << thread_counts[s] << " threads";
    for (char truth : alphabet) {
      for (char predicted : alphabet) {
        EXPECT_EQ(sweeps[s].cm.count(truth, predicted),
                  sweeps[0].cm.count(truth, predicted))
            << "confusion cell (" << truth << "," << predicted
            << ") differs at " << thread_counts[s] << " threads";
      }
    }
    ASSERT_EQ(sweeps[s].results.size(), sweeps[0].results.size());
    for (std::size_t k = 0; k < sweeps[0].results.size(); ++k) {
      EXPECT_EQ(sweeps[s].results[k].procrustes_m,
                sweeps[0].results[k].procrustes_m)
          << "Procrustes distance of trial " << k << " differs at "
          << thread_counts[s] << " threads";
    }
  }
}

TEST(BatchHarness, WordAccuracyIdenticalAcrossThreadCounts) {
  TrialConfig cfg;
  cfg.system = System::kPolarDraw;
  cfg.seed = 7000;
  std::vector<TrialResult> serial, threaded;
  const double a = word_accuracy(2, 1, cfg, &serial, 1);
  const double b = word_accuracy(2, 1, cfg, &threaded, 4);
  EXPECT_EQ(a, b);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_TRUE(same_outcome(serial[k], threaded[k])) << "trial " << k;
  }
}

TEST(BatchHarness, TrialsRecordTheirWallTime) {
  TrialConfig cfg;
  cfg.system = System::kPolarDraw;
  cfg.seed = 11;
  const auto res = run_trial("A", cfg);
  EXPECT_GT(res.wall_s, 0.0);
}

}  // namespace
}  // namespace polardraw::eval
