// Tests for the evaluation harness itself: system/layout wiring, trial
// plumbing, and accuracy aggregation.
#include <gtest/gtest.h>

#include "eval/harness.h"

namespace polardraw::eval {
namespace {

TEST(ApplySystemLayout, PolarDrawGetsLinearRig) {
  TrialConfig cfg;
  cfg.system = System::kPolarDraw;
  apply_system_layout(cfg);
  EXPECT_EQ(cfg.scene.layout, sim::RigLayout::kPolarDrawTwoAntenna);
  EXPECT_TRUE(cfg.algo.use_polarization);
  EXPECT_TRUE(cfg.algo.use_phase_direction);
}

TEST(ApplySystemLayout, StrictAblationDisablesBothPaths) {
  TrialConfig cfg;
  cfg.system = System::kPolarDrawNoPol;
  apply_system_layout(cfg);
  EXPECT_FALSE(cfg.algo.use_polarization);
  EXPECT_FALSE(cfg.algo.use_phase_direction);
}

TEST(ApplySystemLayout, CharitableAblationKeepsPhaseDirection) {
  TrialConfig cfg;
  cfg.system = System::kPolarDrawNoPolPhaseDir;
  apply_system_layout(cfg);
  EXPECT_FALSE(cfg.algo.use_polarization);
  EXPECT_TRUE(cfg.algo.use_phase_direction);
}

TEST(ApplySystemLayout, BaselinesGetTheirRigs) {
  TrialConfig cfg;
  cfg.system = System::kTagoram4;
  apply_system_layout(cfg);
  EXPECT_EQ(cfg.scene.layout, sim::RigLayout::kTagoramFourAntenna);
  cfg.system = System::kRfIdraw4;
  apply_system_layout(cfg);
  EXPECT_EQ(cfg.scene.layout, sim::RigLayout::kRfIdrawFourAntenna);
  cfg.system = System::kTagoram2;
  apply_system_layout(cfg);
  EXPECT_EQ(cfg.scene.layout, sim::RigLayout::kTagoramTwoAntenna);
}

TEST(ApplySystemLayout, GammaPropagatesToAlgorithm) {
  TrialConfig cfg;
  cfg.system = System::kPolarDraw;
  cfg.scene.gamma_rad = 0.7;
  apply_system_layout(cfg);
  EXPECT_EQ(cfg.algo.gamma_rad, 0.7);
  EXPECT_EQ(cfg.algo.board_width_m, cfg.scene.board_width_m);
}

TEST(RunTrial, PopulatesAllOutputs) {
  TrialConfig cfg;
  cfg.system = System::kPolarDraw;
  cfg.seed = 71;
  const auto res = run_trial("C", cfg);
  EXPECT_EQ(res.text, "C");
  EXPECT_GT(res.report_count, 100u);
  EXPECT_FALSE(res.trajectory.empty());
  EXPECT_FALSE(res.ground_truth.empty());
  EXPECT_GT(res.procrustes_m, 0.0);
  EXPECT_EQ(res.recognized.size(), 1u);
}

TEST(RunTrial, UnknownCharactersNotCorrect) {
  TrialConfig cfg;
  cfg.system = System::kPolarDraw;
  cfg.seed = 72;
  const auto res = run_trial("7", cfg);
  EXPECT_FALSE(res.all_correct);
  EXPECT_TRUE(res.trajectory.empty());
}

TEST(RunTrial, LowercaseInputJudgedCaseInsensitively) {
  TrialConfig cfg;
  cfg.system = System::kPolarDraw;
  cfg.seed = 73;
  const auto res = run_trial("o", cfg);
  // Recognition output is uppercase; correctness must not depend on the
  // input's case.
  if (res.recognized == "O") {
    EXPECT_TRUE(res.all_correct);
  }
}

TEST(LetterAccuracy, DeterministicForSameConfig) {
  TrialConfig cfg;
  cfg.system = System::kPolarDraw;
  cfg.seed = 74;
  const double a = letter_accuracy("IO", 2, cfg);
  const double b = letter_accuracy("IO", 2, cfg);
  EXPECT_EQ(a, b);
}

TEST(LetterAccuracy, SeedChangesOutcomeStream) {
  TrialConfig a, b;
  a.system = b.system = System::kPolarDraw;
  a.seed = 75;
  b.seed = 76;
  // Different seed chains give different trials; the trajectories differ
  // even if accuracy happens to match, so compare a trajectory.
  const auto ra = run_trial("S", a);
  const auto rb = run_trial("S", b);
  bool differ = ra.trajectory.size() != rb.trajectory.size();
  for (std::size_t i = 0; !differ && i < ra.trajectory.size(); ++i) {
    differ = !(ra.trajectory[i] == rb.trajectory[i]);
  }
  EXPECT_TRUE(differ);
}

TEST(LetterAccuracy, EmptyInputsGiveZero) {
  TrialConfig cfg;
  cfg.system = System::kPolarDraw;
  EXPECT_EQ(letter_accuracy("", 3, cfg), 0.0);
  EXPECT_EQ(letter_accuracy("AB", 0, cfg), 0.0);
}

TEST(TestWords, AllHaveGlyphs) {
  for (std::size_t len = 2; len <= 5; ++len) {
    for (std::size_t i = 0; i < 10; ++i) {
      for (char c : test_word(len, i)) {
        EXPECT_TRUE(handwriting::has_glyph(c)) << c;
      }
    }
  }
}

TEST(TestWords, GroupsAreDistinctWords) {
  for (std::size_t len = 2; len <= 5; ++len) {
    std::set<std::string> unique;
    for (std::size_t i = 0; i < 10; ++i) unique.insert(test_word(len, i));
    EXPECT_EQ(unique.size(), 10u) << "length " << len;
  }
}

}  // namespace
}  // namespace polardraw::eval
