// Live-introspection tests (DESIGN.md section 17): a real SessionServer's
// statusz document, captured mid-decode, must validate against the same
// benchjson schema CI enforces on the bench exports, its per-session
// flags must reflect the server state, and healthz() must trip on each
// documented threshold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/decode_testbed.h"
#include "json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "server/session_server.h"

namespace polardraw::server {
namespace {

using benchjson::parse;
using benchjson::validate_status_json;
using benchjson::Value;
using core::DecodeTestbed;
using core::PolarDrawConfig;
using core::make_decode_testbed;

PolarDrawConfig small_config() {
  PolarDrawConfig cfg;
  cfg.board_width_m = 0.4;
  cfg.board_height_m = 0.3;
  cfg.block_m = 0.01;
  cfg.beam_width = 150;
  return cfg;
}

Value parse_status(const std::string& doc) {
  const auto r = parse(doc);
  EXPECT_TRUE(r.ok) << r.error << "\n" << doc;
  return r.root;
}

TEST(Statusz, MidDecodeDocumentValidatesAgainstSchema) {
  const PolarDrawConfig cfg = small_config();
  const int kPens = 3, kWindows = 20;
  std::vector<DecodeTestbed> pens;
  for (int p = 0; p < kPens; ++p) {
    pens.push_back(
        make_decode_testbed(cfg, kWindows, static_cast<std::uint64_t>(p) + 1));
  }
  SessionServerConfig scfg;
  scfg.stream.lag_windows = 4;
  scfg.n_workers = 2;
  SessionServer server(cfg, pens[0].a1, pens[0].a2, pens[0].antenna_z, scfg);
  for (int p = 0; p < kPens; ++p) {
    server.open(static_cast<SessionId>(p),
                &pens[static_cast<std::size_t>(p)].start);
  }
  std::string mid;
  for (int w = 0; w < kWindows; ++w) {
    for (int p = 0; p < kPens; ++p) {
      server.submit(
          static_cast<SessionId>(p),
          pens[static_cast<std::size_t>(p)].obs[static_cast<std::size_t>(w)],
          /*t_s=*/0.1 * w);
    }
    server.pump();
    if (w == kWindows / 2) mid = server.status();
  }
  std::string end = server.status();

  for (const std::string* doc : {&mid, &end}) {
    const Value root = parse_status(*doc);
    const auto problems = validate_status_json(root);
    EXPECT_TRUE(problems.empty()) << problems.size() << " problems, first: "
                                  << (problems.empty() ? "" : problems[0])
                                  << "\n" << *doc;
  }

  // Spot-check the mid-run content: every session seeded, live rolling
  // stats, and the registry totals present.
  const Value root = parse_status(mid);
  EXPECT_DOUBLE_EQ(root.find("session_count")->number, 3.0);
  const Value* sessions = root.find("sessions");
  ASSERT_EQ(sessions->array.size(), 3u);
  for (const Value& s : sessions->array) {
    EXPECT_TRUE(s.find("seeded")->boolean);
    EXPECT_GT(s.find("submitted")->number, 0.0);
  }
  EXPECT_GT(root.find("rolling")->find("count")->number, 0.0);
  EXPECT_NE(root.find("registry")->find("counters")->find("server.commits"),
            nullptr);

  for (int p = 0; p < kPens; ++p) {
    server.close(static_cast<SessionId>(p));
  }
  // An empty server still emits a valid (zero-session) document.
  const Value empty_root = parse_status(server.status());
  EXPECT_TRUE(validate_status_json(empty_root).empty());
  EXPECT_DOUBLE_EQ(empty_root.find("session_count")->number, 0.0);
}

TEST(Statusz, FlagsReflectBackpressureLagAndStarvation) {
  const PolarDrawConfig cfg = small_config();
  const auto tb = make_decode_testbed(cfg, 20, 5);
  const auto tb2 = make_decode_testbed(cfg, 20, 6);
  SessionServerConfig scfg;
  scfg.stream.lag_windows = 2;
  scfg.n_workers = 1;
  scfg.backpressure_depth = 4;
  scfg.starved_after_s = 1.0;
  SessionServer server(cfg, tb.a1, tb.a2, tb.antenna_z, scfg);
  server.open(1, &tb.start);
  server.open(2, &tb2.start);
  // Session 1: 10 queued observations, never pumped -> mailbox depth 10
  // (> 4, backpressured) and stale at t=0.1 once session 2 reaches t=5.
  for (int w = 0; w < 10; ++w) {
    server.submit(1, tb.obs[static_cast<std::size_t>(w)], /*t_s=*/0.1);
  }
  for (int w = 0; w < 10; ++w) {
    server.submit(2, tb2.obs[static_cast<std::size_t>(w)],
                  /*t_s=*/0.5 * (w + 1));
  }

  const Value root = parse_status(server.status());
  ASSERT_TRUE(validate_status_json(root).empty());
  const Value* sessions = root.find("sessions");
  ASSERT_EQ(sessions->array.size(), 2u);
  const Value& s1 = sessions->array[0];
  const Value& s2 = sessions->array[1];
  EXPECT_DOUBLE_EQ(s1.find("id")->number, 1.0);
  EXPECT_TRUE(s1.find("backpressured")->boolean);
  EXPECT_TRUE(s1.find("starved")->boolean);  // 5.0 - 0.1 > 1.0
  EXPECT_FALSE(s2.find("starved")->boolean);

  const HealthReport unhealthy = server.healthz();
  EXPECT_FALSE(unhealthy.ok);
  EXPECT_NE(std::find(unhealthy.reasons.begin(), unhealthy.reasons.end(),
                      "session_backpressured"),
            unhealthy.reasons.end());
  EXPECT_NE(std::find(unhealthy.reasons.begin(), unhealthy.reasons.end(),
                      "session_starved"),
            unhealthy.reasons.end());

  // Draining the mailboxes clears the backpressure flag.
  server.pump();
  const Value drained = parse_status(server.status());
  EXPECT_FALSE(drained.find("sessions")->array[0]
                   .find("backpressured")->boolean);
  server.close(1);
  server.close(2);
}

TEST(Statusz, HealthzPassesWhenQuietAndTripsOnLatencySlo) {
  const PolarDrawConfig cfg = small_config();
  const auto tb = make_decode_testbed(cfg, 12, 7);

  // Generous thresholds: a freshly pumped single session is healthy.
  SessionServerConfig healthy_cfg;
  healthy_cfg.stream.lag_windows = 2;
  healthy_cfg.n_workers = 1;
  {
    SessionServer server(cfg, tb.a1, tb.a2, tb.antenna_z, healthy_cfg);
    EXPECT_TRUE(server.healthz().ok);  // no sessions, no latency samples
    server.open(1, &tb.start);
    for (const auto& o : tb.obs) server.submit(1, o, /*t_s=*/0.0);
    server.pump();
    const HealthReport report = server.healthz();
    EXPECT_TRUE(report.ok) << (report.reasons.empty() ? ""
                                                      : report.reasons[0]);
    server.close(1);
  }

  // An impossible SLO (p99 must be negative) trips as soon as the rolling
  // window holds any sample at all.
  SessionServerConfig strict_cfg = healthy_cfg;
  strict_cfg.healthz_p99_s = -1.0;
  {
    SessionServer server(cfg, tb.a1, tb.a2, tb.antenna_z, strict_cfg);
    server.open(1, &tb.start);
    for (const auto& o : tb.obs) server.submit(1, o, /*t_s=*/0.0);
    server.pump();
    const HealthReport report = server.healthz();
    EXPECT_FALSE(report.ok);
    ASSERT_FALSE(report.reasons.empty());
    EXPECT_EQ(report.reasons[0], "rolling_p99_above_threshold");
    server.close(1);
  }
}

TEST(Statusz, LogCountersSurfaceInTheDocument) {
  // Wire the global logger to a buffer: session open/close events emit,
  // and the statusz log block carries the running totals.
  std::ostringstream sink;
  obs::Logger& lg = obs::Logger::global();
  const std::uint64_t before = lg.emitted_total();
  lg.set_sink(&sink);

  const PolarDrawConfig cfg = small_config();
  const auto tb = make_decode_testbed(cfg, 8, 3);
  SessionServer server(cfg, tb.a1, tb.a2, tb.antenna_z);
  server.open(1, &tb.start);
  for (const auto& o : tb.obs) server.submit(1, o, /*t_s=*/0.0);
  server.pump();
  const Value root = parse_status(server.status());
  server.close(1);
  lg.set_sink(nullptr);

  EXPECT_GT(lg.emitted_total(), before);
  ASSERT_NE(root.find("log"), nullptr);
  EXPECT_GE(root.find("log")->find("emitted")->number, 1.0);
  // The open event is one JSON line in the sink.
  EXPECT_NE(sink.str().find("\"event\":\"server.session_open\""),
            std::string::npos);
  EXPECT_NE(sink.str().find("\"event\":\"server.session_close\""),
            std::string::npos);
}

}  // namespace
}  // namespace polardraw::server
