// Session-server determinism and lifecycle tests (DESIGN.md §13).
//
// The load pattern mirrors bench_streaming: N synthetic pens from the
// decode testbed, reports interleaved round-robin, pump() called on a
// fixed cadence. The pinned contracts: interleaving changes nothing (each
// session decodes exactly as it would in isolation), worker count changes
// nothing (1 worker and 8 produce bit-identical trajectories and counter
// aggregates), close() flushes the batch-equivalent tail, and the Eq. 10
// azimuth correction is applied on close.
#include "server/session_server.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/decode_testbed.h"
#include "obs/metrics.h"

namespace polardraw::server {
namespace {

using core::DecodeTestbed;
using core::HmmTracker;
using core::PolarDrawConfig;
using core::make_decode_testbed;

PolarDrawConfig small_config() {
  PolarDrawConfig cfg;
  cfg.board_width_m = 0.4;
  cfg.board_height_m = 0.3;
  cfg.block_m = 0.01;
  cfg.beam_width = 150;
  return cfg;
}

/// Runs `n_pens` testbed pens through a server round-robin, pumping every
/// `pump_every` submissions, and returns each pen's closed trajectory in
/// id order.
std::vector<std::vector<Vec2>> run_load(const PolarDrawConfig& cfg,
                                        int n_pens, int n_windows,
                                        std::size_t lag, int n_workers,
                                        std::size_t pump_every) {
  std::vector<DecodeTestbed> pens;
  for (int p = 0; p < n_pens; ++p) {
    pens.push_back(
        make_decode_testbed(cfg, n_windows, static_cast<std::uint64_t>(p) + 1));
  }
  SessionServerConfig scfg;
  scfg.stream.lag_windows = lag;
  scfg.n_workers = n_workers;
  SessionServer server(cfg, pens[0].a1, pens[0].a2, pens[0].antenna_z, scfg);
  for (int p = 0; p < n_pens; ++p) {
    server.open(static_cast<SessionId>(p), &pens[static_cast<std::size_t>(p)].start);
  }
  std::size_t since_pump = 0;
  for (int w = 0; w < n_windows; ++w) {
    for (int p = 0; p < n_pens; ++p) {
      server.submit(static_cast<SessionId>(p),
                    pens[static_cast<std::size_t>(p)].obs[static_cast<std::size_t>(w)]);
      if (++since_pump == pump_every) {
        server.pump();
        since_pump = 0;
      }
    }
  }
  server.pump();
  std::vector<std::vector<Vec2>> out;
  for (int p = 0; p < n_pens; ++p) {
    out.push_back(server.close(static_cast<SessionId>(p)));
  }
  return out;
}

void expect_bit_identical(const std::vector<Vec2>& a,
                          const std::vector<Vec2>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x) << "position " << i;
    EXPECT_EQ(a[i].y, b[i].y) << "position " << i;
  }
}

TEST(SessionServer, InterleavedSessionsMatchIsolatedBatchDecode) {
  // Full lag: every session must close to exactly its batch decode even
  // though thousands of foreign windows arrived in between.
  const PolarDrawConfig cfg = small_config();
  const int kPens = 6, kWindows = 40;
  const auto trajs = run_load(cfg, kPens, kWindows, /*lag=*/kWindows + 1,
                              /*n_workers=*/4, /*pump_every=*/7);
  ASSERT_EQ(trajs.size(), static_cast<std::size_t>(kPens));
  for (int p = 0; p < kPens; ++p) {
    const auto tb =
        make_decode_testbed(cfg, kWindows, static_cast<std::uint64_t>(p) + 1);
    const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
    expect_bit_identical(trajs[static_cast<std::size_t>(p)],
                         hmm.decode(tb.obs, &tb.start));
  }
}

TEST(SessionServer, WorkerCountDoesNotChangeTrajectoriesOrAggregates) {
  const PolarDrawConfig cfg = small_config();
  obs::Registry& reg = obs::Registry::global();
  reg.set_enabled(true);

  reg.reset();
  const auto one = run_load(cfg, 8, 30, /*lag=*/6, /*n_workers=*/1,
                            /*pump_every=*/5);
  const obs::Snapshot snap1 = reg.snapshot();

  reg.reset();
  const auto eight = run_load(cfg, 8, 30, /*lag=*/6, /*n_workers=*/8,
                              /*pump_every=*/5);
  const obs::Snapshot snap8 = reg.snapshot();

  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t p = 0; p < one.size(); ++p) {
    expect_bit_identical(one[p], eight[p]);
  }
  for (const char* name :
       {"server.observations", "server.commits", "server.sessions_opened",
        "server.sessions_closed", "hmm.windows", "hmm.beam_expansions",
        "hmm.beam_nodes"}) {
    EXPECT_EQ(snap1.counter(name), snap8.counter(name)) << name;
  }
  const auto* hist1 = snap1.histogram("server.push_to_commit_s");
  const auto* hist8 = snap8.histogram("server.push_to_commit_s");
  ASSERT_NE(hist1, nullptr);
  ASSERT_NE(hist8, nullptr);
  // Latency *values* are wall-clock noise, but the number of latency
  // observations is part of the deterministic commit schedule.
  EXPECT_EQ(hist1->count, hist8->count);

  reg.reset();
  reg.set_enabled(false);
}

TEST(SessionServer, CloseFlushesBatchEquivalentTail) {
  const PolarDrawConfig cfg = small_config();
  const int kWindows = 30;
  const auto tb = make_decode_testbed(cfg, kWindows, 42);
  SessionServerConfig scfg;
  scfg.stream.lag_windows = 8;
  scfg.n_workers = 2;
  SessionServer server(cfg, tb.a1, tb.a2, tb.antenna_z, scfg);
  server.open(7, &tb.start);
  for (const auto& o : tb.obs) server.submit(7, o);
  server.pump();
  // With lag 8, the last 8 positions are still pending at pump time...
  const std::size_t committed_early = server.committed(7).size();
  EXPECT_EQ(committed_early, static_cast<std::size_t>(kWindows) + 1 - 8);
  // ...and close() must deliver the full trajectory.
  const auto traj = server.close(7);
  EXPECT_EQ(traj.size(), static_cast<std::size_t>(kWindows) + 1);
  EXPECT_EQ(server.session_count(), 0u);
}

TEST(SessionServer, CloseDrainsUnpumpedMailbox) {
  // Observations still queued in the mailbox at close() time are part of
  // the stream: close() must push them through the decoder before
  // finishing, so the trajectory does not depend on pump timing. At full
  // lag the result must equal the batch decode even though only one
  // mid-stream pump ever ran.
  const PolarDrawConfig cfg = small_config();
  const int kWindows = 30;
  const auto tb = make_decode_testbed(cfg, kWindows, 11);
  SessionServerConfig scfg;
  scfg.stream.lag_windows = static_cast<std::size_t>(kWindows) + 1;
  scfg.n_workers = 2;
  SessionServer server(cfg, tb.a1, tb.a2, tb.antenna_z, scfg);
  server.open(3, &tb.start);
  for (int w = 0; w < kWindows; ++w) {
    server.submit(3, tb.obs[static_cast<std::size_t>(w)]);
    if (w == kWindows / 2) server.pump();
  }
  // No final pump: the second half of the stream is still in the mailbox.
  const auto traj = server.close(3);
  const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  expect_bit_identical(traj, hmm.decode(tb.obs, &tb.start));
}

TEST(SessionServer, AzimuthCorrectionAppliedOnClose) {
  const PolarDrawConfig cfg = small_config();
  const auto tb = make_decode_testbed(cfg, 20, 5);
  SessionServerConfig scfg;
  scfg.stream.lag_windows = 32;
  scfg.n_workers = 1;
  SessionServer server(cfg, tb.a1, tb.a2, tb.antenna_z, scfg);
  server.open(1, &tb.start);
  for (const auto& o : tb.obs) server.submit(1, o);
  server.accumulate_azimuth_correction(1, 0.2);
  server.accumulate_azimuth_correction(1, 0.1);
  server.pump();
  const auto traj = server.close(1);

  const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  // 0.2 + 0.1 on purpose: the server saw two increments, and the sum is
  // not the double literal 0.3.
  const auto expected =
      HmmTracker::rotate_trajectory(hmm.decode(tb.obs, &tb.start), 0.2 + 0.1);
  expect_bit_identical(traj, expected);
}

TEST(SessionServer, UnknownSessionIsRejected) {
  const PolarDrawConfig cfg = small_config();
  SessionServer server(cfg, {0.1, 0.35}, {0.3, 0.35}, 0.12);
  EXPECT_FALSE(server.submit(99, core::TrackObservation{}));
  EXPECT_FALSE(server.accumulate_azimuth_correction(99, 0.1));
  EXPECT_TRUE(server.committed(99).empty());
  EXPECT_TRUE(server.close(99).empty());
  EXPECT_EQ(server.pump(), 0u);
}

}  // namespace
}  // namespace polardraw::server
