// Session-server determinism and lifecycle tests (DESIGN.md §13).
//
// The load pattern mirrors bench_streaming: N synthetic pens from the
// decode testbed, reports interleaved round-robin, pump() called on a
// fixed cadence. The pinned contracts: interleaving changes nothing (each
// session decodes exactly as it would in isolation), worker count changes
// nothing (1 worker and 8 produce bit-identical trajectories and counter
// aggregates), close() flushes the batch-equivalent tail, and the Eq. 10
// azimuth correction is applied on close.
#include "server/session_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/decode_testbed.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "rfid/reader.h"

namespace polardraw::server {
namespace {

using core::DecodeTestbed;
using core::HmmTracker;
using core::PolarDrawConfig;
using core::make_decode_testbed;

PolarDrawConfig small_config() {
  PolarDrawConfig cfg;
  cfg.board_width_m = 0.4;
  cfg.board_height_m = 0.3;
  cfg.block_m = 0.01;
  cfg.beam_width = 150;
  return cfg;
}

/// Runs `n_pens` testbed pens through a server round-robin, pumping every
/// `pump_every` submissions, and returns each pen's closed trajectory in
/// id order.
std::vector<std::vector<Vec2>> run_load(const PolarDrawConfig& cfg,
                                        int n_pens, int n_windows,
                                        std::size_t lag, int n_workers,
                                        std::size_t pump_every) {
  std::vector<DecodeTestbed> pens;
  for (int p = 0; p < n_pens; ++p) {
    pens.push_back(
        make_decode_testbed(cfg, n_windows, static_cast<std::uint64_t>(p) + 1));
  }
  SessionServerConfig scfg;
  scfg.stream.lag_windows = lag;
  scfg.n_workers = n_workers;
  SessionServer server(cfg, pens[0].a1, pens[0].a2, pens[0].antenna_z, scfg);
  for (int p = 0; p < n_pens; ++p) {
    server.open(static_cast<SessionId>(p), &pens[static_cast<std::size_t>(p)].start);
  }
  std::size_t since_pump = 0;
  for (int w = 0; w < n_windows; ++w) {
    for (int p = 0; p < n_pens; ++p) {
      server.submit(static_cast<SessionId>(p),
                    pens[static_cast<std::size_t>(p)].obs[static_cast<std::size_t>(w)]);
      if (++since_pump == pump_every) {
        server.pump();
        since_pump = 0;
      }
    }
  }
  server.pump();
  std::vector<std::vector<Vec2>> out;
  for (int p = 0; p < n_pens; ++p) {
    out.push_back(server.close(static_cast<SessionId>(p)));
  }
  return out;
}

void expect_bit_identical(const std::vector<Vec2>& a,
                          const std::vector<Vec2>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x) << "position " << i;
    EXPECT_EQ(a[i].y, b[i].y) << "position " << i;
  }
}

TEST(SessionServer, InterleavedSessionsMatchIsolatedBatchDecode) {
  // Full lag: every session must close to exactly its batch decode even
  // though thousands of foreign windows arrived in between.
  const PolarDrawConfig cfg = small_config();
  const int kPens = 6, kWindows = 40;
  const auto trajs = run_load(cfg, kPens, kWindows, /*lag=*/kWindows + 1,
                              /*n_workers=*/4, /*pump_every=*/7);
  ASSERT_EQ(trajs.size(), static_cast<std::size_t>(kPens));
  for (int p = 0; p < kPens; ++p) {
    const auto tb =
        make_decode_testbed(cfg, kWindows, static_cast<std::uint64_t>(p) + 1);
    const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
    expect_bit_identical(trajs[static_cast<std::size_t>(p)],
                         hmm.decode(tb.obs, &tb.start));
  }
}

TEST(SessionServer, WorkerCountDoesNotChangeTrajectoriesOrAggregates) {
  const PolarDrawConfig cfg = small_config();
  obs::Registry& reg = obs::Registry::global();
  reg.set_enabled(true);

  reg.reset();
  const auto one = run_load(cfg, 8, 30, /*lag=*/6, /*n_workers=*/1,
                            /*pump_every=*/5);
  const obs::Snapshot snap1 = reg.snapshot();

  reg.reset();
  const auto eight = run_load(cfg, 8, 30, /*lag=*/6, /*n_workers=*/8,
                              /*pump_every=*/5);
  const obs::Snapshot snap8 = reg.snapshot();

  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t p = 0; p < one.size(); ++p) {
    expect_bit_identical(one[p], eight[p]);
  }
  for (const char* name :
       {"server.observations", "server.commits", "server.sessions_opened",
        "server.sessions_closed", "hmm.windows", "hmm.beam_expansions",
        "hmm.beam_nodes"}) {
    EXPECT_EQ(snap1.counter(name), snap8.counter(name)) << name;
  }
  const auto* hist1 = snap1.histogram("server.push_to_commit_s");
  const auto* hist8 = snap8.histogram("server.push_to_commit_s");
  ASSERT_NE(hist1, nullptr);
  ASSERT_NE(hist8, nullptr);
  // Latency *values* are wall-clock noise, but the number of latency
  // observations is part of the deterministic commit schedule.
  EXPECT_EQ(hist1->count, hist8->count);

  reg.reset();
  reg.set_enabled(false);
}

TEST(SessionServer, CloseFlushesBatchEquivalentTail) {
  const PolarDrawConfig cfg = small_config();
  const int kWindows = 30;
  const auto tb = make_decode_testbed(cfg, kWindows, 42);
  SessionServerConfig scfg;
  scfg.stream.lag_windows = 8;
  scfg.n_workers = 2;
  SessionServer server(cfg, tb.a1, tb.a2, tb.antenna_z, scfg);
  server.open(7, &tb.start);
  for (const auto& o : tb.obs) server.submit(7, o);
  server.pump();
  // With lag 8, the last 8 positions are still pending at pump time...
  const std::size_t committed_early = server.committed(7).size();
  EXPECT_EQ(committed_early, static_cast<std::size_t>(kWindows) + 1 - 8);
  // ...and close() must deliver the full trajectory.
  const auto traj = server.close(7);
  EXPECT_EQ(traj.size(), static_cast<std::size_t>(kWindows) + 1);
  EXPECT_EQ(server.session_count(), 0u);
}

TEST(SessionServer, CloseDrainsUnpumpedMailbox) {
  // Observations still queued in the mailbox at close() time are part of
  // the stream: close() must push them through the decoder before
  // finishing, so the trajectory does not depend on pump timing. At full
  // lag the result must equal the batch decode even though only one
  // mid-stream pump ever ran.
  const PolarDrawConfig cfg = small_config();
  const int kWindows = 30;
  const auto tb = make_decode_testbed(cfg, kWindows, 11);
  SessionServerConfig scfg;
  scfg.stream.lag_windows = static_cast<std::size_t>(kWindows) + 1;
  scfg.n_workers = 2;
  SessionServer server(cfg, tb.a1, tb.a2, tb.antenna_z, scfg);
  server.open(3, &tb.start);
  for (int w = 0; w < kWindows; ++w) {
    server.submit(3, tb.obs[static_cast<std::size_t>(w)]);
    if (w == kWindows / 2) server.pump();
  }
  // No final pump: the second half of the stream is still in the mailbox.
  const auto traj = server.close(3);
  const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  expect_bit_identical(traj, hmm.decode(tb.obs, &tb.start));
}

TEST(SessionServer, AzimuthCorrectionAppliedOnClose) {
  const PolarDrawConfig cfg = small_config();
  const auto tb = make_decode_testbed(cfg, 20, 5);
  SessionServerConfig scfg;
  scfg.stream.lag_windows = 32;
  scfg.n_workers = 1;
  SessionServer server(cfg, tb.a1, tb.a2, tb.antenna_z, scfg);
  server.open(1, &tb.start);
  for (const auto& o : tb.obs) server.submit(1, o);
  server.accumulate_azimuth_correction(1, 0.2);
  server.accumulate_azimuth_correction(1, 0.1);
  server.pump();
  const auto traj = server.close(1);

  const HmmTracker hmm(cfg, tb.a1, tb.a2, tb.antenna_z);
  // 0.2 + 0.1 on purpose: the server saw two increments, and the sum is
  // not the double literal 0.3.
  const auto expected =
      HmmTracker::rotate_trajectory(hmm.decode(tb.obs, &tb.start), 0.2 + 0.1);
  expect_bit_identical(traj, expected);
}

TEST(SessionServer, UnknownSessionIsRejected) {
  const PolarDrawConfig cfg = small_config();
  SessionServer server(cfg, {0.1, 0.35}, {0.3, 0.35}, 0.12);
  EXPECT_FALSE(server.submit(99, core::TrackObservation{}));
  EXPECT_FALSE(server.accumulate_azimuth_correction(99, 0.1));
  EXPECT_TRUE(server.committed(99).empty());
  EXPECT_TRUE(server.close(99).empty());
  EXPECT_EQ(server.pump(), 0u);
}

// --- Multi-pen fuzz: associator + ingest, randomized interleaved streams --

/// Randomized multi-tag report stream with everything a contended reader
/// throws at the association layer: tags arriving and leaving mid-run
/// (tag 0 leaves and returns -> a second generation), jittered read
/// arrivals with collision-shaped bursts of silence, per-dwell frequency
/// hops with stable per-channel offsets, and occasional spurious phase
/// reads. Deterministic for a given seed.
rfid::TagReportStream make_fuzz_stream(std::uint64_t seed, int n_tags,
                                       double duration_s) {
  Rng rng(seed);
  constexpr double kDwell = 0.4;
  constexpr int kChannels = 20;
  rfid::TagReportStream reports;
  for (int tag = 0; tag < n_tags; ++tag) {
    const auto epc = static_cast<std::uint32_t>(0x100 + tag);
    // Presence intervals: tag 0 always churns (leaves + returns); the
    // others get one randomized interval each.
    std::vector<std::pair<double, double>> presence;
    if (tag == 0) {
      presence.push_back({0.0, 0.35 * duration_s});
      presence.push_back({0.65 * duration_s, duration_s});
    } else {
      const double on = rng.uniform(0.0, 0.3) * duration_s;
      const double off = rng.uniform(0.7, 1.0) * duration_s;
      presence.push_back({on, off});
    }
    const double phase0[2] = {rng.uniform(0.0, kTwoPi),
                              rng.uniform(0.0, kTwoPi)};
    const double slew[2] = {rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4)};
    const double rss0[2] = {-42.0 - rng.uniform(0.0, 6.0),
                            -48.0 - rng.uniform(0.0, 6.0)};
    for (const auto& [on, off] : presence) {
      for (double t = on; t < off;) {
        const int ant = rng.chance(0.5) ? 0 : 1;
        const int dwell = static_cast<int>(t / kDwell);
        const int channel = (dwell * 7 + tag * 3) % kChannels;
        rfid::TagReport r;
        r.epc = epc;
        r.timestamp_s = t;
        r.antenna_id = ant;
        r.channel = channel;
        double phase = phase0[ant] + slew[ant] * t +
                       rfid::Reader::hop_channel_offset_rad(channel);
        if (rng.chance(0.02)) phase += kPi;  // spurious read
        r.phase_rad = wrap_2pi(phase);
        r.rss_dbm = rss0[ant] + 2.5 * std::sin(kTwoPi * t / 1.3 +
                                               (ant == 0 ? 0.0 : kPi)) +
                    rng.gaussian(0.0, 0.3);
        reports.push_back(r);
        // Jittered arrivals; occasional collision-shaped silence burst.
        t += rng.chance(0.05) ? rng.uniform(0.12, 0.2)
                              : rng.uniform(0.01, 0.04);
      }
    }
  }
  std::stable_sort(reports.begin(), reports.end(),
                   [](const rfid::TagReport& a, const rfid::TagReport& b) {
                     return a.timestamp_s < b.timestamp_s ||
                            (a.timestamp_s == b.timestamp_s && a.epc < b.epc);
                   });
  return reports;
}

core::PhaseCalibration fuzz_calibration() {
  core::PhaseCalibration cal;
  cal.channel_offsets_rad.resize(20);
  for (int c = 0; c < 20; ++c) {
    cal.channel_offsets_rad[static_cast<std::size_t>(c)] =
        rfid::Reader::hop_channel_offset_rad(c);
  }
  return cal;
}

/// Drives the full multi-pen path -- report stream -> associator ->
/// SessionServer::ingest -> pump on a cadence -> flush -- and returns the
/// closed trajectories keyed by session id.
std::map<SessionId, std::vector<Vec2>> run_fuzz_load(
    const PolarDrawConfig& cfg, const rfid::TagReportStream& stream,
    int n_workers, std::size_t pump_every) {
  core::AssociatorConfig acfg;
  acfg.idle_close_s = 0.25;
  const core::PhaseCalibration cal = fuzz_calibration();
  core::TagTrackAssociator assoc(cfg, acfg, &cal);
  SessionServerConfig scfg;
  scfg.n_workers = n_workers;
  const Vec2 a1{cfg.board_width_m * 0.25, cfg.board_height_m + 0.05};
  const Vec2 a2{cfg.board_width_m * 0.75, cfg.board_height_m + 0.05};
  SessionServer server(cfg, a1, a2, 0.12, scfg);
  std::vector<SessionServer::ClosedSession> closed;
  std::size_t since_pump = 0;
  for (const auto& r : stream) {
    server.ingest(assoc.push(r), &closed);
    if (++since_pump == pump_every) {
      server.pump();
      since_pump = 0;
    }
  }
  server.ingest(assoc.flush(), &closed);
  EXPECT_EQ(server.session_count(), 0u);
  std::map<SessionId, std::vector<Vec2>> out;
  for (auto& c : closed) out[c.id] = std::move(c.trajectory);
  return out;
}

TEST(MultipenFuzz, WorkerCountAndPumpCadenceBitIdentical) {
  // The end-to-end multi-pen contract: for a randomized interleaved
  // stream (churn, collision gaps, hop boundaries, spurious reads), the
  // closed trajectories are a pure function of the report stream --
  // 1 worker pumping rarely and 8 workers pumping often must agree bit
  // for bit, per session, and on the deterministic counter aggregates.
  const PolarDrawConfig cfg = small_config();
  obs::Registry& reg = obs::Registry::global();
  reg.set_enabled(true);

  for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
    const auto stream = make_fuzz_stream(seed, /*n_tags=*/6,
                                         /*duration_s=*/3.0);
    ASSERT_GT(stream.size(), 300u) << "seed " << seed;

    reg.reset();
    const auto one = run_fuzz_load(cfg, stream, /*n_workers=*/1,
                                   /*pump_every=*/97);
    const obs::Snapshot snap1 = reg.snapshot();
    reg.reset();
    const auto eight = run_fuzz_load(cfg, stream, /*n_workers=*/8,
                                     /*pump_every=*/13);
    const obs::Snapshot snap8 = reg.snapshot();

    // Tag 0's churn forces a second generation: strictly more sessions
    // than tags.
    ASSERT_GT(one.size(), 6u) << "seed " << seed;
    ASSERT_EQ(one.size(), eight.size()) << "seed " << seed;
    for (const auto& [id, traj] : one) {
      const auto it = eight.find(id);
      ASSERT_NE(it, eight.end()) << "seed " << seed << " session " << id;
      expect_bit_identical(traj, it->second);
      EXPECT_FALSE(traj.empty()) << "seed " << seed << " session " << id;
    }
    for (const char* name :
         {"assoc.sessions_opened", "assoc.sessions_closed",
          "assoc.observations", "assoc.phase_rejected", "server.observations",
          "server.sessions_closed", "hmm.windows"}) {
      EXPECT_EQ(snap1.counter(name), snap8.counter(name))
          << name << " seed " << seed;
    }
  }
  reg.reset();
  reg.set_enabled(false);
}

TEST(MultipenFuzz, IngestMatchesManualEventApplication) {
  // ingest() is pure glue: applying the same event batch by hand through
  // open/submit/accumulate/close must give identical trajectories, and
  // the returned count must equal the observation events submitted.
  const PolarDrawConfig cfg = small_config();
  const auto stream = make_fuzz_stream(7, /*n_tags=*/4, /*duration_s=*/2.0);
  core::AssociatorConfig acfg;
  acfg.idle_close_s = 0.25;
  const core::PhaseCalibration cal = fuzz_calibration();
  core::TagTrackAssociator assoc(cfg, acfg, &cal);
  auto events = assoc.push(stream);
  const auto tail = assoc.flush();
  events.insert(events.end(), tail.begin(), tail.end());

  const Vec2 a1{cfg.board_width_m * 0.25, cfg.board_height_m + 0.05};
  const Vec2 a2{cfg.board_width_m * 0.75, cfg.board_height_m + 0.05};
  SessionServer via_ingest(cfg, a1, a2, 0.12);
  std::vector<SessionServer::ClosedSession> closed;
  const std::size_t submitted = via_ingest.ingest(events, &closed);

  SessionServer manual(cfg, a1, a2, 0.12);
  std::map<SessionId, std::vector<Vec2>> expected;
  std::size_t observation_events = 0;
  for (const auto& e : events) {
    switch (e.type) {
      case core::PenEventType::kOpen:
        manual.open(e.session_id);
        break;
      case core::PenEventType::kObservation:
        EXPECT_TRUE(manual.submit(e.session_id, e.obs));
        ++observation_events;
        break;
      case core::PenEventType::kAzimuthCorrection:
        EXPECT_TRUE(manual.accumulate_azimuth_correction(
            e.session_id, e.azimuth_delta_rad));
        break;
      case core::PenEventType::kClose:
        expected[e.session_id] = manual.close(e.session_id);
        break;
    }
  }
  EXPECT_EQ(submitted, observation_events);
  ASSERT_EQ(closed.size(), expected.size());
  for (const auto& c : closed) {
    const auto it = expected.find(c.id);
    ASSERT_NE(it, expected.end()) << "session " << c.id;
    expect_bit_identical(c.trajectory, it->second);
    // The associator packs the EPC into the low session-id bits.
    EXPECT_EQ(c.epc, static_cast<std::uint32_t>(c.id & 0xFFFFFFFFull));
  }
}

TEST(MultipenFuzz, SoakSubmitConcurrentWithPump) {
  // The documented-legal race: submit()/accumulate_azimuth_correction()
  // from an ingest thread while the control thread pump()s. Per-session
  // mailbox mutexes order the two, so the result must still equal the
  // batch decode. Run under TSan in CI (multi-pen soak step).
  const PolarDrawConfig cfg = small_config();
  const int kPens = 4, kWindows = 40;
  std::vector<DecodeTestbed> pens;
  for (int p = 0; p < kPens; ++p) {
    pens.push_back(
        make_decode_testbed(cfg, kWindows, static_cast<std::uint64_t>(p) + 21));
  }
  SessionServerConfig scfg;
  scfg.stream.lag_windows = 6;
  scfg.n_workers = 4;
  SessionServer server(cfg, pens[0].a1, pens[0].a2, pens[0].antenna_z, scfg);
  for (int p = 0; p < kPens; ++p) {
    server.open(static_cast<SessionId>(p),
                &pens[static_cast<std::size_t>(p)].start);
  }
  std::atomic<bool> done{false};
  std::thread ingest([&] {
    for (int w = 0; w < kWindows; ++w) {
      for (int p = 0; p < kPens; ++p) {
        server.submit(
            static_cast<SessionId>(p),
            pens[static_cast<std::size_t>(p)].obs[static_cast<std::size_t>(w)]);
      }
      server.accumulate_azimuth_correction(0, 0.01);
    }
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    server.pump();
  }
  ingest.join();
  server.pump();

  // Reference: the same server config driven sequentially. The decode is a
  // sequential function of each session's observation stream, so pump
  // timing (and the concurrent ingest) must not change the result.
  SessionServer reference(cfg, pens[0].a1, pens[0].a2, pens[0].antenna_z,
                          scfg);
  for (int p = 0; p < kPens; ++p) {
    reference.open(static_cast<SessionId>(p),
                   &pens[static_cast<std::size_t>(p)].start);
  }
  for (int w = 0; w < kWindows; ++w) {
    for (int p = 0; p < kPens; ++p) {
      reference.submit(
          static_cast<SessionId>(p),
          pens[static_cast<std::size_t>(p)].obs[static_cast<std::size_t>(w)]);
    }
    reference.accumulate_azimuth_correction(0, 0.01);
    if (w % 5 == 0) reference.pump();
  }
  reference.pump();
  for (int p = 0; p < kPens; ++p) {
    expect_bit_identical(server.close(static_cast<SessionId>(p)),
                         reference.close(static_cast<SessionId>(p)));
  }
}

TEST(MultipenFuzz, SoakStatusAndSnapshotsConcurrentWithDecode) {
  // Live-introspection race soak (runs under TSan in CI): one thread
  // ingests, 8 workers pump, and a reader thread hammers status(),
  // healthz(), and Registry snapshots the whole time. The mid-flight
  // reads must be safe, and the final quiescent snapshot must be
  // bit-identical to a run that never took a concurrent snapshot.
  const core::PolarDrawConfig cfg = small_config();
  const int kPens = 4, kWindows = 40;
  obs::Registry& reg = obs::Registry::global();
  reg.set_enabled(true);

  std::vector<DecodeTestbed> pens;
  for (int p = 0; p < kPens; ++p) {
    pens.push_back(
        make_decode_testbed(cfg, kWindows, static_cast<std::uint64_t>(p) + 31));
  }
  SessionServerConfig scfg;
  scfg.stream.lag_windows = 6;
  scfg.n_workers = 8;

  const auto drive = [&](SessionServer& server, bool concurrent_reads) {
    for (int p = 0; p < kPens; ++p) {
      server.open(static_cast<SessionId>(p),
                  &pens[static_cast<std::size_t>(p)].start);
    }
    std::atomic<bool> done{false};
    std::thread reader;
    if (concurrent_reads) {
      reader = std::thread([&] {
        std::size_t reads = 0;
        while (!done.load(std::memory_order_acquire)) {
          const std::string doc = server.status();
          EXPECT_NE(doc.find("polardraw.statusz.v1"), std::string::npos);
          (void)server.healthz();
          const obs::Snapshot snap = reg.snapshot();
          EXPECT_GE(snap.counters.size(), 0u);
          ++reads;
        }
        EXPECT_GT(reads, 0u);
      });
    }
    for (int w = 0; w < kWindows; ++w) {
      for (int p = 0; p < kPens; ++p) {
        server.submit(
            static_cast<SessionId>(p),
            pens[static_cast<std::size_t>(p)].obs[static_cast<std::size_t>(w)],
            /*t_s=*/0.1 * w);
      }
      server.pump();
    }
    done.store(true, std::memory_order_release);
    if (reader.joinable()) reader.join();
    std::vector<std::vector<Vec2>> out;
    for (int p = 0; p < kPens; ++p) {
      out.push_back(server.close(static_cast<SessionId>(p)));
    }
    return out;
  };

  reg.reset();
  SessionServer soaked(cfg, pens[0].a1, pens[0].a2, pens[0].antenna_z, scfg);
  const auto with_reads = drive(soaked, /*concurrent_reads=*/true);
  const obs::Snapshot snap_soaked = reg.snapshot();

  reg.reset();
  SessionServer quiet(cfg, pens[0].a1, pens[0].a2, pens[0].antenna_z, scfg);
  const auto without_reads = drive(quiet, /*concurrent_reads=*/false);
  const obs::Snapshot snap_quiet = reg.snapshot();

  ASSERT_EQ(with_reads.size(), without_reads.size());
  for (std::size_t p = 0; p < with_reads.size(); ++p) {
    expect_bit_identical(with_reads[p], without_reads[p]);
  }
  // Quiescent-vs-concurrent pin: once the run is over, the registry's
  // deterministic aggregates must not remember that snapshots happened
  // mid-flight.
  for (const char* name :
       {"server.observations", "server.commits", "hmm.windows",
        "hmm.beam_expansions"}) {
    EXPECT_EQ(snap_soaked.counter(name), snap_quiet.counter(name)) << name;
  }
  const auto* hist_soaked = snap_soaked.histogram("server.push_to_commit_s");
  const auto* hist_quiet = snap_quiet.histogram("server.push_to_commit_s");
  ASSERT_NE(hist_soaked, nullptr);
  ASSERT_NE(hist_quiet, nullptr);
  EXPECT_EQ(hist_soaked->count, hist_quiet->count);

  reg.reset();
  reg.set_enabled(false);
}

TEST(SessionServer, ObservabilityOnOffTrajectoryBitIdentity) {
  // The zero-feedback contract end to end: metrics + logging + statusz
  // polling + flow tracing all running must not change a single bit of
  // any trajectory relative to a run with every observability surface
  // off.
  const core::PolarDrawConfig cfg = small_config();
  const int kPens = 3, kWindows = 30;
  std::vector<DecodeTestbed> pens;
  for (int p = 0; p < kPens; ++p) {
    pens.push_back(
        make_decode_testbed(cfg, kWindows, static_cast<std::uint64_t>(p) + 51));
  }
  SessionServerConfig scfg;
  scfg.stream.lag_windows = 5;
  scfg.n_workers = 4;

  const auto drive = [&](bool observability) {
    std::ostringstream log_sink;
    if (observability) {
      obs::Registry::global().set_enabled(true);
      obs::Registry::global().reset();
      obs::Tracer::global().set_enabled(true);
      obs::Tracer::global().reset();
      obs::Logger::global().set_sink(&log_sink);
    }
    SessionServer server(cfg, pens[0].a1, pens[0].a2, pens[0].antenna_z,
                         scfg);
    for (int p = 0; p < kPens; ++p) {
      server.open(static_cast<SessionId>(p),
                  &pens[static_cast<std::size_t>(p)].start);
    }
    std::uint64_t flow_serial = 0;
    for (int w = 0; w < kWindows; ++w) {
      for (int p = 0; p < kPens; ++p) {
        server.submit(
            static_cast<SessionId>(p),
            pens[static_cast<std::size_t>(p)].obs[static_cast<std::size_t>(w)],
            /*t_s=*/0.05 * w, /*flow_id=*/++flow_serial);
      }
      server.pump();
      if (observability) {
        (void)server.status();
        (void)server.healthz();
      }
    }
    std::vector<std::vector<Vec2>> out;
    for (int p = 0; p < kPens; ++p) {
      out.push_back(server.close(static_cast<SessionId>(p)));
    }
    if (observability) {
      EXPECT_FALSE(log_sink.str().empty());  // lifecycle events did emit
      obs::Logger::global().set_sink(nullptr);
      obs::Tracer::global().reset();
      obs::Tracer::global().set_enabled(false);
      obs::Registry::global().reset();
      obs::Registry::global().set_enabled(false);
    }
    return out;
  };

  const auto instrumented = drive(true);
  const auto bare = drive(false);
  ASSERT_EQ(instrumented.size(), bare.size());
  for (std::size_t p = 0; p < instrumented.size(); ++p) {
    expect_bit_identical(instrumented[p], bare[p]);
  }
}

}  // namespace
}  // namespace polardraw::server
