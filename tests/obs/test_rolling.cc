// Unit tests of the deterministic sliding-window aggregator
// (obs/rolling.h) and the percentile-interpolation edge cases it leans on
// (empty snapshot, single populated bucket, overflow bucket), plus the
// log-spaced bucket generator feeding the server latency histogram.
#include "obs/rolling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/metrics.h"

namespace polardraw::obs {
namespace {

std::vector<double> tiny_bounds() { return {0.001, 0.01, 0.1, 1.0}; }

TEST(RollingWindow, EmptyWindowReportsZeros) {
  RollingWindow w(10.0, 0.5, tiny_bounds());
  const RollingStats s = w.stats();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RollingWindow, AggregatesWithinTheWindow) {
  RollingWindow w(10.0, 1.0, tiny_bounds());
  w.observe(0.2, 0.005);
  w.observe(1.4, 0.020);
  w.observe(2.9, 0.050);
  const RollingStats s = w.stats();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 0.075);
  EXPECT_DOUBLE_EQ(s.min, 0.005);
  EXPECT_DOUBLE_EQ(s.max, 0.050);
  EXPECT_DOUBLE_EQ(s.mean(), 0.025);
  EXPECT_GT(s.p99, s.p50);
}

TEST(RollingWindow, OldStepsExpireAsTimeAdvances) {
  RollingWindow w(4.0, 1.0, tiny_bounds());
  w.observe(0.5, 0.002);   // step 0
  w.observe(1.5, 0.020);   // step 1
  EXPECT_EQ(w.stats().count, 2u);
  // Expiry is whole-step quantized: advancing to t=4.4 (step 4) keeps the
  // 4 steps ending at index 4 alive, i.e. indices 1..4. Step 0 expires,
  // step 1 survives.
  w.advance_to(4.4);
  const RollingStats s = w.stats();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 0.020);
  // Far future: everything expires.
  w.advance_to(100.0);
  EXPECT_EQ(w.stats().count, 0u);
}

TEST(RollingWindow, TimeNeverMovesBackwards) {
  RollingWindow w(4.0, 1.0, tiny_bounds());
  w.observe(10.0, 0.01);
  w.advance_to(2.0);  // no-op
  EXPECT_DOUBLE_EQ(w.now_s(), 10.0);
  // A late-arriving old sample still counts (into the current step).
  w.observe(3.0, 0.02);
  EXPECT_EQ(w.stats().count, 2u);
}

TEST(RollingWindow, ReplayIsBitIdentical) {
  // The determinism contract: the same observation stream reproduces the
  // same stats at every step regardless of when queries happen.
  const auto run = [](bool query_every_step) {
    RollingWindow w(8.0, 0.5, tiny_bounds());
    std::vector<RollingStats> out;
    for (int i = 0; i < 200; ++i) {
      const double t = 0.13 * i;
      w.observe(t, 0.001 * ((i * 37) % 90 + 1));
      if (query_every_step) (void)w.stats();  // must not perturb state
      if (i % 10 == 9) out.push_back(w.stats());
    }
    return out;
  };
  const auto a = run(false);
  const auto b = run(true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].count, b[i].count) << i;
    EXPECT_EQ(a[i].sum, b[i].sum) << i;
    EXPECT_EQ(a[i].p50, b[i].p50) << i;
    EXPECT_EQ(a[i].p99, b[i].p99) << i;
  }
}

TEST(RollingWindow, WindowRoundsUpToWholeSteps) {
  RollingWindow w(1.2, 0.5, tiny_bounds());
  EXPECT_DOUBLE_EQ(w.window_s(), 1.5);
}

// --- Percentile interpolation edge cases (HistogramSnapshot) -------------

HistogramSnapshot make_hist(std::vector<double> bounds,
                            std::vector<std::uint64_t> counts, double min,
                            double max) {
  HistogramSnapshot h;
  h.bounds = std::move(bounds);
  h.counts = std::move(counts);
  for (const std::uint64_t c : h.counts) h.count += c;
  h.min = min;
  h.max = max;
  return h;
}

TEST(PercentileEdgeCases, EmptyHistogramReturnsZero) {
  const HistogramSnapshot h = make_hist({0.1, 1.0}, {0, 0, 0}, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
}

TEST(PercentileEdgeCases, SinglePopulatedBucketStaysWithinObservedRange) {
  // All mass in one interior bucket: every percentile must land inside
  // [min, max], never at a bucket edge outside the observed range.
  const HistogramSnapshot h =
      make_hist({0.1, 1.0, 10.0}, {0, 5, 0, 0}, 0.3, 0.7);
  for (const double p : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, 0.3) << "p" << p;
    EXPECT_LE(v, 0.7) << "p" << p;
  }
  EXPECT_LT(h.percentile(10.0), h.percentile(90.0));
}

TEST(PercentileEdgeCases, OverflowBucketReportsObservedMax) {
  // Mass beyond the last bound has no upper edge to interpolate against;
  // the observed max is the only honest answer.
  const HistogramSnapshot h = make_hist({0.1, 1.0}, {0, 0, 4}, 3.0, 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 42.0);
}

TEST(PercentileEdgeCases, ClampsOutOfRangePercentiles) {
  const HistogramSnapshot h = make_hist({0.1, 1.0}, {3, 0, 0}, 0.02, 0.05);
  EXPECT_DOUBLE_EQ(h.percentile(-5.0), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(500.0), h.percentile(100.0));
}

// --- Log-spaced bucket generator -----------------------------------------

TEST(LogSpacedBounds, CoversTheRequestedDecadesGeometrically) {
  const auto b = log_spaced_bounds(1e-3, 10.0, 6);
  ASSERT_GE(b.size(), 2u);
  // First edge at lo, last edge at or just above hi.
  EXPECT_DOUBLE_EQ(b.front(), 1e-3);
  EXPECT_GE(b.back(), 10.0 * (1.0 - 1e-12));
  // Strictly increasing with a constant ratio (6 per decade).
  // polarlint-allow(R2): geometric bucket ratio, not a dB conversion.
  const double expected_ratio = std::pow(10.0, 1.0 / 6.0);
  for (std::size_t i = 1; i < b.size(); ++i) {
    ASSERT_GT(b[i], b[i - 1]);
    EXPECT_NEAR(b[i] / b[i - 1], expected_ratio, 1e-9) << i;
  }
}

}  // namespace
}  // namespace polardraw::obs
