// Golden end-to-end metrics: a fixed-seed trial must produce exactly the
// pinned counter values (the pipeline's work is deterministic, so any
// drift here is a real behavior change), metrics on/off must not perturb
// trial outputs by a single bit, and counter totals must be identical at
// every thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "eval/harness.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace polardraw {
namespace {

eval::TrialConfig golden_config() {
  eval::TrialConfig cfg;
  cfg.system = eval::System::kPolarDraw;
  cfg.seed = 2016;
  return cfg;
}

class GoldenMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::global().set_enabled(true);
    obs::Registry::global().reset();
  }
  void TearDown() override {
    obs::Registry::global().reset();
    obs::Registry::global().set_enabled(false);
  }
};

TEST_F(GoldenMetricsTest, PinnedCountersForFixedSeedTrial) {
  const eval::TrialResult result = eval::run_trial("R", golden_config());
  const obs::Snapshot snap = obs::Registry::global().snapshot();

  // Cross-checks against the trial's own outputs.
  EXPECT_EQ(snap.counter("eval.trials"), 1u);
  EXPECT_EQ(snap.counter("rfid.reports"), result.report_count);
  EXPECT_EQ(snap.counter("classifier.calls"), 1u);

  // Golden pins: regenerate by running this test and copying the actual
  // values after any intentional pipeline change.
  const std::pair<const char*, std::uint64_t> kGolden[] = {
      {"rfid.interrogations", 807},
      {"rfid.reports", 807},
      {"preprocess.windows", 162},
      {"preprocess.phase_rejected", 1},
      {"rotation.steps", 41},
      {"translation.steps", 120},
      {"hmm.windows", 162},
      {"hmm.beam_expansions", 2131232},
      {"hmm.beam_nodes", 94705},
      {"hmm.annulus_rejected", 1703706},
      {"hmm.hyper_cache_hits", 1764071},
      {"hmm.hyper_cache_misses", 121281},
      {"hmm.starved_windows", 0},
  };
  for (const auto& [name, expected] : kGolden) {
    EXPECT_EQ(snap.counter(name), expected) << name;
  }
  for (const auto& [name, v] : snap.gauges) {
    if (name == "hmm.beam_occupancy_peak") {
      EXPECT_EQ(v, 600.0);  // the full beam: this trial never prunes to less
    }
  }
  if (::testing::Test::HasFailure()) {
    // Dump everything so the pins above can be regenerated in one run.
    for (const auto& [name, v] : snap.counters) {
      std::fprintf(stderr, "      {\"%s\", %llu},\n", name.c_str(),
                   static_cast<unsigned long long>(v));
    }
    for (const auto& [name, v] : snap.gauges) {
      std::fprintf(stderr, "      gauge %s = %f\n", name.c_str(), v);
    }
  }
}

// Enabling metrics must not perturb the pipeline: same seed, same
// trajectory and score, bit for bit, with the registry on or off.
TEST_F(GoldenMetricsTest, TrialOutputsBitIdenticalWithMetricsOnAndOff) {
  const eval::TrialResult on = eval::run_trial("W", golden_config());

  obs::Registry::global().reset();
  obs::Registry::global().set_enabled(false);
  const eval::TrialResult off = eval::run_trial("W", golden_config());
  obs::Registry::global().set_enabled(true);

  EXPECT_EQ(on.recognized, off.recognized);
  EXPECT_EQ(on.all_correct, off.all_correct);
  EXPECT_EQ(on.report_count, off.report_count);
  EXPECT_EQ(on.procrustes_m, off.procrustes_m);  // exact, not approximate
  ASSERT_EQ(on.trajectory.size(), off.trajectory.size());
  for (std::size_t i = 0; i < on.trajectory.size(); ++i) {
    EXPECT_EQ(on.trajectory[i].x, off.trajectory[i].x) << "window " << i;
    EXPECT_EQ(on.trajectory[i].y, off.trajectory[i].y) << "window " << i;
  }
}

// The tracer holds the same zero-feedback contract as the registry:
// recording a timeline must not perturb the pipeline by a single bit.
TEST_F(GoldenMetricsTest, TrialOutputsBitIdenticalWithTracingOnAndOff) {
  obs::Tracer::global().set_enabled(true);
  obs::Tracer::global().reset();
  const eval::TrialResult on = eval::run_trial("W", golden_config());
  const auto threads = obs::Tracer::global().snapshot();
  obs::Tracer::global().reset();
  obs::Tracer::global().set_enabled(false);
  const eval::TrialResult off = eval::run_trial("W", golden_config());

  // The traced run actually recorded the decode timeline...
  std::size_t events = 0;
  for (const auto& t : threads) events += t.events.size();
  EXPECT_GT(events, 0u);
  // ...and changed nothing about the trial.
  EXPECT_EQ(on.recognized, off.recognized);
  EXPECT_EQ(on.all_correct, off.all_correct);
  EXPECT_EQ(on.report_count, off.report_count);
  EXPECT_EQ(on.procrustes_m, off.procrustes_m);  // exact, not approximate
  ASSERT_EQ(on.trajectory.size(), off.trajectory.size());
  for (std::size_t i = 0; i < on.trajectory.size(); ++i) {
    EXPECT_EQ(on.trajectory[i].x, off.trajectory[i].x) << "window " << i;
    EXPECT_EQ(on.trajectory[i].y, off.trajectory[i].y) << "window " << i;
  }
}

// Counters merge by commutative addition across worker shards, so a batch
// must produce identical totals at 1 and 8 threads. (Span histograms
// measure wall clock and are exempt; the beam-occupancy gauge is a max,
// which is also order-independent.)
TEST_F(GoldenMetricsTest, BatchCountersInvariantAcrossThreadCounts) {
  std::vector<eval::TrialSpec> specs;
  std::uint64_t index = 0;
  for (const char letter : {'A', 'B'}) {
    for (int rep = 0; rep < 2; ++rep) {
      eval::TrialSpec spec;
      spec.text = std::string(1, letter);
      spec.cfg = golden_config();
      spec.cfg.seed = eval::trial_seed(2016, index++);
      specs.push_back(spec);
    }
  }

  std::vector<std::pair<std::string, std::uint64_t>> counters_1t, counters_8t;
  double peak_1t = 0.0, peak_8t = 0.0;
  {
    obs::Registry::global().reset();
    const auto results = eval::run_trials(specs, 1);
    ASSERT_EQ(results.size(), specs.size());
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    counters_1t = snap.counters;
    for (const auto& [name, v] : snap.gauges) {
      if (name == "hmm.beam_occupancy_peak") peak_1t = v;
    }
  }
  {
    obs::Registry::global().reset();
    const auto results = eval::run_trials(specs, 8);
    ASSERT_EQ(results.size(), specs.size());
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    counters_8t = snap.counters;
    for (const auto& [name, v] : snap.gauges) {
      if (name == "hmm.beam_occupancy_peak") peak_8t = v;
    }
  }

  ASSERT_EQ(counters_1t.size(), counters_8t.size());
  for (std::size_t i = 0; i < counters_1t.size(); ++i) {
    EXPECT_EQ(counters_1t[i].first, counters_8t[i].first);
    EXPECT_EQ(counters_1t[i].second, counters_8t[i].second)
        << counters_1t[i].first;
  }
  EXPECT_GT(peak_1t, 0.0);
  EXPECT_EQ(peak_1t, peak_8t);
  // The batch really ran through the instrumented pipeline.
  bool saw_trials = false;
  for (const auto& [name, v] : counters_1t) {
    if (name == "eval.trials") {
      saw_trials = true;
      EXPECT_EQ(v, specs.size());
    }
  }
  EXPECT_TRUE(saw_trials);
}

}  // namespace
}  // namespace polardraw
