// Unit tests of the structured JSON-lines logger (obs/log.h): sink
// gating, line shape, level filtering, and the deterministic sim-time
// token bucket (replaying the same timestamp stream suppresses exactly
// the same events).
#include "obs/log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/json_writer.h"

namespace polardraw::obs {
namespace {

std::vector<std::string> lines_of(const std::ostringstream& os) {
  std::vector<std::string> out;
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

/// Tests share the process-global logger; each starts from a fresh sink
/// and unlimited rate, and leaves the logger disabled.
class LoggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger& lg = Logger::global();
    lg.set_rate_limit(0.0, 0.0);
    lg.set_min_level(LogLevel::kDebug);
    lg.set_sink(&sink_);
    base_emitted_ = lg.emitted_total();
    base_suppressed_ = lg.suppressed_total();
  }
  void TearDown() override {
    Logger& lg = Logger::global();
    lg.set_sink(nullptr);
    lg.set_rate_limit(0.0, 0.0);
    lg.set_min_level(LogLevel::kDebug);
  }

  std::uint64_t emitted() const {
    return Logger::global().emitted_total() - base_emitted_;
  }
  std::uint64_t suppressed() const {
    return Logger::global().suppressed_total() - base_suppressed_;
  }

  std::ostringstream sink_;
  std::uint64_t base_emitted_ = 0;
  std::uint64_t base_suppressed_ = 0;
};

TEST_F(LoggerTest, DisabledWithoutSink) {
  Logger& lg = Logger::global();
  lg.set_sink(nullptr);
  EXPECT_FALSE(lg.enabled());
  lg.log(LogLevel::kError, 1.0, "dropped.event");
  EXPECT_EQ(emitted(), 0u);
  lg.set_sink(&sink_);
  EXPECT_TRUE(lg.enabled());
}

TEST_F(LoggerTest, EmitsOneCompactJsonLinePerEvent) {
  Logger& lg = Logger::global();
  lg.log(LogLevel::kInfo, 12.5, "test.event", [](JsonWriter& w) {
    w.kv("session", std::uint64_t{7});
    w.kv("depth", 3.0);
  });
  lg.log(LogLevel::kWarn, 13.0, "test.other");
  const auto lines = lines_of(sink_);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            R"({"t_s":12.5,"level":"info","event":"test.event",)"
            R"("session":7,"depth":3})");
  EXPECT_EQ(lines[1], R"({"t_s":13,"level":"warn","event":"test.other"})");
  EXPECT_EQ(emitted(), 2u);
  EXPECT_EQ(suppressed(), 0u);
}

TEST_F(LoggerTest, MinLevelFilters) {
  Logger& lg = Logger::global();
  lg.set_min_level(LogLevel::kWarn);
  lg.log(LogLevel::kDebug, 1.0, "below");
  lg.log(LogLevel::kInfo, 1.0, "below");
  lg.log(LogLevel::kWarn, 1.0, "at");
  lg.log(LogLevel::kError, 1.0, "above");
  EXPECT_EQ(emitted(), 2u);
  // Level-filtered events are not "suppressed" -- that word is reserved
  // for the rate limiter, whose count statusz surfaces.
  EXPECT_EQ(suppressed(), 0u);
}

TEST_F(LoggerTest, TokenBucketIsDrivenBySimTime) {
  Logger& lg = Logger::global();
  lg.set_rate_limit(/*events_per_s=*/1.0, /*burst=*/2.0);
  // Two events fit the burst at t=0; the third is suppressed.
  lg.log(LogLevel::kInfo, 0.0, "a");
  lg.log(LogLevel::kInfo, 0.0, "b");
  lg.log(LogLevel::kInfo, 0.0, "c");
  EXPECT_EQ(emitted(), 2u);
  EXPECT_EQ(suppressed(), 1u);
  // 1.5 sim-seconds later the bucket holds one token again.
  lg.log(LogLevel::kInfo, 1.5, "d");
  lg.log(LogLevel::kInfo, 1.5, "e");
  EXPECT_EQ(emitted(), 3u);
  EXPECT_EQ(suppressed(), 2u);
}

TEST_F(LoggerTest, NonMonotoneTimestampsRefillNothing) {
  Logger& lg = Logger::global();
  lg.set_rate_limit(1000.0, 1.0);
  lg.log(LogLevel::kInfo, 5.0, "a");
  // Going backwards in sim time must not mint tokens, no matter the rate.
  lg.log(LogLevel::kInfo, 1.0, "b");
  lg.log(LogLevel::kInfo, 0.0, "c");
  EXPECT_EQ(emitted(), 1u);
  EXPECT_EQ(suppressed(), 2u);
}

TEST_F(LoggerTest, ReplaySuppressesIdentically) {
  // Determinism pin: the same (t_s, event) stream yields the same
  // emitted/suppressed pattern -- and therefore the same sink bytes --
  // on every replay.
  const auto run = [](std::ostringstream& os) {
    Logger& lg = Logger::global();
    lg.set_sink(&os);
    lg.set_rate_limit(2.0, 3.0);
    for (int i = 0; i < 40; ++i) {
      lg.log(LogLevel::kInfo, 0.1 * i, "replay.event",
             [&](JsonWriter& w) { w.kv("i", static_cast<std::uint64_t>(i)); });
    }
    lg.set_rate_limit(0.0, 0.0);
  };
  std::ostringstream first;
  std::ostringstream second;
  run(first);
  run(second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_FALSE(first.str().empty());
  Logger::global().set_sink(&sink_);
}

TEST(LogLevelName, WireNames) {
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "debug");
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "info");
  EXPECT_EQ(log_level_name(LogLevel::kWarn), "warn");
  EXPECT_EQ(log_level_name(LogLevel::kError), "error");
}

}  // namespace
}  // namespace polardraw::obs
