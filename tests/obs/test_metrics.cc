// Unit tests of the metrics registry (obs/metrics.h): enable/disable
// semantics, histogram bucketing and percentiles, gauge max-merge, and
// the thread-count invariance contract counters are documented to hold.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace polardraw::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().set_enabled(true);
    Registry::global().reset();
  }
  void TearDown() override {
    Registry::global().reset();
    Registry::global().set_enabled(false);
  }
};

TEST_F(MetricsTest, CounterAccumulates) {
  const Counter c("test.counter_accumulates");
  c.add();
  c.add(41);
  const Snapshot snap = Registry::global().snapshot();
  EXPECT_EQ(snap.counter("test.counter_accumulates"), 42u);
}

TEST_F(MetricsTest, DisabledCounterIsDropped) {
  const Counter c("test.disabled_counter");
  Registry::global().set_enabled(false);
  c.add(1000);
  Registry::global().set_enabled(true);
  EXPECT_EQ(Registry::global().snapshot().counter("test.disabled_counter"),
            0u);
}

TEST_F(MetricsTest, UnknownCounterReadsZero) {
  EXPECT_EQ(Registry::global().snapshot().counter("test.never_registered"),
            0u);
}

TEST_F(MetricsTest, ResetClearsDataButKeepsRegistration) {
  const Counter c("test.reset_counter");
  c.add(7);
  Registry::global().reset();
  EXPECT_EQ(Registry::global().snapshot().counter("test.reset_counter"), 0u);
  c.add(3);
  EXPECT_EQ(Registry::global().snapshot().counter("test.reset_counter"), 3u);
}

TEST_F(MetricsTest, GaugeMergesByMax) {
  const Gauge g("test.gauge_max");
  g.set_max(2.0);
  g.set_max(9.0);
  g.set_max(4.0);
  const Snapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "test.gauge_max");
  EXPECT_EQ(snap.gauges[0].second, 9.0);
}

TEST_F(MetricsTest, HistogramBucketsAndStats) {
  const std::vector<double> bounds{1.0, 2.0, 5.0};
  const Histogram h("test.hist_buckets", bounds);
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.5);   // bucket 1 (<= 2)
  h.observe(3.0);   // bucket 2 (<= 5)
  h.observe(10.0);  // overflow
  const Snapshot snap = Registry::global().snapshot();
  const HistogramSnapshot* hs = snap.histogram("test.hist_buckets");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 4u);
  ASSERT_EQ(hs->counts.size(), 4u);
  EXPECT_EQ(hs->counts[0], 1u);
  EXPECT_EQ(hs->counts[1], 1u);
  EXPECT_EQ(hs->counts[2], 1u);
  EXPECT_EQ(hs->counts[3], 1u);
  EXPECT_DOUBLE_EQ(hs->sum, 15.0);
  EXPECT_EQ(hs->min, 0.5);
  EXPECT_EQ(hs->max, 10.0);
  EXPECT_DOUBLE_EQ(hs->mean(), 3.75);
  // The overflow bucket reports the observed maximum; percentiles are
  // monotone in p and bounded by [min, max].
  EXPECT_EQ(hs->percentile(100.0), 10.0);
  double last = hs->percentile(0.0);
  EXPECT_GE(last, hs->min);
  for (double p = 10.0; p <= 100.0; p += 10.0) {
    const double v = hs->percentile(p);
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_LE(last, hs->max);
}

TEST_F(MetricsTest, HistogramSingleObservationPercentiles) {
  const Histogram h("test.hist_single", {1.0, 2.0});
  h.observe(1.5);
  const Snapshot snap = Registry::global().snapshot();
  const HistogramSnapshot* hs = snap.histogram("test.hist_single");
  ASSERT_NE(hs, nullptr);
  // Every percentile of a single sample is bracketed by that sample's
  // bucket and the observed extremes.
  EXPECT_GE(hs->percentile(50.0), hs->min);
  EXPECT_LE(hs->percentile(50.0), 2.0);
}

TEST_F(MetricsTest, SnapshotIsNameSorted) {
  const Counter b("test.sorted_b");
  const Counter a("test.sorted_a");
  b.add(1);
  a.add(1);
  const Snapshot snap = Registry::global().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

TEST_F(MetricsTest, ScopedSpanObservesOnlyWhenEnabled) {
  const Histogram h("test.span_hist");
  {
    const ScopedSpan span(h);
  }
  EXPECT_EQ(Registry::global().snapshot().histogram("test.span_hist")->count,
            1u);
  Registry::global().set_enabled(false);
  {
    const ScopedSpan span(h);
  }
  Registry::global().set_enabled(true);
  EXPECT_EQ(Registry::global().snapshot().histogram("test.span_hist")->count,
            1u);
}

// The determinism contract: counter totals are identical whatever thread
// count performed the increments (commutative merge of per-thread shards).
TEST_F(MetricsTest, CounterTotalsAreThreadCountInvariant) {
  constexpr std::size_t kItems = 64;
  constexpr std::uint64_t kPerItem = 1000;
  std::vector<std::uint64_t> totals;
  for (const int n_threads : {1, 8}) {
    Registry::global().reset();
    const Counter c("test.thread_invariant");
    const Histogram h("test.thread_invariant_hist", {0.5, 1.5, 2.5});
    {
      ThreadPool pool(n_threads);
      pool.parallel_for(kItems, [&](std::size_t i) {
        for (std::uint64_t k = 0; k < kPerItem; ++k) c.add();
        h.observe(static_cast<double>(i % 3));
      });
    }
    const Snapshot snap = Registry::global().snapshot();
    totals.push_back(snap.counter("test.thread_invariant"));
    const HistogramSnapshot* hs =
        snap.histogram("test.thread_invariant_hist");
    ASSERT_NE(hs, nullptr);
    EXPECT_EQ(hs->count, kItems);
  }
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0], kItems * kPerItem);
  EXPECT_EQ(totals[0], totals[1]);
}

// Worker threads that exit while the registry lives must flush their
// shards (TLS destructor -> retired accumulator), not lose them.
TEST_F(MetricsTest, RetiredThreadShardsSurviveJoin) {
  const Counter c("test.retired_shards");
  {
    ThreadPool pool(4);
    pool.parallel_for(16, [&](std::size_t) { c.add(); });
  }  // pool destructor joins the workers; their shards retire
  EXPECT_EQ(Registry::global().snapshot().counter("test.retired_shards"),
            16u);
}

}  // namespace
}  // namespace polardraw::obs
