// Pins the JSON writer's deterministic output: structure, escaping, and
// the shortest-round-trip double formatting the BENCH_*.json schema and
// its downstream consumers rely on.
#include "obs/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace polardraw::obs {
namespace {

TEST(JsonWriter, EmptyObject) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.end_object();
  EXPECT_EQ(os.str(), "{}");
}

TEST(JsonWriter, FlatObjectPinned) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("a", 1);
  w.kv("b", "two");
  w.kv("c", true);
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\n  \"a\": 1,\n  \"b\": \"two\",\n  \"c\": true\n}");
}

TEST(JsonWriter, NestedStructures) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("arr");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.key("obj");
  w.begin_object();
  w.kv("x", 0.5);
  w.end_object();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\n  \"arr\": [\n    1,\n    2\n  ],\n"
            "  \"obj\": {\n    \"x\": 0.5\n  }\n}");
}

TEST(JsonWriter, StringEscaping) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value("quote\" slash\\ nl\n tab\t bell\x07");
  EXPECT_EQ(os.str(), "\"quote\\\" slash\\\\ nl\\n tab\\t bell\\u0007\"");
}

TEST(JsonWriter, FormatDoubleShortestRoundTrip) {
  EXPECT_EQ(JsonWriter::format_double(0.0), "0");
  EXPECT_EQ(JsonWriter::format_double(150.0), "150");
  EXPECT_EQ(JsonWriter::format_double(-3.0), "-3");
  EXPECT_EQ(JsonWriter::format_double(0.5), "0.5");
  EXPECT_EQ(JsonWriter::format_double(0.1), "0.1");
  // Non-finite values have no JSON representation.
  EXPECT_EQ(JsonWriter::format_double(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::format_double(
                std::numeric_limits<double>::infinity()),
            "null");
}

TEST(JsonWriter, FormatDoubleRoundTripsExactly) {
  for (const double d : {1.0 / 3.0, 6.764936363000001, 1e-9, 12345.6789,
                         9.007199254740992e15, 2.2250738585072014e-308}) {
    const std::string s = JsonWriter::format_double(d);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), d) << s;
  }
}

}  // namespace
}  // namespace polardraw::obs
