// Unit tests of the event tracer (obs/tracer.h): enable/disable gating,
// ring-buffer overflow semantics (oldest-event eviction, drop accounting,
// no reallocation in steady state), the registry drop counter, thread
// naming, and the SpanSite/ScopedSpan integration.
#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace polardraw::obs {
namespace {

/// All tests share the process-global tracer (instrumented code records
/// into it through function-local statics), so each test starts from a
/// clean, small ring and leaves the tracer disabled.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer& t = Tracer::global();
    t.set_enabled(true);
    t.set_ring_capacity(64);
    t.reset();
    Registry::global().set_enabled(true);
    Registry::global().reset();
  }
  void TearDown() override {
    Tracer::global().reset();
    Tracer::global().set_enabled(false);
    Registry::global().reset();
    Registry::global().set_enabled(false);
  }

  /// This thread's snapshot entry (the one that recorded events).
  static TraceThreadSnapshot own_ring() {
    for (const auto& t : Tracer::global().snapshot()) {
      if (t.recorded > 0) return t;
    }
    return {};
  }
};

TEST_F(TracerTest, RecordsInstantAndCompleteEvents) {
  Tracer& t = Tracer::global();
  const int span = t.name_id("test.span");
  const int inst = t.name_id("test.instant");
  const int arg = t.name_id("value");

  const auto begin = Tracer::Clock::now();
  const auto end = begin + std::chrono::microseconds(250);
  t.complete(span, begin, end, arg, 42.0);
  t.instant(inst, arg, 7.0);

  const TraceThreadSnapshot ring = own_ring();
  ASSERT_EQ(ring.events.size(), 2u);
  EXPECT_EQ(ring.recorded, 2u);
  EXPECT_EQ(ring.dropped, 0u);

  const TraceEventView& x = ring.events[0];
  EXPECT_EQ(x.name, "test.span");
  EXPECT_EQ(x.ph, 'X');
  EXPECT_NEAR(x.dur_us, 250.0, 1.0);
  ASSERT_EQ(x.args.size(), 1u);
  EXPECT_EQ(x.args[0].name, "value");
  EXPECT_DOUBLE_EQ(x.args[0].value, 42.0);

  const TraceEventView& i = ring.events[1];
  EXPECT_EQ(i.name, "test.instant");
  EXPECT_EQ(i.ph, 'i');
  EXPECT_GE(i.ts_us, x.ts_us);
  ASSERT_EQ(i.args.size(), 1u);
  EXPECT_DOUBLE_EQ(i.args[0].value, 7.0);
}

TEST_F(TracerTest, DisabledRecordsNothing) {
  Tracer& t = Tracer::global();
  const int name = t.name_id("test.disabled");
  t.set_enabled(false);
  t.instant(name);
  t.complete(name, Tracer::Clock::now(), Tracer::Clock::now());
  t.set_enabled(true);
  EXPECT_EQ(own_ring().recorded, 0u);
}

TEST_F(TracerTest, NameInterningIsStable) {
  Tracer& t = Tracer::global();
  const int a = t.name_id("test.intern.a");
  const int b = t.name_id("test.intern.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.name_id("test.intern.a"), a);
  // Interned names survive reset(); rings do not.
  t.reset();
  EXPECT_EQ(t.name_id("test.intern.a"), a);
}

TEST_F(TracerTest, OverflowEvictsOldestAndCountsDrops) {
  Tracer& t = Tracer::global();
  t.set_ring_capacity(16);
  t.reset();
  const int name = t.name_id("test.overflow");
  const int arg = t.name_id("i");
  for (int i = 0; i < 40; ++i) {
    t.instant(name, arg, static_cast<double>(i));
  }

  const TraceThreadSnapshot ring = own_ring();
  EXPECT_EQ(ring.capacity, 16u);
  EXPECT_EQ(ring.recorded, 40u);
  EXPECT_EQ(ring.dropped, 24u);
  ASSERT_EQ(ring.events.size(), 16u);
  // Oldest-first: events 0..23 were evicted, 24..39 retained in order.
  for (std::size_t i = 0; i < ring.events.size(); ++i) {
    ASSERT_EQ(ring.events[i].args.size(), 1u);
    EXPECT_DOUBLE_EQ(ring.events[i].args[0].value,
                     static_cast<double>(24 + i));
  }
  EXPECT_EQ(t.dropped_events(), 24u);
}

TEST_F(TracerTest, SteadyStateOverflowDoesNotGrowTheRing) {
  Tracer& t = Tracer::global();
  t.set_ring_capacity(16);
  t.reset();
  const int name = t.name_id("test.steady");
  for (int i = 0; i < 10000; ++i) t.instant(name);
  const TraceThreadSnapshot ring = own_ring();
  // The retained window never exceeds the budget no matter how many
  // events flow through (the ring reserves up front and overwrites).
  EXPECT_EQ(ring.events.size(), 16u);
  EXPECT_EQ(ring.recorded, 10000u);
  EXPECT_EQ(ring.dropped, 10000u - 16u);
}

TEST_F(TracerTest, DropsTickTheRegistryCounter) {
  Tracer& t = Tracer::global();
  t.set_ring_capacity(16);
  t.reset();
  const int name = t.name_id("test.drop_counter");
  for (int i = 0; i < 20; ++i) t.instant(name);
  const Snapshot snap = Registry::global().snapshot();
  EXPECT_EQ(snap.counter("trace.dropped_events"), 4u);
}

TEST_F(TracerTest, ResetClearsRingsAndDropCounts) {
  Tracer& t = Tracer::global();
  t.set_ring_capacity(16);
  t.reset();
  const int name = t.name_id("test.reset");
  for (int i = 0; i < 20; ++i) t.instant(name);
  EXPECT_GT(t.dropped_events(), 0u);
  t.reset();
  EXPECT_EQ(t.dropped_events(), 0u);
  EXPECT_EQ(own_ring().recorded, 0u);
}

TEST_F(TracerTest, CapacityIsClamped) {
  Tracer& t = Tracer::global();
  t.set_ring_capacity(1);
  EXPECT_EQ(t.ring_capacity(), 16u);
  t.set_ring_capacity(std::size_t{1} << 40);
  EXPECT_EQ(t.ring_capacity(), std::size_t{1} << 22);
}

TEST_F(TracerTest, ThreadNameShowsUpInSnapshot) {
  Tracer& t = Tracer::global();
  t.set_current_thread_name("unit-test-main");
  t.instant(t.name_id("test.named"));
  const TraceThreadSnapshot ring = own_ring();
  EXPECT_EQ(ring.thread_name, "unit-test-main");
}

TEST_F(TracerTest, ScopedSpanEmitsPairedEventWithArgs) {
  static const SpanSite site("test.scoped_span");
  static const TraceName arg_k("k");
  {
    ScopedSpan span(site);
    span.arg(arg_k, 3.0);
  }
  const TraceThreadSnapshot ring = own_ring();
  ASSERT_EQ(ring.events.size(), 1u);
  EXPECT_EQ(ring.events[0].name, "test.scoped_span");
  EXPECT_EQ(ring.events[0].ph, 'X');
  ASSERT_EQ(ring.events[0].args.size(), 1u);
  EXPECT_EQ(ring.events[0].args[0].name, "k");
  EXPECT_DOUBLE_EQ(ring.events[0].args[0].value, 3.0);
  // The same destructor feeds the site's histogram from the same clock
  // read, so the metrics view stays consistent with the trace view.
  const Snapshot snap = Registry::global().snapshot();
  const HistogramSnapshot* h = snap.histogram("test.scoped_span");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
}

TEST_F(TracerTest, FlowEventsCarryPhaseAndId) {
  Tracer& t = Tracer::global();
  const int name = t.name_id("test.flow");
  const int arg = t.name_id("stage");
  t.flow('s', name, 42, arg, 0.0);
  t.flow('t', name, 42, arg, 1.0);
  t.flow('f', name, 42, arg, 2.0);
  t.flow('q', name, 42);  // invalid phase: ignored, not recorded

  const TraceThreadSnapshot ring = own_ring();
  ASSERT_EQ(ring.events.size(), 3u);
  const char phases[] = {'s', 't', 'f'};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ring.events[i].ph, phases[i]) << i;
    EXPECT_EQ(ring.events[i].flow_id, 42u) << i;
    EXPECT_EQ(ring.events[i].name, "test.flow") << i;
    ASSERT_EQ(ring.events[i].args.size(), 1u) << i;
    EXPECT_DOUBLE_EQ(ring.events[i].args[0].value, static_cast<double>(i));
  }
}

TEST_F(TracerTest, FlowSamplingIsDeterministicBySerial) {
  const std::uint64_t period = flow_sample_period();
  ASSERT_GT(period, 0u);
  // Serial 0 means "unassigned" and is never sampled; otherwise exact
  // multiples of the period are, their neighbors are not.
  EXPECT_FALSE(flow_sampled(0));
  EXPECT_TRUE(flow_sampled(period));
  EXPECT_TRUE(flow_sampled(2 * period));
  if (period > 1) {
    EXPECT_FALSE(flow_sampled(period + 1));
    EXPECT_FALSE(flow_sampled(period - 1));
  }
}

TEST_F(TracerTest, RecordReportFlowEmitsOnlySampledSerials) {
  const std::uint64_t period = flow_sample_period();
  record_report_flow('s', 0, FlowStage::kSlot);           // unassigned
  record_report_flow('s', period + 1, FlowStage::kSlot);  // off-sample
  record_report_flow('s', period, FlowStage::kSlot);
  record_report_flow('t', period, FlowStage::kWindow);
  record_report_flow('f', period, FlowStage::kCommit);

  const TraceThreadSnapshot ring = own_ring();
  ASSERT_EQ(ring.events.size(), 3u);
  for (const auto& e : ring.events) {
    EXPECT_EQ(e.name, "report.flow");
    EXPECT_EQ(e.flow_id, period);
    ASSERT_GE(e.args.size(), 1u);
    EXPECT_EQ(e.args[0].name, "stage");
  }
  EXPECT_DOUBLE_EQ(ring.events[0].args[0].value,
                   static_cast<double>(static_cast<int>(FlowStage::kSlot)));
  EXPECT_DOUBLE_EQ(ring.events[1].args[0].value,
                   static_cast<double>(static_cast<int>(FlowStage::kWindow)));
  EXPECT_DOUBLE_EQ(ring.events[2].args[0].value,
                   static_cast<double>(static_cast<int>(FlowStage::kCommit)));
}

TEST_F(TracerTest, ChromeTraceExportCarriesFlowBinding) {
  Tracer& t = Tracer::global();
  const int name = t.name_id("test.flow.export");
  t.flow('s', name, 7);
  t.flow('f', name, 7);
  std::ostringstream os;
  t.write_chrome_trace(os);
  const std::string json = os.str();
  // Flow events need the (cat, id) pair Perfetto matches arrows on.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": 7"), std::string::npos);
}

TEST_F(TracerTest, PoolWorkersGetNamedTracks) {
  std::vector<int> slots(8, 0);
  {
    ThreadPool pool(2);  // 1 worker thread + the calling thread
    pool.parallel_for(slots.size(),
                      [&](std::size_t i) { slots[i] = static_cast<int>(i); });
  }  // pool destruction retires the worker's ring into the tracer
  bool saw_worker = false;
  for (const auto& ring : Tracer::global().snapshot()) {
    if (ring.thread_name.rfind("pool.worker-", 0) == 0) saw_worker = true;
  }
  EXPECT_TRUE(saw_worker);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i));
  }
}

}  // namespace
}  // namespace polardraw::obs
