// WISP power-harvesting duty-cycle model against its documented harvest
// thresholds: dead below the -11 dBm sensitivity, continuous at the
// -4 dBm saturation point, linear in dB between.
#include "rfid/wisp.h"

#include <gtest/gtest.h>

namespace polardraw::rfid {
namespace {

TEST(WispPower, DeadBelowHarvestSensitivity) {
  const WispPowerConfig cfg;
  EXPECT_DOUBLE_EQ(harvest_duty_cycle(-30.0, cfg), 0.0);
  EXPECT_DOUBLE_EQ(harvest_duty_cycle(-11.001, cfg), 0.0);
  EXPECT_DOUBLE_EQ(effective_sample_rate_hz(-30.0, cfg), 0.0);
}

TEST(WispPower, ContinuousAtAndAboveSaturation) {
  const WispPowerConfig cfg;
  EXPECT_DOUBLE_EQ(harvest_duty_cycle(-4.0, cfg), 1.0);
  EXPECT_DOUBLE_EQ(harvest_duty_cycle(0.0, cfg), 1.0);
  EXPECT_DOUBLE_EQ(effective_sample_rate_hz(0.0, cfg), cfg.full_rate_hz);
}

TEST(WispPower, LinearBetweenThresholds) {
  const WispPowerConfig cfg;  // sensitivity -11 dBm, saturation -4 dBm
  EXPECT_DOUBLE_EQ(harvest_duty_cycle(-11.0, cfg), 0.0);
  EXPECT_DOUBLE_EQ(harvest_duty_cycle(-7.5, cfg), 0.5);   // midpoint
  EXPECT_DOUBLE_EQ(harvest_duty_cycle(-5.75, cfg), 0.75);
  // Half duty cycle halves the achievable accelerometer rate.
  EXPECT_DOUBLE_EQ(effective_sample_rate_hz(-7.5, cfg), 50.0);
}

TEST(WispPower, DutyCycleIsMonotoneInIncidentPower) {
  const WispPowerConfig cfg;
  double last = -1.0;
  for (double dbm = -20.0; dbm <= 2.0; dbm += 0.25) {
    const double duty = harvest_duty_cycle(dbm, cfg);
    EXPECT_GE(duty, 0.0);
    EXPECT_LE(duty, 1.0);
    EXPECT_GE(duty, last) << "at " << dbm << " dBm";
    last = duty;
  }
}

TEST(WispPower, DegenerateConfigDegradesToStepFunction) {
  WispPowerConfig cfg;
  cfg.saturation_dbm = cfg.harvest_sensitivity_dbm;  // zero-width ramp
  EXPECT_DOUBLE_EQ(harvest_duty_cycle(cfg.harvest_sensitivity_dbm - 0.01, cfg),
                   0.0);
  EXPECT_DOUBLE_EQ(harvest_duty_cycle(cfg.harvest_sensitivity_dbm, cfg), 1.0);
  EXPECT_DOUBLE_EQ(harvest_duty_cycle(cfg.harvest_sensitivity_dbm + 0.01, cfg),
                   1.0);
}

TEST(WispPower, CustomRateScalesWithDuty) {
  WispPowerConfig cfg;
  cfg.full_rate_hz = 200.0;
  EXPECT_DOUBLE_EQ(effective_sample_rate_hz(-7.5, cfg), 100.0);
  EXPECT_DOUBLE_EQ(effective_sample_rate_hz(-4.0, cfg), 200.0);
}

}  // namespace
}  // namespace polardraw::rfid
