#include "rfid/reader.h"

#include <gtest/gtest.h>

#include <map>

#include "common/angles.h"
#include "rfid/modulation.h"

namespace polardraw::rfid {
namespace {

em::ReaderAntenna down_antenna(double x, double pol_angle_rad) {
  em::ReaderAntenna a = em::make_linear_antenna(Vec3{x, 1.25, 0.12}, pol_angle_rad);
  a.boresight = Vec3{0.0, -1.0, 0.0};
  a.polarization_axis = Vec3{std::cos(pol_angle_rad), 0.0, std::sin(pol_angle_rad)};
  return a;
}

class ReaderTest : public ::testing::Test {
 protected:
  ReaderTest()
      : reader_(make_reader()) {}

  static Reader make_reader() {
    ReaderConfig cfg;
    cfg.auto_select_modulation = false;
    cfg.fixed_modulation = Modulation::kFM0;
    std::vector<em::ReaderAntenna> rig{
        down_antenna(0.22, kPi / 2.0 + 0.26),
        down_antenna(0.78, kPi / 2.0 - 0.26)};
    return Reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(5));
  }

  static em::Tag co_polarized_tag() {
    em::Tag t;
    t.position = Vec3{0.5, 0.25, 0.0};
    t.dipole_axis = Vec3{0.0, 0.0, 1.0};  // roughly along both antennas
    return t;
  }

  Reader reader_;
};

TEST_F(ReaderTest, InterrogateCoPolarizedSucceeds) {
  const auto rep = reader_.interrogate(0, co_polarized_tag(), 0.0);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->antenna_id, 0);
  EXPECT_GT(rep->rss_dbm, -70.0);
  EXPECT_GE(rep->phase_rad, 0.0);
  EXPECT_LT(rep->phase_rad, kTwoPi);
}

TEST_F(ReaderTest, CrossPolarizedTagFailsActivation) {
  em::Tag t = co_polarized_tag();
  // Dipole along the LOS (pointing at the antenna): no transverse extent.
  t.dipole_axis = Vec3{0.0, 1.0, 0.0};
  t.sensitivity_dbm = 5.0;  // deaf chip to make the threshold bite
  const auto rep = reader_.interrogate(0, t, 0.0);
  EXPECT_FALSE(rep.has_value());
}

TEST_F(ReaderTest, InventoryRateMatchesConfig) {
  const auto tag = co_polarized_tag();
  const auto stream =
      reader_.inventory([&](double) { return tag; }, 0.0, 2.0);
  // 100 Hz aggregate for 2 s with near-perfect link: ~200 reads (FM0 is
  // the fixed default here with rate factor 1).
  EXPECT_GT(stream.size(), 150u);
  EXPECT_LE(stream.size(), 210u);
  // Ports round-robin evenly.
  int port0 = 0;
  for (const auto& r : stream) port0 += r.antenna_id == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(port0), static_cast<double>(stream.size()) / 2.0,
              static_cast<double>(stream.size()) * 0.1);
}

TEST_F(ReaderTest, TimestampsMonotone) {
  const auto tag = co_polarized_tag();
  const auto stream =
      reader_.inventory([&](double) { return tag; }, 0.0, 1.0);
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GT(stream[i].timestamp_s, stream[i - 1].timestamp_s);
  }
}

TEST_F(ReaderTest, PhaseQuantized) {
  ReaderConfig cfg;
  cfg.auto_select_modulation = false;
  cfg.phase_quantization_bits = 4;  // coarse: 16 steps
  std::vector<em::ReaderAntenna> rig{down_antenna(0.22, kPi / 2.0)};
  Reader reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(5));
  const auto tag = co_polarized_tag();
  const double step = kTwoPi / 16.0;
  for (int i = 0; i < 20; ++i) {
    const auto rep = reader.interrogate(0, tag, 0.01 * i);
    ASSERT_TRUE(rep.has_value());
    const double off = reader.port_phase_offsets()[0];
    (void)off;
    const double q = rep->phase_rad / step;
    EXPECT_NEAR(q, std::round(q), 1e-6);
  }
}

TEST_F(ReaderTest, PortOffsetsStablePerSession) {
  const auto offsets1 = reader_.port_phase_offsets();
  const auto tag = co_polarized_tag();
  reader_.inventory([&](double) { return tag; }, 0.0, 0.5);
  EXPECT_EQ(reader_.port_phase_offsets(), offsets1);
  EXPECT_EQ(offsets1.size(), 2u);
}

TEST_F(ReaderTest, ModulationSelectionPicksCleanScheme) {
  ReaderConfig cfg;
  cfg.auto_select_modulation = true;
  std::vector<em::ReaderAntenna> rig{down_antenna(0.22, kPi / 2.0)};
  Reader reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(5));
  const auto tag = co_polarized_tag();
  const Modulation m = reader.select_modulation([&](double) { return tag; });
  // Strong static link: the fastest scheme should already pass the
  // phase-variance bar.
  EXPECT_EQ(m, Modulation::kFM0);
  EXPECT_EQ(reader.active_modulation(), m);
}

TEST(Modulation, RateAndGainOrdering) {
  EXPECT_GT(rate_factor(Modulation::kFM0), rate_factor(Modulation::kMiller8));
  EXPECT_LT(snr_gain(Modulation::kFM0), snr_gain(Modulation::kMiller8));
  EXPECT_EQ(miller_m(Modulation::kMiller4), 4);
  EXPECT_EQ(to_string(Modulation::kMiller2), "Miller-2");
}

TEST(ReaderInventory, EmptyOnBadTimeRange) {
  ReaderConfig cfg;
  cfg.auto_select_modulation = false;
  std::vector<em::ReaderAntenna> rig{down_antenna(0.5, kPi / 2.0)};
  Reader reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(1));
  em::Tag tag;
  tag.position = Vec3{0.5, 0.25, 0.0};
  EXPECT_TRUE(reader.inventory([&](double) { return tag; }, 1.0, 1.0).empty());
  EXPECT_TRUE(reader.inventory([&](double) { return tag; }, 2.0, 1.0).empty());
}

TEST(ReaderHopping, ChannelOffsetsStableAndDistinct) {
  // The per-channel RF-chain offset is what per-channel calibration
  // subtracts; it must be a pure function of the channel index (stable
  // across dwells and reader instances) and distinct between the 50 FCC
  // channels (aliasing would silently merge two channels' phase bases).
  for (int c = 0; c < 50; ++c) {
    const double off = Reader::hop_channel_offset_rad(c);
    EXPECT_GE(off, 0.0);
    EXPECT_LT(off, kTwoPi);
    EXPECT_EQ(off, Reader::hop_channel_offset_rad(c));  // stable
    for (int d = 0; d < c; ++d) {
      EXPECT_GT(angle_dist(off, Reader::hop_channel_offset_rad(d)), 0.01)
          << "channels " << c << " and " << d << " alias";
    }
  }
}

TEST(ReaderHopping, ReportsFromSameChannelShareThePhaseBase) {
  // Two dwells on the same channel re-apply the same offset: reports of a
  // static tag from the same channel agree in phase no matter which dwell
  // they came from, while a different channel shifts the base by exactly
  // the offset difference. Noise is disabled to isolate the RF chain.
  ReaderConfig cfg;
  cfg.auto_select_modulation = false;
  cfg.fixed_modulation = Modulation::kFM0;
  cfg.frequency_hopping = true;
  cfg.hop_channels = 50;
  cfg.hop_dwell_s = 0.4;
  cfg.noise.noise_floor_dbm = -300.0;  // kill AWGN
  cfg.noise.phase_noise_floor_rad = 0.0;
  cfg.noise.rss_jitter_db = 0.0;
  cfg.phase_quantization_bits = 30;  // effectively unquantized
  std::vector<em::ReaderAntenna> rig{down_antenna(0.22, kPi / 2.0 + 0.26)};
  Reader reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(5));

  em::Tag tag;
  tag.position = Vec3{0.5, 0.25, 0.0};
  tag.dipole_axis = Vec3{0.0, 0.0, 1.0};

  // Map dwell index -> channel by sampling mid-dwell over many dwells.
  std::map<int, std::vector<double>> phase_by_channel;
  for (int dwell = 0; dwell < 64; ++dwell) {
    const double t = (static_cast<double>(dwell) + 0.5) * cfg.hop_dwell_s;
    const auto rep = reader.interrogate(0, tag, t);
    ASSERT_TRUE(rep.has_value());
    phase_by_channel[rep->channel].push_back(rep->phase_rad);
  }
  ASSERT_GE(phase_by_channel.size(), 2u);  // hopping actually hops
  for (const auto& [ch, phases] : phase_by_channel) {
    for (const double p : phases) {
      // Same channel, any dwell: same measured phase. The carrier offset
      // between FCC channels also moves the propagation phase slightly
      // (4*pi*d*delta_f/c), but within one channel the measurement is
      // exactly reproducible for a static tag.
      EXPECT_NEAR(angle_dist(p, phases.front()), 0.0, 1e-6)
          << "channel " << ch;
    }
  }
}

TEST(ReaderPopulation, PresenceWindowsGateContention) {
  ReaderConfig cfg;
  cfg.auto_select_modulation = false;
  cfg.fixed_modulation = Modulation::kFM0;
  std::vector<em::ReaderAntenna> rig{down_antenna(0.22, kPi / 2.0 + 0.26),
                                     down_antenna(0.78, kPi / 2.0 - 0.26)};
  Reader reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(5));
  em::Tag tag;
  tag.position = Vec3{0.5, 0.25, 0.0};
  tag.dipole_axis = Vec3{0.0, 0.0, 1.0};
  const auto state = [&](double) { return tag; };
  // Tag B is only present for the middle third.
  const std::vector<TagEntry> tags{
      {0xA1, state, 0.0, 1e300},
      {0xB2, state, 1.0, 2.0},
  };
  const auto stream = reader.inventory_population(tags, 0.0, 3.0);
  ASSERT_FALSE(stream.empty());
  std::size_t a_reads = 0, b_reads = 0;
  for (const auto& r : stream) {
    ASSERT_TRUE(r.epc == 0xA1 || r.epc == 0xB2);
    if (r.epc == 0xB2) {
      ++b_reads;
      // No report outside the presence window (rounds straddling the
      // leave edge may run a shade past it, never before entry).
      EXPECT_GE(r.timestamp_s, 1.0);
      EXPECT_LT(r.timestamp_s, 2.1);
    } else {
      ++a_reads;
    }
  }
  EXPECT_GT(b_reads, 10u);
  // A reads alone for 2 of 3 seconds: it must out-read B handily.
  EXPECT_GT(a_reads, 2 * b_reads);
  // Timestamps non-decreasing (slot schedule order).
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GE(stream[i].timestamp_s, stream[i - 1].timestamp_s);
  }
}

TEST(ReaderPopulation, DeterministicGivenSeed) {
  const auto run = [] {
    ReaderConfig cfg;
    cfg.auto_select_modulation = false;
    cfg.fixed_modulation = Modulation::kFM0;
    cfg.frequency_hopping = true;
    std::vector<em::ReaderAntenna> rig{down_antenna(0.22, kPi / 2.0 + 0.26),
                                       down_antenna(0.78, kPi / 2.0 - 0.26)};
    Reader reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(11));
    em::Tag tag;
    tag.position = Vec3{0.5, 0.25, 0.0};
    tag.dipole_axis = Vec3{0.0, 0.0, 1.0};
    const auto state = [tag](double) { return tag; };
    const std::vector<TagEntry> tags{{0xA1, state}, {0xB2, state},
                                     {0xC3, state, 0.5, 1e300}};
    return reader.inventory_population(tags, 0.0, 2.0);
  };
  const auto s1 = run();
  const auto s2 = run();
  ASSERT_EQ(s1.size(), s2.size());
  ASSERT_FALSE(s1.empty());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].timestamp_s, s2[i].timestamp_s);
    EXPECT_EQ(s1[i].epc, s2[i].epc);
    EXPECT_EQ(s1[i].phase_rad, s2[i].phase_rad);
    EXPECT_EQ(s1[i].rss_dbm, s2[i].rss_dbm);
    EXPECT_EQ(s1[i].channel, s2[i].channel);
    EXPECT_EQ(s1[i].antenna_id, s2[i].antenna_id);
  }
}

TEST(ReaderPopulation, EmergentReadRateReportsCumulativeRate) {
  ReaderConfig cfg;
  cfg.auto_select_modulation = false;
  cfg.fixed_modulation = Modulation::kFM0;
  std::vector<em::ReaderAntenna> rig{down_antenna(0.22, kPi / 2.0 + 0.26),
                                     down_antenna(0.78, kPi / 2.0 - 0.26)};
  Reader reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(5));
  em::Tag tag;
  tag.position = Vec3{0.5, 0.25, 0.0};
  tag.dipole_axis = Vec3{0.0, 0.0, 1.0};
  const auto state = [&](double) { return tag; };
  const std::vector<TagEntry> tags{{0xA1, state}, {0xB2, state},
                                   {0xC3, state}, {0xD4, state}};
  const auto stream = reader.inventory_population(tags, 0.0, 3.0);
  ASSERT_GT(stream.size(), 40u);
  // The tail reports carry each tag's emergent cumulative rate: under
  // 4-way contention it must sit well below the lone-tag rate but stay
  // positive, and the sum across tags stays below the aggregate budget.
  double sum_rate = 0.0;
  std::map<std::uint32_t, double> last_rate;
  for (const auto& r : stream) last_rate[r.epc] = r.read_rate_hz;
  for (const auto& [epc, rate] : last_rate) {
    EXPECT_GT(rate, 1.0) << "epc " << epc;
    EXPECT_LT(rate, cfg.aggregate_read_rate_hz) << "epc " << epc;
    sum_rate += rate;
  }
  EXPECT_LE(sum_rate, cfg.aggregate_read_rate_hz * 1.05);
}

}  // namespace
}  // namespace polardraw::rfid
