#include "rfid/reader.h"

#include <gtest/gtest.h>

#include "common/angles.h"
#include "rfid/modulation.h"

namespace polardraw::rfid {
namespace {

em::ReaderAntenna down_antenna(double x, double pol_angle_rad) {
  em::ReaderAntenna a = em::make_linear_antenna(Vec3{x, 1.25, 0.12}, pol_angle_rad);
  a.boresight = Vec3{0.0, -1.0, 0.0};
  a.polarization_axis = Vec3{std::cos(pol_angle_rad), 0.0, std::sin(pol_angle_rad)};
  return a;
}

class ReaderTest : public ::testing::Test {
 protected:
  ReaderTest()
      : reader_(make_reader()) {}

  static Reader make_reader() {
    ReaderConfig cfg;
    cfg.auto_select_modulation = false;
    cfg.fixed_modulation = Modulation::kFM0;
    std::vector<em::ReaderAntenna> rig{
        down_antenna(0.22, kPi / 2.0 + 0.26),
        down_antenna(0.78, kPi / 2.0 - 0.26)};
    return Reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(5));
  }

  static em::Tag co_polarized_tag() {
    em::Tag t;
    t.position = Vec3{0.5, 0.25, 0.0};
    t.dipole_axis = Vec3{0.0, 0.0, 1.0};  // roughly along both antennas
    return t;
  }

  Reader reader_;
};

TEST_F(ReaderTest, InterrogateCoPolarizedSucceeds) {
  const auto rep = reader_.interrogate(0, co_polarized_tag(), 0.0);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->antenna_id, 0);
  EXPECT_GT(rep->rss_dbm, -70.0);
  EXPECT_GE(rep->phase_rad, 0.0);
  EXPECT_LT(rep->phase_rad, kTwoPi);
}

TEST_F(ReaderTest, CrossPolarizedTagFailsActivation) {
  em::Tag t = co_polarized_tag();
  // Dipole along the LOS (pointing at the antenna): no transverse extent.
  t.dipole_axis = Vec3{0.0, 1.0, 0.0};
  t.sensitivity_dbm = 5.0;  // deaf chip to make the threshold bite
  const auto rep = reader_.interrogate(0, t, 0.0);
  EXPECT_FALSE(rep.has_value());
}

TEST_F(ReaderTest, InventoryRateMatchesConfig) {
  const auto tag = co_polarized_tag();
  const auto stream =
      reader_.inventory([&](double) { return tag; }, 0.0, 2.0);
  // 100 Hz aggregate for 2 s with near-perfect link: ~200 reads (FM0 is
  // the fixed default here with rate factor 1).
  EXPECT_GT(stream.size(), 150u);
  EXPECT_LE(stream.size(), 210u);
  // Ports round-robin evenly.
  int port0 = 0;
  for (const auto& r : stream) port0 += r.antenna_id == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(port0), static_cast<double>(stream.size()) / 2.0,
              static_cast<double>(stream.size()) * 0.1);
}

TEST_F(ReaderTest, TimestampsMonotone) {
  const auto tag = co_polarized_tag();
  const auto stream =
      reader_.inventory([&](double) { return tag; }, 0.0, 1.0);
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GT(stream[i].timestamp_s, stream[i - 1].timestamp_s);
  }
}

TEST_F(ReaderTest, PhaseQuantized) {
  ReaderConfig cfg;
  cfg.auto_select_modulation = false;
  cfg.phase_quantization_bits = 4;  // coarse: 16 steps
  std::vector<em::ReaderAntenna> rig{down_antenna(0.22, kPi / 2.0)};
  Reader reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(5));
  const auto tag = co_polarized_tag();
  const double step = kTwoPi / 16.0;
  for (int i = 0; i < 20; ++i) {
    const auto rep = reader.interrogate(0, tag, 0.01 * i);
    ASSERT_TRUE(rep.has_value());
    const double off = reader.port_phase_offsets()[0];
    (void)off;
    const double q = rep->phase_rad / step;
    EXPECT_NEAR(q, std::round(q), 1e-6);
  }
}

TEST_F(ReaderTest, PortOffsetsStablePerSession) {
  const auto offsets1 = reader_.port_phase_offsets();
  const auto tag = co_polarized_tag();
  reader_.inventory([&](double) { return tag; }, 0.0, 0.5);
  EXPECT_EQ(reader_.port_phase_offsets(), offsets1);
  EXPECT_EQ(offsets1.size(), 2u);
}

TEST_F(ReaderTest, ModulationSelectionPicksCleanScheme) {
  ReaderConfig cfg;
  cfg.auto_select_modulation = true;
  std::vector<em::ReaderAntenna> rig{down_antenna(0.22, kPi / 2.0)};
  Reader reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(5));
  const auto tag = co_polarized_tag();
  const Modulation m = reader.select_modulation([&](double) { return tag; });
  // Strong static link: the fastest scheme should already pass the
  // phase-variance bar.
  EXPECT_EQ(m, Modulation::kFM0);
  EXPECT_EQ(reader.active_modulation(), m);
}

TEST(Modulation, RateAndGainOrdering) {
  EXPECT_GT(rate_factor(Modulation::kFM0), rate_factor(Modulation::kMiller8));
  EXPECT_LT(snr_gain(Modulation::kFM0), snr_gain(Modulation::kMiller8));
  EXPECT_EQ(miller_m(Modulation::kMiller4), 4);
  EXPECT_EQ(to_string(Modulation::kMiller2), "Miller-2");
}

TEST(ReaderInventory, EmptyOnBadTimeRange) {
  ReaderConfig cfg;
  cfg.auto_select_modulation = false;
  std::vector<em::ReaderAntenna> rig{down_antenna(0.5, kPi / 2.0)};
  Reader reader(cfg, std::move(rig), channel::MultipathChannel{}, Rng(1));
  em::Tag tag;
  tag.position = Vec3{0.5, 0.25, 0.0};
  EXPECT_TRUE(reader.inventory([&](double) { return tag; }, 1.0, 1.0).empty());
  EXPECT_TRUE(reader.inventory([&](double) { return tag; }, 2.0, 1.0).empty());
}

}  // namespace
}  // namespace polardraw::rfid
