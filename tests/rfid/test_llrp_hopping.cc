// Tests for the LLRP-style framing and the frequency-hopping reader mode.
#include <gtest/gtest.h>

#include "common/angles.h"
#include "core/polardraw.h"
#include "eval/harness.h"
#include "rfid/llrp.h"
#include "rfid/reader.h"

namespace polardraw::rfid {
namespace {

TagReport sample_report(double t, int ant) {
  TagReport r;
  r.timestamp_s = t;
  r.antenna_id = ant;
  r.epc = 0xAD227Bu;
  r.rss_dbm = -43.21;
  r.phase_rad = 1.234;
  r.read_rate_hz = 51.5;
  r.channel = 7;
  return r;
}

TEST(Llrp, RoundTripPreservesFields) {
  TagReportStream batch{sample_report(1.5, 0), sample_report(1.51, 1)};
  const auto frame = llrp::encode_batch(batch);
  const auto decoded = llrp::decode_batch(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR((*decoded)[i].timestamp_s, batch[i].timestamp_s, 1e-6);
    EXPECT_EQ((*decoded)[i].antenna_id, batch[i].antenna_id);
    EXPECT_EQ((*decoded)[i].epc, batch[i].epc);
    EXPECT_NEAR((*decoded)[i].rss_dbm, batch[i].rss_dbm, 0.01);
    EXPECT_NEAR((*decoded)[i].phase_rad, batch[i].phase_rad, 0.001);
    EXPECT_NEAR((*decoded)[i].read_rate_hz, batch[i].read_rate_hz, 0.1);
    EXPECT_EQ((*decoded)[i].channel, batch[i].channel);
  }
}

TEST(Llrp, EmptyBatchRoundTrips) {
  const auto frame = llrp::encode_batch({});
  const auto decoded = llrp::decode_batch(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Llrp, RejectsMalformedFrames) {
  TagReportStream batch{sample_report(0.1, 0)};
  auto frame = llrp::encode_batch(batch);
  // Truncated.
  auto short_frame = frame;
  short_frame.pop_back();
  EXPECT_FALSE(llrp::decode_batch(short_frame).has_value());
  // Wrong type.
  auto bad_type = frame;
  bad_type[0] = 0xFF;
  EXPECT_FALSE(llrp::decode_batch(bad_type).has_value());
  // Inconsistent length field.
  auto bad_len = frame;
  bad_len[5] = static_cast<std::uint8_t>(bad_len[5] + 1);
  EXPECT_FALSE(llrp::decode_batch(bad_len).has_value());
  // Tiny buffer.
  EXPECT_FALSE(llrp::decode_batch({0x00}).has_value());
}

TEST(Llrp, ExtractFramesReassemblesStream) {
  TagReportStream a{sample_report(0.1, 0)};
  TagReportStream b{sample_report(0.2, 1), sample_report(0.21, 0)};
  const auto fa = llrp::encode_batch(a);
  const auto fb = llrp::encode_batch(b);

  std::vector<std::uint8_t> wire;
  wire.insert(wire.end(), fa.begin(), fa.end());
  wire.insert(wire.end(), fb.begin(), fb.end());
  // Deliver in awkward chunks.
  std::vector<std::uint8_t> buffer;
  std::vector<std::vector<std::uint8_t>> got;
  for (std::size_t i = 0; i < wire.size(); i += 7) {
    const std::size_t end = std::min(i + 7, wire.size());
    buffer.insert(buffer.end(), wire.begin() + i, wire.begin() + end);
    for (auto& f : llrp::extract_frames(buffer)) got.push_back(std::move(f));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(llrp::decode_batch(got[0])->size(), 1u);
  EXPECT_EQ(llrp::decode_batch(got[1])->size(), 2u);
}

TEST(Llrp, ExtractFramesKeepsPartials) {
  TagReportStream a{sample_report(0.1, 0)};
  const auto fa = llrp::encode_batch(a);
  std::vector<std::uint8_t> buffer(fa.begin(), fa.begin() + 5);
  EXPECT_TRUE(llrp::extract_frames(buffer).empty());
  EXPECT_EQ(buffer.size(), 5u);
}

// ---------------------------------------------------------------------------
// Frequency hopping
// ---------------------------------------------------------------------------
em::ReaderAntenna hop_antenna() {
  em::ReaderAntenna a = em::make_linear_antenna(Vec3{0.5, 1.25, 0.12}, kPi / 2.0);
  a.boresight = Vec3{0.0, -1.0, 0.0};
  a.polarization_axis = Vec3{0.0, 0.0, 1.0};
  return a;
}

TEST(FrequencyHopping, ChannelsChangeAcrossDwells) {
  ReaderConfig cfg;
  cfg.auto_select_modulation = false;
  cfg.fixed_modulation = Modulation::kFM0;
  cfg.frequency_hopping = true;
  Reader reader(cfg, {hop_antenna()}, channel::MultipathChannel{}, Rng(2));
  em::Tag tag;
  tag.position = Vec3{0.5, 0.25, 0.0};
  tag.dipole_axis = Vec3{0.0, 0.0, 1.0};

  std::set<int> channels;
  for (int i = 0; i < 50; ++i) {
    const auto rep = reader.interrogate(0, tag, i * 0.1);
    ASSERT_TRUE(rep.has_value());
    channels.insert(rep->channel);
  }
  EXPECT_GT(channels.size(), 5u);  // hops across the 5 s span
}

TEST(FrequencyHopping, StableWithinDwell) {
  ReaderConfig cfg;
  cfg.auto_select_modulation = false;
  cfg.fixed_modulation = Modulation::kFM0;
  cfg.frequency_hopping = true;
  Reader reader(cfg, {hop_antenna()}, channel::MultipathChannel{}, Rng(2));
  em::Tag tag;
  tag.position = Vec3{0.5, 0.25, 0.0};
  tag.dipole_axis = Vec3{0.0, 0.0, 1.0};

  const auto r1 = reader.interrogate(0, tag, 0.01);
  const auto r2 = reader.interrogate(0, tag, 0.02);
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->channel, r2->channel);
  EXPECT_NEAR(angle_dist(r1->phase_rad, r2->phase_rad), 0.0, 0.3);
}

TEST(FrequencyHopping, PreprocessRestartsAcrossHops) {
  // Two channels with very different offsets: the delta across the hop
  // must not poison the tracker. Build a synthetic stream directly.
  core::PolarDrawConfig cfg;
  TagReportStream reports;
  for (int w = 0; w < 20; ++w) {
    for (int a = 0; a < 2; ++a) {
      TagReport r;
      r.timestamp_s = w * 0.05 + a * 0.01;
      r.antenna_id = a;
      r.rss_dbm = -40.0;
      r.channel = w < 10 ? 3 : 17;       // hop at window 10
      r.phase_rad = wrap_2pi(1.0 + (w < 10 ? 0.0 : 2.5));  // offset jump
      reports.push_back(r);
    }
  }
  const auto windows = core::preprocess(reports, cfg);
  core::PolarDraw tracker(cfg, {0.22, 1.25}, {0.78, 1.25}, 0.12);
  const auto result = tracker.track_windows(windows);
  // A 2.5 rad apparent jump would demand ~6.5 cm of phantom motion; with
  // the hop guard the track stays nearly still.
  double travel = 0.0;
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    travel += result.trajectory[i].dist(result.trajectory[i - 1]);
  }
  EXPECT_LT(travel, 0.04);
}

TEST(FrequencyHopping, EndToEndTrackingSurvivesHops) {
  eval::TrialConfig cfg;
  cfg.system = eval::System::kPolarDraw;
  cfg.seed = 91;
  cfg.scene.reader.frequency_hopping = true;
  const auto res = eval::run_trial("O", cfg);
  EXPECT_GT(res.trajectory.size(), 40u);
  EXPECT_LT(res.procrustes_m, 0.20);
}

}  // namespace
}  // namespace polardraw::rfid
