// Pins the Gen2 modulation table against hand-computed link budgets:
// each Miller doubling integrates twice the per-bit energy (+~3 dB) and
// slows the air interface down by the documented rate factors.
#include "rfid/modulation.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace polardraw::rfid {
namespace {

TEST(Modulation, MillerMTable) {
  EXPECT_EQ(miller_m(Modulation::kFM0), 1);
  EXPECT_EQ(miller_m(Modulation::kMiller2), 2);
  EXPECT_EQ(miller_m(Modulation::kMiller4), 4);
  EXPECT_EQ(miller_m(Modulation::kMiller8), 8);
}

TEST(Modulation, SnrGainMatchesPerBitEnergyIntegration) {
  // Integrating M subcarrier cycles per bit buys a linear SNR factor of M.
  for (const Modulation m : kAllModulations) {
    EXPECT_DOUBLE_EQ(snr_gain(m), static_cast<double>(miller_m(m)));
  }
  // Link budget: each doubling of M is worth 10*log10(2) ~= 3.01 dB.
  const double db_m2 = ratio_to_db(snr_gain(Modulation::kMiller2));
  const double db_m4 = ratio_to_db(snr_gain(Modulation::kMiller4));
  const double db_m8 = ratio_to_db(snr_gain(Modulation::kMiller8));
  EXPECT_NEAR(db_m2, 3.0103, 1e-3);
  EXPECT_NEAR(db_m4 - db_m2, 3.0103, 1e-3);
  EXPECT_NEAR(db_m8 - db_m4, 3.0103, 1e-3);
}

TEST(Modulation, RateFactorTable) {
  EXPECT_DOUBLE_EQ(rate_factor(Modulation::kFM0), 1.0);
  EXPECT_DOUBLE_EQ(rate_factor(Modulation::kMiller2), 0.8);
  EXPECT_DOUBLE_EQ(rate_factor(Modulation::kMiller4), 0.55);
  EXPECT_DOUBLE_EQ(rate_factor(Modulation::kMiller8), 0.35);
}

TEST(Modulation, RateFallsAsSnrRises) {
  // The round-robin selection loop in rfid/reader.cc relies on the
  // schemes forming a strict rate/SNR trade-off in kAllModulations order.
  for (std::size_t i = 1; i < kAllModulations.size(); ++i) {
    EXPECT_GT(snr_gain(kAllModulations[i]), snr_gain(kAllModulations[i - 1]));
    EXPECT_LT(rate_factor(kAllModulations[i]),
              rate_factor(kAllModulations[i - 1]));
  }
}

TEST(Modulation, Names) {
  EXPECT_EQ(to_string(Modulation::kFM0), "FM0");
  EXPECT_EQ(to_string(Modulation::kMiller2), "Miller-2");
  EXPECT_EQ(to_string(Modulation::kMiller4), "Miller-4");
  EXPECT_EQ(to_string(Modulation::kMiller8), "Miller-8");
}

}  // namespace
}  // namespace polardraw::rfid
