// Tests for the Gen2 slotted-ALOHA inventory and Q adaptation, including
// the per-round property sweep and the counter-based determinism contract
// (gen2.h) plus the slot-sim-vs-steady-state-model agreement pinned in
// DESIGN.md section 16.
#include <gtest/gtest.h>

#include <cmath>

#include "rfid/gen2.h"

namespace polardraw::rfid {
namespace {

TEST(Gen2, SingleTagReadsFastOnceAdapted) {
  // With one tag, rounds re-frame (QueryAdjust) toward Q = 0 within a few
  // rounds; from then on nearly every round yields the read.
  Gen2Inventory inv(Gen2Config{}, Rng(3));
  int singletons = 0, collisions = 0;
  for (int i = 0; i < 50; ++i) {
    const auto round = inv.run_round(1);
    singletons += round.singletons;
    collisions += round.collisions;
    for (int t : round.read_tags) EXPECT_EQ(t, 0);
  }
  EXPECT_LE(inv.current_q(), 1.5);
  EXPECT_GE(singletons, 30);
  EXPECT_EQ(collisions, 0);
}

TEST(Gen2, SlotAccountingConsistent) {
  Gen2Inventory inv(Gen2Config{}, Rng(4));
  const auto round = inv.run_round(10);
  EXPECT_EQ(round.singletons + round.collisions + round.empties,
            round.processed);
  EXPECT_GE(round.processed, 1);
  EXPECT_LE(round.processed, round.slots);
  EXPECT_GT(round.duration_s, 0.0);
}

TEST(Gen2, QConvergesTowardLog2Population) {
  // With 64 tags, the adapted Q should settle near 6 (log2 64).
  Gen2Config cfg;
  cfg.initial_q = 2.0;
  Gen2Inventory inv(cfg, Rng(5));
  inv.run(64, 3.0);
  EXPECT_NEAR(inv.current_q(), 6.0, 1.6);
}

TEST(Gen2, QDropsForSmallPopulation) {
  Gen2Config cfg;
  cfg.initial_q = 8.0;  // far too many slots for 2 tags
  Gen2Inventory inv(cfg, Rng(6));
  inv.run(2, 2.0);
  EXPECT_LT(inv.current_q(), 4.0);
}

TEST(Gen2, ReadRateDividesWithPopulation) {
  const double r1 = measure_read_rate(1, 4.0, 7);
  const double r4 = measure_read_rate(4, 4.0, 7);
  const double r16 = measure_read_rate(16, 4.0, 7);
  EXPECT_GT(r1, 150.0);  // a lone tag reads fast
  // Aggregate throughput falls with collisions/empties but stays within
  // the classic slotted-ALOHA efficiency band.
  EXPECT_GT(r4, 0.4 * r1);
  EXPECT_GT(r16, 0.3 * r1);
  EXPECT_LT(r16, r1);
}

TEST(Gen2, AllTagsEventuallyRead) {
  Gen2Inventory inv(Gen2Config{}, Rng(8));
  const auto rounds = inv.run(12, 1.0);
  std::vector<bool> seen(12, false);
  for (const auto& r : rounds) {
    for (int t : r.read_tags) seen[static_cast<std::size_t>(t)] = true;
  }
  for (int t = 0; t < 12; ++t) {
    EXPECT_TRUE(seen[static_cast<std::size_t>(t)]) << "tag " << t;
  }
}

TEST(Gen2, DeterministicGivenSeed) {
  Gen2Inventory a(Gen2Config{}, Rng(9));
  Gen2Inventory b(Gen2Config{}, Rng(9));
  for (int i = 0; i < 10; ++i) {
    const auto ra = a.run_round(5);
    const auto rb = b.run_round(5);
    EXPECT_EQ(ra.singletons, rb.singletons);
    EXPECT_EQ(ra.read_tags, rb.read_tags);
  }
}

// --- Property sweep: per-round invariants over seeds x populations --------

TEST(Gen2Property, RoundInvariantsHoldAcrossSeedsAndPopulations) {
  const Gen2Config cfg;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const int n : {0, 1, 2, 3, 5, 8, 13, 21, 64, 200}) {
      Gen2Inventory inv(cfg, seed);
      for (int r = 0; r < 40; ++r) {
        const Gen2Round round = inv.run_round(n);
        // Outcome accounting: every processed slot is exactly one of the
        // three outcomes, and QueryAdjust never overruns the frame.
        ASSERT_EQ(round.singletons + round.collisions + round.empties,
                  round.processed)
            << "seed " << seed << " n " << n << " round " << r;
        ASSERT_GE(round.processed, 1);
        ASSERT_LE(round.processed, round.slots);
        // Q stays inside the configured band, and the frame size is its
        // power of two.
        ASSERT_GE(round.q_after, cfg.min_q);
        ASSERT_LE(round.q_after, cfg.max_q);
        ASSERT_GE(round.slots, 1);
        ASSERT_EQ(round.slots & (round.slots - 1), 0);
        // Air-time accounting: every slot costs slot_s, every singleton
        // additionally read_s.
        const double expected_s = round.processed * cfg.slot_s +
                                  round.singletons * cfg.read_s;
        ASSERT_NEAR(round.duration_s, expected_s, 1e-12);
        // Read bookkeeping: one offset per read, strictly increasing,
        // inside the round's air time, each read a valid tag index.
        ASSERT_EQ(round.read_tags.size(), round.read_offsets_s.size());
        double prev_off = 0.0;
        for (std::size_t k = 0; k < round.read_tags.size(); ++k) {
          ASSERT_GE(round.read_tags[k], 0);
          ASSERT_LT(round.read_tags[k], n);
          ASSERT_GT(round.read_offsets_s[k], prev_off);
          ASSERT_LE(round.read_offsets_s[k], round.duration_s + 1e-12);
          prev_off = round.read_offsets_s[k];
        }
        // With no tags there is nothing to read or collide with.
        if (n == 0) {
          ASSERT_EQ(round.singletons, 0);
          ASSERT_EQ(round.collisions, 0);
        }
      }
      ASSERT_EQ(inv.rounds_run(), 40u);
    }
  }
}

TEST(Gen2Property, SeedDeterminismBitIdentical) {
  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    Gen2Inventory a(Gen2Config{}, seed);
    Gen2Inventory b(Gen2Config{}, seed);
    for (int r = 0; r < 30; ++r) {
      const auto ra = a.run_round(7);
      const auto rb = b.run_round(7);
      ASSERT_EQ(ra.slots, rb.slots);
      ASSERT_EQ(ra.processed, rb.processed);
      ASSERT_EQ(ra.singletons, rb.singletons);
      ASSERT_EQ(ra.collisions, rb.collisions);
      ASSERT_EQ(ra.empties, rb.empties);
      ASSERT_EQ(ra.read_tags, rb.read_tags);
      ASSERT_EQ(ra.read_offsets_s, rb.read_offsets_s);
      ASSERT_EQ(ra.q_after, rb.q_after);
      ASSERT_EQ(ra.duration_s, rb.duration_s);
    }
  }
}

TEST(Gen2Property, SlotDrawsAreCounterBasedNotHistoryBased) {
  // The determinism contract: round r's slot picks are a pure function of
  // (seed, r, tag), independent of what earlier rounds processed. Pin Q
  // (min_q == max_q) so both inventories frame identically, run different
  // round-0 populations, then compare round 1 on the same population: the
  // shared tags must land in the same slots, hence identical outcomes.
  Gen2Config cfg;
  cfg.initial_q = 5.0;
  cfg.min_q = 5.0;
  cfg.max_q = 5.0;
  Gen2Inventory a(cfg, 1234);
  Gen2Inventory b(cfg, 1234);
  (void)a.run_round(3);    // short history
  (void)b.run_round(300);  // long history: 100x the slot draws
  const auto ra = a.run_round(6);
  const auto rb = b.run_round(6);
  EXPECT_EQ(ra.read_tags, rb.read_tags);
  EXPECT_EQ(ra.singletons, rb.singletons);
  EXPECT_EQ(ra.collisions, rb.collisions);
  EXPECT_EQ(ra.empties, rb.empties);
}

TEST(Gen2Property, QConvergesNearLog2ForRange) {
  // Across a population sweep the adapted Q settles near log2(n): the
  // C-algorithm's working point keeps roughly one responding tag per slot.
  for (const int n : {4, 8, 16, 32, 64}) {
    Gen2Config cfg;
    cfg.initial_q = 4.0;
    Gen2Inventory inv(cfg, 77);
    inv.run(n, 3.0);
    EXPECT_NEAR(inv.current_q(), std::log2(static_cast<double>(n)), 1.8)
        << "population " << n;
  }
}

// --- Slot simulation vs the closed-form steady-state model ----------------

TEST(Gen2Model, SimulationMatchesSteadyStateModelWithin12Percent) {
  // DESIGN.md section 16: the slot simulation sits slightly below the
  // continuous model (integer-Q dither + QueryAdjust truncation), within
  // 12% relative for 1-16 tags. A violation means the MAC sim and the
  // coarse model (used for sizing and sanity checks) have drifted apart.
  for (int n = 1; n <= 16; ++n) {
    const double model = steady_state_read_rate(n);
    const double sim = measure_read_rate(n, 30.0, 1000 + n);
    ASSERT_GT(model, 0.0);
    const double rel = (sim - model) / model;
    EXPECT_LT(std::fabs(rel), 0.12) << "n " << n << ": sim " << sim
                                    << " model " << model;
    // The bias direction is part of the contract: dither only costs.
    EXPECT_LT(rel, 0.02) << "n " << n << ": simulation above model";
  }
}

TEST(Gen2Model, SteadyStateModelScalesWithAirTiming) {
  // Halving all air timings doubles the read rate; the equilibrium load
  // (and with it the efficiency) is timing-independent.
  Gen2Config fast;
  fast.slot_s /= 2.0;
  fast.read_s /= 2.0;
  for (const int n : {1, 4, 16}) {
    EXPECT_NEAR(steady_state_read_rate(n, fast),
                2.0 * steady_state_read_rate(n), 1e-9);
  }
}

TEST(Gen2Model, SteadyStateModelEdgeCases) {
  EXPECT_EQ(steady_state_read_rate(0), 0.0);
  // One tag pins Q at min_q (a lone tag cannot collide): with the default
  // min_q = 0 the frame is one slot and every slot reads.
  const Gen2Config cfg;
  EXPECT_NEAR(steady_state_read_rate(1),
              1.0 / (cfg.slot_s + cfg.read_s), 1e-9);
  // Throughput decreases with population (more contention overhead).
  double prev = steady_state_read_rate(1);
  for (const int n : {2, 4, 8, 16, 64}) {
    const double r = steady_state_read_rate(n);
    EXPECT_LT(r, prev + 1e-12) << "n " << n;
    prev = r;
  }
}

}  // namespace
}  // namespace polardraw::rfid
