// Tests for the Gen2 slotted-ALOHA inventory and Q adaptation.
#include <gtest/gtest.h>

#include "rfid/gen2.h"

namespace polardraw::rfid {
namespace {

TEST(Gen2, SingleTagReadsFastOnceAdapted) {
  // With one tag, rounds re-frame (QueryAdjust) toward Q = 0 within a few
  // rounds; from then on nearly every round yields the read.
  Gen2Inventory inv(Gen2Config{}, Rng(3));
  int singletons = 0, collisions = 0;
  for (int i = 0; i < 50; ++i) {
    const auto round = inv.run_round(1);
    singletons += round.singletons;
    collisions += round.collisions;
    for (int t : round.read_tags) EXPECT_EQ(t, 0);
  }
  EXPECT_LE(inv.current_q(), 1.5);
  EXPECT_GE(singletons, 30);
  EXPECT_EQ(collisions, 0);
}

TEST(Gen2, SlotAccountingConsistent) {
  Gen2Inventory inv(Gen2Config{}, Rng(4));
  const auto round = inv.run_round(10);
  EXPECT_EQ(round.singletons + round.collisions + round.empties,
            round.processed);
  EXPECT_GE(round.processed, 1);
  EXPECT_LE(round.processed, round.slots);
  EXPECT_GT(round.duration_s, 0.0);
}

TEST(Gen2, QConvergesTowardLog2Population) {
  // With 64 tags, the adapted Q should settle near 6 (log2 64).
  Gen2Config cfg;
  cfg.initial_q = 2.0;
  Gen2Inventory inv(cfg, Rng(5));
  inv.run(64, 3.0);
  EXPECT_NEAR(inv.current_q(), 6.0, 1.6);
}

TEST(Gen2, QDropsForSmallPopulation) {
  Gen2Config cfg;
  cfg.initial_q = 8.0;  // far too many slots for 2 tags
  Gen2Inventory inv(cfg, Rng(6));
  inv.run(2, 2.0);
  EXPECT_LT(inv.current_q(), 4.0);
}

TEST(Gen2, ReadRateDividesWithPopulation) {
  const double r1 = measure_read_rate(1, 4.0, 7);
  const double r4 = measure_read_rate(4, 4.0, 7);
  const double r16 = measure_read_rate(16, 4.0, 7);
  EXPECT_GT(r1, 150.0);  // a lone tag reads fast
  // Aggregate throughput falls with collisions/empties but stays within
  // the classic slotted-ALOHA efficiency band.
  EXPECT_GT(r4, 0.4 * r1);
  EXPECT_GT(r16, 0.3 * r1);
  EXPECT_LT(r16, r1);
}

TEST(Gen2, AllTagsEventuallyRead) {
  Gen2Inventory inv(Gen2Config{}, Rng(8));
  const auto rounds = inv.run(12, 1.0);
  std::vector<bool> seen(12, false);
  for (const auto& r : rounds) {
    for (int t : r.read_tags) seen[static_cast<std::size_t>(t)] = true;
  }
  for (int t = 0; t < 12; ++t) {
    EXPECT_TRUE(seen[static_cast<std::size_t>(t)]) << "tag " << t;
  }
}

TEST(Gen2, DeterministicGivenSeed) {
  Gen2Inventory a(Gen2Config{}, Rng(9));
  Gen2Inventory b(Gen2Config{}, Rng(9));
  for (int i = 0; i < 10; ++i) {
    const auto ra = a.run_round(5);
    const auto rb = b.run_round(5);
    EXPECT_EQ(ra.singletons, rb.singletons);
    EXPECT_EQ(ra.read_tags, rb.read_tags);
  }
}

}  // namespace
}  // namespace polardraw::rfid
