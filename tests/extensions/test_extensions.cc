// Tests for the paper's future-work extensions implemented here: the
// particle-filter tracker, the language-model post-processor, the
// multi-tag inventory, and the WISP touch sensor.
#include <gtest/gtest.h>

#include "common/angles.h"
#include "core/particle_tracker.h"
#include "core/polardraw.h"
#include "eval/harness.h"
#include "recognition/language_model.h"
#include "rfid/wisp.h"
#include "sim/scene.h"

namespace polardraw {
namespace {

// ---------------------------------------------------------------------------
// Particle filter
// ---------------------------------------------------------------------------
core::PolarDrawConfig small_cfg() {
  core::PolarDrawConfig cfg;
  cfg.board_width_m = 0.4;
  cfg.board_height_m = 0.3;
  return cfg;
}

core::TrackObservation move_obs(Vec2 dir, double step) {
  core::TrackObservation o;
  o.direction.type = core::MotionType::kTranslational;
  o.direction.direction = dir.normalized();
  o.distance.lower_m = step * 0.9;
  o.distance.upper_m = 0.01;
  o.distance.valid = true;
  return o;
}

TEST(ParticleTracker, FollowsCommandedMotion) {
  const auto cfg = small_cfg();
  core::ParticleTracker pf(cfg, {}, {0.1, 0.35}, {0.3, 0.35}, 0.12, 5);
  const Vec2 hint{0.1, 0.15};
  std::vector<core::TrackObservation> obs(25, move_obs({1.0, 0.0}, 0.005));
  const auto traj = pf.decode(obs, &hint);
  ASSERT_EQ(traj.size(), 26u);
  EXPECT_GT(traj.back().x - traj.front().x, 0.06);
  EXPECT_NEAR(traj.back().y, traj.front().y, 0.05);
}

TEST(ParticleTracker, IdleHoldsPosition) {
  const auto cfg = small_cfg();
  core::ParticleTracker pf(cfg, {}, {0.1, 0.35}, {0.3, 0.35}, 0.12, 5);
  const Vec2 hint{0.2, 0.15};
  std::vector<core::TrackObservation> obs(20);  // all idle
  const auto traj = pf.decode(obs, &hint);
  for (const auto& p : traj) {
    EXPECT_NEAR(p.x, 0.2, 0.06);
    EXPECT_NEAR(p.y, 0.15, 0.06);
  }
}

TEST(ParticleTracker, EmptyObservations) {
  const auto cfg = small_cfg();
  core::ParticleTracker pf(cfg, {}, {0.1, 0.35}, {0.3, 0.35}, 0.12);
  EXPECT_TRUE(pf.decode({}).empty());
}

TEST(ParticleTracker, EndToEndViaConfigFlag) {
  eval::TrialConfig cfg;
  cfg.system = eval::System::kPolarDraw;
  cfg.seed = 31;
  cfg.algo.use_particle_filter = true;
  const auto res = eval::run_trial("O", cfg);
  EXPECT_GT(res.trajectory.size(), 40u);
  EXPECT_LT(res.procrustes_m, 0.15);
}

// ---------------------------------------------------------------------------
// Language model
// ---------------------------------------------------------------------------
TEST(BigramModel, CommonPatternsMoreLikely) {
  const recognition::BigramModel lm;
  // 'TH' is among the most common English bigrams; 'QX' is not.
  EXPECT_GT(lm.transition_log_prob('T', 'H'),
            lm.transition_log_prob('Q', 'X'));
  EXPECT_GT(lm.log_prob("THE"), lm.log_prob("XQZ"));
}

TEST(BigramModel, DegenerateWords) {
  const recognition::BigramModel lm;
  EXPECT_LT(lm.log_prob(""), -1e5);
  EXPECT_LT(lm.log_prob("A1B"), -1e5);
}

TEST(BigramModel, CustomCorpusLearns) {
  const recognition::BigramModel lm({"ZZZZ", "ZZZ"});
  EXPECT_GT(lm.transition_log_prob('Z', 'Z'),
            lm.transition_log_prob('A', 'B'));
}

TEST(WordCorrector, DecodePrefersLikelySequences) {
  const recognition::WordCorrector corrector{recognition::BigramModel{}, 2.0};
  // Position scores tie exactly; the bigram prior must break the tie
  // toward the common word.
  std::vector<std::vector<recognition::LetterHypothesis>> positions{
      {{'T', 0.0}, {'X', 0.0}},
      {{'H', 0.0}, {'Q', 0.0}},
      {{'E', 0.0}, {'Z', 0.0}},
  };
  EXPECT_EQ(corrector.decode(positions), "THE");
}

TEST(WordCorrector, DecodeRespectsStrongEvidence) {
  const recognition::WordCorrector corrector{recognition::BigramModel{}, 0.5};
  // Overwhelming classifier evidence for an unusual sequence must win.
  std::vector<std::vector<recognition::LetterHypothesis>> positions{
      {{'X', 0.0}, {'T', 50.0}},
      {{'Q', 0.0}, {'H', 50.0}},
  };
  EXPECT_EQ(corrector.decode(positions), "XQ");
}

TEST(WordCorrector, SnapFixesOneLetterError) {
  const recognition::WordCorrector corrector{recognition::BigramModel{}};
  EXPECT_EQ(corrector.snap_to_dictionary("MOOM", {"MOON", "GOLD", "RAIN"}),
            "MOON");
  // Beyond max_edits: unchanged.
  EXPECT_EQ(corrector.snap_to_dictionary("XYZQW", {"MOON"}), "XYZQW");
}

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(recognition::edit_distance("", ""), 0);
  EXPECT_EQ(recognition::edit_distance("ABC", "ABC"), 0);
  EXPECT_EQ(recognition::edit_distance("ABC", "ABD"), 1);
  EXPECT_EQ(recognition::edit_distance("ABC", "AC"), 1);
  EXPECT_EQ(recognition::edit_distance("KITTEN", "SITTING"), 3);
}

// ---------------------------------------------------------------------------
// Multi-tag inventory
// ---------------------------------------------------------------------------
TEST(MultiTag, PopulationSharesReadBudget) {
  sim::SceneConfig scfg;
  scfg.seed = 8;
  sim::Scene scene(scfg);
  em::Tag tag;
  tag.position = Vec3{0.45, 0.25, 0.0};
  tag.dipole_axis = em::pen_axis({deg2rad(30.0), deg2rad(90.0)});
  em::Tag tag2 = tag;
  tag2.position = Vec3{0.55, 0.25, 0.0};
  const std::vector<rfid::TagEntry> tags{
      {0xAA, [&](double) { return tag; }},
      {0xBB, [&](double) { return tag2; }},
  };
  scene.reader().select_modulation(tags[0].state);
  const auto reports = scene.reader().inventory_population(tags, 0.0, 3.0);
  ASSERT_GT(reports.size(), 100u);
  int a = 0, b = 0;
  for (const auto& r : reports) {
    if (r.epc == 0xAA) ++a;
    if (r.epc == 0xBB) ++b;
  }
  EXPECT_EQ(a + b, static_cast<int>(reports.size()));
  // Roughly even split of the slot budget.
  EXPECT_NEAR(static_cast<double>(a) / (a + b), 0.5, 0.12);
}

TEST(MultiTag, EmptyPopulation) {
  sim::SceneConfig scfg;
  sim::Scene scene(scfg);
  EXPECT_TRUE(scene.reader().inventory_population({}, 0.0, 1.0).empty());
}

// ---------------------------------------------------------------------------
// WISP touch sensing
// ---------------------------------------------------------------------------
TEST(Wisp, DetectsPenDownSegments) {
  handwriting::SynthesisConfig cfg;
  Rng rng(4);
  const auto trace = handwriting::synthesize("T", cfg, rng);  // 2 strokes
  rfid::WispConfig wcfg;
  Rng wisp_rng(5);
  const auto accel = rfid::simulate_wisp(trace, wcfg, wisp_rng);
  ASSERT_GT(accel.size(), 100u);

  const double window = 0.05;
  const auto touch = rfid::detect_touch(accel, window);
  ASSERT_FALSE(touch.empty());

  // Compare against ground truth per window: require decent agreement on
  // windows where the pen moves (dwell windows are ambiguous -- no
  // friction while touching but static).
  int agree = 0, total = 0;
  for (std::size_t w = 0; w < touch.size(); ++w) {
    const double t = (static_cast<double>(w) + 0.5) * window;
    const auto tag = sim::tag_at_time(trace, t);
    (void)tag;
    // Find pen_down and speed at window center from the trace.
    const auto& s = trace.samples;
    auto it = std::lower_bound(
        s.begin(), s.end(), t,
        [](const handwriting::TraceSample& a, double tv) { return a.t_s < tv; });
    if (it == s.begin() || it == s.end()) continue;
    const auto& hi = *it;
    const auto& lo = *(it - 1);
    const double speed =
        hi.pen_tip.dist(lo.pen_tip) / std::max(hi.t_s - lo.t_s, 1e-9);
    if (speed < 0.02) continue;  // skip dwells and slow corners
    ++total;
    agree += touch[w] == lo.pen_down ? 1 : 0;
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(static_cast<double>(agree) / total, 0.8);
}

TEST(Wisp, GravityDominatesAtRest) {
  handwriting::WritingTrace trace;
  for (int i = 0; i <= 200; ++i) {
    handwriting::TraceSample s;
    s.t_s = i * 0.01;
    s.pen_tip = Vec3{0.4, 0.2, 0.0};
    s.pen_down = false;
    trace.samples.push_back(s);
  }
  rfid::WispConfig cfg;
  Rng rng(6);
  const auto accel = rfid::simulate_wisp(trace, cfg, rng);
  ASSERT_FALSE(accel.empty());
  for (const auto& a : accel) {
    EXPECT_NEAR(a.accel.norm(), cfg.gravity, 1.0);
    EXPECT_LT(a.accel.y, 0.0);
  }
}

TEST(Wisp, DegenerateInputs) {
  rfid::WispConfig cfg;
  Rng rng(1);
  EXPECT_TRUE(rfid::simulate_wisp(handwriting::WritingTrace{}, cfg, rng).empty());
  EXPECT_TRUE(rfid::detect_touch({}, 0.05).empty());
}

}  // namespace
}  // namespace polardraw
