// Tests for the counter-based per-trial seed derivation.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/seed.h"

namespace polardraw {
namespace {

TEST(Splitmix64, PureFunctionOfBaseAndIndex) {
  EXPECT_EQ(splitmix64(777, 0), splitmix64(777, 0));
  EXPECT_EQ(splitmix64(777, 41), splitmix64(777, 41));
  EXPECT_NE(splitmix64(777, 0), splitmix64(777, 1));
  EXPECT_NE(splitmix64(777, 0), splitmix64(778, 0));
}

TEST(Splitmix64, IsCompileTimeConstant) {
  static_assert(splitmix64(1, 2) == splitmix64(1, 2));
  static_assert(splitmix64(0, 0) != splitmix64(0, 1));
}

TEST(Splitmix64, AdjacentIndicesGiveDistinctWellSpreadSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 777ull, ~0ull}) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      seen.insert(splitmix64(base, i));
    }
  }
  // The finalizer is a bijection per base; collisions across bases are
  // astronomically unlikely for 4000 draws.
  EXPECT_EQ(seen.size(), 4000u);
}

TEST(Splitmix64, AvalanchesSingleBitIndexChanges) {
  // Adjacent counters must not produce correlated high/low words: check
  // that at least a quarter of the 64 bits flip on average.
  int flips = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    flips += __builtin_popcountll(splitmix64(9, i) ^ splitmix64(9, i + 1));
  }
  EXPECT_GT(flips, 64 * 16);
}

TEST(Splitmix64, SeedsDriveIndependentRngStreams) {
  Rng a(splitmix64(5, 0)), b(splitmix64(5, 1));
  bool any_diff = false;
  for (int i = 0; i < 16 && !any_diff; ++i) {
    any_diff = a.uniform() != b.uniform();
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace polardraw
