#include "common/vec.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/angles.h"

namespace polardraw {
namespace {

TEST(Vec2, DefaultIsZero) {
  Vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_EQ(a.dot(b), 0.0);
  EXPECT_EQ(a.cross(b), 1.0);
  EXPECT_EQ(b.cross(a), -1.0);
  EXPECT_EQ(a.dot(a), 1.0);
}

TEST(Vec2, NormAndDistance) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(v.dist({0.0, 0.0}), 5.0);
  EXPECT_DOUBLE_EQ(v.dist({3.0, 0.0}), 4.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 v = Vec2{3.0, 4.0}.normalized();
  EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  EXPECT_NEAR(v.x, 0.6, 1e-12);
}

TEST(Vec2, NormalizedZeroStaysZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, RotationQuarterTurn) {
  const Vec2 r = Vec2{1.0, 0.0}.rotated(kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Vec2, RotationPreservesNorm) {
  const Vec2 v{2.5, -1.5};
  for (double a : {0.1, 1.0, 2.0, 3.0, -2.2}) {
    EXPECT_NEAR(v.rotated(a).norm(), v.norm(), 1e-12) << "angle " << a;
  }
}

TEST(Vec2, AngleOfAxes) {
  EXPECT_NEAR(Vec2(1.0, 0.0).angle(), 0.0, 1e-12);
  EXPECT_NEAR(Vec2(0.0, 1.0).angle(), kPi / 2.0, 1e-12);
  EXPECT_NEAR(Vec2(-1.0, 0.0).angle(), kPi, 1e-12);
}

TEST(Vec3, CrossProductRightHanded) {
  const Vec3 x{1.0, 0.0, 0.0}, y{0.0, 1.0, 0.0};
  EXPECT_EQ(x.cross(y), Vec3(0.0, 0.0, 1.0));
  EXPECT_EQ(y.cross(x), Vec3(0.0, 0.0, -1.0));
}

TEST(Vec3, DotOrthogonal) {
  EXPECT_EQ(Vec3(1, 0, 0).dot(Vec3(0, 1, 0)), 0.0);
  EXPECT_EQ(Vec3(1, 2, 3).dot(Vec3(1, 2, 3)), 14.0);
}

TEST(Vec3, NormalizedAndXY) {
  const Vec3 v{0.0, 3.0, 4.0};
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
  EXPECT_EQ(v.xy(), Vec2(0.0, 3.0));
}

TEST(Vec3, FromVec2) {
  const Vec3 v{Vec2{1.0, 2.0}, 3.0};
  EXPECT_EQ(v, Vec3(1.0, 2.0, 3.0));
}

TEST(VecPrint, StreamsReadably) {
  std::ostringstream os;
  os << Vec2{1.5, -2.0} << " " << Vec3{1.0, 2.0, 3.0};
  EXPECT_EQ(os.str(), "(1.5, -2) (1, 2, 3)");
}

}  // namespace
}  // namespace polardraw
