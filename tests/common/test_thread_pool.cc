// Tests for the fixed-size thread pool and its parallel_for map.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace polardraw {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ResultsLandInTheirOwnSlots) {
  ThreadPool pool(4);
  std::vector<std::size_t> out(1000, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  long total = 0;
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<int> v(50, 0);
    pool.parallel_for(v.size(), [&](std::size_t i) { v[i] = 1; });
    total += std::accumulate(v.begin(), v.end(), 0);
  }
  EXPECT_EQ(total, 20 * 50);
}

TEST(ThreadPool, EmptyAndSingleRangesWork) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, MoreThreadsThanWorkIsFine) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesBodyExceptions) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t i) {
                            if (i == 37) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool must still be usable after an exceptional batch.
    std::atomic<int> ok{0};
    pool.parallel_for(10, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 10);
  }
}

TEST(ThreadPool, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.size(), 1);
  int calls = 0;
  pool.parallel_for(5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvOverride) {
  ::setenv("POLARDRAW_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3);
  ::setenv("POLARDRAW_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
  ::unsetenv("POLARDRAW_THREADS");
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
}

}  // namespace
}  // namespace polardraw
