#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace polardraw {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.push(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesBatchOnRandomData) {
  Rng rng(77);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.5);
    xs.push_back(x);
    s.push(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(Percentile, EdgesAndMedian) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 90.0), 9.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(Percentile, DegenerateInputs) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  EXPECT_EQ(percentile({42.0}, 99.0), 42.0);
  // Out-of-range p clamps.
  EXPECT_EQ(percentile({1.0, 2.0}, -5.0), 1.0);
  EXPECT_EQ(percentile({1.0, 2.0}, 150.0), 2.0);
}

TEST(MeanOf, Basic) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(EmpiricalCdf, MonotoneAndComplete) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_EQ(cdf.front().first, 1.0);
  EXPECT_EQ(cdf.back().first, 3.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(Rng, DeterministicWithSeed) {
  Rng a(5), b(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, ForkIndependentOfParentDraws) {
  Rng a(9);
  Rng fork = a.fork();
  const double first = fork.uniform();
  Rng b(9);
  Rng fork2 = b.fork();
  EXPECT_EQ(first, fork2.uniform());
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const int v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.push(rng.gaussian(1.0, 2.0));
  EXPECT_NEAR(s.mean(), 1.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace polardraw
