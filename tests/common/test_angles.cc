#include "common/angles.h"

#include <gtest/gtest.h>

#include <cmath>

namespace polardraw {
namespace {

TEST(AngleConversion, DegreesRadians) {
  EXPECT_NEAR(deg2rad(180.0), kPi, 1e-12);
  EXPECT_NEAR(rad2deg(kPi / 2.0), 90.0, 1e-12);
  EXPECT_NEAR(rad2deg(deg2rad(33.3)), 33.3, 1e-12);
}

TEST(Wrap2Pi, MapsIntoRange) {
  EXPECT_NEAR(wrap_2pi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_2pi(kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_2pi(-0.1), kTwoPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_2pi(7.0 * kPi), kPi, 1e-9);
  for (double a = -20.0; a < 20.0; a += 0.37) {
    const double w = wrap_2pi(a);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kTwoPi);
  }
}

TEST(WrapPi, MapsIntoRange) {
  EXPECT_NEAR(wrap_pi(kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi), kPi, 1e-12);  // (-pi, pi] convention
  EXPECT_NEAR(wrap_pi(3.0 * kPi / 2.0), -kPi / 2.0, 1e-12);
  for (double a = -20.0; a < 20.0; a += 0.41) {
    const double w = wrap_pi(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
  }
}

TEST(Wrap2Pi, SeamBehavior) {
  // Exactly at and infinitesimally around the 0 / 2*pi seam.
  EXPECT_EQ(wrap_2pi(0.0), 0.0);
  EXPECT_LT(wrap_2pi(-1e-12), kTwoPi);           // wraps just below 2*pi
  EXPECT_NEAR(wrap_2pi(-1e-12), kTwoPi, 1e-11);
  EXPECT_NEAR(wrap_2pi(kTwoPi + 1e-12), 0.0, 1e-11);
  // Large multiples either side of the seam stay in range.
  EXPECT_GE(wrap_2pi(-100.0 * kTwoPi - 1e-9), 0.0);
  EXPECT_LT(wrap_2pi(100.0 * kTwoPi + 1e-9), kTwoPi);
  // -0.0 must not escape the [0, 2*pi) contract as a negative value.
  EXPECT_GE(wrap_2pi(-0.0), 0.0);
}

TEST(Wrap2Pi, NegativeInputs) {
  EXPECT_NEAR(wrap_2pi(-kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_2pi(-kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_2pi(-5.0 * kPi / 2.0), 3.0 * kPi / 2.0, 1e-12);
  for (double a = -50.0; a < 0.0; a += 0.113) {
    const double w = wrap_2pi(a);
    EXPECT_GE(w, 0.0) << a;
    EXPECT_LT(w, kTwoPi) << a;
    // Same point on the circle: sin/cos agree with the input.
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9) << a;
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9) << a;
  }
}

TEST(FoldPi, MatchesLegacyFmodFold) {
  // fold_pi replaced the hand-rolled `fmod(x, kPi); if (< 0) += kPi` folds
  // in wrist.cc / antenna.cc; it must be bit-identical to that logic.
  for (double a = -30.0; a < 30.0; a += 0.0917) {
    double legacy = std::fmod(a, kPi);  // polarlint-allow(R1): pins fold_pi against the legacy fold
    if (legacy < 0.0) legacy += kPi;
    EXPECT_EQ(fold_pi(a), legacy) << a;
  }
}

TEST(FoldPi, LineAngleSemantics) {
  // A projected line at theta and theta + pi is the same line.
  for (double a = -10.0; a < 10.0; a += 0.073) {
    const double f = fold_pi(a);
    EXPECT_GE(f, 0.0) << a;
    EXPECT_LT(f, kPi) << a;
    EXPECT_NEAR(fold_pi(a + kPi), f, 1e-9) << a;
    // tan is pi-periodic: the fold preserves it.
    if (std::fabs(std::cos(a)) > 1e-3) {
      EXPECT_NEAR(std::tan(f), std::tan(a), 1e-6 * (1.0 + std::fabs(std::tan(a))))
          << a;
    }
  }
  EXPECT_EQ(fold_pi(0.0), 0.0);
  EXPECT_NEAR(fold_pi(-1e-12), kPi, 1e-11);  // just below the seam folds high
}

TEST(AngleDiff, SignedShortestPath) {
  EXPECT_NEAR(angle_diff(0.1, 0.0), 0.1, 1e-12);
  EXPECT_NEAR(angle_diff(0.0, 0.1), -0.1, 1e-12);
  // Across the wrap.
  EXPECT_NEAR(angle_diff(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(kTwoPi - 0.1, 0.1), -0.2, 1e-12);
}

TEST(AngleDiff, Antisymmetry) {
  // angle_diff(a, b) == -angle_diff(b, a) everywhere except the branch cut
  // at exactly pi apart, where both sides return +pi by the (-pi, pi]
  // convention.
  for (double a = 0.0; a < kTwoPi; a += 0.237) {
    for (double b = 0.0; b < kTwoPi; b += 0.311) {
      const double ab = angle_diff(a, b);
      const double ba = angle_diff(b, a);
      if (std::fabs(std::fabs(ab) - kPi) < 1e-12) {
        EXPECT_NEAR(ba, kPi, 1e-12) << a << " " << b;
      } else {
        EXPECT_NEAR(ab, -ba, 1e-12) << a << " " << b;
      }
    }
  }
}

TEST(AngleDiff, SeamCrossing) {
  // Differences straddling the 0 / 2*pi seam take the short way around.
  EXPECT_NEAR(angle_diff(1e-9, kTwoPi - 1e-9), 2e-9, 1e-12);
  EXPECT_NEAR(angle_diff(kTwoPi - 1e-9, 1e-9), -2e-9, 1e-12);
  EXPECT_NEAR(angle_diff(0.0, kPi), kPi, 1e-12);  // branch cut: +pi
}

TEST(AngleDist, NonNegativeAndSymmetric) {
  for (double a = 0.0; a < kTwoPi; a += 0.7) {
    for (double b = 0.0; b < kTwoPi; b += 0.9) {
      EXPECT_GE(angle_dist(a, b), 0.0);
      EXPECT_LE(angle_dist(a, b), kPi + 1e-12);
      EXPECT_NEAR(angle_dist(a, b), angle_dist(b, a), 1e-12);
    }
  }
}

TEST(Unwrap, RecoversLinearRamp) {
  // A steadily growing phase wrapped to [0, 2*pi) must unwrap back to
  // the original ramp (up to the starting offset).
  std::vector<double> wrapped;
  for (int i = 0; i < 100; ++i) {
    wrapped.push_back(wrap_2pi(0.3 * i));
  }
  const auto un = unwrapped(wrapped);
  for (int i = 1; i < 100; ++i) {
    EXPECT_NEAR(un[i] - un[i - 1], 0.3, 1e-9) << "at " << i;
  }
}

TEST(Unwrap, HandlesNegativeRamp) {
  std::vector<double> wrapped;
  for (int i = 0; i < 80; ++i) wrapped.push_back(wrap_2pi(-0.4 * i));
  const auto un = unwrapped(wrapped);
  for (int i = 1; i < 80; ++i) {
    EXPECT_NEAR(un[i] - un[i - 1], -0.4, 1e-9);
  }
}

TEST(Unwrap, ShortSeriesUntouched) {
  std::vector<double> one{1.0};
  unwrap_inplace(one);
  EXPECT_EQ(one[0], 1.0);
  std::vector<double> empty;
  unwrap_inplace(empty);
  EXPECT_TRUE(empty.empty());
}

TEST(PhaseUnwrapper, StreamingMatchesBatch) {
  std::vector<double> wrapped;
  for (int i = 0; i < 60; ++i) {
    wrapped.push_back(wrap_2pi(0.05 * i * i - 1.3 * i));
  }
  const auto batch = unwrapped(wrapped);
  PhaseUnwrapper u;
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    const double streamed = u.push(wrapped[i]);
    EXPECT_NEAR(streamed, batch[i], 1e-9) << "at " << i;
  }
}

TEST(PhaseUnwrapper, SteepRampAcrossManyWraps) {
  // A ramp just under the Nyquist step (pi per sample) wraps on almost
  // every sample; the unwrapper must still recover the full excursion.
  const double step = 3.0;  // < pi
  PhaseUnwrapper u;
  double last = 0.0;
  for (int i = 0; i < 500; ++i) {
    last = u.push(wrap_2pi(step * i));
  }
  EXPECT_NEAR(last, step * 499, 1e-6);
  // And back down again, re-crossing every wrap in reverse.
  for (int i = 498; i >= 0; --i) {
    last = u.push(wrap_2pi(step * i));
  }
  EXPECT_NEAR(last, 0.0, 1e-6);
  EXPECT_GT(u.value(), -1e-6);
}

TEST(PhaseUnwrapper, ResetClearsState) {
  PhaseUnwrapper u;
  u.push(1.0);
  u.push(2.0);
  u.reset();
  EXPECT_FALSE(u.has_value());
  EXPECT_NEAR(u.push(5.0), 5.0, 1e-12);
}

TEST(PhaseUnwrapper, PushAtMonotoneTimeMatchesPush) {
  // With strictly increasing timestamps, push_at must be push: same
  // branch, same values, including across a wrap seam.
  std::vector<double> wrapped;
  for (int i = 0; i < 80; ++i) {
    wrapped.push_back(wrap_2pi(2.9 * i));  // wraps on nearly every step
  }
  PhaseUnwrapper timed, untimed;
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    const double a = timed.push_at(wrapped[i], 0.05 * static_cast<double>(i));
    const double b = untimed.push(wrapped[i]);
    EXPECT_EQ(a, b) << "at " << i;
  }
  EXPECT_EQ(timed.nonmonotone_rejected(), 0u);
}

TEST(PhaseUnwrapper, DuplicateTimestampRejectedAtWrapSeam) {
  // Park the series just below the 2*pi seam, then replay the same
  // timestamp with a reading from just above the seam. Differencing the
  // pair would step the branch by ~-2*pi even though time never advanced;
  // the duplicate must leave the unwrapped value untouched.
  PhaseUnwrapper u;
  u.push_at(6.2, 1.0);
  const double before = u.push_at(6.28, 2.0);
  const double after = u.push_at(0.01, 2.0);  // same t, across the seam
  EXPECT_EQ(after, before);
  EXPECT_EQ(u.value(), before);
  EXPECT_EQ(u.nonmonotone_rejected(), 1u);
  // The comparison reference is also unchanged: the next in-order sample
  // differences against 6.28, not against the rejected 0.01.
  const double next = u.push_at(6.27, 3.0);
  EXPECT_NEAR(next, before - 0.01, 1e-12);
}

TEST(PhaseUnwrapper, ReorderedInputRejectedAndCounted) {
  PhaseUnwrapper u;
  u.push_at(1.0, 10.0);
  u.push_at(1.5, 11.0);
  const double settled = u.value();
  // A late-arriving pair from an earlier interleaving slot.
  EXPECT_EQ(u.push_at(4.0, 9.5), settled);
  EXPECT_EQ(u.push_at(4.2, 10.5), settled);
  EXPECT_EQ(u.nonmonotone_rejected(), 2u);
  // In-order traffic resumes unharmed.
  EXPECT_NEAR(u.push_at(1.6, 12.0), settled + 0.1, 1e-12);
}

TEST(PhaseUnwrapper, ResetAcceptsAnyTimeAndKeepsRejectCount) {
  PhaseUnwrapper u;
  u.push_at(1.0, 5.0);
  u.push_at(1.2, 4.0);  // rejected
  EXPECT_EQ(u.nonmonotone_rejected(), 1u);
  u.reset();
  // A fresh stream may legitimately restart the clock.
  EXPECT_NEAR(u.push_at(2.0, 0.5), 2.0, 1e-12);
  EXPECT_EQ(u.nonmonotone_rejected(), 1u);  // total survives reset()
}

}  // namespace
}  // namespace polardraw
