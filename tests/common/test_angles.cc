#include "common/angles.h"

#include <gtest/gtest.h>

namespace polardraw {
namespace {

TEST(AngleConversion, DegreesRadians) {
  EXPECT_NEAR(deg2rad(180.0), kPi, 1e-12);
  EXPECT_NEAR(rad2deg(kPi / 2.0), 90.0, 1e-12);
  EXPECT_NEAR(rad2deg(deg2rad(33.3)), 33.3, 1e-12);
}

TEST(Wrap2Pi, MapsIntoRange) {
  EXPECT_NEAR(wrap_2pi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_2pi(kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_2pi(-0.1), kTwoPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_2pi(7.0 * kPi), kPi, 1e-9);
  for (double a = -20.0; a < 20.0; a += 0.37) {
    const double w = wrap_2pi(a);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kTwoPi);
  }
}

TEST(WrapPi, MapsIntoRange) {
  EXPECT_NEAR(wrap_pi(kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi), kPi, 1e-12);  // (-pi, pi] convention
  EXPECT_NEAR(wrap_pi(3.0 * kPi / 2.0), -kPi / 2.0, 1e-12);
  for (double a = -20.0; a < 20.0; a += 0.41) {
    const double w = wrap_pi(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
  }
}

TEST(AngleDiff, SignedShortestPath) {
  EXPECT_NEAR(angle_diff(0.1, 0.0), 0.1, 1e-12);
  EXPECT_NEAR(angle_diff(0.0, 0.1), -0.1, 1e-12);
  // Across the wrap.
  EXPECT_NEAR(angle_diff(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(kTwoPi - 0.1, 0.1), -0.2, 1e-12);
}

TEST(AngleDist, NonNegativeAndSymmetric) {
  for (double a = 0.0; a < kTwoPi; a += 0.7) {
    for (double b = 0.0; b < kTwoPi; b += 0.9) {
      EXPECT_GE(angle_dist(a, b), 0.0);
      EXPECT_LE(angle_dist(a, b), kPi + 1e-12);
      EXPECT_NEAR(angle_dist(a, b), angle_dist(b, a), 1e-12);
    }
  }
}

TEST(Unwrap, RecoversLinearRamp) {
  // A steadily growing phase wrapped to [0, 2*pi) must unwrap back to
  // the original ramp (up to the starting offset).
  std::vector<double> wrapped;
  for (int i = 0; i < 100; ++i) {
    wrapped.push_back(wrap_2pi(0.3 * i));
  }
  const auto un = unwrapped(wrapped);
  for (int i = 1; i < 100; ++i) {
    EXPECT_NEAR(un[i] - un[i - 1], 0.3, 1e-9) << "at " << i;
  }
}

TEST(Unwrap, HandlesNegativeRamp) {
  std::vector<double> wrapped;
  for (int i = 0; i < 80; ++i) wrapped.push_back(wrap_2pi(-0.4 * i));
  const auto un = unwrapped(wrapped);
  for (int i = 1; i < 80; ++i) {
    EXPECT_NEAR(un[i] - un[i - 1], -0.4, 1e-9);
  }
}

TEST(Unwrap, ShortSeriesUntouched) {
  std::vector<double> one{1.0};
  unwrap_inplace(one);
  EXPECT_EQ(one[0], 1.0);
  std::vector<double> empty;
  unwrap_inplace(empty);
  EXPECT_TRUE(empty.empty());
}

TEST(PhaseUnwrapper, StreamingMatchesBatch) {
  std::vector<double> wrapped;
  for (int i = 0; i < 60; ++i) {
    wrapped.push_back(wrap_2pi(0.05 * i * i - 1.3 * i));
  }
  const auto batch = unwrapped(wrapped);
  PhaseUnwrapper u;
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    const double streamed = u.push(wrapped[i]);
    EXPECT_NEAR(streamed, batch[i], 1e-9) << "at " << i;
  }
}

TEST(PhaseUnwrapper, ResetClearsState) {
  PhaseUnwrapper u;
  u.push(1.0);
  u.push(2.0);
  u.reset();
  EXPECT_FALSE(u.has_value());
  EXPECT_NEAR(u.push(5.0), 5.0, 1e-12);
}

}  // namespace
}  // namespace polardraw
