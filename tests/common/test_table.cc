#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/units.h"

namespace polardraw {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, AddRowValuesFormats) {
  Table t({"x", "y"});
  t.add_row_values({1.23456, 2.0}, 2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1.23,2.00\n");
}

TEST(Table, CsvRoundtrip) {
  Table t({"h1", "h2"});
  t.add_row({"a", "b"});
  t.add_row({"c", "d"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "h1,h2\na,b\nc,d\n");
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(AsciiPlot, MarksExtremes) {
  const auto art = ascii_plot({{0.0, 0.0}, {1.0, 1.0}}, 10, 5);
  ASSERT_FALSE(art.empty());
  // Top-right and bottom-left must be marked (y axis renders top-down).
  std::istringstream is(art);
  std::string first, line, last;
  std::getline(is, first);
  last = first;
  while (std::getline(is, line)) last = line;
  EXPECT_EQ(first.back(), '*');
  EXPECT_EQ(last.front(), '*');
}

TEST(AsciiPlot, DegenerateInputsSafe) {
  EXPECT_TRUE(ascii_plot({}).empty());
  EXPECT_FALSE(ascii_plot({{1.0, 1.0}}).empty());  // single point plots
  EXPECT_TRUE(ascii_plot({{0, 0}, {1, 1}}, 1, 1).empty());
}

TEST(Units, DbmRoundtrip) {
  EXPECT_NEAR(mw_to_dbm(1.0), 0.0, 1e-12);
  EXPECT_NEAR(mw_to_dbm(100.0), 20.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(-30.0), 0.001, 1e-12);
  for (double dbm : {-60.0, -20.0, 0.0, 17.0}) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9);
  }
}

TEST(Units, ZeroPowerClampsNotInf) {
  EXPECT_EQ(mw_to_dbm(0.0), -150.0);
  EXPECT_EQ(mw_to_dbm(-1.0), -150.0);
  EXPECT_EQ(mw_to_dbm(1e-30), -150.0);
}

TEST(Units, RatioDb) {
  EXPECT_NEAR(db_to_ratio(3.0103), 2.0, 1e-4);
  EXPECT_NEAR(ratio_to_db(0.5), -3.0103, 1e-4);
}

}  // namespace
}  // namespace polardraw
