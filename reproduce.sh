#!/usr/bin/env sh
# Reproduces the full evaluation: build, run the test suite, regenerate
# every table/figure (CSV copies land in results/ for plotting).
#
#   ./reproduce.sh           # default trial counts (~30 min on one core)
#   PD_BENCH_REPS=5 ./reproduce.sh   # closer to the paper's trial counts
set -eu

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure | tee test_output.txt

export PD_BENCH_CSV_DIR="${PD_BENCH_CSV_DIR:-$(pwd)/results}"
mkdir -p "$PD_BENCH_CSV_DIR"
{
  for b in build/bench/*; do
    echo "######## $b"
    "$b"
    echo
  done
} | tee bench_output.txt

echo "Done. Tables: bench_output.txt, CSVs: $PD_BENCH_CSV_DIR/"
