// HMM trajectory tracking (paper section 3.5 + appendix).
//
// The whiteboard is discretized into equal blocks; the hidden state X_t is
// the pen's block at window t. Transitions (Eq. 8) are uniform over the
// feasible annulus (lower/upper displacement bounds from the distance
// estimator). The observation weight (Eq. 11) combines:
//   * the hyperbola constraint -- how well a block's inter-antenna path
//     difference matches the measured inter-antenna phase difference, and
//   * the direction-line constraint -- the block's perpendicular distance
//     to the line through the previous location along the estimated
//     moving direction.
// Because the paper's emission references the previous location, the term
// is evaluated edge-wise inside the Viterbi recursion (it is formally a
// transition weight; the decoded optimum is identical).
//
// Viterbi decoding with beam pruning recovers the most likely block
// sequence; the final trajectory is then rotated by the accumulated
// initial-azimuth error (Eq. 10).
//
// Hot-path layout: the expected phase-difference field is precomputed once
// per antenna layout (core/phase_field.h) and shared with the Kalman and
// particle trackers; the forward pass tracks best-per-cell candidates in a
// dense generation-stamped scoreboard (core/scoreboard.h) and stores beams
// as flat SoA arrays in a step-indexed arena, so a decode allocates a
// handful of buffers total instead of per-window node vectors.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/vec.h"
#include "core/config.h"
#include "core/distance_estimator.h"
#include "core/motion.h"
#include "core/phase_field.h"

namespace polardraw::core {

/// One fused observation per window, as consumed by the HMM.
struct TrackObservation {
  DirectionEstimate direction;
  DistanceEstimate distance;
  bool has_phase = false;  // both antennas had valid phase this window
};

/// Hyperbolic bootstrap shared by the batch and streaming decoders
/// (section 3.5 "Initial location estimation"): picks a board point whose
/// expected inter-antenna phase difference matches `dtheta21`, preferring
/// points near the board center. Deterministic; absolute position is
/// unobservable from two antennas, so any consistent point serves.
Vec2 initial_location_on_field(const PolarDrawConfig& cfg,
                               const PhaseField& field, double dtheta21);

class HmmTracker {
 public:
  /// `a1`, `a2`: antenna positions projected on the board plane;
  /// `antenna_z`: common standoff of the antennas from the board.
  /// `field`: optional pre-built phase-difference cache for this layout
  /// (shared across trackers); built on the spot when absent.
  HmmTracker(const PolarDrawConfig& cfg, Vec2 a1, Vec2 a2, double antenna_z,
             std::shared_ptr<const PhaseField> field = nullptr);

  /// Decodes the most likely block-center trajectory for the observation
  /// sequence. `initial_hint`: when provided (e.g. from hyperbolic
  /// positioning), seeds the first state; otherwise the tracker seeds from
  /// the hyperbola field of the first phase observation.
  std::vector<Vec2> decode(const std::vector<TrackObservation>& obs,
                           const Vec2* initial_hint = nullptr) const;

  /// Hyperbolic bootstrap (section 3.5 "Initial location estimation"):
  /// picks a board point whose expected inter-antenna phase difference
  /// matches `dtheta21`, preferring points near the board center. The
  /// choice is deterministic; absolute position is unobservable from two
  /// antennas, so any consistent point serves.
  Vec2 initial_location(double dtheta21) const;

  /// Applies Eq. 10: rotates a trajectory about its centroid by
  /// `-alpha_r_error_rad` to undo the initial-azimuth error.
  static std::vector<Vec2> rotate_trajectory(const std::vector<Vec2>& traj,
                                             double alpha_r_error_rad);

  // Grid helpers (exposed for tests).
  int cols() const { return cols_; }
  int rows() const { return rows_; }
  Vec2 block_center(int col, int row) const {
    return field_->block_center(col, row);
  }
  const PhaseField& field() const { return *field_; }

 private:
  PolarDrawConfig cfg_;
  Vec2 a1_, a2_;
  double antenna_z_;
  std::shared_ptr<const PhaseField> field_;
  int cols_, rows_;
};

}  // namespace polardraw::core
