#include "core/rotation_tracker.h"

#include <cmath>

#include "em/tag.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace polardraw::core {

RotationTracker::RotationTracker(const PolarDrawConfig& cfg) : cfg_(cfg) {}

void RotationTracker::reset() {
  started_ = false;
  alpha_a_rad_ = 0.0;
  sector_ = Sector::kUnknown;
  correction_ = 0.0;
  correction_locked_ = false;
}

std::optional<RotationTracker::TrendDecision> RotationTracker::classify_trend(
    double ds1, double ds2) const {
  // Table 3. Antenna 1 (index 0) is polarized at pi/2 + gamma, antenna 2
  // (index 1) at pi/2 - gamma; "=>" (rightward) is clockwise (azimuth
  // decreasing). Requires both deltas to be meaningfully non-zero for the
  // same-sign rows (the rate comparison is meaningless near zero).
  constexpr double kTiny = 1e-6;
  const bool up1 = ds1 > kTiny, up2 = ds2 > kTiny;
  const bool dn1 = ds1 < -kTiny, dn2 = ds2 < -kTiny;
  const double m1 = std::fabs(ds1), m2 = std::fabs(ds2);

  if (up1 && up2) {
    // Sector 1 clockwise (|ds1| < |ds2|) or sector 3 counter-clockwise.
    if (m1 < m2) return TrendDecision{Sector::kSector1, RotationSense::kClockwise};
    return TrendDecision{Sector::kSector3, RotationSense::kCounterClockwise};
  }
  if (dn1 && dn2) {
    if (m1 < m2)
      return TrendDecision{Sector::kSector1, RotationSense::kCounterClockwise};
    return TrendDecision{Sector::kSector3, RotationSense::kClockwise};
  }
  if (dn1 && up2) return TrendDecision{Sector::kSector2, RotationSense::kClockwise};
  if (up1 && dn2)
    return TrendDecision{Sector::kSector2, RotationSense::kCounterClockwise};
  return std::nullopt;
}

double RotationTracker::initial_azimuth(Sector sector,
                                        RotationSense sense) const {
  // Eq. 2: seed at the sector boundary the azimuth is moving away from.
  const double g = cfg_.gamma_rad;
  if (sense == RotationSense::kClockwise) {
    switch (sector) {
      case Sector::kSector1: return kPi - g;
      case Sector::kSector2: return kPi / 2.0 + g;
      case Sector::kSector3: return kPi / 2.0 - g;
      default: break;
    }
  } else if (sense == RotationSense::kCounterClockwise) {
    switch (sector) {
      case Sector::kSector1: return kPi / 2.0 + g;
      case Sector::kSector2: return kPi / 2.0 - g;
      case Sector::kSector3: return g;
      default: break;
    }
  }
  return kPi / 2.0;
}

double RotationTracker::rotation_angle(double alpha_a_rad) const {
  return em::rotation_angle_from_pen({cfg_.alpha_e_rad, alpha_a_rad});
}

Vec2 RotationTracker::motion_direction(double alpha_r_rad, RotationSense sense) {
  // Motion is perpendicular to the board-projected pen angle; the wrist
  // model fixes the horizontal sign: clockwise rotation = moving right.
  const Vec2 pen_dir{std::cos(alpha_r_rad), std::sin(alpha_r_rad)};
  Vec2 perp{-pen_dir.y, pen_dir.x};
  const bool want_right = sense == RotationSense::kClockwise;
  if ((want_right && perp.x < 0.0) || (!want_right && perp.x > 0.0)) {
    perp = -perp;
  }
  return perp.normalized();
}

double RotationTracker::boundary_angle(Sector from, Sector to) const {
  const double g = cfg_.gamma_rad;
  const auto pair = [&](Sector a, Sector b) {
    return (from == a && to == b) || (from == b && to == a);
  };
  if (pair(Sector::kSector1, Sector::kSector2)) return kPi / 2.0 + g;
  if (pair(Sector::kSector2, Sector::kSector3)) return kPi / 2.0 - g;
  // Sectors 1 and 3 are not adjacent; the crossing must have passed
  // through sector 2 unobserved -- snap to the nearer boundary.
  return alpha_a_rad_ > kPi / 2.0 ? kPi / 2.0 + g : kPi / 2.0 - g;
}

RotationSense RotationTracker::sense_in_sector(Sector sector, double ds1,
                                               double ds2) {
  constexpr double kTiny = 1e-6;
  const bool up1 = ds1 > kTiny, up2 = ds2 > kTiny;
  const bool dn1 = ds1 < -kTiny, dn2 = ds2 < -kTiny;
  switch (sector) {
    case Sector::kSector1:
      if (up1 && up2) return RotationSense::kClockwise;
      if (dn1 && dn2) return RotationSense::kCounterClockwise;
      break;
    case Sector::kSector2:
      if (dn1 && up2) return RotationSense::kClockwise;
      if (up1 && dn2) return RotationSense::kCounterClockwise;
      // Near the middle of sector 2 one antenna's response flattens at its
      // peak; fall back to the stronger trend's implied sense.
      if (std::fabs(ds2) > std::fabs(ds1)) {
        if (up2) return RotationSense::kClockwise;
        if (dn2) return RotationSense::kCounterClockwise;
      } else {
        if (dn1) return RotationSense::kClockwise;
        if (up1) return RotationSense::kCounterClockwise;
      }
      break;
    case Sector::kSector3:
      if (dn1 && dn2) return RotationSense::kClockwise;
      if (up1 && up2) return RotationSense::kCounterClockwise;
      break;
    default:
      break;
  }
  return RotationSense::kNone;
}

Sector RotationTracker::sector_of(double alpha_a_rad) const {
  const double g = cfg_.gamma_rad;
  if (alpha_a_rad < kPi / 2.0 - g) return Sector::kSector3;
  if (alpha_a_rad <= kPi / 2.0 + g) return Sector::kSector2;
  return Sector::kSector1;
}

DirectionEstimate RotationTracker::step(double ds1, double ds2) {
  static const obs::SpanSite span_site("core.rotation_step");
  const obs::ScopedSpan span(span_site);
  static const obs::Counter steps_counter("rotation.steps");
  steps_counter.add();
  DirectionEstimate est;
  Sector sector;
  RotationSense sense;

  if (!started_) {
    // Bootstrap: full Table 3 decode (sector + sense) from the joint
    // trend/rate pattern, then seed the azimuth at the sector boundary
    // the rotation is leaving (Eq. 2).
    const auto decision = classify_trend(ds1, ds2);
    if (!decision) {
      est.type = MotionType::kIdle;
      return est;
    }
    sector = decision->sector;
    sense = decision->sense;
    alpha_a_rad_ = initial_azimuth(sector, sense);
    sector_ = sector;
    started_ = true;
  } else {
    // Continuous tracking: the tracked azimuth pins the sector, so only
    // the rotation sense needs decoding -- far more robust than re-running
    // the rate comparison, which is noise-fragile near antenna peaks.
    sector = sector_of(alpha_a_rad_);
    sense = sense_in_sector(sector, ds1, ds2);
    if (sense == RotationSense::kNone) {
      // Sign pattern impossible in this sector: the pen crossed into a
      // neighboring sector. Re-decode fully and apply the initial-azimuth
      // correction at the boundary (section 3.3.1).
      const auto decision = classify_trend(ds1, ds2);
      if (!decision) {
        est.type = MotionType::kIdle;
        return est;
      }
      if (decision->sector != sector && sector_ != Sector::kUnknown) {
        const double boundary = boundary_angle(sector, decision->sector);
        // The discrepancy at the FIRST crossing is the initial-azimuth
        // error alpha-tilde (section 3.3.1); later crossings just re-snap
        // the tracked angle -- their discrepancies are tracking noise,
        // not the initial error, and must not pile into Eq. 10.
        if (!correction_locked_) {
          correction_ = alpha_a_rad_ - boundary;
          correction_locked_ = true;
        }
        alpha_a_rad_ = boundary;
      }
      sector = decision->sector;
      sense = decision->sense;
    }
    sector_ = sector;
  }

  // Eqs. 3-4: step the azimuth only when the RSS change is strong enough
  // to indicate genuine rotation. The paper gates on both antennas; near
  // an antenna's response peak its own RSS flattens, so we gate on the
  // stronger change with a reduced requirement on the weaker one.
  const double gate = cfg_.delta_beta_gate_db;
  const double strong = std::max(std::fabs(ds1), std::fabs(ds2));
  const double weak = std::min(std::fabs(ds1), std::fabs(ds2));
  const double step_rad =
      (strong > gate && weak > 0.2 * gate) ? cfg_.delta_beta_rad : 0.0;
  alpha_a_rad_ += sense == RotationSense::kClockwise ? -step_rad : step_rad;
  // Keep the azimuth inside the sector union [gamma, pi - gamma].
  const double lo = cfg_.gamma_rad, hi = kPi - cfg_.gamma_rad;
  if (alpha_a_rad_ < lo) alpha_a_rad_ = lo;
  if (alpha_a_rad_ > hi) alpha_a_rad_ = hi;

  est.type = MotionType::kRotational;
  est.sense = sense;
  est.sector = sector;
  est.alpha_a_rad = alpha_a_rad_;
  est.alpha_r_rad = rotation_angle(alpha_a_rad_);
  est.direction = motion_direction(est.alpha_r_rad, sense);
  return est;
}

}  // namespace polardraw::core
