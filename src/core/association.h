// Tag-to-track association: EPC-keyed report streams to per-pen sessions.
//
// The multi-pen pipeline (paper section 7, "Extending to multi-user case")
// demultiplexes one MAC-arbitrated report stream into per-pen tracks: each
// EPC gets its own incremental preprocess (windowing, spurious rejection,
// unwrap) and its own motion pipeline (rotation/translation trackers,
// distance estimator), replicating core::PolarDraw::track_windows window
// by window. The associator emits `PenEvent`s -- open / observation /
// azimuth-correction / close -- that map one-to-one onto the
// server::SessionServer API, so a reader frontend can drive many
// concurrent decoders from a single interleaved stream.
//
// Pen lifecycle: a session opens at an EPC's first report and closes when
// its reports stop for `idle_close_s` of stream time (the pen left the
// interrogation zone, or its tag is starved). A returning EPC opens a
// *new* session: ids are `epc | generation << 32`, so a pen that leaves
// and comes back draws a fresh trajectory instead of teleporting the old
// one.
//
// Determinism contract (pinned by tests/core/test_association.cc): the
// event stream is a pure function of the report stream -- reports are
// processed in order, idle closes scan tracks in EPC order, and nothing
// here consults a clock or RNG.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/distance_estimator.h"
#include "core/hmm_tracker.h"
#include "core/preprocess.h"
#include "core/rotation_tracker.h"
#include "core/translation_tracker.h"
#include "rfid/tag_report.h"

namespace polardraw::core {

struct AssociatorConfig {
  /// Stream-time report gap that closes a pen's session. Within a shorter
  /// gap the track emits empty (phaseless) windows, exactly as the batch
  /// pipeline does for dropped reads.
  double idle_close_s = 1.0;
};

enum class PenEventType { kOpen, kObservation, kAzimuthCorrection, kClose };

/// One associator output event. Apply in order:
///   kOpen               -> SessionServer::open(session_id)
///   kObservation        -> SessionServer::submit(session_id, obs)
///   kAzimuthCorrection  -> SessionServer::accumulate_azimuth_correction
///   kClose              -> SessionServer::close(session_id)
struct PenEvent {
  PenEventType type = PenEventType::kObservation;
  std::uint64_t session_id = 0;
  std::uint32_t epc = 0;
  double t_s = 0.0;  // window center (observation) or report time
  TrackObservation obs;            // kObservation only
  double azimuth_delta_rad = 0.0;  // kAzimuthCorrection only
  /// Causal flow id (kObservation only): the serial of a flow-sampled
  /// report that fed this observation's window, 0 when none was sampled.
  /// Observational only -- carried so SessionServer can link the
  /// decoder-commit flow event; never read by tracking math.
  std::uint64_t flow_id = 0;
};

class TagTrackAssociator {
 public:
  /// `calibration` is copied; pass the reader's known offsets to enable
  /// calibrated-hop phase continuation (see PhaseCalibration).
  explicit TagTrackAssociator(const PolarDrawConfig& cfg,
                              AssociatorConfig acfg = {},
                              const PhaseCalibration* calibration = nullptr);
  ~TagTrackAssociator();

  TagTrackAssociator(const TagTrackAssociator&) = delete;
  TagTrackAssociator& operator=(const TagTrackAssociator&) = delete;
  TagTrackAssociator(TagTrackAssociator&&) = default;
  TagTrackAssociator& operator=(TagTrackAssociator&&) = default;

  /// Routes one report; reports must arrive in non-decreasing timestamp
  /// order (the reader's native order). Returns the events it triggered:
  /// idle closes of stale tracks first (EPC order), then this report's
  /// own open/observations.
  std::vector<PenEvent> push(const rfid::TagReport& report);

  /// Convenience: pushes a whole (time-ordered) stream.
  std::vector<PenEvent> push(const rfid::TagReportStream& reports);

  /// Finalizes every open track: flushes partial windows through the
  /// pipelines and emits the trailing observation + close events. The
  /// associator is reusable afterwards (a returning EPC starts a new
  /// generation).
  std::vector<PenEvent> flush();

  /// Session id for an EPC's n-th appearance (generation starts at 0).
  static std::uint64_t make_session_id(std::uint32_t epc,
                                       std::uint32_t generation) {
    return static_cast<std::uint64_t>(epc) |
           (static_cast<std::uint64_t>(generation) << 32);
  }

  [[nodiscard]] std::size_t open_tracks() const { return tracks_.size(); }

 private:
  struct Track;

  Track& open_track(std::uint32_t epc, double t_s, std::vector<PenEvent>& out);
  void route(const rfid::TagReport& r, std::vector<PenEvent>& out);
  /// Closes every track whose last report is older than idle_close_s at
  /// stream time `t_s`; scans in EPC order for determinism.
  void close_stale(double t_s, std::vector<PenEvent>& out);
  void finalize_window(Track& track, std::vector<PenEvent>& out);
  /// `flow_serial` is the window's sampled flow id (0 = unsampled); it
  /// rides with the held-back observation so the emitted PenEvent links
  /// the causal chain.
  void process_window(Track& track, const Window& win,
                      std::uint64_t flow_serial, std::vector<PenEvent>& out);
  void close_track(Track& track, std::vector<PenEvent>& out);

  PolarDrawConfig cfg_;
  AssociatorConfig acfg_;
  PhaseCalibration calibration_;
  /// Ordered by EPC so stale-track closes emit in a stream-derived order.
  std::map<std::uint32_t, std::unique_ptr<Track>> tracks_;
  /// Next generation per EPC (survives closes within this associator).
  std::map<std::uint32_t, std::uint32_t> generations_;
};

}  // namespace polardraw::core
