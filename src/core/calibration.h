// Reference-tag phase calibration.
//
// The tracking algorithms compare phases across antenna ports (the Eq. 7
// hyperbola), which requires knowing each port's RF-chain phase offset.
// Real deployments estimate these with a reference tag at a known
// position -- the same procedure Tagoram describes -- rather than reading
// them out of the hardware. This module implements that procedure: given
// a report stream from a static tag at a known location, it solves for
// the per-port offsets that make the measured phases consistent with the
// known geometry.
#pragma once

#include <optional>
#include <vector>

#include "common/vec.h"
#include "core/preprocess.h"
#include "rfid/tag_report.h"

namespace polardraw::core {

struct CalibrationSetup {
  /// Known reference-tag position (board coordinates, meters).
  Vec3 tag_position;
  /// Antenna phase-center positions, one per port.
  std::vector<Vec3> antenna_positions;
  /// Carrier wavelength, meters.
  double wavelength_m = 0.3276;
};

struct CalibrationResult {
  PhaseCalibration calibration;
  /// Circular standard deviation of the residual phase per port, radians.
  /// Large values mean the reference measurement was unstable (multipath,
  /// moving tag) and the calibration should not be trusted.
  std::vector<double> residual_std_rad;
  /// Number of reads used per port.
  std::vector<int> reads_used;
};

/// Estimates per-port phase offsets from reads of a static reference tag:
/// offset_j = circular_mean(measured_j) - 4*pi*|antenna_j - tag| / lambda.
/// Returns nullopt if any port has fewer than `min_reads` reads.
std::optional<CalibrationResult> calibrate_from_reference(
    const rfid::TagReportStream& reports, const CalibrationSetup& setup,
    int min_reads = 10);

}  // namespace polardraw::core
