#include "core/hmm_tracker.h"

// The Viterbi hot loop lives in core/streaming_decoder.cc; the batch
// decode below is a thin full-lag wrapper around it.

#include <limits>
#include <utility>

#include "common/angles.h"
#include "core/streaming_decoder.h"
#include "obs/trace.h"

namespace polardraw::core {

HmmTracker::HmmTracker(const PolarDrawConfig& cfg, Vec2 a1, Vec2 a2,
                       double antenna_z,
                       std::shared_ptr<const PhaseField> field)
    : cfg_(cfg),
      a1_(a1),
      a2_(a2),
      antenna_z_(antenna_z),
      field_(field != nullptr
                 ? std::move(field)
                 : std::make_shared<const PhaseField>(cfg, a1, a2, antenna_z)),
      cols_(field_->cols()),
      rows_(field_->rows()) {}

Vec2 initial_location_on_field(const PolarDrawConfig& cfg,
                               const PhaseField& field, double dtheta21) {
  // Scan the cached field for blocks whose expected inter-antenna phase
  // difference matches the measurement; among matches prefer the one
  // nearest the board center (the paper picks a point on a candidate
  // hyperbola arbitrarily -- absolute position is unobservable; only
  // trajectory shape matters).
  const Vec2 center{cfg.board_width_m / 2.0, cfg.board_height_m / 2.0};
  const double target = wrap_2pi(dtheta21);
  double best_score = std::numeric_limits<double>::infinity();
  Vec2 best = center;
  for (int r = 0; r < field.rows(); ++r) {
    for (int c = 0; c < field.cols(); ++c) {
      const double mismatch = angle_dist(field.phase_at(c, r), target);
      // The center-distance term only adds; skip the sqrt when the phase
      // mismatch alone already loses.
      if (mismatch * 2.0 >= best_score) continue;
      const Vec2 p = field.block_center(c, r);
      const double score = mismatch * 2.0 + p.dist(center);
      if (score < best_score) {
        best_score = score;
        best = p;
      }
    }
  }
  return best;
}

Vec2 HmmTracker::initial_location(double dtheta21) const {
  return initial_location_on_field(cfg_, *field_, dtheta21);
}

std::vector<Vec2> HmmTracker::decode(const std::vector<TrackObservation>& obs,
                                     const Vec2* initial_hint) const {
  static const obs::SpanSite span_site("core.hmm_decode");
  static const obs::TraceName arg_windows("windows");
  obs::ScopedSpan span(span_site);
  span.arg(arg_windows, static_cast<double>(obs.size()));
  std::vector<Vec2> traj;
  if (obs.empty()) return traj;

  // The batch decode is the streaming decoder run with a lag longer than
  // the sequence: nothing commits until finish(), whose final backtrace is
  // exactly the classic Viterbi backtrace. Keeping a single forward-pass
  // implementation is what makes the fixed-lag equivalence contract
  // (tests/core/test_streaming_decoder.cc) hold bit for bit.
  StreamingConfig scfg;
  scfg.lag_windows = obs.size() + 1;
  StreamingDecoder decoder(cfg_, a1_, a2_, antenna_z_, scfg, field_,
                           initial_hint);
  for (const TrackObservation& o : obs) decoder.push(o);
  traj.reserve(obs.size() + 1);
  decoder.finish(traj);
  return traj;
}

std::vector<Vec2> HmmTracker::rotate_trajectory(const std::vector<Vec2>& traj,
                                                double alpha_r_error_rad) {
  if (traj.empty()) return traj;
  Vec2 centroid;
  for (const Vec2& p : traj) centroid += p;
  centroid = centroid / static_cast<double>(traj.size());
  std::vector<Vec2> out;
  out.reserve(traj.size());
  for (const Vec2& p : traj) {
    out.push_back(centroid + (p - centroid).rotated(-alpha_r_error_rad));
  }
  return out;
}

}  // namespace polardraw::core
