#include "core/hmm_tracker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/angles.h"

namespace polardraw::core {

namespace {
constexpr float kNegInf = -std::numeric_limits<float>::infinity();
constexpr double kWeightFloor = 1e-6;  // keeps log-probabilities finite
}  // namespace

HmmTracker::HmmTracker(const PolarDrawConfig& cfg, Vec2 a1, Vec2 a2,
                       double antenna_z)
    : cfg_(cfg),
      a1_(a1),
      a2_(a2),
      antenna_z_(antenna_z),
      cols_(std::max(1, static_cast<int>(cfg.board_width_m / cfg.block_m))),
      rows_(std::max(1, static_cast<int>(cfg.board_height_m / cfg.block_m))),
      dist_(cfg) {}

Vec2 HmmTracker::block_center(int col, int row) const {
  return Vec2{(static_cast<double>(col) + 0.5) * cfg_.block_m,
              (static_cast<double>(row) + 0.5) * cfg_.block_m};
}

Vec2 HmmTracker::initial_location(double dtheta21) const {
  // Scan the grid for blocks whose expected inter-antenna phase difference
  // matches the measurement; among matches prefer the one nearest the board
  // center (the paper picks a point on a candidate hyperbola arbitrarily --
  // absolute position is unobservable; only trajectory shape matters).
  const Vec2 center{cfg_.board_width_m / 2.0, cfg_.board_height_m / 2.0};
  const double target = wrap_2pi(dtheta21);
  double best_score = std::numeric_limits<double>::infinity();
  Vec2 best = center;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const Vec2 p = block_center(c, r);
      const double expected = dist_.expected_dtheta21(p, a1_, a2_, antenna_z_);
      const double mismatch = angle_dist(expected, target);
      const double score = mismatch * 2.0 + p.dist(center);
      if (score < best_score) {
        best_score = score;
        best = p;
      }
    }
  }
  return best;
}

double HmmTracker::emission_weight(const Vec2& candidate, const Vec2& previous,
                                   const TrackObservation& o) const {
  double w = 1.0;

  // Hyperbola term of Eq. 11: 1 - |dtheta_meas - dtheta(x,y)| / (4*pi),
  // compared circularly.
  if (cfg_.use_hyperbola_constraint && o.has_phase && o.distance.valid) {
    const double expected =
        dist_.expected_dtheta21(candidate, a1_, a2_, antenna_z_);
    const double mismatch =
        angle_dist(expected, wrap_2pi(o.distance.dtheta21));
    const double term = std::max(1.0 - mismatch / (4.0 * kPi), kWeightFloor);
    w *= cfg_.hyperbola_sharpness == 1.0
             ? term
             : std::pow(term, cfg_.hyperbola_sharpness);
  }

  // Direction-line term of Eq. 11: perpendicular distance from the
  // candidate to the line through the previous location along the
  // estimated moving direction, normalized by the max displacement.
  if (o.direction.type != MotionType::kIdle &&
      o.direction.direction.norm_sq() > 0.0) {
    const Vec2 d = o.direction.direction;
    const Vec2 rel = candidate - previous;
    const double perp = std::fabs(rel.cross(d));
    const double dmax = std::max(o.distance.upper_m, cfg_.block_m);
    double term = std::max(1.0 - perp / dmax, kWeightFloor);
    // Half-plane preference: candidates behind the motion direction are
    // inconsistent with the estimated heading.
    if (rel.dot(d) < -0.25 * cfg_.block_m) term *= 0.25;
    w *= term;
  }
  return w;
}

std::vector<Vec2> HmmTracker::decode(const std::vector<TrackObservation>& obs,
                                     const Vec2* initial_hint) const {
  std::vector<Vec2> traj;
  if (obs.empty()) return traj;

  // --- Initial state -------------------------------------------------------
  Vec2 start{cfg_.board_width_m / 2.0, cfg_.board_height_m / 2.0};
  if (initial_hint != nullptr) {
    start = *initial_hint;
  } else {
    for (const auto& o : obs) {
      if (o.has_phase) {
        start = initial_location(o.distance.dtheta21);
        break;
      }
    }
  }
  const int c0 = std::clamp(static_cast<int>(start.x / cfg_.block_m), 0,
                            cols_ - 1);
  const int r0 = std::clamp(static_cast<int>(start.y / cfg_.block_m), 0,
                            rows_ - 1);

  std::vector<std::vector<Node>> beams;
  beams.reserve(obs.size() + 1);
  beams.push_back({Node{c0, r0, 0.0f, -1}});

  // --- Forward pass --------------------------------------------------------
  for (const auto& o : obs) {
    const auto& prev = beams.back();

    // Feasible annulus in blocks. An invalid (inconsistent) distance
    // estimate degrades to "anywhere within the speed limit".
    const double lower =
        o.distance.valid ? o.distance.lower_m : 0.0;
    const double upper = std::max(
        {o.distance.upper_m, lower, cfg_.block_m * 0.5});
    const int reach = std::max(1, static_cast<int>(std::ceil(
                                   upper / cfg_.block_m)));

    std::vector<Node> next;
    next.reserve(prev.size() * (2 * reach + 1));

    // Best incoming score per candidate block, tracked sparsely.
    // Key = row * cols + col.
    std::unordered_map<std::int64_t, std::size_t> best_idx;
    best_idx.reserve(prev.size() * 8);

    for (std::int32_t pi = 0; pi < static_cast<std::int32_t>(prev.size());
         ++pi) {
      const Node& p = prev[pi];
      if (p.log_prob == kNegInf) continue;
      const Vec2 from = block_center(p.col, p.row);
      for (int dr = -reach; dr <= reach; ++dr) {
        const int nr = p.row + dr;
        if (nr < 0 || nr >= rows_) continue;
        for (int dc = -reach; dc <= reach; ++dc) {
          const int nc = p.col + dc;
          if (nc < 0 || nc >= cols_) continue;
          const Vec2 to = block_center(nc, nr);
          const double step = from.dist(to);
          // Annulus membership (Eq. 8); allow a quarter-block tolerance so
          // the discretization cannot strand the chain, while keeping the
          // lower bound binding (it is the phase-derived minimum motion).
          if (step > upper + 0.5 * cfg_.block_m) continue;
          if (step + 0.25 * cfg_.block_m < lower) continue;

          double w = emission_weight(to, from, o);
          if (o.direction.type == MotionType::kIdle && upper > 0.0) {
            // No direction estimate this window: tie-break toward small
            // steps (an undetected motion is a small motion), otherwise
            // the annulus blocks tie -- exactly along the hyperbola when
            // phase is present, everywhere when it is not -- and the
            // argmax drifts.
            const double frac = step / upper;
            w *= std::exp(-cfg_.unobserved_step_penalty * frac * frac);
          }
          const float lp =
              p.log_prob + static_cast<float>(std::log(std::max(w, kWeightFloor)));
          const std::int64_t key =
              static_cast<std::int64_t>(nr) * cols_ + nc;
          const auto it = best_idx.find(key);
          if (it == best_idx.end()) {
            best_idx.emplace(key, next.size());
            next.push_back({nc, nr, lp, pi});
          } else if (lp > next[it->second].log_prob) {
            next[it->second] = {nc, nr, lp, pi};
          }
        }
      }
    }

    if (next.empty()) {
      // Chain starved (e.g. all motion rejected) -- hold position.
      next.push_back({prev.front().col, prev.front().row,
                      prev.front().log_prob, 0});
    }
    // Beam pruning: keep the most probable states.
    if (next.size() > cfg_.beam_width) {
      std::nth_element(next.begin(), next.begin() + cfg_.beam_width,
                       next.end(), [](const Node& a, const Node& b) {
                         return a.log_prob > b.log_prob;
                       });
      next.resize(cfg_.beam_width);
    }
    if (!cfg_.use_viterbi) {
      // Greedy ablation: collapse the beam to the single best state.
      const auto it = std::max_element(
          next.begin(), next.end(),
          [](const Node& a, const Node& b) { return a.log_prob < b.log_prob; });
      next = {*it};
    }
    beams.push_back(std::move(next));
  }

  // --- Backtrace -----------------------------------------------------------
  const auto& last = beams.back();
  std::int32_t idx = 0;
  for (std::int32_t i = 1; i < static_cast<std::int32_t>(last.size()); ++i) {
    if (last[i].log_prob > last[idx].log_prob) idx = i;
  }
  std::vector<Vec2> reversed;
  reversed.reserve(beams.size());
  for (std::size_t step = beams.size(); step-- > 0;) {
    const Node& n = beams[step][static_cast<std::size_t>(idx)];
    reversed.push_back(block_center(n.col, n.row));
    idx = n.parent;
    if (idx < 0 && step > 0) {
      // Defensive: should only happen at step 0.
      for (std::size_t s = step; s-- > 0;) {
        reversed.push_back(block_center(beams[s].front().col,
                                        beams[s].front().row));
      }
      break;
    }
  }
  traj.assign(reversed.rbegin(), reversed.rend());
  return traj;
}

std::vector<Vec2> HmmTracker::rotate_trajectory(const std::vector<Vec2>& traj,
                                                double alpha_r_error) {
  if (traj.empty()) return traj;
  Vec2 centroid;
  for (const Vec2& p : traj) centroid += p;
  centroid = centroid / static_cast<double>(traj.size());
  std::vector<Vec2> out;
  out.reserve(traj.size());
  for (const Vec2& p : traj) {
    out.push_back(centroid + (p - centroid).rotated(-alpha_r_error));
  }
  return out;
}

}  // namespace polardraw::core
