#include "core/hmm_tracker.h"

// polarlint: hot-path -- no node-based hash maps in the decode loop.

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/angles.h"
#include "core/scoreboard.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace polardraw::core {

namespace {
constexpr double kWeightFloor = 1e-6;  // keeps log-probabilities finite
}  // namespace

HmmTracker::HmmTracker(const PolarDrawConfig& cfg, Vec2 a1, Vec2 a2,
                       double antenna_z,
                       std::shared_ptr<const PhaseField> field)
    : cfg_(cfg),
      a1_(a1),
      a2_(a2),
      antenna_z_(antenna_z),
      field_(field != nullptr
                 ? std::move(field)
                 : std::make_shared<const PhaseField>(cfg, a1, a2, antenna_z)),
      cols_(field_->cols()),
      rows_(field_->rows()) {}

Vec2 HmmTracker::initial_location(double dtheta21) const {
  // Scan the cached field for blocks whose expected inter-antenna phase
  // difference matches the measurement; among matches prefer the one
  // nearest the board center (the paper picks a point on a candidate
  // hyperbola arbitrarily -- absolute position is unobservable; only
  // trajectory shape matters).
  const Vec2 center{cfg_.board_width_m / 2.0, cfg_.board_height_m / 2.0};
  const double target = wrap_2pi(dtheta21);
  double best_score = std::numeric_limits<double>::infinity();
  Vec2 best = center;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const double mismatch = angle_dist(field_->phase_at(c, r), target);
      // The center-distance term only adds; skip the sqrt when the phase
      // mismatch alone already loses.
      if (mismatch * 2.0 >= best_score) continue;
      const Vec2 p = field_->block_center(c, r);
      const double score = mismatch * 2.0 + p.dist(center);
      if (score < best_score) {
        best_score = score;
        best = p;
      }
    }
  }
  return best;
}

std::vector<Vec2> HmmTracker::decode(const std::vector<TrackObservation>& obs,
                                     const Vec2* initial_hint) const {
  static const obs::SpanSite span_site("core.hmm_decode");
  static const obs::TraceName arg_windows("windows");
  static const obs::TraceName window_name("hmm.window");
  static const obs::TraceName arg_window("window");
  static const obs::TraceName arg_occupancy("beam_occupancy");
  obs::Tracer& tracer = obs::Tracer::global();
  const bool tracing = tracer.enabled();
  obs::ScopedSpan span(span_site);
  span.arg(arg_windows, static_cast<double>(obs.size()));
  std::vector<Vec2> traj;
  if (obs.empty()) return traj;

  // Hot-loop counters stay in plain locals (one increment each, no atomics,
  // no enabled() check) and flush to the registry once per decode; the
  // registry handles drop the flush when metrics are disabled.
  std::uint64_t n_expansions = 0;    // edges surviving the annulus tests
  std::uint64_t n_annulus_rej = 0;   // edges rejected by the annulus tests
  std::uint64_t n_hyper_hits = 0;    // hyperbola-term cache hits
  std::uint64_t n_hyper_misses = 0;  // hyperbola-term cache fills
  std::uint64_t n_starved = 0;       // windows that hit the starvation hold
  std::uint64_t n_beam_nodes = 0;    // beam survivors summed over windows
  std::uint64_t beam_peak = 0;       // largest per-window beam occupancy

  const PhaseField& field = *field_;

  // --- Initial state -------------------------------------------------------
  Vec2 start{cfg_.board_width_m / 2.0, cfg_.board_height_m / 2.0};
  if (initial_hint != nullptr) {
    start = *initial_hint;
  } else {
    for (const auto& o : obs) {
      if (o.has_phase) {
        start = initial_location(o.distance.dtheta21);
        break;
      }
    }
  }
  const int c0 = std::clamp(static_cast<int>(start.x / cfg_.block_m), 0,
                            cols_ - 1);
  const int r0 = std::clamp(static_cast<int>(start.y / cfg_.block_m), 0,
                            rows_ - 1);

  // --- Beam arena ----------------------------------------------------------
  // All surviving nodes of all steps, flat SoA; `parent` is an absolute
  // arena index so the backtrace never touches per-step containers.
  std::vector<std::int32_t> node_cell;
  std::vector<float> node_logp;
  std::vector<std::int32_t> node_parent;
  node_cell.push_back(r0 * cols_ + c0);
  node_logp.push_back(0.0f);
  node_parent.push_back(-1);
  std::size_t prev_begin = 0, prev_end = 1;

  // Scratch reused across windows: candidate SoA for the step being built,
  // the best-candidate-per-cell scoreboard, the per-window hyperbola-term
  // cache (the term depends only on the destination cell, so it is shared
  // by every incoming edge), and the pruning index buffer.
  const std::size_t n_cells = field.cells();
  GenerationScoreboard<std::int32_t> best_slot(n_cells);
  GenerationScoreboard<double> hyper_term(n_cells);
  std::vector<std::int32_t> cand_cell, cand_parent;
  std::vector<float> cand_logp;
  std::vector<std::int32_t> order;
  std::vector<int> dc_lim;  // per-|dr| column reach inside the outer radius

  // --- Forward pass --------------------------------------------------------
  std::uint64_t window_index = 0;  // trace arg only, never decode state
  for (const auto& o : obs) {
    // Feasible annulus in blocks. An invalid (inconsistent) distance
    // estimate degrades to "anywhere within the speed limit".
    const double lower = o.distance.valid ? o.distance.lower_m : 0.0;
    const double upper = std::max(
        {o.distance.upper_m, lower, cfg_.block_m * 0.5});
    const int reach = std::max(1, static_cast<int>(std::ceil(
                                   upper / cfg_.block_m)));

    // Per-window hoists of everything the old per-edge emission recomputed.
    const double out_thresh = upper + 0.5 * cfg_.block_m;
    const double quarter_block = 0.25 * cfg_.block_m;
    const bool use_hyper =
        cfg_.use_hyperbola_constraint && o.has_phase && o.distance.valid;
    const double meas = use_hyper ? wrap_2pi(o.distance.dtheta21) : 0.0;
    const bool use_dir = o.direction.type != MotionType::kIdle &&
                         o.direction.direction.norm_sq() > 0.0;
    const Vec2 dir = o.direction.direction;
    const double dmax = std::max(o.distance.upper_m, cfg_.block_m);
    const double back_thresh = -0.25 * cfg_.block_m;
    const bool idle_step_penalty =
        o.direction.type == MotionType::kIdle && upper > 0.0;

    // Integer annulus bound: a candidate |dc| blocks away horizontally and
    // |dr| vertically is at least ~sqrt(dc^2+dr^2) blocks out, so columns
    // beyond this limit cannot pass the exact outer-radius test below (the
    // +1 absorbs block-center rounding). Rows stay within [-reach, reach].
    const double r_blocks = out_thresh / cfg_.block_m;
    dc_lim.assign(static_cast<std::size_t>(reach) + 1, 0);
    for (int dr = 0; dr <= reach; ++dr) {
      const double rem = r_blocks * r_blocks - static_cast<double>(dr) * dr;
      dc_lim[static_cast<std::size_t>(dr)] =
          rem <= 0.0 ? 0
                     : std::min(reach, static_cast<int>(std::sqrt(rem)) + 1);
    }

    best_slot.clear();
    hyper_term.clear();
    cand_cell.clear();
    cand_logp.clear();
    cand_parent.clear();

    for (std::size_t a = prev_begin; a < prev_end; ++a) {
      const std::int32_t pcell = node_cell[a];
      const int pr = pcell / cols_;
      const int pc = pcell % cols_;
      const float plp = node_logp[a];
      const double fx = field.center_x(pc);
      const double fy = field.center_y(pr);
      const int dr_lo = std::max(-reach, -pr);
      const int dr_hi = std::min(reach, rows_ - 1 - pr);
      for (int dr = dr_lo; dr <= dr_hi; ++dr) {
        const int nr = pr + dr;
        const double ty = field.center_y(nr);
        const double ddy = fy - ty;
        const int lim = dc_lim[static_cast<std::size_t>(dr < 0 ? -dr : dr)];
        const int dc_lo = std::max(-lim, -pc);
        const int dc_hi = std::min(lim, cols_ - 1 - pc);
        const std::int32_t row_base = nr * cols_;
        for (int dc = dc_lo; dc <= dc_hi; ++dc) {
          const int nc = pc + dc;
          const double tx = field.center_x(nc);
          const double ddx = fx - tx;
          const double step = std::sqrt(ddx * ddx + ddy * ddy);
          // Annulus membership (Eq. 8); allow a quarter-block tolerance so
          // the discretization cannot strand the chain, while keeping the
          // lower bound binding (it is the phase-derived minimum motion).
          if (step > out_thresh) {
            ++n_annulus_rej;
            continue;
          }
          if (step + quarter_block < lower) {
            ++n_annulus_rej;
            continue;
          }
          ++n_expansions;

          const std::size_t ncell = static_cast<std::size_t>(row_base + nc);
          // Hyperbola term of Eq. 11: 1 - |dtheta_meas - dtheta(x,y)| /
          // (4*pi), compared circularly against the cached field.
          double w;
          if (use_hyper) {
            if (hyper_term.contains(ncell)) {
              ++n_hyper_hits;
              w = hyper_term.get(ncell);
            } else {
              ++n_hyper_misses;
              const double mismatch =
                  angle_dist(field.phase_at_cell(ncell), meas);
              const double term =
                  std::max(1.0 - mismatch / (4.0 * kPi), kWeightFloor);
              w = cfg_.hyperbola_sharpness == 1.0
                      ? term
                      : std::pow(term, cfg_.hyperbola_sharpness);
              hyper_term.put(ncell, w);
            }
          } else {
            w = 1.0;
          }

          // Direction-line term of Eq. 11: perpendicular distance from the
          // candidate to the line through the previous location along the
          // estimated moving direction, normalized by the max displacement.
          if (use_dir) {
            const double rx = tx - fx;
            const double ry = ty - fy;
            const double perp = std::fabs(rx * dir.y - ry * dir.x);
            double term = std::max(1.0 - perp / dmax, kWeightFloor);
            // Half-plane preference: candidates behind the motion direction
            // are inconsistent with the estimated heading.
            if (rx * dir.x + ry * dir.y < back_thresh) term *= 0.25;
            w *= term;
          }

          if (idle_step_penalty) {
            // No direction estimate this window: tie-break toward small
            // steps (an undetected motion is a small motion), otherwise
            // the annulus blocks tie -- exactly along the hyperbola when
            // phase is present, everywhere when it is not -- and the
            // argmax drifts.
            const double frac = step / upper;
            w *= std::exp(-cfg_.unobserved_step_penalty * frac * frac);
          }

          const float lp = plp + static_cast<float>(
                                     std::log(std::max(w, kWeightFloor)));
          if (!best_slot.contains(ncell)) {
            best_slot.put(ncell,
                          static_cast<std::int32_t>(cand_cell.size()));
            cand_cell.push_back(static_cast<std::int32_t>(ncell));
            cand_logp.push_back(lp);
            cand_parent.push_back(static_cast<std::int32_t>(a));
          } else {
            const std::int32_t slot = best_slot.get(ncell);
            if (lp > cand_logp[static_cast<std::size_t>(slot)]) {
              cand_logp[static_cast<std::size_t>(slot)] = lp;
              cand_parent[static_cast<std::size_t>(slot)] =
                  static_cast<std::int32_t>(a);
            }
          }
        }
      }
    }

    if (cand_cell.empty()) {
      ++n_starved;
      // Chain starved (e.g. all motion rejected) -- hold the most probable
      // surviving state. (Pre-PR2 this held prev.front(), which after
      // nth_element pruning is an arbitrary survivor.)
      std::size_t best = prev_begin;
      for (std::size_t a = prev_begin + 1; a < prev_end; ++a) {
        if (node_logp[a] > node_logp[best]) best = a;
      }
      cand_cell.push_back(node_cell[best]);
      cand_logp.push_back(node_logp[best]);
      cand_parent.push_back(static_cast<std::int32_t>(best));
    }

    // Beam pruning: keep the most probable states. Selection runs on an
    // index buffer so the SoA candidate arrays are gathered once.
    const std::size_t n_cand = cand_cell.size();
    const std::size_t new_begin = node_cell.size();
    if (n_cand > cfg_.beam_width) {
      order.resize(n_cand);
      std::iota(order.begin(), order.end(), 0);
      std::nth_element(
          order.begin(),
          order.begin() + static_cast<std::ptrdiff_t>(cfg_.beam_width),
          order.end(), [&](std::int32_t x, std::int32_t y) {
            return cand_logp[static_cast<std::size_t>(x)] >
                   cand_logp[static_cast<std::size_t>(y)];
          });
      for (std::size_t i = 0; i < cfg_.beam_width; ++i) {
        const auto s = static_cast<std::size_t>(order[i]);
        node_cell.push_back(cand_cell[s]);
        node_logp.push_back(cand_logp[s]);
        node_parent.push_back(cand_parent[s]);
      }
    } else {
      node_cell.insert(node_cell.end(), cand_cell.begin(), cand_cell.end());
      node_logp.insert(node_logp.end(), cand_logp.begin(), cand_logp.end());
      node_parent.insert(node_parent.end(), cand_parent.begin(),
                         cand_parent.end());
    }
    if (!cfg_.use_viterbi && node_cell.size() - new_begin > 1) {
      // Greedy ablation: collapse the beam to the single best state.
      std::size_t best = new_begin;
      for (std::size_t a = new_begin + 1; a < node_cell.size(); ++a) {
        if (node_logp[a] > node_logp[best]) best = a;
      }
      node_cell[new_begin] = node_cell[best];
      node_logp[new_begin] = node_logp[best];
      node_parent[new_begin] = node_parent[best];
      node_cell.resize(new_begin + 1);
      node_logp.resize(new_begin + 1);
      node_parent.resize(new_begin + 1);
    }
    prev_begin = new_begin;
    prev_end = node_cell.size();
    const std::uint64_t occupancy = prev_end - prev_begin;
    n_beam_nodes += occupancy;
    if (occupancy > beam_peak) beam_peak = occupancy;
    if (tracing) {
      // One instant per decoded window: where the beam stands on the
      // timeline. Recording only -- the decode state never reads it.
      tracer.instant(window_name.id(), arg_window.id(),
                     static_cast<double>(window_index), arg_occupancy.id(),
                     static_cast<double>(occupancy));
    }
    ++window_index;
  }

  {
    static const obs::Counter windows_counter("hmm.windows");
    static const obs::Counter expansions_counter("hmm.beam_expansions");
    static const obs::Counter nodes_counter("hmm.beam_nodes");
    static const obs::Counter annulus_counter("hmm.annulus_rejected");
    static const obs::Counter hyper_hits_counter("hmm.hyper_cache_hits");
    static const obs::Counter hyper_misses_counter("hmm.hyper_cache_misses");
    static const obs::Counter starved_counter("hmm.starved_windows");
    static const obs::Gauge occupancy_gauge("hmm.beam_occupancy_peak");
    windows_counter.add(obs.size());
    expansions_counter.add(n_expansions);
    nodes_counter.add(n_beam_nodes);
    annulus_counter.add(n_annulus_rej);
    hyper_hits_counter.add(n_hyper_hits);
    hyper_misses_counter.add(n_hyper_misses);
    starved_counter.add(n_starved);
    occupancy_gauge.set_max(static_cast<double>(beam_peak));
  }

  // --- Backtrace -----------------------------------------------------------
  std::size_t best = prev_begin;
  for (std::size_t a = prev_begin + 1; a < prev_end; ++a) {
    if (node_logp[a] > node_logp[best]) best = a;
  }
  std::vector<Vec2> reversed;
  reversed.reserve(obs.size() + 1);
  for (std::int32_t a = static_cast<std::int32_t>(best); a >= 0;
       a = node_parent[static_cast<std::size_t>(a)]) {
    const std::int32_t cell = node_cell[static_cast<std::size_t>(a)];
    reversed.push_back(field.block_center(cell % cols_, cell / cols_));
  }
  traj.assign(reversed.rbegin(), reversed.rend());
  return traj;
}

std::vector<Vec2> HmmTracker::rotate_trajectory(const std::vector<Vec2>& traj,
                                                double alpha_r_error_rad) {
  if (traj.empty()) return traj;
  Vec2 centroid;
  for (const Vec2& p : traj) centroid += p;
  centroid = centroid / static_cast<double>(traj.size());
  std::vector<Vec2> out;
  out.reserve(traj.size());
  for (const Vec2& p : traj) {
    out.push_back(centroid + (p - centroid).rotated(-alpha_r_error_rad));
  }
  return out;
}

}  // namespace polardraw::core
