// Beam-expansion kernel: per-window candidate scoring for the Viterbi
// decode (Eq. 8 annulus transition + Eq. 11 hyperbola/direction emission).
//
// Extracted from StreamingDecoder::step so the scoring loop -- the
// throughput ceiling for batch eval, the session server, and batched
// multi-pen decode -- can have two runtime-selectable implementations
// behind one interface (PolarDrawConfig::decode_kernel):
//
//   * kScalar -- a behavior-preserving lift of the historical loop,
//     pinned bit-identical to the golden decode tests. This is the
//     reference semantics: per-candidate annulus test, per-cell
//     hyperbola-term memo in a generation scoreboard, one log per
//     accepted candidate.
//
//   * kVector -- a branchless SoA path that scores contiguous candidate
//     rows per iteration. Two per-window precomputations make the inner
//     loop transcendental-free: (1) the hyperbola log-weight is evaluated
//     once per touched cell against contiguous PhaseField rows (log of
//     the clamped term, so pow(term, sharpness) becomes sharpness *
//     log(term)); (2) every displacement-dependent factor -- the exact
//     annulus test, the direction line/half-plane terms, and the idle
//     step penalty -- depends only on the integer block displacement
//     (dc, dr), so it collapses into a (2*reach+1)^2 log-weight table
//     with -inf marking annulus rejections. A candidate is then scored
//     with three adds and a max, and per-cell bests merge through the
//     same generation scoreboard (outside the arithmetic loop) in the
//     same first-touch order as the scalar path.
//
// Tolerance ladder (enforced by tests/core/test_expand_kernel.cc): the
// scalar kernel is bit-identical to the goldens; the vector kernel
// reassociates the log-weight sum (and snaps displacements to the exact
// block lattice), so it is held to identical committed trajectories on
// the golden seeds plus a bounded per-window log-prob deviation, not bit
// identity. Both kernels share the candidate traversal order, so
// tie-breaks resolve identically whenever the scored values agree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/vec.h"
#include "core/config.h"
#include "core/hmm_tracker.h"
#include "core/phase_field.h"
#include "core/scoreboard.h"

namespace polardraw::core {

/// Hot-loop tallies, accumulated across windows by the caller. The two
/// kernels count expansions/annulus rejections identically; the hyperbola
/// cache counters are scalar-path semantics (the vector path has no
/// per-candidate memo -- it reports each precomputed cell as one miss and
/// no hits).
struct ExpandStats {
  std::uint64_t expansions = 0;
  std::uint64_t annulus_rejected = 0;
  std::uint64_t hyper_hits = 0;
  std::uint64_t hyper_misses = 0;
};

class ExpandKernel {
 public:
  /// `field` must outlive the kernel (the decoder owns both).
  ExpandKernel(const PolarDrawConfig& cfg, const PhaseField& field);

  /// Scores every candidate cell reachable from the previous beam
  /// (arena nodes [prev_begin, prev_end) of `node_cell`/`node_logp`) for
  /// one window and appends the best candidate per cell to the `cand_*`
  /// arrays (cleared first). Parents are absolute arena indices.
  /// Candidates are emitted in first-touch traversal order (ascending
  /// parent, then row, then column) by both kernels.
  void expand(const TrackObservation& o,
              const std::vector<std::int32_t>& node_cell,
              const std::vector<float>& node_logp, std::size_t prev_begin,
              std::size_t prev_end, std::vector<std::int32_t>& cand_cell,
              std::vector<float>& cand_logp,
              std::vector<std::int32_t>& cand_parent, ExpandStats& stats);

  [[nodiscard]] DecodeKernel kind() const { return kind_; }

 private:
  /// Per-window hoists shared by both paths; computed exactly as the
  /// historical in-loop hoists so the scalar path stays bit-identical.
  struct WindowTerms {
    double lower_m = 0.0;
    double upper_m = 0.0;
    double out_thresh_m = 0.0;
    double quarter_block_m = 0.0;
    int reach_blocks = 1;
    bool use_hyper = false;
    double meas_rad = 0.0;
    bool use_dir = false;
    Vec2 dir;
    double dmax_m = 0.0;
    double back_thresh_m = 0.0;
    bool idle_step_penalty = false;
  };

  WindowTerms window_terms(const TrackObservation& o) const;
  void fill_dc_limits(const WindowTerms& w);

  void expand_scalar(const WindowTerms& w,
                     const std::vector<std::int32_t>& node_cell,
                     const std::vector<float>& node_logp,
                     std::size_t prev_begin, std::size_t prev_end,
                     std::vector<std::int32_t>& cand_cell,
                     std::vector<float>& cand_logp,
                     std::vector<std::int32_t>& cand_parent,
                     ExpandStats& stats);
  void expand_vector(const WindowTerms& w,
                     const std::vector<std::int32_t>& node_cell,
                     const std::vector<float>& node_logp,
                     std::size_t prev_begin, std::size_t prev_end,
                     std::vector<std::int32_t>& cand_cell,
                     std::vector<float>& cand_logp,
                     std::vector<std::int32_t>& cand_parent,
                     ExpandStats& stats);

  /// Builds the (2*reach+1)^2 displacement log-weight table (direction +
  /// idle terms, -inf on annulus rejection) plus the knife-edge flags for
  /// lattice distances that coincide with an annulus threshold.
  void fill_displacement_table(const WindowTerms& w);
  /// Evaluates the per-cell hyperbola log-weight over the union of
  /// per-row column spans touched by this window's beam.
  void fill_hyper_rows(const WindowTerms& w, int r_lo, int r_hi, int c_lo,
                       int box_w, ExpandStats& stats);

  const PolarDrawConfig cfg_;
  const PhaseField& field_;
  const DecodeKernel kind_;
  const int cols_, rows_;

  // --- Scalar-path scratch -------------------------------------------------
  GenerationScoreboard<std::int32_t> best_slot_;
  GenerationScoreboard<double> hyper_term_;
  std::vector<int> dc_lim_;  // per-|dr| column reach (shared by both paths)

  // --- Vector-path scratch -------------------------------------------------
  std::vector<double> disp_logw_;       // (2r+1)^2 log-weights + -inf mask
  std::vector<unsigned char> disp_edge_;  // threshold-coincident lattice steps
  std::vector<double> hyper_logw_;      // per-cell hyperbola log-weight (box)
  std::vector<int> row_span_lo_, row_span_hi_;   // touched columns per row
  std::vector<float> lane_logp_;        // per-lane scored log-probs (row seg)
};

}  // namespace polardraw::core
