// Precomputed inter-antenna phase-difference field over the whiteboard grid.
// polarlint: hot-path -- no node-based hash maps in the decode loop.
//
// The antennas never move during a writing session, so the hyperbola field
// of Eq. 7 -- DistanceEstimator::expected_dtheta21 evaluated at every block
// center -- is a pure function of (antenna layout, grid). The trackers used
// to re-evaluate it (two sqrts plus a wrap) for every candidate block of
// every window; this cache computes the whole rows x cols table once and
// shares it across the HMM, Kalman, and particle trackers. The same
// precomputation trick is standard in hyperbolic-positioning systems with
// static anchor geometry.
//
// Stored per cell:
//   * the wrapped expected phase difference (bit-identical to calling
//     DistanceEstimator::expected_dtheta21 at the block center),
//   * the smooth path-length difference l2 - l1 (for interpolation: the
//     wrapped phase is discontinuous across 2*pi seams, the path difference
//     is not), and
//   * the analytic Jacobian d(phase)/d(x, y) the EKF linearizes against.
#pragma once

#include <cstddef>
#include <vector>

#include "common/vec.h"
#include "core/config.h"

namespace polardraw::core {

class PhaseField {
 public:
  /// Builds the field for one (antenna layout, grid) pair. Grid dimensions
  /// derive from the board extent and block size exactly as the HMM's.
  PhaseField(const PolarDrawConfig& cfg, Vec2 a1, Vec2 a2, double antenna_z);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  std::size_t cells() const { return phase_.size(); }
  double block_m() const { return block_m_; }
  Vec2 antenna1() const { return a1_; }
  Vec2 antenna2() const { return a2_; }
  double antenna_z() const { return antenna_z_; }

  /// Center of block (col, row), identical to HmmTracker::block_center.
  Vec2 block_center(int col, int row) const {
    return Vec2{cx_[static_cast<std::size_t>(col)],
                cy_[static_cast<std::size_t>(row)]};
  }
  double center_x(int col) const { return cx_[static_cast<std::size_t>(col)]; }
  double center_y(int row) const { return cy_[static_cast<std::size_t>(row)]; }

  /// Expected wrapped phase difference at a block center; bit-identical to
  /// DistanceEstimator::expected_dtheta21(block_center(col, row), ...).
  double phase_at(int col, int row) const {
    return phase_[cell_index(col, row)];
  }
  double phase_at_cell(std::size_t cell) const { return phase_[cell]; }

  /// Contiguous row of wrapped expected phase differences (cols() values
  /// starting at column 0). The vector beam-expansion kernel streams these
  /// instead of doing per-cell lookups.
  const double* phase_row(int row) const {
    return &phase_[cell_index(0, row)];
  }

  /// Analytic Jacobian of the (unwrapped) expected phase difference with
  /// respect to board position, rad/m, at a block center.
  Vec2 jacobian_at(int col, int row) const {
    const std::size_t i = cell_index(col, row);
    return Vec2{jx_[i], jy_[i]};
  }

  /// Expected wrapped phase difference at an arbitrary board point, by
  /// bilinear interpolation of the smooth path-difference field (then
  /// scaled and wrapped). Points outside the grid clamp to the edge cells.
  double phase(const Vec2& p) const;

  /// Bilinearly interpolated Jacobian at an arbitrary board point.
  Vec2 jacobian(const Vec2& p) const;

  std::size_t cell_index(int col, int row) const {
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(col);
  }

 private:
  /// Bilinear weights for a board point: cell corner (c0, r0) + fractions.
  void locate(const Vec2& p, int& c0, int& r0, double& fx, double& fy) const;

  int cols_, rows_;
  double block_m_;
  double scale_;  // 4*pi / wavelength: path difference -> phase
  Vec2 a1_, a2_;
  double antenna_z_;
  std::vector<double> cx_, cy_;      // block-center coordinates per axis
  std::vector<double> phase_;        // wrapped expected dtheta21 per cell
  std::vector<double> delta_l_;      // l2 - l1 per cell (smooth)
  std::vector<double> jx_, jy_;      // d(phase)/dx, d(phase)/dy per cell
};

}  // namespace polardraw::core
