// Dense per-cell scoreboard with O(1) bulk reset via generation stamps.
// polarlint: hot-path -- no node-based hash maps in the decode loop.
//
// The Viterbi forward pass needs "best incoming candidate per grid cell"
// for every window. A hash map pays allocation and hashing on the hot
// path; a plain dense array pays an O(cells) clear per window. This keeps
// the dense array but stamps each entry with the generation it was written
// in: clear() just bumps the generation counter, and an entry is live only
// if its stamp matches. The full wipe happens only when the 32-bit counter
// wraps (once per ~4 billion windows).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace polardraw::core {

template <typename Value>
class GenerationScoreboard {
 public:
  explicit GenerationScoreboard(std::size_t size = 0) { resize(size); }

  /// Resizes and invalidates every entry.
  void resize(std::size_t size) {
    value_.assign(size, Value{});
    stamp_.assign(size, 0);
    gen_ = 1;
  }

  std::size_t size() const { return value_.size(); }

  /// Invalidates every entry in O(1) (full wipe only on counter wrap).
  void clear() {
    if (++gen_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      gen_ = 1;
    }
  }

  bool contains(std::size_t cell) const { return stamp_[cell] == gen_; }

  /// Value last put() since the last clear(); undefined if !contains(cell).
  const Value& get(std::size_t cell) const { return value_[cell]; }

  void put(std::size_t cell, Value v) {
    stamp_[cell] = gen_;
    value_[cell] = v;
  }

  /// Test hook: jump the generation counter so the wrap path (clear() hits
  /// 0 and falls back to the full wipe) is reachable without 2^32 calls.
  void debug_set_generation(std::uint32_t gen) { gen_ = gen; }

 private:
  std::vector<Value> value_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t gen_ = 1;
};

}  // namespace polardraw::core
