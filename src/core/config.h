// PolarDraw algorithm parameters.
//
// Defaults follow the paper's published choices where those transfer to
// this simulation substrate; the handful that were re-tuned say so in
// their comments and are justified in DESIGN.md section 7. Every value is
// a knob so the sweeps (Tables 7-8, bench_ablation_design) can vary them.
#pragma once

#include <cstddef>

#include "common/angles.h"
#include "em/constants.h"

namespace polardraw::core {

/// Candidate-scoring kernel for the Viterbi beam expansion
/// (core/expand_kernel.h). `kScalar` is the bit-exact reference path,
/// pinned by the golden decode tests; `kVector` is the branchless SoA
/// path that scores whole candidate rows per iteration and is held to the
/// tolerance ladder (identical committed trajectories on the golden
/// seeds, bounded per-window log-prob deviation) instead of bit identity.
enum class DecodeKernel { kScalar, kVector };

struct PolarDrawConfig {
  // ----- Pre-processing (section 3.1) -----
  /// Averaging window, seconds. Paper: 50 ms.
  double window_s = 0.050;
  /// Spurious phase rejection threshold on adjacent-window phase
  /// difference, radians. The paper tuned 0.2 rad on turntable data; a
  /// pen moving radially at vmax legitimately slews 4*pi*vmax*dt/lambda
  /// (~0.38 rad per 50 ms window), so the default here admits fast legal
  /// writing while still rejecting the multi-radian cross-polar glides.
  double spurious_phase_threshold_rad = 1.0;

  // ----- Writing model (sections 3.2-3.3) -----
  /// Assumed constant pen elevation angle alpha_e. Paper: 30 degrees,
  /// with Table 7 showing insensitivity across [-45, 45].
  double alpha_e_rad = deg2rad(30.0);
  /// Inter-antenna polarization half-angle gamma (must match the rig).
  /// Paper: 15 degrees (Table 8 sweeps it).
  double gamma_rad = deg2rad(15.0);

  // ----- Motion classification (section 3.3) -----
  /// RSS-change threshold separating rotational from translational motion,
  /// dB per window. The paper tuned delta = 2 dBm for its writers; the
  /// synthetic wrist rotates more smoothly, so the substrate's optimum is
  /// lower (bench_ablation_design sweeps this).
  double rotation_rss_delta_db = 1.0;

  // ----- Rotational tracking (section 3.3.1) -----
  /// Azimuth step per window while rotating, radians. Paper: 6 degrees;
  /// matched here to the synthetic wrist's typical angular rate.
  double delta_beta_rad = deg2rad(5.0);
  /// Per-antenna RSS-change threshold gating the azimuth step (Eq. 4).
  /// The paper tuned 1.5 dBm on its hardware; on this substrate one
  /// antenna always sits near its flat response peak during mid-sector
  /// rotation, so a lower per-antenna gate tracks markedly better
  /// (bench_ablation_design sweeps this).
  double delta_beta_gate_db = 0.5;

  // ----- Distance estimation (section 3.4) -----
  /// Maximum assumed pen speed, m/s. Paper: 0.2 m/s.
  double vmax_mps = 0.2;
  /// Phase-noise margin deducted from each per-antenna phase delta before
  /// converting to the Eq. 5 displacement lower bound, radians. Measured
  /// net-negative on this substrate (the bound's motion-forcing outweighs
  /// the phantom dwell smear it causes), so it defaults off; the ablation
  /// bench sweeps it.
  double phase_noise_margin_rad = 0.0;
  /// Minimum per-window phase change treated as genuine motion by the
  /// translational direction decode (Table 4), radians. Keeps noise on a
  /// stationary pen from decoding as phantom up/down motion.
  double min_phase_delta_rad = 0.04;
  /// Carrier wavelength, meters.
  double wavelength_m = em::kDefaultWavelength;

  // ----- Tag-offset compensation -----
  /// Distance from pen tip to tag center along the barrel, meters (how
  /// the tag is taped). When polarization tracking is on, the estimated
  /// pen orientation projects the tracked tag position back to the pen
  /// tip, undoing the azimuth-correlated swing of the barrel-mounted tag.
  /// 0 disables compensation.
  double tag_offset_m = 0.03;

  /// Smooth the per-window direction estimates with a [0.25, 0.5, 0.25]
  /// kernel before the HMM: Table 4's axis-quantized decodes alternate
  /// (right, up, right, ...) along diagonal strokes, and the smoothed
  /// vector recovers the diagonal. Off reproduces the paper literally.
  bool smooth_directions = true;

  // ----- HMM tracking (section 3.5) -----
  /// Whiteboard grid block edge, meters. Must stay below the typical
  /// per-window displacement (~0.5 cm at writing speed) or quantization
  /// lets the chain satisfy the annulus lower bound without moving.
  double block_m = 0.004;
  /// Exponent applied to the Eq. 11 hyperbola term. The paper's literal
  /// linear form spans only [0.75, 1] and anchors the track weakly; a
  /// higher sharpness (term^power) keeps the decoded path on the measured
  /// hyperbola family. 1.0 reproduces the paper exactly.
  double hyperbola_sharpness = 6.0;
  /// Penalty weight on step length for windows with no phase observation
  /// (prevents arbitrary drift on observation-free windows; zero restores
  /// the paper's strictly-uniform transition).
  double unobserved_step_penalty = 0.2;
  /// Board extent covered by the state grid, meters.
  double board_width_m = 1.0;
  double board_height_m = 0.6;
  /// Leading windows dropped from the returned trajectory while the
  /// track anchors onto the hyperbola field (the decode still runs over
  /// them). 0 returns everything.
  int warmup_windows = 8;
  /// Beam width: max live states kept per Viterbi step (pure-paper Viterbi
  /// over the full grid is O(states^2); the beam keeps it real-time without
  /// changing results in practice).
  std::size_t beam_width = 600;

  /// Which beam-expansion kernel scores candidate cells (see DecodeKernel).
  /// Scalar is the reference; vector trades bit identity for throughput.
  DecodeKernel decode_kernel = DecodeKernel::kScalar;

  /// Apply the final Eq. 10 trajectory rotation by the accumulated
  /// initial-azimuth correction.
  bool apply_rotation_correction = true;

  // ----- Ablations -----
  /// Disables polarization-based rotational estimation entirely (Table 6's
  /// "w/o polarization" variant): no pen-orientation model, so no
  /// rotational direction estimation and no Eq. 10 correction.
  bool use_polarization = true;
  /// With polarization off, still allow the phase-trend translational
  /// direction decode (section 3.3.2). The paper's ablation removes the
  /// orientation model wholesale -- its 23% accuracy implies no direction
  /// constraint survived -- so the strict Table 6 reproduction sets this
  /// false; the charitable variant keeps it true.
  bool use_phase_direction = true;
  /// Disables the inter-antenna hyperbola term in the emission (ablation).
  bool use_hyperbola_constraint = true;
  /// Greedy per-step argmax instead of Viterbi (ablation).
  bool use_viterbi = true;
  /// Replace the grid HMM with the continuous particle filter of
  /// core/particle_tracker.h (the paper's deferred "more sophisticated
  /// motion modeling"). Ablated in bench_ablation_design.
  bool use_particle_filter = false;
  /// Replace the grid HMM with the extended Kalman filter of
  /// core/kalman_tracker.h (the other deferred motion model).
  bool use_kalman_filter = false;
};

}  // namespace polardraw::core
