#include "core/calibration.h"

#include <cmath>

#include "common/angles.h"

namespace polardraw::core {

std::optional<CalibrationResult> calibrate_from_reference(
    const rfid::TagReportStream& reports, const CalibrationSetup& setup,
    int min_reads) {
  const std::size_t ports = setup.antenna_positions.size();
  if (ports == 0) return std::nullopt;

  std::vector<std::vector<double>> residuals(ports);
  for (const auto& r : reports) {
    if (r.antenna_id < 0 || static_cast<std::size_t>(r.antenna_id) >= ports) {
      continue;
    }
    const double dist =
        setup.antenna_positions[static_cast<std::size_t>(r.antenna_id)].dist(
            setup.tag_position);
    const double expected =
        wrap_2pi(4.0 * kPi * dist / setup.wavelength_m);
    residuals[static_cast<std::size_t>(r.antenna_id)].push_back(
        wrap_2pi(r.phase_rad - expected));
  }

  CalibrationResult out;
  out.calibration.port_offsets_rad.resize(ports, 0.0);
  out.residual_std_rad.resize(ports, 0.0);
  out.reads_used.resize(ports, 0);
  for (std::size_t p = 0; p < ports; ++p) {
    if (static_cast<int>(residuals[p].size()) < min_reads) {
      return std::nullopt;
    }
    const auto mean = circular_mean(residuals[p]);
    if (!mean) return std::nullopt;
    out.calibration.port_offsets_rad[p] = *mean;
    out.reads_used[p] = static_cast<int>(residuals[p].size());

    // Circular spread: 1 - |mean resultant length| mapped to a std-dev.
    double sx = 0.0, sy = 0.0;
    for (double r : residuals[p]) {
      sx += std::cos(r - *mean);
      sy += std::sin(r - *mean);
    }
    const double resultant =
        std::hypot(sx, sy) / static_cast<double>(residuals[p].size());
    out.residual_std_rad[p] =
        std::sqrt(std::max(-2.0 * std::log(std::max(resultant, 1e-9)), 0.0));
  }
  return out;
}

}  // namespace polardraw::core
