// Shared motion-estimation types for the tracking stage.
#pragma once

#include "common/vec.h"

namespace polardraw::core {

/// Dominant movement type of a window (section 3.3's RSS-trend split).
enum class MotionType { kRotational, kTranslational, kIdle };

/// Pen rotation sense in the writing model: clockwise azimuthal rotation
/// accompanies rightward motion, counter-clockwise leftward (section 3.2).
enum class RotationSense { kClockwise, kCounterClockwise, kNone };

/// Azimuthal sector of Fig. 8(c). Sector boundaries, measured from +X:
///   sector 3: (gamma,          pi/2 - gamma)
///   sector 2: (pi/2 - gamma,   pi/2 + gamma)
///   sector 1: (pi/2 + gamma,   pi - gamma)
enum class Sector { kUnknown = 0, kSector1 = 1, kSector2 = 2, kSector3 = 3 };

/// Coarse board direction decoded from phase trends (Table 4).
enum class BoardDirection { kNone, kUp, kDown, kLeft, kRight };

/// Per-window direction estimate handed to the HMM stage.
struct DirectionEstimate {
  MotionType type = MotionType::kIdle;
  /// Unit direction of motion in board coordinates (zero when idle).
  Vec2 direction;
  /// For rotational windows: the tracked azimuth and rotation angle.
  double alpha_a_rad = 0.0;
  double alpha_r_rad = 0.0;
  RotationSense sense = RotationSense::kNone;
  Sector sector = Sector::kUnknown;
  BoardDirection coarse = BoardDirection::kNone;
};

inline Vec2 to_vector(BoardDirection d) {
  switch (d) {
    case BoardDirection::kUp: return {0.0, 1.0};
    case BoardDirection::kDown: return {0.0, -1.0};
    case BoardDirection::kLeft: return {-1.0, 0.0};
    case BoardDirection::kRight: return {1.0, 0.0};
    case BoardDirection::kNone: return {};
  }
  return {};
}

}  // namespace polardraw::core
