#include "core/kalman_tracker.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/angles.h"

namespace polardraw::core {

namespace {

// Dense 4x4 / 4x2 linear algebra kept local: the state is tiny and fixed,
// so hand-rolled loops beat pulling in a matrix library.
using Mat4 = std::array<std::array<double, 4>, 4>;
using Vec4 = std::array<double, 4>;

Mat4 identity() {
  Mat4 m{};
  for (int i = 0; i < 4; ++i) m[i][i] = 1.0;
  return m;
}

Mat4 mul(const Mat4& a, const Mat4& b) {
  Mat4 out{};
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 4; ++k) {
      const double aik = a[i][k];
      if (aik == 0.0) continue;
      for (int j = 0; j < 4; ++j) out[i][j] += aik * b[k][j];
    }
  }
  return out;
}

Mat4 transpose(const Mat4& a) {
  Mat4 out;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) out[i][j] = a[j][i];
  }
  return out;
}

Vec4 mul(const Mat4& a, const Vec4& x) {
  Vec4 out{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) out[i] += a[i][j] * x[j];
  }
  return out;
}

/// Scalar measurement update: z = h(x), Jacobian row H (1x4), variance r.
void scalar_update(Vec4& x, Mat4& p, const Vec4& h_row, double innovation,
                   double r) {
  // S = H P H^T + r
  Vec4 ph{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) ph[i] += p[i][j] * h_row[j];
  }
  double s = r;
  for (int i = 0; i < 4; ++i) s += h_row[i] * ph[i];
  if (s <= 1e-12) return;
  // K = P H^T / S
  Vec4 k;
  for (int i = 0; i < 4; ++i) k[i] = ph[i] / s;
  for (int i = 0; i < 4; ++i) x[i] += k[i] * innovation;
  // P = (I - K H) P
  Mat4 kh{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) kh[i][j] = k[i] * h_row[j];
  }
  Mat4 ikh = identity();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) ikh[i][j] -= kh[i][j];
  }
  p = mul(ikh, p);
}

}  // namespace

KalmanTracker::KalmanTracker(const PolarDrawConfig& cfg, KalmanConfig kf,
                             Vec2 a1, Vec2 a2, double antenna_z,
                             std::shared_ptr<const PhaseField> field)
    : cfg_(cfg),
      kf_(kf),
      a1_(a1),
      a2_(a2),
      antenna_z_(antenna_z),
      field_(field != nullptr ? std::move(field)
                              : std::make_shared<const PhaseField>(
                                    cfg, a1, a2, antenna_z)) {}

std::vector<Vec2> KalmanTracker::decode(const std::vector<TrackObservation>& obs,
                                        const Vec2* initial_hint) const {
  std::vector<Vec2> traj;
  if (obs.empty()) return traj;

  Vec2 start{cfg_.board_width_m / 2.0, cfg_.board_height_m / 2.0};
  if (initial_hint != nullptr) {
    start = *initial_hint;
  } else {
    const HmmTracker hmm(cfg_, a1_, a2_, antenna_z_, field_);
    for (const auto& o : obs) {
      if (o.has_phase) {
        start = hmm.initial_location(o.distance.dtheta21);
        break;
      }
    }
  }

  // State x = [px, py, vx, vy].
  Vec4 x{start.x, start.y, 0.0, 0.0};
  Mat4 p{};
  p[0][0] = p[1][1] = kf_.init_pos_sigma * kf_.init_pos_sigma;
  p[2][2] = p[3][3] = kf_.init_vel_sigma * kf_.init_vel_sigma;

  const double dt = cfg_.window_s;
  Mat4 f = identity();
  f[0][2] = f[1][3] = dt;
  const Mat4 ft = transpose(f);
  // Discrete white-acceleration process noise.
  const double q = kf_.accel_noise * kf_.accel_noise;
  Mat4 qm{};
  qm[0][0] = qm[1][1] = 0.25 * dt * dt * dt * dt * q;
  qm[0][2] = qm[2][0] = qm[1][3] = qm[3][1] = 0.5 * dt * dt * dt * q;
  qm[2][2] = qm[3][3] = dt * dt * q;

  traj.reserve(obs.size() + 1);
  traj.push_back(start);

  for (const auto& o : obs) {
    // --- Predict ------------------------------------------------------------
    const Vec2 prev{x[0], x[1]};
    x = mul(f, x);
    p = mul(mul(f, p), ft);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) p[i][j] += qm[i][j];
    }

    // --- Update: heading pseudo-measurements on velocity --------------------
    if (o.direction.type != MotionType::kIdle &&
        o.direction.direction.norm_sq() > 0.0) {
      const Vec2 d = o.direction.direction;
      // Component of velocity perpendicular to the estimated direction
      // should be zero: z = -d.y*vx + d.x*vy, target 0.
      const double perp = -d.y * x[2] + d.x * x[3];
      scalar_update(x, p, Vec4{0.0, 0.0, -d.y, d.x}, -perp,
                    kf_.heading_noise_mps * kf_.heading_noise_mps);
      // Forward speed should be non-negative along d; softly pull the
      // along-track speed toward the Eq. 5 displacement per window.
      if (o.distance.valid) {
        const double target_speed =
            std::clamp(o.distance.lower_m / dt, 0.0, cfg_.vmax_mps);
        const double along = d.x * x[2] + d.y * x[3];
        scalar_update(x, p, Vec4{0.0, 0.0, d.x, d.y}, target_speed - along,
                      std::pow(kf_.speed_noise_m / dt, 2.0));
      }
    } else if (o.direction.type == MotionType::kIdle) {
      // No detected motion: damp the velocity toward zero.
      scalar_update(x, p, Vec4{0.0, 0.0, 1.0, 0.0}, -x[2], 0.01);
      scalar_update(x, p, Vec4{0.0, 0.0, 0.0, 1.0}, -x[3], 0.01);
    }

    // --- Update: hyperbola (inter-antenna phase difference) -----------------
    if (cfg_.use_hyperbola_constraint && o.has_phase && o.distance.valid) {
      const Vec2 pos{x[0], x[1]};
      const double expected = field_->phase(pos);
      const double innovation =
          angle_diff(wrap_2pi(o.distance.dtheta21), expected);
      // Analytic Jacobian of the expected phase difference, interpolated
      // from the shared field (pre-PR2 this cost three full evaluations
      // of expected_dtheta21 per update for a finite difference).
      const Vec2 jac = field_->jacobian(pos);
      scalar_update(x, p, Vec4{jac.x, jac.y, 0.0, 0.0}, innovation,
                    kf_.hyperbola_noise_rad * kf_.hyperbola_noise_rad);
    }

    // --- Clamp to the board and the speed limit ------------------------------
    x[0] = std::clamp(x[0], 0.0, cfg_.board_width_m);
    x[1] = std::clamp(x[1], 0.0, cfg_.board_height_m);
    const double speed = std::hypot(x[2], x[3]);
    if (speed > cfg_.vmax_mps) {
      x[2] *= cfg_.vmax_mps / speed;
      x[3] *= cfg_.vmax_mps / speed;
    }
    // Also respect the displacement upper bound from this window.
    const Vec2 now{x[0], x[1]};
    const double step = now.dist(prev);
    const double upper = std::max(o.distance.upper_m, 1e-4);
    if (step > upper) {
      const Vec2 capped = prev + (now - prev) * (upper / step);
      x[0] = capped.x;
      x[1] = capped.y;
    }

    traj.push_back(Vec2{x[0], x[1]});
  }
  return traj;
}

}  // namespace polardraw::core
