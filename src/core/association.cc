#include "core/association.h"

#include <algorithm>
#include <cmath>

#include "common/angles.h"
#include "obs/json_writer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace polardraw::core {

namespace {
const obs::Counter& opened_counter() {
  static const obs::Counter c("assoc.sessions_opened");
  return c;
}
const obs::Counter& closed_counter() {
  static const obs::Counter c("assoc.sessions_closed");
  return c;
}
const obs::Counter& observations_counter() {
  static const obs::Counter c("assoc.observations");
  return c;
}
const obs::Counter& empty_windows_counter() {
  static const obs::Counter c("assoc.empty_windows");
  return c;
}
const obs::Counter& phase_rejected_counter() {
  static const obs::Counter c("assoc.phase_rejected");
  return c;
}
}  // namespace

/// Per-pen state: an incremental replica of preprocess() (window
/// accumulation + step-2 spurious rejection/unwrap) feeding an incremental
/// replica of PolarDraw::track_windows (deltas vs previous valid window,
/// motion classification, distance bounds, one-window-delayed direction
/// smoothing).
struct TagTrackAssociator::Track {
  Track(const PolarDrawConfig& cfg, std::uint32_t epc_, std::uint32_t gen,
        double t_first)
      : epc(epc_),
        generation(gen),
        session_id(make_session_id(epc_, gen)),
        t0(t_first),
        last_report_s(t_first),
        rotation(cfg),
        translation(cfg),
        distance(cfg) {}

  std::uint32_t epc;
  std::uint32_t generation;
  std::uint64_t session_id;
  double t0;             // generation's first report time (window origin)
  double last_report_s;  // latest report routed to this generation

  // --- Step-1 accumulator for the window ordinal being filled ------------
  struct WindowAcc {
    std::vector<double> rss[2];
    std::vector<double> phase[2];
    std::vector<int> channel[2];
    int uncalibrated[2] = {0, 0};
    std::uint64_t flow_serial = 0;  // first sampled report in the window
    void clear() {
      for (int a = 0; a < 2; ++a) {
        rss[a].clear();
        phase[a].clear();
        channel[a].clear();
        uncalibrated[a] = 0;
      }
      flow_serial = 0;
    }
  };
  int cur_window = 0;
  WindowAcc acc;
  std::uint64_t pending_flow = 0;  // flow id riding with `pending`

  // --- Step-2 state (per antenna), mirroring preprocess() -----------------
  struct Step2 {
    bool have_prev = false;
    double prev_wrapped = 0.0;
    int prev_index = 0;
    int prev_channel = 0;
    bool prev_calibrated = false;
    PhaseUnwrapper unwrapper;
  };
  Step2 s2[2];

  // --- track_windows state ------------------------------------------------
  RotationTracker rotation;
  TranslationTracker translation;
  DistanceEstimator distance;
  double prev_rss_dbm[2] = {0.0, 0.0};
  bool have_rss[2] = {false, false};
  double prev_phase_rad[2] = {0.0, 0.0};
  bool have_phase[2] = {false, false};
  int prev_channel[2] = {0, 0};
  bool prev_calibrated[2] = {false, false};
  double emitted_correction = 0.0;

  // --- One-window-delayed centered direction smoothing --------------------
  // The batch pipeline smooths direction i with raw neighbors i-1 and i+1;
  // holding one observation back reproduces that causally: observation i
  // is emitted (smoothed) when i+1 arrives, or left-smoothed at close.
  bool have_pending = false;
  TrackObservation pending;
  double pending_t_s = 0.0;
  Vec2 prev_raw_dir;  // raw direction of the last emitted observation
  bool have_prev_raw = false;
};

TagTrackAssociator::TagTrackAssociator(const PolarDrawConfig& cfg,
                                       AssociatorConfig acfg,
                                       const PhaseCalibration* calibration)
    : cfg_(cfg), acfg_(acfg) {
  if (calibration != nullptr) calibration_ = *calibration;
}

TagTrackAssociator::~TagTrackAssociator() = default;

std::vector<PenEvent> TagTrackAssociator::push(const rfid::TagReport& r) {
  std::vector<PenEvent> out;
  close_stale(r.timestamp_s, out);
  route(r, out);
  return out;
}

std::vector<PenEvent> TagTrackAssociator::push(
    const rfid::TagReportStream& reports) {
  std::vector<PenEvent> out;
  for (const auto& r : reports) {
    close_stale(r.timestamp_s, out);
    route(r, out);
  }
  return out;
}

std::vector<PenEvent> TagTrackAssociator::flush() {
  std::vector<PenEvent> out;
  for (auto& [epc, track] : tracks_) close_track(*track, out);
  tracks_.clear();
  return out;
}

void TagTrackAssociator::close_stale(double t_s, std::vector<PenEvent>& out) {
  for (auto it = tracks_.begin(); it != tracks_.end();) {
    if (t_s - it->second->last_report_s > acfg_.idle_close_s) {
      close_track(*it->second, out);
      it = tracks_.erase(it);
    } else {
      ++it;
    }
  }
}

TagTrackAssociator::Track& TagTrackAssociator::open_track(
    std::uint32_t epc, double t_s, std::vector<PenEvent>& out) {
  const std::uint32_t gen = generations_[epc]++;
  auto track = std::make_unique<Track>(cfg_, epc, gen, t_s);
  PenEvent ev;
  ev.type = PenEventType::kOpen;
  ev.session_id = track->session_id;
  ev.epc = epc;
  ev.t_s = t_s;
  out.push_back(ev);
  opened_counter().add(1);
  return *(tracks_[epc] = std::move(track));
}

void TagTrackAssociator::route(const rfid::TagReport& r,
                               std::vector<PenEvent>& out) {
  if (r.antenna_id < 0 || r.antenna_id > 1) return;
  auto it = tracks_.find(r.epc);
  Track& track = it != tracks_.end() ? *it->second
                                     : open_track(r.epc, r.timestamp_s, out);
  if (cfg_.window_s <= 0.0) return;
  if (r.timestamp_s < track.t0) return;  // pre-origin report: not windowable
  const double w_f = (r.timestamp_s - track.t0) / cfg_.window_s;
  const int w = static_cast<int>(w_f);
  // Report belongs to a later window: finalize the current one and run any
  // intervening empty windows through the pipeline (the batch preprocess
  // materializes those too -- downstream sees the gap as idle windows).
  while (track.cur_window < w) {
    finalize_window(track, out);
  }
  double phase = r.phase_rad;
  bool channel_covered = false;
  if (static_cast<std::size_t>(r.antenna_id) <
      calibration_.port_offsets_rad.size()) {
    phase = wrap_2pi(phase - calibration_.port_offsets_rad[r.antenna_id]);
  }
  if (r.channel >= 0 && static_cast<std::size_t>(r.channel) <
                            calibration_.channel_offsets_rad.size()) {
    phase = wrap_2pi(phase - calibration_.channel_offsets_rad[r.channel]);
    channel_covered = true;
  }
  auto& acc = track.acc;
  acc.rss[r.antenna_id].push_back(r.rss_dbm);
  acc.phase[r.antenna_id].push_back(phase);
  acc.channel[r.antenna_id].push_back(r.channel);
  if (!channel_covered) acc.uncalibrated[r.antenna_id] += 1;
  // First sampled report to land in this window carries the flow chain.
  if (acc.flow_serial == 0 && obs::flow_sampled(r.serial)) {
    acc.flow_serial = r.serial;
  }
  track.last_report_s = r.timestamp_s;
}

void TagTrackAssociator::finalize_window(Track& track,
                                         std::vector<PenEvent>& out) {
  Window win;
  win.index = track.cur_window;
  win.t_s = track.t0 + (static_cast<double>(track.cur_window) + 0.5) *
                           cfg_.window_s;
  bool any = false;
  for (int a = 0; a < 2; ++a) {
    const auto& rss = track.acc.rss[a];
    if (!rss.empty()) {
      double s = 0.0;
      for (double v : rss) s += v;
      win.rss_dbm[a] = s / static_cast<double>(rss.size());
      win.rss_valid[a] = true;
      win.read_count[a] = static_cast<int>(rss.size());
      any = true;
    }
    if (const auto m = circular_mean(track.acc.phase[a])) {
      win.phase_rad[a] = *m;
      win.phase_valid[a] = true;
      const auto& chs = track.acc.channel[a];
      if (!chs.empty()) win.channel[a] = chs[chs.size() / 2];
      win.channel_calibrated[a] = track.acc.uncalibrated[a] == 0;
    }
  }
  if (!any) empty_windows_counter().add(1);
  const std::uint64_t flow_serial = track.acc.flow_serial;
  obs::record_report_flow('t', flow_serial, obs::FlowStage::kWindow);
  track.acc.clear();
  ++track.cur_window;

  // Step 2 (incremental): spurious rejection + unwrap against the track's
  // running per-antenna references, exactly as preprocess() does.
  for (int a = 0; a < 2; ++a) {
    if (!win.phase_valid[a]) continue;
    auto& s = track.s2[a];
    const double wrapped = win.phase_rad[a];
    if (s.have_prev && win.channel[a] != s.prev_channel &&
        !(s.prev_calibrated && win.channel_calibrated[a])) {
      s.have_prev = false;
      s.unwrapper.reset();
      auto& lg = obs::Logger::global();
      if (lg.enabled()) {
        lg.log(obs::LogLevel::kInfo, win.t_s, "assoc.hop_fence",
               [&](obs::JsonWriter& w) {
                 w.kv("session", track.session_id);
                 w.kv("antenna", a);
                 w.kv("window", win.index);
                 w.kv("from_channel", s.prev_channel);
                 w.kv("to_channel", win.channel[a]);
               });
      }
    }
    if (s.have_prev) {
      const int gap = std::max(1, win.index - s.prev_index);
      const double allowed =
          cfg_.spurious_phase_threshold_rad * static_cast<double>(gap);
      if (angle_dist(wrapped, s.prev_wrapped) > std::min(allowed, kPi)) {
        win.phase_valid[a] = false;
        phase_rejected_counter().add(1);
        continue;
      }
    }
    const std::uint64_t rejected_before = s.unwrapper.nonmonotone_rejected();
    const double unwrapped = s.unwrapper.push_at(wrapped, win.t_s);
    if (s.unwrapper.nonmonotone_rejected() != rejected_before) {
      win.phase_valid[a] = false;
      auto& lg = obs::Logger::global();
      if (lg.enabled()) {
        lg.log(obs::LogLevel::kWarn, win.t_s, "assoc.non_monotone",
               [&](obs::JsonWriter& w) {
                 w.kv("session", track.session_id);
                 w.kv("antenna", a);
                 w.kv("window", win.index);
               });
      }
      continue;
    }
    s.have_prev = true;
    s.prev_wrapped = wrapped;
    s.prev_index = win.index;
    s.prev_channel = win.channel[a];
    s.prev_calibrated = win.channel_calibrated[a];
    win.phase_rad[a] = unwrapped;
  }

  process_window(track, win, flow_serial, out);
}

void TagTrackAssociator::process_window(Track& track, const Window& win,
                                        std::uint64_t flow_serial,
                                        std::vector<PenEvent>& out) {
  // --- Deltas vs the previous valid window (track_windows replica) --------
  double ds[2] = {0.0, 0.0};
  bool ds_ok = true;
  for (int a = 0; a < 2; ++a) {
    if (win.rss_valid[a] && track.have_rss[a]) {
      ds[a] = win.rss_dbm[a] - track.prev_rss_dbm[a];
    } else {
      ds_ok = false;
    }
  }
  double dtheta[2] = {0.0, 0.0};
  bool dtheta_ok = true;
  for (int a = 0; a < 2; ++a) {
    if (win.phase_valid[a] && track.have_phase[a] &&
        (win.channel[a] == track.prev_channel[a] ||
         (track.prev_calibrated[a] && win.channel_calibrated[a]))) {
      dtheta[a] = win.phase_rad[a] - track.prev_phase_rad[a];
    } else {
      dtheta_ok = false;
    }
  }

  DirectionEstimate dir;
  const bool rotational =
      cfg_.use_polarization && ds_ok &&
      std::max(std::fabs(ds[0]), std::fabs(ds[1])) >=
          cfg_.rotation_rss_delta_db;
  if (rotational) {
    dir = track.rotation.step(ds[0], ds[1]);
    if (dir.type == MotionType::kIdle && dtheta_ok &&
        cfg_.use_phase_direction) {
      dir = track.translation.step(dtheta[0], dtheta[1]);
    }
  } else if (dtheta_ok && cfg_.use_phase_direction) {
    dir = track.translation.step(dtheta[0], dtheta[1]);
  }

  TrackObservation obs;
  obs.direction = dir;
  if (dtheta_ok && win.both_phase_valid()) {
    obs.distance = track.distance.estimate(dtheta[0], dtheta[1],
                                           win.phase_rad[0], win.phase_rad[1]);
    obs.has_phase = true;
  } else {
    obs.distance.lower_m = 0.0;
    obs.distance.upper_m = cfg_.vmax_mps * cfg_.window_s;
    obs.distance.valid = false;
    obs.has_phase = false;
  }

  for (int a = 0; a < 2; ++a) {
    if (win.rss_valid[a]) {
      track.prev_rss_dbm[a] = win.rss_dbm[a];
      track.have_rss[a] = true;
    }
    if (win.phase_valid[a]) {
      track.prev_phase_rad[a] = win.phase_rad[a];
      track.have_phase[a] = true;
      track.prev_channel[a] = win.channel[a];
      track.prev_calibrated[a] = win.channel_calibrated[a];
    }
  }

  // --- Emit the held-back observation, smoothed with this one -------------
  if (track.have_pending) {
    TrackObservation emit = track.pending;
    if (cfg_.smooth_directions && emit.direction.type != MotionType::kIdle) {
      Vec2 acc = emit.direction.direction * 0.5;
      if (track.have_prev_raw) acc += track.prev_raw_dir * 0.25;
      acc += obs.direction.direction * 0.25;
      if (acc.norm() > 0.2) emit.direction.direction = acc.normalized();
    }
    PenEvent ev;
    ev.type = PenEventType::kObservation;
    ev.session_id = track.session_id;
    ev.epc = track.epc;
    ev.t_s = track.pending_t_s;
    ev.obs = emit;
    ev.flow_id = track.pending_flow;
    out.push_back(ev);
    observations_counter().add(1);
    track.prev_raw_dir = track.pending.direction.direction;
    track.have_prev_raw = true;
  }
  track.pending = obs;
  track.pending_t_s = win.t_s;
  track.pending_flow = flow_serial;
  track.have_pending = true;

  // --- Azimuth-correction delta (Eq. 10 accumulator) ----------------------
  const double corr = track.rotation.accumulated_correction();
  if (corr != track.emitted_correction) {
    PenEvent ev;
    ev.type = PenEventType::kAzimuthCorrection;
    ev.session_id = track.session_id;
    ev.epc = track.epc;
    ev.t_s = win.t_s;
    ev.azimuth_delta_rad = corr - track.emitted_correction;
    out.push_back(ev);
    track.emitted_correction = corr;
  }
}

void TagTrackAssociator::close_track(Track& track, std::vector<PenEvent>& out) {
  // A partially-filled window still holds reads: run it through.
  bool partial = false;
  for (int a = 0; a < 2 && !partial; ++a) {
    partial = !track.acc.rss[a].empty() || !track.acc.phase[a].empty();
  }
  if (partial) finalize_window(track, out);
  if (track.have_pending) {
    // Trailing observation: left-only smoothing (no right neighbor), the
    // batch edge case.
    TrackObservation emit = track.pending;
    if (cfg_.smooth_directions && emit.direction.type != MotionType::kIdle &&
        track.have_prev_raw) {
      Vec2 acc = emit.direction.direction * 0.5 + track.prev_raw_dir * 0.25;
      if (acc.norm() > 0.2) emit.direction.direction = acc.normalized();
    }
    PenEvent ev;
    ev.type = PenEventType::kObservation;
    ev.session_id = track.session_id;
    ev.epc = track.epc;
    ev.t_s = track.pending_t_s;
    ev.obs = emit;
    ev.flow_id = track.pending_flow;
    out.push_back(ev);
    observations_counter().add(1);
    track.have_pending = false;
  }
  PenEvent ev;
  ev.type = PenEventType::kClose;
  ev.session_id = track.session_id;
  ev.epc = track.epc;
  ev.t_s = track.last_report_s;
  out.push_back(ev);
  closed_counter().add(1);
}

}  // namespace polardraw::core
