#include "core/translation_tracker.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace polardraw::core {

BoardDirection TranslationTracker::decode(double dtheta1, double dtheta2,
                                          double min_delta_rad) {
  if (std::fabs(dtheta1) < min_delta_rad &&
      std::fabs(dtheta2) < min_delta_rad) {
    // Below the noise floor the pen is static.
    return BoardDirection::kNone;
  }
  // Robust form of Table 4: the common-mode component (sum) captures
  // vertical motion, the differential component horizontal motion; decode
  // whichever dominates.
  const double common = dtheta1 + dtheta2;
  const double diff = dtheta1 - dtheta2;
  if (std::fabs(common) >= std::fabs(diff)) {
    return common < 0.0 ? BoardDirection::kUp : BoardDirection::kDown;
  }
  return diff < 0.0 ? BoardDirection::kLeft : BoardDirection::kRight;
}

DirectionEstimate TranslationTracker::step(double dtheta1,
                                           double dtheta2) const {
  static const obs::SpanSite span_site("core.translation_step");
  const obs::ScopedSpan span(span_site);
  static const obs::Counter steps_counter("translation.steps");
  steps_counter.add();
  DirectionEstimate est;
  const BoardDirection d = decode(dtheta1, dtheta2, cfg_.min_phase_delta_rad);
  if (d == BoardDirection::kNone) {
    est.type = MotionType::kIdle;
    return est;
  }
  est.type = MotionType::kTranslational;
  est.coarse = d;
  est.direction = to_vector(d);
  return est;
}

}  // namespace polardraw::core
