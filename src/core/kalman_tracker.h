// Extended Kalman filter trajectory tracker.
//
// The second half of the paper's deferred motion modeling ("the Kalman
// and Particle filters", section 3.5 footnote 5). State is the pen's
// position and velocity with a near-constant-velocity process model; the
// measurement update fuses the same per-window observations the HMM uses:
//
//  * the estimated motion direction as a heading pseudo-measurement on
//    the velocity,
//  * the Eq. 5 displacement as a speed pseudo-measurement, and
//  * the inter-antenna phase difference (Eq. 7), linearized around the
//    predicted position, as the lateral anchor.
//
// Compared to the particle filter this is cheaper and smoother but
// unimodal: it cannot hedge across hyperbola lobes the way the particle
// cloud or the Viterbi beam can.
#pragma once

#include <memory>
#include <vector>

#include "common/vec.h"
#include "core/config.h"
#include "core/distance_estimator.h"
#include "core/hmm_tracker.h"
#include "core/phase_field.h"

namespace polardraw::core {

struct KalmanConfig {
  /// Process (acceleration) noise, m/s^2.
  double accel_noise = 1.0;
  /// Measurement noise of the speed pseudo-measurement, m.
  double speed_noise_m = 0.004;
  /// Measurement noise of the heading pseudo-measurement, m/s.
  // polarlint-allow(R3): velocity pseudo-measurement noise in m/s, not an angle
  double heading_noise_mps = 0.06;
  /// Measurement noise of the hyperbola phase difference, radians.
  double hyperbola_noise_rad = 0.35;
  /// Initial position/velocity standard deviations.
  double init_pos_sigma = 0.05;
  double init_vel_sigma = 0.05;
};

class KalmanTracker {
 public:
  /// `field`: optional shared phase-difference cache for this antenna
  /// layout; built on the spot when absent.
  KalmanTracker(const PolarDrawConfig& cfg, KalmanConfig kf, Vec2 a1, Vec2 a2,
                double antenna_z,
                std::shared_ptr<const PhaseField> field = nullptr);

  /// Filters the observation sequence; returns one position per window.
  std::vector<Vec2> decode(const std::vector<TrackObservation>& obs,
                           const Vec2* initial_hint = nullptr) const;

 private:
  PolarDrawConfig cfg_;
  KalmanConfig kf_;
  Vec2 a1_, a2_;
  double antenna_z_;
  std::shared_ptr<const PhaseField> field_;
};

}  // namespace polardraw::core
