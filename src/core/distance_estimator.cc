#include "core/distance_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/angles.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace polardraw::core {

DistanceEstimate DistanceEstimator::estimate(double dtheta1, double dtheta2,
                                             double theta1_now,
                                             double theta2_now) const {
  static const obs::SpanSite span_site("core.distance_estimate");
  const obs::ScopedSpan span(span_site);
  DistanceEstimate e;
  e.dl1_m = link_delta(dtheta1);
  e.dl2_m = link_delta(dtheta2);
  // Deduct the phase-noise margin before applying the triangle-inequality
  // lower bound: a noisy reading of a stationary tag must not demand
  // movement.
  const auto denoised = [this](double dtheta) {
    const double mag = std::max(std::fabs(dtheta) - cfg_.phase_noise_margin_rad, 0.0);
    return link_delta(mag);
  };
  e.lower_m = std::max(denoised(dtheta1), denoised(dtheta2));
  e.upper_m = cfg_.vmax_mps * cfg_.window_s;
  // Wrap once at the source so every consumer sees [0, 2pi). Readers report
  // phase in [0, 2pi) already, but the difference of two such values lives
  // in (-2pi, 2pi); pre-PR2 each consumer had to re-wrap defensively.
  e.dtheta21 = wrap_2pi(theta2_now - theta1_now);
  // A displacement whose phase-implied lower bound exceeds the speed-limit
  // upper bound is physically inconsistent (usually residual spurious
  // phase); flag it so the HMM falls back to the transition prior.
  e.valid = e.lower_m <= e.upper_m + 1e-9;
  return e;
}

double DistanceEstimator::expected_dtheta21(const Vec2& p, const Vec2& a1,
                                            const Vec2& a2,
                                            double antenna_z) const {
  const double l1 = std::sqrt((p - a1).norm_sq() + antenna_z * antenna_z);
  const double l2 = std::sqrt((p - a2).norm_sq() + antenna_z * antenna_z);
  return wrap_2pi(4.0 * kPi * (l2 - l1) / cfg_.wavelength_m);
}

}  // namespace polardraw::core
