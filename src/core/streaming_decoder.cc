#include "core/streaming_decoder.h"

// polarlint: hot-path -- no node-based hash maps in the decode loop.

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/angles.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace polardraw::core {

StreamingDecoder::StreamingDecoder(const PolarDrawConfig& cfg, Vec2 a1,
                                   Vec2 a2, double antenna_z,
                                   StreamingConfig stream_cfg,
                                   std::shared_ptr<const PhaseField> field,
                                   const Vec2* initial_hint)
    : cfg_(cfg),
      stream_cfg_(stream_cfg),
      field_(field != nullptr
                 ? std::move(field)
                 : std::make_shared<const PhaseField>(cfg, a1, a2, antenna_z)),
      cols_(field_->cols()),
      rows_(field_->rows()),
      kernel_(cfg_, *field_) {
  stream_cfg_.lag_windows = std::max<std::size_t>(stream_cfg_.lag_windows, 1);
  if (initial_hint != nullptr) {
    seed_at(*initial_hint, 0);
  }
}

StreamingDecoder::~StreamingDecoder() { flush_metrics(); }

void StreamingDecoder::seed_at(Vec2 start, std::size_t prefix_windows) {
  const int c0 = std::clamp(static_cast<int>(start.x / cfg_.block_m), 0,
                            cols_ - 1);
  const int r0 = std::clamp(static_cast<int>(start.y / cfg_.block_m), 0,
                            rows_ - 1);
  seed_center_ = field_->block_center(c0, r0);
  node_cell_.push_back(r0 * cols_ + c0);
  node_logp_.push_back(0.0f);
  node_parent_.push_back(-1);
  prev_begin_ = 0;
  prev_end_ = 1;
  step_begin_.push_back(0);
  arena_base_out_ = prefix_windows;
  seed_root_pos_ = prefix_windows;
  seeded_ = true;
}

void StreamingDecoder::push(const TrackObservation& obs) {
  if (finished_) return;
  ++n_pushed_;
  if (!seeded_) {
    if (!obs.has_phase) {
      // No anchor yet: buffer the window. If a phase window arrives later
      // the prefix is backfilled with the seed position (the seed describes
      // the pen *at* that window); finish() replays the buffer from the
      // board center only when the whole stream stays phaseless.
      unseeded_prefix_.push_back(obs);
      return;
    }
    seed_at(initial_location_on_field(cfg_, *field_, obs.distance.dtheta21),
            unseeded_prefix_.size());
    // The prefix is accounted for by seed_at's prefix_windows (commit_upto
    // backfills it with the seed position); the buffered observations are
    // never replayed, so release their memory for long-lived sessions.
    unseeded_prefix_.clear();
    unseeded_prefix_.shrink_to_fit();
  }
  step(obs, n_pushed_ - 1);
  // Eager fixed-lag commit: freezing values at push time (rather than at
  // poll time) makes them independent of the caller's drain cadence, which
  // is what lets the session server stay bit-identical across worker
  // counts.
  const std::size_t total = n_pushed_ + 1;
  if (total > stream_cfg_.lag_windows) {
    commit_upto(total - stream_cfg_.lag_windows, committed_buf_);
    maybe_compact();
  }
}

std::size_t StreamingDecoder::poll(std::vector<Vec2>& out) {
  const std::size_t n = committed_buf_.size();
  out.insert(out.end(), committed_buf_.begin(), committed_buf_.end());
  committed_buf_.clear();
  return n;
}

std::size_t StreamingDecoder::finish(std::vector<Vec2>& out) {
  if (!finished_) {
    finished_ = true;
    if (!seeded_) {
      if (n_pushed_ == 0) {
        flush_metrics();
        return poll(out);
      }
      // Legacy fallback: the stream ended without a single phase window,
      // so there is no hyperbola to seed from. Seed the board center and
      // decode the buffered windows normally (this is exactly what the
      // batch decode always did for all-phaseless sequences).
      seed_at(Vec2{cfg_.board_width_m / 2.0, cfg_.board_height_m / 2.0}, 0);
      for (std::size_t i = 0; i < unseeded_prefix_.size(); ++i) {
        step(unseeded_prefix_[i], i);
      }
      unseeded_prefix_.clear();
    }
    commit_upto(n_pushed_ + 1, committed_buf_);
    flush_metrics();
  }
  return poll(out);
}

std::size_t StreamingDecoder::commit_upto(std::size_t target,
                                          std::vector<Vec2>& out) {
  if (target <= n_committed_) return 0;
  // Positions at or past the arena root need a backtrace from the current
  // most probable front node; everything before the root is the backfilled
  // seed prefix.
  if (target > arena_base_out_) {
    std::size_t best = prev_begin_;
    for (std::size_t a = prev_begin_ + 1; a < prev_end_; ++a) {
      if (node_logp_[a] > node_logp_[best]) best = a;
    }
    backtrace_scratch_.clear();
    for (std::int32_t a = static_cast<std::int32_t>(best); a >= 0;
         a = node_parent_[static_cast<std::size_t>(a)]) {
      const std::int32_t cell = node_cell_[static_cast<std::size_t>(a)];
      backtrace_scratch_.push_back(
          field_->block_center(cell % cols_, cell / cols_));
    }
    std::reverse(backtrace_scratch_.begin(), backtrace_scratch_.end());
  }
  const std::size_t from = n_committed_;
  for (std::size_t i = from; i < target; ++i) {
    out.push_back(i < arena_base_out_
                      ? seed_center_
                      : backtrace_scratch_[i - arena_base_out_]);
  }
  n_committed_ = target;
  return target - from;
}

void StreamingDecoder::maybe_compact() {
  // Steps whose output position is already committed can never be read
  // again (future commits backtrace only down to the commit frontier), so
  // once enough of them pile up the arena prefix is dropped and parent
  // indices rebased. The retained nodes keep their cells, log-probs, and
  // relative order, so the forward recursion and every future commit are
  // unchanged -- pinned by the compaction-invariance test.
  if (n_committed_ <= arena_base_out_) return;
  const std::size_t k = n_committed_ - arena_base_out_;
  if (k == 0 || k >= step_begin_.size()) return;
  const std::size_t offset = step_begin_[k];
  if (offset <= stream_cfg_.compact_node_threshold) return;

  node_cell_.erase(node_cell_.begin(),
                   node_cell_.begin() + static_cast<std::ptrdiff_t>(offset));
  node_logp_.erase(node_logp_.begin(),
                   node_logp_.begin() + static_cast<std::ptrdiff_t>(offset));
  node_parent_.erase(
      node_parent_.begin(),
      node_parent_.begin() + static_cast<std::ptrdiff_t>(offset));
  // Step k becomes the new root step. With lag 1 it is also the frontier
  // (last) step, which has no successor entry in step_begin_ -- its end is
  // the arena end.
  const std::size_t root_end = k + 1 < step_begin_.size()
                                   ? step_begin_[k + 1]
                                   : node_cell_.size() + offset;
  const std::size_t new_root_end = root_end - offset;
  for (std::size_t a = 0; a < node_parent_.size(); ++a) {
    node_parent_[a] = a < new_root_end
                          ? -1
                          : node_parent_[a] - static_cast<std::int32_t>(offset);
  }
  step_begin_.erase(step_begin_.begin(),
                    step_begin_.begin() + static_cast<std::ptrdiff_t>(k));
  for (std::size_t& b : step_begin_) b -= offset;
  prev_begin_ -= offset;
  prev_end_ -= offset;
  arena_base_out_ += k;
}

void StreamingDecoder::step(const TrackObservation& o,
                            std::size_t window_index) {
  static const obs::TraceName window_name("hmm.window");
  static const obs::TraceName arg_window("window");
  static const obs::TraceName arg_occupancy("beam_occupancy");

  // Candidate scoring (Eq. 8 annulus + Eq. 11 emission) lives in the
  // kernel module; which implementation runs is cfg_.decode_kernel.
  kernel_.expand(o, node_cell_, node_logp_, prev_begin_, prev_end_,
                 cand_cell_, cand_logp_, cand_parent_, stats_);

  if (cand_cell_.empty()) {
    ++n_starved_;
    // Chain starved (e.g. all motion rejected) -- hold the most probable
    // surviving state. (Pre-PR2 this held prev.front(), which after
    // nth_element pruning is an arbitrary survivor.)
    std::size_t best = prev_begin_;
    for (std::size_t a = prev_begin_ + 1; a < prev_end_; ++a) {
      if (node_logp_[a] > node_logp_[best]) best = a;
    }
    cand_cell_.push_back(node_cell_[best]);
    cand_logp_.push_back(node_logp_[best]);
    cand_parent_.push_back(static_cast<std::int32_t>(best));
  }

  // Per-window renormalization: subtract the window's best score before
  // the candidates enter the arena. node_logp_ is float and strictly
  // decreasing, so an unnormalized session loses the resolution that
  // separates beam candidates after ~1e4 windows; after renormalization
  // the front max is exactly 0.0f every window (x - x is exact in IEEE)
  // and resolution is bounded by the beam's spread, not the session
  // length. Subtracting one common float from all candidates is monotone,
  // so the argmax chain -- and therefore every committed position -- is
  // preserved; ties it creates are resolved by the index tie-break below.
  float wmax = cand_logp_[0];
  for (std::size_t i = 1; i < cand_logp_.size(); ++i) {
    wmax = std::max(wmax, cand_logp_[i]);
  }
  last_window_logp_max_ = wmax;
  total_logp_offset_ += static_cast<double>(wmax);
  for (float& lp : cand_logp_) lp -= wmax;

  // Beam pruning: keep the most probable states. Selection runs on an
  // index buffer so the SoA candidate arrays are gathered once. The
  // comparator tie-breaks equal log-probs on candidate index and the kept
  // prefix is sorted, so the survivor set *and* its arena order are a pure
  // function of the scored values -- not of how the standard library's
  // nth_element partitions ties (the determinism contract in the header).
  const auto better = [&](std::int32_t x, std::int32_t y) {
    const float lx = cand_logp_[static_cast<std::size_t>(x)];
    const float ly = cand_logp_[static_cast<std::size_t>(y)];
    return lx > ly || (lx == ly && x < y);
  };
  const std::size_t n_cand = cand_cell_.size();
  const std::size_t new_begin = node_cell_.size();
  if (n_cand > cfg_.beam_width) {
    order_.resize(n_cand);
    std::iota(order_.begin(), order_.end(), 0);
    std::nth_element(
        order_.begin(),
        order_.begin() + static_cast<std::ptrdiff_t>(cfg_.beam_width),
        order_.end(), better);
    std::sort(order_.begin(),
              order_.begin() + static_cast<std::ptrdiff_t>(cfg_.beam_width),
              better);
    for (std::size_t i = 0; i < cfg_.beam_width; ++i) {
      const auto s = static_cast<std::size_t>(order_[i]);
      node_cell_.push_back(cand_cell_[s]);
      node_logp_.push_back(cand_logp_[s]);
      node_parent_.push_back(cand_parent_[s]);
    }
  } else {
    node_cell_.insert(node_cell_.end(), cand_cell_.begin(), cand_cell_.end());
    node_logp_.insert(node_logp_.end(), cand_logp_.begin(), cand_logp_.end());
    node_parent_.insert(node_parent_.end(), cand_parent_.begin(),
                        cand_parent_.end());
  }
  if (!cfg_.use_viterbi && node_cell_.size() - new_begin > 1) {
    // Greedy ablation: collapse the beam to the single best state.
    std::size_t best = new_begin;
    for (std::size_t a = new_begin + 1; a < node_cell_.size(); ++a) {
      if (node_logp_[a] > node_logp_[best]) best = a;
    }
    node_cell_[new_begin] = node_cell_[best];
    node_logp_[new_begin] = node_logp_[best];
    node_parent_[new_begin] = node_parent_[best];
    node_cell_.resize(new_begin + 1);
    node_logp_.resize(new_begin + 1);
    node_parent_.resize(new_begin + 1);
  }
  prev_begin_ = new_begin;
  prev_end_ = node_cell_.size();
  step_begin_.push_back(new_begin);
  const std::uint64_t occupancy = prev_end_ - prev_begin_;
  n_beam_nodes_ += occupancy;
  if (occupancy > beam_peak_) beam_peak_ = occupancy;
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    // One instant per decoded window: where the beam stands on the
    // timeline. Recording only -- the decode state never reads it.
    tracer.instant(window_name.id(), arg_window.id(),
                   static_cast<double>(window_index), arg_occupancy.id(),
                   static_cast<double>(occupancy));
  }
}

void StreamingDecoder::flush_metrics() {
  if (metrics_flushed_) return;
  metrics_flushed_ = true;
  static const obs::Counter windows_counter("hmm.windows");
  static const obs::Counter expansions_counter("hmm.beam_expansions");
  static const obs::Counter nodes_counter("hmm.beam_nodes");
  static const obs::Counter annulus_counter("hmm.annulus_rejected");
  static const obs::Counter hyper_hits_counter("hmm.hyper_cache_hits");
  static const obs::Counter hyper_misses_counter("hmm.hyper_cache_misses");
  static const obs::Counter starved_counter("hmm.starved_windows");
  static const obs::Gauge occupancy_gauge("hmm.beam_occupancy_peak");
  windows_counter.add(n_pushed_);
  expansions_counter.add(stats_.expansions);
  nodes_counter.add(n_beam_nodes_);
  annulus_counter.add(stats_.annulus_rejected);
  hyper_hits_counter.add(stats_.hyper_hits);
  hyper_misses_counter.add(stats_.hyper_misses);
  starved_counter.add(n_starved_);
  occupancy_gauge.set_max(static_cast<double>(beam_peak_));
}

float StreamingDecoder::front_logp_max() const {
  if (prev_end_ <= prev_begin_) return 0.0f;
  float best = node_logp_[prev_begin_];
  for (std::size_t a = prev_begin_ + 1; a < prev_end_; ++a) {
    best = std::max(best, node_logp_[a]);
  }
  return best;
}

}  // namespace polardraw::core
