// RFID data pre-processing (paper section 3.1).
//
// Two steps:
//  1. Window averaging: raw per-read RSS/phase reports are bucketed into
//     fixed windows (50 ms default) per antenna; RSS is averaged in dB and
//     phase with a circular mean.
//  2. Spurious data rejection: windows whose phase jumps from the previous
//     window by more than a threshold (0.2 rad default) are flagged
//     invalid -- these are the cross-polarized "reflection path" readings
//     identified by the feasibility study (section 2).
//
// The output is a time-aligned series of two-antenna windows; downstream
// trackers consume only this.
#pragma once

#include <optional>
#include <vector>

#include "core/config.h"
#include "rfid/tag_report.h"

namespace polardraw::core {

/// One pre-processed 50 ms window, aligned across both antennas.
struct Window {
  double t_s = 0.0;   // window center time
  int index = 0;      // window ordinal

  // Per-antenna aggregates (index 0/1 = antenna port).
  double rss_dbm[2] = {-150.0, -150.0};
  double phase_rad[2] = {0.0, 0.0};    // unwrapped across valid windows
  int read_count[2] = {0, 0};

  bool rss_valid[2] = {false, false};
  bool phase_valid[2] = {false, false};
  /// RF channel the window's phase reads came from (majority); phase
  /// deltas across a channel change are not meaningful without
  /// per-channel calibration, so the unwrapper restarts on a hop.
  int channel[2] = {0, 0};
  /// True when every phase read in this window came from a channel the
  /// supplied PhaseCalibration covered (its RF-chain offset was removed
  /// at bucketing time). Two adjacent calibrated windows may compare
  /// phases across a hop; an uncalibrated boundary always fences.
  bool channel_calibrated[2] = {false, false};

  bool both_rss_valid() const { return rss_valid[0] && rss_valid[1]; }
  bool both_phase_valid() const { return phase_valid[0] && phase_valid[1]; }
};

/// Optional phase calibration: per-port offsets to subtract before
/// windowing (the reference-tag calibration real deployments perform; the
/// harness obtains it from the reader's known RF-chain offsets).
/// `channel_offsets_rad[c]` additionally removes hop channel c's RF-chain
/// offset (rfid::Reader::hop_channel_offset_rad) so that phase comparisons
/// may continue across a hop between covered channels; channels at or past
/// the vector's size stay uncalibrated and fence as before. The residual
/// cross-channel term from the carrier itself (4*pi*d*delta_f/c) is NOT
/// removed -- it is position-dependent -- so the spurious-jump threshold
/// still guards wide hops (DESIGN.md section 16).
struct PhaseCalibration {
  std::vector<double> port_offsets_rad;
  std::vector<double> channel_offsets_rad;
};

/// Runs both pre-processing steps over a raw report stream.
/// Reports from antennas other than 0/1 are ignored (PolarDraw is a
/// two-antenna system; baselines have their own ingestion).
std::vector<Window> preprocess(const rfid::TagReportStream& reports,
                               const PolarDrawConfig& cfg,
                               const PhaseCalibration* calibration = nullptr);

/// Circular mean of phase samples (radians), in [0, 2*pi).
/// Returns nullopt for an empty set.
std::optional<double> circular_mean(const std::vector<double>& phases);

}  // namespace polardraw::core
