// Rotational movement direction estimation (paper section 3.3.1).
//
// Jointly analyzes the RSS trends of the two differently-polarized antennas
// to (a) break the rotation-direction and azimuthal-angle ambiguities via
// the sector logic of Fig. 8(c) / Table 3, (b) track the azimuth alpha_a
// incrementally (Eqs. 2-4), (c) correct the initial-azimuth error when the
// pen crosses a sector boundary, and (d) convert alpha_a to the board
// rotation angle alpha_r (Eq. 1) whose perpendicular is the motion
// direction.
#pragma once

#include <optional>

#include "core/config.h"
#include "core/motion.h"

namespace polardraw::core {

class RotationTracker {
 public:
  explicit RotationTracker(const PolarDrawConfig& cfg);

  /// Feeds one window's RSS deltas (current minus previous window, dB).
  /// Returns the direction estimate for this window; `type` is
  /// kRotational only when the trends decode to a consistent sector.
  DirectionEstimate step(double delta_s1_db, double delta_s2_db);

  /// Total initial-azimuth correction accumulated from sector crossings
  /// (the alpha-tilde of section 3.3.1), radians. The final trajectory
  /// rotation (Eq. 10) uses this.
  double accumulated_correction() const { return correction_; }

  /// Current azimuth estimate (radians), if tracking has started.
  std::optional<double> azimuth() const {
    return started_ ? std::optional<double>(alpha_a_rad_) : std::nullopt;
  }

  void reset();

  /// Classifies RSS trends per Table 3. Returns nullopt when the pattern
  /// is inconsistent (e.g. equal-magnitude same-sign changes too close to
  /// call). Exposed for unit tests.
  struct TrendDecision {
    Sector sector;
    RotationSense sense;
  };
  std::optional<TrendDecision> classify_trend(double ds1, double ds2) const;

  /// Once tracking has started the sector is known from the tracked
  /// azimuth, so only the sense must be decoded: invert Table 3's row for
  /// that sector from the RSS-change signs. Returns kNone when the sign
  /// pattern cannot occur in this sector (indicating a sector crossing).
  static RotationSense sense_in_sector(Sector sector, double ds1, double ds2);

  /// Sector containing azimuth `alpha_a_rad` given the configured gamma.
  Sector sector_of(double alpha_a_rad) const;

  /// Eq. 2: the initial azimuth for a (sector, sense) pair.
  double initial_azimuth(Sector sector, RotationSense sense) const;

  /// Eq. 1 wrapper: board rotation angle for the tracked azimuth.
  double rotation_angle(double alpha_a_rad) const;

  /// Motion direction (unit vector) for a rotation angle + sense:
  /// perpendicular to alpha_r, horizontal sign matching the wrist model
  /// (clockwise = rightward).
  static Vec2 motion_direction(double alpha_r_rad, RotationSense sense);

 private:
  /// Sector boundary angle between two adjacent sectors, radians.
  double boundary_angle(Sector from, Sector to) const;

  PolarDrawConfig cfg_;
  bool started_ = false;
  double alpha_a_rad_ = 0.0;
  Sector sector_ = Sector::kUnknown;
  double correction_ = 0.0;
  bool correction_locked_ = false;
};

}  // namespace polardraw::core
