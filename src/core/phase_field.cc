#include "core/phase_field.h"

// polarlint: hot-path -- no node-based hash maps in the decode loop.

#include <algorithm>
#include <cmath>

#include "common/angles.h"
#include "core/distance_estimator.h"

namespace polardraw::core {

PhaseField::PhaseField(const PolarDrawConfig& cfg, Vec2 a1, Vec2 a2,
                       double antenna_z)
    : cols_(std::max(1, static_cast<int>(cfg.board_width_m / cfg.block_m))),
      rows_(std::max(1, static_cast<int>(cfg.board_height_m / cfg.block_m))),
      block_m_(cfg.block_m),
      scale_(4.0 * kPi / cfg.wavelength_m),
      a1_(a1),
      a2_(a2),
      antenna_z_(antenna_z) {
  cx_.resize(static_cast<std::size_t>(cols_));
  cy_.resize(static_cast<std::size_t>(rows_));
  for (int c = 0; c < cols_; ++c) {
    cx_[static_cast<std::size_t>(c)] =
        (static_cast<double>(c) + 0.5) * block_m_;
  }
  for (int r = 0; r < rows_; ++r) {
    cy_[static_cast<std::size_t>(r)] =
        (static_cast<double>(r) + 0.5) * block_m_;
  }

  const std::size_t n =
      static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  phase_.resize(n);
  delta_l_.resize(n);
  jx_.resize(n);
  jy_.resize(n);

  // The wrapped phase goes through DistanceEstimator so the cached values
  // are bit-identical to what the trackers used to evaluate inline.
  const DistanceEstimator dist(cfg);
  const double z_sq = antenna_z * antenna_z;
  std::size_t i = 0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c, ++i) {
      const Vec2 p = block_center(c, r);
      phase_[i] = dist.expected_dtheta21(p, a1, a2, antenna_z);
      const double l1 = std::sqrt((p - a1).norm_sq() + z_sq);
      const double l2 = std::sqrt((p - a2).norm_sq() + z_sq);
      delta_l_[i] = l2 - l1;
      // d(l)/dx = (x - ax) / l, so d(phase)/dx = scale * (d(l2) - d(l1)).
      jx_[i] = scale_ * ((p.x - a2.x) / l2 - (p.x - a1.x) / l1);
      jy_[i] = scale_ * ((p.y - a2.y) / l2 - (p.y - a1.y) / l1);
    }
  }
}

void PhaseField::locate(const Vec2& p, int& c0, int& r0, double& fx,
                        double& fy) const {
  // Continuous grid coordinates measured in cells from the first center.
  const double gx = std::clamp(p.x / block_m_ - 0.5, 0.0,
                               static_cast<double>(cols_ - 1));
  const double gy = std::clamp(p.y / block_m_ - 0.5, 0.0,
                               static_cast<double>(rows_ - 1));
  c0 = std::min(static_cast<int>(gx), cols_ - 2 >= 0 ? cols_ - 2 : 0);
  r0 = std::min(static_cast<int>(gy), rows_ - 2 >= 0 ? rows_ - 2 : 0);
  fx = gx - static_cast<double>(c0);
  fy = gy - static_cast<double>(r0);
}

double PhaseField::phase(const Vec2& p) const {
  if (cols_ == 1 && rows_ == 1) return phase_[0];
  int c0, r0;
  double fx, fy;
  locate(p, c0, r0, fx, fy);
  const int c1 = std::min(c0 + 1, cols_ - 1);
  const int r1 = std::min(r0 + 1, rows_ - 1);
  const double v00 = delta_l_[cell_index(c0, r0)];
  const double v10 = delta_l_[cell_index(c1, r0)];
  const double v01 = delta_l_[cell_index(c0, r1)];
  const double v11 = delta_l_[cell_index(c1, r1)];
  const double dl = (1.0 - fy) * ((1.0 - fx) * v00 + fx * v10) +
                    fy * ((1.0 - fx) * v01 + fx * v11);
  return wrap_2pi(scale_ * dl);
}

Vec2 PhaseField::jacobian(const Vec2& p) const {
  if (cols_ == 1 && rows_ == 1) return Vec2{jx_[0], jy_[0]};
  int c0, r0;
  double fx, fy;
  locate(p, c0, r0, fx, fy);
  const int c1 = std::min(c0 + 1, cols_ - 1);
  const int r1 = std::min(r0 + 1, rows_ - 1);
  const std::size_t i00 = cell_index(c0, r0), i10 = cell_index(c1, r0);
  const std::size_t i01 = cell_index(c0, r1), i11 = cell_index(c1, r1);
  const double gx = (1.0 - fy) * ((1.0 - fx) * jx_[i00] + fx * jx_[i10]) +
                    fy * ((1.0 - fx) * jx_[i01] + fx * jx_[i11]);
  const double gy = (1.0 - fy) * ((1.0 - fx) * jy_[i00] + fx * jy_[i10]) +
                    fy * ((1.0 - fx) * jy_[i01] + fx * jy_[i11]);
  return Vec2{gx, gy};
}

}  // namespace polardraw::core
