#include "core/polardraw.h"

#include <cmath>

#include "common/angles.h"

#include "core/distance_estimator.h"
#include "core/kalman_tracker.h"
#include "core/particle_tracker.h"
#include "core/phase_field.h"
#include "core/rotation_tracker.h"
#include "core/translation_tracker.h"

namespace polardraw::core {

PolarDraw::PolarDraw(PolarDrawConfig cfg, Vec2 a1, Vec2 a2, double antenna_z)
    : cfg_(cfg), a1_(a1), a2_(a2), antenna_z_(antenna_z) {}

TrackingResult PolarDraw::track(const rfid::TagReportStream& reports,
                                const PhaseCalibration* calibration) const {
  return track_windows(preprocess(reports, cfg_, calibration));
}

TrackingResult PolarDraw::track_windows(
    const std::vector<Window>& windows) const {
  TrackingResult result;
  if (windows.size() < 2) return result;

  RotationTracker rotation(cfg_);
  TranslationTracker translation(cfg_);
  DistanceEstimator distance(cfg_);

  std::vector<TrackObservation> observations;
  observations.reserve(windows.size());

  // Track "previous valid" values per antenna so gaps (rejected or missed
  // windows) difference across the gap instead of producing garbage.
  double prev_rss[2] = {0.0, 0.0};
  bool have_rss[2] = {false, false};
  double prev_phase[2] = {0.0, 0.0};
  bool have_phase[2] = {false, false};
  int prev_channel[2] = {0, 0};
  bool prev_calibrated[2] = {false, false};

  for (const Window& w : windows) {
    WindowDiagnostics diag;
    diag.t_s = w.t_s;

    // --- Deltas vs the previous valid window ------------------------------
    double ds[2] = {0.0, 0.0};
    bool ds_ok = true;
    for (int a = 0; a < 2; ++a) {
      if (w.rss_valid[a] && have_rss[a]) {
        ds[a] = w.rss_dbm[a] - prev_rss[a];
      } else {
        ds_ok = false;
      }
    }
    double dtheta[2] = {0.0, 0.0};
    bool dtheta_ok = true;
    for (int a = 0; a < 2; ++a) {
      // A frequency hop re-bases the phase (per-channel offset); a delta
      // across the hop boundary is not motion -- unless both sides are
      // channel-calibrated, in which case preprocess already removed the
      // offsets and the delta is comparable.
      if (w.phase_valid[a] && have_phase[a] &&
          (w.channel[a] == prev_channel[a] ||
           (prev_calibrated[a] && w.channel_calibrated[a]))) {
        dtheta[a] = w.phase_rad[a] - prev_phase[a];
      } else {
        dtheta_ok = false;
      }
    }

    // --- Motion classification (section 3.3's RSS-trend split) ------------
    DirectionEstimate dir;
    const bool rotational =
        cfg_.use_polarization && ds_ok &&
        std::max(std::fabs(ds[0]), std::fabs(ds[1])) >=
            cfg_.rotation_rss_delta_db;
    if (rotational) {
      dir = rotation.step(ds[0], ds[1]);
      // If the trend pattern did not decode, fall through to translation.
      if (dir.type == MotionType::kIdle && dtheta_ok && cfg_.use_phase_direction) {
        dir = translation.step(dtheta[0], dtheta[1]);
      }
    } else if (dtheta_ok && cfg_.use_phase_direction) {
      dir = translation.step(dtheta[0], dtheta[1]);
    }

    switch (dir.type) {
      case MotionType::kRotational: ++result.rotational_windows; break;
      case MotionType::kTranslational: ++result.translational_windows; break;
      case MotionType::kIdle: ++result.idle_windows; break;
    }

    // --- Displacement bounds + hyperbola -----------------------------------
    TrackObservation obs;
    obs.direction = dir;
    if (dtheta_ok && w.both_phase_valid()) {
      obs.distance = distance.estimate(dtheta[0], dtheta[1], w.phase_rad[0],
                                       w.phase_rad[1]);
      obs.has_phase = true;
    } else {
      // No phase this window: displacement bounded only by the speed limit.
      obs.distance.lower_m = 0.0;
      obs.distance.upper_m = cfg_.vmax_mps * cfg_.window_s;
      obs.distance.valid = false;
      obs.has_phase = false;
    }
    diag.direction = dir;
    diag.distance = obs.distance;
    diag.motion = dir.type;
    result.diagnostics.push_back(diag);
    observations.push_back(obs);

    // --- Roll the "previous valid" state -----------------------------------
    for (int a = 0; a < 2; ++a) {
      if (w.rss_valid[a]) {
        prev_rss[a] = w.rss_dbm[a];
        have_rss[a] = true;
      }
      if (w.phase_valid[a]) {
        prev_phase[a] = w.phase_rad[a];
        have_phase[a] = true;
        prev_channel[a] = w.channel[a];
        prev_calibrated[a] = w.channel_calibrated[a];
      }
    }
  }

  // --- Direction smoothing ---------------------------------------------------
  if (cfg_.smooth_directions && observations.size() >= 3) {
    std::vector<Vec2> smoothed(observations.size());
    for (std::size_t i = 0; i < observations.size(); ++i) {
      const Vec2 cur = observations[i].direction.direction;
      if (observations[i].direction.type == MotionType::kIdle) continue;
      Vec2 acc = cur * 0.5;
      if (i > 0) acc += observations[i - 1].direction.direction * 0.25;
      if (i + 1 < observations.size()) {
        acc += observations[i + 1].direction.direction * 0.25;
      }
      // Opposing neighbors can cancel; keep the raw decode then.
      smoothed[i] = acc.norm() > 0.2 ? acc.normalized() : cur;
    }
    for (std::size_t i = 0; i < observations.size(); ++i) {
      if (observations[i].direction.type != MotionType::kIdle) {
        observations[i].direction.direction = smoothed[i];
      }
    }
  }

  // --- Decode + final rotation correction ----------------------------------
  // One phase-difference field per (antenna layout, grid); every tracker —
  // including the filters' HMM bootstrap — shares it.
  const auto field =
      std::make_shared<const PhaseField>(cfg_, a1_, a2_, antenna_z_);
  const HmmTracker hmm(cfg_, a1_, a2_, antenna_z_, field);
  std::vector<Vec2> traj;
  if (cfg_.use_particle_filter) {
    ParticleTracker pf(cfg_, ParticleFilterConfig{}, a1_, a2_, antenna_z_, 1,
                       field);
    traj = pf.decode(observations);
  } else if (cfg_.use_kalman_filter) {
    const KalmanTracker kf(cfg_, KalmanConfig{}, a1_, a2_, antenna_z_, field);
    traj = kf.decode(observations);
  } else {
    traj = hmm.decode(observations);
  }

  // Tag-offset compensation: the decoded trajectory is the tag's; project
  // back to the pen tip using the tracked orientation. Only the
  // polarization-aware variant knows the azimuth.
  if (cfg_.use_polarization && cfg_.tag_offset_m > 0.0) {
    const double ce = std::cos(cfg_.alpha_e_rad);
    const double se = std::sin(cfg_.alpha_e_rad);
    // Hold the last rotational window's azimuth estimate between rotations.
    double azimuth = kPi / 2.0;  // neutral until first estimate
    for (std::size_t i = 0; i < traj.size(); ++i) {
      if (i < result.diagnostics.size() &&
          result.diagnostics[i].motion == MotionType::kRotational) {
        azimuth = result.diagnostics[i].direction.alpha_a_rad;
      }
      traj[i] -= Vec2{ce * std::cos(azimuth), se} * cfg_.tag_offset_m;
    }
  }
  result.azimuth_correction_rad = rotation.accumulated_correction();
  if (cfg_.use_polarization && cfg_.apply_rotation_correction &&
      std::fabs(result.azimuth_correction_rad) > 1e-9) {
    // Eq. 10: the azimuth error tilts the whole recovered trajectory;
    // rotate it back. The rotation-angle error equals the azimuth error to
    // first order in the writing model.
    traj = HmmTracker::rotate_trajectory(traj, result.azimuth_correction_rad);
  }
  if (cfg_.warmup_windows > 0 &&
      traj.size() > static_cast<std::size_t>(cfg_.warmup_windows) + 8) {
    traj.erase(traj.begin(), traj.begin() + cfg_.warmup_windows);
  }
  result.trajectory = std::move(traj);
  return result;
}

}  // namespace polardraw::core
