// Fixed-lag streaming Viterbi decoder (DESIGN.md section 13).
//
// The batch tracker (core/hmm_tracker.h) sees the whole observation
// sequence before it decodes; a live whiteboard cannot wait for the pen to
// stop. This class runs the same forward recursion -- same SoA beam arena,
// same generation-stamped scoreboards, same annulus/hyperbola/direction
// emission, same pruning and tie-breaks -- but accepts one TrackObservation
// at a time via push() and releases pen positions with bounded latency via
// poll(): a position is committed once the beam front has advanced at
// least `lag_windows` past it, by backtracing from the current most
// probable front node. Committed positions are frozen -- they are emitted
// exactly once and never revised.
//
// Internal state is retained across pushes, so history is never
// re-decoded: the arena only grows at the front, and once positions
// commit, the arena prefix behind the commit frontier is compacted away
// (absolute parent indices rebased, frontier nodes become roots), keeping
// a session's memory proportional to the lag rather than the stroke
// length.
//
// Equivalence contract, pinned by tests/core/test_streaming_decoder.cc:
// with lag >= the sequence length, push-all + finish() is bit-identical to
// HmmTracker::decode (which is itself implemented as exactly that loop).
// Smaller lags trade accuracy for latency; the tolerance ladder in the
// same test bounds the degradation.
//
// Determinism contract: decodes are a pure function of (config, geometry,
// observation sequence, lag) -- independent of platform and standard
// library. The two ingredients are (1) candidate scoring delegated to
// core/expand_kernel.h, which emits candidates in a fixed first-touch
// traversal order, and (2) beam pruning that orders candidates by
// (log-prob descending, candidate index ascending) and sorts the kept
// prefix, so neither the survivor set nor the arena order depends on how
// std::nth_element resolves ties. Log-probs are renormalized every window
// (the window max is subtracted before candidates enter the arena), so the
// beam front's best node sits at exactly 0 and a session never loses float
// resolution no matter how long it runs; argmax decisions are unchanged.
//
// Seeding follows the tracker contract: an initial_hint seeds immediately;
// otherwise the decoder waits for the first has_phase observation, seeds
// from its hyperbola field, and backfills the phaseless prefix with the
// seed position (the seed describes the pen *at* that first phase window,
// so decoding the prefix from it -- what the batch tracker used to do --
// let the chain drift off the measured hyperbola before the anchor
// arrived). A stream that ends without any phase observation falls back to
// the legacy board-center seed and decodes the buffered windows normally.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/vec.h"
#include "core/config.h"
#include "core/expand_kernel.h"
#include "core/hmm_tracker.h"
#include "core/phase_field.h"

namespace polardraw::core {

/// Streaming-specific knobs; the tracking parameters come from
/// PolarDrawConfig as in the batch path.
struct StreamingConfig {
  /// Commit lag L in windows (clamped to >= 1): poll() freezes positions
  /// at least L windows behind the beam front. A lag >= the sequence
  /// length reproduces the batch decode bit for bit; smaller lags bound
  /// push-to-commit latency at the cost of commit accuracy.
  std::size_t lag_windows = 16;
  /// Arena nodes allowed behind the commit frontier before the arena is
  /// compacted. Smaller values bound memory tighter at the cost of more
  /// frequent rebase passes; compaction never changes emitted positions.
  std::size_t compact_node_threshold = 4096;
};

class StreamingDecoder {
 public:
  /// Same geometry contract as HmmTracker; `field` optionally shares a
  /// pre-built phase-difference cache across sessions. `initial_hint`
  /// (when non-null) seeds the chain immediately, as in the batch decode.
  StreamingDecoder(const PolarDrawConfig& cfg, Vec2 a1, Vec2 a2,
                   double antenna_z, StreamingConfig stream_cfg = {},
                   std::shared_ptr<const PhaseField> field = nullptr,
                   const Vec2* initial_hint = nullptr);
  StreamingDecoder(const StreamingDecoder&) = delete;
  StreamingDecoder& operator=(const StreamingDecoder&) = delete;
  ~StreamingDecoder();  // flushes the hmm.* metric counters if needed

  /// Feeds the next window's observation. One forward Viterbi step (or a
  /// buffered no-op while the decoder is still waiting for its seed).
  void push(const TrackObservation& obs);

  /// Drains every committed-but-undelivered block-center position into
  /// `out` and returns how many were appended. Position i (0 = the
  /// seed/root, i >= 1 = the state after window i-1) commits once
  /// `pushed() + 1 - i > lag_windows`; it is valued at push time by
  /// backtracing from the then-best front node, so the emitted positions
  /// do not depend on how often the caller polls.
  std::size_t poll(std::vector<Vec2>& out);

  /// Commits everything that remains (the batch-equivalent tail), flushes
  /// the metric counters, and returns the number of appended positions.
  /// After finish(), push() must not be called again.
  std::size_t finish(std::vector<Vec2>& out);

  /// Windows pushed so far (including any unseeded prefix).
  [[nodiscard]] std::size_t pushed() const { return n_pushed_; }
  /// Positions emitted so far through poll()/finish().
  [[nodiscard]] std::size_t committed() const { return n_committed_; }
  /// Windows pushed but not yet committed: the fixed-lag backlog held in
  /// the beam (at most lag_windows once seeded, larger only for an
  /// unseeded phaseless prefix). statusz reports this as commit lag.
  [[nodiscard]] std::size_t commit_lag() const {
    return n_pushed_ > n_committed_ ? n_pushed_ - n_committed_ : 0;
  }
  /// True once the chain has a seed (hint, first phase window, or the
  /// finish() fallback).
  [[nodiscard]] bool seeded() const { return seeded_; }
  /// Output-position index of the seed/root position, which has no
  /// originating observation: 0 for a hint (or fallback) seed, the
  /// phaseless-prefix length when the chain seeded mid-stream from its
  /// first phase window. Meaningful once seeded().
  [[nodiscard]] std::size_t seed_root_position() const {
    return seed_root_pos_;
  }

  /// Eq. 10 azimuth-correction accumulator, retained across pushes so a
  /// session can carry the rotation-tracker correction without re-decoding
  /// history. The decoder only stores it; the session layer applies
  /// HmmTracker::rotate_trajectory to the full trace at close time
  /// (committed positions are frozen, and Eq. 10 is a whole-trajectory
  /// rotation about the centroid).
  void accumulate_azimuth_correction(double delta_rad) {
    azimuth_correction_rad_ += delta_rad;
  }
  [[nodiscard]] double azimuth_correction_rad() const {
    return azimuth_correction_rad_;
  }

  /// Largest log-prob in the current beam front: exactly 0.0f after every
  /// decoded window (the per-window renormalization invariant; IEEE
  /// subtraction of the max from itself is exact). Test hook.
  [[nodiscard]] float front_logp_max() const;
  /// Pre-renormalization log-prob of the best candidate in the most
  /// recently decoded window, i.e. that window's score increment. Test
  /// hook for the kernel-parity tolerance ladder.
  [[nodiscard]] float last_window_logp_max() const {
    return last_window_logp_max_;
  }
  /// Sum of all per-window renormalization offsets: adding it to a front
  /// node's log-prob recovers the historical unnormalized value (in double,
  /// so the sum itself does not drift).
  [[nodiscard]] double total_logp_offset() const { return total_logp_offset_; }

 private:
  void seed_at(Vec2 start, std::size_t prefix_windows);
  /// One forward Viterbi step; `window_index` is a trace arg only.
  void step(const TrackObservation& o, std::size_t window_index);
  /// Emits positions [n_committed_, target) from a front backtrace.
  std::size_t commit_upto(std::size_t target, std::vector<Vec2>& out);
  void maybe_compact();
  void flush_metrics();

  PolarDrawConfig cfg_;
  StreamingConfig stream_cfg_;
  std::shared_ptr<const PhaseField> field_;
  int cols_, rows_;
  ExpandKernel kernel_;  // candidate scoring (scalar or vector path)

  // --- Seeding ------------------------------------------------------------
  bool seeded_ = false;
  bool finished_ = false;
  Vec2 seed_center_;  // block center of the seed cell, once seeded
  std::size_t seed_root_pos_ = 0;  // output index of the seed/root position
  /// Observations buffered before the seed arrives; replayed only by the
  /// finish() fallback (a phase window instead *backfills* them and
  /// releases the buffer).
  std::vector<TrackObservation> unseeded_prefix_;

  // --- Beam arena (all surviving nodes of all retained steps, flat SoA) ---
  std::vector<std::int32_t> node_cell_;
  std::vector<float> node_logp_;
  std::vector<std::int32_t> node_parent_;
  std::size_t prev_begin_ = 0, prev_end_ = 0;
  /// Arena offset where each retained step begins; step s holds the state
  /// after output position arena_base_out_ + s.
  std::vector<std::size_t> step_begin_;
  /// Output-position index of the arena's root step (grows on compaction).
  std::size_t arena_base_out_ = 0;

  // --- Bookkeeping ---------------------------------------------------------
  std::size_t n_pushed_ = 0;
  std::size_t n_committed_ = 0;  // total ever committed, drained or not
  double azimuth_correction_rad_ = 0.0;
  std::vector<Vec2> committed_buf_;  // committed, awaiting poll()
  std::vector<Vec2> backtrace_scratch_;

  // Scratch reused across steps (see HmmTracker::decode history).
  std::vector<std::int32_t> cand_cell_, cand_parent_;
  std::vector<float> cand_logp_;
  std::vector<std::int32_t> order_;

  // Per-window renormalization state (see the determinism contract above).
  float last_window_logp_max_ = 0.0f;
  double total_logp_offset_ = 0.0;

  // Hot-loop counters, flushed to the registry once per session.
  bool metrics_flushed_ = false;
  ExpandStats stats_;
  std::uint64_t n_starved_ = 0;
  std::uint64_t n_beam_nodes_ = 0;
  std::uint64_t beam_peak_ = 0;
};

}  // namespace polardraw::core
