// Particle-filter trajectory tracker.
//
// The paper's HMM treats transitions between feasible blocks as uniform
// and defers "more sophisticated motion modeling, such as the Kalman and
// Particle filters" to future work (section 3.5, footnote 5). This is
// that future work: a sequential-importance-resampling filter over
// continuous pen state (position + velocity) driven by the same
// per-window observations the HMM consumes.
//
// Motion model: near-constant velocity with acceleration noise, clamped
// to the vmax speed limit. Observation weights reuse the paper's three
// constraints: the annulus displacement bounds (Eq. 5), the direction
// line, and the inter-antenna hyperbola (Eq. 7). Output is the weighted
// mean per window, followed by the same Eq. 10 correction hook.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "core/config.h"
#include "core/distance_estimator.h"
#include "core/hmm_tracker.h"
#include "core/phase_field.h"

namespace polardraw::core {

struct ParticleFilterConfig {
  std::size_t num_particles = 800;
  /// Acceleration noise (std-dev, m/s^2) of the constant-velocity model.
  double accel_noise = 1.2;
  /// Fraction of effective sample size below which systematic resampling
  /// triggers.
  double resample_threshold = 0.5;
  /// Initial position scatter around the bootstrap location, meters.
  double init_scatter_m = 0.05;
};

class ParticleTracker {
 public:
  /// `field`: optional shared phase-difference cache for this antenna
  /// layout; built on the spot when absent. Off-grid particles read the
  /// field through bilinear interpolation.
  ParticleTracker(const PolarDrawConfig& cfg, ParticleFilterConfig pf,
                  Vec2 a1, Vec2 a2, double antenna_z,
                  std::uint64_t seed = 1,
                  std::shared_ptr<const PhaseField> field = nullptr);

  /// Filters the observation sequence; returns one position per window.
  /// `initial_hint` seeds the particle cloud (pass the hyperbolic fix).
  std::vector<Vec2> decode(const std::vector<TrackObservation>& obs,
                           const Vec2* initial_hint = nullptr);

  const ParticleFilterConfig& config() const { return pf_; }

 private:
  struct Particle {
    Vec2 pos;
    Vec2 vel;
    double weight;
  };

  void resample_if_needed();

  PolarDrawConfig cfg_;
  ParticleFilterConfig pf_;
  Vec2 a1_, a2_;
  double antenna_z_;
  std::shared_ptr<const PhaseField> field_;
  Rng rng_;
  std::vector<Particle> particles_;
};

}  // namespace polardraw::core
