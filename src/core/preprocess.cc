#include "core/preprocess.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/angles.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace polardraw::core {

std::optional<double> circular_mean(const std::vector<double>& phases) {
  if (phases.empty()) return std::nullopt;
  double sx = 0.0, sy = 0.0;
  for (double p : phases) {
    sx += std::cos(p);
    sy += std::sin(p);
  }
  // A near-uniform phase set cancels to a resultant of rounding-noise
  // magnitude; atan2 of that noise is a meaningless direction. Each of the
  // n cos/sin terms contributes O(eps) rounding error, so anything below
  // a few n*eps is indistinguishable from exact cancellation.
  const double noise_floor = 8.0 * std::numeric_limits<double>::epsilon() *
                             static_cast<double>(phases.size());
  if (std::hypot(sx, sy) <= noise_floor) return std::nullopt;
  return wrap_2pi(std::atan2(sy, sx));
}

std::vector<Window> preprocess(const rfid::TagReportStream& reports,
                               const PolarDrawConfig& cfg,
                               const PhaseCalibration* calibration) {
  static const obs::SpanSite span_site("core.preprocess");
  const obs::ScopedSpan span(span_site);
  std::vector<Window> out;
  if (reports.empty() || cfg.window_s <= 0.0) return out;

  // --- Step 1: window averaging ------------------------------------------
  const double t0 = reports.front().timestamp_s;
  // Accumulators indexed by window ordinal. The window count is known from
  // the report span, so a contiguous vector replaces the former
  // std::map<int, Acc>: bucketing a ~100 Hz stream is O(1) per read
  // instead of O(log n), and the windows come out already ordered.
  struct Acc {
    std::vector<double> rss[2];
    std::vector<double> phase[2];
    std::vector<int> channel[2];
    // Phase reads whose channel the calibration did NOT cover; any such
    // read poisons the window for cross-hop comparison.
    int uncalibrated[2] = {0, 0};
  };
  // A corrupt timestamp far past the stream start would otherwise size the
  // bucket vector (and the output) absurdly; reads beyond the cap -- about
  // 1.8 hours of stream at the 50 ms default -- are dropped, as are reads
  // that predate the first report (negative window ordinal).
  constexpr std::size_t kMaxWindows = 1u << 17;
  double t_max = t0;
  bool any_valid = false;
  for (const auto& r : reports) {
    if (r.antenna_id < 0 || r.antenna_id > 1) continue;
    if (r.timestamp_s < t0) continue;
    any_valid = true;
    if (r.timestamp_s > t_max) t_max = r.timestamp_s;
  }
  if (!any_valid) return out;
  const double span_windows = (t_max - t0) / cfg.window_s;
  const std::size_t n_windows =
      1 + static_cast<std::size_t>(
              std::min(span_windows, static_cast<double>(kMaxWindows - 1)));
  std::vector<Acc> buckets(n_windows);
  for (const auto& r : reports) {
    if (r.antenna_id < 0 || r.antenna_id > 1) continue;
    const double w_f = (r.timestamp_s - t0) / cfg.window_s;
    if (w_f < 0.0 || w_f >= static_cast<double>(n_windows)) continue;
    const std::size_t w = static_cast<std::size_t>(w_f);
    double phase = r.phase_rad;
    bool channel_covered = false;
    if (calibration != nullptr) {
      if (static_cast<std::size_t>(r.antenna_id) <
          calibration->port_offsets_rad.size()) {
        phase = wrap_2pi(phase - calibration->port_offsets_rad[r.antenna_id]);
      }
      if (r.channel >= 0 &&
          static_cast<std::size_t>(r.channel) <
              calibration->channel_offsets_rad.size()) {
        phase = wrap_2pi(phase - calibration->channel_offsets_rad[r.channel]);
        channel_covered = true;
      }
    }
    auto& acc = buckets[w];
    acc.rss[r.antenna_id].push_back(r.rss_dbm);
    acc.phase[r.antenna_id].push_back(phase);
    acc.channel[r.antenna_id].push_back(r.channel);
    if (!channel_covered) acc.uncalibrated[r.antenna_id] += 1;
  }

  out.reserve(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    Window win;
    win.index = static_cast<int>(w);
    win.t_s = t0 + (static_cast<double>(w) + 0.5) * cfg.window_s;
    const Acc& acc = buckets[w];
    for (int a = 0; a < 2; ++a) {
      const auto& rss = acc.rss[a];
      if (!rss.empty()) {
        double s = 0.0;
        for (double v : rss) s += v;
        win.rss_dbm[a] = s / static_cast<double>(rss.size());
        win.rss_valid[a] = true;
        win.read_count[a] = static_cast<int>(rss.size());
      }
      if (const auto m = circular_mean(acc.phase[a])) {
        win.phase_rad[a] = *m;
        win.phase_valid[a] = true;
        // Majority channel of the window's reads (hopping diagnostics).
        const auto& chs = acc.channel[a];
        if (!chs.empty()) win.channel[a] = chs[chs.size() / 2];
        // Cross-hop comparison is only safe when every phase read fed
        // through a calibrated channel (a single uncovered read would mix
        // an unremoved RF-chain offset into the circular mean).
        win.channel_calibrated[a] = acc.uncalibrated[a] == 0;
      }
    }
    out.push_back(win);
  }

  // --- Step 2: spurious phase rejection + unwrap --------------------------
  // Compare each window's (wrapped) phase against the previous *valid*
  // window; jumps beyond the threshold are the cross-polarized reflection
  // readings -- invalidate them. Surviving samples are unwrapped into a
  // continuous series per antenna.
  std::uint64_t rejected = 0;
  std::uint64_t nonmonotone = 0;
  for (int a = 0; a < 2; ++a) {
    bool have_prev = false;
    double prev_wrapped = 0.0;
    int prev_index = 0;
    int prev_channel = 0;
    bool prev_calibrated = false;
    PhaseUnwrapper unwrapper;
    for (Window& win : out) {
      if (!win.phase_valid[a]) continue;
      const double wrapped = win.phase_rad[a];
      if (have_prev && win.channel[a] != prev_channel &&
          !(prev_calibrated && win.channel_calibrated[a])) {
        // Frequency hop across an uncalibrated boundary: the per-channel
        // offset makes this phase incomparable with the previous one;
        // restart the comparison and the unwrapper at this window (the
        // sample itself stays valid). When BOTH sides are channel-
        // calibrated the offsets were already removed at bucketing time,
        // so the comparison continues through the hop; the residual
        // carrier-frequency term is small enough for the spurious
        // threshold to absorb (DESIGN.md section 16).
        have_prev = false;
        unwrapper.reset();
      }
      if (have_prev) {
        // The comparison reference is the last *valid* window, which may
        // be several windows back (reads drop out during deep mismatch).
        // Legitimate phase slews up to the threshold per elapsed window;
        // scaling the allowance by the gap keeps one spurious reading
        // from cascading into rejecting the entire remaining stream.
        const int gap = std::max(1, win.index - prev_index);
        const double allowed =
            cfg.spurious_phase_threshold_rad * static_cast<double>(gap);
        if (angle_dist(wrapped, prev_wrapped) > std::min(allowed, kPi)) {
          // Reject the current window's phase reading (keep RSS: the paper
          // only rejects phase -- RSS remains physical during mismatch).
          win.phase_valid[a] = false;
          ++rejected;
          continue;
        }
      }
      const std::uint64_t rejected_before = unwrapper.nonmonotone_rejected();
      const double unwrapped = unwrapper.push_at(wrapped, win.t_s);
      if (unwrapper.nonmonotone_rejected() != rejected_before) {
        // The unwrapper refused the sample (non-monotone window time):
        // drop the phase so the stale unwrapped value cannot leak into the
        // window, and keep the spurious-rejection reference (prev_*) at
        // the last accepted sample so it stays in lockstep with the
        // unwrapper's internal reference.
        win.phase_valid[a] = false;
        continue;
      }
      have_prev = true;
      prev_wrapped = wrapped;
      prev_index = win.index;
      prev_channel = win.channel[a];
      prev_calibrated = win.channel_calibrated[a];
      win.phase_rad[a] = unwrapped;
    }
    nonmonotone += unwrapper.nonmonotone_rejected();
  }
  static const obs::Counter windows_counter("preprocess.windows");
  static const obs::Counter rejected_counter("preprocess.phase_rejected");
  static const obs::Counter nonmonotone_counter("preprocess.nonmonotone_reports");
  windows_counter.add(out.size());
  rejected_counter.add(rejected);
  nonmonotone_counter.add(nonmonotone);
  return out;
}

}  // namespace polardraw::core
