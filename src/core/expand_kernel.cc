#include "core/expand_kernel.h"

// polarlint: hot-path -- no node-based hash maps in the decode loop.

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/angles.h"

namespace polardraw::core {

namespace {
constexpr double kWeightFloor = 1e-6;  // keeps log-probabilities finite
const double kLogWeightFloor = std::log(kWeightFloor);
const double kLogQuarter = std::log(0.25);
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr float kNegInfF = -std::numeric_limits<float>::infinity();
}  // namespace

ExpandKernel::ExpandKernel(const PolarDrawConfig& cfg, const PhaseField& field)
    : cfg_(cfg),
      field_(field),
      kind_(cfg.decode_kernel),
      cols_(field.cols()),
      rows_(field.rows()),
      best_slot_(field.cells()),
      hyper_term_(field.cells()) {}

ExpandKernel::WindowTerms ExpandKernel::window_terms(
    const TrackObservation& o) const {
  WindowTerms w;
  // Feasible annulus in blocks. An invalid (inconsistent) distance
  // estimate degrades to "anywhere within the speed limit".
  w.lower_m = o.distance.valid ? o.distance.lower_m : 0.0;
  w.upper_m = std::max({o.distance.upper_m, w.lower_m, cfg_.block_m * 0.5});
  w.reach_blocks =
      std::max(1, static_cast<int>(std::ceil(w.upper_m / cfg_.block_m)));
  w.out_thresh_m = w.upper_m + 0.5 * cfg_.block_m;
  w.quarter_block_m = 0.25 * cfg_.block_m;
  w.use_hyper =
      cfg_.use_hyperbola_constraint && o.has_phase && o.distance.valid;
  w.meas_rad = w.use_hyper ? wrap_2pi(o.distance.dtheta21) : 0.0;
  w.use_dir = o.direction.type != MotionType::kIdle &&
              o.direction.direction.norm_sq() > 0.0;
  w.dir = o.direction.direction;
  if (w.use_dir) {
    // The half-plane test below compares rx*dir.x + ry*dir.y -- a dot
    // product scaled by |dir| -- against a threshold in meters, and the
    // perpendicular-distance term divides by dmax_m assuming |dir| = 1.
    // Every in-tree producer emits unit vectors, but the contract is
    // enforced here: a non-unit direction is normalized (the tolerance
    // leaves bit-exact already-normalized vectors untouched).
    const double n2 = w.dir.norm_sq();
    if (std::fabs(n2 - 1.0) > 1e-9) w.dir = w.dir / std::sqrt(n2);
  }
  w.dmax_m = std::max(o.distance.upper_m, cfg_.block_m);
  w.back_thresh_m = -0.25 * cfg_.block_m;
  w.idle_step_penalty =
      o.direction.type == MotionType::kIdle && w.upper_m > 0.0;
  return w;
}

void ExpandKernel::fill_dc_limits(const WindowTerms& w) {
  // Integer annulus bound: a candidate |dc| blocks away horizontally and
  // |dr| vertically is at least ~sqrt(dc^2+dr^2) blocks out, so columns
  // beyond this limit cannot pass the exact outer-radius test (the +1
  // absorbs block-center rounding). Rows stay within [-reach, reach].
  const int reach = w.reach_blocks;
  const double r_blocks = w.out_thresh_m / cfg_.block_m;
  dc_lim_.assign(static_cast<std::size_t>(reach) + 1, 0);
  for (int dr = 0; dr <= reach; ++dr) {
    const double rem = r_blocks * r_blocks - static_cast<double>(dr) * dr;
    dc_lim_[static_cast<std::size_t>(dr)] =
        rem <= 0.0 ? 0
                   : std::min(reach, static_cast<int>(std::sqrt(rem)) + 1);
  }
}

void ExpandKernel::expand(const TrackObservation& o,
                          const std::vector<std::int32_t>& node_cell,
                          const std::vector<float>& node_logp,
                          std::size_t prev_begin, std::size_t prev_end,
                          std::vector<std::int32_t>& cand_cell,
                          std::vector<float>& cand_logp,
                          std::vector<std::int32_t>& cand_parent,
                          ExpandStats& stats) {
  const WindowTerms w = window_terms(o);
  fill_dc_limits(w);
  best_slot_.clear();
  cand_cell.clear();
  cand_logp.clear();
  cand_parent.clear();
  if (kind_ == DecodeKernel::kVector) {
    expand_vector(w, node_cell, node_logp, prev_begin, prev_end, cand_cell,
                  cand_logp, cand_parent, stats);
  } else {
    expand_scalar(w, node_cell, node_logp, prev_begin, prev_end, cand_cell,
                  cand_logp, cand_parent, stats);
  }
}

// ---------------------------------------------------------------------------
// Scalar reference path: a behavior-preserving lift of the historical
// StreamingDecoder::step loop, pinned bit-identical by the golden tests.
// ---------------------------------------------------------------------------

void ExpandKernel::expand_scalar(const WindowTerms& w,
                                 const std::vector<std::int32_t>& node_cell,
                                 const std::vector<float>& node_logp,
                                 std::size_t prev_begin, std::size_t prev_end,
                                 std::vector<std::int32_t>& cand_cell,
                                 std::vector<float>& cand_logp,
                                 std::vector<std::int32_t>& cand_parent,
                                 ExpandStats& stats) {
  const PhaseField& field = field_;
  const int reach = w.reach_blocks;
  hyper_term_.clear();

  for (std::size_t a = prev_begin; a < prev_end; ++a) {
    const std::int32_t pcell = node_cell[a];
    const int pr = pcell / cols_;
    const int pc = pcell % cols_;
    const float plp = node_logp[a];
    const double fx = field.center_x(pc);
    const double fy = field.center_y(pr);
    const int dr_lo = std::max(-reach, -pr);
    const int dr_hi = std::min(reach, rows_ - 1 - pr);
    for (int dr = dr_lo; dr <= dr_hi; ++dr) {
      const int nr = pr + dr;
      const double ty = field.center_y(nr);
      const double ddy = fy - ty;
      const int lim = dc_lim_[static_cast<std::size_t>(dr < 0 ? -dr : dr)];
      const int dc_lo = std::max(-lim, -pc);
      const int dc_hi = std::min(lim, cols_ - 1 - pc);
      const std::int32_t row_base = nr * cols_;
      for (int dc = dc_lo; dc <= dc_hi; ++dc) {
        const int nc = pc + dc;
        const double tx = field.center_x(nc);
        const double ddx = fx - tx;
        const double step_m = std::sqrt(ddx * ddx + ddy * ddy);
        // Annulus membership (Eq. 8); allow a quarter-block tolerance so
        // the discretization cannot strand the chain, while keeping the
        // lower bound binding (it is the phase-derived minimum motion).
        if (step_m > w.out_thresh_m) {
          ++stats.annulus_rejected;
          continue;
        }
        if (step_m + w.quarter_block_m < w.lower_m) {
          ++stats.annulus_rejected;
          continue;
        }
        ++stats.expansions;

        const std::size_t ncell = static_cast<std::size_t>(row_base + nc);
        // Hyperbola term of Eq. 11: 1 - |dtheta_meas - dtheta(x,y)| /
        // (4*pi), compared circularly against the cached field.
        double weight;
        if (w.use_hyper) {
          if (hyper_term_.contains(ncell)) {
            ++stats.hyper_hits;
            weight = hyper_term_.get(ncell);
          } else {
            ++stats.hyper_misses;
            const double mismatch =
                angle_dist(field.phase_at_cell(ncell), w.meas_rad);
            const double term =
                std::max(1.0 - mismatch / (4.0 * kPi), kWeightFloor);
            weight = cfg_.hyperbola_sharpness == 1.0
                         ? term
                         : std::pow(term, cfg_.hyperbola_sharpness);
            hyper_term_.put(ncell, weight);
          }
        } else {
          weight = 1.0;
        }

        // Direction-line term of Eq. 11: perpendicular distance from the
        // candidate to the line through the previous location along the
        // estimated moving direction, normalized by the max displacement.
        if (w.use_dir) {
          const double rx = tx - fx;
          const double ry = ty - fy;
          const double perp = std::fabs(rx * w.dir.y - ry * w.dir.x);
          double term = std::max(1.0 - perp / w.dmax_m, kWeightFloor);
          // Half-plane preference: candidates behind the motion direction
          // are inconsistent with the estimated heading.
          if (rx * w.dir.x + ry * w.dir.y < w.back_thresh_m) term *= 0.25;
          weight *= term;
        }

        if (w.idle_step_penalty) {
          // No direction estimate this window: tie-break toward small
          // steps (an undetected motion is a small motion), otherwise
          // the annulus blocks tie -- exactly along the hyperbola when
          // phase is present, everywhere when it is not -- and the
          // argmax drifts.
          const double frac = step_m / w.upper_m;
          weight *= std::exp(-cfg_.unobserved_step_penalty * frac * frac);
        }

        const float lp =
            plp +
            static_cast<float>(std::log(std::max(weight, kWeightFloor)));
        if (!best_slot_.contains(ncell)) {
          best_slot_.put(ncell, static_cast<std::int32_t>(cand_cell.size()));
          cand_cell.push_back(static_cast<std::int32_t>(ncell));
          cand_logp.push_back(lp);
          cand_parent.push_back(static_cast<std::int32_t>(a));
        } else {
          const std::int32_t slot = best_slot_.get(ncell);
          if (lp > cand_logp[static_cast<std::size_t>(slot)]) {
            cand_logp[static_cast<std::size_t>(slot)] = lp;
            cand_parent[static_cast<std::size_t>(slot)] =
                static_cast<std::int32_t>(a);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Vector path: branchless SoA scoring. All transcendental work happens in
// two per-window precomputations; the per-candidate loop is three adds and
// a max over contiguous lanes.
// ---------------------------------------------------------------------------

void ExpandKernel::fill_displacement_table(const WindowTerms& w) {
  const int reach = w.reach_blocks;
  const int t = 2 * reach + 1;
  const std::size_t tt =
      static_cast<std::size_t>(t) * static_cast<std::size_t>(t);
  // disp_logw_ holds the finite direction/idle log-weight (0 where the
  // displacement is annulus-rejected); the validity mask is folded into
  // the same buffer as a second plane [tt, 2*tt): 0 for valid lanes, -inf
  // for rejected ones, so a rejected candidate's score is -inf *after*
  // the weight-floor clamp instead of being resurrected by it.
  //
  // Knife-edge displacements -- lattice distance within kEdgeEps of either
  // annulus threshold -- are marked in disp_edge_ and kept valid here; the
  // merge loop re-tests them with the scalar path's exact center-difference
  // arithmetic. This matters in practice: upper_m is often an exact block
  // multiple (vmax * window / block integral), putting out_thresh_m dead on
  // the lattice, where the scalar path's position-dependent rounding noise
  // (~1e-16) decides acceptance cell by cell.
  constexpr double kEdgeEps = 1e-12;
  disp_logw_.assign(2 * tt, 0.0);
  disp_edge_.assign(tt, 0);
  for (int dr = -reach; dr <= reach; ++dr) {
    const std::size_t row = static_cast<std::size_t>(dr + reach);
    for (int dc = -reach; dc <= reach; ++dc) {
      const std::size_t idx = row * static_cast<std::size_t>(t) +
                              static_cast<std::size_t>(dc + reach);
      // Exact block-lattice displacement (the grid is uniform, so the
      // candidate-minus-previous center difference is dc/dr blocks up to
      // rounding; the vector path snaps to the lattice).
      const double rx = static_cast<double>(dc) * cfg_.block_m;
      const double ry = static_cast<double>(dr) * cfg_.block_m;
      const double step_m = std::sqrt(rx * rx + ry * ry);
      const bool edge =
          std::fabs(step_m - w.out_thresh_m) < kEdgeEps ||
          std::fabs(step_m + w.quarter_block_m - w.lower_m) < kEdgeEps;
      const bool valid = edge || (!(step_m > w.out_thresh_m) &&
                                  !(step_m + w.quarter_block_m < w.lower_m));
      double logw = 0.0;
      if (valid) {
        if (w.use_dir) {
          const double perp = std::fabs(rx * w.dir.y - ry * w.dir.x);
          logw += std::log(std::max(1.0 - perp / w.dmax_m, kWeightFloor));
          if (rx * w.dir.x + ry * w.dir.y < w.back_thresh_m) {
            logw += kLogQuarter;
          }
        }
        if (w.idle_step_penalty) {
          const double frac = step_m / w.upper_m;
          logw += -cfg_.unobserved_step_penalty * frac * frac;
        }
      }
      disp_logw_[idx] = valid ? logw : 0.0;
      disp_logw_[tt + idx] = valid ? 0.0 : kNegInf;
      disp_edge_[idx] = edge ? 1 : 0;
    }
  }
}

void ExpandKernel::fill_hyper_rows(const WindowTerms& w, int r_lo, int r_hi,
                                   int c_lo, int box_w, ExpandStats& stats) {
  const double inv_4pi = 1.0 / (4.0 * kPi);
  const double sharp = cfg_.hyperbola_sharpness;
  for (int nr = r_lo; nr <= r_hi; ++nr) {
    const int lo = row_span_lo_[static_cast<std::size_t>(nr)];
    const int hi = row_span_hi_[static_cast<std::size_t>(nr)];
    if (lo > hi) continue;
    double* out = &hyper_logw_[static_cast<std::size_t>(nr - r_lo) *
                                   static_cast<std::size_t>(box_w) +
                               static_cast<std::size_t>(lo - c_lo)];
    const std::size_t len = static_cast<std::size_t>(hi - lo) + 1;
    if (!w.use_hyper) {
      std::fill(out, out + len, 0.0);
      continue;
    }
    const double* phase = field_.phase_row(nr) + lo;
    stats.hyper_misses += len;
    // Branchless circular distance: phase and meas both live in [0, 2*pi),
    // so the circular distance is min(|d|, 2*pi - |d|). log(term^sharp)
    // = sharp * log(term), so the scalar path's pow disappears.
    for (std::size_t i = 0; i < len; ++i) {
      const double d = std::fabs(phase[i] - w.meas_rad);
      const double mismatch = std::min(d, kTwoPi - d);
      const double term = std::max(1.0 - mismatch * inv_4pi, kWeightFloor);
      out[i] = sharp * std::log(term);
    }
  }
}

void ExpandKernel::expand_vector(const WindowTerms& w,
                                 const std::vector<std::int32_t>& node_cell,
                                 const std::vector<float>& node_logp,
                                 std::size_t prev_begin, std::size_t prev_end,
                                 std::vector<std::int32_t>& cand_cell,
                                 std::vector<float>& cand_logp,
                                 std::vector<std::int32_t>& cand_parent,
                                 ExpandStats& stats) {
  const int reach = w.reach_blocks;
  const int t = 2 * reach + 1;
  fill_displacement_table(w);

  // Union of per-row column spans touched by this window's beam, bounding
  // the hyperbola precompute to (a superset of) the candidate set.
  row_span_lo_.assign(static_cast<std::size_t>(rows_), cols_);
  row_span_hi_.assign(static_cast<std::size_t>(rows_), -1);
  int r_lo = rows_, r_hi = -1;
  for (std::size_t a = prev_begin; a < prev_end; ++a) {
    const std::int32_t pcell = node_cell[a];
    const int pr = pcell / cols_;
    const int pc = pcell % cols_;
    const int dr_lo = std::max(-reach, -pr);
    const int dr_hi = std::min(reach, rows_ - 1 - pr);
    for (int dr = dr_lo; dr <= dr_hi; ++dr) {
      const int nr = pr + dr;
      const int lim = dc_lim_[static_cast<std::size_t>(dr < 0 ? -dr : dr)];
      const std::size_t nrz = static_cast<std::size_t>(nr);
      row_span_lo_[nrz] = std::min(row_span_lo_[nrz], std::max(0, pc - lim));
      row_span_hi_[nrz] =
          std::max(row_span_hi_[nrz], std::min(cols_ - 1, pc + lim));
      r_lo = std::min(r_lo, nr);
      r_hi = std::max(r_hi, nr);
    }
  }
  if (r_hi < r_lo) return;  // empty beam: nothing to expand

  int c_lo = cols_, c_hi = -1;
  for (int nr = r_lo; nr <= r_hi; ++nr) {
    const std::size_t nrz = static_cast<std::size_t>(nr);
    if (row_span_lo_[nrz] <= row_span_hi_[nrz]) {
      c_lo = std::min(c_lo, row_span_lo_[nrz]);
      c_hi = std::max(c_hi, row_span_hi_[nrz]);
    }
  }
  const int box_w = c_hi - c_lo + 1;
  hyper_logw_.resize(static_cast<std::size_t>(r_hi - r_lo + 1) *
                     static_cast<std::size_t>(box_w));
  fill_hyper_rows(w, r_lo, r_hi, c_lo, box_w, stats);

  const std::size_t tt =
      static_cast<std::size_t>(t) * static_cast<std::size_t>(t);
  lane_logp_.resize(static_cast<std::size_t>(t));

  for (std::size_t a = prev_begin; a < prev_end; ++a) {
    const std::int32_t pcell = node_cell[a];
    const int pr = pcell / cols_;
    const int pc = pcell % cols_;
    const double plp = static_cast<double>(node_logp[a]);
    const int dr_lo = std::max(-reach, -pr);
    const int dr_hi = std::min(reach, rows_ - 1 - pr);
    for (int dr = dr_lo; dr <= dr_hi; ++dr) {
      const int nr = pr + dr;
      const int lim = dc_lim_[static_cast<std::size_t>(dr < 0 ? -dr : dr)];
      const int dc_lo = std::max(-lim, -pc);
      const int dc_hi = std::min(lim, cols_ - 1 - pc);
      const int len = dc_hi - dc_lo + 1;
      if (len <= 0) continue;
      const std::size_t lenz = static_cast<std::size_t>(len);

      const std::size_t trow = static_cast<std::size_t>(dr + reach);
      const std::size_t tcol0 = static_cast<std::size_t>(dc_lo + reach);
      const double* dtab =
          &disp_logw_[trow * static_cast<std::size_t>(t) + tcol0];
      const double* mask =
          &disp_logw_[tt + trow * static_cast<std::size_t>(t) + tcol0];
      const unsigned char* edge =
          &disp_edge_[trow * static_cast<std::size_t>(t) + tcol0];
      const double* hyp =
          &hyper_logw_[static_cast<std::size_t>(nr - r_lo) *
                           static_cast<std::size_t>(box_w) +
                       static_cast<std::size_t>(pc + dc_lo - c_lo)];
      float* lanes = lane_logp_.data();

      // Branchless scoring: weight floor clamps the finite log-weight sum
      // (exactly log(max(w, floor)) up to reassociation); the mask plane
      // then forces annulus-rejected lanes to -inf.
      for (std::size_t i = 0; i < lenz; ++i) {
        lanes[i] = static_cast<float>(
            plp + std::max(hyp[i] + dtab[i], kLogWeightFloor) + mask[i]);
      }

      // Merge per-cell bests through the generation scoreboard, in the
      // same first-touch traversal order as the scalar path. Knife-edge
      // lanes re-run the scalar path's exact center-difference annulus
      // test so both kernels accept the same candidate set even when a
      // threshold sits dead on the lattice.
      const std::int32_t row_base = nr * cols_;
      const std::int32_t nc0 = static_cast<std::int32_t>(pc + dc_lo);
      const double fx = field_.center_x(pc);
      const double fy = field_.center_y(pr);
      const double ddy_exact = fy - field_.center_y(nr);
      for (std::size_t i = 0; i < lenz; ++i) {
        const float lp = lanes[i];
        if (lp == kNegInfF) {  // annulus-rejected lane
          ++stats.annulus_rejected;
          continue;
        }
        if (edge[i] != 0) {
          const double ddx =
              fx - field_.center_x(nc0 + static_cast<std::int32_t>(i));
          const double step_m =
              std::sqrt(ddx * ddx + ddy_exact * ddy_exact);
          if (step_m > w.out_thresh_m ||
              step_m + w.quarter_block_m < w.lower_m) {
            ++stats.annulus_rejected;
            continue;
          }
        }
        ++stats.expansions;
        const std::size_t ncell = static_cast<std::size_t>(
            row_base + nc0 + static_cast<std::int32_t>(i));
        if (!best_slot_.contains(ncell)) {
          best_slot_.put(ncell, static_cast<std::int32_t>(cand_cell.size()));
          cand_cell.push_back(static_cast<std::int32_t>(ncell));
          cand_logp.push_back(lp);
          cand_parent.push_back(static_cast<std::int32_t>(a));
        } else {
          const std::int32_t slot = best_slot_.get(ncell);
          if (lp > cand_logp[static_cast<std::size_t>(slot)]) {
            cand_logp[static_cast<std::size_t>(slot)] = lp;
            cand_parent[static_cast<std::size_t>(slot)] =
                static_cast<std::int32_t>(a);
          }
        }
      }
    }
  }
}

}  // namespace polardraw::core
