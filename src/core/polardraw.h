// PolarDraw end-to-end pipeline (the paper's Fig. 5 workflow).
//
// Raw tag reports -> pre-processing (windowing + spurious rejection) ->
// per-window motion classification (RSS-trend split) -> rotational or
// translational direction estimation -> displacement bounds + hyperbola ->
// HMM/Viterbi trajectory decoding -> final rotation correction.
//
// This facade is the library's primary public API: construct it with the
// algorithm config and antenna geometry, feed a report stream, and get the
// recovered pen trajectory.
#pragma once

#include <vector>

#include "common/vec.h"
#include "core/config.h"
#include "core/hmm_tracker.h"
#include "core/motion.h"
#include "core/preprocess.h"
#include "rfid/tag_report.h"

namespace polardraw::core {

/// Diagnostic record of one tracked window (for tests and microbenches).
struct WindowDiagnostics {
  double t_s = 0.0;
  MotionType motion = MotionType::kIdle;
  DirectionEstimate direction;
  DistanceEstimate distance;
};

/// Result of tracking one writing session.
struct TrackingResult {
  /// Recovered pen trajectory, one point per processed window (meters).
  std::vector<Vec2> trajectory;
  /// Window-level diagnostics, same length as `trajectory` minus one.
  std::vector<WindowDiagnostics> diagnostics;
  /// Count of windows classified rotational / translational / idle.
  int rotational_windows = 0;
  int translational_windows = 0;
  int idle_windows = 0;
  /// Accumulated initial-azimuth correction applied via Eq. 10 (radians).
  double azimuth_correction_rad = 0.0;
};

class PolarDraw {
 public:
  /// `a1`, `a2`: board-plane antenna positions; `antenna_z`: standoff.
  PolarDraw(PolarDrawConfig cfg, Vec2 a1, Vec2 a2, double antenna_z);

  /// Tracks a full writing session from raw reports.
  TrackingResult track(const rfid::TagReportStream& reports,
                       const PhaseCalibration* calibration = nullptr) const;

  /// Tracks from already pre-processed windows (used by tests and by the
  /// ablation harness to share pre-processing between variants).
  TrackingResult track_windows(const std::vector<Window>& windows) const;

  const PolarDrawConfig& config() const { return cfg_; }

 private:
  PolarDrawConfig cfg_;
  Vec2 a1_, a2_;
  double antenna_z_;
};

}  // namespace polardraw::core
