#include "core/particle_tracker.h"

#include <algorithm>
#include <cmath>

#include "common/angles.h"

namespace polardraw::core {

ParticleTracker::ParticleTracker(const PolarDrawConfig& cfg,
                                 ParticleFilterConfig pf, Vec2 a1, Vec2 a2,
                                 double antenna_z, std::uint64_t seed,
                                 std::shared_ptr<const PhaseField> field)
    : cfg_(cfg),
      pf_(pf),
      a1_(a1),
      a2_(a2),
      antenna_z_(antenna_z),
      field_(field != nullptr ? std::move(field)
                              : std::make_shared<const PhaseField>(
                                    cfg, a1, a2, antenna_z)),
      rng_(seed) {}

void ParticleTracker::resample_if_needed() {
  double sum = 0.0, sum_sq = 0.0;
  for (const Particle& p : particles_) {
    sum += p.weight;
    sum_sq += p.weight * p.weight;
  }
  if (sum <= 0.0) {
    // Degenerate: reset weights uniformly.
    for (Particle& p : particles_) p.weight = 1.0;
    return;
  }
  const double ess = sum * sum / sum_sq;
  if (ess >= pf_.resample_threshold * static_cast<double>(particles_.size())) {
    return;
  }
  // Systematic resampling.
  std::vector<Particle> next;
  next.reserve(particles_.size());
  const double step = sum / static_cast<double>(particles_.size());
  double u = rng_.uniform(0.0, step);
  double cum = 0.0;
  std::size_t i = 0;
  for (std::size_t k = 0; k < particles_.size(); ++k) {
    const double target = u + static_cast<double>(k) * step;
    while (cum + particles_[i].weight < target && i + 1 < particles_.size()) {
      cum += particles_[i].weight;
      ++i;
    }
    Particle p = particles_[i];
    p.weight = 1.0;
    next.push_back(p);
  }
  particles_ = std::move(next);
}

std::vector<Vec2> ParticleTracker::decode(
    const std::vector<TrackObservation>& obs, const Vec2* initial_hint) {
  std::vector<Vec2> traj;
  if (obs.empty()) return traj;

  // --- Initialization -------------------------------------------------------
  Vec2 start{cfg_.board_width_m / 2.0, cfg_.board_height_m / 2.0};
  if (initial_hint != nullptr) {
    start = *initial_hint;
  } else {
    const HmmTracker hmm(cfg_, a1_, a2_, antenna_z_, field_);
    for (const auto& o : obs) {
      if (o.has_phase) {
        start = hmm.initial_location(o.distance.dtheta21);
        break;
      }
    }
  }
  particles_.clear();
  particles_.reserve(pf_.num_particles);
  for (std::size_t i = 0; i < pf_.num_particles; ++i) {
    Particle p;
    p.pos = start + Vec2{rng_.gaussian(0.0, pf_.init_scatter_m),
                         rng_.gaussian(0.0, pf_.init_scatter_m)};
    p.vel = Vec2{};
    p.weight = 1.0;
    particles_.push_back(p);
  }

  const double dt = cfg_.window_s;
  traj.reserve(obs.size() + 1);
  traj.push_back(start);

  for (const auto& o : obs) {
    // --- Propagate: near-constant velocity + acceleration noise -----------
    for (Particle& p : particles_) {
      p.vel += Vec2{rng_.gaussian(0.0, pf_.accel_noise * dt),
                    rng_.gaussian(0.0, pf_.accel_noise * dt)};
      const double speed = p.vel.norm();
      if (speed > cfg_.vmax_mps) p.vel = p.vel * (cfg_.vmax_mps / speed);
      p.pos += p.vel * dt;
      p.pos.x = std::clamp(p.pos.x, 0.0, cfg_.board_width_m);
      p.pos.y = std::clamp(p.pos.y, 0.0, cfg_.board_height_m);
    }

    // --- Weight against the paper's three observation constraints ---------
    const Vec2 prev_mean = traj.back();
    for (Particle& p : particles_) {
      double w = 1.0;
      const double step = p.pos.dist(prev_mean);

      if (o.distance.valid) {
        // Annulus: soft penalties outside [lower, upper].
        if (step < o.distance.lower_m) {
          const double d = (o.distance.lower_m - step) / 0.004;
          w *= std::exp(-0.5 * d * d);
        } else if (step > o.distance.upper_m) {
          const double d = (step - o.distance.upper_m) / 0.004;
          w *= std::exp(-0.5 * d * d);
        }
      }
      if (o.direction.type != MotionType::kIdle &&
          o.direction.direction.norm_sq() > 0.0) {
        const Vec2 rel = p.pos - prev_mean;
        const double perp = std::fabs(rel.cross(o.direction.direction));
        const double dmax = std::max(o.distance.upper_m, 0.004);
        w *= std::max(1.0 - perp / dmax, 1e-4);
        if (rel.dot(o.direction.direction) < -0.001) w *= 0.25;
      }
      if (cfg_.use_hyperbola_constraint && o.has_phase && o.distance.valid) {
        // Bilinear read of the shared field (particles are off-grid).
        const double expected = field_->phase(p.pos);
        const double mismatch =
            angle_dist(expected, wrap_2pi(o.distance.dtheta21));
        w *= std::pow(std::max(1.0 - mismatch / (4.0 * kPi), 1e-4),
                      cfg_.hyperbola_sharpness);
      }
      if (o.direction.type == MotionType::kIdle) {
        // No detected motion: prefer small steps (same prior as the HMM).
        const double frac = step / std::max(o.distance.upper_m, 1e-6);
        w *= std::exp(-cfg_.unobserved_step_penalty * frac * frac);
      }
      p.weight *= w;
    }

    resample_if_needed();

    // --- Estimate: weighted mean ------------------------------------------
    double sum = 0.0;
    Vec2 mean;
    for (const Particle& p : particles_) {
      mean += p.pos * p.weight;
      sum += p.weight;
    }
    traj.push_back(sum > 0.0 ? mean / sum : prev_mean);
  }
  return traj;
}

}  // namespace polardraw::core
