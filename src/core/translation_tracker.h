// Translational movement direction estimation (paper section 3.3.2).
//
// When the pen translates with negligible rotation, the azimuth carries no
// direction information; instead the signs of the per-antenna phase changes
// decode one of four coarse board directions (Table 4): both phases falling
// = up (both links shortening, antennas are above the board), both rising
// = down, antenna-1 falling / antenna-2 rising = left, the reverse = right.
#pragma once

#include "core/config.h"
#include "core/motion.h"

namespace polardraw::core {

class TranslationTracker {
 public:
  explicit TranslationTracker(const PolarDrawConfig& cfg) : cfg_(cfg) {}

  /// Decodes the coarse direction from unwrapped phase deltas (radians,
  /// current minus previous valid window) of the two antennas.
  DirectionEstimate step(double dtheta1, double dtheta2) const;

  /// Table 4 decode as a pure function (exposed for tests). Deltas below
  /// `min_delta_rad` on both antennas decode as no motion.
  static BoardDirection decode(double dtheta1, double dtheta2,
                               double min_delta_rad = 1e-4);

 private:
  PolarDrawConfig cfg_;
};

}  // namespace polardraw::core
