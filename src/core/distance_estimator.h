// Pen movement distance estimation (paper section 3.4).
//
// From the unwrapped phase change of each antenna over a window, the
// change in the tag-to-antenna link length is Delta-l = Delta-theta *
// lambda / (4*pi) (Eq. 5; the factor 4*pi because backscatter phase covers
// the round trip). The pen displacement d_i is bounded below by
// max(|Delta-l1|, |Delta-l2|) (triangle inequality) and above by
// vmax * Delta-t -- the "feasible region" annulus. The inter-antenna phase
// difference adds a family of candidate hyperbolas (Eqs. 6-7) on which the
// next location must lie.
#pragma once

#include "common/vec.h"
#include "core/config.h"

namespace polardraw::core {

/// Displacement bounds and hyperbola data for one window.
struct DistanceEstimate {
  double lower_m = 0.0;  // max(|dl1|, |dl2|)
  double upper_m = 0.0;  // vmax * dt
  double dl1_m = 0.0;    // per-antenna link-length changes
  double dl2_m = 0.0;
  /// Measured inter-antenna phase difference theta2 - theta1, wrapped to
  /// [0, 2*pi) at the source (the physical quantity is only defined modulo
  /// 2*pi anyway). Consumers may compare it against expected_dtheta21 /
  /// PhaseField::phase without re-wrapping.
  double dtheta21 = 0.0;
  bool valid = false;
};

class DistanceEstimator {
 public:
  explicit DistanceEstimator(const PolarDrawConfig& cfg) : cfg_(cfg) {}

  /// Eq. 5 for one antenna: link-length change from a phase change.
  double link_delta(double dtheta_rad) const {
    return dtheta_rad * cfg_.wavelength_m / (4.0 * kPi);
  }

  /// Full per-window estimate from both antennas' phase deltas and the
  /// current inter-antenna phase difference.
  DistanceEstimate estimate(double dtheta1, double dtheta2,
                            double theta1_now, double theta2_now) const;

  /// Expected (wrapped) inter-antenna phase difference for a tag at `p`
  /// given the two antenna positions -- the hyperbola field of Eq. 7.
  /// `antenna_z` lifts the antennas off the board plane.
  double expected_dtheta21(const Vec2& p, const Vec2& a1, const Vec2& a2,
                           double antenna_z) const;

 private:
  PolarDrawConfig cfg_;
};

}  // namespace polardraw::core
