// Seeded synthetic observation streams for the decode hot path.
//
// Shared by bench_hmm_decode and the golden determinism tests: both need
// repeatable TrackObservation sequences that exercise every emission term
// (direction lines, annulus bounds, hyperbola matches, idle windows,
// missing-phase windows) without paying for the full scene simulation.
// The stream is a pure function of (config, window count, seed).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/angles.h"
#include "common/rng.h"
#include "common/vec.h"
#include "core/config.h"
#include "core/distance_estimator.h"
#include "core/hmm_tracker.h"

namespace polardraw::core {

struct DecodeTestbed {
  Vec2 a1, a2;
  double antenna_z = 0.12;
  Vec2 start;                         // ground-truth start (use as hint)
  std::vector<TrackObservation> obs;
};

/// Random-walk pen over the board: per window draws idle/move, integrates
/// a smoothly-wandering heading, and emits the three observation channels
/// with mild noise. Deterministic for a given (cfg, n_windows, seed).
inline DecodeTestbed make_decode_testbed(const PolarDrawConfig& cfg,
                                         int n_windows, std::uint64_t seed) {
  DecodeTestbed tb;
  tb.a1 = Vec2{cfg.board_width_m * 0.25, cfg.board_height_m + 0.05};
  tb.a2 = Vec2{cfg.board_width_m * 0.75, cfg.board_height_m + 0.05};

  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  const DistanceEstimator dist(cfg);
  const double margin = 0.1;
  Vec2 pos{cfg.board_width_m * (margin + (1.0 - 2.0 * margin) * rng.uniform()),
           cfg.board_height_m *
               (margin + (1.0 - 2.0 * margin) * rng.uniform())};
  tb.start = pos;
  double heading = rng.uniform(0.0, kTwoPi);

  tb.obs.reserve(static_cast<std::size_t>(n_windows));
  for (int i = 0; i < n_windows; ++i) {
    TrackObservation o;
    double step = 0.0;
    if (!rng.chance(0.15)) {  // 15% idle windows
      heading += rng.gaussian(0.0, 0.35);
      step = rng.uniform(0.35, 0.9) * cfg.vmax_mps * cfg.window_s;
      Vec2 d{std::cos(heading), std::sin(heading)};
      // Reflect off the board margins so the walk stays in-bounds.
      Vec2 next = pos + d * step;
      if (next.x < margin * cfg.board_width_m ||
          next.x > (1.0 - margin) * cfg.board_width_m) {
        heading = kPi - heading;
        d = Vec2{std::cos(heading), std::sin(heading)};
        next = pos + d * step;
      }
      if (next.y < margin * cfg.board_height_m ||
          next.y > (1.0 - margin) * cfg.board_height_m) {
        heading = -heading;
        d = Vec2{std::cos(heading), std::sin(heading)};
        next = pos + d * step;
      }
      o.direction.type = MotionType::kTranslational;
      // The direction estimator quantizes poorly; perturb the true heading.
      o.direction.direction =
          d.rotated(rng.gaussian(0.0, 0.15)).normalized();
      pos = next;
    }
    o.distance.lower_m = step * rng.uniform(0.7, 0.95);
    o.distance.upper_m = cfg.vmax_mps * cfg.window_s;
    o.distance.valid = true;
    o.has_phase = rng.chance(0.9);
    if (o.has_phase) {
      o.distance.dtheta21 =
          wrap_2pi(dist.expected_dtheta21(pos, tb.a1, tb.a2, tb.antenna_z) +
                   rng.gaussian(0.0, 0.08));
    }
    tb.obs.push_back(o);
  }
  return tb;
}

}  // namespace polardraw::core
