// Dynamic time warping over 2-D point sequences.
//
// The recovered pen trajectory never lines up sample-for-sample with a
// template: dwells, transit hops and speed variation shift points along
// the curve. DTW finds the monotone alignment minimizing total point
// distance, making the classifier robust to such local time distortions
// (the same reason trained recognizers like the paper's LipiTk tolerate
// sloppy input).
#pragma once

#include <vector>

#include "common/vec.h"

namespace polardraw::recognition {

/// Mean per-step DTW distance between two point sequences, with a
/// Sakoe-Chiba band of `band` indices (0 = unconstrained). Sequences must
/// be non-empty; returns a large value for degenerate input.
double dtw_distance(const std::vector<Vec2>& a, const std::vector<Vec2>& b,
                    std::size_t band = 12);

}  // namespace polardraw::recognition
