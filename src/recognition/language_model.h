// Language-model post-processing for letter sequences.
//
// The paper conjectures twice (sections 5.2.1 and 7) that "by applying
// natural language processing techniques, we can further increase
// recognition accuracy". This module implements that conjecture so the
// claim can be measured: an English letter-bigram model plus a
// noisy-channel decoder that fuses per-letter classifier scores with a
// dictionary prior.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace polardraw::recognition {

/// Letter-bigram model over A-Z plus a word-boundary symbol, with add-one
/// smoothing. Ships with statistics derived from a built-in list of
/// common English words; callers can retrain on their own corpus.
class BigramModel {
 public:
  /// Builds the model from the built-in corpus.
  BigramModel();

  /// Builds from a caller-supplied corpus of words (A-Z only; other
  /// characters are skipped).
  explicit BigramModel(const std::vector<std::string>& corpus);

  /// Log-probability of `word` under the bigram model (includes the
  /// boundary transitions). Empty words get a large negative score.
  double log_prob(const std::string& word) const;

  /// Log-probability of letter `b` following letter `a`
  /// ('^' = word start, '$' = word end for either side).
  double transition_log_prob(char a, char b) const;

 private:
  void train(const std::vector<std::string>& corpus);
  static std::size_t idx(char c);  // 0-25 letters, 26 boundary

  std::array<std::array<double, 27>, 27> log_p_{};
};

/// One candidate letter with its (non-negative) classifier dissimilarity.
struct LetterHypothesis {
  char letter = '?';
  double score = 0.0;
};

/// Noisy-channel word decoder: combines per-position letter hypotheses
/// (from the classifier) with the bigram prior, and optionally snaps to
/// the nearest dictionary word.
class WordCorrector {
 public:
  explicit WordCorrector(BigramModel model, double lm_weight = 1.0)
      : model_(std::move(model)), lm_weight_(lm_weight) {}

  /// Picks the letter sequence maximizing
  ///   sum_i(-score_i(letter_i)) + lm_weight * log P_bigram(word)
  /// over the cross-product of per-position hypotheses (beam search).
  std::string decode(
      const std::vector<std::vector<LetterHypothesis>>& positions) const;

  /// Snaps `word` to the dictionary entry with the smallest edit distance,
  /// breaking ties by bigram probability. Returns `word` unchanged when
  /// nothing is within `max_edits`.
  std::string snap_to_dictionary(const std::string& word,
                                 const std::vector<std::string>& dictionary,
                                 int max_edits = 2) const;

  const BigramModel& model() const { return model_; }

 private:
  BigramModel model_;
  double lm_weight_;
};

/// Levenshtein edit distance (uppercase letters).
int edit_distance(const std::string& a, const std::string& b);

/// The built-in common-words corpus (also used as the default dictionary).
const std::vector<std::string>& builtin_corpus();

}  // namespace polardraw::recognition
