#include "recognition/procrustes.h"

#include <algorithm>
#include <cmath>

namespace polardraw::recognition {

namespace {

Vec2 centroid(const std::vector<Vec2>& pts) {
  Vec2 c;
  for (const Vec2& p : pts) c += p;
  return pts.empty() ? c : c / static_cast<double>(pts.size());
}

/// Centroid size: sqrt of summed squared distances from the centroid.
double centroid_size(const std::vector<Vec2>& pts, Vec2 c) {
  double s = 0.0;
  for (const Vec2& p : pts) s += (p - c).norm_sq();
  return std::sqrt(s);
}

}  // namespace

std::vector<Vec2> resample_by_arclength(const std::vector<Vec2>& polyline,
                                        std::size_t n) {
  std::vector<Vec2> out;
  if (n == 0) return out;
  if (polyline.empty()) {
    out.assign(n, Vec2{});
    return out;
  }

  // Cumulative arc length.
  std::vector<double> cum(polyline.size(), 0.0);
  for (std::size_t i = 1; i < polyline.size(); ++i) {
    cum[i] = cum[i - 1] + polyline[i].dist(polyline[i - 1]);
  }
  const double total = cum.back();
  if (total <= 0.0 || polyline.size() == 1) {
    out.assign(n, polyline.front());
    return out;
  }

  out.reserve(n);
  std::size_t seg = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double target =
        total * static_cast<double>(k) / static_cast<double>(n - 1 == 0 ? 1 : n - 1);
    while (seg + 1 < polyline.size() - 1 && cum[seg + 1] < target) ++seg;
    const double seg_len = cum[seg + 1] - cum[seg];
    const double f = seg_len > 0.0 ? (target - cum[seg]) / seg_len : 0.0;
    out.push_back(polyline[seg] +
                  (polyline[seg + 1] - polyline[seg]) * std::clamp(f, 0.0, 1.0));
  }
  return out;
}

ProcrustesResult procrustes(const std::vector<Vec2>& reference,
                            const std::vector<Vec2>& probe,
                            double max_rotation_rad) {
  ProcrustesResult r;
  r.normalized = 1.0;
  if (reference.size() != probe.size() || reference.size() < 2) return r;
  const std::size_t n = reference.size();

  const Vec2 cr = centroid(reference);
  const Vec2 cp = centroid(probe);
  const double sr = centroid_size(reference, cr);
  const double sp = centroid_size(probe, cp);
  if (sr <= 0.0 || sp <= 0.0) return r;

  // Optimal rotation via the 2-D cross-covariance; for 2-D point sets the
  // SVD reduces to an atan2 of the summed cross/dot products. Mirroring is
  // never allowed: a mirrored letter is a different letter.
  double sum_dot = 0.0;   // sum of <ref_i, probe_i> after centering
  double sum_cross = 0.0; // sum of cross products
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 a = reference[i] - cr;
    const Vec2 b = probe[i] - cp;
    sum_dot += b.dot(a);
    sum_cross += b.cross(a);
  }

  r.rotation_rad = std::clamp(std::atan2(sum_cross, sum_dot),
                              -max_rotation_rad, max_rotation_rad);
  const double c = std::cos(r.rotation_rad), s = std::sin(r.rotation_rad);

  // Optimal scale given the (possibly clamped) rotation:
  // s* = <ref, R(phi) probe> / |probe|^2, which can only shrink when the
  // rotation is clamped away from its optimum.
  const double num = std::max(c * sum_dot + s * sum_cross, 0.0);
  r.scale = num / (sp * sp);
  r.translation = cr;  // probe is re-centered onto the reference centroid

  // Residuals.
  double sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 b = probe[i] - cp;
    const Vec2 rotated{c * b.x - s * b.y, s * b.x + c * b.y};
    const Vec2 mapped = cr + rotated * r.scale;
    sse += (mapped - reference[i]).norm_sq();
  }
  r.sse = sse;
  r.rms_distance = std::sqrt(sse / static_cast<double>(n));
  // Procrustes statistic: residual of unit-size-normalized shapes.
  r.normalized = std::clamp(sse / (sr * sr), 0.0, 1.0);
  return r;
}

double procrustes_distance(const std::vector<Vec2>& reference,
                           const std::vector<Vec2>& probe, std::size_t n) {
  const auto a = resample_by_arclength(reference, n);
  const auto b = resample_by_arclength(probe, n);
  return procrustes(a, b).rms_distance;
}

}  // namespace polardraw::recognition
