// Procrustes analysis: the paper's trajectory-similarity metric.
//
// Given two point sequences, finds the similarity transform (translation,
// uniform scale, rotation) of one that best matches the other in the
// least-squares sense, and reports the residual distance. The evaluation
// (paper section 5.1, metric 2) uses this to compare recovered trajectories
// against ground truth; Fig. 19 plots its CDF in centimeters.
#pragma once

#include <vector>

#include "common/vec.h"

namespace polardraw::recognition {

struct ProcrustesResult {
  /// Root-mean-square residual after optimal alignment, in the units of
  /// the reference sequence (meters in this project).
  double rms_distance = 0.0;

  /// Sum of squared residuals (the paper's goodness-of-fit criterion).
  double sse = 0.0;

  /// Normalized dissimilarity in [0, 1]: SSE after aligning both shapes
  /// to unit centroid size (standard "Procrustes statistic").
  double normalized = 0.0;

  /// Recovered transform parameters mapping `probe` onto `reference`.
  double rotation_rad = 0.0;
  double scale = 1.0;
  Vec2 translation;
};

/// Computes the optimal alignment of `probe` onto `reference`.
/// Both sequences must have the same length (resample first) and at least
/// two distinct points; degenerate input returns a default result with
/// `normalized` = 1.
///
/// `max_rotation_rad` caps the rotation the alignment may apply (the
/// optimal angle is clamped into [-max, max] and scale/residuals are
/// re-optimized at the clamped angle). The paper's similarity metric uses
/// unrestricted rotation; the letter classifier caps it so that letters
/// which are rotations of one another (Z/N, M/E/W) stay distinguishable.
ProcrustesResult procrustes(const std::vector<Vec2>& reference,
                            const std::vector<Vec2>& probe,
                            double max_rotation_rad = 10.0);

/// Resamples a polyline to `n` points equally spaced by arc length.
/// Returns `n` copies of the single point for degenerate input.
std::vector<Vec2> resample_by_arclength(const std::vector<Vec2>& polyline,
                                        std::size_t n);

/// Convenience: resamples both curves to `n` points and returns the
/// RMS Procrustes distance (meters).
double procrustes_distance(const std::vector<Vec2>& reference,
                           const std::vector<Vec2>& probe, std::size_t n = 64);

}  // namespace polardraw::recognition
