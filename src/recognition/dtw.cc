#include "recognition/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace polardraw::recognition {

double dtw_distance(const std::vector<Vec2>& a, const std::vector<Vec2>& b,
                    std::size_t band) {
  if (a.empty() || b.empty()) return 1e9;
  const std::size_t n = a.size(), m = b.size();
  const double inf = std::numeric_limits<double>::infinity();

  // Effective band: at least wide enough to bridge the length difference.
  std::size_t w = band == 0 ? std::max(n, m) : band;
  w = std::max(w, n > m ? n - m : m - n);

  std::vector<double> prev(m + 1, inf), cur(m + 1, inf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), inf);
    const std::size_t j_lo = i > w ? i - w : 1;
    const std::size_t j_hi = std::min(m, i + w);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = a[i - 1].dist(b[j - 1]);
      const double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
      if (best < inf) cur[j] = cost + best;
    }
    std::swap(prev, cur);
  }
  const double total = prev[m];
  if (!(total < inf)) return 1e9;
  return total / static_cast<double>(n + m);
}

}  // namespace polardraw::recognition
