#include "recognition/classifier.h"

#include <algorithm>
#include <cmath>

#include "handwriting/synthesizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recognition/dtw.h"
#include "recognition/procrustes.h"

namespace polardraw::recognition {

namespace {

/// Centers a shape and scales it to unit centroid size.
std::vector<Vec2> normalize_shape(std::vector<Vec2> pts) {
  Vec2 c;
  for (const Vec2& p : pts) c += p;
  if (!pts.empty()) c = c / static_cast<double>(pts.size());
  double size = 0.0;
  for (Vec2& p : pts) {
    p -= c;
    size += p.norm_sq();
  }
  size = std::sqrt(size);
  if (size > 0.0) {
    for (Vec2& p : pts) p = p / size;
  }
  return pts;
}

}  // namespace

LetterClassifier::LetterClassifier(std::size_t points) : points_(points) {
  for (char c : handwriting::alphabet()) {
    const auto& glyph = handwriting::glyph_for(c);
    const auto poly = handwriting::flatten_strokes(glyph.strokes);
    templates_.push_back(
        {c, normalize_shape(resample_by_arclength(poly, points_))});
  }
}

Classification LetterClassifier::classify(
    const std::vector<Vec2>& trajectory) const {
  static const obs::SpanSite span_site("recognition.classify");
  const obs::ScopedSpan span(span_site);
  static const obs::Counter calls_counter("classifier.calls");
  calls_counter.add();
  Classification out;
  if (trajectory.size() < 2) return out;
  const auto probe = normalize_shape(resample_by_arclength(trajectory, points_));

  double best = 1e9, second = 1e9;
  char best_c = '?', second_c = '?';
  // Allow moderate residual rotation from tracking error, but not the
  // right-angle turns that would alias one letter into another (Z/N).
  constexpr double kMaxRotation = 0.7;  // ~40 degrees
  for (const Template& t : templates_) {
    const ProcrustesResult r = procrustes(t.shape, probe, kMaxRotation);
    // Elastic rescoring: apply the recovered similarity transform, then
    // let DTW absorb the along-curve time distortion that fixed-index
    // residuals over-penalize. The final score blends both views.
    const double c = std::cos(r.rotation_rad), s = std::sin(r.rotation_rad);
    std::vector<Vec2> aligned;
    aligned.reserve(probe.size());
    for (const Vec2& p : probe) {
      aligned.push_back(
          Vec2{c * p.x - s * p.y, s * p.x + c * p.y} * r.scale);
    }
    const double elastic = dtw_distance(t.shape, aligned);
    const double score = 0.7 * r.normalized + 0.3 * elastic * 10.0;
    if (score < best) {
      second = best;
      second_c = best_c;
      best = score;
      best_c = t.letter;
    } else if (score < second) {
      second = score;
      second_c = t.letter;
    }
  }
  out.letter = best_c;
  out.score = best;
  out.second = second_c;
  out.second_score = second;
  return out;
}

std::string LetterClassifier::classify_word(const std::vector<Vec2>& trajectory,
                                            std::size_t letters) const {
  std::string word;
  for (const Classification& c : classify_word_detailed(trajectory, letters)) {
    word.push_back(c.letter);
  }
  return word;
}

std::vector<Classification> LetterClassifier::classify_word_detailed(
    const std::vector<Vec2>& trajectory, std::size_t letters) const {
  std::vector<Classification> out;
  if (trajectory.empty() || letters == 0) return out;
  if (letters == 1) return {classify(trajectory)};

  // Segment by 1-D k-means on x: letters vary in width (M is wider than
  // I), so equal-width cells misassign points near boundaries; clustering
  // finds the natural per-letter x bands. Cluster on an arclength-uniform
  // resampling so that dwell points and dense curves do not skew centers.
  const auto uniform = resample_by_arclength(trajectory, 96 * letters);
  double xmin = trajectory.front().x, xmax = xmin;
  for (const Vec2& p : trajectory) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
  }
  const double span = std::max(xmax - xmin, 1e-9);
  std::vector<double> centers(letters);
  for (std::size_t k = 0; k < letters; ++k) {
    centers[k] = xmin + span * (static_cast<double>(k) + 0.5) /
                            static_cast<double>(letters);
  }
  std::vector<std::size_t> assign(uniform.size(), 0);
  for (int iter = 0; iter < 12; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < uniform.size(); ++i) {
      std::size_t best = 0;
      double best_d = 1e18;
      for (std::size_t k = 0; k < letters; ++k) {
        const double d = std::fabs(uniform[i].x - centers[k]);
        if (d < best_d) {
          best_d = d;
          best = k;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    for (std::size_t k = 0; k < letters; ++k) {
      double sum = 0.0;
      int n = 0;
      for (std::size_t i = 0; i < uniform.size(); ++i) {
        if (assign[i] == k) {
          sum += uniform[i].x;
          ++n;
        }
      }
      if (n > 0) centers[k] = sum / n;
    }
    if (!changed) break;
  }

  // Cut the original trajectory at the midpoints between sorted centers.
  std::sort(centers.begin(), centers.end());
  for (std::size_t k = 0; k < letters; ++k) {
    const double lo = k == 0 ? -1e18 : (centers[k - 1] + centers[k]) / 2.0;
    const double hi =
        k + 1 == letters ? 1e18 : (centers[k] + centers[k + 1]) / 2.0;
    std::vector<Vec2> segment;
    for (const Vec2& p : trajectory) {
      if (p.x >= lo && p.x < hi) segment.push_back(p);
    }
    out.push_back(classify(segment));
  }
  return out;
}

double LetterClassifier::word_score(const std::vector<Vec2>& trajectory,
                                    const std::string& text) const {
  if (trajectory.size() < 2) return 1e9;
  // Render the candidate word from the font, bridges included, exactly as
  // a recovered trajectory would trace it.
  std::vector<Vec2> tmpl;
  Vec2 cursor{0.0, 0.0};
  for (char c : text) {
    if (!handwriting::has_glyph(c)) continue;
    const auto& g = handwriting::glyph_for(c);
    for (const auto& stroke : handwriting::place_glyph(g, cursor, 1.0)) {
      tmpl.insert(tmpl.end(), stroke.begin(), stroke.end());
    }
    cursor.x += g.advance;
  }
  if (tmpl.size() < 2) return 1e9;

  const std::size_t n = points_ * std::max<std::size_t>(text.size(), 1);
  const auto a = normalize_shape(resample_by_arclength(tmpl, n));
  const auto b = normalize_shape(resample_by_arclength(trajectory, n));
  const ProcrustesResult r = procrustes(a, b, 0.7);
  const double cos_r = std::cos(r.rotation_rad);
  const double sin_r = std::sin(r.rotation_rad);
  std::vector<Vec2> aligned;
  aligned.reserve(b.size());
  for (const Vec2& p : b) {
    aligned.push_back(
        Vec2{cos_r * p.x - sin_r * p.y, sin_r * p.x + cos_r * p.y} * r.scale);
  }
  return 0.5 * r.normalized + 0.5 * dtw_distance(a, aligned) * 10.0;
}

std::string LetterClassifier::classify_word_lexicon(
    const std::vector<Vec2>& trajectory,
    const std::vector<std::string>& lexicon) const {
  std::string best;
  double best_score = 1e18;
  for (const std::string& w : lexicon) {
    const double s = word_score(trajectory, w);
    if (s < best_score) {
      best_score = s;
      best = w;
    }
  }
  return best;
}

std::size_t ConfusionMatrix::idx(char c) {
  return static_cast<std::size_t>(std::toupper(static_cast<unsigned char>(c)) - 'A');
}

void ConfusionMatrix::record(char truth, char predicted) {
  const std::size_t r = idx(truth);
  const std::size_t c = idx(predicted);
  if (r >= 26 || c >= 26) return;
  ++cells_[r][c];
  ++total_;
}

int ConfusionMatrix::count(char truth, char predicted) const {
  const std::size_t r = idx(truth), c = idx(predicted);
  if (r >= 26 || c >= 26) return 0;
  return cells_[r][c];
}

double ConfusionMatrix::rate(char truth, char predicted) const {
  const std::size_t r = idx(truth);
  if (r >= 26) return 0.0;
  int row_total = 0;
  for (int v : cells_[r]) row_total += v;
  if (row_total == 0) return 0.0;
  return static_cast<double>(count(truth, predicted)) / row_total;
}

double ConfusionMatrix::overall_accuracy() const {
  if (total_ == 0) return 0.0;
  int diag = 0;
  for (std::size_t i = 0; i < 26; ++i) diag += cells_[i][i];
  return static_cast<double>(diag) / total_;
}

std::optional<char> ConfusionMatrix::top_confusion(char truth) const {
  const std::size_t r = idx(truth);
  if (r >= 26) return std::nullopt;
  int best = 0;
  std::size_t best_c = 26;
  for (std::size_t c = 0; c < 26; ++c) {
    if (c == r) continue;
    if (cells_[r][c] > best) {
      best = cells_[r][c];
      best_c = c;
    }
  }
  if (best_c == 26) return std::nullopt;
  return static_cast<char>('A' + best_c);
}

}  // namespace polardraw::recognition
