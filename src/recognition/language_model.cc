#include "recognition/language_model.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

namespace polardraw::recognition {

namespace {
constexpr std::size_t kBoundary = 26;
constexpr double kBadWord = -1e6;
}  // namespace

const std::vector<std::string>& builtin_corpus() {
  // A compact list of very common English words; enough for sensible
  // bigram statistics and dictionary snapping in the experiments.
  static const std::vector<std::string> corpus{
      "THE", "AND", "FOR", "ARE", "BUT", "NOT", "YOU", "ALL", "CAN", "HER",
      "WAS", "ONE", "OUR", "OUT", "DAY", "GET", "HAS", "HIM", "HIS", "HOW",
      "MAN", "NEW", "NOW", "OLD", "SEE", "TWO", "WAY", "WHO", "BOY", "DID",
      "ITS", "LET", "PUT", "SAY", "SHE", "TOO", "USE", "THAT", "WITH",
      "HAVE", "THIS", "WILL", "YOUR", "FROM", "THEY", "KNOW", "WANT",
      "BEEN", "GOOD", "MUCH", "SOME", "TIME", "VERY", "WHEN", "COME",
      "HERE", "JUST", "LIKE", "LONG", "MAKE", "MANY", "MORE", "ONLY",
      "OVER", "SUCH", "TAKE", "THAN", "THEM", "WELL", "WERE", "WORD",
      "WORK", "YEAR", "BLUE", "CARD", "DESK", "FARM", "GOLD", "HAND",
      "LAMP", "MOON", "RAIN", "WIND", "APPLE", "BREAD", "CHAIR", "DREAM",
      "EARTH", "GREEN", "HOUSE", "LIGHT", "PLANT", "WATER", "ABOUT",
      "AFTER", "FIRST", "OTHER", "RIGHT", "SMALL", "SOUND", "STILL",
      "THEIR", "THERE", "THESE", "THING", "THINK", "WHERE", "WHICH",
      "WORLD", "WOULD", "WRITE", "SUN", "DOG", "CAR", "EAT", "FUN", "HAT",
      "JOB", "MAP", "ACT", "BIG", "AT", "BE", "DO", "GO", "IF", "IN", "IT",
      "ME", "ON", "UP", "WE", "HE", "SO", "NO", "OR", "AN", "AS", "BY"};
  return corpus;
}

std::size_t BigramModel::idx(char c) {
  if (c == '^' || c == '$') return kBoundary;
  const int v = std::toupper(static_cast<unsigned char>(c)) - 'A';
  return v >= 0 && v < 26 ? static_cast<std::size_t>(v) : kBoundary;
}

BigramModel::BigramModel() { train(builtin_corpus()); }

BigramModel::BigramModel(const std::vector<std::string>& corpus) {
  train(corpus);
}

void BigramModel::train(const std::vector<std::string>& corpus) {
  std::array<std::array<double, 27>, 27> counts{};
  for (auto& row : counts) row.fill(1.0);  // add-one smoothing
  for (const std::string& word : corpus) {
    std::size_t prev = kBoundary;
    for (char c : word) {
      const int v = std::toupper(static_cast<unsigned char>(c)) - 'A';
      if (v < 0 || v >= 26) continue;
      counts[prev][static_cast<std::size_t>(v)] += 1.0;
      prev = static_cast<std::size_t>(v);
    }
    counts[prev][kBoundary] += 1.0;
  }
  for (std::size_t a = 0; a < 27; ++a) {
    double row_sum = 0.0;
    for (double v : counts[a]) row_sum += v;
    for (std::size_t b = 0; b < 27; ++b) {
      log_p_[a][b] = std::log(counts[a][b] / row_sum);
    }
  }
}

double BigramModel::transition_log_prob(char a, char b) const {
  return log_p_[idx(a)][idx(b)];
}

double BigramModel::log_prob(const std::string& word) const {
  if (word.empty()) return kBadWord;
  double lp = 0.0;
  std::size_t prev = kBoundary;
  for (char c : word) {
    const std::size_t cur = idx(c);
    if (cur == kBoundary) return kBadWord;  // non-letter inside a word
    lp += log_p_[prev][cur];
    prev = cur;
  }
  lp += log_p_[prev][kBoundary];
  return lp;
}

std::string WordCorrector::decode(
    const std::vector<std::vector<LetterHypothesis>>& positions) const {
  if (positions.empty()) return {};
  // Beam over (last letter, partial score, partial string).
  struct Beam {
    std::string word;
    double score;
  };
  std::vector<Beam> beams{{std::string{}, 0.0}};
  constexpr std::size_t kBeamWidth = 24;

  for (const auto& hyps : positions) {
    std::vector<Beam> next;
    for (const Beam& b : beams) {
      const char prev = b.word.empty() ? '^' : b.word.back();
      for (const LetterHypothesis& h : hyps) {
        const double s = b.score - h.score +
                         lm_weight_ * model_.transition_log_prob(prev, h.letter);
        next.push_back({b.word + h.letter, s});
      }
    }
    if (next.empty()) return {};
    std::sort(next.begin(), next.end(),
              [](const Beam& x, const Beam& y) { return x.score > y.score; });
    if (next.size() > kBeamWidth) next.resize(kBeamWidth);
    beams = std::move(next);
  }
  // Close the word with the boundary transition.
  double best = -std::numeric_limits<double>::infinity();
  std::string best_word;
  for (const Beam& b : beams) {
    const double s =
        b.score + lm_weight_ * model_.transition_log_prob(b.word.back(), '$');
    if (s > best) {
      best = s;
      best_word = b.word;
    }
  }
  return best_word;
}

std::string WordCorrector::snap_to_dictionary(
    const std::string& word, const std::vector<std::string>& dictionary,
    int max_edits) const {
  int best_edits = max_edits + 1;
  double best_lp = -std::numeric_limits<double>::infinity();
  std::string best = word;
  for (const std::string& candidate : dictionary) {
    const int d = edit_distance(word, candidate);
    if (d > max_edits) continue;
    const double lp = model_.log_prob(candidate);
    if (d < best_edits || (d == best_edits && lp > best_lp)) {
      best_edits = d;
      best_lp = lp;
      best = candidate;
    }
  }
  return best;
}

int edit_distance(const std::string& a, const std::string& b) {
  const std::size_t n = a.size(), m = b.size();
  std::vector<int> prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const int sub = prev[j - 1] + (std::toupper(a[i - 1]) == std::toupper(b[j - 1]) ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace polardraw::recognition
