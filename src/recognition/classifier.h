// Template-based handwriting recognizer (stands in for the paper's LipiTk).
//
// Classifies a recovered pen trajectory as one of the 26 letters by nearest
// Procrustes distance against the stroke-font templates, with a shape-
// normalized score so letter size and board position do not matter. Word
// recognition segments a multi-letter trajectory by x-extent and classifies
// each segment.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/vec.h"
#include "handwriting/stroke_font.h"

namespace polardraw::recognition {

struct Classification {
  char letter = '?';
  double score = 1.0;  // normalized Procrustes dissimilarity (lower = better)
  /// Runner-up for diagnostics.
  char second = '?';
  double second_score = 1.0;
};

class LetterClassifier {
 public:
  /// Builds templates from the stroke font, resampled to `points` samples.
  explicit LetterClassifier(std::size_t points = 64);

  /// Classifies a single-letter trajectory (pen positions in any scale).
  Classification classify(const std::vector<Vec2>& trajectory) const;

  /// Classifies each letter of a word given the recovered trajectory and
  /// the number of letters; the trajectory is segmented into per-letter
  /// x bands via 1-D k-means (letters are written left to right).
  std::string classify_word(const std::vector<Vec2>& trajectory,
                            std::size_t letters) const;

  /// Per-segment classifications for a word trajectory: the same
  /// segmentation as classify_word, returning each segment's full
  /// Classification (best + runner-up letters and scores).
  std::vector<Classification> classify_word_detailed(
      const std::vector<Vec2>& trajectory, std::size_t letters) const;

  /// Lexicon-based word recognition, mirroring the paper's use of a
  /// dictionary-backed recognizer (LipiTk over O.E.D. words): scores the
  /// whole trajectory against whole-word templates built from the stroke
  /// font (including inter-letter transitions) and returns the best
  /// candidate. Returns an empty string for an empty lexicon.
  std::string classify_word_lexicon(
      const std::vector<Vec2>& trajectory,
      const std::vector<std::string>& lexicon) const;

  /// Whole-shape dissimilarity between a trajectory and the clean
  /// rendering of `text` (letters laid out left to right). Exposed for
  /// tests and for the word benches.
  double word_score(const std::vector<Vec2>& trajectory,
                    const std::string& text) const;

  std::size_t template_points() const { return points_; }

 private:
  std::size_t points_;
  struct Template {
    char letter;
    std::vector<Vec2> shape;  // resampled, centered, unit-size
  };
  std::vector<Template> templates_;
};

/// Tracks classification outcomes into a confusion matrix over A-Z.
class ConfusionMatrix {
 public:
  void record(char truth, char predicted);

  /// Count of (truth, predicted) cell.
  int count(char truth, char predicted) const;
  /// Row-normalized rate, 0 when the row is empty.
  double rate(char truth, char predicted) const;
  /// Per-letter recognition accuracy (diagonal rate).
  double accuracy(char truth) const { return rate(truth, truth); }
  /// Overall accuracy across all recorded samples.
  double overall_accuracy() const;
  int total() const { return total_; }

  /// Most confused off-diagonal pair for a given truth letter.
  std::optional<char> top_confusion(char truth) const;

 private:
  static std::size_t idx(char c);
  std::array<std::array<int, 26>, 26> cells_{};
  int total_ = 0;
};

}  // namespace polardraw::recognition
