// Minimal streaming JSON writer (no third-party dependencies).
//
// Emits pretty-printed, deterministic JSON for the BENCH_*.json perf
// trajectory: keys are written in caller order, doubles use shortest
// round-trip formatting via %.17g with a trailing-zero trim, and strings
// are escaped per RFC 8259. The writer tracks nesting and inserts commas,
// so callers only sequence begin/end/key/value calls.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace polardraw::obs {

class JsonWriter {
 public:
  /// Layout of the emitted document. kPretty is the BENCH_*.json default;
  /// kCompact packs everything onto one line (no newlines, no indent) for
  /// JSON-lines sinks like obs/log.
  enum class Style { kPretty, kCompact };

  explicit JsonWriter(std::ostream& os, Style style = Style::kPretty)
      : os_(os), compact_(style == Style::kCompact) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits a key inside an object; must be followed by a value or a
  /// begin_object/begin_array.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool b);
  void null();

  /// Convenience: key + value in one call.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// Serializes a double the way value(double) does; exposed so tests can
  /// pin the deterministic number formatting.
  static std::string format_double(double d);

 private:
  struct Level {
    bool is_object = false;
    bool has_items = false;
    bool expecting_value = false;  // a key was just written
  };

  void pre_value();
  void newline_indent();
  void write_escaped(std::string_view s);

  std::ostream& os_;
  bool compact_ = false;
  std::vector<Level> stack_;
};

}  // namespace polardraw::obs
