#include "obs/rolling.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace polardraw::obs {

RollingWindow::RollingWindow(double window_s, double step_s,
                             std::vector<double> bounds)
    : step_s_(step_s > 0.0 ? step_s : 1.0), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  const auto n_steps = static_cast<std::size_t>(
      std::max(1.0, std::ceil(window_s / step_s_ - 1e-9)));
  steps_.resize(n_steps);
}

std::int64_t RollingWindow::step_index(double t_s) const {
  return static_cast<std::int64_t>(std::floor(t_s / step_s_));
}

RollingWindow::Step& RollingWindow::step_for(std::int64_t index) {
  Step& s = steps_[static_cast<std::size_t>(index) % steps_.size()];
  if (s.index != index) {
    s.index = index;
    s.counts.assign(bounds_.size() + 1, 0);
    s.count = 0;
    s.sum = 0.0;
    s.min = std::numeric_limits<double>::infinity();
    s.max = -std::numeric_limits<double>::infinity();
  }
  return s;
}

void RollingWindow::advance_to(double t_s) {
  if (started_ && t_s <= now_s_) return;
  now_s_ = t_s;
  now_index_ = step_index(t_s);
  started_ = true;
  // Steps whose global index fell out of the window stay in the ring with
  // a stale index; step_for() reinitializes them on reuse and stats()
  // skips them, so no eager expiry pass is needed.
}

void RollingWindow::observe(double t_s, double v) {
  advance_to(t_s);
  // Late observations (t_s <= now from an interleaved session) land in
  // their own step when it is still live, else in the current one.
  std::int64_t idx = step_index(t_s);
  if (idx <= now_index_ - static_cast<std::int64_t>(steps_.size())) {
    idx = now_index_;
  }
  Step& s = step_for(idx);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++s.counts[static_cast<std::size_t>(it - bounds_.begin())];
  ++s.count;
  s.sum += v;
  s.min = std::min(s.min, v);
  s.max = std::max(s.max, v);
}

RollingStats RollingWindow::stats() const {
  HistogramSnapshot merged;
  merged.bounds = bounds_;
  merged.counts.assign(bounds_.size() + 1, 0);
  merged.min = std::numeric_limits<double>::infinity();
  merged.max = -std::numeric_limits<double>::infinity();
  const std::int64_t oldest =
      now_index_ - static_cast<std::int64_t>(steps_.size()) + 1;
  for (const Step& s : steps_) {
    if (s.index < oldest || s.index > now_index_ || s.count == 0) continue;
    for (std::size_t b = 0; b < s.counts.size(); ++b) {
      merged.counts[b] += s.counts[b];
    }
    merged.count += s.count;
    merged.sum += s.sum;
    merged.min = std::min(merged.min, s.min);
    merged.max = std::max(merged.max, s.max);
  }
  RollingStats out;
  out.count = merged.count;
  if (merged.count == 0) return out;
  out.sum = merged.sum;
  out.min = merged.min;
  out.max = merged.max;
  out.p50 = merged.percentile(50.0);
  out.p99 = merged.percentile(99.0);
  return out;
}

}  // namespace polardraw::obs
