// Scoped-span timers over the metrics registry and the event tracer.
//
// A span is a named duration: construct a ScopedSpan over a
// function-local static site and the block's wall time lands in that
// site's histogram on scope exit -- and, when the tracer is enabled, as a
// Chrome 'X' complete event on the calling thread's track. Both sinks
// share a single steady_clock read per endpoint. When both subsystems are
// disabled the constructor takes two relaxed loads and no clock is read,
// so instrumentation can stay compiled into hot paths (bench_hmm_decode
// guards the overhead budget).
//
//   void preprocess(...) {
//     static const obs::SpanSite site("core.preprocess");
//     const obs::ScopedSpan span(site);
//     ...
//   }
//
// Trace-only args (recorded iff tracing is active; never read back):
//
//   static const obs::TraceName arg_window("window");
//   span.arg(arg_window, static_cast<double>(i));
#pragma once

#include <chrono>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace polardraw::obs {

/// One instrumentation site: a duration histogram in the metrics registry
/// plus an interned tracer event name, so a single ScopedSpan feeds both.
class SpanSite {
 public:
  explicit SpanSite(const std::string& name) : hist_(name), trace_(name) {}
  [[nodiscard]] const Histogram& histogram() const { return hist_; }
  [[nodiscard]] const TraceName& trace_name() const { return trace_; }

 private:
  Histogram hist_;
  TraceName trace_;
};

class ScopedSpan {
 public:
  /// Metrics-only span (no trace event).
  explicit ScopedSpan(const Histogram& hist)
      : hist_(&hist), metrics_on_(Registry::global().enabled()) {
    if (metrics_on_) start_ = Tracer::Clock::now();
  }

  /// Histogram + paired trace event when the respective sink is enabled.
  explicit ScopedSpan(const SpanSite& site)
      : hist_(&site.histogram()),
        trace_id_(Tracer::global().enabled() ? site.trace_name().id() : -1),
        metrics_on_(Registry::global().enabled()) {
    if (metrics_on_ || trace_id_ >= 0) start_ = Tracer::Clock::now();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric arg to the trace event (two slots; extra calls
  /// are dropped). No-op unless tracing was active at construction.
  void arg(const TraceName& name, double value) {
    if (trace_id_ < 0) return;
    if (a0_name_ < 0) {
      a0_name_ = name.id();
      a0_ = value;
    } else if (a1_name_ < 0) {
      a1_name_ = name.id();
      a1_ = value;
    }
  }

  ~ScopedSpan() {
    if (!metrics_on_ && trace_id_ < 0) return;
    // One clock read shared by the histogram and the trace event.
    const auto end = Tracer::Clock::now();
    if (metrics_on_) {
      hist_->observe(std::chrono::duration<double>(end - start_).count());
    }
    if (trace_id_ >= 0) {
      Tracer::global().complete(trace_id_, start_, end, a0_name_, a0_,
                                a1_name_, a1_);
    }
  }

 private:
  const Histogram* hist_;
  int trace_id_ = -1;
  bool metrics_on_;
  int a0_name_ = -1;
  int a1_name_ = -1;
  double a0_ = 0.0;
  double a1_ = 0.0;
  Tracer::Clock::time_point start_;
};

}  // namespace polardraw::obs
