// Scoped-span timers over the metrics registry.
//
// A span is a named duration histogram: construct a ScopedSpan over a
// function-local static Histogram and the block's wall time lands in that
// histogram on scope exit. When the registry is disabled the constructor
// takes one relaxed load and no clock is read, so instrumentation can stay
// compiled into hot paths (bench_hmm_decode guards the overhead budget).
//
//   void preprocess(...) {
//     static const obs::Histogram span_h("core.preprocess");
//     const obs::ScopedSpan span(span_h);
//     ...
//   }
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace polardraw::obs {

class ScopedSpan {
 public:
  explicit ScopedSpan(const Histogram& hist)
      : hist_(&hist), active_(Registry::global().enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (active_) {
      hist_->observe(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count());
    }
  }

 private:
  const Histogram* hist_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace polardraw::obs
