#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>

#include "common/annotations.h"

namespace polardraw::obs {

namespace {

// ---------------------------------------------------------------------------
// Live shard storage (DESIGN.md section 17).
//
// Each thread accumulates into its own shard, exactly as before -- but the
// slots are relaxed std::atomics in chunked, pointer-stable arrays, and
// each shard carries a seqlock sequence counter. That combination is what
// makes snapshot() legal mid-flight:
//
//   * atomic slots: a reader never races a writer at the byte level
//     (TSan-clean), and every individual field it reads is a real value
//     some write produced;
//   * pointer-stable chunks: the owner grows its shard by *publishing* new
//     fixed-size chunks (release store of the chunk pointer), never by
//     reallocating, so a concurrent reader cannot walk freed memory;
//   * the seqlock: multi-field updates (a histogram's bucket + count + sum
//     + min/max, a gauge's value + set flag) are bracketed by two plain
//     sequence stores with release fences. A reader that observes a stable
//     even sequence across its pass got a torn-free, point-in-time view.
//     Under sustained writes it retries a bounded number of times and then
//     accepts the last pass -- still per-field valid, merely not a single
//     instant. Counter increments are single-slot and need no bracket.
//
// Writer cost per multi-field update: two plain stores and two release
// fences (compiler barriers on x86) -- no locks, no atomic RMWs.
// ---------------------------------------------------------------------------

constexpr std::size_t kChunkSlots = 64;
constexpr std::size_t kMaxChunks = 64;
/// Hard per-kind id capacity (4096). Ids beyond it are silently dropped
/// from shards -- far above any realistic registry, and the alternative
/// (growable flat arrays) would let a concurrent reader walk freed memory.
constexpr std::size_t kMaxSlots = kChunkSlots * kMaxChunks;

struct CounterChunk {
  std::atomic<std::uint64_t> v[kChunkSlots];  // zero via value-init
};

struct GaugeSlot {
  std::atomic<double> v{0.0};
  std::atomic<std::uint32_t> set{0};
};

struct GaugeChunk {
  GaugeSlot s[kChunkSlots];
};

/// Per-histogram live state; allocated and initialized by the owning
/// thread on first observe, then published with a release store. `bounds`
/// is immutable after publication, so the reader's plain reads of it are
/// ordered by the pointer acquire.
struct HistAtomic {
  std::vector<double> bounds;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts;  // bounds.size() + 1
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

struct HistChunk {
  std::atomic<HistAtomic*> h[kChunkSlots];  // null via value-init
  ~HistChunk() {
    for (auto& p : h) delete p.load(std::memory_order_relaxed);
  }
};

/// Fixed directory of lazily published chunks. The owner thread allocates
/// a chunk on first touch and publishes it with a release store; readers
/// load with acquire and treat a missing chunk as all-zero.
template <typename Chunk>
struct ChunkedArray {
  std::atomic<Chunk*> chunks[kMaxChunks] = {};

  ~ChunkedArray() {
    for (auto& c : chunks) delete c.load(std::memory_order_relaxed);
  }

  /// Owner-side: chunk holding `idx`, allocated if needed; nullptr when
  /// idx exceeds the fixed capacity.
  Chunk* ensure(std::size_t idx) {
    if (idx >= kMaxSlots) return nullptr;
    auto& slot = chunks[idx / kChunkSlots];
    Chunk* c = slot.load(std::memory_order_relaxed);
    if (c == nullptr) {
      c = new Chunk();
      slot.store(c, std::memory_order_release);
    }
    return c;
  }

  /// Reader-side: chunk holding `idx`, or nullptr when never touched.
  const Chunk* get(std::size_t idx) const {
    if (idx >= kMaxSlots) return nullptr;
    return chunks[idx / kChunkSlots].load(std::memory_order_acquire);
  }
};

/// One thread's live accumulators (see the block comment above).
struct Shard {
  std::atomic<std::uint64_t> seq{0};
  ChunkedArray<CounterChunk> counters;
  ChunkedArray<GaugeChunk> gauges;
  ChunkedArray<HistChunk> hists;

  // Seqlock writer bracket (single writer: the owning thread). The odd
  // store is published before the data writes and the even store after
  // them, so a reader with a stable even sequence saw no mid-update data.
  void write_begin() {
    seq.store(seq.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }
  void write_end() {
    std::atomic_thread_fence(std::memory_order_release);
    seq.store(seq.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
  }
};

/// Merged (plain, single-threaded) view of a shard: the retired
/// accumulator and every snapshot/merge scratch use this layout, which is
/// exactly the pre-seqlock shard -- keeping the merge arithmetic and
/// order, and with them the quiescent snapshot bits, unchanged.
struct LocalHist {
  std::vector<std::uint64_t> counts;  // bounds.size() + 1; empty = untouched
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

struct LocalShard {
  std::vector<std::uint64_t> counters;
  std::vector<double> gauges;  // NaN-free: valid iff gauge_set
  std::vector<char> gauge_set;
  std::vector<LocalHist> hists;
};

void merge_into(LocalShard& into, const LocalShard& from,
                const std::vector<std::vector<double>>& hist_bounds) {
  if (into.counters.size() < from.counters.size()) {
    into.counters.resize(from.counters.size(), 0);
  }
  for (std::size_t i = 0; i < from.counters.size(); ++i) {
    into.counters[i] += from.counters[i];
  }
  if (into.gauges.size() < from.gauges.size()) {
    into.gauges.resize(from.gauges.size(), 0.0);
    into.gauge_set.resize(from.gauge_set.size(), 0);
  }
  for (std::size_t i = 0; i < from.gauges.size(); ++i) {
    if (!from.gauge_set[i]) continue;
    into.gauges[i] = into.gauge_set[i] ? std::max(into.gauges[i], from.gauges[i])
                                       : from.gauges[i];
    into.gauge_set[i] = 1;
  }
  if (into.hists.size() < from.hists.size()) into.hists.resize(from.hists.size());
  for (std::size_t i = 0; i < from.hists.size(); ++i) {
    const LocalHist& src = from.hists[i];
    if (src.count == 0) continue;
    LocalHist& dst = into.hists[i];
    if (dst.counts.empty()) dst.counts.assign(hist_bounds[i].size() + 1, 0);
    for (std::size_t b = 0; b < src.counts.size(); ++b) {
      dst.counts[b] += src.counts[b];
    }
    dst.count += src.count;
    dst.sum += src.sum;
    dst.min = std::min(dst.min, src.min);
    dst.max = std::max(dst.max, src.max);
  }
}

/// One seqlock-free pass over a live shard's atomics into `out`.
void read_shard_once(const Shard& s, std::size_t n_counters,
                     std::size_t n_gauges, std::size_t n_hists,
                     LocalShard& out) {
  out.counters.assign(std::min(n_counters, kMaxSlots), 0);
  for (std::size_t i = 0; i < out.counters.size(); ++i) {
    const CounterChunk* c = s.counters.get(i);
    if (c != nullptr) {
      out.counters[i] = c->v[i % kChunkSlots].load(std::memory_order_relaxed);
    }
  }
  out.gauges.assign(std::min(n_gauges, kMaxSlots), 0.0);
  out.gauge_set.assign(out.gauges.size(), 0);
  for (std::size_t i = 0; i < out.gauges.size(); ++i) {
    const GaugeChunk* c = s.gauges.get(i);
    if (c == nullptr) continue;
    const GaugeSlot& slot = c->s[i % kChunkSlots];
    if (slot.set.load(std::memory_order_relaxed) != 0) {
      out.gauges[i] = slot.v.load(std::memory_order_relaxed);
      out.gauge_set[i] = 1;
    }
  }
  out.hists.clear();
  out.hists.resize(std::min(n_hists, kMaxSlots));
  for (std::size_t i = 0; i < out.hists.size(); ++i) {
    const HistChunk* c = s.hists.get(i);
    if (c == nullptr) continue;
    const HistAtomic* h =
        c->h[i % kChunkSlots].load(std::memory_order_acquire);
    if (h == nullptr) continue;
    LocalHist& dst = out.hists[i];
    const std::size_t n_buckets = h->bounds.size() + 1;
    dst.counts.resize(n_buckets);
    for (std::size_t b = 0; b < n_buckets; ++b) {
      dst.counts[b] = h->counts[b].load(std::memory_order_relaxed);
    }
    dst.count = h->count.load(std::memory_order_relaxed);
    dst.sum = h->sum.load(std::memory_order_relaxed);
    dst.min = h->min.load(std::memory_order_relaxed);
    dst.max = h->max.load(std::memory_order_relaxed);
  }
}

/// Seqlock reader: retries until a pass saw a stable even sequence, then
/// gives up after `kReadRetries` and accepts the (per-field valid, maybe
/// not instantaneous) last pass. Quiescent shards succeed on the first
/// pass with bits identical to an in-place read.
constexpr int kReadRetries = 64;

void read_shard(const Shard& s, std::size_t n_counters, std::size_t n_gauges,
                std::size_t n_hists, LocalShard& out) {
  for (int attempt = 0; attempt < kReadRetries; ++attempt) {
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if ((s1 & 1) != 0 && attempt + 1 < kReadRetries) continue;
    read_shard_once(s, n_counters, n_gauges, n_hists, out);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) == s1) return;
  }
}

}  // namespace

struct Registry::Impl {
  mutable pd::Mutex mu;
  std::atomic<bool> enabled{false};

  // Name -> id maps and per-id metadata.
  std::map<std::string, int> counter_ids PD_GUARDED_BY(mu);
  std::map<std::string, int> gauge_ids PD_GUARDED_BY(mu);
  std::map<std::string, int> hist_ids PD_GUARDED_BY(mu);
  std::vector<std::string> counter_names PD_GUARDED_BY(mu);
  std::vector<std::string> gauge_names PD_GUARDED_BY(mu);
  std::vector<std::string> hist_names PD_GUARDED_BY(mu);
  std::vector<std::vector<double>> hist_bounds PD_GUARDED_BY(mu);

  // Live per-thread shards plus the merged data of exited threads. The
  // vector and the retired accumulator are guarded; the pointed-to shards
  // are atomic storage read through the seqlock (see the top of this
  // file), so holding mu alone is enough to snapshot them mid-flight.
  std::vector<Shard*> live PD_GUARDED_BY(mu);
  LocalShard retired PD_GUARDED_BY(mu);

  Shard& local_shard();
  void retire(Shard* s) {
    pd::MutexLock lock(mu);
    LocalShard scratch;
    read_shard(*s, counter_names.size(), gauge_names.size(),
               hist_names.size(), scratch);
    merge_into(retired, scratch, hist_bounds);
    live.erase(std::remove(live.begin(), live.end(), s), live.end());
  }
};

namespace {

/// TLS holder: owns this thread's shard for the global registry and
/// flushes it into the retired accumulator at thread exit.
struct TlsShard {
  Registry::Impl* owner = nullptr;
  std::unique_ptr<Shard> shard;
  ~TlsShard() {
    if (owner != nullptr && shard != nullptr) owner->retire(shard.get());
  }
};

thread_local TlsShard tls_shard;

}  // namespace

Shard& Registry::Impl::local_shard() {
  if (tls_shard.shard == nullptr || tls_shard.owner != this) {
    // A thread holds one shard at a time; if a different registry owned the
    // slot (only possible with a non-global instance), flush there first so
    // its live list never dangles.
    if (tls_shard.owner != nullptr && tls_shard.shard != nullptr) {
      tls_shard.owner->retire(tls_shard.shard.get());
      tls_shard.shard.reset();
    }
    auto fresh = std::make_unique<Shard>();
    {
      pd::MutexLock lock(mu);
      live.push_back(fresh.get());
    }
    tls_shard.owner = this;
    tls_shard.shard = std::move(fresh);
  }
  return *tls_shard.shard;
}

Registry::Registry() : impl_(new Impl) {}

// The global registry is intentionally immortal (never destroyed), so
// worker threads exiting at process teardown can always flush their
// shards. The destructor exists only for completeness.
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  static Registry* g = [] {
    auto* r = new Registry();
    if (const char* env = std::getenv("POLARDRAW_METRICS")) {
      r->set_enabled(std::string_view(env) != "0");
    }
    return r;
  }();
  return *g;
}

int Registry::counter_id(const std::string& name) {
  pd::MutexLock lock(impl_->mu);
  const auto it = impl_->counter_ids.find(name);
  if (it != impl_->counter_ids.end()) return it->second;
  const int id = static_cast<int>(impl_->counter_names.size());
  impl_->counter_ids.emplace(name, id);
  impl_->counter_names.push_back(name);
  return id;
}

int Registry::gauge_id(const std::string& name) {
  pd::MutexLock lock(impl_->mu);
  const auto it = impl_->gauge_ids.find(name);
  if (it != impl_->gauge_ids.end()) return it->second;
  const int id = static_cast<int>(impl_->gauge_names.size());
  impl_->gauge_ids.emplace(name, id);
  impl_->gauge_names.push_back(name);
  return id;
}

int Registry::histogram_id(const std::string& name,
                           const std::vector<double>& bounds) {
  pd::MutexLock lock(impl_->mu);
  const auto it = impl_->hist_ids.find(name);
  if (it != impl_->hist_ids.end()) return it->second;
  const int id = static_cast<int>(impl_->hist_names.size());
  impl_->hist_ids.emplace(name, id);
  impl_->hist_names.push_back(name);
  std::vector<double> sorted = bounds;
  std::sort(sorted.begin(), sorted.end());
  impl_->hist_bounds.push_back(std::move(sorted));
  return id;
}

void Registry::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool Registry::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void Registry::counter_add(int id, std::uint64_t n) {
  Shard& s = impl_->local_shard();
  CounterChunk* c = s.counters.ensure(static_cast<std::size_t>(id));
  if (c == nullptr) return;  // beyond the fixed id capacity
  auto& slot = c->v[static_cast<std::size_t>(id) % kChunkSlots];
  // Single-slot update: atomic by itself, no seqlock bracket needed.
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

void Registry::gauge_max(int id, double v) {
  Shard& s = impl_->local_shard();
  GaugeChunk* c = s.gauges.ensure(static_cast<std::size_t>(id));
  if (c == nullptr) return;
  GaugeSlot& slot = c->s[static_cast<std::size_t>(id) % kChunkSlots];
  s.write_begin();
  const bool was_set = slot.set.load(std::memory_order_relaxed) != 0;
  const double old = slot.v.load(std::memory_order_relaxed);
  slot.v.store(was_set ? std::max(old, v) : v, std::memory_order_relaxed);
  slot.set.store(1, std::memory_order_relaxed);
  s.write_end();
}

void Registry::histogram_observe(int id, double v) {
  Shard& s = impl_->local_shard();
  const auto idx = static_cast<std::size_t>(id);
  HistChunk* c = s.hists.ensure(idx);
  if (c == nullptr) return;
  auto& slot = c->h[idx % kChunkSlots];
  HistAtomic* h = slot.load(std::memory_order_relaxed);
  if (h == nullptr) {
    // First observe of this histogram on this thread: copy the registered
    // bounds under the lock, then publish the initialized record so a
    // concurrent reader sees it fully formed or not at all.
    auto fresh = std::make_unique<HistAtomic>();
    {
      pd::MutexLock lock(impl_->mu);
      fresh->bounds = impl_->hist_bounds[idx];
    }
    fresh->counts = std::make_unique<std::atomic<std::uint64_t>[]>(
        fresh->bounds.size() + 1);
    h = fresh.release();
    slot.store(h, std::memory_order_release);
  }
  const auto it = std::lower_bound(h->bounds.begin(), h->bounds.end(), v);
  auto& bucket = h->counts[static_cast<std::size_t>(it - h->bounds.begin())];
  s.write_begin();
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  h->count.store(h->count.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  h->sum.store(h->sum.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
  h->min.store(std::min(h->min.load(std::memory_order_relaxed), v),
               std::memory_order_relaxed);
  h->max.store(std::max(h->max.load(std::memory_order_relaxed), v),
               std::memory_order_relaxed);
  s.write_end();
}

Snapshot Registry::snapshot() const {
  pd::MutexLock lock(impl_->mu);
  const std::size_t n_counters = impl_->counter_names.size();
  const std::size_t n_gauges = impl_->gauge_names.size();
  const std::size_t n_hists = impl_->hist_names.size();

  LocalShard merged;
  merge_into(merged, impl_->retired, impl_->hist_bounds);
  LocalShard scratch;
  for (const Shard* s : impl_->live) {
    read_shard(*s, n_counters, n_gauges, n_hists, scratch);
    merge_into(merged, scratch, impl_->hist_bounds);
  }

  Snapshot out;
  // The name tables are sorted maps, so iteration emits names in order.
  for (const auto& [name, id] : impl_->counter_ids) {
    const auto idx = static_cast<std::size_t>(id);
    const std::uint64_t v = idx < merged.counters.size() ? merged.counters[idx] : 0;
    out.counters.emplace_back(name, v);
  }
  for (const auto& [name, id] : impl_->gauge_ids) {
    const auto idx = static_cast<std::size_t>(id);
    const bool set = idx < merged.gauge_set.size() && merged.gauge_set[idx];
    out.gauges.emplace_back(name, set ? merged.gauges[idx] : 0.0);
  }
  for (const auto& [name, id] : impl_->hist_ids) {
    const auto idx = static_cast<std::size_t>(id);
    HistogramSnapshot h;
    h.bounds = impl_->hist_bounds[idx];
    if (idx < merged.hists.size() && merged.hists[idx].count > 0) {
      const LocalHist& src = merged.hists[idx];
      h.counts = src.counts;
      h.count = src.count;
      h.sum = src.sum;
      h.min = src.min;
      h.max = src.max;
    } else {
      h.counts.assign(h.bounds.size() + 1, 0);
    }
    out.histograms.emplace_back(name, std::move(h));
  }
  return out;
}

void Registry::reset() {
  pd::MutexLock lock(impl_->mu);
  impl_->retired = LocalShard{};
  // Rewrite every live shard's slots in place. This is the one operation
  // that still demands quiescence: it stores to slots owned by other
  // threads (atomics, so well-defined -- but a concurrent writer would
  // interleave with the zeroing and the result would be meaningless).
  for (Shard* s : impl_->live) {
    for (auto& cp : s->counters.chunks) {
      CounterChunk* c = cp.load(std::memory_order_relaxed);
      if (c == nullptr) continue;
      for (auto& v : c->v) v.store(0, std::memory_order_relaxed);
    }
    for (auto& cp : s->gauges.chunks) {
      GaugeChunk* c = cp.load(std::memory_order_relaxed);
      if (c == nullptr) continue;
      for (auto& g : c->s) {
        g.v.store(0.0, std::memory_order_relaxed);
        g.set.store(0, std::memory_order_relaxed);
      }
    }
    for (auto& cp : s->hists.chunks) {
      HistChunk* c = cp.load(std::memory_order_relaxed);
      if (c == nullptr) continue;
      for (auto& hp : c->h) {
        HistAtomic* h = hp.load(std::memory_order_relaxed);
        if (h == nullptr) continue;
        for (std::size_t b = 0; b < h->bounds.size() + 1; ++b) {
          h->counts[b].store(0, std::memory_order_relaxed);
        }
        h->count.store(0, std::memory_order_relaxed);
        h->sum.store(0.0, std::memory_order_relaxed);
        h->min.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
        h->max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
      }
    }
  }
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t next = cum + counts[b];
    if (static_cast<double>(next) >= target && counts[b] > 0) {
      if (b == counts.size() - 1) return max;  // overflow bucket
      const double hi = bounds[b];
      // Lower edge: previous bound, or the observed min for the first
      // populated bucket (keeps tiny samples from reporting bucket edges
      // far below any observation).
      double lo = b > 0 ? bounds[b - 1] : std::min(min, hi);
      lo = std::max(lo, min);
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts[b]);
      return lo + (std::min(hi, max) - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum = next;
  }
  return max;
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* Snapshot::histogram(std::string_view name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

const std::vector<double>& default_time_bounds_s() {
  static const std::vector<double> bounds = [] {
    // 1-2-5 ladder, 1 us .. 50 s.
    std::vector<double> b;
    for (double decade = 1e-6; decade < 1e2; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(2.0 * decade);
      b.push_back(5.0 * decade);
    }
    while (b.back() > 50.0) b.pop_back();
    return b;
  }();
  return bounds;
}

std::vector<double> log_spaced_bounds(double lo, double hi, int per_decade) {
  std::vector<double> b;
  if (!(lo > 0.0) || !(hi > lo) || per_decade < 1) return b;
  // polarlint-allow(R2): geometric bucket-edge spacing, not dB math --
  // these decades are histogram bounds in arbitrary units.
  const double decades = std::log10(hi / lo);
  const auto n = static_cast<int>(
      std::ceil(decades * static_cast<double>(per_decade) - 1e-9));
  b.reserve(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k <= n; ++k) {
    // polarlint-allow(R2): geometric spacing, not a dB conversion.
    b.push_back(lo * std::pow(10.0, static_cast<double>(k) /
                                        static_cast<double>(per_decade)));
  }
  b.back() = hi;  // land exactly on the requested top bound
  return b;
}

}  // namespace polardraw::obs
