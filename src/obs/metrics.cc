#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>

#include "common/annotations.h"

namespace polardraw::obs {

namespace {

/// Per-histogram shard data; bucket layout mirrors the registered bounds.
/// `bounds` is a per-shard copy taken on first observe so the hot path
/// never touches the registry mutex.
struct HistShard {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

/// One thread's private accumulators. Only the owning thread writes; other
/// threads read under the registry mutex after a completion handshake
/// (see metrics.h).
struct Shard {
  std::vector<std::uint64_t> counters;
  std::vector<double> gauges;  // NaN-free: valid iff gauge_set
  std::vector<char> gauge_set;
  std::vector<HistShard> hists;
};

void merge_into(Shard& into, const Shard& from,
                const std::vector<std::vector<double>>& hist_bounds) {
  if (into.counters.size() < from.counters.size()) {
    into.counters.resize(from.counters.size(), 0);
  }
  for (std::size_t i = 0; i < from.counters.size(); ++i) {
    into.counters[i] += from.counters[i];
  }
  if (into.gauges.size() < from.gauges.size()) {
    into.gauges.resize(from.gauges.size(), 0.0);
    into.gauge_set.resize(from.gauge_set.size(), 0);
  }
  for (std::size_t i = 0; i < from.gauges.size(); ++i) {
    if (!from.gauge_set[i]) continue;
    into.gauges[i] = into.gauge_set[i] ? std::max(into.gauges[i], from.gauges[i])
                                       : from.gauges[i];
    into.gauge_set[i] = 1;
  }
  if (into.hists.size() < from.hists.size()) into.hists.resize(from.hists.size());
  for (std::size_t i = 0; i < from.hists.size(); ++i) {
    const HistShard& src = from.hists[i];
    if (src.count == 0) continue;
    HistShard& dst = into.hists[i];
    if (dst.counts.empty()) dst.counts.assign(hist_bounds[i].size() + 1, 0);
    for (std::size_t b = 0; b < src.counts.size(); ++b) {
      dst.counts[b] += src.counts[b];
    }
    dst.count += src.count;
    dst.sum += src.sum;
    dst.min = std::min(dst.min, src.min);
    dst.max = std::max(dst.max, src.max);
  }
}

}  // namespace

struct Registry::Impl {
  mutable pd::Mutex mu;
  std::atomic<bool> enabled{false};

  // Name -> id maps and per-id metadata.
  std::map<std::string, int> counter_ids PD_GUARDED_BY(mu);
  std::map<std::string, int> gauge_ids PD_GUARDED_BY(mu);
  std::map<std::string, int> hist_ids PD_GUARDED_BY(mu);
  std::vector<std::string> counter_names PD_GUARDED_BY(mu);
  std::vector<std::string> gauge_names PD_GUARDED_BY(mu);
  std::vector<std::string> hist_names PD_GUARDED_BY(mu);
  std::vector<std::vector<double>> hist_bounds PD_GUARDED_BY(mu);

  // Live per-thread shards plus the merged data of exited threads. The
  // vector and the retired accumulator are guarded; the pointed-to shards
  // are owner-thread data readable under mu only after the retirement
  // handshake (see metrics.h), which is beyond what the annotations model.
  std::vector<Shard*> live PD_GUARDED_BY(mu);
  Shard retired PD_GUARDED_BY(mu);

  Shard& local_shard();
  void retire(Shard* s) {
    pd::MutexLock lock(mu);
    merge_into(retired, *s, hist_bounds);
    live.erase(std::remove(live.begin(), live.end(), s), live.end());
  }
};

namespace {

/// TLS holder: owns this thread's shard for the global registry and
/// flushes it into the retired accumulator at thread exit.
struct TlsShard {
  Registry::Impl* owner = nullptr;
  std::unique_ptr<Shard> shard;
  ~TlsShard() {
    if (owner != nullptr && shard != nullptr) owner->retire(shard.get());
  }
};

thread_local TlsShard tls_shard;

}  // namespace

Shard& Registry::Impl::local_shard() {
  if (tls_shard.shard == nullptr || tls_shard.owner != this) {
    // A thread holds one shard at a time; if a different registry owned the
    // slot (only possible with a non-global instance), flush there first so
    // its live list never dangles.
    if (tls_shard.owner != nullptr && tls_shard.shard != nullptr) {
      tls_shard.owner->retire(tls_shard.shard.get());
      tls_shard.shard.reset();
    }
    auto fresh = std::make_unique<Shard>();
    {
      pd::MutexLock lock(mu);
      live.push_back(fresh.get());
    }
    tls_shard.owner = this;
    tls_shard.shard = std::move(fresh);
  }
  return *tls_shard.shard;
}

Registry::Registry() : impl_(new Impl) {}

// The global registry is intentionally immortal (never destroyed), so
// worker threads exiting at process teardown can always flush their
// shards. The destructor exists only for completeness.
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  static Registry* g = [] {
    auto* r = new Registry();
    if (const char* env = std::getenv("POLARDRAW_METRICS")) {
      r->set_enabled(std::string_view(env) != "0");
    }
    return r;
  }();
  return *g;
}

int Registry::counter_id(const std::string& name) {
  pd::MutexLock lock(impl_->mu);
  const auto it = impl_->counter_ids.find(name);
  if (it != impl_->counter_ids.end()) return it->second;
  const int id = static_cast<int>(impl_->counter_names.size());
  impl_->counter_ids.emplace(name, id);
  impl_->counter_names.push_back(name);
  return id;
}

int Registry::gauge_id(const std::string& name) {
  pd::MutexLock lock(impl_->mu);
  const auto it = impl_->gauge_ids.find(name);
  if (it != impl_->gauge_ids.end()) return it->second;
  const int id = static_cast<int>(impl_->gauge_names.size());
  impl_->gauge_ids.emplace(name, id);
  impl_->gauge_names.push_back(name);
  return id;
}

int Registry::histogram_id(const std::string& name,
                           const std::vector<double>& bounds) {
  pd::MutexLock lock(impl_->mu);
  const auto it = impl_->hist_ids.find(name);
  if (it != impl_->hist_ids.end()) return it->second;
  const int id = static_cast<int>(impl_->hist_names.size());
  impl_->hist_ids.emplace(name, id);
  impl_->hist_names.push_back(name);
  std::vector<double> sorted = bounds;
  std::sort(sorted.begin(), sorted.end());
  impl_->hist_bounds.push_back(std::move(sorted));
  return id;
}

void Registry::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool Registry::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void Registry::counter_add(int id, std::uint64_t n) {
  Shard& s = impl_->local_shard();
  const auto idx = static_cast<std::size_t>(id);
  if (s.counters.size() <= idx) s.counters.resize(idx + 1, 0);
  s.counters[idx] += n;
}

void Registry::gauge_max(int id, double v) {
  Shard& s = impl_->local_shard();
  const auto idx = static_cast<std::size_t>(id);
  if (s.gauges.size() <= idx) {
    s.gauges.resize(idx + 1, 0.0);
    s.gauge_set.resize(idx + 1, 0);
  }
  s.gauges[idx] = s.gauge_set[idx] ? std::max(s.gauges[idx], v) : v;
  s.gauge_set[idx] = 1;
}

void Registry::histogram_observe(int id, double v) {
  Shard& s = impl_->local_shard();
  const auto idx = static_cast<std::size_t>(id);
  if (s.hists.size() <= idx) s.hists.resize(idx + 1);
  HistShard& h = s.hists[idx];
  if (h.counts.empty()) {
    // First observe of this histogram on this thread: copy the registered
    // bounds under the lock; afterwards the shard is self-contained.
    pd::MutexLock lock(impl_->mu);
    h.bounds = impl_->hist_bounds[idx];
    h.counts.assign(h.bounds.size() + 1, 0);
  }
  const auto it = std::lower_bound(h.bounds.begin(), h.bounds.end(), v);
  h.counts[static_cast<std::size_t>(it - h.bounds.begin())] += 1;
  h.count += 1;
  h.sum += v;
  h.min = std::min(h.min, v);
  h.max = std::max(h.max, v);
}

Snapshot Registry::snapshot() const {
  pd::MutexLock lock(impl_->mu);
  Shard merged;
  merge_into(merged, impl_->retired, impl_->hist_bounds);
  for (const Shard* s : impl_->live) {
    merge_into(merged, *s, impl_->hist_bounds);
  }

  Snapshot out;
  // The name tables are sorted maps, so iteration emits names in order.
  for (const auto& [name, id] : impl_->counter_ids) {
    const auto idx = static_cast<std::size_t>(id);
    const std::uint64_t v = idx < merged.counters.size() ? merged.counters[idx] : 0;
    out.counters.emplace_back(name, v);
  }
  for (const auto& [name, id] : impl_->gauge_ids) {
    const auto idx = static_cast<std::size_t>(id);
    const bool set = idx < merged.gauge_set.size() && merged.gauge_set[idx];
    out.gauges.emplace_back(name, set ? merged.gauges[idx] : 0.0);
  }
  for (const auto& [name, id] : impl_->hist_ids) {
    const auto idx = static_cast<std::size_t>(id);
    HistogramSnapshot h;
    h.bounds = impl_->hist_bounds[idx];
    if (idx < merged.hists.size() && merged.hists[idx].count > 0) {
      const HistShard& src = merged.hists[idx];
      h.counts = src.counts;
      h.count = src.count;
      h.sum = src.sum;
      h.min = src.min;
      h.max = src.max;
    } else {
      h.counts.assign(h.bounds.size() + 1, 0);
    }
    out.histograms.emplace_back(name, std::move(h));
  }
  return out;
}

void Registry::reset() {
  pd::MutexLock lock(impl_->mu);
  impl_->retired = Shard{};
  for (Shard* s : impl_->live) *s = Shard{};
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t next = cum + counts[b];
    if (static_cast<double>(next) >= target && counts[b] > 0) {
      if (b == counts.size() - 1) return max;  // overflow bucket
      const double hi = bounds[b];
      // Lower edge: previous bound, or the observed min for the first
      // populated bucket (keeps tiny samples from reporting bucket edges
      // far below any observation).
      double lo = b > 0 ? bounds[b - 1] : std::min(min, hi);
      lo = std::max(lo, min);
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts[b]);
      return lo + (std::min(hi, max) - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum = next;
  }
  return max;
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* Snapshot::histogram(std::string_view name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

const std::vector<double>& default_time_bounds_s() {
  static const std::vector<double> bounds = [] {
    // 1-2-5 ladder, 1 us .. 50 s.
    std::vector<double> b;
    for (double decade = 1e-6; decade < 1e2; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(2.0 * decade);
      b.push_back(5.0 * decade);
    }
    while (b.back() > 50.0) b.pop_back();
    return b;
  }();
  return bounds;
}

}  // namespace polardraw::obs
