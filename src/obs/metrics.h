// Deterministic, thread-safe metrics registry (DESIGN.md section 11).
//
// The pipeline stages (reader -> preprocess -> trackers -> classifier)
// report counters, gauges and fixed-bucket histograms into one global
// registry. Three properties the evaluation harness depends on:
//
//   * Zero feedback: metrics only *observe* the pipeline. Enabling or
//     disabling them never changes a trial's trajectory, RNG stream or
//     aggregate -- instrumented code must never branch on metric state.
//   * Thread-count invariance for counters: each thread accumulates into
//     its own shard; shards merge by commutative addition (counters),
//     max (gauges) and bucket-wise addition (histograms), so totals are
//     bit-identical whether a batch ran on 1 or 8 workers.
//   * Near-zero cost when disabled: every handle operation is one relaxed
//     atomic load and a predictable branch; no clocks are read and no TLS
//     is touched.
//
// Shards are merged when their owning thread exits (thread_pool workers
// join in the pool destructor) and read through a seqlock by snapshot().
//
// Concurrent reads (DESIGN.md section 17): every shard slot is a relaxed
// std::atomic and each shard carries an epoch/seqlock sequence counter,
// so snapshot() is safe to call while instrumented work is in flight --
// a live statusz endpoint can read the registry mid-decode. Writers pay
// two plain stores and two compiler fences per multi-field update (no
// locks, no RMWs on the hot path); readers retry a bounded number of
// times for a torn-free view and, under sustained writes, fall back to a
// per-field-consistent view. In the quiescent case ("run_trials();
// snapshot()") the sequence counters are stable and the result is
// bit-identical to an in-place merge. reset() still requires quiescence:
// it rewrites every live shard in place.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace polardraw::obs {

/// Merged view of one histogram: fixed upper bounds plus an overflow
/// bucket, with bucket-interpolated percentiles for reporting.
struct HistogramSnapshot {
  std::vector<double> bounds;          // ascending bucket upper bounds
  std::vector<std::uint64_t> counts;   // bounds.size() + 1 (last = overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;

  /// Percentile estimate (p in [0, 100]) by linear interpolation inside
  /// the containing bucket; the overflow bucket reports `max`.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Point-in-time merged state of the registry, sorted by metric name.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Counter value by name (0 when absent).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  /// Histogram by name (nullptr when absent).
  [[nodiscard]] const HistogramSnapshot* histogram(std::string_view name) const;
};

/// Default histogram bounds for span durations in seconds: a 1-2-5 decade
/// ladder from 1 microsecond to 50 seconds.
[[nodiscard]] const std::vector<double>& default_time_bounds_s();

/// Log-spaced histogram bounds: `per_decade` geometrically spaced upper
/// bounds per decade from `lo` to `hi` (both included). Finer than the
/// 1-2-5 ladder, for latency SLO histograms whose percentile
/// interpolation error must stay small (e.g. server.push_to_commit_s).
[[nodiscard]] std::vector<double> log_spaced_bounds(double lo, double hi,
                                                    int per_decade);

class Registry {
 public:
  /// The process-wide registry. Enabled at startup when the
  /// POLARDRAW_METRICS environment variable is set to anything but "0".
  static Registry& global();

  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  /// Registers (or looks up) a metric; ids are stable for the registry's
  /// lifetime and shared by all threads. Re-registering a histogram name
  /// keeps the first bounds.
  int counter_id(const std::string& name);
  int gauge_id(const std::string& name);
  int histogram_id(const std::string& name,
                   const std::vector<double>& bounds = default_time_bounds_s());

  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  // Raw slot operations; prefer the typed handles below.
  void counter_add(int id, std::uint64_t n);
  void gauge_max(int id, double v);  // merge rule: max across threads
  void histogram_observe(int id, double v);

  /// Merges retired and live shards through the per-shard seqlock. Safe
  /// to call while instrumented work is in flight (see file top);
  /// bit-identical to the quiescent merge when nothing is writing.
  [[nodiscard]] Snapshot snapshot() const;
  /// Zeroes all accumulated data; registrations survive. Quiescence
  /// required (rewrites live shards in place).
  void reset();

  // Implementation detail, public only so the thread-local shard holder in
  // metrics.cc can name its owning registry.
  struct Impl;

 private:
  Impl* impl_;
};

/// Named counter handle; cheap to copy, safe to keep in function-local
/// statics inside instrumented code.
class Counter {
 public:
  explicit Counter(const std::string& name)
      : id_(Registry::global().counter_id(name)) {}
  void add(std::uint64_t n = 1) const {
    Registry& r = Registry::global();
    if (r.enabled()) r.counter_add(id_, n);
  }

 private:
  int id_;
};

/// Named gauge handle; set() keeps the maximum across all threads (the
/// only order-independent merge for a last-value metric).
class Gauge {
 public:
  explicit Gauge(const std::string& name)
      : id_(Registry::global().gauge_id(name)) {}
  void set_max(double v) const {
    Registry& r = Registry::global();
    if (r.enabled()) r.gauge_max(id_, v);
  }

 private:
  int id_;
};

/// Named fixed-bucket histogram handle.
class Histogram {
 public:
  explicit Histogram(const std::string& name)
      : id_(Registry::global().histogram_id(name)) {}
  Histogram(const std::string& name, const std::vector<double>& bounds)
      : id_(Registry::global().histogram_id(name, bounds)) {}
  void observe(double v) const {
    Registry& r = Registry::global();
    if (r.enabled()) r.histogram_observe(id_, v);
  }

 private:
  int id_;
};

}  // namespace polardraw::obs
