// Structured, rate-limited JSON-lines logging (DESIGN.md section 17).
//
// Server lifecycle events (session open/close, hop-fence, non-monotone
// drop, backpressure) emit one JSON object per line:
//
//   {"t_s":12.35,"level":"warn","event":"assoc.non_monotone","epc":...}
//
// Three properties, mirroring the metrics registry contract:
//
//   * Zero feedback: logging only observes. The enabled check is one
//     relaxed atomic load; instrumented code never branches on logger
//     state beyond "skip the emit".
//   * Deterministic rate limiting: the token bucket is keyed on the
//     simulation timestamps callers already carry (polarlint R7: no
//     clock reads in this file), so a replayed run suppresses exactly
//     the same events. Suppressions are counted per event name and
//     surfaced through suppressed_total() / the "log.suppressed"
//     counter.
//   * Thread-safe emit: one mutex serializes sink writes; hot paths log
//     rarely (lifecycle edges, drops), never per-observation.
//
// The global logger is off until given a sink (POLARDRAW_LOG=<path|->
// at startup, or Logger::set_sink in tests/benches).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string_view>

namespace polardraw::obs {

class JsonWriter;

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Lowercase wire name ("debug", "info", "warn", "error").
[[nodiscard]] std::string_view log_level_name(LogLevel level);

class Logger {
 public:
  /// The process-wide logger. Opens a sink at startup when the
  /// POLARDRAW_LOG environment variable names a file path ("-" or
  /// "stderr" for standard error).
  static Logger& global();

  Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger();

  /// Points the logger at a stream (not owned; nullptr disables). The
  /// caller keeps the stream alive until the next set_sink.
  void set_sink(std::ostream* os);
  /// Opens `path` ("-"/"stderr" = standard error) as an owned sink.
  void set_sink_path(std::string_view path);

  [[nodiscard]] bool enabled() const;
  void set_min_level(LogLevel level);

  /// Deterministic token bucket: at most `burst` events back-to-back,
  /// refilling at `events_per_s` in *simulation* time. Non-positive
  /// events_per_s disables limiting (the default).
  void set_rate_limit(double events_per_s, double burst);

  /// Emits one JSON line {"t_s":..,"level":..,"event":..,<fields>} if the
  /// level passes and the token bucket has budget at sim time `t_s`.
  /// `fields` (optional) appends event-specific keys via the writer.
  void log(LogLevel level, double t_s, std::string_view event,
           const std::function<void(JsonWriter&)>& fields = nullptr);

  /// Lines written / suppressed by the rate limiter since construction.
  [[nodiscard]] std::uint64_t emitted_total() const;
  [[nodiscard]] std::uint64_t suppressed_total() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace polardraw::obs
