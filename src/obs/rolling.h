// Deterministic sliding-window aggregator (DESIGN.md section 17).
//
// Rolling SLO metrics ("p99 push-to-commit over the last 10 s") need a
// notion of "now" -- but polarlint R7 bans wall-clock reads outside the
// span/bench layers, and the whole pipeline is replayed in simulation
// time. So the window is driven purely by the observation timestamps the
// caller feeds in: `observe(t_s, v)` advances the window to `t_s`, and
// every query is answered as of the latest observation. Replaying the
// same observation stream therefore reproduces the same rolling stats
// bit-for-bit at every step, regardless of wall-clock scheduling.
//
// Internally a window of `window_s` seconds is quantized into
// `window_s / step_s` fixed-width step buckets, each holding a compact
// histogram (shared log-spaced bounds) plus count/sum/min/max. Advancing
// time expires whole steps; queries merge the live steps. Memory is
// O(steps * buckets), independent of observation rate.
//
// Not thread-safe: callers sequence observe()/advance_to() externally
// (SessionServer drains per-session samples into one instance under its
// status mutex, in session-id order, so the merge order is deterministic
// too).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace polardraw::obs {

/// Merged view of one rolling window as of the latest observation.
struct RollingStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

class RollingWindow {
 public:
  /// Window of `window_s` seconds quantized into steps of `step_s`
  /// (window_s is rounded up to a whole number of steps). `bounds` are
  /// the shared histogram bucket upper bounds used for percentiles.
  RollingWindow(double window_s, double step_s, std::vector<double> bounds);

  /// Records `v` at simulation time `t_s`, first advancing the window.
  /// Observations older than the already-advanced window tail are
  /// counted into the current step (timestamps from concurrent sessions
  /// may interleave slightly; a rolling SLO does not need them resorted).
  void observe(double t_s, double v);

  /// Advances the window to `t_s` without recording (expires old steps).
  /// Time never moves backwards: an earlier t_s is a no-op.
  void advance_to(double t_s);

  /// Stats over observations in (now - window_s, now], where now is the
  /// largest timestamp seen.
  [[nodiscard]] RollingStats stats() const;

  /// Latest timestamp the window has advanced to.
  [[nodiscard]] double now_s() const { return now_s_; }

  [[nodiscard]] double window_s() const {
    return static_cast<double>(steps_.size()) * step_s_;
  }

 private:
  struct Step {
    std::int64_t index = -1;  // global step index, -1 = empty
    std::vector<std::uint64_t> counts;  // bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  [[nodiscard]] std::int64_t step_index(double t_s) const;
  Step& step_for(std::int64_t index);

  double step_s_;
  std::vector<double> bounds_;
  std::vector<Step> steps_;  // ring keyed by index % steps_.size()
  double now_s_ = 0.0;
  std::int64_t now_index_ = 0;
  bool started_ = false;
};

}  // namespace polardraw::obs
