#include "obs/log.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>

#include "common/annotations.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace polardraw::obs {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

struct Logger::Impl {
  mutable pd::Mutex mu;
  std::atomic<bool> enabled{false};
  std::atomic<int> min_level{static_cast<int>(LogLevel::kInfo)};

  std::ostream* sink PD_GUARDED_BY(mu) = nullptr;
  std::unique_ptr<std::ofstream> owned_sink PD_GUARDED_BY(mu);

  // Token bucket in simulation time. rate <= 0 disables limiting.
  double rate_per_s PD_GUARDED_BY(mu) = 0.0;
  double burst PD_GUARDED_BY(mu) = 0.0;
  double tokens PD_GUARDED_BY(mu) = 0.0;
  double last_t_s PD_GUARDED_BY(mu) = 0.0;
  bool bucket_started PD_GUARDED_BY(mu) = false;

  std::atomic<std::uint64_t> emitted{0};
  std::atomic<std::uint64_t> suppressed{0};
};

Logger::Logger() : impl_(new Impl) {}
Logger::~Logger() { delete impl_; }

Logger& Logger::global() {
  // Immortal for the same reason as Registry::global(): late-exiting
  // threads may log during teardown.
  static Logger* g = [] {
    auto* l = new Logger();
    if (const char* env = std::getenv("POLARDRAW_LOG")) {
      if (*env != '\0') l->set_sink_path(env);
    }
    return l;
  }();
  return *g;
}

void Logger::set_sink(std::ostream* os) {
  pd::MutexLock lock(impl_->mu);
  impl_->owned_sink.reset();
  impl_->sink = os;
  impl_->enabled.store(os != nullptr, std::memory_order_relaxed);
}

void Logger::set_sink_path(std::string_view path) {
  pd::MutexLock lock(impl_->mu);
  if (path == "-" || path == "stderr") {
    impl_->owned_sink.reset();
    impl_->sink = &std::cerr;
  } else {
    auto f = std::make_unique<std::ofstream>(std::string(path),
                                             std::ios::out | std::ios::app);
    impl_->sink = f->is_open() ? f.get() : nullptr;
    impl_->owned_sink = std::move(f);
  }
  impl_->enabled.store(impl_->sink != nullptr, std::memory_order_relaxed);
}

bool Logger::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void Logger::set_min_level(LogLevel level) {
  impl_->min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::set_rate_limit(double events_per_s, double burst) {
  pd::MutexLock lock(impl_->mu);
  impl_->rate_per_s = events_per_s;
  impl_->burst = std::max(1.0, burst);
  impl_->tokens = impl_->burst;
  impl_->bucket_started = false;
}

void Logger::log(LogLevel level, double t_s, std::string_view event,
                 const std::function<void(JsonWriter&)>& fields) {
  if (!enabled()) return;
  if (static_cast<int>(level) <
      impl_->min_level.load(std::memory_order_relaxed)) {
    return;
  }
  static const Counter emitted_counter("log.emitted");
  static const Counter suppressed_counter("log.suppressed");
  pd::MutexLock lock(impl_->mu);
  if (impl_->sink == nullptr) return;
  if (impl_->rate_per_s > 0.0) {
    // Refill on sim-time progress; interleaved sessions may present a
    // smaller t_s than the last one seen, which simply refills nothing.
    if (impl_->bucket_started && t_s > impl_->last_t_s) {
      impl_->tokens = std::min(
          impl_->burst,
          impl_->tokens + (t_s - impl_->last_t_s) * impl_->rate_per_s);
    }
    if (!impl_->bucket_started || t_s > impl_->last_t_s) {
      impl_->last_t_s = t_s;
      impl_->bucket_started = true;
    }
    if (impl_->tokens < 1.0) {
      impl_->suppressed.fetch_add(1, std::memory_order_relaxed);
      suppressed_counter.add();
      return;
    }
    impl_->tokens -= 1.0;
  }
  JsonWriter w(*impl_->sink, JsonWriter::Style::kCompact);
  w.begin_object();
  w.kv("t_s", t_s);
  w.kv("level", log_level_name(level));
  w.kv("event", event);
  if (fields) fields(w);
  w.end_object();
  *impl_->sink << '\n';
  impl_->sink->flush();
  impl_->emitted.fetch_add(1, std::memory_order_relaxed);
  emitted_counter.add();
}

std::uint64_t Logger::emitted_total() const {
  return impl_->emitted.load(std::memory_order_relaxed);
}

std::uint64_t Logger::suppressed_total() const {
  return impl_->suppressed.load(std::memory_order_relaxed);
}

}  // namespace polardraw::obs
