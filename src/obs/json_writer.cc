#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace polardraw::obs {

void JsonWriter::newline_indent() {
  if (compact_) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::pre_value() {
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (top.is_object && top.expecting_value) {
    top.expecting_value = false;
    return;  // the key already positioned us
  }
  if (top.has_items) os_ << ',';
  newline_indent();
  top.has_items = true;
}

void JsonWriter::begin_object() {
  pre_value();
  os_ << '{';
  stack_.push_back(Level{true, false, false});
}

void JsonWriter::end_object() {
  const bool had_items = !stack_.empty() && stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
}

void JsonWriter::begin_array() {
  pre_value();
  os_ << '[';
  stack_.push_back(Level{false, false, false});
}

void JsonWriter::end_array() {
  const bool had_items = !stack_.empty() && stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  Level& top = stack_.back();
  if (top.has_items) os_ << ',';
  newline_indent();
  top.has_items = true;
  top.expecting_value = true;
  write_escaped(k);
  os_ << (compact_ ? ":" : ": ");
}

void JsonWriter::write_escaped(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

void JsonWriter::value(std::string_view s) {
  pre_value();
  write_escaped(s);
}

std::string JsonWriter::format_double(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  // Integral values in the exactly-representable range print as plain
  // integers ("150", not the shorter-precision "1.5e+02").
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char ibuf[32];
    std::snprintf(ibuf, sizeof ibuf, "%lld", static_cast<long long>(d));
    return ibuf;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

void JsonWriter::value(double d) {
  pre_value();
  os_ << format_double(d);
}

void JsonWriter::value(std::uint64_t v) {
  pre_value();
  os_ << v;
}

void JsonWriter::value(std::int64_t v) {
  pre_value();
  os_ << v;
}

void JsonWriter::value(bool b) {
  pre_value();
  os_ << (b ? "true" : "false");
}

void JsonWriter::null() {
  pre_value();
  os_ << "null";
}

}  // namespace polardraw::obs
