#include "obs/tracer.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <ostream>

#include "common/annotations.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace polardraw::obs {

namespace {

/// Every ring eviction also ticks this registry counter, so a truncated
/// timeline shows up in the BENCH_*.json export next to the trace file.
const Counter& dropped_counter() {
  static const Counter c("trace.dropped_events");
  return c;
}

/// Compact on-ring event record; names and arg names are interned ids.
struct EventRec {
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = -1;  // -1 => instant or flow
  std::int32_t name = -1;
  std::int32_t a0_name = -1;
  std::int32_t a1_name = -1;
  double a0 = 0.0;
  double a1 = 0.0;
  std::uint64_t flow_id = 0;  // meaningful only when flow_ph != 0
  char flow_ph = 0;           // 0 = not a flow event; else 's'/'t'/'f'
};

/// One thread's fixed-capacity ring. Only the owning thread writes;
/// readers hold the tracer mutex after a quiescence handshake.
struct Ring {
  explicit Ring(std::size_t cap) : capacity(cap) { buf.reserve(cap); }

  void reset(std::size_t cap) {
    buf.clear();
    buf.shrink_to_fit();
    buf.reserve(cap);
    capacity = cap;
    next = 0;
    recorded = 0;
    dropped = 0;
  }

  void push(const EventRec& e) {
    recorded.store(recorded.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    if (buf.size() < capacity) {
      buf.push_back(e);
      return;
    }
    // Full: overwrite the oldest retained event. `next` is both the write
    // cursor and the start of the retained window, so steady state never
    // reallocates.
    buf[next] = e;
    next = next + 1 == capacity ? 0 : next + 1;
    dropped.store(dropped.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    dropped_counter().add();
  }

  std::vector<EventRec> buf;
  std::size_t capacity;
  std::size_t next = 0;  // oldest retained event once the ring is full
  // Relaxed atomics (owner-thread written) so dropped_events() can read
  // them while recording is in flight -- the statusz path needs live drop
  // counts without the quiescence handshake snapshot() demands.
  std::atomic<std::uint64_t> recorded{0};
  std::atomic<std::uint64_t> dropped{0};
  int tid = 0;
  std::string thread_name;
};

std::size_t clamp_capacity(std::size_t cap) {
  return std::clamp<std::size_t>(cap, 16, std::size_t{1} << 22);
}

std::size_t capacity_from_env() {
  if (const char* env = std::getenv("PD_TRACE_BUFFER_EVENTS")) {
    const long v = std::atol(env);
    if (v > 0) return clamp_capacity(static_cast<std::size_t>(v));
  }
  return 65536;
}

}  // namespace

struct Tracer::Impl {
  mutable pd::Mutex mu;
  std::atomic<bool> enabled{false};
  // epoch is deliberately outside the capability: the hot recording path
  // reads it lock-free, and reset() (the only writer after construction)
  // runs under the documented quiescence handshake -- no recording threads.
  Clock::time_point epoch = Clock::now();
  std::size_t ring_capacity PD_GUARDED_BY(mu) = 65536;

  // Name interning (each site interns once).
  std::map<std::string, int> name_ids PD_GUARDED_BY(mu);
  std::vector<std::string> names PD_GUARDED_BY(mu);

  // Live per-thread rings plus the retained rings of exited threads. The
  // containers are guarded; ring contents are owner-thread data readable
  // under mu only after the quiescence handshake (see tracer.h).
  std::vector<Ring*> live PD_GUARDED_BY(mu);
  std::vector<std::unique_ptr<Ring>> retired PD_GUARDED_BY(mu);
  int next_tid PD_GUARDED_BY(mu) = 0;

  Ring& local_ring();
  void retire(std::unique_ptr<Ring> r) {
    pd::MutexLock lock(mu);
    live.erase(std::remove(live.begin(), live.end(), r.get()), live.end());
    retired.push_back(std::move(r));
  }
};

namespace {

/// TLS holder: owns this thread's ring for the global tracer and moves it
/// into the retired list at thread exit so events outlive pool workers.
struct TlsRing {
  Tracer::Impl* owner = nullptr;
  std::unique_ptr<Ring> ring;
  ~TlsRing() {
    if (owner != nullptr && ring != nullptr) owner->retire(std::move(ring));
  }
};

thread_local TlsRing tls_ring;

}  // namespace

Ring& Tracer::Impl::local_ring() {
  if (tls_ring.ring == nullptr || tls_ring.owner != this) {
    if (tls_ring.owner != nullptr && tls_ring.ring != nullptr) {
      tls_ring.owner->retire(std::move(tls_ring.ring));
    }
    std::unique_ptr<Ring> fresh;
    {
      pd::MutexLock lock(mu);
      fresh = std::make_unique<Ring>(ring_capacity);
      fresh->tid = ++next_tid;
      fresh->thread_name = "thread-" + std::to_string(fresh->tid);
      live.push_back(fresh.get());
    }
    tls_ring.owner = this;
    tls_ring.ring = std::move(fresh);
  }
  return *tls_ring.ring;
}

Tracer::Tracer() : impl_(new Impl) {}

// Like the metrics registry, the global tracer is immortal so worker
// threads exiting at process teardown can always retire their rings.
Tracer::~Tracer() { delete impl_; }

Tracer& Tracer::global() {
  static Tracer* g = [] {
    auto* t = new Tracer();
    t->set_ring_capacity(capacity_from_env());
    if (std::getenv("PD_TRACE_DIR") != nullptr) t->set_enabled(true);
    return t;
  }();
  return *g;
}

void Tracer::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool Tracer::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

int Tracer::name_id(const std::string& name) {
  pd::MutexLock lock(impl_->mu);
  const auto it = impl_->name_ids.find(name);
  if (it != impl_->name_ids.end()) return it->second;
  const int id = static_cast<int>(impl_->names.size());
  impl_->name_ids.emplace(name, id);
  impl_->names.push_back(name);
  return id;
}

void Tracer::set_current_thread_name(const std::string& name) {
  Ring& r = impl_->local_ring();
  pd::MutexLock lock(impl_->mu);
  r.thread_name = name;
}

void Tracer::complete(int name, Clock::time_point begin, Clock::time_point end,
                      int a0_name, double a0, int a1_name, double a1) {
  if (!enabled() || name < 0) return;
  EventRec e;
  e.ts_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                begin - impl_->epoch)
                .count();
  e.dur_ns = std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
             .count());
  e.name = name;
  e.a0_name = a0_name;
  e.a0 = a0;
  e.a1_name = a1_name;
  e.a1 = a1;
  impl_->local_ring().push(e);
}

void Tracer::instant(int name, int a0_name, double a0, int a1_name,
                     double a1) {
  if (!enabled()) return;  // skip the clock read entirely when disabled
  instant_at(name, Clock::now(), a0_name, a0, a1_name, a1);
}

void Tracer::instant_at(int name, Clock::time_point ts, int a0_name, double a0,
                        int a1_name, double a1) {
  if (!enabled() || name < 0) return;
  EventRec e;
  e.ts_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(ts - impl_->epoch)
          .count();
  e.dur_ns = -1;
  e.name = name;
  e.a0_name = a0_name;
  e.a0 = a0;
  e.a1_name = a1_name;
  e.a1 = a1;
  impl_->local_ring().push(e);
}

void Tracer::flow(char ph, int name, std::uint64_t flow_id, int a0_name,
                  double a0, int a1_name, double a1) {
  if (!enabled() || name < 0) return;  // skip the clock read when disabled
  if (ph != 's' && ph != 't' && ph != 'f') return;
  EventRec e;
  e.ts_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - impl_->epoch)
                .count();
  e.dur_ns = -1;
  e.name = name;
  e.a0_name = a0_name;
  e.a0 = a0;
  e.a1_name = a1_name;
  e.a1 = a1;
  e.flow_id = flow_id;
  e.flow_ph = ph;
  impl_->local_ring().push(e);
}

void Tracer::set_ring_capacity(std::size_t capacity) {
  pd::MutexLock lock(impl_->mu);
  impl_->ring_capacity = clamp_capacity(capacity);
}

std::size_t Tracer::ring_capacity() const {
  pd::MutexLock lock(impl_->mu);
  return impl_->ring_capacity;
}

std::vector<TraceThreadSnapshot> Tracer::snapshot() const {
  pd::MutexLock lock(impl_->mu);
  std::vector<const Ring*> rings;
  for (const auto& r : impl_->retired) rings.push_back(r.get());
  for (const Ring* r : impl_->live) rings.push_back(r);
  std::sort(rings.begin(), rings.end(),
            [](const Ring* a, const Ring* b) { return a->tid < b->tid; });

  const auto resolve = [&](std::int32_t id) -> std::string {
    return id >= 0 && static_cast<std::size_t>(id) < impl_->names.size()
               ? impl_->names[static_cast<std::size_t>(id)]
               : std::string();
  };

  std::vector<TraceThreadSnapshot> out;
  out.reserve(rings.size());
  for (const Ring* r : rings) {
    TraceThreadSnapshot ts;
    ts.tid = r->tid;
    ts.thread_name = r->thread_name;
    ts.capacity = r->capacity;
    ts.recorded = r->recorded.load(std::memory_order_relaxed);
    ts.dropped = r->dropped.load(std::memory_order_relaxed);
    ts.events.reserve(r->buf.size());
    const std::size_t n = r->buf.size();
    const std::size_t start = n < r->capacity ? 0 : r->next;
    for (std::size_t i = 0; i < n; ++i) {
      const EventRec& e = r->buf[(start + i) % n];
      TraceEventView v;
      v.name = resolve(e.name);
      v.ph = e.flow_ph != 0 ? e.flow_ph : (e.dur_ns < 0 ? 'i' : 'X');
      v.flow_id = e.flow_id;
      v.ts_us = static_cast<double>(e.ts_ns) / 1e3;
      v.dur_us = e.dur_ns < 0 ? 0.0 : static_cast<double>(e.dur_ns) / 1e3;
      if (e.a0_name >= 0) v.args.push_back({resolve(e.a0_name), e.a0});
      if (e.a1_name >= 0) v.args.push_back({resolve(e.a1_name), e.a1});
      ts.events.push_back(std::move(v));
    }
    out.push_back(std::move(ts));
  }
  return out;
}

std::uint64_t Tracer::dropped_events() const {
  pd::MutexLock lock(impl_->mu);
  std::uint64_t total = 0;
  for (const auto& r : impl_->retired) {
    total += r->dropped.load(std::memory_order_relaxed);
  }
  for (const Ring* r : impl_->live) {
    total += r->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void Tracer::reset() {
  pd::MutexLock lock(impl_->mu);
  impl_->retired.clear();
  for (Ring* r : impl_->live) r->reset(impl_->ring_capacity);
  impl_->epoch = Clock::now();
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const auto threads = snapshot();
  std::uint64_t total_dropped = 0;
  std::uint64_t total_recorded = 0;
  for (const auto& t : threads) {
    total_dropped += t.dropped;
    total_recorded += t.recorded;
  }

  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("recorded_events", total_recorded);
  w.kv("dropped_events", total_dropped);
  w.kv("ring_capacity",
       static_cast<std::uint64_t>(threads.empty() ? ring_capacity()
                                                  : threads[0].capacity));
  w.end_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& t : threads) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("ts", 0.0);
    w.kv("pid", 1);
    w.kv("tid", t.tid);
    w.key("args");
    w.begin_object();
    w.kv("name", t.thread_name);
    w.end_object();
    w.end_object();
    for (const auto& e : t.events) {
      w.begin_object();
      w.kv("name", e.name);
      w.kv("ph", std::string_view(&e.ph, 1));
      w.kv("ts", e.ts_us);
      if (e.ph == 'X') w.kv("dur", e.dur_us);
      if (e.ph == 'i') w.kv("s", "t");  // thread-scoped instant
      if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
        // Flow chains match on (cat, name, id); benchjson pins this shape.
        w.kv("cat", "flow");
        w.kv("id", e.flow_id);
      }
      w.kv("pid", 1);
      w.kv("tid", t.tid);
      if (!e.args.empty()) {
        w.key("args");
        w.begin_object();
        for (const auto& a : e.args) w.kv(a.name, a.value);
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

std::uint64_t flow_sample_period() {
  static const std::uint64_t period = [] {
    if (const char* env = std::getenv("PD_FLOW_SAMPLE")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::uint64_t>(v);
    }
    return std::uint64_t{64};
  }();
  return period;
}

bool flow_sampled(std::uint64_t serial) {
  return serial != 0 && serial % flow_sample_period() == 0;
}

void record_report_flow(char ph, std::uint64_t serial, FlowStage stage) {
  Tracer& t = Tracer::global();
  if (!t.enabled() || !flow_sampled(serial)) return;
  static const TraceName flow_name("report.flow");
  static const TraceName stage_arg("stage");
  static const TraceName serial_arg("serial");
  t.flow(ph, flow_name.id(), serial, stage_arg.id(),
         static_cast<double>(static_cast<int>(stage)), serial_arg.id(),
         static_cast<double>(serial));
}

}  // namespace polardraw::obs
