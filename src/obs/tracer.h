// Per-thread ring-buffer event tracer (DESIGN.md section 12).
//
// The metrics registry (metrics.h) answers "how much / how fast on
// aggregate"; the tracer answers "when and where": it records complete
// span events ('X') and instant events ('i') with up to two numeric args
// (trial id, window index, beam occupancy, ...) into a fixed-capacity
// ring buffer per thread, and exports Chrome trace-event JSON that loads
// in Perfetto / chrome://tracing with one track per thread.
//
// The contract mirrors the registry's:
//
//   * Zero feedback: tracing only observes. Enabling it never changes a
//     trial's trajectory, RNG stream or aggregate -- instrumented code
//     may branch on trace state only to *record*, never to compute.
//   * Lock-light recording: each thread writes its own ring; the only
//     locks are on ring registration (once per thread) and on name
//     interning (once per site). When the ring is full the oldest event
//     is overwritten, the ring's drop count grows, and the
//     `trace.dropped_events` counter in the metrics registry ticks, so a
//     truncated timeline is visible instead of silent.
//   * Near-zero cost when disabled: every record call is one relaxed
//     atomic load and a predictable branch; no clock is read.
//
// snapshot(), reset() and write_chrome_trace() require quiescence --
// nothing instrumented may be in flight -- exactly like the registry's
// snapshot()/reset() (the `run_trials(...); snapshot()` pattern is safe).
//
// Environment protocol: the global tracer starts enabled iff PD_TRACE_DIR
// is set (bench::Session writes <dir>/TRACE_<name>.json on exit);
// PD_TRACE_BUFFER_EVENTS overrides the per-thread ring capacity
// (default 65536 events).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace polardraw::obs {

/// One resolved event argument (snapshot/export form).
struct TraceArgView {
  std::string name;
  double value = 0.0;
};

/// One resolved event (snapshot/export form). Timestamps are microseconds
/// since the tracer's construction epoch (steady clock).
struct TraceEventView {
  std::string name;
  char ph = 'X';       // 'X' complete span, 'i' instant, 's'/'t'/'f' flow
  double ts_us = 0.0;
  double dur_us = 0.0; // meaningful only for 'X'
  std::uint64_t flow_id = 0;  // meaningful only for 's'/'t'/'f'
  std::vector<TraceArgView> args;
};

/// One thread's ring, resolved: stable tid, display name, budget
/// accounting, and the retained events oldest-first.
struct TraceThreadSnapshot {
  int tid = 0;
  std::string thread_name;
  std::size_t capacity = 0;    // ring budget in events
  std::uint64_t recorded = 0;  // total events ever recorded on this ring
  std::uint64_t dropped = 0;   // events evicted to make room (oldest first)
  std::vector<TraceEventView> events;
};

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  /// The process-wide tracer. Enabled at startup when PD_TRACE_DIR is
  /// set; ring capacity from PD_TRACE_BUFFER_EVENTS.
  static Tracer& global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  void set_enabled(bool on);
  /// One relaxed load; callers gate clock reads and arg capture on this.
  [[nodiscard]] bool enabled() const;

  /// Interns an event or argument name; ids are stable for the tracer's
  /// lifetime and shared by all threads. Prefer the TraceName handle.
  int name_id(const std::string& name);

  /// Names the calling thread's track in the export (e.g. "main",
  /// "pool.worker-3"). Registers the thread's ring if needed.
  void set_current_thread_name(const std::string& name);

  // Record calls are no-ops when disabled. Args with name id < 0 are
  // omitted. `complete` records an 'X' span from caller-supplied
  // timestamps so a site that already read the clock (ScopedSpan, the
  // harness stage timers) never reads it twice.
  void complete(int name, Clock::time_point begin, Clock::time_point end,
                int a0_name = -1, double a0 = 0.0,
                int a1_name = -1, double a1 = 0.0);
  void instant(int name, int a0_name = -1, double a0 = 0.0,
               int a1_name = -1, double a1 = 0.0);
  void instant_at(int name, Clock::time_point ts,
                  int a0_name = -1, double a0 = 0.0,
                  int a1_name = -1, double a1 = 0.0);

  /// Records a causal flow event (DESIGN.md section 17): Chrome phases
  /// 's' (start), 't' (step), 'f' (finish). Perfetto draws an arrow
  /// through every event sharing (name, id) in phase order, linking one
  /// report's journey across thread tracks. All polardraw flow events
  /// share one name ("report.flow") with the pipeline stage carried as an
  /// arg, so `flow_id` alone identifies the chain.
  void flow(char ph, int name, std::uint64_t flow_id,
            int a0_name = -1, double a0 = 0.0,
            int a1_name = -1, double a1 = 0.0);

  /// Per-thread ring budget. set_ring_capacity applies to rings created
  /// afterwards; reset() re-applies it to live rings (quiescence
  /// required). Values are clamped to [16, 1 << 22].
  void set_ring_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t ring_capacity() const;

  /// Resolved view of every ring (live and retired), in tid order.
  /// Quiescence required (see file top).
  [[nodiscard]] std::vector<TraceThreadSnapshot> snapshot() const;
  /// Total events evicted across all rings since the last reset(). Unlike
  /// snapshot(), safe to call while recording is in flight (the per-ring
  /// counters are relaxed atomics) -- statusz reads this live.
  [[nodiscard]] std::uint64_t dropped_events() const;
  /// Clears all rings and drop counts; interned names and thread names
  /// survive. Quiescence required.
  void reset();

  /// Writes the Chrome trace-event JSON document: thread_name metadata
  /// ('M') events plus every retained event, loadable in Perfetto and
  /// parseable by tools/benchjson. Quiescence required.
  void write_chrome_trace(std::ostream& os) const;

  // Implementation detail, public only so the thread-local ring holder in
  // tracer.cc can name its owning tracer.
  struct Impl;

 private:
  Impl* impl_;
};

/// Interned-name handle; cheap to copy, safe in function-local statics.
class TraceName {
 public:
  explicit TraceName(const std::string& name)
      : id_(Tracer::global().name_id(name)) {}
  [[nodiscard]] int id() const { return id_; }

 private:
  int id_;
};

// --- Causal report flows (DESIGN.md section 17) ---------------------------
//
// A sampled tag report's journey is one flow chain named "report.flow",
// keyed by the report's reader-assigned serial and annotated with the
// pipeline stage it passed through. Loading TRACE_*.json in Perfetto and
// clicking any link in the chain follows the report Gen2 slot -> reader
// report -> associator window -> server submit -> decoder commit across
// thread tracks.

/// Pipeline stage carried as the "stage" arg on report.flow events.
enum class FlowStage : int {
  kSlot = 0,    // Gen2 slot delivered a read
  kReport = 1,  // reader emitted the TagReport
  kWindow = 2,  // associator closed the observation window
  kSubmit = 3,  // server accepted the observation into a mailbox
  kCommit = 4,  // decoder committed the position
};

/// Flow sampling period: a chain is recorded iff its report serial is a
/// positive multiple of this (serial 0 = unassigned, never sampled).
/// PD_FLOW_SAMPLE overrides the default of 64.
[[nodiscard]] std::uint64_t flow_sample_period();
[[nodiscard]] bool flow_sampled(std::uint64_t serial);

/// Records one link of a sampled report chain on the calling thread's
/// track: `ph` is 's' (first link), 't' (step) or 'f' (final link).
/// No-op when tracing is disabled or `serial` is unsampled, so call
/// sites need no gating of their own.
void record_report_flow(char ph, std::uint64_t serial, FlowStage stage);

}  // namespace polardraw::obs
