// Streaming and batch statistics used by the evaluation harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace polardraw {

/// Welford-style streaming mean / variance accumulator.
class RunningStats {
 public:
  void push(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Population variance (0 when fewer than two samples).
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; `p` in [0, 100].
/// Sorts a copy; fine for evaluation-sized vectors.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Median convenience wrapper.
[[nodiscard]] inline double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

/// Arithmetic mean (0 for an empty vector).
[[nodiscard]] double mean_of(const std::vector<double>& values);

/// Empirical CDF evaluated at the sorted sample points.
/// Returns pairs (value, cumulative fraction) suitable for plotting.
[[nodiscard]] std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> values);

}  // namespace polardraw
