// Small fixed-dimension vector types used throughout the PolarDraw codebase.
//
// These are deliberately minimal value types (no SIMD, no expression
// templates): every hot loop in this project is dominated by trigonometry
// and table lookups, not by vector arithmetic.
#pragma once

#include <cmath>
#include <iosfwd>

namespace polardraw {

/// 2-D vector in whiteboard coordinates (meters unless stated otherwise).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(const Vec2& o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(const Vec2& o) { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double s) { x *= s; y *= s; return *this; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }

  constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product (signed parallelogram area).
  constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double norm() const { return std::sqrt(x * x + y * y); }
  constexpr double norm_sq() const { return x * x + y * y; }
  double dist(const Vec2& o) const { return (*this - o).norm(); }

  /// Unit vector in the same direction; returns {0,0} for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Counter-clockwise rotation by `rad` radians.
  Vec2 rotated(double rad) const {
    const double c = std::cos(rad), s = std::sin(rad);
    return {c * x - s * y, s * x + c * y};
  }
  /// Angle from the +X axis, in (-pi, pi].
  double angle() const { return std::atan2(y, x); }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

/// 3-D vector. Board plane is X-Y; +Z points from the board toward the
/// reader antennas (out of the board, toward the writer).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}
  constexpr Vec3(const Vec2& v, double z_) : x(v.x), y(v.y), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(x * x + y * y + z * z); }
  constexpr double norm_sq() const { return x * x + y * y + z * z; }
  double dist(const Vec3& o) const { return (*this - o).norm(); }

  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
  constexpr Vec2 xy() const { return {x, y}; }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

std::ostream& operator<<(std::ostream& os, const Vec2& v);
std::ostream& operator<<(std::ostream& os, const Vec3& v);

}  // namespace polardraw
