// Lightweight fixed-width console table and CSV writers for the
// experiment harness output (paper-style tables and figure series).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace polardraw {

/// Accumulates rows of strings and prints them with aligned columns.
///
///   Table t({"Distance (cm)", "Accuracy (%)"});
///   t.add_row({"20", "77"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats arithmetic values with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 2);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }

  void print(std::ostream& os) const;
  /// Writes header + rows as RFC-4180-ish CSV (no quoting of embedded commas;
  /// cell text in this project never contains commas).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for Table cells).
std::string fmt(double value, int precision = 2);

/// Renders a trajectory (or any 2-D point series) as a coarse ASCII plot,
/// used by the qualitative figure benches (Fig. 2, Fig. 20).
std::string ascii_plot(const std::vector<std::pair<double, double>>& points,
                       int width = 64, int height = 20, char mark = '*');

}  // namespace polardraw
