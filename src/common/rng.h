// Deterministic random number generation.
//
// Every stochastic component in the simulator (noise, user styles, scatterer
// motion) draws from an explicitly-seeded Rng so that experiments are exactly
// reproducible run-to-run. Components never construct their own engines from
// entropy; seeds always flow down from the experiment harness.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace polardraw {

/// Thin wrapper over a 64-bit Mersenne Twister with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean / standard deviation.
  double gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Bernoulli draw.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially-distributed draw with the given rate (1/mean).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Picks a uniformly random element index for a container of size n.
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Derives an independent child generator; use to give each subsystem its
  /// own stream so adding draws in one does not perturb another.
  Rng fork() {
    return Rng(static_cast<std::uint64_t>(engine_()) ^ 0xD1B54A32D192ED03ull);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace polardraw
