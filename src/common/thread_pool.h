// A small fixed-size thread pool with a parallel_for-style map.
//
// The evaluation harness runs hundreds of independent trials per figure;
// each is CPU-bound and embarrassingly parallel. This pool keeps a fixed
// set of workers alive across batches (no per-batch thread spawn cost) and
// hands out loop indices through a shared atomic counter, so work is
// self-balancing without any stealing machinery. Determinism is the
// caller's job: write results into a slot indexed by the loop variable and
// aggregate in index order after parallel_for returns.
//
// Exceptions thrown by the body are captured (first one wins), the batch
// is drained, and the exception is rethrown on the calling thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "obs/trace.h"

namespace polardraw {

class ThreadPool {
 public:
  /// Creates `n_threads` workers; values < 1 are clamped to 1. A pool of
  /// size 1 runs every batch inline on the calling thread (no workers).
  explicit ThreadPool(int n_threads) : size_(n_threads < 1 ? 1 : n_threads) {
    for (int i = 1; i < size_; ++i) {
      workers_.emplace_back([this, i] {
        // Name this worker's trace track before any batch runs --
        // unconditionally, so a tracer enabled mid-run (live statusz
        // sessions, tests toggling PD_TRACE_DIR-less tracing) still shows
        // "pool.worker-i" instead of the anonymous fallback.
        obs::Tracer::global().set_current_thread_name("pool.worker-" +
                                                      std::to_string(i));
        worker_loop();
      });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      pd::MutexLock lock(mu_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  int size() const { return size_; }

  /// Runs body(i) for every i in [0, n), spread over the pool plus the
  /// calling thread, and blocks until all n calls finished. Indices are
  /// claimed through an atomic counter, so any thread may run any index;
  /// the first exception thrown by the body is rethrown here after the
  /// batch drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    static const obs::SpanSite batch_site("pool.parallel_for");
    static const obs::TraceName arg_n("n");
    static const obs::TraceName arg_workers("workers");
    obs::ScopedSpan batch_span(batch_site);
    batch_span.arg(arg_n, static_cast<double>(n));
    batch_span.arg(arg_workers, static_cast<double>(size_));
    if (size_ == 1 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    {
      pd::MutexLock lock(mu_);
      body_ = &body;
      batch_end_ = n;
      next_.store(0, std::memory_order_relaxed);
      workers_active_ = static_cast<int>(workers_.size());
      error_ = nullptr;
      ++generation_;
      // Publish the enqueue timestamp so each worker can trace its
      // enqueue -> first-claim latency. The clock is read only when a
      // trace will consume it.
      trace_batch_ = obs::Tracer::global().enabled();
      if (trace_batch_) batch_publish_ = obs::Tracer::Clock::now();
    }
    work_ready_.notify_all();
    run_batch();  // the calling thread works too
    pd::MutexLock lock(mu_);
    while (workers_active_ != 0) batch_done_.wait(lock.native_lock());
    body_ = nullptr;
    if (error_) std::rethrow_exception(error_);
  }

  /// Worker count from the POLARDRAW_THREADS environment variable, or the
  /// hardware concurrency when unset/invalid (minimum 1).
  static int default_thread_count() {
    if (const char* env = std::getenv("POLARDRAW_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }

 private:
  void run_batch() {
    try {
      for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch_end_) break;
        (*body_)(i);
      }
    } catch (...) {
      pd::MutexLock lock(mu_);
      if (!error_) error_ = std::current_exception();
      // Stop claiming further indices so the batch drains quickly.
      next_.store(batch_end_, std::memory_order_relaxed);
    }
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      bool trace_batch = false;
      obs::Tracer::Clock::time_point publish{};
      {
        pd::MutexLock lock(mu_);
        while (!stop_ && generation_ == seen_generation)
          work_ready_.wait(lock.native_lock());
        if (stop_) return;
        seen_generation = generation_;
        trace_batch = trace_batch_;
        publish = batch_publish_;
      }
      if (trace_batch) {
        // Enqueue -> start latency for this worker, as an instant event;
        // the single clock read stamps the event and yields the latency.
        static const obs::TraceName start_name("pool.task_start");
        static const obs::TraceName arg_latency("enqueue_to_start_us");
        const auto now = obs::Tracer::Clock::now();
        obs::Tracer::global().instant_at(
            start_name.id(), now, arg_latency.id(),
            std::chrono::duration<double, std::micro>(now - publish).count());
      }
      {
        static const obs::SpanSite run_site("pool.worker_batch");
        const obs::ScopedSpan run_span(run_site);
        run_batch();
      }
      {
        pd::MutexLock lock(mu_);
        if (--workers_active_ == 0) batch_done_.notify_all();
      }
    }
  }

  const int size_;
  std::vector<std::thread> workers_;

  pd::Mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  bool stop_ PD_GUARDED_BY(mu_) = false;
  std::uint64_t generation_ PD_GUARDED_BY(mu_) = 0;
  int workers_active_ PD_GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ PD_GUARDED_BY(mu_);

  // body_ and batch_end_ are deliberately outside the capability: they are
  // written under mu_ in parallel_for, then read lock-free in run_batch.
  // The generation handshake publishes them -- a worker only enters
  // run_batch after observing the new generation_ under mu_, and the caller
  // only clears body_ after workers_active_ drained to zero under mu_.
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t batch_end_ = 0;
  std::atomic<std::size_t> next_{0};
  bool trace_batch_ PD_GUARDED_BY(mu_) = false;  // per batch
  obs::Tracer::Clock::time_point batch_publish_ PD_GUARDED_BY(mu_){};
};

}  // namespace polardraw
