// Angle arithmetic helpers.
//
// RFID phase measurements live on the circle [0, 2*pi); everything that
// touches them (unwrapping, differencing, spurious-jump detection) must be
// careful about wrap-around. These helpers centralize that logic.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace polardraw {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

[[nodiscard]] constexpr double deg2rad(double deg) { return deg * kPi / 180.0; }
[[nodiscard]] constexpr double rad2deg(double rad) { return rad * 180.0 / kPi; }

/// Wraps an angle to [0, 2*pi).
[[nodiscard]] inline double wrap_2pi(double rad) {
  double r = std::fmod(rad, kTwoPi);
  if (r < 0.0) r += kTwoPi;
  return r;
}

/// Wraps an angle to (-pi, pi].
[[nodiscard]] inline double wrap_pi(double rad) {
  double r = wrap_2pi(rad);
  if (r > kPi) r -= kTwoPi;
  return r;
}

/// Folds an angle to [0, pi): the canonical representative of a projected
/// *line* angle, which is only meaningful modulo pi (a line at theta and at
/// theta + pi is the same line). Used for board-projected pen rotation and
/// polarization axes.
[[nodiscard]] inline double fold_pi(double rad) {
  double r = std::fmod(rad, kPi);
  if (r < 0.0) r += kPi;
  return r;
}

/// Smallest signed difference a - b on the circle, in (-pi, pi].
[[nodiscard]] inline double angle_diff(double a, double b) { return wrap_pi(a - b); }

/// Absolute circular distance between two angles, in [0, pi].
[[nodiscard]] inline double angle_dist(double a, double b) { return std::fabs(angle_diff(a, b)); }

/// Unwraps a phase series in place: successive samples are shifted by
/// multiples of 2*pi so that no step exceeds pi in magnitude.
/// Mirrors numpy.unwrap with default parameters.
void unwrap_inplace(std::vector<double>& phases);

/// Returns an unwrapped copy of `phases`.
[[nodiscard]] std::vector<double> unwrapped(std::vector<double> phases);

/// Incremental unwrapper for streaming phase data.
///
/// Usage:
///   PhaseUnwrapper u;
///   double continuous = u.push(raw_phase);   // raw in [0, 2*pi)
class PhaseUnwrapper {
 public:
  /// Feeds the next wrapped sample; returns the unwrapped (continuous) value.
  double push(double wrapped_phase_rad) {
    if (!has_prev_) {
      has_prev_ = true;
      prev_wrapped_ = wrapped_phase_rad;
      unwrapped_ = wrapped_phase_rad;
      return unwrapped_;
    }
    unwrapped_ += angle_diff(wrapped_phase_rad, prev_wrapped_);
    prev_wrapped_ = wrapped_phase_rad;
    return unwrapped_;
  }

  /// Feeds the next wrapped sample taken at time `t_s`. Unwrapping
  /// differences *consecutive* samples, so it assumes monotone sample
  /// time; a duplicated or out-of-order report (exactly what interleaved
  /// multi-session readers produce) would difference two phases whose true
  /// order is unknown and shift the accumulated branch by a bogus step.
  /// Such a sample (t_s <= the previous accepted sample's time) is
  /// rejected: the unwrapped value and the comparison reference stay
  /// unchanged, and nonmonotone_rejected() ticks. The first sample after
  /// construction or reset() accepts any time.
  double push_at(double wrapped_phase_rad, double t_s) {
    if (has_prev_ && t_s <= prev_t_s_) {
      ++n_nonmonotone_;
      return unwrapped_;
    }
    prev_t_s_ = t_s;
    return push(wrapped_phase_rad);
  }

  void reset() { has_prev_ = false; unwrapped_ = 0.0; }
  [[nodiscard]] bool has_value() const { return has_prev_; }
  [[nodiscard]] double value() const { return unwrapped_; }
  /// Samples rejected by push_at() for non-monotone time; survives reset()
  /// so a caller can report a whole stream's total.
  [[nodiscard]] std::uint64_t nonmonotone_rejected() const {
    return n_nonmonotone_;
  }

 private:
  bool has_prev_ = false;
  double prev_wrapped_ = 0.0;
  double prev_t_s_ = 0.0;
  double unwrapped_ = 0.0;
  std::uint64_t n_nonmonotone_ = 0;
};

}  // namespace polardraw
