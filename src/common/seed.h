// Counter-based per-trial seed derivation.
//
// Sweeps over many independent trials must give trial k the same seed no
// matter which order the trials execute in (forward, reversed, sharded
// across threads, or alone): the seed is a pure function of the sweep's
// base seed and the trial index, never of mutable generator state.
// SplitMix64 (Steele et al., "Fast splittable pseudorandom number
// generators") is the standard finalizer for this: its output function is
// a bijection of the 64-bit counter, so distinct indices always yield
// distinct, well-mixed seeds.
#pragma once

#include <cstdint>

namespace polardraw {

/// SplitMix64 finalizer: bijective avalanche mix of a 64-bit value.
constexpr std::uint64_t splitmix64_mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Seed for trial `index` of a sweep with the given base seed. Equal
/// (base, index) pairs always give the same seed; adjacent indices give
/// statistically independent ones. This is the SplitMix64 stream seeded
/// at `base`, read at position `index` in O(1).
constexpr std::uint64_t splitmix64(std::uint64_t base, std::uint64_t index) {
  return splitmix64_mix(base + (index + 1) * 0x9E3779B97F4A7C15ull);
}

}  // namespace polardraw
