// Clang Thread Safety Analysis annotations and capability-annotated mutex
// wrappers (DESIGN.md section 15).
//
// The macros expand to Clang's thread-safety attributes under Clang and to
// nothing elsewhere, so GCC builds see plain std::mutex semantics while the
// clang CI jobs compile with -Wthread-safety -Wthread-safety-beta -Werror
// and reject any unannotated access to guarded state at compile time.
//
// Conventions (enforced by polarlint R9):
//   - every mutex member is a pd::Mutex, never a raw std::mutex;
//   - every pd::Mutex is referenced by at least one PD_GUARDED_BY /
//     PD_REQUIRES / PD_ACQUIRE annotation -- a capability that guards
//     nothing is a bug in the annotation, not the code;
//   - state intentionally outside the lock (owner-thread data, fields
//     published by a generation handshake) stays unannotated with a comment
//     saying why.
#pragma once

#include <mutex>

#if defined(__clang__)
#define PD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PD_THREAD_ANNOTATION(x)
#endif

// Type attributes.
#define PD_CAPABILITY(name) PD_THREAD_ANNOTATION(capability(name))
#define PD_SCOPED_CAPABILITY PD_THREAD_ANNOTATION(scoped_lockable)

// Data-member attributes.
#define PD_GUARDED_BY(mu) PD_THREAD_ANNOTATION(guarded_by(mu))
#define PD_PT_GUARDED_BY(mu) PD_THREAD_ANNOTATION(pt_guarded_by(mu))

// Function attributes.
#define PD_REQUIRES(...) \
  PD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PD_ACQUIRE(...) \
  PD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PD_RELEASE(...) \
  PD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PD_TRY_ACQUIRE(...) \
  PD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PD_EXCLUDES(...) PD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PD_ASSERT_CAPABILITY(x) PD_THREAD_ANNOTATION(assert_capability(x))
#define PD_RETURN_CAPABILITY(x) PD_THREAD_ANNOTATION(lock_returned(x))
#define PD_NO_THREAD_SAFETY_ANALYSIS \
  PD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pd {

/// std::mutex carrying the "mutex" capability, so the analysis can prove
/// which locks are held at each guarded access.
class PD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PD_ACQUIRE() { mu_.lock(); }
  void unlock() PD_RELEASE() { mu_.unlock(); }
  bool try_lock() PD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Escape hatch for std::condition_variable, which needs the native
  /// std::mutex. Waiting re-acquires the same capability, so callers pair
  /// this with MutexLock::native_lock() inside an already-annotated scope.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over pd::Mutex (RAII std::unique_lock underneath), annotated
/// so the capability is held for exactly the scope of the object.
class PD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PD_ACQUIRE(mu) : lock_(mu.native_handle()) {}
  ~MutexLock() PD_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying lock, for std::condition_variable::wait. The wait
  /// releases and re-acquires the same mutex, so the capability held by
  /// this scope stays truthful at every point the waiting code can observe.
  std::unique_lock<std::mutex>& native_lock() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace pd
