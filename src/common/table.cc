#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace polardraw {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      os << (c + 1 < header_.size() ? " | " : " |\n");
    }
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string ascii_plot(const std::vector<std::pair<double, double>>& points,
                       int width, int height, char mark) {
  if (points.empty() || width < 2 || height < 2) return {};
  double xmin = points[0].first, xmax = xmin;
  double ymin = points[0].second, ymax = ymin;
  for (const auto& [x, y] : points) {
    xmin = std::min(xmin, x); xmax = std::max(xmax, x);
    ymin = std::min(ymin, y); ymax = std::max(ymax, y);
  }
  const double xr = std::max(xmax - xmin, 1e-9);
  const double yr = std::max(ymax - ymin, 1e-9);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const auto& [x, y] : points) {
    const int col = static_cast<int>(std::lround((x - xmin) / xr * (width - 1)));
    // Rows render top-down, so flip y.
    const int row = static_cast<int>(std::lround((ymax - y) / yr * (height - 1)));
    grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
  }
  std::string out;
  for (const auto& line : grid) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace polardraw
