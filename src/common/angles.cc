#include "common/angles.h"

namespace polardraw {

void unwrap_inplace(std::vector<double>& phases) {
  if (phases.size() < 2) return;
  double offset = 0.0;
  double prev = phases[0];
  for (std::size_t i = 1; i < phases.size(); ++i) {
    const double raw = phases[i];
    const double d = raw - prev;
    if (d > kPi) {
      offset -= kTwoPi;
    } else if (d < -kPi) {
      offset += kTwoPi;
    }
    prev = raw;
    phases[i] = raw + offset;
  }
}

std::vector<double> unwrapped(std::vector<double> phases) {
  unwrap_inplace(phases);
  return phases;
}

}  // namespace polardraw
