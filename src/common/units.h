// Power / amplitude unit conversions used by the RF layer.
//
// All dB math in the repo routes through these helpers (polarlint rule R2):
// powers are dBm / mW, ratios are dB, field amplitudes use the 20-per-decade
// convention.
#pragma once

#include <cmath>

namespace polardraw {

/// Converts milliwatts to dBm. Clamped far below thermal noise for 0 input
/// so callers never see -inf propagate through arithmetic.
[[nodiscard]] inline double mw_to_dbm(double mw) {
  constexpr double kFloorDbm = -150.0;
  if (mw <= 0.0) return kFloorDbm;
  const double dbm = 10.0 * std::log10(mw);
  return dbm < kFloorDbm ? kFloorDbm : dbm;
}

[[nodiscard]] inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Converts a power ratio to decibels (clamped like mw_to_dbm).
[[nodiscard]] inline double ratio_to_db(double ratio) { return mw_to_dbm(ratio); }

[[nodiscard]] inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

/// Converts a *field-amplitude* ratio expressed in dB to linear scale
/// (20 dB per decade, the voltage/E-field convention). Used e.g. to turn a
/// cross-polarization discrimination figure into a leakage amplitude:
/// leak_amp = db_to_amplitude_ratio(-xpd_db).
[[nodiscard]] inline double db_to_amplitude_ratio(double db) {
  return std::pow(10.0, db / 20.0);
}

}  // namespace polardraw
