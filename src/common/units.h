// Power / amplitude unit conversions used by the RF layer.
#pragma once

#include <cmath>

namespace polardraw {

/// Converts milliwatts to dBm. Clamped far below thermal noise for 0 input
/// so callers never see -inf propagate through arithmetic.
inline double mw_to_dbm(double mw) {
  constexpr double kFloorDbm = -150.0;
  if (mw <= 0.0) return kFloorDbm;
  const double dbm = 10.0 * std::log10(mw);
  return dbm < kFloorDbm ? kFloorDbm : dbm;
}

inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Converts a power ratio to decibels (clamped like mw_to_dbm).
inline double ratio_to_db(double ratio) { return mw_to_dbm(ratio); }

inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace polardraw
