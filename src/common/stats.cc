#include "common/stats.h"

#include <cassert>
#include <utility>

namespace polardraw {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> values) {
  std::vector<std::pair<double, double>> cdf;
  if (values.empty()) return cdf;
  std::sort(values.begin(), values.end());
  cdf.reserve(values.size());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    cdf.emplace_back(values[i], static_cast<double>(i + 1) / n);
  }
  return cdf;
}

}  // namespace polardraw
