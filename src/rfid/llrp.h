// Minimal LLRP-style wire framing for tag reports.
//
// The paper's implementation collects tag readings "through the Low Level
// Reader Protocol (LLRP)" from a Java collector into a C# tracker
// (section 4). This module provides the equivalent seam for this library:
// a compact binary framing of TagReport batches, so a reader process and
// a tracker process can be split across a socket or a file exactly the
// way the paper's two halves were. The format follows LLRP's spirit
// (big-endian, type + length framed messages) rather than its full
// schema.
//
// Frame layout (all big-endian):
//   u16 type        (kReportBatch)
//   u32 length      (total frame bytes, header included)
//   u32 count       (number of reports)
//   count * record:
//     u64 timestamp_us
//     u16 antenna_id
//     u32 epc
//     i16 rss_centi_dbm          (RSS * 100, clamped)
//     u16 phase_milli_rad        (phase in [0, 2*pi) * 1000)
//     u16 read_rate_deci_hz
//     u16 channel                (RF hop channel index)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rfid/tag_report.h"

namespace polardraw::rfid::llrp {

inline constexpr std::uint16_t kReportBatch = 0x00F1;

/// Serializes a batch of tag reports into one LLRP-style frame.
std::vector<std::uint8_t> encode_batch(const TagReportStream& reports);

/// Parses one frame. Returns nullopt on malformed input (short buffer,
/// wrong type, inconsistent length). Quantization: timestamps to 1 us,
/// RSS to 0.01 dB, phase to ~1 mrad.
std::optional<TagReportStream> decode_batch(
    const std::vector<std::uint8_t>& frame);

/// Splits a byte stream into complete frames (a TCP reassembly helper):
/// consumes whole frames from the front of `buffer`, returning them and
/// erasing the consumed bytes; partial trailing data stays in the buffer.
std::vector<std::vector<std::uint8_t>> extract_frames(
    std::vector<std::uint8_t>& buffer);

}  // namespace polardraw::rfid::llrp
