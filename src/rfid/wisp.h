// WISP-style sensor-augmented tag (paper section 7, "Scaling to abrupt
// hand motions").
//
// The paper proposes attaching a computational RFID tag with an inertial
// sensor (a WISP) to the pen, so the system can tell when the pen touches
// the whiteboard: pen-down writing drags the tip across the board and
// superimposes a high-frequency friction vibration on the accelerometer,
// while pen-up transit is smooth. This module simulates that
// accelerometer from a synthesized writing trace and provides the
// touch detector built on it.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "handwriting/synthesizer.h"

namespace polardraw::rfid {

/// One accelerometer sample in the tag frame (m/s^2).
struct AccelSample {
  double t_s = 0.0;
  Vec3 accel;
};

struct WispConfig {
  double sample_rate_hz = 100.0;  // WISP-class ADCs run ~100 Hz duty-cycled
  /// Friction vibration amplitude while the moving pen touches the board.
  double friction_rms = 0.8;
  /// Sensor noise floor (all axes).
  double noise_rms = 0.05;
  double gravity = 9.81;
};

/// Simulates the accelerometer stream for a writing trace: gravity (the
/// board plane is vertical, so gravity lies along -Y), low-frequency
/// motion acceleration, and the pen-down friction vibration.
std::vector<AccelSample> simulate_wisp(const handwriting::WritingTrace& trace,
                                       const WispConfig& cfg, Rng& rng);

/// Touch (pen-down) detector: classifies each window of `window_s`
/// seconds by the high-frequency energy of the accelerometer magnitude.
/// Returns one flag per window (true = touching).
std::vector<bool> detect_touch(const std::vector<AccelSample>& accel,
                               double window_s, double threshold = 0.3);

}  // namespace polardraw::rfid
