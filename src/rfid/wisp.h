// WISP-style sensor-augmented tag (paper section 7, "Scaling to abrupt
// hand motions").
//
// The paper proposes attaching a computational RFID tag with an inertial
// sensor (a WISP) to the pen, so the system can tell when the pen touches
// the whiteboard: pen-down writing drags the tip across the board and
// superimposes a high-frequency friction vibration on the accelerometer,
// while pen-up transit is smooth. This module simulates that
// accelerometer from a synthesized writing trace and provides the
// touch detector built on it.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "handwriting/synthesizer.h"

namespace polardraw::rfid {

/// One accelerometer sample in the tag frame (m/s^2).
struct AccelSample {
  double t_s = 0.0;
  Vec3 accel;
};

struct WispConfig {
  double sample_rate_hz = 100.0;  // WISP-class ADCs run ~100 Hz duty-cycled
  /// Friction vibration amplitude while the moving pen touches the board.
  double friction_rms = 0.8;
  /// Sensor noise floor (all axes).
  double noise_rms = 0.05;
  double gravity = 9.81;
};

/// Simulates the accelerometer stream for a writing trace: gravity (the
/// board plane is vertical, so gravity lies along -Y), low-frequency
/// motion acceleration, and the pen-down friction vibration.
std::vector<AccelSample> simulate_wisp(const handwriting::WritingTrace& trace,
                                       const WispConfig& cfg, Rng& rng);

/// Touch (pen-down) detector: classifies each window of `window_s`
/// seconds by the high-frequency energy of the accelerometer magnitude.
/// Returns one flag per window (true = touching).
std::vector<bool> detect_touch(const std::vector<AccelSample>& accel,
                               double window_s, double threshold = 0.3);

/// RF power-harvesting model of a WISP-class computational RFID tag.
///
/// The WISP runs entirely on harvested reader power: below the harvester
/// threshold (~-11 dBm for the WISP 4.x front end) the MCU cannot run at
/// all, and close to the reader it harvests more than it spends and can
/// sample continuously. Between the two the tag duty-cycles: it sleeps to
/// recharge its storage capacitor, and the achievable accelerometer rate
/// scales with the fraction of time it can stay awake.
struct WispPowerConfig {
  /// Minimum incident RF power that wakes the harvester at all.
  double harvest_sensitivity_dbm = -11.0;
  /// Incident power at which harvesting sustains continuous operation.
  double saturation_dbm = -4.0;
  /// Sample rate while awake (matches WispConfig::sample_rate_hz).
  double full_rate_hz = 100.0;
};

/// Fraction of time the tag can afford to run at full rate for the given
/// incident RF power: 0 below the harvest threshold, 1 at or above
/// saturation, linear in dB between (storage-capacitor charge is roughly
/// linear in received power over the WISP's narrow operating range).
double harvest_duty_cycle(double incident_dbm, const WispPowerConfig& cfg);

/// Achievable accelerometer sample rate after duty-cycling.
double effective_sample_rate_hz(double incident_dbm,
                                const WispPowerConfig& cfg);

}  // namespace polardraw::rfid
