// EPC Gen2 backscatter modulation schemes.
//
// Gen2 tags reply with FM0 or Miller-modulated subcarrier encodings
// (M = 2, 4, 8). Longer Miller sequences spread each bit over more
// subcarrier cycles, trading read rate for SNR -- the reader integrates
// more energy per bit, so phase estimates get cleaner in noisy settings.
// The paper's implementation (section 4) round-robins the available
// schemes and keeps the first whose phase variance is at most 0.1 rad^2;
// rfid/reader.cc implements the same selection loop.
#pragma once

#include <array>
#include <string_view>

namespace polardraw::rfid {

enum class Modulation { kFM0, kMiller2, kMiller4, kMiller8 };

inline constexpr std::array<Modulation, 4> kAllModulations = {
    Modulation::kFM0, Modulation::kMiller2, Modulation::kMiller4,
    Modulation::kMiller8};

std::string_view to_string(Modulation m);

/// Subcarrier cycles per bit (Miller M value; 1 for FM0).
int miller_m(Modulation m);

/// Linear SNR gain over FM0 from per-bit energy integration.
/// Each doubling of M buys ~3 dB.
double snr_gain(Modulation m);

/// Relative read-rate factor (reads per second scale) versus FM0: longer
/// symbols slow the air interface down.
double rate_factor(Modulation m);

}  // namespace polardraw::rfid
