// LLRP-style tag report: the tuple a Gen2 reader delivers per successful
// tag read. This is the *only* interface between the physical substrate
// and the tracking algorithms -- exactly as the paper's Java LLRP collector
// hands (timestamp, antenna, RSS, phase) tuples to the C# tracker.
#pragma once

#include <cstdint>
#include <vector>

namespace polardraw::rfid {

struct TagReport {
  double timestamp_s = 0.0;   // reader clock
  int antenna_id = 0;         // 0-based antenna port index
  std::uint32_t epc = 0;      // tag identity (EPC suffix)
  double rss_dbm = -150.0;    // received signal strength
  double phase_rad = 0.0;     // backscatter phase, [0, 2*pi)
  double read_rate_hz = 0.0;  // diagnostic: current per-antenna rate
  int channel = 0;            // RF channel index (frequency hopping)
  /// Reader-assigned delivery serial, 1-based in delivery order across
  /// the whole inventory (0 = unassigned). Purely observational: the
  /// causal flow tracer (DESIGN.md section 17) samples chains by serial;
  /// no tracking algorithm may read it.
  std::uint64_t serial = 0;
};

using TagReportStream = std::vector<TagReport>;

}  // namespace polardraw::rfid
