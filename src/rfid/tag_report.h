// LLRP-style tag report: the tuple a Gen2 reader delivers per successful
// tag read. This is the *only* interface between the physical substrate
// and the tracking algorithms -- exactly as the paper's Java LLRP collector
// hands (timestamp, antenna, RSS, phase) tuples to the C# tracker.
#pragma once

#include <cstdint>
#include <vector>

namespace polardraw::rfid {

struct TagReport {
  double timestamp_s = 0.0;   // reader clock
  int antenna_id = 0;         // 0-based antenna port index
  std::uint32_t epc = 0;      // tag identity (EPC suffix)
  double rss_dbm = -150.0;    // received signal strength
  double phase_rad = 0.0;     // backscatter phase, [0, 2*pi)
  double read_rate_hz = 0.0;  // diagnostic: current per-antenna rate
  int channel = 0;            // RF channel index (frequency hopping)
};

using TagReportStream = std::vector<TagReport>;

}  // namespace polardraw::rfid
