// EPC Gen2 reader simulation.
//
// Models the parts of an ImpinJ Speedway-class reader that matter for
// PolarDraw:
//   * an inventory scheduler that round-robins antenna ports and produces
//     ~100 reads/s aggregate (the paper's observed rate);
//   * per-read RSS and phase measurements derived from the multipath
//     channel plus receiver noise;
//   * phase quantization (the Speedway reports phase in 1/4096 turns) and a
//     stable per-port phase offset (cable lengths, RF chains);
//   * tag activation: reads fail when the forward power at the chip is
//     below sensitivity -- deep polarization mismatch silences the tag;
//   * modulation auto-selection per the paper's section 4: round-robin the
//     schemes and keep the first whose phase variance is <= 0.1 rad^2.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "channel/multipath.h"
#include "channel/noise.h"
#include "common/rng.h"
#include "em/antenna.h"
#include "em/propagation.h"
#include "em/tag.h"
#include "rfid/gen2.h"
#include "rfid/modulation.h"
#include "rfid/tag_report.h"

namespace polardraw::rfid {

struct ReaderConfig {
  em::TxConfig tx;
  channel::NoiseConfig noise;

  /// Aggregate interrogation rate across all antenna ports, Hz.
  double aggregate_read_rate_hz = 100.0;

  /// Phase reporting resolution in bits (Speedway: 12 -> 4096 steps/turn).
  int phase_quantization_bits = 12;

  /// If true, run the paper's modulation auto-selection before streaming;
  /// otherwise use `fixed_modulation`.
  bool auto_select_modulation = true;
  Modulation fixed_modulation = Modulation::kMiller4;

  /// Phase-variance acceptance threshold for auto-selection, rad^2.
  double phase_variance_threshold_rad2 = 0.1;

  /// Number of probe reads per scheme during auto-selection.
  int probe_reads = 25;

  /// FCC frequency hopping: readers in the 902-928 MHz band must hop
  /// among 50 channels (max 0.4 s dwell). Hopping changes the wavelength
  /// slightly and, more importantly, the per-channel RF-chain phase
  /// offset -- phase comparisons across a hop boundary are meaningless
  /// without per-channel calibration. Off by default (the paper operates
  /// single-channel); bench/tests exercise it.
  bool frequency_hopping = false;
  int hop_channels = 50;
  double hop_dwell_s = 0.4;

  /// Slot-level Gen2 MAC parameters for the multi-tag inventory. The air
  /// timing (slot_s/read_s) is rescaled at inventory time so a lone,
  /// fully-adapted tag reads at `aggregate_read_rate_hz * rate_factor(m)`
  /// -- the modulation keeps its rate semantics, and the Gen2 knobs only
  /// shape how that budget divides under contention.
  Gen2Config gen2;
};

/// Callback that positions/orients the tag at a given simulation time.
/// The simulator supplies this from the handwriting synthesizer.
using TagStateFn = std::function<em::Tag(double t_s)>;

/// A tag population entry for multi-tag inventory (the paper's section 7
/// multi-user extension): an EPC identity plus its state function.
/// `t_enter_s`/`t_leave_s` bound the tag's presence in the interrogation
/// zone -- outside them it neither responds nor contends for slots, so
/// pens can arrive and leave mid-run and the Q adaptation re-converges to
/// the live population.
struct TagEntry {
  std::uint32_t epc = 0;
  TagStateFn state;
  double t_enter_s = 0.0;
  double t_leave_s = 1e300;
};

class Reader {
 public:
  Reader(ReaderConfig config, std::vector<em::ReaderAntenna> antennas,
         channel::MultipathChannel channel, Rng rng);

  /// Runs the paper's modulation-selection loop against a static tag pose
  /// (the tag at t = 0). Returns the selected scheme; also applies it.
  Modulation select_modulation(const TagStateFn& tag_at);

  /// Interrogates the tag from `t_begin` to `t_end`, producing the report
  /// stream. Ports are serviced round-robin; reads that fail activation
  /// are dropped (producing gaps, as real readers do).
  TagReportStream inventory(const TagStateFn& tag_at, double t_begin,
                            double t_end);

  /// Multi-tag inventory (section 7, "Extending to multi-user case"),
  /// MAC-arbitrated at slot level: the population runs through
  /// `Gen2Inventory` rounds, so collisions burn air time without yielding
  /// reads, per-tag read rates emerge from the Q adaptation rather than a
  /// fixed budget split, and tags outside their presence window drop out
  /// of the contention entirely. Each report carries its tag's EPC for
  /// de-multiplexing and its tag's cumulative observed read rate in
  /// `read_rate_hz`. Deterministic: slot draws are counter-based
  /// (splitmix64 of a per-call seed, round and tag index).
  TagReportStream inventory_population(const std::vector<TagEntry>& tags,
                                       double t_begin, double t_end);

  /// Single interrogation attempt on one antenna port at time t.
  /// Returns nullopt when the tag fails to activate or decode fails.
  std::optional<TagReport> interrogate(int antenna_id, const em::Tag& tag,
                                       double t_s);

  const std::vector<em::ReaderAntenna>& antennas() const { return antennas_; }
  const ReaderConfig& config() const { return config_; }
  Modulation active_modulation() const { return modulation_; }
  channel::MultipathChannel& channel() { return channel_; }
  const channel::MultipathChannel& channel() const { return channel_; }

  /// Per-port RF-chain phase offsets (radians). Exposed for tests; real
  /// deployments calibrate these out, and the tracking algorithms only use
  /// phase *differences* in time, so a constant offset is harmless.
  const std::vector<double>& port_phase_offsets() const {
    return port_phase_offsets_;
  }

  /// Stable RF-chain phase offset of a hop channel (radians): the same
  /// channel always gets the same offset, in any dwell, so per-channel
  /// calibration (core::PhaseCalibration::channel_offsets_rad) can subtract
  /// it and phase comparisons may continue across a calibrated hop.
  static double hop_channel_offset_rad(int channel);

 private:
  double quantize_phase(double phase_rad) const;

  ReaderConfig config_;
  std::vector<em::ReaderAntenna> antennas_;
  channel::MultipathChannel channel_;
  Rng rng_;
  Modulation modulation_;
  std::vector<double> port_phase_offsets_;
  /// Next TagReport::serial; counts delivered reports across all
  /// inventory calls on this reader (1-based, observational only).
  std::uint64_t next_serial_ = 1;
};

}  // namespace polardraw::rfid
