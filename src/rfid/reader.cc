#include "rfid/reader.h"

#include <cmath>

#include "common/angles.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace polardraw::rfid {

Reader::Reader(ReaderConfig config, std::vector<em::ReaderAntenna> antennas,
               channel::MultipathChannel channel, Rng rng)
    : config_(std::move(config)),
      antennas_(std::move(antennas)),
      channel_(std::move(channel)),
      rng_(rng),
      modulation_(config_.fixed_modulation) {
  // Stable per-port RF-chain offsets, drawn once at construction (they model
  // cable length and chain delay, which do not change during a session).
  port_phase_offsets_.reserve(antennas_.size());
  for (std::size_t i = 0; i < antennas_.size(); ++i) {
    port_phase_offsets_.push_back(rng_.uniform(0.0, kTwoPi));
  }
}

double Reader::hop_channel_offset_rad(int channel) {
  // A function of the channel index only (cable + chain group delay at
  // that carrier): stable across dwells, distinct between channels (the
  // multiplier is an irrational-ish angle, so no two of the 50 FCC
  // channels alias to the same offset).
  return wrap_2pi(static_cast<double>(channel) * 2.399963);
}

double Reader::quantize_phase(double phase_rad) const {
  const double steps = std::pow(2.0, config_.phase_quantization_bits);
  const double q = std::round(wrap_2pi(phase_rad) / kTwoPi * steps);
  return wrap_2pi(q / steps * kTwoPi);
}

std::optional<TagReport> Reader::interrogate(int antenna_id, const em::Tag& tag,
                                             double t_s) {
  const auto& antenna = antennas_.at(static_cast<std::size_t>(antenna_id));

  // FCC frequency hopping: a pseudo-random channel per dwell interval
  // shifts the carrier within 902-928 MHz and applies a stable per-channel
  // RF-chain phase offset.
  em::TxConfig tx = config_.tx;
  int hop_channel = 0;
  double channel_phase_offset = 0.0;
  if (config_.frequency_hopping && config_.hop_channels > 1) {
    const auto dwell =
        static_cast<std::uint64_t>(t_s / std::max(config_.hop_dwell_s, 1e-3));
    // Deterministic per-dwell channel from a hash of the dwell index.
    const std::uint64_t h =
        dwell * 6364136223846793005ull + 1442695040888963407ull;
    hop_channel = static_cast<int>(h % static_cast<std::uint64_t>(
                                           config_.hop_channels));
    tx.frequency_hz =
        902.75e6 + 0.5e6 * static_cast<double>(hop_channel);  // 500 kHz grid
    channel_phase_offset = hop_channel_offset_rad(hop_channel);
  }

  const channel::ChannelSample ch = channel_.evaluate(antenna, tag, tx, t_s);

  // Activation check: the chip needs enough harvested power to respond.
  if (ch.tag_power_dbm < tag.sensitivity_dbm) return std::nullopt;

  channel::NoiseConfig noise = config_.noise;
  noise.modulation_snr_gain = snr_gain(modulation_);
  const channel::NoisyObservation obs =
      channel::observe(ch.response, noise, rng_);

  // Decode failure at very low SNR: probability of a CRC pass falls off
  // steeply once the backscatter sideband nears the noise floor.
  const double decode_margin_db = obs.snr_db;  // sideband SNR
  if (decode_margin_db < 3.0) {
    const double p_fail = std::min(1.0, (3.0 - decode_margin_db) / 10.0);
    if (rng_.chance(p_fail)) return std::nullopt;
  }

  TagReport r;
  r.timestamp_s = t_s;
  r.antenna_id = antenna_id;
  r.epc = tag.sensitivity_dbm < 0 ? 0xAD227Bu : 0u;  // fixed demo EPC
  r.rss_dbm = obs.rss_dbm;
  r.channel = hop_channel;
  r.phase_rad = quantize_phase(
      obs.phase_rad + channel_phase_offset +
      port_phase_offsets_[static_cast<std::size_t>(antenna_id)]);
  return r;
}

Modulation Reader::select_modulation(const TagStateFn& tag_at) {
  if (!config_.auto_select_modulation) {
    modulation_ = config_.fixed_modulation;
    return modulation_;
  }
  // Round-robin schemes in rate order (fastest first), keep the first whose
  // phase variance meets the paper's 0.1 rad^2 threshold.
  for (Modulation m : kAllModulations) {
    modulation_ = m;
    RunningStats stats;
    const em::Tag tag = tag_at(0.0);
    for (int i = 0; i < config_.probe_reads; ++i) {
      const double t = static_cast<double>(i) /
                       (config_.aggregate_read_rate_hz * rate_factor(m));
      if (auto rep = interrogate(0, tag, t)) {
        stats.push(angle_diff(rep->phase_rad, 0.0));
      }
    }
    if (stats.count() >= static_cast<std::size_t>(config_.probe_reads) / 2 &&
        stats.variance() <= config_.phase_variance_threshold_rad2) {
      return modulation_;
    }
  }
  // Nothing met the bar; fall back to the most robust scheme.
  modulation_ = Modulation::kMiller8;
  return modulation_;
}

namespace {
// Inventory instrumentation, shared by the single-tag and population paths.
const obs::SpanSite& inventory_span_site() {
  static const obs::SpanSite s("rfid.inventory");
  return s;
}
void count_inventory(std::size_t attempts, std::size_t delivered) {
  static const obs::Counter interrogations("rfid.interrogations");
  static const obs::Counter reports("rfid.reports");
  interrogations.add(attempts);
  reports.add(delivered);
}
}  // namespace

TagReportStream Reader::inventory_population(const std::vector<TagEntry>& tags,
                                              double t_begin, double t_end) {
  const obs::ScopedSpan span(inventory_span_site());
  static const obs::Counter rounds_counter("rfid.gen2.rounds");
  static const obs::Counter singles_counter("rfid.gen2.singletons");
  static const obs::Counter collisions_counter("rfid.gen2.collisions");
  static const obs::Counter empties_counter("rfid.gen2.empties");
  TagReportStream out;
  if (tags.empty() || t_end <= t_begin) return out;
  const double rate =
      config_.aggregate_read_rate_hz * rate_factor(modulation_);
  if (rate <= 0.0) return out;

  // Rescale the Gen2 air timing so a lone, fully-adapted tag (one slot
  // per round, every slot a read) hits the configured aggregate rate;
  // contention then eats into that budget through collisions and empties
  // instead of dividing it evenly.
  Gen2Config g = config_.gen2;
  const double base_s = g.slot_s + g.read_s;
  if (base_s <= 0.0) return out;
  const double scale = (1.0 / base_s) / rate;
  g.slot_s *= scale;
  g.read_s *= scale;

  out.reserve(static_cast<std::size_t>((t_end - t_begin) * rate) + 1);
  Gen2Inventory inventory(g, static_cast<std::uint64_t>(rng_.engine()()));

  int port = 0;
  std::size_t attempts = 0;
  std::uint64_t singles = 0, collisions = 0, empties = 0, rounds = 0;
  const int num_ports = static_cast<int>(antennas_.size());
  std::vector<std::size_t> present;
  std::vector<std::uint64_t> tag_reads(tags.size(), 0);
  double t = t_begin;
  while (t < t_end) {
    // The responding population at the round start: tags inside their
    // presence window. An empty zone idles one slot of air time.
    present.clear();
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (t >= tags[i].t_enter_s && t < tags[i].t_leave_s) present.push_back(i);
    }
    if (present.empty()) {
      t += g.slot_s;
      continue;
    }
    const Gen2Round round =
        inventory.run_round(static_cast<int>(present.size()));
    ++rounds;
    singles += static_cast<std::uint64_t>(round.singletons);
    collisions += static_cast<std::uint64_t>(round.collisions);
    empties += static_cast<std::uint64_t>(round.empties);
    for (std::size_t k = 0; k < round.read_tags.size(); ++k) {
      const double t_read = t + round.read_offsets_s[k];
      if (t_read >= t_end) break;
      const std::size_t tag_idx =
          present[static_cast<std::size_t>(round.read_tags[k])];
      const TagEntry& entry = tags[tag_idx];
      em::Tag tag = entry.state(t_read);
      ++attempts;
      if (auto rep = interrogate(port, tag, t_read)) {
        ++tag_reads[tag_idx];
        rep->epc = entry.epc;
        // Diagnostic: the tag's cumulative observed rate -- an emergent
        // quantity under contention, not a configured split.
        rep->read_rate_hz = static_cast<double>(tag_reads[tag_idx]) /
                            std::max(t_read - t_begin, 1e-9);
        rep->serial = next_serial_++;
        obs::record_report_flow('s', rep->serial, obs::FlowStage::kSlot);
        out.push_back(*rep);
      }
      port = (port + 1) % num_ports;
    }
    t += round.duration_s;
  }
  rounds_counter.add(rounds);
  singles_counter.add(singles);
  collisions_counter.add(collisions);
  empties_counter.add(empties);
  count_inventory(attempts, out.size());
  return out;
}

TagReportStream Reader::inventory(const TagStateFn& tag_at, double t_begin,
                                  double t_end) {
  const obs::ScopedSpan span(inventory_span_site());
  TagReportStream out;
  const double rate =
      config_.aggregate_read_rate_hz * rate_factor(modulation_);
  if (rate <= 0.0 || t_end <= t_begin) return out;
  const double dt = 1.0 / rate;
  out.reserve(static_cast<std::size_t>((t_end - t_begin) / dt) + 1);

  int port = 0;
  std::size_t attempts = 0;
  const int num_ports = static_cast<int>(antennas_.size());
  for (double t = t_begin; t < t_end; t += dt) {
    // Small scheduling jitter: Gen2 slotted-ALOHA rounds are not metronomic.
    const double t_read = t + rng_.uniform(0.0, 0.2 * dt);
    const em::Tag tag = tag_at(t_read);
    ++attempts;
    if (auto rep = interrogate(port, tag, t_read)) {
      rep->read_rate_hz = rate / num_ports;
      rep->serial = next_serial_++;
      obs::record_report_flow('s', rep->serial, obs::FlowStage::kReport);
      out.push_back(*rep);
    }
    port = (port + 1) % num_ports;
  }
  count_inventory(attempts, out.size());
  return out;
}

}  // namespace polardraw::rfid
