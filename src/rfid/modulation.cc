#include "rfid/modulation.h"

namespace polardraw::rfid {

std::string_view to_string(Modulation m) {
  switch (m) {
    case Modulation::kFM0: return "FM0";
    case Modulation::kMiller2: return "Miller-2";
    case Modulation::kMiller4: return "Miller-4";
    case Modulation::kMiller8: return "Miller-8";
  }
  return "unknown";
}

int miller_m(Modulation m) {
  switch (m) {
    case Modulation::kFM0: return 1;
    case Modulation::kMiller2: return 2;
    case Modulation::kMiller4: return 4;
    case Modulation::kMiller8: return 8;
  }
  return 1;
}

double snr_gain(Modulation m) {
  return static_cast<double>(miller_m(m));
}

double rate_factor(Modulation m) {
  switch (m) {
    case Modulation::kFM0: return 1.0;
    case Modulation::kMiller2: return 0.8;
    case Modulation::kMiller4: return 0.55;
    case Modulation::kMiller8: return 0.35;
  }
  return 1.0;
}

}  // namespace polardraw::rfid
