#include "rfid/llrp.h"

#include <algorithm>
#include <cmath>

#include "common/angles.h"

namespace polardraw::rfid::llrp {

namespace {

constexpr std::size_t kHeaderBytes = 2 + 4 + 4;
constexpr std::size_t kRecordBytes = 8 + 2 + 4 + 2 + 2 + 2 + 2;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int s = 24; s >= 0; s -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int s = 56; s >= 0; s -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_batch(const TagReportStream& reports) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + reports.size() * kRecordBytes);
  put_u16(out, kReportBatch);
  put_u32(out, static_cast<std::uint32_t>(kHeaderBytes +
                                          reports.size() * kRecordBytes));
  put_u32(out, static_cast<std::uint32_t>(reports.size()));
  for (const TagReport& r : reports) {
    put_u64(out, static_cast<std::uint64_t>(
                     std::llround(r.timestamp_s * 1e6)));
    put_u16(out, static_cast<std::uint16_t>(std::max(r.antenna_id, 0)));
    put_u32(out, r.epc);
    const double rss = std::clamp(r.rss_dbm, -300.0, 300.0);
    const auto rss_q = static_cast<std::int16_t>(std::lround(rss * 100.0));
    put_u16(out, static_cast<std::uint16_t>(rss_q));
    const double phase = wrap_2pi(r.phase_rad);
    put_u16(out, static_cast<std::uint16_t>(std::lround(phase * 1000.0)));
    const double rate = std::clamp(r.read_rate_hz, 0.0, 6553.0);
    put_u16(out, static_cast<std::uint16_t>(std::lround(rate * 10.0)));
    put_u16(out, static_cast<std::uint16_t>(std::max(r.channel, 0)));
  }
  return out;
}

std::optional<TagReportStream> decode_batch(
    const std::vector<std::uint8_t>& frame) {
  if (frame.size() < kHeaderBytes) return std::nullopt;
  const std::uint8_t* p = frame.data();
  if (get_u16(p) != kReportBatch) return std::nullopt;
  const std::uint32_t length = get_u32(p + 2);
  const std::uint32_t count = get_u32(p + 6);
  if (length != frame.size()) return std::nullopt;
  if (length != kHeaderBytes + count * kRecordBytes) return std::nullopt;

  TagReportStream out;
  out.reserve(count);
  const std::uint8_t* rec = p + kHeaderBytes;
  for (std::uint32_t i = 0; i < count; ++i, rec += kRecordBytes) {
    TagReport r;
    r.timestamp_s = static_cast<double>(get_u64(rec)) * 1e-6;
    r.antenna_id = get_u16(rec + 8);
    r.epc = get_u32(rec + 10);
    r.rss_dbm = static_cast<std::int16_t>(get_u16(rec + 14)) / 100.0;
    r.phase_rad = get_u16(rec + 16) / 1000.0;
    r.read_rate_hz = get_u16(rec + 18) / 10.0;
    r.channel = get_u16(rec + 20);
    out.push_back(r);
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> extract_frames(
    std::vector<std::uint8_t>& buffer) {
  std::vector<std::vector<std::uint8_t>> frames;
  std::size_t cursor = 0;
  while (buffer.size() - cursor >= kHeaderBytes) {
    const std::uint32_t length = get_u32(buffer.data() + cursor + 2);
    if (length < kHeaderBytes) {
      // Corrupt length: drop the rest of the buffer rather than loop.
      cursor = buffer.size();
      break;
    }
    if (buffer.size() - cursor < length) break;  // partial frame
    frames.emplace_back(buffer.begin() + static_cast<std::ptrdiff_t>(cursor),
                        buffer.begin() +
                            static_cast<std::ptrdiff_t>(cursor + length));
    cursor += length;
  }
  buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(cursor));
  return frames;
}

}  // namespace polardraw::rfid::llrp
