// EPC Gen2 slotted-ALOHA inventory at slot level, with Q adaptation.
//
// Gen2 readers run framed slotted ALOHA: each round opens 2^Q slots, every
// energized tag picks one uniformly, and a slot yields a read (exactly one
// tag), a collision (several), or silence (none). The reader adapts Q
// between rounds -- up on collisions, down on empties -- converging to
// roughly log2 of the responding population, which is how a real reader
// divides its read budget among multiple tags. The coarse
// `Reader::inventory_population` model assumes that steady state; this
// module simulates the transient slot dynamics for studies that need them
// (multi-tag rates, collision overhead).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace polardraw::rfid {

struct Gen2Config {
  /// Initial Q (2^Q slots per round). Speedway-class readers start ~4.
  double initial_q = 4.0;
  /// Q adaptation step (the standard's C constant, 0.1-0.5).
  double q_step = 0.3;
  double min_q = 0.0;
  double max_q = 15.0;
  /// Slot duration, seconds (assumes FM0 at typical link timing).
  double slot_s = 0.0012;
  /// Extra time per successful read (EPC + handle exchange), seconds.
  double read_s = 0.0024;
};

/// Outcome counts for one inventory round.
struct Gen2Round {
  int slots = 0;        // frame size (2^Q)
  int processed = 0;    // slots actually run (QueryAdjust can cut early)
  int singletons = 0;   // successful reads
  int collisions = 0;
  int empties = 0;
  double q_after = 0.0;
  double duration_s = 0.0;
  /// Which tags (by index into the population) were read this round.
  std::vector<int> read_tags;
};

/// Simulates framed-slotted-ALOHA rounds until `duration_s` of air time is
/// consumed, for a population of `num_tags` always-energized tags.
class Gen2Inventory {
 public:
  Gen2Inventory(Gen2Config cfg, Rng rng) : cfg_(cfg), rng_(rng), q_(cfg.initial_q) {}

  /// Runs one round; Q adapts per the standard's C-algorithm.
  Gen2Round run_round(int num_tags);

  /// Runs rounds until the air-time budget is exhausted; returns them all.
  std::vector<Gen2Round> run(int num_tags, double duration_s);

  double current_q() const { return q_; }

 private:
  Gen2Config cfg_;
  Rng rng_;
  double q_;
};

/// Steady-state reads/second for a population size, measured by simulation
/// (convenience for benches/tests).
double measure_read_rate(int num_tags, double duration_s, std::uint64_t seed);

}  // namespace polardraw::rfid
