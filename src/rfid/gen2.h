// EPC Gen2 slotted-ALOHA inventory at slot level, with Q adaptation.
//
// Gen2 readers run framed slotted ALOHA: each round opens 2^Q slots, every
// energized tag picks one uniformly, and a slot yields a read (exactly one
// tag), a collision (several), or silence (none). The reader adapts Q
// between rounds -- up on collisions, down on empties -- converging to
// roughly log2 of the responding population, which is how a real reader
// divides its read budget among multiple tags. `steady_state_read_rate`
// is the matching coarse closed-form model of that equilibrium; this class
// simulates the transient slot dynamics for studies that need them
// (multi-tag rates, collision overhead, starvation under contention).
//
// Determinism contract, pinned by tests/rfid/test_gen2.cc: every draw is a
// counter-based splitmix64 mix of (seed, round, tag) -- a pure function,
// never mutable engine state -- so round r of a population always picks
// the same slots no matter how many rounds ran before it was replayed, and
// two inventories with equal seeds are bit-identical round by round.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/seed.h"

namespace polardraw::rfid {

struct Gen2Config {
  /// Initial Q (2^Q slots per round). Speedway-class readers start ~4.
  double initial_q = 4.0;
  /// Q adaptation step (the standard's C constant, 0.1-0.5).
  double q_step = 0.3;
  double min_q = 0.0;
  double max_q = 15.0;
  /// Slot duration, seconds (assumes FM0 at typical link timing).
  double slot_s = 0.0012;
  /// Extra time per successful read (EPC + handle exchange), seconds.
  double read_s = 0.0024;
};

/// Outcome counts for one inventory round.
struct Gen2Round {
  int slots = 0;        // frame size (2^Q)
  int processed = 0;    // slots actually run (QueryAdjust can cut early)
  int singletons = 0;   // successful reads
  int collisions = 0;
  int empties = 0;
  double q_after = 0.0;
  double duration_s = 0.0;
  /// Which tags (by index into the population) were read this round.
  std::vector<int> read_tags;
  /// Air-time offset (from the round start) at which each read in
  /// `read_tags` completed -- same length, same order. Lets a caller stamp
  /// per-read timestamps without re-deriving the slot schedule.
  std::vector<double> read_offsets_s;
};

/// Simulates framed-slotted-ALOHA rounds until `duration_s` of air time is
/// consumed, for a population of `num_tags` always-energized tags.
class Gen2Inventory {
 public:
  /// Counter-based construction: all slot choices derive from `seed` via
  /// splitmix64, see the determinism contract above.
  Gen2Inventory(Gen2Config cfg, std::uint64_t seed)
      : cfg_(cfg), seed_(seed), q_(cfg.initial_q) {}

  /// Legacy convenience: derives the counter seed from one engine draw, so
  /// existing call sites stay deterministic for a given Rng seed.
  Gen2Inventory(Gen2Config cfg, Rng rng)
      : Gen2Inventory(cfg, static_cast<std::uint64_t>(rng.engine()())) {}

  /// Runs one round; Q adapts per the standard's C-algorithm.
  Gen2Round run_round(int num_tags);

  /// Runs rounds until the air-time budget is exhausted; returns them all.
  std::vector<Gen2Round> run(int num_tags, double duration_s);

  double current_q() const { return q_; }
  /// Rounds run so far (the counter feeding the per-round slot draws).
  std::uint64_t rounds_run() const { return round_; }

 private:
  Gen2Config cfg_;
  std::uint64_t seed_;
  std::uint64_t round_ = 0;
  double q_;
};

/// Steady-state reads/second for a population size, measured by simulation
/// (convenience for benches/tests).
double measure_read_rate(int num_tags, double duration_s, std::uint64_t seed);

/// Coarse closed-form steady-state model of the same quantity: the
/// C-algorithm equilibrates where the per-slot Q drift vanishes
/// (empty-rate * C == collision-rate * 1.7 C); with that continuous frame
/// size L*, binomial slot outcomes give the read throughput
///   P_single / (slot_s + P_single * read_s).
/// `Reader::inventory_population` and `measure_read_rate` are the slot
/// simulations of this model; tests/rfid/test_gen2.cc pins their agreement
/// for 1-16 tags (tolerance documented in DESIGN.md section 16).
double steady_state_read_rate(int num_tags, const Gen2Config& cfg = {});

}  // namespace polardraw::rfid
