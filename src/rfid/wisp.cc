#include "rfid/wisp.h"

#include <algorithm>
#include "common/angles.h"
#include <cmath>

namespace polardraw::rfid {

std::vector<AccelSample> simulate_wisp(const handwriting::WritingTrace& trace,
                                       const WispConfig& cfg, Rng& rng) {
  std::vector<AccelSample> out;
  if (trace.samples.size() < 3 || cfg.sample_rate_hz <= 0.0) return out;

  const double dt = 1.0 / cfg.sample_rate_hz;
  const double t_end = trace.samples.back().t_s;
  out.reserve(static_cast<std::size_t>(t_end / dt) + 1);

  // Helper: linear interpolation of pen velocity from the trace.
  auto velocity_at = [&trace](double t) {
    const auto& s = trace.samples;
    auto it = std::lower_bound(
        s.begin(), s.end(), t,
        [](const handwriting::TraceSample& a, double tv) { return a.t_s < tv; });
    if (it == s.begin() || it == s.end()) return Vec3{};
    const auto& hi = *it;
    const auto& lo = *(it - 1);
    const double span = hi.t_s - lo.t_s;
    if (span <= 0.0) return Vec3{};
    return (hi.pen_tip - lo.pen_tip) / span;
  };
  auto pen_down_at = [&trace](double t) {
    const auto& s = trace.samples;
    auto it = std::lower_bound(
        s.begin(), s.end(), t,
        [](const handwriting::TraceSample& a, double tv) { return a.t_s < tv; });
    if (it == s.end()) return s.back().pen_down;
    return it->pen_down;
  };

  Vec3 prev_v = velocity_at(0.0);
  double phase = 0.0;
  for (double t = 0.0; t <= t_end; t += dt) {
    const Vec3 v = velocity_at(t);
    const Vec3 motion_accel = (v - prev_v) / dt;
    prev_v = v;

    AccelSample s;
    s.t_s = t;
    // Gravity along -Y (the board hangs vertically).
    s.accel = Vec3{0.0, -cfg.gravity, 0.0} + motion_accel;
    // Friction vibration only while the moving pen presses the board:
    // a jittered-frequency tone, strongest along the motion direction.
    const double speed = v.norm();
    if (pen_down_at(t) && speed > 0.01) {
      phase += (40.0 + rng.uniform(0.0, 25.0)) * kTwoPi * dt;
      const double tone = std::sin(phase) * cfg.friction_rms *
                          std::min(speed / 0.05, 1.5);
      s.accel += Vec3{tone * 0.7, tone * 0.3, tone * 0.6};
    }
    s.accel += Vec3{rng.gaussian(0.0, cfg.noise_rms),
                    rng.gaussian(0.0, cfg.noise_rms),
                    rng.gaussian(0.0, cfg.noise_rms)};
    out.push_back(s);
  }
  return out;
}

std::vector<bool> detect_touch(const std::vector<AccelSample>& accel,
                               double window_s, double threshold) {
  std::vector<bool> out;
  if (accel.size() < 2 || window_s <= 0.0) return out;

  const double t0 = accel.front().t_s;
  const double t_end = accel.back().t_s;
  const int windows = static_cast<int>((t_end - t0) / window_s) + 1;
  out.assign(static_cast<std::size_t>(windows), false);

  // High-frequency energy: RMS of the first difference of |a| per window.
  std::vector<double> energy(static_cast<std::size_t>(windows), 0.0);
  std::vector<int> counts(static_cast<std::size_t>(windows), 0);
  for (std::size_t i = 1; i < accel.size(); ++i) {
    const double mag_diff =
        accel[i].accel.norm() - accel[i - 1].accel.norm();
    const int w = static_cast<int>((accel[i].t_s - t0) / window_s);
    if (w < 0 || w >= windows) continue;
    energy[static_cast<std::size_t>(w)] += mag_diff * mag_diff;
    counts[static_cast<std::size_t>(w)] += 1;
  }
  for (int w = 0; w < windows; ++w) {
    if (counts[static_cast<std::size_t>(w)] > 0) {
      const double rms = std::sqrt(energy[static_cast<std::size_t>(w)] /
                                   counts[static_cast<std::size_t>(w)]);
      out[static_cast<std::size_t>(w)] = rms > threshold;
    }
  }
  return out;
}

double harvest_duty_cycle(double incident_dbm, const WispPowerConfig& cfg) {
  if (incident_dbm < cfg.harvest_sensitivity_dbm) return 0.0;
  // A degenerate config (saturation at or below the threshold) degrades
  // to a step function at the threshold.
  if (cfg.saturation_dbm <= cfg.harvest_sensitivity_dbm) return 1.0;
  if (incident_dbm >= cfg.saturation_dbm) return 1.0;
  return (incident_dbm - cfg.harvest_sensitivity_dbm) /
         (cfg.saturation_dbm - cfg.harvest_sensitivity_dbm);
}

double effective_sample_rate_hz(double incident_dbm,
                                const WispPowerConfig& cfg) {
  return cfg.full_rate_hz * harvest_duty_cycle(incident_dbm, cfg);
}

}  // namespace polardraw::rfid
