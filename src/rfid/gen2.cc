#include "rfid/gen2.h"

#include <algorithm>
#include <cmath>

namespace polardraw::rfid {

Gen2Round Gen2Inventory::run_round(int num_tags) {
  Gen2Round round;
  const int q_int = static_cast<int>(std::lround(std::clamp(q_, cfg_.min_q, cfg_.max_q)));
  round.slots = 1 << q_int;

  // Each tag picks a slot uniformly. The draw is a pure splitmix64 mix of
  // (seed, round, tag): 2^Q is a power of two, so masking the well-mixed
  // 64-bit output is unbiased, and the pick is independent of how many
  // draws any earlier round consumed.
  const std::uint64_t round_key = splitmix64(seed_, round_);
  const auto mask = static_cast<std::uint64_t>(round.slots - 1);
  std::vector<int> occupancy(static_cast<std::size_t>(round.slots), 0);
  std::vector<int> winner(static_cast<std::size_t>(round.slots), -1);
  for (int t = 0; t < num_tags; ++t) {
    const auto slot = static_cast<std::size_t>(
        splitmix64(round_key, static_cast<std::uint64_t>(t)) & mask);
    occupancy[slot] += 1;
    winner[slot] = t;
  }
  ++round_;

  // Per-slot Qfp adaptation with QueryAdjust semantics: when the rounded
  // Qfp leaves the current Q, the reader cuts the round short and starts
  // a fresh one at the new Q (processing the rest of a mis-sized round
  // would overshoot the adaptation wildly).
  double q_float = q_;
  for (int s = 0; s < round.slots; ++s) {
    const int n = occupancy[static_cast<std::size_t>(s)];
    if (n == 0) {
      ++round.empties;
      round.duration_s += cfg_.slot_s;
      q_float = std::max(cfg_.min_q, q_float - cfg_.q_step);
    } else if (n == 1) {
      ++round.singletons;
      round.read_tags.push_back(winner[static_cast<std::size_t>(s)]);
      round.duration_s += cfg_.slot_s + cfg_.read_s;
      round.read_offsets_s.push_back(round.duration_s);
    } else {
      ++round.collisions;
      round.duration_s += cfg_.slot_s;
      // Empties slightly outnumber collisions at the optimum load, so the
      // collision step is larger (the standard leaves the ratio to the
      // implementation; ~1.7 balances near one tag per slot).
      q_float = std::min(cfg_.max_q, q_float + 1.7 * cfg_.q_step);
    }
    ++round.processed;
    if (std::lround(q_float) != q_int) break;  // QueryAdjust: re-frame
  }
  q_ = q_float;
  round.q_after = q_;
  return round;
}

std::vector<Gen2Round> Gen2Inventory::run(int num_tags, double duration_s) {
  std::vector<Gen2Round> rounds;
  double elapsed = 0.0;
  while (elapsed < duration_s) {
    rounds.push_back(run_round(num_tags));
    elapsed += rounds.back().duration_s;
    if (rounds.back().duration_s <= 0.0) break;  // defensive
  }
  return rounds;
}

double measure_read_rate(int num_tags, double duration_s, std::uint64_t seed) {
  Gen2Inventory inv(Gen2Config{}, Rng(seed));
  const auto rounds = inv.run(num_tags, duration_s);
  int reads = 0;
  double time = 0.0;
  for (const auto& r : rounds) {
    reads += r.singletons;
    time += r.duration_s;
  }
  return time > 0.0 ? reads / time : 0.0;
}

namespace {

/// Per-slot outcome probabilities for n tags over a (continuous) frame of
/// L slots: each tag picks a slot uniformly, so a given slot holds k tags
/// with Binomial(n, 1/L) probability.
struct SlotProbs {
  double empty, single, collision;
};

SlotProbs slot_probs(int n, double l_slots) {
  SlotProbs p{};
  if (l_slots <= 1.0) {
    // One slot: every responding tag lands in it.
    p.empty = n == 0 ? 1.0 : 0.0;
    p.single = n == 1 ? 1.0 : 0.0;
    p.collision = n >= 2 ? 1.0 : 0.0;
    return p;
  }
  const double miss = 1.0 - 1.0 / l_slots;
  p.empty = std::pow(miss, n);
  p.single = static_cast<double>(n) / l_slots * std::pow(miss, n - 1);
  p.collision = std::max(0.0, 1.0 - p.empty - p.single);
  return p;
}

}  // namespace

double steady_state_read_rate(int num_tags, const Gen2Config& cfg) {
  if (num_tags <= 0) return 0.0;
  const double l_min = std::pow(2.0, cfg.min_q);
  const double l_max = std::pow(2.0, cfg.max_q);
  // The C-algorithm drifts Q by -C per empty and +1.7 C per collision, so
  // its equilibrium frame size L* satisfies 1.7 * P_coll(L*) == P_empty(L*).
  // drift(L) = 1.7 P_coll - P_empty is monotone decreasing in L (more slots
  // mean fewer collisions, more empties); bisect, clamping to the Q range.
  const auto drift = [num_tags](double l) {
    const SlotProbs p = slot_probs(num_tags, l);
    return 1.7 * p.collision - p.empty;
  };
  double l_star;
  if (drift(l_min) <= 0.0) {
    l_star = l_min;  // population too small to collide: Q pins at min_q
  } else if (drift(l_max) >= 0.0) {
    l_star = l_max;
  } else {
    double lo = l_min, hi = l_max;
    for (int i = 0; i < 80; ++i) {
      const double mid = 0.5 * (lo + hi);
      (drift(mid) > 0.0 ? lo : hi) = mid;
    }
    l_star = 0.5 * (lo + hi);
  }
  const SlotProbs p = slot_probs(num_tags, l_star);
  const double per_slot_s = cfg.slot_s + p.single * cfg.read_s;
  return per_slot_s > 0.0 ? p.single / per_slot_s : 0.0;
}

}  // namespace polardraw::rfid
