#include "rfid/gen2.h"

#include <algorithm>
#include <cmath>

namespace polardraw::rfid {

Gen2Round Gen2Inventory::run_round(int num_tags) {
  Gen2Round round;
  const int q_int = static_cast<int>(std::lround(std::clamp(q_, cfg_.min_q, cfg_.max_q)));
  round.slots = 1 << q_int;

  // Each tag picks a slot uniformly.
  std::vector<int> occupancy(static_cast<std::size_t>(round.slots), 0);
  std::vector<int> winner(static_cast<std::size_t>(round.slots), -1);
  for (int t = 0; t < num_tags; ++t) {
    const auto slot = static_cast<std::size_t>(
        rng_.uniform_int(0, round.slots - 1));
    occupancy[slot] += 1;
    winner[slot] = t;
  }

  // Per-slot Qfp adaptation with QueryAdjust semantics: when the rounded
  // Qfp leaves the current Q, the reader cuts the round short and starts
  // a fresh one at the new Q (processing the rest of a mis-sized round
  // would overshoot the adaptation wildly).
  double q_float = q_;
  for (int s = 0; s < round.slots; ++s) {
    const int n = occupancy[static_cast<std::size_t>(s)];
    if (n == 0) {
      ++round.empties;
      round.duration_s += cfg_.slot_s;
      q_float = std::max(cfg_.min_q, q_float - cfg_.q_step);
    } else if (n == 1) {
      ++round.singletons;
      round.read_tags.push_back(winner[static_cast<std::size_t>(s)]);
      round.duration_s += cfg_.slot_s + cfg_.read_s;
    } else {
      ++round.collisions;
      round.duration_s += cfg_.slot_s;
      // Empties slightly outnumber collisions at the optimum load, so the
      // collision step is larger (the standard leaves the ratio to the
      // implementation; ~1.7 balances near one tag per slot).
      q_float = std::min(cfg_.max_q, q_float + 1.7 * cfg_.q_step);
    }
    ++round.processed;
    if (std::lround(q_float) != q_int) break;  // QueryAdjust: re-frame
  }
  q_ = q_float;
  round.q_after = q_;
  return round;
}

std::vector<Gen2Round> Gen2Inventory::run(int num_tags, double duration_s) {
  std::vector<Gen2Round> rounds;
  double elapsed = 0.0;
  while (elapsed < duration_s) {
    rounds.push_back(run_round(num_tags));
    elapsed += rounds.back().duration_s;
    if (rounds.back().duration_s <= 0.0) break;  // defensive
  }
  return rounds;
}

double measure_read_rate(int num_tags, double duration_s, std::uint64_t seed) {
  Gen2Inventory inv(Gen2Config{}, Rng(seed));
  const auto rounds = inv.run(num_tags, duration_s);
  int reads = 0;
  double time = 0.0;
  for (const auto& r : rounds) {
    reads += r.singletons;
    time += r.duration_s;
  }
  return time > 0.0 ? reads / time : 0.0;
}

}  // namespace polardraw::rfid
