#include "em/propagation.h"

#include <cmath>

#include "common/angles.h"
#include "common/units.h"
#include "em/polarization.h"

namespace polardraw::em {

double free_space_gain(double distance_m, double wavelength_m) {
  if (distance_m <= 0.0) return 0.0;
  const double x = wavelength_m / (4.0 * kPi * distance_m);
  return x * x;
}

double round_trip_phase(double distance_m, double wavelength_m) {
  return 4.0 * kPi * distance_m / wavelength_m;
}

LinkSample evaluate_los_link(const ReaderAntenna& antenna, const Tag& tag,
                             const TxConfig& tx) {
  LinkSample s;
  const Vec3 los = tag.position - antenna.position;
  s.distance_m = los.norm();
  if (s.distance_m <= 0.0) return s;
  const Vec3 los_dir = los / s.distance_m;

  const double lambda = tx.wavelength_m();
  const double g_ant = antenna.gain_toward(tag.position);
  const double g_tag = db_to_ratio(tag.gain_dbi);
  const double fs = free_space_gain(s.distance_m, lambda);

  // Polarization coupling per traversal: a complex field factor, so the
  // cross-polar leak of a real panel shifts the received phase near deep
  // mismatch (see complex_field_coupling).
  std::complex<double> c_one_way;
  if (antenna.mode == PolarizationMode::kLinear) {
    s.mismatch_rad =
        mismatch_angle(antenna.polarization_axis, tag.dipole_axis, los_dir);
    c_one_way = complex_field_coupling(s.mismatch_rad, antenna.xpd_db);
  } else {
    // Circular-to-linear coupling loses half the power on average; a real
    // patch's finite axial ratio leaves a residual orientation ripple
    // between 1/(1+AR) and AR/(1+AR) of the power (AR in linear scale).
    s.mismatch_rad = 0.0;
    const double ar = db_to_ratio(antenna.axial_ratio_db);
    const double beta_major = mismatch_angle(
        antenna.ellipse_major_axis, tag.dipole_axis, los_dir);
    const double cos2 = std::cos(beta_major) * std::cos(beta_major);
    const double coupling = (ar * cos2 + (1.0 - cos2)) / (1.0 + ar);
    c_one_way = std::sqrt(coupling);
  }
  const double chi_one_way = std::norm(c_one_way);

  const double p_tx_mw = dbm_to_mw(tx.power_dbm);
  const double p_fwd_mw = p_tx_mw * g_ant * g_tag * fs * chi_one_way;
  s.forward_power_dbm = mw_to_dbm(p_fwd_mw);

  const double l_mod = db_to_ratio(tag.modulation_loss_db);
  // Amplitude of the round trip with the polarization factor applied as a
  // field (complex) quantity on each traversal: c^2 total.
  const double amp_no_pol = std::sqrt(
      p_tx_mw * g_ant * g_ant * g_tag * g_tag * fs * fs * l_mod);
  const double phase = round_trip_phase(s.distance_m, lambda);
  s.response = amp_no_pol * c_one_way * c_one_way *
               std::polar(1.0, -phase);
  return s;
}

}  // namespace polardraw::em
