// Backscatter link budget and round-trip phase for a single propagation path.
//
// The monostatic backscatter link (reader antenna j illuminates the tag,
// the tag modulates and re-radiates, antenna j receives) has
//
//   P_rx = P_tx * G_j^2 * G_t^2 * (lambda / (4*pi*d))^4
//          * chi_fwd * chi_rev * L_mod
//
// where chi_* are the polarization coupling power factors of the forward and
// reverse traversals (cos^2 of the mismatch for a linear/linear pair, 1/2
// for circular/linear), and L_mod is the tag's modulation loss. The
// round-trip carrier phase is 4*pi*d/lambda plus a per-channel reader offset.
#pragma once

#include <complex>

#include "em/antenna.h"
#include "em/constants.h"
#include "em/tag.h"

namespace polardraw::em {

/// Outcome of evaluating the line-of-sight backscatter link for one antenna.
struct LinkSample {
  /// Complex baseband response of the path (amplitude in sqrt(mW), i.e.
  /// |response|^2 is the received power in mW; phase is the round-trip
  /// carrier phase). Multipath components from channel/ are added to this.
  std::complex<double> response{0.0, 0.0};

  /// Power delivered to the tag chip on the forward traversal, dBm.
  /// The tag only answers when this exceeds its sensitivity.
  double forward_power_dbm = -150.0;

  /// One-way polarization mismatch angle (radians, [0, pi/2]); pi/2 for a
  /// fully cross-polarized geometry. For circular antennas this is reported
  /// as 0 (no orientation dependence beyond the fixed 3 dB split).
  double mismatch_rad = 0.0;

  /// Geometric one-way path length, meters.
  double distance_m = 0.0;
};

/// Reader transmit parameters.
struct TxConfig {
  double power_dbm = 30.0;                     // 1 W ERP class reader
  double frequency_hz = kDefaultFrequencyHz;
  double wavelength_m() const { return wavelength(frequency_hz); }
};

/// Evaluates the direct (line-of-sight) monostatic backscatter path between
/// `antenna` and `tag`. Pure geometry + link budget; noise and multipath are
/// layered on by channel/.
LinkSample evaluate_los_link(const ReaderAntenna& antenna, const Tag& tag,
                             const TxConfig& tx);

/// Free-space one-way power gain (linear scale) over distance d:
/// (lambda / (4*pi*d))^2. Returns 0 for non-positive distances.
double free_space_gain(double distance_m, double wavelength_m);

/// Round-trip carrier phase 4*pi*d/lambda, unwrapped (not folded to 2*pi).
double round_trip_phase(double distance_m, double wavelength_m);

}  // namespace polardraw::em
