#include "em/tag.h"

#include <cmath>

#include "common/angles.h"

namespace polardraw::em {

Vec3 pen_axis(const PenAngles& angles) {
  const double ce = std::cos(angles.elevation_rad);
  const double se = std::sin(angles.elevation_rad);
  const double ca = std::cos(angles.azimuth_rad);
  const double sa = std::sin(angles.azimuth_rad);
  // Azimuth sweeps the X-Z plane from +X; elevation lifts toward +Y.
  return Vec3{ce * ca, se, ce * sa};
}

double rotation_angle_from_pen(const PenAngles& angles) {
  const double denom = std::cos(angles.elevation_rad) * std::cos(angles.azimuth_rad);
  const double value = kPi - std::atan(-std::sin(angles.elevation_rad) / denom);
  return wrap_2pi(value);
}

Tag make_pen_tag(const Vec3& position, const PenAngles& angles) {
  Tag t;
  t.position = position;
  t.dipole_axis = pen_axis(angles);
  return t;
}

}  // namespace polardraw::em
