// Passive UHF tag (dipole) model and the pen-angle parametrization of its
// orientation (paper section 3.2, Fig. 6 / Table 2).
//
// Geometry recap (DESIGN.md section 6): the whiteboard is the X-Y plane
// (X right, Y up), +Z points out of the board toward the writer and the
// antenna rig. The paper measures:
//   alpha_e  pen elevation angle out of the X-Z plane,
//   alpha_a  pen azimuthal angle in the X-Z plane, from +X,
//   alpha_r  pen rotation angle projected onto the board (X-Y) plane.
#pragma once

#include "common/vec.h"

namespace polardraw::em {

/// Pen orientation in the paper's angular coordinates (radians).
struct PenAngles {
  double elevation_rad = 0.0;  // alpha_e
  double azimuth_rad = 0.0;    // alpha_a
};

/// Unit vector of the pen (and therefore tag dipole) axis for the given
/// pen angles: elevation out of the X-Z plane, azimuth within it.
Vec3 pen_axis(const PenAngles& angles);

/// The paper's Eq. 1: converts (alpha_e, alpha_a) to the board-projected
/// rotation angle alpha_r:
///   alpha_r = pi - arctan(-sin(alpha_e) / (cos(alpha_e) * cos(alpha_a)))
/// Result wrapped to [0, 2*pi). Like any projected line angle, alpha_r is
/// meaningful modulo pi; the left/right sign of the implied motion comes
/// from the rotation-direction estimate, not from alpha_r itself.
double rotation_angle_from_pen(const PenAngles& angles);

/// A passive UHF RFID tag attached to the pen.
struct Tag {
  /// Tag (dipole) center position, board coordinates, meters.
  Vec3 position;

  /// Unit dipole axis, equal to the pen axis for a tag taped along the pen.
  Vec3 dipole_axis{1.0, 0.0, 0.0};

  /// Minimum incident power required to energize the chip, dBm. Typical
  /// modern passive UHF ICs activate around -18 dBm.
  double sensitivity_dbm = -18.0;

  /// Backscatter modulation loss: fraction of incident power re-radiated
  /// in the modulated sideband, dB (negative).
  double modulation_loss_db = -6.0;

  /// Dipole gain, dBi (half-wave dipole is about 2.15 dBi).
  double gain_dbi = 2.15;
};

/// Convenience: a tag at `position` oriented by pen angles.
Tag make_pen_tag(const Vec3& position, const PenAngles& angles);

}  // namespace polardraw::em
