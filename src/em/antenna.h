// Reader antenna model.
//
// PolarDraw replaces the reader's stock circularly-polarized antennas with
// linearly-polarized panels mounted above the whiteboard (paper Fig. 4).
// Each antenna is described by its position, boresight, polarization axis,
// and a simple gain model.
#pragma once

#include "common/angles.h"
#include "common/vec.h"

namespace polardraw::em {

/// Polarization mode of a reader antenna.
enum class PolarizationMode {
  kLinear,    // what PolarDraw uses
  kCircular,  // stock RFID antennas (Tagoram / RF-IDraw deployments)
};

/// A reader antenna. Geometry follows DESIGN.md section 6: the whiteboard
/// is the X-Y plane, +Z points from the board toward the antenna rig.
struct ReaderAntenna {
  /// Antenna phase center, meters, in board coordinates.
  Vec3 position;

  /// Unit vector the antenna faces (toward the board, typically -Z-ish).
  Vec3 boresight{0.0, 0.0, -1.0};

  /// Unit vector of the E-field axis for linear polarization. Must be
  /// orthogonal-ish to the boresight; construction helpers guarantee this.
  Vec3 polarization_axis{0.0, 1.0, 0.0};

  PolarizationMode mode = PolarizationMode::kLinear;

  /// Peak gain (dBi) along boresight. The Laird panels the paper uses are
  /// in the 7-9 dBi range.
  double gain_dbi = 8.0;

  /// Half-power beamwidth (radians) of the cos^n pattern used off boresight.
  double beamwidth_rad = deg2rad(70.0);

  /// Cross-polarization discrimination, dB. Real linear panels leak a
  /// quadrature cross-polar component ~20-25 dB below the co-polar one;
  /// it dominates the received phase near deep polarization mismatch.
  double xpd_db = 15.0;

  /// Axial ratio of a circular antenna, dB. An ideal circular antenna
  /// couples equally to every linear orientation; real patches are
  /// slightly elliptical (1-3 dB), leaving a residual orientation ripple
  /// in RSS. Ignored for linear antennas.
  double axial_ratio_db = 2.0;

  /// Major axis of the circular antenna's polarization ellipse (unit
  /// vector, transverse-ish to boresight); the ripple peaks when the tag
  /// aligns with it.
  Vec3 ellipse_major_axis{1.0, 0.0, 0.0};

  /// Linear-scale gain toward a target point, combining peak gain with a
  /// smooth raised-cosine rolloff off boresight. Returns 0 behind the panel.
  double gain_toward(const Vec3& target) const;

  /// In-plane polarization angle: the angle of `polarization_axis` projected
  /// onto the board plane (X-Y), measured from +X, folded to [0, pi).
  double board_polarization_angle() const;
};

/// Builds a board-facing linear antenna whose polarization axis lies in the
/// board-parallel plane at `angle_from_x_rad` radians from the +X axis. This is
/// the construction the paper's Fig. 8 uses: two antennas at +/- gamma from
/// the board vertical, i.e. angles pi/2 +/- gamma from X.
ReaderAntenna make_linear_antenna(const Vec3& position, double angle_from_x_rad,
                                  double gain_dbi = 8.0);

/// Builds a board-facing circularly polarized antenna (baseline systems).
ReaderAntenna make_circular_antenna(const Vec3& position, double gain_dbi = 8.0);

}  // namespace polardraw::em
