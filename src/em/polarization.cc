#include "em/polarization.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace polardraw::em {

namespace {
constexpr double kDegenerateNormSq = 1e-18;
}  // namespace

Vec3 transverse_component(const Vec3& axis, const Vec3& los_dir) {
  const Vec3 parallel = los_dir * axis.dot(los_dir);
  const Vec3 transverse = axis - parallel;
  if (transverse.norm_sq() < kDegenerateNormSq) return {};
  return transverse.normalized();
}

double mismatch_angle(const Vec3& axis_a, const Vec3& axis_b, const Vec3& los_dir) {
  const Vec3 ta = transverse_component(axis_a, los_dir);
  const Vec3 tb = transverse_component(axis_b, los_dir);
  if (ta == Vec3{} || tb == Vec3{}) return std::acos(0.0);  // pi/2
  // Axis (not vector) alignment: fold the angle into [0, pi/2].
  const double c = std::clamp(std::fabs(ta.dot(tb)), 0.0, 1.0);
  return std::acos(c);
}

double malus_factor(double mismatch_rad) {
  const double c = std::cos(mismatch_rad);
  return c * c;
}

double backscatter_malus_factor(double mismatch_rad) {
  const double m = malus_factor(mismatch_rad);
  return m * m;
}

double field_coupling(double mismatch_rad) { return std::cos(mismatch_rad); }

std::complex<double> complex_field_coupling(double mismatch_rad,
                                            double xpd_db) {
  const double leak_amp = db_to_amplitude_ratio(-xpd_db);
  return {std::cos(mismatch_rad), leak_amp * std::sin(mismatch_rad)};
}

}  // namespace polardraw::em
