#include "em/antenna.h"

#include <cmath>

#include "common/units.h"

namespace polardraw::em {

double ReaderAntenna::gain_toward(const Vec3& target) const {
  const Vec3 dir = (target - position).normalized();
  const double c = dir.dot(boresight);
  if (c <= 0.0) return 0.0;  // behind the panel
  // Raised-cosine pattern calibrated so gain halves at the half-power angle.
  const double off_angle = std::acos(std::min(c, 1.0));
  const double n = std::log(0.5) / std::log(std::cos(beamwidth_rad / 2.0));
  const double pattern = std::pow(c, n);
  (void)off_angle;
  return db_to_ratio(gain_dbi) * pattern;
}

double ReaderAntenna::board_polarization_angle() const {
  const double a = std::atan2(polarization_axis.y, polarization_axis.x);
  return fold_pi(a);
}

ReaderAntenna make_linear_antenna(const Vec3& position, double angle_from_x_rad,
                                  double gain_dbi) {
  ReaderAntenna a;
  a.position = position;
  a.boresight = Vec3{0.0, 0.0, -1.0};
  a.polarization_axis =
      Vec3{std::cos(angle_from_x_rad), std::sin(angle_from_x_rad), 0.0};
  a.mode = PolarizationMode::kLinear;
  a.gain_dbi = gain_dbi;
  return a;
}

ReaderAntenna make_circular_antenna(const Vec3& position, double gain_dbi) {
  ReaderAntenna a;
  a.position = position;
  a.boresight = Vec3{0.0, 0.0, -1.0};
  a.mode = PolarizationMode::kCircular;
  a.gain_dbi = gain_dbi;
  return a;
}

}  // namespace polardraw::em
