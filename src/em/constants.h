// Physical constants and UHF RFID band parameters.
#pragma once

namespace polardraw::em {

inline constexpr double kSpeedOfLight = 299'792'458.0;  // m/s

/// Center of the US 902-928 MHz UHF RFID band, the band used by the paper's
/// ImpinJ Speedway R420 deployment.
inline constexpr double kDefaultFrequencyHz = 915e6;

/// Wavelength for a given carrier frequency (meters).
constexpr double wavelength(double frequency_hz) {
  return kSpeedOfLight / frequency_hz;
}

/// Default UHF wavelength, approximately 0.3276 m; the paper quotes
/// lambda/2 of about 16 cm, matching this.
inline constexpr double kDefaultWavelength = wavelength(kDefaultFrequencyHz);

}  // namespace polardraw::em
