// Linear polarization math.
//
// A linearly polarized wave carries its electric field along a fixed axis in
// the plane transverse to propagation (paper Fig. 1). A linear antenna (or a
// dipole tag) couples to such a wave in proportion to the cosine of the
// mismatch angle between the field axis and its own axis; received *power*
// therefore scales with cos^2 (Malus' law), and a full backscatter round
// trip through the same mismatch scales with cos^4.
#pragma once

#include <complex>

#include "common/vec.h"

namespace polardraw::em {

/// Projects `axis` onto the plane orthogonal to the unit propagation
/// direction `los_dir` and normalizes. Returns the zero vector when `axis`
/// is (numerically) parallel to `los_dir`, i.e. the element presents no
/// transverse extent to the wave.
Vec3 transverse_component(const Vec3& axis, const Vec3& los_dir);

/// Polarization mismatch angle between two axes as seen across a link with
/// line-of-sight direction `los_dir` (unit vector from one end to the other).
///
/// Both axes are projected into the transverse plane first. The result is in
/// [0, pi/2]: polarization is orientation-less (an axis, not a direction),
/// so mismatch is taken modulo pi. Returns pi/2 (full mismatch) when either
/// axis degenerates to zero transverse extent.
double mismatch_angle(const Vec3& axis_a, const Vec3& axis_b, const Vec3& los_dir);

/// One-way power coupling factor cos^2(beta) for a mismatch angle beta.
double malus_factor(double mismatch_rad);

/// Round-trip (reader -> tag -> reader) power coupling factor cos^4(beta)
/// when the same antenna both illuminates and receives.
double backscatter_malus_factor(double mismatch_rad);

/// Amplitude (field) coupling factor cos(beta); used when accumulating
/// complex path responses where power is formed after summation.
double field_coupling(double mismatch_rad);

/// Complex one-way field coupling of a real linear antenna with finite
/// cross-polarization discrimination (XPD): the co-polar component couples
/// with cos(beta) and the cross-polar component leaks in quadrature with
/// amplitude sqrt(leak)*sin(beta), where leak = 10^(-XPD/10).
///
/// Near deep mismatch (beta -> 90 deg) the leak term dominates, so the
/// received *phase* glides away from the line-of-sight value while the
/// power bottoms out at the XPD floor instead of a perfect null -- the
/// "spurious phase readings" the paper's feasibility study observes.
std::complex<double> complex_field_coupling(double mismatch_rad,
                                            double xpd_db = 22.0);

}  // namespace polardraw::em
