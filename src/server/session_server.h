// Multi-session streaming decode server (DESIGN.md section 13).
//
// Multiplexes many concurrent pens -- each an independent fixed-lag
// StreamingDecoder -- over one shared phase field and one thread pool. The
// intended driver loop is a reader frontend that calls submit() as tag
// reports arrive and pump() once per scheduling quantum: submit() only
// appends to a per-session mailbox under that session's mutex (cheap
// enough for an ingest thread), while pump() drains every non-empty
// mailbox in parallel, advancing each session's decoder and collecting its
// newly committed block-center positions.
//
// Determinism contract, pinned by tests/server/test_session_server.cc:
// each session's decode is a sequential function of its own observation
// stream, sessions share no mutable state (the phase field is read-only),
// and the obs registry merges per-thread shards commutatively -- so
// committed trajectories and metric aggregates are bit-identical whether
// pump() ran on 1 worker or 8, and identical to decoding each pen in
// isolation. Worker count changes wall-clock only.
//
// Threading rules: submit()/accumulate_azimuth_correction() may run
// concurrently with pump() (per-session mutexes order them); open(),
// close(), committed() and session_count() touch the session map and must
// not race pump() or each other. status()/healthz() are live-read safe:
// they may run concurrently with submit() and pump() (they read atomic
// per-session mirrors and the seqlock metrics registry), but not with
// open()/close() (they walk the session map).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/thread_pool.h"
#include "common/vec.h"
#include "core/association.h"
#include "core/config.h"
#include "core/hmm_tracker.h"
#include "core/phase_field.h"
#include "core/streaming_decoder.h"
#include "obs/rolling.h"

namespace polardraw::server {

using SessionId = std::uint64_t;

struct SessionServerConfig {
  /// Per-session fixed-lag decoder knobs (lag, compaction threshold).
  core::StreamingConfig stream;
  /// Pool size for pump(); defaults to POLARDRAW_THREADS / hardware.
  int n_workers = ThreadPool::default_thread_count();

  // --- Live introspection (DESIGN.md section 17) ---------------------------
  /// Rolling SLO window over push-to-commit latency, in *simulation*
  /// seconds (observation timestamps, never wall clock): statusz reports
  /// p50/p99 over the trailing `slo_window_s`, quantized to `slo_step_s`.
  double slo_window_s = 10.0;
  double slo_step_s = 0.5;
  /// statusz flags a session "backpressured" (and the first submit past
  /// the threshold logs server.backpressure) when its mailbox outruns the
  /// pump by this many queued observations.
  std::size_t backpressure_depth = 256;
  /// statusz flags a session "starved" when its newest observation is
  /// this much older (sim time) than the newest across all sessions.
  double starved_after_s = 1.0;
  /// healthz turns unhealthy when the rolling p99 exceeds this (wall
  /// seconds, since push-to-commit is a wall-clock measurement) or any
  /// session is backpressured.
  double healthz_p99_s = 1.0;
};

/// healthz() verdict: explicit threshold checks, each failure named.
struct HealthReport {
  bool ok = true;
  std::vector<std::string> reasons;  // empty iff ok
};

class SessionServer {
 public:
  /// One antenna pair serves every session: the phase field is built once
  /// here and shared read-only by all decoders.
  SessionServer(const core::PolarDrawConfig& cfg, Vec2 a1, Vec2 a2,
                double antenna_z, SessionServerConfig server_cfg = {});

  /// Starts a session; `initial_hint` optionally seeds its chain. Opening
  /// an id that is already open replaces the old session. `t_s` is the
  /// session's opening sim time (log/statusz annotation only).
  void open(SessionId id, const Vec2* initial_hint = nullptr,
            double t_s = 0.0);

  /// Enqueues one observation window into the session's mailbox; it is
  /// decoded at the next pump(). Returns false for an unknown session.
  /// `t_s` is the observation's simulation timestamp (drives the rolling
  /// SLO window and starvation detection; never the decode) and `flow_id`
  /// the causal flow chain it belongs to (0 = unsampled). The two-arg
  /// form derives t_s from the session's submit ordinal and the window
  /// length, which is exact for gap-free streams.
  bool submit(SessionId id, const core::TrackObservation& obs, double t_s,
              std::uint64_t flow_id = 0);
  bool submit(SessionId id, const core::TrackObservation& obs);

  /// Feeds the session's Eq. 10 azimuth-rotation accumulator (e.g. from a
  /// per-session rotation tracker); applied to the whole trajectory at
  /// close(). Returns false for an unknown session.
  bool accumulate_azimuth_correction(SessionId id, double delta_rad);

  /// Drains every non-empty mailbox across the pool: pushes the queued
  /// windows through each session's decoder and appends the newly frozen
  /// positions to its committed trajectory. Records per-position
  /// push-to-commit latency into the `server.push_to_commit_s` histogram.
  /// Returns the number of positions committed across all sessions.
  std::size_t pump();

  /// Positions committed so far for a session (empty for unknown ids).
  [[nodiscard]] const std::vector<Vec2>& committed(SessionId id) const;

  /// Drains any observations still queued in the mailbox, finishes the
  /// session's decode (committing the batch-equivalent tail), applies the
  /// accumulated Eq. 10 rotation, erases the session, and returns the
  /// final trajectory -- a function of the full observation stream,
  /// independent of pump() timing.
  std::vector<Vec2> close(SessionId id);

  /// A session finished via an associator kClose event.
  struct ClosedSession {
    SessionId id = 0;
    std::uint32_t epc = 0;
    std::vector<Vec2> trajectory;
  };

  /// Applies a TagTrackAssociator event batch in order: kOpen -> open(),
  /// kObservation -> submit(), kAzimuthCorrection ->
  /// accumulate_azimuth_correction(), kClose -> close() (the final
  /// trajectory is appended to `closed` when non-null). This is the glue
  /// that turns an EPC-keyed report stream into per-pen decodes; call it
  /// from the control thread (open/close threading rules apply) and pump()
  /// on whatever cadence suits. Returns the number of observations
  /// submitted.
  std::size_t ingest(const std::vector<core::PenEvent>& events,
                     std::vector<ClosedSession>* closed = nullptr);

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] int n_workers() const { return pool_.size(); }

  /// statusz: schema-stable JSON document ("polardraw.statusz.v1") with
  /// per-session state (seeded/lagging/starved/backpressured flags,
  /// mailbox depth, commit lag, committed count, last sim time), the
  /// rolling latency window (count, p50/p99/mean/max), registry counter
  /// totals, trace drop counts, and log emit/suppress counts. Safe to
  /// call while submit()/pump() are in flight; must not race
  /// open()/close() (see threading rules at the top).
  [[nodiscard]] std::string status() const;

  /// healthz: explicit-threshold verdict over the same live state --
  /// unhealthy when the rolling p99 exceeds healthz_p99_s, any session is
  /// backpressured, or any session is starved. Same threading rules as
  /// status().
  [[nodiscard]] HealthReport healthz() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Session {
    Session(const core::PolarDrawConfig& cfg, Vec2 a1, Vec2 a2,
            double antenna_z, const core::StreamingConfig& scfg,
            std::shared_ptr<const core::PhaseField> field,
            const Vec2* initial_hint)
        : decoder(cfg, a1, a2, antenna_z, scfg, std::move(field),
                  initial_hint) {}

    /// Guards the decoder and mailbox/stamps against submit() racing this
    /// session's drain.
    pd::Mutex mu;
    core::StreamingDecoder decoder PD_GUARDED_BY(mu);
    std::vector<core::TrackObservation> mailbox PD_GUARDED_BY(mu);
    /// Submit timestamp of every observation ever queued. Relative to the
    /// decoder's seed_root_position() R (which has no originating window),
    /// output position p was created by observation p for p < R (the
    /// backfilled phaseless prefix) and by observation p - 1 for p > R --
    /// which is what makes push-to-commit latency (including the lag wait)
    /// measurable.
    std::vector<Clock::time_point> stamps PD_GUARDED_BY(mu);
    /// Simulation timestamp and causal flow id of every observation ever
    /// queued, parallel to `stamps` (rolling-window time base and 'f'
    /// flow-event linkage; observational only).
    std::vector<double> sim_times PD_GUARDED_BY(mu);
    std::vector<std::uint64_t> flow_ids PD_GUARDED_BY(mu);
    /// (sim_t_s, latency_s) pairs committed by the last drain; workers
    /// append under mu, the pump caller moves them into the rolling
    /// window afterwards in session-id order (deterministic merge).
    std::vector<std::pair<double, double>> latency_stash PD_GUARDED_BY(mu);
    /// Deliberately outside the capability: pump()/close() append under mu,
    /// but committed() hands out a const reference without it -- the
    /// documented phase contract (header threading rules) is that readers
    /// never overlap pump()/close(), which no lock annotation can express.
    std::vector<Vec2> committed;

    // Live statusz mirror: written under mu at submit/drain time, read
    // lock-free by status()/healthz() so introspection never blocks (or
    // is blocked by) a mid-flight drain.
    std::atomic<std::size_t> stat_mailbox_depth{0};
    std::atomic<std::size_t> stat_submitted{0};
    std::atomic<std::size_t> stat_committed{0};
    std::atomic<std::size_t> stat_commit_lag{0};
    std::atomic<bool> stat_seeded{false};
    std::atomic<double> stat_last_t_s{0.0};
    std::atomic<bool> stat_backpressure_logged{false};
  };

  core::PolarDrawConfig cfg_;
  Vec2 a1_, a2_;
  double antenna_z_;
  std::shared_ptr<const core::PhaseField> field_;
  SessionServerConfig server_cfg_;
  ThreadPool pool_;
  /// Ordered map so pump() visits sessions in id order -- iteration order
  /// (and with it every aggregate) must not depend on insertion history.
  std::map<SessionId, std::unique_ptr<Session>> sessions_;

  /// Guards the rolling SLO state; taken by the pump *caller* (after the
  /// parallel drain) and by status()/healthz() -- never on the hot
  /// submit/drain paths.
  mutable pd::Mutex status_mu_;
  obs::RollingWindow rolling_latency_ PD_GUARDED_BY(status_mu_);
};

}  // namespace polardraw::server
