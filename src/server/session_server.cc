#include "server/session_server.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <utility>

#include "obs/json_writer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace polardraw::server {

namespace {

/// Shared bucket layout for the push-to-commit histogram and the rolling
/// SLO window: log-spaced, 6 per decade, 1 ms .. 10 s. Finer than the
/// 1-2-5 default ladder so interpolated p50/p99 land within ~1.5x
/// resolution of the true value.
const std::vector<double>& latency_bounds_s() {
  static const std::vector<double> bounds =
      obs::log_spaced_bounds(1e-3, 10.0, 6);
  return bounds;
}

}  // namespace

SessionServer::SessionServer(const core::PolarDrawConfig& cfg, Vec2 a1,
                             Vec2 a2, double antenna_z,
                             SessionServerConfig server_cfg)
    : cfg_(cfg),
      a1_(a1),
      a2_(a2),
      antenna_z_(antenna_z),
      field_(std::make_shared<const core::PhaseField>(cfg, a1, a2, antenna_z)),
      server_cfg_(server_cfg),
      pool_(server_cfg.n_workers),
      rolling_latency_(server_cfg.slo_window_s, server_cfg.slo_step_s,
                       latency_bounds_s()) {}

void SessionServer::open(SessionId id, const Vec2* initial_hint, double t_s) {
  static const obs::Counter opened_counter("server.sessions_opened");
  sessions_[id] = std::make_unique<Session>(cfg_, a1_, a2_, antenna_z_,
                                            server_cfg_.stream, field_,
                                            initial_hint);
  opened_counter.add(1);
  auto& lg = obs::Logger::global();
  if (lg.enabled()) {
    lg.log(obs::LogLevel::kInfo, t_s, "server.session_open",
           [&](obs::JsonWriter& w) {
             w.kv("session", id);
             w.kv("hinted", initial_hint != nullptr);
           });
  }
}

bool SessionServer::submit(SessionId id, const core::TrackObservation& obs,
                           double t_s, std::uint64_t flow_id) {
  static const obs::Counter obs_counter("server.observations");
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& s = *it->second;
  // polarlint-allow(R7): push-to-commit latency measurement only; the
  // timestamp never feeds the decode.
  const auto now = Clock::now();
  std::size_t depth = 0;
  {
    pd::MutexLock lock(s.mu);
    s.mailbox.push_back(obs);
    s.stamps.push_back(now);
    s.sim_times.push_back(t_s);
    s.flow_ids.push_back(flow_id);
    depth = s.mailbox.size();
    s.stat_mailbox_depth.store(depth, std::memory_order_relaxed);
    s.stat_submitted.store(s.stamps.size(), std::memory_order_relaxed);
    s.stat_last_t_s.store(t_s, std::memory_order_relaxed);
  }
  obs_counter.add(1);
  obs::record_report_flow('t', flow_id, obs::FlowStage::kSubmit);
  if (depth > server_cfg_.backpressure_depth &&
      !s.stat_backpressure_logged.exchange(true, std::memory_order_relaxed)) {
    // Log the crossing once per episode; pump() re-arms after a drain.
    auto& lg = obs::Logger::global();
    if (lg.enabled()) {
      lg.log(obs::LogLevel::kWarn, t_s, "server.backpressure",
             [&](obs::JsonWriter& w) {
               w.kv("session", id);
               w.kv("mailbox_depth", static_cast<std::uint64_t>(depth));
               w.kv("threshold", static_cast<std::uint64_t>(
                                     server_cfg_.backpressure_depth));
             });
    }
  }
  return true;
}

bool SessionServer::submit(SessionId id, const core::TrackObservation& obs) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  // Derived sim time: submit ordinal x window length -- exact for
  // gap-free streams, monotone always, so rolling windows stay sane for
  // drivers that predate the timestamped overload.
  const double t_s =
      static_cast<double>(
          it->second->stat_submitted.load(std::memory_order_relaxed)) *
      cfg_.window_s;
  return submit(id, obs, t_s, 0);
}

bool SessionServer::accumulate_azimuth_correction(SessionId id,
                                                 double delta_rad) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& s = *it->second;
  pd::MutexLock lock(s.mu);
  s.decoder.accumulate_azimuth_correction(delta_rad);
  return true;
}

std::size_t SessionServer::pump() {
  static const obs::Counter commit_counter("server.commits");
  static const obs::Histogram latency_hist("server.push_to_commit_s",
                                           latency_bounds_s());
  static const obs::Gauge mailbox_gauge("server.mailbox_depth_max");
  static const obs::Gauge lag_gauge("server.commit_lag_max");

  // Id-ordered list of sessions with queued work; the drain itself is
  // order-free (sessions are independent), the ordering just keeps the
  // schedule reproducible for tracing.
  std::vector<Session*> active;
  active.reserve(sessions_.size());
  for (auto& [id, s] : sessions_) {
    pd::MutexLock lock(s->mu);
    if (!s->mailbox.empty()) active.push_back(s.get());
  }

  std::atomic<std::size_t> total{0};
  pool_.parallel_for(active.size(), [&](std::size_t i) {
    Session& s = *active[i];
    // Hold the session mutex for the whole drain: a submit() landing
    // mid-drain waits a moment instead of racing the stamps vector.
    pd::MutexLock lock(s.mu);
    mailbox_gauge.set_max(static_cast<double>(s.mailbox.size()));
    for (const core::TrackObservation& o : s.mailbox) s.decoder.push(o);
    s.mailbox.clear();
    const std::size_t base = s.committed.size();
    const std::size_t n = s.decoder.poll(s.committed);
    if (n > 0) {
      // polarlint-allow(R7): measurement only -- stamps the commit for the
      // push_to_commit_s histogram, never feeds the decode.
      const auto now = Clock::now();
      // Position-to-observation mapping: the seed root (at the phaseless-
      // prefix length for mid-stream seeds, 0 otherwise) has no originating
      // window; backfilled prefix positions before it were created by the
      // same-index observation, positions past it by the preceding one.
      const std::size_t seed_root = s.decoder.seed_root_position();
      for (std::size_t p = base; p < base + n; ++p) {
        if (p == seed_root) continue;
        const std::size_t w = p < seed_root ? p : p - 1;
        const double latency =
            std::chrono::duration<double>(now - s.stamps[w]).count();
        latency_hist.observe(latency);
        s.latency_stash.emplace_back(s.sim_times[w], latency);
        obs::record_report_flow('f', s.flow_ids[w], obs::FlowStage::kCommit);
      }
      total.fetch_add(n, std::memory_order_relaxed);
    }
    lag_gauge.set_max(static_cast<double>(s.decoder.commit_lag()));
    // Refresh the statusz mirror and re-arm the backpressure edge log.
    s.stat_mailbox_depth.store(0, std::memory_order_relaxed);
    s.stat_committed.store(s.committed.size(), std::memory_order_relaxed);
    s.stat_commit_lag.store(s.decoder.commit_lag(),
                            std::memory_order_relaxed);
    s.stat_seeded.store(s.decoder.seeded(), std::memory_order_relaxed);
    s.stat_backpressure_logged.store(false, std::memory_order_relaxed);
  });

  // Feed the rolling SLO window on the calling thread, in session-id
  // order (`active` is id-ordered), so the window contents are a pure
  // function of the observation streams -- not of worker scheduling.
  {
    pd::MutexLock status_lock(status_mu_);
    for (Session* sp : active) {
      std::vector<std::pair<double, double>> stash;
      {
        pd::MutexLock lock(sp->mu);
        stash.swap(sp->latency_stash);
      }
      for (const auto& [t_s, latency] : stash) {
        rolling_latency_.observe(t_s, latency);
      }
    }
  }

  const std::size_t committed = total.load(std::memory_order_relaxed);
  commit_counter.add(committed);
  return committed;
}

std::size_t SessionServer::ingest(const std::vector<core::PenEvent>& events,
                                  std::vector<ClosedSession>* closed) {
  std::size_t submitted = 0;
  for (const core::PenEvent& ev : events) {
    switch (ev.type) {
      case core::PenEventType::kOpen:
        open(ev.session_id, nullptr, ev.t_s);
        break;
      case core::PenEventType::kObservation:
        if (submit(ev.session_id, ev.obs, ev.t_s, ev.flow_id)) ++submitted;
        break;
      case core::PenEventType::kAzimuthCorrection:
        accumulate_azimuth_correction(ev.session_id, ev.azimuth_delta_rad);
        break;
      case core::PenEventType::kClose: {
        std::vector<Vec2> traj = close(ev.session_id);
        if (closed != nullptr) {
          closed->push_back(ClosedSession{ev.session_id, ev.epc,
                                          std::move(traj)});
        }
        break;
      }
    }
  }
  return submitted;
}

const std::vector<Vec2>& SessionServer::committed(SessionId id) const {
  static const std::vector<Vec2> kEmpty;
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? kEmpty : it->second->committed;
}

std::vector<Vec2> SessionServer::close(SessionId id) {
  static const obs::Counter closed_counter("server.sessions_closed");
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  Session& s = *it->second;
  std::vector<Vec2> traj;
  double last_t_s = 0.0;
  {
    pd::MutexLock lock(s.mu);
    // Drain anything submitted since the last pump(): the trajectory is a
    // function of the session's full observation stream, so observations
    // still sitting in the mailbox must decode before the tail commits --
    // otherwise the result would depend on pump timing.
    for (const core::TrackObservation& o : s.mailbox) s.decoder.push(o);
    s.mailbox.clear();
    s.decoder.finish(s.committed);
    last_t_s = s.sim_times.empty() ? 0.0 : s.sim_times.back();
    // Eq. 10: undo the accumulated initial-azimuth error. A whole-trajectory
    // rotation about the centroid, so it can only run once the trace is
    // complete -- committed positions are frozen in board frame until here.
    // With no correction the trajectory is returned untouched: even a
    // zero-angle rotation perturbs low bits through the centroid round trip,
    // which would break the bit-identity contract with the batch decode.
    const double alpha_rad = s.decoder.azimuth_correction_rad();
    traj = alpha_rad == 0.0
               ? std::move(s.committed)
               : core::HmmTracker::rotate_trajectory(s.committed, alpha_rad);
  }
  sessions_.erase(it);
  closed_counter.add(1);
  auto& lg = obs::Logger::global();
  if (lg.enabled()) {
    lg.log(obs::LogLevel::kInfo, last_t_s, "server.session_close",
           [&](obs::JsonWriter& w) {
             w.kv("session", id);
             w.kv("positions", static_cast<std::uint64_t>(traj.size()));
           });
  }
  return traj;
}

std::string SessionServer::status() const {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "polardraw.statusz.v1");

  // Global sim "now": the newest observation across sessions -- the time
  // base starvation is judged against.
  double now_t_s = 0.0;
  for (const auto& [id, s] : sessions_) {
    now_t_s = std::max(now_t_s,
                       s->stat_last_t_s.load(std::memory_order_relaxed));
  }
  w.kv("t_s", now_t_s);
  w.kv("session_count", static_cast<std::uint64_t>(sessions_.size()));
  w.kv("n_workers", pool_.size());

  w.key("sessions");
  w.begin_array();
  for (const auto& [id, s] : sessions_) {
    const std::size_t depth =
        s->stat_mailbox_depth.load(std::memory_order_relaxed);
    const std::size_t lag = s->stat_commit_lag.load(std::memory_order_relaxed);
    const double last_t_s = s->stat_last_t_s.load(std::memory_order_relaxed);
    w.begin_object();
    w.kv("id", static_cast<std::uint64_t>(id));
    w.kv("seeded", s->stat_seeded.load(std::memory_order_relaxed));
    w.kv("mailbox_depth", static_cast<std::uint64_t>(depth));
    w.kv("submitted",
         static_cast<std::uint64_t>(
             s->stat_submitted.load(std::memory_order_relaxed)));
    w.kv("committed",
         static_cast<std::uint64_t>(
             s->stat_committed.load(std::memory_order_relaxed)));
    w.kv("commit_lag", static_cast<std::uint64_t>(lag));
    w.kv("last_t_s", last_t_s);
    // A session is "lagging" when its decode backlog exceeds the fixed
    // lag the decoder is entitled to hold.
    w.kv("lagging", lag > server_cfg_.stream.lag_windows);
    w.kv("starved", now_t_s - last_t_s > server_cfg_.starved_after_s);
    w.kv("backpressured", depth > server_cfg_.backpressure_depth);
    w.end_object();
  }
  w.end_array();

  {
    pd::MutexLock lock(status_mu_);
    const obs::RollingStats roll = rolling_latency_.stats();
    w.key("rolling");
    w.begin_object();
    w.kv("metric", "server.push_to_commit_s");
    w.kv("window_s", rolling_latency_.window_s());
    w.kv("count", roll.count);
    w.kv("p50_s", roll.p50);
    w.kv("p99_s", roll.p99);
    w.kv("mean_s", roll.mean());
    w.kv("max_s", roll.max);
    w.end_object();
  }

  // Registry totals: safe mid-flight through the seqlock read path.
  {
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    w.key("registry");
    w.begin_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, v] : snap.counters) w.kv(name, v);
    w.end_object();
    w.end_object();
  }

  w.key("trace");
  w.begin_object();
  w.kv("dropped_events", obs::Tracer::global().dropped_events());
  w.end_object();

  const obs::Logger& lg = obs::Logger::global();
  w.key("log");
  w.begin_object();
  w.kv("emitted", lg.emitted_total());
  w.kv("suppressed", lg.suppressed_total());
  w.end_object();

  w.end_object();
  os << "\n";
  return os.str();
}

HealthReport SessionServer::healthz() const {
  HealthReport report;
  double rolling_p99 = 0.0;
  std::uint64_t rolling_count = 0;
  {
    pd::MutexLock lock(status_mu_);
    const obs::RollingStats roll = rolling_latency_.stats();
    rolling_p99 = roll.p99;
    rolling_count = roll.count;
  }
  if (rolling_count > 0 && rolling_p99 > server_cfg_.healthz_p99_s) {
    report.ok = false;
    report.reasons.push_back("rolling_p99_above_threshold");
  }
  double now_t_s = 0.0;
  for (const auto& [id, s] : sessions_) {
    now_t_s = std::max(now_t_s,
                       s->stat_last_t_s.load(std::memory_order_relaxed));
  }
  bool backpressured = false;
  bool starved = false;
  for (const auto& [id, s] : sessions_) {
    if (s->stat_mailbox_depth.load(std::memory_order_relaxed) >
        server_cfg_.backpressure_depth) {
      backpressured = true;
    }
    if (now_t_s - s->stat_last_t_s.load(std::memory_order_relaxed) >
        server_cfg_.starved_after_s) {
      starved = true;
    }
  }
  if (backpressured) {
    report.ok = false;
    report.reasons.push_back("session_backpressured");
  }
  if (starved) {
    report.ok = false;
    report.reasons.push_back("session_starved");
  }
  return report;
}

}  // namespace polardraw::server
