#include "server/session_server.h"

#include <atomic>
#include <utility>

#include "obs/metrics.h"

namespace polardraw::server {

SessionServer::SessionServer(const core::PolarDrawConfig& cfg, Vec2 a1,
                             Vec2 a2, double antenna_z,
                             SessionServerConfig server_cfg)
    : cfg_(cfg),
      a1_(a1),
      a2_(a2),
      antenna_z_(antenna_z),
      field_(std::make_shared<const core::PhaseField>(cfg, a1, a2, antenna_z)),
      server_cfg_(server_cfg),
      pool_(server_cfg.n_workers) {}

void SessionServer::open(SessionId id, const Vec2* initial_hint) {
  static const obs::Counter opened_counter("server.sessions_opened");
  sessions_[id] = std::make_unique<Session>(cfg_, a1_, a2_, antenna_z_,
                                            server_cfg_.stream, field_,
                                            initial_hint);
  opened_counter.add(1);
}

bool SessionServer::submit(SessionId id, const core::TrackObservation& obs) {
  static const obs::Counter obs_counter("server.observations");
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& s = *it->second;
  // polarlint-allow(R7): push-to-commit latency measurement only; the
  // timestamp never feeds the decode.
  const auto now = Clock::now();
  {
    pd::MutexLock lock(s.mu);
    s.mailbox.push_back(obs);
    s.stamps.push_back(now);
  }
  obs_counter.add(1);
  return true;
}

bool SessionServer::accumulate_azimuth_correction(SessionId id,
                                                 double delta_rad) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& s = *it->second;
  pd::MutexLock lock(s.mu);
  s.decoder.accumulate_azimuth_correction(delta_rad);
  return true;
}

std::size_t SessionServer::pump() {
  static const obs::Counter commit_counter("server.commits");
  static const obs::Histogram latency_hist("server.push_to_commit_s");

  // Id-ordered list of sessions with queued work; the drain itself is
  // order-free (sessions are independent), the ordering just keeps the
  // schedule reproducible for tracing.
  std::vector<Session*> active;
  active.reserve(sessions_.size());
  for (auto& [id, s] : sessions_) {
    pd::MutexLock lock(s->mu);
    if (!s->mailbox.empty()) active.push_back(s.get());
  }

  std::atomic<std::size_t> total{0};
  pool_.parallel_for(active.size(), [&](std::size_t i) {
    Session& s = *active[i];
    // Hold the session mutex for the whole drain: a submit() landing
    // mid-drain waits a moment instead of racing the stamps vector.
    pd::MutexLock lock(s.mu);
    for (const core::TrackObservation& o : s.mailbox) s.decoder.push(o);
    s.mailbox.clear();
    const std::size_t base = s.committed.size();
    const std::size_t n = s.decoder.poll(s.committed);
    if (n > 0) {
      // polarlint-allow(R7): measurement only -- stamps the commit for the
      // push_to_commit_s histogram, never feeds the decode.
      const auto now = Clock::now();
      // Position-to-observation mapping: the seed root (at the phaseless-
      // prefix length for mid-stream seeds, 0 otherwise) has no originating
      // window; backfilled prefix positions before it were created by the
      // same-index observation, positions past it by the preceding one.
      const std::size_t seed_root = s.decoder.seed_root_position();
      for (std::size_t p = base; p < base + n; ++p) {
        if (p == seed_root) continue;
        const std::size_t w = p < seed_root ? p : p - 1;
        latency_hist.observe(
            std::chrono::duration<double>(now - s.stamps[w]).count());
      }
      total.fetch_add(n, std::memory_order_relaxed);
    }
  });

  const std::size_t committed = total.load(std::memory_order_relaxed);
  commit_counter.add(committed);
  return committed;
}

std::size_t SessionServer::ingest(const std::vector<core::PenEvent>& events,
                                  std::vector<ClosedSession>* closed) {
  std::size_t submitted = 0;
  for (const core::PenEvent& ev : events) {
    switch (ev.type) {
      case core::PenEventType::kOpen:
        open(ev.session_id);
        break;
      case core::PenEventType::kObservation:
        if (submit(ev.session_id, ev.obs)) ++submitted;
        break;
      case core::PenEventType::kAzimuthCorrection:
        accumulate_azimuth_correction(ev.session_id, ev.azimuth_delta_rad);
        break;
      case core::PenEventType::kClose: {
        std::vector<Vec2> traj = close(ev.session_id);
        if (closed != nullptr) {
          closed->push_back(ClosedSession{ev.session_id, ev.epc,
                                          std::move(traj)});
        }
        break;
      }
    }
  }
  return submitted;
}

const std::vector<Vec2>& SessionServer::committed(SessionId id) const {
  static const std::vector<Vec2> kEmpty;
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? kEmpty : it->second->committed;
}

std::vector<Vec2> SessionServer::close(SessionId id) {
  static const obs::Counter closed_counter("server.sessions_closed");
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  Session& s = *it->second;
  std::vector<Vec2> traj;
  {
    pd::MutexLock lock(s.mu);
    // Drain anything submitted since the last pump(): the trajectory is a
    // function of the session's full observation stream, so observations
    // still sitting in the mailbox must decode before the tail commits --
    // otherwise the result would depend on pump timing.
    for (const core::TrackObservation& o : s.mailbox) s.decoder.push(o);
    s.mailbox.clear();
    s.decoder.finish(s.committed);
    // Eq. 10: undo the accumulated initial-azimuth error. A whole-trajectory
    // rotation about the centroid, so it can only run once the trace is
    // complete -- committed positions are frozen in board frame until here.
    // With no correction the trajectory is returned untouched: even a
    // zero-angle rotation perturbs low bits through the centroid round trip,
    // which would break the bit-identity contract with the batch decode.
    const double alpha_rad = s.decoder.azimuth_correction_rad();
    traj = alpha_rad == 0.0
               ? std::move(s.committed)
               : core::HmmTracker::rotate_trajectory(s.committed, alpha_rad);
  }
  sessions_.erase(it);
  closed_counter.add(1);
  return traj;
}

}  // namespace polardraw::server
