// Receiver noise model.
//
// Adds thermal noise to the complex channel response and derives the
// measurement-level noise the reader reports: RSS jitter and phase jitter
// whose variance grows as SNR drops. The modulation scheme in use scales
// the effective SNR (longer Miller sequences integrate more energy per bit,
// matching EPC Gen2 behaviour and the paper's modulation-selection step).
#pragma once

#include <complex>

#include "common/rng.h"

namespace polardraw::channel {

struct NoiseConfig {
  /// Receiver noise floor, dBm. -85 dBm is a realistic figure for the
  /// backscatter sideband bandwidth of a COTS reader in an office.
  double noise_floor_dbm = -85.0;

  /// Extra RSS reporting jitter (dB std-dev) beyond thermal noise; readers
  /// quantize and average internally, so this is small.
  double rss_jitter_db = 0.15;

  /// Phase-noise floor (radians std-dev) at high SNR, from the reader's
  /// PLL and clock; ~0.05 rad is typical of the Speedway family.
  double phase_noise_floor_rad = 0.08;

  /// SNR gain (linear) of the active modulation scheme relative to FM0.
  // polarlint-allow(R3): dimensionless linear SNR multiplier, not a power level
  double modulation_snr_gain = 1.0;
};

/// One noisy observation derived from a complex channel response.
struct NoisyObservation {
  double rss_dbm = -150.0;
  double phase_rad = 0.0;   // wrapped to [0, 2*pi)
  double snr_db = -50.0;
};

/// Applies receiver noise to a complex response (|h|^2 = power in mW).
/// Low-SNR responses get large phase variance, reproducing the noisy phase
/// the paper observes near deep polarization mismatch.
NoisyObservation observe(const std::complex<double>& response,
                         const NoiseConfig& cfg, Rng& rng);

}  // namespace polardraw::channel
